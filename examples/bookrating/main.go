// Bookrating: a faithful walkthrough of the paper's Figure 4 — the
// book-rating heter-view with three readers and three books where the
// correlated random walk (Equations 4–7) selects R3, not R2, as R1's
// context after stepping through the disliked book B2.
//
// The program builds the exact network of Figure 4, runs many correlated
// walks, and prints the empirical transition table for the step after
// R1 → B2, alongside the same table for a plain weight-biased walk.
//
// Run with: go run ./examples/bookrating
package main

import (
	"fmt"
	"log"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/walk"
)

func main() {
	b := graph.NewBuilder()
	reader := b.NodeType("reader")
	book := b.NodeType("book")
	rating := b.EdgeType("rating")

	r1 := b.AddNode(reader, "R1")
	r2 := b.AddNode(reader, "R2")
	r3 := b.AddNode(reader, "R3")
	b1 := b.AddNode(book, "B1")
	b2 := b.AddNode(book, "B2")
	b3 := b.AddNode(book, "B3")

	// Figure 4's edge weights (rating scores, one to five).
	b.AddEdge(r1, b1, rating, 5) // R1 loves B1
	b.AddEdge(r1, b2, rating, 1) // R1 dislikes B2
	b.AddEdge(r2, b2, rating, 5) // R2 loves B2
	b.AddEdge(r2, b3, rating, 2)
	b.AddEdge(r3, b2, rating, 1) // R3 dislikes B2 — just like R1
	b.AddEdge(r3, b3, rating, 4)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	v := g.Views()[0]
	if !v.Hetero {
		log.Fatal("expected a heter-view")
	}
	fmt.Println("Figure 4 book-rating view: readers R1-R3, books B1-B3")
	fmt.Println("R1 and R3 both dislike B2 (weight 1); R2 loves it (weight 5).")
	fmt.Println()

	lr1 := v.Local(r1)
	lb2 := v.Local(b2)
	names := map[int]string{
		v.Local(r1): "R1", v.Local(r2): "R2", v.Local(r3): "R3",
		v.Local(b1): "B1", v.Local(b2): "B2", v.Local(b3): "B3",
	}

	count := func(w walk.Walker, trials int) map[string]int {
		rng := rand.New(rand.NewSource(1))
		out := map[string]int{}
		for i := 0; i < trials; i++ {
			p := w.Walk(v, lr1, 3, rng)
			if len(p) == 3 && p[1] == lb2 {
				out[names[p[2]]]++
			}
		}
		return out
	}

	const trials = 100000
	biased := count(walk.NewBiased(v), trials)
	correlated := count(walk.NewCorrelated(v), trials)

	fmt.Printf("next step after the walk R1 → B2 (out of %d walks):\n\n", trials)
	fmt.Printf("%-28s %8s %8s %8s\n", "walker", "→R1", "→R2", "→R3")
	fmt.Printf("%-28s %8d %8d %8d\n", "weight-biased (π₁ only)", biased["R1"], biased["R2"], biased["R3"])
	fmt.Printf("%-28s %8d %8d %8d\n", "correlated (π₁·π₂)", correlated["R1"], correlated["R2"], correlated["R3"])
	fmt.Println()
	fmt.Println("The correlated walk never continues to R2: at B2, Δ = 4 and the")
	fmt.Println("R2 edge differs from the incoming weight by exactly Δ, so π₂ = 0")
	fmt.Println("(Equation 7). R3, whose rating matches R1's, dominates instead —")
	fmt.Println("so R3, not R2, becomes R1's context node (Definition 6).")
}
