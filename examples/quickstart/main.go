// Quickstart: build a tiny heterogeneous network by hand, train TransN
// on it, and inspect the resulting embeddings.
//
// The network is the paper's Figure 2(a) academic example: three
// authors, two papers and a university, joined by authorship, citation
// and affiliation edges. The paper's motivating observation is that A1
// and A3 never co-author a paper, yet they are related — they serve the
// same university and their papers cite each other. Only a method that
// transfers information across views can see that; this program prints
// the author-pair similarities so you can check it did.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/transn"
)

func main() {
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	univ := b.NodeType("university")
	authorship := b.EdgeType("authorship")
	citation := b.EdgeType("citation")
	affiliation := b.EdgeType("affiliation")

	a1 := b.AddNode(author, "A1")
	a2 := b.AddNode(author, "A2")
	a3 := b.AddNode(author, "A3")
	p1 := b.AddNode(paper, "P1")
	p2 := b.AddNode(paper, "P2")
	u1 := b.AddNode(univ, "U1")

	b.AddEdge(a1, p1, authorship, 1)
	b.AddEdge(a2, p1, authorship, 1)
	b.AddEdge(a3, p2, authorship, 1)
	b.AddEdge(p1, p2, citation, 1)
	b.AddEdge(a1, u1, affiliation, 1)
	b.AddEdge(a3, u1, affiliation, 1)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges, %d views, %d view-pairs\n",
		g.NumNodes(), g.NumEdges(), g.NumEdgeTypes(), len(g.ViewPairs()))
	for _, v := range g.Views() {
		kind := "homo-view"
		if v.Hetero {
			kind = "heter-view"
		}
		fmt.Printf("  view %-12s %s with %d nodes, %d edges\n",
			g.EdgeTypeNames[v.Type], kind, v.NumNodes(), v.NumEdges())
	}

	cfg := transn.DefaultConfig()
	cfg.Dim = 16
	cfg.WalkLength = 10
	cfg.MinWalksPerNode = 20
	cfg.MaxWalksPerNode = 40
	cfg.Iterations = 8
	cfg.CrossPathLen = 2
	cfg.CrossPathsPerPair = 40
	model, err := transn.Train(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	emb := model.Embeddings()

	fmt.Println("\ntraining loss per iteration:")
	for _, st := range model.History {
		fmt.Printf("  iter %d: single-view %.4f, cross-view %.4f\n",
			st.Iteration, st.SingleLoss, st.CrossLoss)
	}

	sim := func(x, y graph.NodeID) float64 {
		return mat.CosineSim(emb.Row(int(x)), emb.Row(int(y)))
	}
	fmt.Println("\nauthor similarities (cosine):")
	fmt.Printf("  A1-A3 (same university, citing papers): %.4f\n", sim(a1, a3))
	fmt.Printf("  A1-A2 (co-authors of P1):               %.4f\n", sim(a1, a2))
	fmt.Printf("  A2-A3 (no shared structure):            %.4f\n", sim(a2, a3))
}
