// Academic: the Table III protocol end-to-end on the AMiner-like
// synthetic network — train TransN and two baselines, classify paper
// topics with logistic regression, and report macro/micro-F1.
//
// Run with: go run ./examples/academic [-full]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"transn/internal/baselines"
	"transn/internal/baselines/node2vec"
	"transn/internal/dataset"
	"transn/internal/eval"
	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/transn"
)

type transnMethod struct{ cfg transn.Config }

func (transnMethod) Name() string { return "TransN" }

func (m transnMethod) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	cfg := m.cfg
	cfg.Dim = dim
	cfg.Seed = seed
	model, err := transn.Train(g, cfg)
	if err != nil {
		return nil, err
	}
	return model.Embeddings(), nil
}

func main() {
	full := flag.Bool("full", false, "use the full-size network")
	flag.Parse()

	size := dataset.Quick
	if *full {
		size = dataset.Full
	}
	g := dataset.AMiner(size, 1)
	stats := g.ComputeStats()
	fmt.Printf("AMiner-like network: %d nodes, %d edges, %d labeled papers in %d topics\n",
		stats.NumNodes, stats.NumEdges, stats.LabeledNodes, stats.NumLabels)

	cfg := transn.DefaultConfig()
	if size == dataset.Quick {
		cfg.WalkLength = 20
		cfg.MinWalksPerNode = 4
		cfg.MaxWalksPerNode = 10
		cfg.Iterations = 6
		cfg.CrossPathLen = 6
		cfg.CrossPathsPerPair = 100
		cfg.LRCross = 0.05
	}
	methods := []baselines.Method{
		node2vec.Method{P: 1, Q: 1},   // DeepWalk
		node2vec.Method{P: 0.5, Q: 2}, // node2vec
		transnMethod{cfg},             // TransN
	}

	fmt.Printf("\n%-10s %10s %10s %10s\n", "method", "macro-F1", "micro-F1", "time")
	for _, m := range methods {
		start := time.Now()
		emb, err := m.Embed(g, 64, 7)
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		macro, micro, err := eval.NodeClassification(emb, g, 0.9, 10, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.4f %10.4f %10s\n",
			m.Name(), macro, micro, time.Since(start).Round(time.Millisecond))
	}
}
