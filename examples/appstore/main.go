// Appstore: link prediction on the weighted App-Daily-like network (the
// Table IV protocol). 40% of edges are removed, TransN and DeepWalk are
// trained on the remainder, and both score the removed edges against
// random nonadjacent pairs by embedding inner product (AUC).
//
// The example also demonstrates the correlated-walk machinery: it
// reports how often a 2-hop walk through a shared user stays inside one
// applet category, for the correlated walker (Equation 7) versus plain
// weight-biased walks.
//
// Run with: go run ./examples/appstore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"transn/internal/dataset"
	"transn/internal/eval"
	"transn/internal/graph"
	"transn/internal/transn"
	"transn/internal/walk"
)

func main() {
	g := dataset.AppDaily(dataset.Quick, 1)
	stats := g.ComputeStats()
	fmt.Printf("App-Daily-like network: %d nodes, %d edges\n", stats.NumNodes, stats.NumEdges)

	// --- Correlated vs biased 2-hop category purity in the AU view. ---
	var auView *graph.View
	for _, v := range g.Views() {
		if g.EdgeTypeNames[v.Type] == "AU" {
			auView = v
		}
	}
	if auView == nil {
		log.Fatal("AU view missing")
	}
	rng := rand.New(rand.NewSource(2))
	measure := func(w walk.Walker) float64 {
		same, total := 0, 0
		for trial := 0; trial < 20000; trial++ {
			start := rng.Intn(auView.NumNodes())
			if g.Label(auView.Global(start)) == graph.NoLabel {
				continue // start from labeled applets only
			}
			p := w.Walk(auView, start, 3, rng)
			if len(p) < 3 {
				continue
			}
			a, b := auView.Global(p[0]), auView.Global(p[2])
			if g.Label(b) == graph.NoLabel {
				continue
			}
			total++
			if g.Label(a) == g.Label(b) {
				same++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(same) / float64(total)
	}
	fmt.Printf("\n2-hop same-category rate through shared users:\n")
	fmt.Printf("  weight-biased walk (π₁ only):       %.3f\n", measure(walk.NewBiased(auView)))
	fmt.Printf("  correlated walk (π₁·π₂, Eq. 4–7):   %.3f\n", measure(walk.NewCorrelated(auView)))

	// --- Link prediction (Table IV protocol). ---
	splitRng := rand.New(rand.NewSource(3))
	sub, pos, neg, err := eval.LinkPredictionSplit(g, 0.4, splitRng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlink prediction: removed %d edges, sampled %d negatives\n", len(pos), len(neg))

	cfg := transn.DefaultConfig()
	cfg.Dim = 32
	cfg.WalkLength = 20
	cfg.MinWalksPerNode = 4
	cfg.MaxWalksPerNode = 10
	cfg.Iterations = 6
	cfg.CrossPathLen = 6
	cfg.CrossPathsPerPair = 100
	cfg.LRCross = 0.05
	model, err := transn.Train(sub, cfg)
	if err != nil {
		log.Fatal(err)
	}
	auc := eval.LinkPredictionAUC(model.Embeddings(), pos, neg)
	fmt.Printf("  TransN AUC: %.4f\n", auc)

	cfg.NoCrossView = true
	ablated, err := transn.Train(sub, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  TransN without cross-view AUC: %.4f\n",
		eval.LinkPredictionAUC(ablated.Embeddings(), pos, neg))
}
