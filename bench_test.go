// Package repro benchmarks regenerate every table and figure of the
// paper's evaluation (Section IV) on the synthetic datasets:
//
//	go test -bench=Table2   # dataset statistics      (Table II)
//	go test -bench=Table3   # node classification     (Table III)
//	go test -bench=Table4   # link prediction         (Table IV)
//	go test -bench=Table5   # ablation study          (Table V)
//	go test -bench=Figure6  # t-SNE case study        (Figure 6)
//
// Each benchmark prints the paper-style rows once (first iteration) and
// then measures steady-state regeneration cost. cmd/benchrun produces
// the same tables with more control (-full, -seed, -reps). Component
// ablation benchmarks (BenchmarkAblation*) cover the design choices
// called out in DESIGN.md: walker variants, encoder depth, and
// cross-path length.
package repro

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"transn/internal/dataset"
	"transn/internal/experiments"
	"transn/internal/transn"
)

// benchOpts are deliberately small: benchmarks measure pipeline cost,
// while EXPERIMENTS.md records full-size accuracy numbers.
func benchOpts() experiments.Options {
	return experiments.Options{Size: dataset.Quick, Dim: 32, Seed: 1, Reps: 1}
}

// printOnce lets each table print its rows on the first benchmark
// iteration only, so -bench output stays readable.
var printOnce sync.Map

func sink(b *testing.B, key string) io.Writer {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded && testing.Verbose() {
		return os.Stdout
	}
	return io.Discard
}

func BenchmarkTable2DatasetGen(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Table2(sink(b, "t2"), opts)
	}
}

func BenchmarkTable3NodeClassification(b *testing.B) {
	for _, spec := range dataset.All() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			opts := benchOpts()
			g := spec.Generate(opts.Size, opts.Seed)
			methods := experiments.Methods(spec.Name, opts)
			for i := 0; i < b.N; i++ {
				for _, m := range methods {
					if _, err := m.Embed(g, opts.Dim, opts.Seed); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkTable4LinkPrediction(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(sink(b, "t4"), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Ablation(b *testing.B) {
	for _, spec := range dataset.All() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			opts := benchOpts()
			g := spec.Generate(opts.Size, opts.Seed)
			methods := experiments.AblationMethods(opts)
			for i := 0; i < b.N; i++ {
				for _, m := range methods {
					if _, err := m.Embed(g, opts.Dim, opts.Seed); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkFigure6TSNE(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(sink(b, "f6"), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component ablation benchmarks (DESIGN.md design choices). ---

func transnBenchCfg() transn.Config {
	cfg := transn.DefaultConfig()
	cfg.Dim = 32
	cfg.WalkLength = 20
	cfg.MinWalksPerNode = 4
	cfg.MaxWalksPerNode = 10
	cfg.Iterations = 2
	cfg.CrossPathLen = 6
	cfg.CrossPathsPerPair = 50
	// Component ablations compare algorithmic variants, so they run on
	// the serial path; BenchmarkWorkerPool* measure the pool itself.
	cfg.Workers = 1
	return cfg
}

// --- Worker-pool benchmarks (serial vs. pooled; DESIGN.md §6). ---

// workerCounts returns the ladder 1, 2, ..., NumCPU without duplicates.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	n := runtime.NumCPU()
	out := counts[:0]
	for _, c := range counts {
		if c <= n {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != n {
		out = append(out, n)
	}
	return out
}

// BenchmarkWorkerPoolSingleView isolates the sharded walk + skip-gram
// path (no cross-view fan-out): the speedup of W4 over W1 on a
// multi-core machine is the headline number for the pool.
func BenchmarkWorkerPoolSingleView(b *testing.B) {
	g := dataset.AppDaily(dataset.Quick, 1)
	for _, w := range workerCounts() {
		w := w
		b.Run(fmt.Sprintf("W%d", w), func(b *testing.B) {
			cfg := transnBenchCfg()
			cfg.NoCrossView = true
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := transn.Train(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkerPoolFullPipeline runs the complete Algorithm 1 loop
// (walks, skip-gram, cross-view pair steps) in both update disciplines
// across the worker ladder.
func BenchmarkWorkerPoolFullPipeline(b *testing.B) {
	g := dataset.AppDaily(dataset.Quick, 1)
	for _, mode := range []struct {
		name          string
		deterministic bool
	}{
		{"Hogwild", false},
		{"Deterministic", true},
	} {
		mode := mode
		for _, w := range workerCounts() {
			w := w
			b.Run(fmt.Sprintf("%s/W%d", mode.name, w), func(b *testing.B) {
				cfg := transnBenchCfg()
				cfg.Workers = w
				cfg.DeterministicApply = mode.deterministic
				for i := 0; i < b.N; i++ {
					if _, err := transn.Train(g, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAblationWalkers(b *testing.B) {
	g := dataset.AppDaily(dataset.Quick, 1)
	for _, mode := range []struct {
		name   string
		mutate func(*transn.Config)
	}{
		{"Correlated", func(c *transn.Config) {}},
		{"Simple", func(c *transn.Config) { c.SimpleWalk = true }},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := transnBenchCfg()
			mode.mutate(&cfg)
			for i := 0; i < b.N; i++ {
				if _, err := transn.Train(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationEncoderDepth(b *testing.B) {
	g := dataset.AppDaily(dataset.Quick, 1)
	for _, h := range []int{1, 2, 4, 6} {
		h := h
		b.Run(map[int]string{1: "H1", 2: "H2", 4: "H4", 6: "H6"}[h], func(b *testing.B) {
			cfg := transnBenchCfg()
			cfg.Encoders = h
			for i := 0; i < b.N; i++ {
				if _, err := transn.Train(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationCrossPathLen(b *testing.B) {
	g := dataset.AppDaily(dataset.Quick, 1)
	for _, l := range []int{4, 8, 16} {
		l := l
		b.Run(map[int]string{4: "L4", 8: "L8", 16: "L16"}[l], func(b *testing.B) {
			cfg := transnBenchCfg()
			cfg.CrossPathLen = l
			for i := 0; i < b.N; i++ {
				if _, err := transn.Train(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationTranslatorVariant(b *testing.B) {
	g := dataset.AppDaily(dataset.Quick, 1)
	for _, mode := range []struct {
		name   string
		mutate func(*transn.Config)
	}{
		{"EncoderStack", func(c *transn.Config) {}},
		{"SimpleFeedForward", func(c *transn.Config) { c.SimpleTranslator = true }},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			cfg := transnBenchCfg()
			mode.mutate(&cfg)
			for i := 0; i < b.N; i++ {
				if _, err := transn.Train(g, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
