// Command transnload is the open-loop load generator for transnserve:
// it derives a valid request pool from the network TSV the served model
// was trained on, fires a Poisson arrival stream of mixed
// embedding/translate/knn/infer requests at a target rate, optionally
// hot-reloads the server mid-run, and writes a schema-stable
// transn.bench.serve/v1 report with per-endpoint latency quantiles,
// achieved vs offered rate, and error accounting. With -gate it checks
// the report against declared SLO budgets and exits non-zero on any
// violation — CI's serving regression gate.
//
// Usage:
//
//	transnload -target http://127.0.0.1:8080 -graph network.tsv \
//	    [-rate 200] [-duration 10s] [-warmup 2s] \
//	    [-mix embedding=4,translate=3,knn=2,infer=1 | -profile knn-heavy] \
//	    [-seed 1] \
//	    [-reloads 0] [-timeout 10s] [-report bench.json] [-gate slo.json] \
//	    [-slow 10]
//
// Every request carries a deterministic X-Transn-Request-Id; after the
// run the harness fetches the server's /debug/requests and /debug/slow
// trace rings and joins them against its own slowest -slow observations,
// so the report's tail section attributes p99 latency to server-side
// stages (cache, coalesce wait, forward pass, ...).
//
// Exit status: 0 on a clean run (and a passing gate), 1 on harness
// errors, 2 on gate violations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"transn/internal/graph"
	"transn/internal/load"
	"transn/internal/ordered"
)

// profiles are the named workload shapes -profile accepts, as -mix
// weight strings. knn-heavy exercises the ANN-backed /v1/knn path (with
// a light embedding/translate background so caches and the coalescer
// stay warm) — CI's knn p99 SLO gate runs under it.
var profiles = map[string]string{
	"knn-heavy": "knn=8,embedding=1,translate=1",
	"read-only": "embedding=3,translate=2,knn=2",
}

// profileNames lists the -profile vocabulary for usage and errors.
func profileNames() string {
	return strings.Join(ordered.Keys(profiles), ", ")
}

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "transnload:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("transnload", flag.ExitOnError)
	target := fs.String("target", "", "base URL of the transnserve instance under test (required)")
	graphPath := fs.String("graph", "", "network TSV the served model was trained on (required; request pool source)")
	rate := fs.Float64("rate", 200, "offered open-loop arrival rate, requests/second")
	duration := fs.Duration("duration", 10*time.Second, "measured window length")
	warmup := fs.Duration("warmup", 2*time.Second, "initial window excluded from the report")
	mixFlag := fs.String("mix", "", "endpoint weights, e.g. embedding=4,translate=3,knn=2,infer=1 (default that mix)")
	profile := fs.String("profile", "", "named workload profile instead of -mix: "+profileNames())
	seed := fs.Int64("seed", 1, "workload seed; a fixed seed replays the identical request stream")
	reloads := fs.Int("reloads", 0, "POST /admin/reload this many times, evenly spaced across the measured window")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request client timeout")
	reportOut := fs.String("report", "", "write the transn.bench.serve/v1 report JSON to this path (- or empty: stdout)")
	gatePath := fs.String("gate", "", "SLO budget JSON; violations print to stderr and exit 2")
	name := fs.String("name", "load", "run name recorded in the report")
	slowN := fs.Int("slow", 10, "join the N slowest requests against server-side traces in the report's tail section (negative disables)")
	fs.Parse(args)
	if *target == "" || *graphPath == "" {
		return 1, fmt.Errorf("-target and -graph are required")
	}

	if *mixFlag != "" && *profile != "" {
		return 1, fmt.Errorf("-mix and -profile are mutually exclusive")
	}
	mix := load.DefaultMix()
	if *profile != "" {
		weights, ok := profiles[*profile]
		if !ok {
			return 1, fmt.Errorf("unknown profile %q (want one of: %s)", *profile, profileNames())
		}
		m, err := load.ParseMix(weights)
		if err != nil {
			return 1, err
		}
		mix = m
	}
	if *mixFlag != "" {
		m, err := load.ParseMix(*mixFlag)
		if err != nil {
			return 1, err
		}
		mix = m
	}
	var gate *load.Gate
	if *gatePath != "" {
		data, err := os.ReadFile(*gatePath)
		if err != nil {
			return 1, err
		}
		gate, err = load.ParseGate(data)
		if err != nil {
			return 1, err
		}
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		return 1, err
	}
	g, err := graph.Load(gf)
	gf.Close()
	if err != nil {
		return 1, err
	}
	inv, err := load.NewInventory(g)
	if err != nil {
		return 1, err
	}

	fmt.Fprintf(os.Stderr, "transnload: offering %.1f req/s (%s) to %s for %s (+%s warmup, %d reloads)\n",
		*rate, mix, *target, *duration, *warmup, *reloads)
	rep, err := load.Run(load.Profile{
		Target:   *target,
		Rate:     *rate,
		Duration: *duration,
		Warmup:   *warmup,
		Mix:      mix,
		Seed:     *seed,
		Reloads:  *reloads,
		Timeout:  *timeout,
		Name:     *name,
		SlowN:    *slowN,
	}, inv)
	if err != nil {
		return 1, err
	}

	out := os.Stdout
	if *reportOut != "" && *reportOut != "-" {
		f, err := os.Create(*reportOut)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		out = f
	}
	if err := load.WriteReport(out, rep); err != nil {
		return 1, err
	}
	fmt.Fprintf(os.Stderr, "transnload: %d sent, %d errors, achieved %.1f/%.1f req/s, %d/%d reloads ok\n",
		rep.Sent, rep.Errors, rep.AchievedRate, rep.OfferedRate, rep.ReloadsOK, rep.Reloads)
	if rep.Tail != nil {
		if rep.Tail.Joined > 0 {
			fmt.Fprintf(os.Stderr, "transnload: tail: %d/%d slowest requests joined to server traces, dominant stage: %s\n",
				rep.Tail.Joined, len(rep.Tail.Requests), rep.Tail.DominantStage)
		} else {
			fmt.Fprintf(os.Stderr, "transnload: tail: no server traces joined (is tracing enabled on the target?)\n")
		}
	}

	if gate != nil {
		if violations := gate.Check(rep); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "transnload: SLO violation:", v)
			}
			return 2, fmt.Errorf("%d SLO violation(s)", len(violations))
		}
		fmt.Fprintln(os.Stderr, "transnload: all SLO budgets met")
	}
	return 0, nil
}
