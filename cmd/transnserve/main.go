// Command transnserve is the embedding-serving daemon: it loads a graph
// TSV plus a trained model — a gob written by `transn train -model`, or
// with -snapshot-format snap a packed transn.snap/v1 file written by
// `transn snapshot pack` (mmap-loaded; reload is O(header)) — and
// serves final/per-view/translated/k-NN/inferred embeddings over HTTP
// until stopped. SIGHUP (or POST /admin/reload) hot-reloads the
// snapshot from the same paths without dropping a request; SIGINT and
// SIGTERM drain gracefully. /v1/knn answers through a deterministic
// HNSW index built (or, for .snap files that embed one, decoded) at
// load; -ann-m, -ann-ef-construction, -ann-ef-search and -ann-seed
// tune it, and exact=true per request falls back to the brute scan.
// See API.md for the route reference and SNAPSHOT.md for the format.
//
// Every request is traced through its handling stages (decode,
// snapshot pin, cache, coalesce wait, forward, encode); sampled and
// slow traces land in in-memory rings served at /debug/requests and
// /debug/slow as transn.trace.serve/v1 dumps, and -log emits
// structured JSON access/slow log lines. -trace-rate -1 disables
// tracing entirely (the disabled path allocates nothing).
//
// A metrics flight recorder samples the registry into two
// fixed-capacity rings (default 1s×300 and 10s×360) served at
// /debug/history as transn.history/v1 dumps (`transn watch` renders
// them live). -watchdog-rules loads declarative SLO burn-rate rules
// evaluated over those windows; a tripped rule WARNs, flips the
// /readyz degraded detail, and — with -anomaly-dir — captures a
// bounded-retention anomaly bundle (heap + goroutine profiles, history
// and slow-ring dumps).
//
// Usage:
//
//	transnserve -graph network.tsv -model model.gob [-addr :8080] \
//	    [-snapshot-format gob|snap] [-ann-m 16] [-ann-ef-construction 200] \
//	    [-ann-ef-search 64] [-ann-seed 0] \
//	    [-trace-head 64] [-trace-rate 64] [-trace-ring 256] \
//	    [-slow-ring 64] [-slow-threshold 250ms] [-log] \
//	    [-history-fine 1s] [-history-fine-ring 300] \
//	    [-history-coarse 10s] [-history-coarse-ring 360] \
//	    [-watchdog-rules rules.json] [-watchdog-interval 1s] \
//	    [-anomaly-dir dir] [-anomaly-keep 8] [-anomaly-cooldown 30s] \
//	    [-runtime-poll 5s]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"transn/internal/obs"
	"transn/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "transnserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("transnserve", flag.ExitOnError)
	graphPath := fs.String("graph", "", "network TSV the model was trained on (required)")
	modelPath := fs.String("model", "", "trained model gob from `transn train -model` (required)")
	addr := fs.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	snapFormat := fs.String("snapshot-format", "", "model file format: gob (default) or snap (transn.snap/v1 from `transn snapshot pack`)")
	annM := fs.Int("ann-m", 0, "HNSW max neighbors per node on upper layers (0 = default 16)")
	annEfC := fs.Int("ann-ef-construction", 0, "HNSW construction beam width (0 = default 200)")
	annEfS := fs.Int("ann-ef-search", 0, "HNSW default search beam width; the ef query parameter overrides per request (0 = default 64)")
	annSeed := fs.Int64("ann-seed", 0, "seed for the deterministic HNSW level draws")
	cacheSize := fs.Int("cache", 0, "LRU capacity for computed vectors (0 = default 4096, negative disables)")
	workers := fs.Int("translate-workers", 0, "max concurrent translator/inference computations (0 = default 4)")
	timeout := fs.Duration("timeout", 0, "per-request deadline for /v1 endpoints (0 = default 10s)")
	drain := fs.Duration("drain", 0, "max wait for in-flight requests on shutdown (0 = default 10s)")
	maxK := fs.Int("maxk", 0, "cap on the k parameter of /v1/knn (0 = default 100)")
	traceHead := fs.Int("trace-head", 0, "always sample the first N requests (0 = default 64, negative disables head sampling)")
	traceRate := fs.Int("trace-rate", 0, "sample every Nth request after the head (0 = default 64, 1 = all, negative disables tracing entirely)")
	traceRing := fs.Int("trace-ring", 0, "sampled-trace ring capacity served at /debug/requests (0 = default 256)")
	slowRing := fs.Int("slow-ring", 0, "slow-trace ring capacity served at /debug/slow (0 = default 64)")
	slowThreshold := fs.Duration("slow-threshold", 0, "requests at or above this duration are always kept and logged as slow (0 = default 250ms, negative disables)")
	logJSON := fs.Bool("log", false, "emit structured JSON access/slow log lines on stderr")
	historyFine := fs.Duration("history-fine", 0, "fine history sampling interval (0 = default 1s, negative disables the recorder)")
	historyFineRing := fs.Int("history-fine-ring", 0, "fine history ring capacity (0 = default 300)")
	historyCoarse := fs.Duration("history-coarse", 0, "coarse history sampling interval (0 = default 10s)")
	historyCoarseRing := fs.Int("history-coarse-ring", 0, "coarse history ring capacity (0 = default 360)")
	watchRules := fs.String("watchdog-rules", "", "SLO burn-rate rules JSON file; tripped rules WARN and flip the /readyz degraded detail")
	watchInterval := fs.Duration("watchdog-interval", 0, "watchdog evaluation period (0 = default 1s)")
	anomalyDir := fs.String("anomaly-dir", "", "directory for anomaly bundles captured when a watchdog rule trips (empty disables capture)")
	anomalyKeep := fs.Int("anomaly-keep", 0, "max anomaly bundles retained, oldest deleted first (0 = default 8)")
	anomalyCooldown := fs.Duration("anomaly-cooldown", 0, "min spacing between anomaly captures (0 = default 30s)")
	runtimePoll := fs.Duration("runtime-poll", 0, "runtime health gauge polling interval (0 = default 5s, negative disables)")
	fs.Parse(args)
	if *graphPath == "" || *modelPath == "" {
		return fmt.Errorf("-graph and -model are required")
	}

	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	var rules *obs.WatchConfig
	if *watchRules != "" {
		data, err := os.ReadFile(*watchRules)
		if err != nil {
			return fmt.Errorf("reading -watchdog-rules: %w", err)
		}
		rules, err = obs.ParseWatchRules(data)
		if err != nil {
			return err
		}
	}
	sv, err := serve.New(serve.Config{
		GraphPath:             *graphPath,
		ModelPath:             *modelPath,
		SnapshotFormat:        *snapFormat,
		ANNM:                  *annM,
		ANNEfConstruction:     *annEfC,
		ANNEfSearch:           *annEfS,
		ANNSeed:               *annSeed,
		CacheSize:             *cacheSize,
		TranslateWorkers:      *workers,
		RequestTimeout:        *timeout,
		DrainTimeout:          *drain,
		MaxK:                  *maxK,
		TraceDisabled:         *traceRate < 0,
		TraceSampleHead:       *traceHead,
		TraceSampleRate:       *traceRate,
		TraceRingSize:         *traceRing,
		TraceSlowRingSize:     *slowRing,
		TraceSlowThreshold:    *slowThreshold,
		Logger:                logger,
		RuntimePollInterval:   *runtimePoll,
		HistoryDisabled:       *historyFine < 0,
		HistoryFineInterval:   *historyFine,
		HistoryFineRing:       *historyFineRing,
		HistoryCoarseInterval: *historyCoarse,
		HistoryCoarseRing:     *historyCoarseRing,
		WatchRules:            rules,
		WatchInterval:         *watchInterval,
		AnomalyDir:            *anomalyDir,
		AnomalyKeep:           *anomalyKeep,
		AnomalyCooldown:       *anomalyCooldown,
	})
	if err != nil {
		return err
	}
	bound, err := sv.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "transnserve: serving generation %d on %s\n", sv.Generation(), bound)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		switch sig {
		case syscall.SIGHUP:
			start := time.Now()
			if err := sv.Reload(); err != nil {
				// A failed reload keeps the previous snapshot live;
				// report and keep serving.
				fmt.Fprintf(os.Stderr, "transnserve: reload failed (still serving generation %d): %v\n",
					sv.Generation(), err)
				continue
			}
			fmt.Fprintf(os.Stderr, "transnserve: reloaded to generation %d in %s\n",
				sv.Generation(), time.Since(start).Round(time.Millisecond))
		default:
			fmt.Fprintf(os.Stderr, "transnserve: %v received, draining\n", sig)
			return sv.Shutdown()
		}
	}
	return nil
}
