// Command benchrun regenerates the paper's evaluation tables and
// figures on the synthetic datasets:
//
//	benchrun -table 2          # dataset statistics  (Table II)
//	benchrun -table 3          # node classification (Table III)
//	benchrun -table 4          # link prediction     (Table IV)
//	benchrun -table 5          # ablation study      (Table V)
//	benchrun -figure 6         # t-SNE case study    (Figure 6)
//	benchrun -all              # everything
//
// By default runs use quick (small) settings; -full switches to larger
// networks and paper-like hyperparameters. -points writes Figure 6
// coordinates as TSV to the given file.
//
// Every experiment runs under a telemetry span; -timings prints the
// per-experiment wall time from those spans, -report writes the whole
// run as a schema-stable JSON report (obs.ReportSchema) whose metrics
// section carries each result number keyed as
// "<experiment>/<dataset>/<method>/<metric>", and -debug-addr serves
// live /metrics, /debug/vars, /debug/pprof/* and /debug/diagnostics
// while the run is in flight. -diag attaches internal/diag's
// convergence monitor to every TransN training and writes its
// diagnostics document when the run finishes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transn/internal/diag"
	"transn/internal/experiments"
	"transn/internal/obs"
)

func main() {
	var (
		table     = flag.Int("table", 0, "table to regenerate (2, 3, 4, or 5)")
		figure    = flag.Int("figure", 0, "figure to regenerate (6)")
		all       = flag.Bool("all", false, "regenerate every table and figure")
		cluster   = flag.Bool("cluster", false, "run the node-clustering extension task (NMI)")
		full      = flag.Bool("full", false, "use full-size networks and paper-like settings")
		seed      = flag.Int64("seed", 1, "random seed")
		dim       = flag.Int("dim", 0, "embedding dimensionality (default 32 quick / 64 full)")
		reps      = flag.Int("reps", 0, "classification repetitions (default 3 quick / 10 full)")
		points    = flag.String("points", "", "write Figure 6 coordinates as TSV to this file")
		workers   = flag.Int("workers", 0, "TransN worker-pool size (0 = all cores, 1 = serial)")
		timings   = flag.Bool("timings", false, "print wall-clock time per experiment")
		report    = flag.String("report", "", "write the run's telemetry report as JSON to this file")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/diagnostics on this address while running")
		diagOut   = flag.String("diag", "", "attach the convergence monitor to every TransN training and write its diagnostics document (last training's loss curve) as JSON to this file")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *full {
		opts = experiments.FullOptions()
	}
	opts.Seed = *seed
	if *dim > 0 {
		opts.Dim = *dim
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	opts.Workers = *workers

	if !*all && *table == 0 && *figure == 0 && !*cluster {
		flag.Usage()
		os.Exit(2)
	}

	// The convergence monitor observes every TransN training the run
	// performs. It resets on each training's iteration 0, so the served
	// and written documents describe the most recent loss curve.
	var monitor *diag.Monitor
	if *diagOut != "" || *debugAddr != "" {
		monitor = diag.NewMonitor(nil, diag.MonitorOptions{})
		opts.Observer = monitor.Observe
	}
	tel := obs.NewRun()
	if *debugAddr != "" {
		tel.PublishExpvar("benchrun")
		srv, addr, err := tel.ServeDebug(*debugAddr,
			obs.Route{Pattern: "/debug/diagnostics", Handler: monitor})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug server listening on %s\n", addr)
	}
	metrics := map[string]float64{}
	record := func(experiment string, rows []experiments.Row) {
		for _, r := range rows {
			for metric, v := range r.Metrics {
				metrics[experiment+"/"+r.Dataset+"/"+r.Method+"/"+metric] = v
			}
		}
	}

	run := func(name string, f func() error) {
		span := tel.Trace.Start(name)
		if err := f(); err != nil {
			span.End()
			fmt.Fprintf(os.Stderr, "benchrun: %s: %v\n", name, err)
			os.Exit(1)
		}
		d := span.End()
		if *timings {
			fmt.Printf("[%s took %v]\n", name, d.Round(time.Millisecond))
		}
		fmt.Println()
	}

	if *all || *table == 2 {
		run("table2", func() error {
			experiments.Table2(os.Stdout, opts)
			return nil
		})
	}
	if *all || *table == 3 {
		run("table3", func() error {
			rows, err := experiments.Table3(os.Stdout, opts)
			record("table3", rows)
			return err
		})
	}
	if *all || *table == 4 {
		run("table4", func() error {
			rows, err := experiments.Table4(os.Stdout, opts)
			record("table4", rows)
			return err
		})
	}
	if *all || *table == 5 {
		run("table5", func() error {
			rows, err := experiments.Table5(os.Stdout, opts)
			record("table5", rows)
			return err
		})
	}
	if *cluster {
		run("clustering", func() error {
			rows, err := experiments.TableClustering(os.Stdout, opts)
			record("clustering", rows)
			return err
		})
	}
	if *all || *figure == 6 {
		run("figure6", func() error {
			results, err := experiments.Figure6(os.Stdout, opts)
			if err != nil {
				return err
			}
			for _, r := range results {
				metrics["figure6/App-Daily/"+r.Method+"/Silhouette"] = r.Silhouette
				experiments.RenderScatter(os.Stdout,
					fmt.Sprintf("%s (silhouette %.4f)", r.Method, r.Silhouette),
					r.Points, r.Labels, 72, 24)
			}
			if *points != "" {
				f, err := os.Create(*points)
				if err != nil {
					return err
				}
				defer f.Close()
				experiments.WriteFigure6Points(f, results)
				fmt.Printf("  wrote coordinates to %s\n", *points)
			}
			return nil
		})
	}

	if *report != "" {
		rep := tel.Report("benchrun")
		if len(metrics) > 0 {
			rep.Metrics = metrics
		}
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: -report: %v\n", err)
			os.Exit(1)
		}
		if err := obs.WriteReport(f, rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchrun: -report: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: -report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote telemetry report to %s\n", *report)
	}
	if *diagOut != "" {
		f, err := os.Create(*diagOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: -diag: %v\n", err)
			os.Exit(1)
		}
		if err := diag.Write(f, monitor.Document("benchrun")); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchrun: -diag: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: -diag: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote diagnostics to %s\n", *diagOut)
	}
}
