// Command benchrun regenerates the paper's evaluation tables and
// figures on the synthetic datasets:
//
//	benchrun -table 2          # dataset statistics  (Table II)
//	benchrun -table 3          # node classification (Table III)
//	benchrun -table 4          # link prediction     (Table IV)
//	benchrun -table 5          # ablation study      (Table V)
//	benchrun -figure 6         # t-SNE case study    (Figure 6)
//	benchrun -all              # everything
//
// By default runs use quick (small) settings; -full switches to larger
// networks and paper-like hyperparameters. -points writes Figure 6
// coordinates as TSV to the given file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"transn/internal/experiments"
)

func main() {
	var (
		table   = flag.Int("table", 0, "table to regenerate (2, 3, 4, or 5)")
		figure  = flag.Int("figure", 0, "figure to regenerate (6)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		cluster = flag.Bool("cluster", false, "run the node-clustering extension task (NMI)")
		full    = flag.Bool("full", false, "use full-size networks and paper-like settings")
		seed    = flag.Int64("seed", 1, "random seed")
		dim     = flag.Int("dim", 0, "embedding dimensionality (default 32 quick / 64 full)")
		reps    = flag.Int("reps", 0, "classification repetitions (default 3 quick / 10 full)")
		points  = flag.String("points", "", "write Figure 6 coordinates as TSV to this file")
		workers = flag.Int("workers", 0, "TransN worker-pool size (0 = all cores, 1 = serial)")
		timings = flag.Bool("timings", false, "print wall-clock time per experiment")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *full {
		opts = experiments.FullOptions()
	}
	opts.Seed = *seed
	if *dim > 0 {
		opts.Dim = *dim
	}
	if *reps > 0 {
		opts.Reps = *reps
	}
	opts.Workers = *workers

	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *timings {
			fmt.Printf("[%s took %v]\n", name, time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}

	if *all || *table == 2 {
		run("table2", func() error {
			experiments.Table2(os.Stdout, opts)
			return nil
		})
	}
	if *all || *table == 3 {
		run("table3", func() error {
			_, err := experiments.Table3(os.Stdout, opts)
			return err
		})
	}
	if *all || *table == 4 {
		run("table4", func() error {
			_, err := experiments.Table4(os.Stdout, opts)
			return err
		})
	}
	if *all || *table == 5 {
		run("table5", func() error {
			_, err := experiments.Table5(os.Stdout, opts)
			return err
		})
	}
	if *cluster {
		run("clustering", func() error {
			_, err := experiments.TableClustering(os.Stdout, opts)
			return err
		})
	}
	if *all || *figure == 6 {
		run("figure6", func() error {
			results, err := experiments.Figure6(os.Stdout, opts)
			if err != nil {
				return err
			}
			for _, r := range results {
				experiments.RenderScatter(os.Stdout,
					fmt.Sprintf("%s (silhouette %.4f)", r.Method, r.Silhouette),
					r.Points, r.Labels, 72, 24)
			}
			if *points != "" {
				f, err := os.Create(*points)
				if err != nil {
					return err
				}
				defer f.Close()
				experiments.WriteFigure6Points(f, results)
				fmt.Printf("  wrote coordinates to %s\n", *points)
			}
			return nil
		})
	}
}
