// Command transnlint runs the repo's custom static analyzers
// (internal/lint) over the whole module and reports findings with
// stable codes: norace containment, determinism (global rand, wall-
// clock seeds, map iteration order), finite-write hygiene,
// schema-registry consistency, doc coverage of the exported API
// surface (doccheck), atomic-access consistency with 386 alignment,
// goroutine/ticker lifecycle, lock-ordering and release balance, and
// compiler-verified //lint:alloc-free pins. See DESIGN.md §9.
//
// Usage:
//
//	transnlint [-C dir] [-json] [-name NAME] [./...]
//
// Without -json, findings print one per line as file:line:col:
// [code] message. With -json, the schema-stable transn.lint/v1
// document is written to stdout (validate it with `transn checkreport
// -report lint.json`). The exit status is 0 when the tree is clean, 1
// when there are findings, 2 on a load or usage error — so CI can gate
// on it directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"transn/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("transnlint", flag.ExitOnError)
	dir := fs.String("C", ".", "module directory to lint (any directory inside the module)")
	jsonOut := fs.Bool("json", false, "write the transn.lint/v1 document to stdout")
	name := fs.String("name", "transnlint", "document name")
	fs.Parse(os.Args[1:])

	// The only supported pattern is the whole module; accept ./... (and
	// nothing) so the invocation reads like a go tool.
	for _, arg := range fs.Args() {
		if arg != "./..." {
			fmt.Fprintf(os.Stderr, "transnlint: unsupported pattern %q (only ./... — the analyzers are whole-module)\n", arg)
			os.Exit(2)
		}
	}

	mod, err := lint.LoadRepo(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "transnlint: %v\n", err)
		os.Exit(2)
	}
	doc := lint.Run(mod, lint.Defaults(), lint.Analyzers(), *name)

	if *jsonOut {
		if err := lint.Write(os.Stdout, doc); err != nil {
			fmt.Fprintf(os.Stderr, "transnlint: %v\n", err)
			os.Exit(2)
		}
		for _, f := range doc.Findings {
			fmt.Fprintln(os.Stderr, f)
		}
	} else {
		for _, f := range doc.Findings {
			fmt.Println(f)
		}
	}
	if len(doc.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "transnlint: %d finding(s) across %d packages\n", len(doc.Findings), doc.Packages)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "transnlint: clean (%d packages, %d suppression(s) in use)\n", doc.Packages, doc.Suppressions)
}
