package main

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"transn/internal/obs"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Fatalf("empty sparkline = %q", got)
	}
	if got := sparkline([]float64{0, 0, 0}, 10); got != "▁▁▁" {
		t.Fatalf("flat sparkline = %q", got)
	}
	got := sparkline([]float64{0, 1, 2, 4}, 10)
	runes := []rune(got)
	if len(runes) != 4 {
		t.Fatalf("sparkline width = %d, want 4", len(runes))
	}
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline %q: min/max glyphs wrong", got)
	}
	// Longer than width: only the newest values render.
	if got := sparkline([]float64{9, 9, 9, 0, 0}, 2); got != "▁▁" {
		t.Fatalf("truncated sparkline = %q, want newest-two baseline", got)
	}
	// NaN renders as the baseline, never panics or skews the scale.
	if got := sparkline([]float64{math.NaN(), 1}, 10); []rune(got)[0] != '▁' {
		t.Fatalf("NaN sparkline = %q", got)
	}
}

func TestDeltaFractions(t *testing.T) {
	hits := []int64{0, 6, 6, 9}
	misses := []int64{0, 2, 2, 10}
	got := deltaFractions(hits, misses)
	want := []float64{0, 0.75, 0, 3.0 / 11.0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("fraction[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// A counter reset mid-series stays within [0, 1].
	got = deltaFractions([]int64{100, 3}, []int64{50, 1})
	if got[1] != 0.75 {
		t.Fatalf("reset fraction = %v, want 3/(3+1)", got[1])
	}
	if out := deltaFractions(nil, nil); len(out) != 0 {
		t.Fatalf("empty series produced %v", out)
	}
}

// watchDump builds a real two-sample history dump through the obs
// package, so the renderer is tested against the genuine schema.
func watchDump(t *testing.T) *obs.HistoryDump {
	t.Helper()
	reg := obs.NewRegistry()
	reqs := reg.Counter(obs.MetricServeRequests)
	reg.Counter(obs.MetricServeErrors)
	hits := reg.Counter(obs.MetricServeCacheHits)
	misses := reg.Counter(obs.MetricServeCacheMisses)
	lat := reg.Histogram(obs.MetricServeLatency, []float64{0.01, 0.1, 1})
	gor := reg.Gauge(obs.MetricRuntimeGoroutines)
	heap := reg.Gauge(obs.MetricRuntimeHeapAlloc)
	h := obs.NewHistory(reg, obs.HistoryConfig{FineCapacity: 16, CoarseCapacity: 8})
	stop := h.Start() // first sample of both rings
	stop()
	reqs.Add(20)
	hits.Add(6)
	misses.Add(2)
	lat.Observe(0.05)
	lat.Observe(0.05)
	gor.Set(12)
	heap.Set(64 << 20)
	// A second fine sample via a fresh Start (immediate sample) keeps
	// this test off unexported history internals.
	stop = h.Start()
	stop()
	return h.Dump()
}

func TestRenderHistory(t *testing.T) {
	dump := watchDump(t)
	res, err := pickResolution(dump, obs.HistoryResFine)
	if err != nil {
		t.Fatal(err)
	}
	frame := renderHistory(res, "http://localhost:7077", 40)
	for _, want := range []string{
		"transn watch — http://localhost:7077",
		"fine", "2 samples",
		"req/s", "err/s", "p99 ms", "p50 ms", "hit %", "gorout", "heap MB",
	} {
		if !strings.Contains(frame, want) {
			t.Fatalf("frame missing %q:\n%s", want, frame)
		}
	}
	// The newest goroutine reading lands as the row's numeric value.
	if !strings.Contains(frame, "12") {
		t.Fatalf("frame does not show the goroutine gauge value:\n%s", frame)
	}
	// Coarse resolution renders too.
	coarse, err := pickResolution(dump, obs.HistoryResCoarse)
	if err != nil {
		t.Fatal(err)
	}
	if out := renderHistory(coarse, "t", 40); !strings.Contains(out, "coarse") {
		t.Fatalf("coarse frame wrong:\n%s", out)
	}
	if _, err := pickResolution(dump, "hourly"); err == nil {
		t.Fatal("unknown resolution resolved")
	}
}

func TestFetchHistory(t *testing.T) {
	dump := watchDump(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/history" {
			http.NotFound(w, r)
			return
		}
		obs.WriteHistoryDump(w, dump)
	}))
	defer srv.Close()

	got, err := fetchHistory(srv.Client(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != obs.HistorySchema || len(got.Resolutions) != 2 {
		t.Fatalf("fetched dump wrong: %+v", got)
	}

	// Non-200 (recorder disabled) is a useful error, not a decode panic.
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no recorder", http.StatusNotFound)
	}))
	defer down.Close()
	if _, err := fetchHistory(down.Client(), down.URL); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("disabled-recorder fetch: err = %v", err)
	}

	// Corrupt documents are rejected by validation.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"schema": "transn.history/v9", "resolutions": []}`))
	}))
	defer bad.Close()
	if _, err := fetchHistory(bad.Client(), bad.URL); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("corrupt fetch: err = %v", err)
	}
}

func TestCmdWatchSingleFrame(t *testing.T) {
	dump := watchDump(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.WriteHistoryDump(w, dump)
	}))
	defer srv.Close()
	if err := cmdWatch([]string{"-target", srv.URL, "-frames", "1"}); err != nil {
		t.Fatalf("single-frame watch failed: %v", err)
	}
	if err := cmdWatch([]string{"-frames", "1"}); err == nil {
		t.Fatal("watch without -target succeeded")
	}
	if err := cmdWatch([]string{"-target", srv.URL, "-frames", "1", "-width", "0"}); err == nil {
		t.Fatal("watch with zero width succeeded")
	}
}
