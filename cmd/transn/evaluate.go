package main

import (
	"flag"
	"fmt"
	"math/rand"

	"transn/internal/eval"
	"transn/internal/graph"
	"transn/internal/mat"
)

// cmdEvaluate scores previously trained embeddings on the paper's tasks:
//
//	transn evaluate -input net.tsv -emb emb.tsv -task classify [-reps 10]
//	transn evaluate -input net.tsv -emb emb.tsv -task cluster
//
// Link prediction needs the model to be retrained on a split, so it is
// exposed through `benchrun -table 4` rather than here.
func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	input := fs.String("input", "", "input network TSV (required)")
	embPath := fs.String("emb", "", "embeddings TSV from `transn train` (required)")
	task := fs.String("task", "classify", "evaluation task: classify or cluster")
	reps := fs.Int("reps", 10, "classification repetitions")
	trainFrac := fs.Float64("train-frac", 0.9, "train fraction for classification")
	seed := fs.Int64("seed", 1, "evaluation seed")
	fs.Parse(args)
	if *input == "" || *embPath == "" {
		return fmt.Errorf("evaluate: -input and -emb are required")
	}
	g, err := loadGraph(*input)
	if err != nil {
		return err
	}
	emb, names, err := loadEmbeddings(*embPath)
	if err != nil {
		return err
	}
	aligned, err := alignEmbeddings(g, emb, names)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	switch *task {
	case "classify":
		macro, micro, err := eval.NodeClassification(aligned, g, *trainFrac, *reps, rng)
		if err != nil {
			return err
		}
		fmt.Printf("node classification over %d labeled nodes (%d classes, %d reps):\n",
			len(g.LabeledNodes()), g.NumLabels(), *reps)
		fmt.Printf("  macro-F1: %.4f\n  micro-F1: %.4f\n", macro, micro)
	case "cluster":
		labeled := g.LabeledNodes()
		if len(labeled) == 0 {
			return fmt.Errorf("evaluate: no labeled nodes")
		}
		X := mat.New(len(labeled), aligned.C)
		labels := make([]int, len(labeled))
		for i, id := range labeled {
			X.SetRow(i, aligned.Row(int(id)))
			labels[i] = g.Label(id)
		}
		nmi := eval.NodeClustering(X, labels, g.NumLabels(), rng)
		fmt.Printf("node clustering over %d labeled nodes (k = %d):\n",
			len(labeled), g.NumLabels())
		fmt.Printf("  NMI: %.4f\n", nmi)
	default:
		return fmt.Errorf("evaluate: unknown task %q", *task)
	}
	return nil
}

// alignEmbeddings reorders embedding rows (keyed by node name) into
// graph NodeID order. Nodes missing from the file get zero rows; extra
// names are rejected.
func alignEmbeddings(g *graph.Graph, emb *mat.Dense, names []string) (*mat.Dense, error) {
	byName := map[string]graph.NodeID{}
	for _, n := range g.Nodes {
		byName[n.Name] = n.ID
	}
	out := mat.New(g.NumNodes(), emb.C)
	for i, name := range names {
		id, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("embedding for unknown node %q", name)
		}
		out.SetRow(int(id), emb.Row(i))
	}
	return out, nil
}
