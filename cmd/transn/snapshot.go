package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"transn/internal/ann"
	"transn/internal/snapfmt"
	"transn/internal/transn"
)

// cmdSnapshot dispatches the snapshot subcommand's verbs: pack (gob →
// transn.snap/v1) and inspect (validate + describe a .snap file).
func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("snapshot: a verb is required: pack or inspect")
	}
	switch args[0] {
	case "pack":
		return cmdSnapshotPack(args[1:])
	case "inspect":
		return cmdSnapshotInspect(args[1:])
	default:
		return fmt.Errorf("snapshot: unknown verb %q (want pack or inspect)", args[0])
	}
}

// cmdSnapshotPack packs a trained gob model into a transn.snap/v1
// file, embedding a deterministic HNSW index unless -ann=false.
func cmdSnapshotPack(args []string) error {
	fs := flag.NewFlagSet("snapshot pack", flag.ExitOnError)
	input := fs.String("input", "", "network TSV the model was trained on (required)")
	model := fs.String("model", "", "trained model gob from `transn train -model` (required)")
	output := fs.String("output", "", "output .snap path (required)")
	withANN := fs.Bool("ann", true, "embed a prebuilt HNSW index over the final table")
	annM := fs.Int("ann-m", 0, "HNSW max neighbors per node on upper layers (0 = default 16)")
	annEfC := fs.Int("ann-ef-construction", 0, "HNSW construction beam width (0 = default 200)")
	annEfS := fs.Int("ann-ef-search", 0, "HNSW default search beam width stored in the index (0 = default 64)")
	annSeed := fs.Int64("ann-seed", 0, "seed for the deterministic HNSW level draws")
	fs.Parse(args)
	if *input == "" || *model == "" || *output == "" {
		return fmt.Errorf("snapshot pack: -input, -model and -output are required")
	}
	g, err := loadGraph(*input)
	if err != nil {
		return err
	}
	mf, err := os.Open(*model)
	if err != nil {
		return err
	}
	defer mf.Close()
	m, err := transn.Load(mf, g)
	if err != nil {
		return err
	}
	src, err := snapfmt.FromModel(m, g)
	if err != nil {
		return err
	}
	if *withANN {
		idx, err := ann.Build(src.Final, ann.Norms(src.Final), ann.Config{
			M: *annM, EfConstruction: *annEfC, EfSearch: *annEfS, Seed: *annSeed,
		})
		if err != nil {
			return err
		}
		src.ANN = idx.AppendTo(nil)
		st := idx.Stats()
		infof("transn: built HNSW index: %d nodes, %d edges, max level %d\n",
			st.Nodes, st.Edges, st.MaxLevel)
	}
	out, err := os.Create(*output)
	if err != nil {
		return err
	}
	if err := snapfmt.Pack(out, src); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(*output)
	if err != nil {
		return err
	}
	infof("transn: packed %s (%d bytes)\n", *output, fi.Size())
	return nil
}

// cmdSnapshotInspect opens a .snap file — running the format's full
// fail-closed validation (SNAPSHOT.md) — and prints its shape and
// section directory; -json emits the transn.snap.inspect/v1 document.
func cmdSnapshotInspect(args []string) error {
	fs := flag.NewFlagSet("snapshot inspect", flag.ExitOnError)
	path := fs.String("snapshot", "", ".snap file to inspect (required)")
	asJSON := fs.Bool("json", false, "emit the transn.snap.inspect/v1 JSON document")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("snapshot inspect: -snapshot is required")
	}
	s, err := snapfmt.Open(*path, snapfmt.OpenOptions{NoMmap: true})
	if err != nil {
		return err
	}
	defer s.Close()
	doc := s.Describe()
	if *asJSON {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("%s: transn.snap/v%d, %d bytes, checksum %s\n", *path, doc.Version, doc.SizeBytes, doc.Checksum)
	fmt.Printf("  shape: %d nodes, %d views, %d translator pairs, dim %d, ann=%v\n",
		doc.Nodes, doc.Views, doc.Pairs, doc.Dim, doc.HasANN)
	fmt.Printf("  %-10s %5s %10s %10s\n", "section", "arg", "offset", "length")
	for _, sec := range doc.Sections {
		fmt.Printf("  %-10s %5d %10d %10d\n", sec.Kind, sec.Arg, sec.Offset, sec.Length)
	}
	return nil
}
