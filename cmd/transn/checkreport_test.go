package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"transn/internal/lint"
)

// writeReport drops data into a temp file and returns its path.
func writeReport(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCheckReportDispatch covers the schema-field dispatch: a known
// schema picks its validator from reportValidators, an unknown schema
// is an error naming every registered schema (the typo-facing UX), and
// a schema-less file still reaches the telemetry validator whose own
// error describes the legacy format.
func TestCheckReportDispatch(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.Write(&buf, &lint.Document{Schema: lint.Schema, Name: "t", Packages: 1}); err != nil {
		t.Fatal(err)
	}
	lintPath := writeReport(t, "lint.json", buf.Bytes())
	if err := cmdCheckReport([]string{"-report", lintPath}); err != nil {
		t.Errorf("valid lint document rejected: %v", err)
	}

	bogus := writeReport(t, "bogus.json", []byte(`{"schema":"transn.bogus/v9"}`))
	err := cmdCheckReport([]string{"-report", bogus})
	if err == nil {
		t.Fatal("unknown schema accepted")
	}
	if !strings.Contains(err.Error(), `unknown schema "transn.bogus/v9"`) {
		t.Errorf("error %q does not name the offending schema", err)
	}
	for _, want := range registeredSchemas() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list registered schema %s", err, want)
		}
	}

	legacy := writeReport(t, "legacy.json", []byte(`{"method":"transn"}`))
	err = cmdCheckReport([]string{"-report", legacy})
	if err == nil {
		t.Fatal("schema-less junk accepted")
	}
	if strings.Contains(err.Error(), "unknown schema") {
		t.Errorf("schema-less file hit the unknown-schema branch: %v", err)
	}
}

// TestRegisteredSchemas pins the dispatch table's coverage: every
// document family the toolchain writes must have a row, so checkreport
// never silently misvalidates a new artifact under the legacy path.
func TestRegisteredSchemas(t *testing.T) {
	names := registeredSchemas()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("schema %s registered twice", n)
		}
		seen[n] = true
	}
	for _, want := range []string{
		"transn.diagnostics/v1",
		"transn.lint/v1",
		"transn.telemetry.report/v1",
	} {
		if !seen[want] {
			t.Errorf("schema %s missing from reportValidators", want)
		}
	}
}
