package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"transn/internal/diag"
	"transn/internal/transn"
)

// cmdDiagnose loads a saved TransN model (train -model) plus its
// network and runs the internal/diag analyzers over it: embedding and
// translator health, walk-corpus coverage under the model's own walk
// configuration, and — when a recorded event stream is supplied —
// convergence. The JSON document goes to -output (stdout by default),
// a human-readable digest to stdout with -summary, and the exit status
// is non-zero when any error-severity finding is present.
func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	input := fs.String("input", "", "network TSV the model was trained on (required)")
	modelPath := fs.String("model", "", "saved TransN model from `train -model` (required)")
	output := fs.String("output", "", "write the diagnostics JSON here (default stdout; omitted when -summary is set and no path is given)")
	summary := fs.Bool("summary", false, "print a human-readable digest to stdout instead of (or alongside -output) the JSON")
	events := fs.String("events", "", "recorded `train -events` JSONL to replay for convergence analysis (saved models carry no loss history)")
	corpusSeed := fs.Int64("corpus-seed", 1, "seed for the diagnostic walk corpora")
	noCorpus := fs.Bool("no-corpus", false, "skip the walk-coverage analyzer (cheapest run: model health only)")
	coverageWarn := fs.Float64("coverage-warn", 0.95, "per-view coverage ratio below which a corpus.coverage warning fires")
	workers := fs.Int("workers", 0, "worker-pool size for corpus generation (0 = the model's trained setting)")
	fs.Parse(args)
	if *input == "" || *modelPath == "" {
		return fmt.Errorf("diagnose: -input and -model are required")
	}
	g, err := loadGraph(*input)
	if err != nil {
		return err
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := transn.Load(mf, g)
	mf.Close()
	if err != nil {
		return fmt.Errorf("diagnose: loading %s: %w", *modelPath, err)
	}

	doc := diag.Analyze(model, diag.Options{
		Name:         "diagnose",
		SkipCorpus:   *noCorpus,
		CorpusSeed:   *corpusSeed,
		Workers:      *workers,
		CoverageWarn: *coverageWarn,
	})
	if *events != "" {
		ef, err := os.Open(*events)
		if err != nil {
			return err
		}
		conv, fs, rerr := diag.ReplayEvents(ef, diag.MonitorOptions{})
		ef.Close()
		if rerr != nil {
			return fmt.Errorf("diagnose: -events: %w", rerr)
		}
		doc.Convergence = conv
		doc.Add(fs...)
	}

	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		if err := diag.Write(f, doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		infof("wrote diagnostics to %s\n", *output)
	} else if !*summary {
		if err := diag.Write(os.Stdout, doc); err != nil {
			return err
		}
	}
	if *summary {
		printDiagSummary(doc)
	}
	return doc.Err()
}

func printDiagSummary(doc *diag.Document) {
	verdict := "HEALTHY"
	if !doc.Healthy {
		verdict = "UNHEALTHY"
	}
	var nErr, nWarn, nInfo int
	for _, f := range doc.Findings {
		switch f.Severity {
		case diag.SeverityError:
			nErr++
		case diag.SeverityWarning:
			nWarn++
		default:
			nInfo++
		}
	}
	fmt.Printf("diagnostics: %s (%d errors, %d warnings, %d infos)\n", verdict, nErr, nWarn, nInfo)
	if doc.Model != nil {
		for _, vh := range doc.Model.Views {
			fmt.Printf("view %d: nodes=%d nan=%d inf=%d norm=[%.3g %.3g %.3g] collapsed=%d eff-dims=%.1f/%d\n",
				vh.View, vh.Nodes, vh.NaN, vh.Inf, vh.NormMin, vh.NormMean, vh.NormMax,
				vh.CollapsedDims, vh.EffectiveDims, doc.Model.Dim)
		}
		for _, th := range doc.Model.Translators {
			fmt.Printf("pair %d (views %d<->%d): segments=%d translation-mse=%.3f/%.3f round-trip-mse=%.3f/%.3f\n",
				th.Pair, th.I, th.J, th.Segments,
				th.TranslationMSE[0], th.TranslationMSE[1], th.RoundTripMSE[0], th.RoundTripMSE[1])
		}
	}
	for _, cov := range doc.Corpus {
		kind := "homo"
		if cov.Hetero {
			kind = "heter"
		}
		fmt.Printf("corpus view %d (%s): coverage=%.1f%% entropy=%.3f pairs-w1=%d pairs-w2=%d bias-ratio=%.3f\n",
			cov.View, kind, 100*cov.Coverage, cov.VisitEntropy,
			cov.ContextPairsW1, cov.ContextPairsW2, cov.BiasRatio)
	}
	if c := doc.Convergence; c != nil {
		plateau := "-"
		if c.PlateauAt >= 0 {
			plateau = fmt.Sprintf("%d", c.PlateauAt)
		}
		fmt.Printf("convergence: %d iterations, final single=%.4g cross=%.4g, plateau-at=%s diverged=%v non-finite=%v\n",
			c.Iterations, c.FinalSingle, c.FinalCross, plateau, c.Diverged, c.NonFinite)
	}
	if len(doc.Findings) > 0 {
		fmt.Println("findings:")
		for _, f := range doc.Findings {
			var scope []string
			if f.View >= 0 {
				scope = append(scope, fmt.Sprintf("view %d", f.View))
			}
			if f.Pair >= 0 {
				scope = append(scope, fmt.Sprintf("pair %d", f.Pair))
			}
			loc := ""
			if len(scope) > 0 {
				loc = " (" + strings.Join(scope, ", ") + ")"
			}
			fmt.Printf("  [%s] %s%s: %s\n", f.Severity, f.Code, loc, f.Message)
		}
	}
}
