package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"transn/internal/obs"
)

// sparkGlyphs are the eight block heights a sparkline is quantized to.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the last width values as one line of block glyphs,
// scaled against the slice maximum (an all-zero series is a flat
// baseline). Non-finite values render as the baseline glyph.
func sparkline(vals []float64, width int) string {
	if len(vals) > width {
		vals = vals[len(vals)-width:]
	}
	max := 0.0
	for _, v := range vals {
		if v == v && v > max { // v==v filters NaN
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		g := 0
		if max > 0 && v == v && v > 0 {
			g = int(v / max * float64(len(sparkGlyphs)-1))
			if g >= len(sparkGlyphs) {
				g = len(sparkGlyphs) - 1
			}
		}
		b.WriteRune(sparkGlyphs[g])
	}
	return b.String()
}

// deltaFractions derives one fraction per interval from two counter
// series: num/(num+den) of the per-step deltas (counter-reset safe;
// element 0 and empty intervals are 0). Used for the cache hit-rate row
// (hits vs misses).
func deltaFractions(num, den []int64) []float64 {
	out := make([]float64, len(num))
	step := func(prev, cur int64) int64 {
		if cur < prev {
			return cur
		}
		return cur - prev
	}
	for i := 1; i < len(num) && i < len(den); i++ {
		dn := step(num[i-1], num[i])
		dd := step(den[i-1], den[i])
		if dn+dd > 0 {
			out[i] = float64(dn) / float64(dn+dd)
		}
	}
	return out
}

// last returns the final element of a series, 0 when empty.
func last(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)-1]
}

// scale multiplies every element, for unit conversions in display rows.
func scale(vals []float64, by float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * by
	}
	return out
}

// renderHistory formats one resolution of a history dump as the watch
// frame: a header line plus one sparkline row per tracked series. Pure
// (no I/O), so tests pin the layout directly.
func renderHistory(res *obs.HistoryResolution, target string, width int) string {
	var b strings.Builder
	n := len(res.TimesUnixMS)
	span := 0.0
	if n > 1 {
		span = res.OffsetSeconds[n-1] - res.OffsetSeconds[0]
	}
	fmt.Fprintf(&b, "transn watch — %s (%s, %gs interval, %d samples, %.0fs span)\n",
		target, res.Name, res.IntervalSeconds, n, span)
	row := func(label, unit string, vals []float64) {
		fmt.Fprintf(&b, "  %-10s %s  %.4g%s\n", label, sparkline(vals, width), last(vals), unit)
	}
	row("req/s", "", res.Rates[obs.MetricServeRequests])
	row("err/s", "", res.Rates[obs.MetricServeErrors])
	if q, ok := res.Quantiles[obs.MetricServeLatency]; ok {
		row("p99 ms", "ms", scale(q.P99, 1e3))
		row("p50 ms", "ms", scale(q.P50, 1e3))
	}
	hit := deltaFractions(res.Counters[obs.MetricServeCacheHits], res.Counters[obs.MetricServeCacheMisses])
	row("hit %", "%", scale(hit, 100))
	if g, ok := res.Gauges[obs.MetricRuntimeGoroutines]; ok {
		row("gorout", "", g)
	}
	if g, ok := res.Gauges[obs.MetricRuntimeHeapAlloc]; ok {
		row("heap MB", "MB", scale(g, 1.0/(1<<20)))
	}
	return b.String()
}

// fetchHistory pulls and validates one /debug/history dump.
func fetchHistory(client *http.Client, target string) (*obs.HistoryDump, error) {
	resp, err := client.Get(strings.TrimRight(target, "/") + "/debug/history")
	if err != nil {
		return nil, fmt.Errorf("watch: fetching history: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("watch: reading history: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("watch: /debug/history answered %d (is the recorder enabled?)", resp.StatusCode)
	}
	if err := obs.ValidateHistoryDump(data); err != nil {
		return nil, fmt.Errorf("watch: %w", err)
	}
	var dump obs.HistoryDump
	if err := json.Unmarshal(data, &dump); err != nil {
		return nil, fmt.Errorf("watch: decoding history: %w", err)
	}
	return &dump, nil
}

// pickResolution selects the named resolution from a validated dump.
func pickResolution(dump *obs.HistoryDump, name string) (*obs.HistoryResolution, error) {
	for i := range dump.Resolutions {
		if dump.Resolutions[i].Name == name {
			return &dump.Resolutions[i], nil
		}
	}
	return nil, fmt.Errorf("watch: no resolution %q in dump (want %s or %s)",
		name, obs.HistoryResFine, obs.HistoryResCoarse)
}

// cmdWatch polls a running transnserve's /debug/history endpoint and
// renders a live terminal view of its windowed series. -frames bounds
// the number of renders (CI and tests use -frames 1 for a single
// still); 0 polls until interrupted.
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	target := fs.String("target", "", "base URL of a running transnserve (required)")
	interval := fs.Duration("interval", 2*time.Second, "poll period between frames")
	frames := fs.Int("frames", 0, "frames to render before exiting (0 = until interrupted)")
	resName := fs.String("res", obs.HistoryResFine, "resolution to render: fine or coarse")
	width := fs.Int("width", 60, "sparkline width in samples")
	fs.Parse(args)
	if *target == "" {
		return fmt.Errorf("watch: -target is required")
	}
	if *width < 1 {
		return fmt.Errorf("watch: -width must be positive")
	}
	client := &http.Client{Timeout: 10 * time.Second}
	for n := 0; ; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		dump, err := fetchHistory(client, *target)
		if err != nil {
			return err
		}
		res, err := pickResolution(dump, *resName)
		if err != nil {
			return err
		}
		if *frames != 1 && n > 0 {
			fmt.Print("\x1b[H\x1b[2J") // home + clear between live frames
		}
		fmt.Print(renderHistory(res, *target, *width))
		if *frames > 0 && n+1 >= *frames {
			return nil
		}
	}
}
