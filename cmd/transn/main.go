// Command transn trains heterogeneous network embeddings from the
// command line.
//
// Subcommands:
//
//	transn train -input net.tsv -output emb.tsv [flags]
//	    Train TransN (or a baseline via -method) on a TSV network and
//	    write one embedding per line: <node-name> <v1> <v2> ...
//
//	transn stats -input net.tsv
//	    Print dataset statistics (the Table II columns).
//
//	transn generate -dataset AMiner -output net.tsv [-size full] [-seed N]
//	    Write one of the built-in synthetic datasets as TSV.
//
//	transn neighbors -input net.tsv -emb emb.tsv -node <name> [-k 10]
//	    Load trained embeddings and print a node's nearest neighbors by
//	    cosine similarity.
//
//	transn diagnose -input net.tsv -model model.gob [-summary]
//	    Run the internal/diag analyzers over a saved model: embedding
//	    and translator health, walk-corpus coverage, convergence (from
//	    a recorded -events stream). Exits non-zero on error findings.
//
//	transn snapshot pack -input net.tsv -model model.gob -output model.snap
//	    Pack a trained gob model into a transn.snap/v1 serving snapshot
//	    (see SNAPSHOT.md): mmap-friendly float tables plus, by default,
//	    a prebuilt deterministic HNSW index. transnserve loads it with
//	    -snapshot-format snap.
//
//	transn snapshot inspect -snapshot model.snap [-json]
//	    Validate a .snap file (header, directory, checksum) and print
//	    its shape and section table; -json emits the
//	    transn.snap.inspect/v1 document `transn checkreport` accepts.
//
//	transn watch -target http://host:port
//	    Poll a running transnserve's /debug/history flight recorder and
//	    render a live terminal view of its request-rate, latency-p99,
//	    cache-hit-rate and runtime series.
//
// The TSV network format is documented in internal/graph (Load/Store):
// "N <name> <type> [label]" node lines followed by
// "E <u> <v> <edge-type> [weight]" edge lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"transn/internal/ann"
	"transn/internal/baselines"
	"transn/internal/baselines/hin2vec"
	"transn/internal/baselines/line"
	"transn/internal/baselines/metapath2vec"
	"transn/internal/baselines/mve"
	"transn/internal/baselines/node2vec"
	"transn/internal/baselines/rgcn"
	"transn/internal/baselines/simple"
	"transn/internal/dataset"
	"transn/internal/diag"
	"transn/internal/graph"
	"transn/internal/lint"
	"transn/internal/load"
	"transn/internal/mat"
	"transn/internal/obs"
	"transn/internal/snapfmt"
	"transn/internal/transn"
)

// quiet suppresses the informational stderr lines (-quiet on train):
// results, reports and errors still print.
var quiet bool

// infof prints a progress line to stderr unless -quiet was given.
func infof(format string, args ...any) {
	if !quiet {
		fmt.Fprintf(os.Stderr, format, args...)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "neighbors":
		err = cmdNeighbors(os.Args[2:])
	case "evaluate":
		err = cmdEvaluate(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "checkreport":
		err = cmdCheckReport(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "transn: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "transn: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: transn <train|stats|generate|neighbors|evaluate|diagnose|snapshot|checkreport|watch> [flags]

  train       -input net.tsv -output emb.tsv [-method transn] [-dim 64]
              [-seed 1] [-iterations 5] [-walklen 40] [-encoders 2]
              [-metapath a,b,a] [-ablation <name>] [-quiet]
              [-report rep.json] [-events ev.jsonl] [-debug-addr :6060]
              [-diagnose]
  stats       -input net.tsv
  generate    -dataset AMiner|BLOG|App-Daily|App-Weekly -output net.tsv
              [-size quick|full] [-seed 1]
  neighbors   -input net.tsv -emb emb.tsv -node NAME [-k 10]
  evaluate    -input net.tsv -emb emb.tsv -task classify|cluster
  diagnose    -input net.tsv -model model.gob [-output diag.json]
              [-summary] [-events ev.jsonl] [-no-corpus] [-corpus-seed 1]
              [-coverage-warn 0.95] [-workers 0]
  snapshot    pack -input net.tsv -model model.gob -output model.snap
              [-ann] [-ann-m 16] [-ann-ef-construction 200] [-ann-seed 0]
              | inspect -snapshot model.snap [-json]
  checkreport -report rep.json (telemetry, diagnostics, lint, trace,
              history, serving-bench, snapshot-inspect or knn-bench
              document)
  watch       -target http://host:port [-interval 2s] [-res fine|coarse]
              [-frames N] [-width 60] (live terminal view of a
              transnserve /debug/history metrics feed)`)
}

func loadGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Load(f)
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	input := fs.String("input", "", "input network TSV (required)")
	output := fs.String("output", "", "output embeddings TSV (required)")
	method := fs.String("method", "transn", "embedding method: transn, line, node2vec, deepwalk, metapath2vec, hin2vec, mve, rgcn, simple")
	dim := fs.Int("dim", 64, "embedding dimensionality")
	seed := fs.Int64("seed", 1, "random seed")
	iterations := fs.Int("iterations", 5, "TransN Algorithm 1 iterations")
	walklen := fs.Int("walklen", 40, "random walk length")
	encoders := fs.Int("encoders", 2, "encoders per translator")
	metapath := fs.String("metapath", "", "comma-separated node types for metapath2vec (defaults to an auto-derived pattern)")
	ablation := fs.String("ablation", "", "TransN ablation: no-cross-view, simple-walk, simple-translator, no-translation, no-reconstruction")
	workers := fs.Int("workers", 0, "worker-pool size for TransN walk/skip-gram/cross-view sharding (0 = all cores, 1 = serial)")
	deterministic := fs.Bool("deterministic", false, "apply sharded updates in deterministic order (reproducible for a fixed -seed and -workers; default is Hogwild)")
	parallel := fs.Bool("parallel", false, "deprecated alias for -workers 0 -deterministic (TransN only)")
	modelOut := fs.String("model", "", "also save the trained TransN model (gob) to this path")
	quietFlag := fs.Bool("quiet", false, "suppress informational stderr output (results and errors only)")
	reportOut := fs.String("report", "", "write the training telemetry report as JSON to this path (TransN only)")
	eventsOut := fs.String("events", "", "stream training events as JSON lines to this path, or - for stderr (TransN only)")
	debugAddr := fs.String("debug-addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/diagnostics on this address while training")
	diagnose := fs.Bool("diagnose", false, "run model diagnostics after training, embed them in the -report document, and fail if the final model is non-finite (TransN only)")
	fs.Parse(args)
	quiet = *quietFlag
	if *input == "" || *output == "" {
		return fmt.Errorf("train: -input and -output are required")
	}
	g, err := loadGraph(*input)
	if err != nil {
		return err
	}
	infof("loaded %d nodes, %d edges, %d node types, %d edge types\n",
		g.NumNodes(), g.NumEdges(), g.NumNodeTypes(), g.NumEdgeTypes())

	m, err := resolveMethod(g, *method, *metapath, *ablation, *iterations, *walklen, *encoders)
	if err != nil {
		return err
	}
	var run *obs.Run
	if *debugAddr != "" || *reportOut != "" {
		run = obs.NewRun()
	}
	var monitor *diag.Monitor
	if tm, ok := m.(transnMethod); ok {
		tm.cfg.Workers = *workers
		tm.cfg.DeterministicApply = *deterministic
		tm.cfg.Parallel = *parallel
		tm.cfg.Telemetry = run
		tm.modelOut = *modelOut
		tm.reportOut = *reportOut
		if *eventsOut != "" {
			var w io.Writer = os.Stderr
			if *eventsOut != "-" {
				f, err := os.Create(*eventsOut)
				if err != nil {
					return fmt.Errorf("train: -events: %w", err)
				}
				defer f.Close()
				w = f
			}
			// Observer calls are serialized by the trainer, so one
			// encoder is safe; one event per line (JSON Lines).
			enc := json.NewEncoder(w)
			tm.cfg.Observer = func(ev obs.TrainEvent) { _ = enc.Encode(ev) }
		}
		if *diagnose || *debugAddr != "" {
			// The convergence monitor wraps whatever observer is already
			// configured: original events pass through first, then the
			// monitor's synthesized diagnostic events (plateau,
			// divergence, non-finite) land in the same stream.
			monitor = diag.NewMonitor(tm.cfg.Observer, diag.MonitorOptions{})
			tm.cfg.Observer = monitor.Observe
		}
		tm.diagnose = *diagnose
		m = tm
	} else {
		switch {
		case *modelOut != "":
			return fmt.Errorf("train: -model is only supported with -method transn")
		case *reportOut != "":
			return fmt.Errorf("train: -report is only supported with -method transn")
		case *eventsOut != "":
			return fmt.Errorf("train: -events is only supported with -method transn")
		case *diagnose:
			return fmt.Errorf("train: -diagnose is only supported with -method transn")
		}
	}
	if *debugAddr != "" {
		run.PublishExpvar("transn")
		var routes []obs.Route
		if monitor != nil {
			routes = append(routes, obs.Route{Pattern: "/debug/diagnostics", Handler: monitor})
		}
		srv, addr, err := run.ServeDebug(*debugAddr, routes...)
		if err != nil {
			return fmt.Errorf("train: -debug-addr: %w", err)
		}
		defer srv.Close()
		infof("debug server listening on %s\n", addr)
	}
	emb, err := m.Embed(g, *dim, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i := 0; i < emb.R; i++ {
		fmt.Fprint(w, g.Nodes[i].Name)
		for _, v := range emb.Row(i) {
			fmt.Fprintf(w, "\t%.6g", v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	infof("wrote %d %d-dimensional embeddings to %s\n", emb.R, emb.C, *output)
	return nil
}

// reportValidator binds one schema-stable document family to its
// validator; kind is the noun printed on success.
type reportValidator struct {
	schema   string
	kind     string
	validate func([]byte) error
}

// reportValidators is checkreport's dispatch table: the file's own
// schema field picks the row. A new document family registers here with
// one line. An unrecognized schema is an error listing this table's
// names; only a file with no schema field at all falls through to the
// telemetry-report validator for its diagnostic.
var reportValidators = []reportValidator{
	{diag.Schema, "document", diag.Validate},
	{lint.Schema, "document", lint.Validate},
	{obs.TraceDumpSchema, "dump", obs.ValidateTraceDump},
	{obs.HistorySchema, "dump", obs.ValidateHistoryDump},
	{load.BenchSchema, "report", load.Validate},
	{snapfmt.InspectSchema, "document", snapfmt.ValidateInspect},
	{ann.BenchSchema, "document", ann.ValidateBench},
	{obs.ReportSchema, "report", obs.ValidateReport},
}

// registeredSchemas lists the dispatch table's schema names for the
// unknown-schema error, so a typo in a hand-edited file points at the
// valid vocabulary instead of a misleading telemetry-validation error.
func registeredSchemas() []string {
	names := make([]string, 0, len(reportValidators))
	for _, v := range reportValidators {
		names = append(names, v.schema)
	}
	return names
}

// cmdCheckReport validates any schema-stable artifact the toolchain
// writes — telemetry reports (`train -report` / `benchrun -report`),
// diagnostics (`diagnose -output`), lint documents (`transnlint
// -json`), trace-ring and history dumps fetched from transnserve's
// debug endpoints, and serving-bench reports (`transnload -report`) —
// against its published schema; the file's own schema field picks the
// validator from reportValidators. CI's smoke jobs run this on the
// artifacts they upload.
func cmdCheckReport(args []string) error {
	fs := flag.NewFlagSet("checkreport", flag.ExitOnError)
	report := fs.String("report", "", "telemetry report, diagnostics or lint JSON to validate (required)")
	fs.Parse(args)
	if *report == "" {
		return fmt.Errorf("checkreport: -report is required")
	}
	data, err := os.ReadFile(*report)
	if err != nil {
		return err
	}
	var peek struct {
		Schema string `json:"schema"`
	}
	_ = json.Unmarshal(data, &peek)
	for _, v := range reportValidators {
		if peek.Schema != v.schema {
			continue
		}
		if err := v.validate(data); err != nil {
			return fmt.Errorf("checkreport: %s: %w", *report, err)
		}
		fmt.Printf("%s: valid %s %s\n", *report, v.schema, v.kind)
		return nil
	}
	if peek.Schema != "" {
		return fmt.Errorf("checkreport: %s: unknown schema %q (registered schemas: %s)",
			*report, peek.Schema, strings.Join(registeredSchemas(), ", "))
	}
	// No schema field at all: fall through to the telemetry-report
	// validator, whose own error explains what a report must contain.
	if err := obs.ValidateReport(data); err != nil {
		return fmt.Errorf("checkreport: %s: %w", *report, err)
	}
	fmt.Printf("%s: valid %s report\n", *report, obs.ReportSchema)
	return nil
}

func resolveMethod(g *graph.Graph, name, metapath, ablation string, iterations, walklen, encoders int) (baselines.Method, error) {
	switch strings.ToLower(name) {
	case "transn":
		cfg := transn.DefaultConfig()
		cfg.Iterations = iterations
		cfg.WalkLength = walklen
		cfg.Encoders = encoders
		switch ablation {
		case "":
		case "no-cross-view":
			cfg.NoCrossView = true
		case "simple-walk":
			cfg.SimpleWalk = true
		case "simple-translator":
			cfg.SimpleTranslator = true
		case "no-translation":
			cfg.NoTranslation = true
		case "no-reconstruction":
			cfg.NoReconstruction = true
		default:
			return nil, fmt.Errorf("unknown ablation %q", ablation)
		}
		return transnMethod{cfg: cfg}, nil
	case "line":
		return line.Method{}, nil
	case "node2vec":
		return node2vec.Method{P: 0.5, Q: 2, WalkLength: walklen}, nil
	case "deepwalk":
		return node2vec.Method{P: 1, Q: 1, WalkLength: walklen}, nil
	case "metapath2vec":
		pattern := strings.Split(metapath, ",")
		if metapath == "" {
			pattern = metapath2vec.DefaultPattern(g)
			infof("auto-derived meta-path: %s\n", strings.Join(pattern, "-"))
		}
		return metapath2vec.Method{Pattern: pattern, WalkLength: walklen}, nil
	case "hin2vec":
		return hin2vec.Method{WalkLength: walklen}, nil
	case "mve":
		return mve.Method{WalkLength: walklen}, nil
	case "rgcn":
		return rgcn.Method{}, nil
	case "simple":
		return simple.Method{}, nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}

// transnMethod adapts transn.Train to baselines.Method for the CLI.
type transnMethod struct {
	cfg       transn.Config
	modelOut  string
	reportOut string
	diagnose  bool
}

func (transnMethod) Name() string { return "TransN" }

func (m transnMethod) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	cfg := m.cfg
	cfg.Dim = dim
	cfg.Seed = seed
	model, err := transn.Train(g, cfg)
	if err != nil {
		return nil, err
	}
	var doc *diag.Document
	if m.diagnose {
		doc = diag.Analyze(model, diag.Options{Name: "train"})
	}
	if m.modelOut != "" {
		f, err := os.Create(m.modelOut)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := model.Save(f); err != nil {
			return nil, err
		}
		infof("saved model to %s\n", m.modelOut)
	}
	if m.reportOut != "" {
		rep := model.Report()
		if doc != nil {
			doc.Finalize()
			raw, err := json.Marshal(doc)
			if err != nil {
				return nil, err
			}
			rep.Diagnostics = raw
		}
		f, err := os.Create(m.reportOut)
		if err != nil {
			return nil, err
		}
		if err := obs.WriteReport(f, rep); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		infof("wrote telemetry report to %s\n", m.reportOut)
	}
	// The finiteness verdict comes after the artifacts are written, so a
	// corrupted run still leaves a model and report behind to diagnose.
	if m.diagnose {
		if err := model.CheckFinite(); err != nil {
			return nil, fmt.Errorf("trained model is non-finite: %w", err)
		}
	}
	return model.Embeddings(), nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	input := fs.String("input", "", "input network TSV (required)")
	fs.Parse(args)
	if *input == "" {
		return fmt.Errorf("stats: -input is required")
	}
	g, err := loadGraph(*input)
	if err != nil {
		return err
	}
	s := g.ComputeStats()
	fmt.Printf("nodes: %d\n", s.NumNodes)
	fmt.Printf("edges: %d\n", s.NumEdges)
	fmt.Printf("node types: %s\n", strings.Join(graph.SortedTypeCounts(s.NodesPerType), ", "))
	fmt.Printf("edge types: %s\n", strings.Join(graph.SortedTypeCounts(s.EdgesPerType), ", "))
	fmt.Printf("labeled nodes: %d (in %d classes)\n", s.LabeledNodes, s.NumLabels)
	fmt.Printf("average degree: %.2f\n", s.AverageDegree)
	fmt.Printf("density: %.6f\n", s.Density)
	fmt.Printf("views: %d, view-pairs: %d\n", g.NumEdgeTypes(), len(g.ViewPairs()))
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	name := fs.String("dataset", "", "dataset name: AMiner, BLOG, App-Daily, App-Weekly (required)")
	output := fs.String("output", "", "output network TSV (required)")
	sizeStr := fs.String("size", "quick", "quick or full")
	seed := fs.Int64("seed", 1, "generation seed")
	fs.Parse(args)
	if *name == "" || *output == "" {
		return fmt.Errorf("generate: -dataset and -output are required")
	}
	size := dataset.Quick
	if *sizeStr == "full" {
		size = dataset.Full
	}
	for _, spec := range dataset.All() {
		if strings.EqualFold(spec.Name, *name) {
			g := spec.Generate(size, *seed)
			f, err := os.Create(*output)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := graph.Store(f, g); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d nodes, %d edges) to %s\n",
				spec.Name, g.NumNodes(), g.NumEdges(), *output)
			return nil
		}
	}
	return fmt.Errorf("unknown dataset %q", *name)
}

func cmdNeighbors(args []string) error {
	fs := flag.NewFlagSet("neighbors", flag.ExitOnError)
	input := fs.String("input", "", "input network TSV (required)")
	embPath := fs.String("emb", "", "embeddings TSV from `transn train` (required)")
	node := fs.String("node", "", "query node name (required)")
	k := fs.Int("k", 10, "number of neighbors")
	fs.Parse(args)
	if *input == "" || *embPath == "" || *node == "" {
		return fmt.Errorf("neighbors: -input, -emb and -node are required")
	}
	g, err := loadGraph(*input)
	if err != nil {
		return err
	}
	emb, names, err := loadEmbeddings(*embPath)
	if err != nil {
		return err
	}
	qi := -1
	for i, n := range names {
		if n == *node {
			qi = i
			break
		}
	}
	if qi < 0 {
		return fmt.Errorf("node %q not found in embeddings", *node)
	}
	type scored struct {
		idx int
		sim float64
	}
	var all []scored
	for i := range names {
		if i == qi {
			continue
		}
		all = append(all, scored{i, mat.CosineSim(emb.Row(qi), emb.Row(i))})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].sim > all[b].sim })
	if *k > len(all) {
		*k = len(all)
	}
	byName := map[string]graph.NodeID{}
	for _, n := range g.Nodes {
		byName[n.Name] = n.ID
	}
	for _, s := range all[:*k] {
		typeName := "?"
		if id, ok := byName[names[s.idx]]; ok {
			typeName = g.NodeTypeNames[g.NodeType(id)]
		}
		fmt.Printf("%-20s %-10s %.4f\n", names[s.idx], typeName, s.sim)
	}
	return nil
}

func loadEmbeddings(path string) (*mat.Dense, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var names []string
	var rows [][]float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		names = append(names, fields[0])
		row := make([]float64, len(fields)-1)
		for i, s := range fields[1:] {
			row[i], err = strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad embedding value %q: %w", s, err)
			}
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("no embeddings in %s", path)
	}
	emb := mat.New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != emb.C {
			return nil, nil, fmt.Errorf("inconsistent embedding width at line %d", i+1)
		}
		emb.SetRow(i, r)
	}
	return emb, names, nil
}
