package baselines_test

import (
	"math"
	"math/rand"
	"testing"

	"transn/internal/baselines"
	"transn/internal/baselines/hin2vec"
	"transn/internal/baselines/line"
	"transn/internal/baselines/metapath2vec"
	"transn/internal/baselines/mve"
	"transn/internal/baselines/node2vec"
	"transn/internal/baselines/rgcn"
	"transn/internal/baselines/rotate"
	"transn/internal/baselines/simple"
	"transn/internal/baselines/transe"
	"transn/internal/eval"
	"transn/internal/graph"
	"transn/internal/mat"
)

// communityGraph builds a labeled two-community, two-view network: users
// in two groups with intra-group friendships (UU) and group-specific
// keywords (UK).
func communityGraph(t testing.TB, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	user := b.NodeType("user")
	kw := b.NodeType("keyword")
	uu := b.EdgeType("UU")
	uk := b.EdgeType("UK")
	const perGroup = 20
	var users [2][]graph.NodeID
	var kws [2][]graph.NodeID
	for g := 0; g < 2; g++ {
		for i := 0; i < perGroup; i++ {
			id := b.AddNode(user, "")
			b.SetLabel(id, g)
			users[g] = append(users[g], id)
		}
		for i := 0; i < 6; i++ {
			kws[g] = append(kws[g], b.AddNode(kw, ""))
		}
	}
	seen := map[[2]graph.NodeID]bool{}
	add := func(u, v graph.NodeID, et graph.EdgeType, w float64) {
		if u > v {
			u, v = v, u
		}
		k := [2]graph.NodeID{u, v}
		if u == v || seen[k] {
			return
		}
		seen[k] = true
		b.AddEdge(u, v, et, w)
	}
	for g := 0; g < 2; g++ {
		for i := 0; i < perGroup; i++ {
			add(users[g][i], users[g][(i+1)%perGroup], uu, 1)
			add(users[g][i], users[g][(i+5)%perGroup], uu, 1)
			add(users[g][i], kws[g][rng.Intn(6)], uk, 1+3*rng.Float64())
			add(users[g][i], kws[g][rng.Intn(6)], uk, 1+3*rng.Float64())
		}
	}
	add(users[0][0], users[1][0], uu, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allMethods() []baselines.Method {
	return []baselines.Method{
		line.Method{SamplesPerEdge: 30},
		node2vec.Method{NumWalks: 6, WalkLength: 20},
		metapath2vec.Method{Pattern: []string{"user", "keyword", "user"}, NumWalks: 6, WalkLength: 20},
		hin2vec.Method{NumWalks: 4, WalkLength: 20},
		mve.Method{NumWalks: 4, WalkLength: 20, Iterations: 3},
		rgcn.Method{Epochs: 40, Batch: 64},
		simple.Method{Epochs: 15},
	}
}

func TestAllBaselinesEmbedShapeAndFiniteness(t *testing.T) {
	g := communityGraph(t, 1)
	for _, m := range allMethods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			emb, err := m.Embed(g, 16, 7)
			if err != nil {
				t.Fatal(err)
			}
			if emb.R != g.NumNodes() || emb.C != 16 {
				t.Fatalf("shape %dx%d want %dx16", emb.R, emb.C, g.NumNodes())
			}
			for _, v := range emb.Data {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatal("non-finite embedding")
				}
			}
		})
	}
}

func TestAllBaselinesDeterministic(t *testing.T) {
	g := communityGraph(t, 2)
	for _, m := range allMethods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			e1, err := m.Embed(g, 8, 11)
			if err != nil {
				t.Fatal(err)
			}
			e2, err := m.Embed(g, 8, 11)
			if err != nil {
				t.Fatal(err)
			}
			if !e1.Equal(e2, 0) {
				t.Fatal("same seed must give identical embeddings")
			}
		})
	}
}

func TestWalkBasedBaselinesCaptureCommunities(t *testing.T) {
	// The structure-learning methods must separate the two communities.
	// (R-GCN and SimplE are KG scorers whose raw entity vectors need a
	// decoder; we hold them to the weaker link-prediction bar below.)
	g := communityGraph(t, 3)
	var g0, g1 []int
	for _, id := range g.LabeledNodes() {
		if g.Label(id) == 0 {
			g0 = append(g0, int(id))
		} else {
			g1 = append(g1, int(id))
		}
	}
	for _, m := range []baselines.Method{
		line.Method{SamplesPerEdge: 60},
		node2vec.Method{NumWalks: 8, WalkLength: 20},
		metapath2vec.Method{Pattern: []string{"user", "keyword", "user"}, NumWalks: 8, WalkLength: 20},
		mve.Method{NumWalks: 6, WalkLength: 20, Iterations: 4},
	} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			emb, err := m.Embed(g, 16, 5)
			if err != nil {
				t.Fatal(err)
			}
			intra := meanSim(emb, g0, g0) + meanSim(emb, g1, g1)
			inter := 2 * meanSim(emb, g0, g1)
			if intra <= inter {
				t.Fatalf("intra %.4f <= inter %.4f", intra/2, inter/2)
			}
		})
	}
}

func meanSim(emb *mat.Dense, a, b []int) float64 {
	var s float64
	var n int
	for _, i := range a {
		for _, j := range b {
			if i == j {
				continue
			}
			s += mat.CosineSim(emb.Row(i), emb.Row(j))
			n++
		}
	}
	return s / float64(n)
}

func TestKGBaselinesBeatRandomOnLinkPrediction(t *testing.T) {
	g := communityGraph(t, 4)
	rng := rand.New(rand.NewSource(6))
	sub, pos, neg, err := eval.LinkPredictionSplit(g, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []baselines.Method{
		rgcn.Method{Epochs: 60, Batch: 64},
		simple.Method{Epochs: 100},
	} {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			emb, err := m.Embed(sub, 16, 9)
			if err != nil {
				t.Fatal(err)
			}
			auc := eval.LinkPredictionAUC(emb, pos, neg)
			if auc < 0.6 {
				t.Fatalf("AUC %.3f barely better than chance", auc)
			}
		})
	}
}

func TestMetapath2VecRejectsBadPatterns(t *testing.T) {
	g := communityGraph(t, 5)
	cases := []metapath2vec.Method{
		{Pattern: []string{"user"}},
		{Pattern: []string{"user", "keyword", "keyword"}},
		{Pattern: []string{"user", "nosuch", "user"}},
	}
	for i, m := range cases {
		if _, err := m.Embed(g, 8, 1); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMetapath2VecDefaultPattern(t *testing.T) {
	g := communityGraph(t, 6)
	p := metapath2vec.DefaultPattern(g)
	if len(p) != 3 || p[0] != p[2] {
		t.Fatalf("default pattern %v", p)
	}
	if p[0] != "user" {
		t.Fatalf("default pattern should start at the labeled type, got %v", p)
	}
	m := metapath2vec.Method{Pattern: p, NumWalks: 2, WalkLength: 10}
	if _, err := m.Embed(g, 8, 1); err != nil {
		t.Fatalf("default pattern failed to embed: %v", err)
	}
}

func TestNode2VecNameReflectsParams(t *testing.T) {
	if (node2vec.Method{P: 1, Q: 1}).Name() != "DeepWalk" {
		t.Fatal("P=Q=1 should be DeepWalk")
	}
	if (node2vec.Method{P: 0.5, Q: 2}).Name() != "Node2Vec" {
		t.Fatal("biased should be Node2Vec")
	}
}

func TestBaselinesRejectEmptyGraph(t *testing.T) {
	b := graph.NewBuilder()
	b.NodeType("x")
	b.NodeType("y")
	b.AddNode(0, "a")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []baselines.Method{
		line.Method{}, node2vec.Method{}, hin2vec.Method{},
		mve.Method{}, rgcn.Method{}, simple.Method{},
	} {
		if _, err := m.Embed(g, 8, 1); err == nil {
			t.Errorf("%s: expected error on edgeless graph", m.Name())
		}
	}
}

func TestTransEExtensionBaseline(t *testing.T) {
	g := communityGraph(t, 7)
	m := transe.Method{Epochs: 40}
	emb, err := m.Embed(g, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if emb.R != g.NumNodes() || emb.C != 16 {
		t.Fatalf("shape %dx%d", emb.R, emb.C)
	}
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
	// Entity vectors are norm-bounded (unit-ball projection).
	for i := 0; i < emb.R; i++ {
		if mat.Norm2(emb.Row(i)) > 1+1e-9 {
			t.Fatalf("entity %d escaped unit ball: %v", i, mat.Norm2(emb.Row(i)))
		}
	}
	// Determinism.
	emb2, err := m.Embed(g, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !emb.Equal(emb2, 0) {
		t.Fatal("TransE must be deterministic")
	}
	// Translation property: for a trained edge (h, r, t), ‖h+r−t‖ should
	// typically be smaller than for a random corrupted triple.
	if _, err := (transe.Method{}).Embed(gEmpty(t), 8, 1); err == nil {
		t.Fatal("expected error on edgeless graph")
	}
}

func gEmpty(t *testing.T) *graph.Graph {
	b := graph.NewBuilder()
	b.NodeType("x")
	b.NodeType("y")
	b.AddNode(0, "a")
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRotatEExtensionBaseline(t *testing.T) {
	g := communityGraph(t, 8)
	m := rotate.Method{Epochs: 30}
	emb, err := m.Embed(g, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if emb.R != g.NumNodes() || emb.C != 16 {
		t.Fatalf("shape %dx%d", emb.R, emb.C)
	}
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
	emb2, err := m.Embed(g, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !emb.Equal(emb2, 0) {
		t.Fatal("RotatE must be deterministic")
	}
	if _, err := (rotate.Method{}).Embed(gEmpty(t), 8, 1); err == nil {
		t.Fatal("expected error on edgeless graph")
	}
	if _, err := (rotate.Method{}).Embed(g, 1, 1); err == nil {
		t.Fatal("expected error for dim too small")
	}
}
