// Package metapath2vec implements metapath2vec (Dong et al., KDD 2017):
// random walks constrained by a user-specified meta-path, followed by
// skip-gram with negative sampling. Per the paper's setup (Section
// IV-A3), each dataset supplies its own meta-path, e.g. "APVPA" on
// AMiner.
package metapath2vec

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// Method is the metapath2vec baseline. Pattern is required.
type Method struct {
	// Pattern is the cyclic meta-path as node-type names, first == last,
	// e.g. ["author", "paper", "venue", "paper", "author"].
	Pattern []string

	WalkLength int     // default 40
	NumWalks   int     // walks per start node, default 10
	Window     int     // default 5
	Negative   int     // default 5
	LR         float64 // default 0.025
	Epochs     int     // default 2
}

// Name implements baselines.Method.
func (Method) Name() string { return "Metapath2Vec" }

func (m Method) withDefaults() Method {
	if m.WalkLength == 0 {
		m.WalkLength = 40
	}
	if m.NumWalks == 0 {
		m.NumWalks = 10
	}
	if m.Window == 0 {
		m.Window = 5
	}
	if m.Negative == 0 {
		m.Negative = 5
	}
	if m.LR == 0 {
		m.LR = 0.025
	}
	if m.Epochs == 0 {
		m.Epochs = 2
	}
	return m
}

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	m = m.withDefaults()
	if len(m.Pattern) < 3 {
		return nil, fmt.Errorf("metapath2vec: pattern needs at least 3 hops, got %v", m.Pattern)
	}
	if m.Pattern[0] != m.Pattern[len(m.Pattern)-1] {
		return nil, fmt.Errorf("metapath2vec: pattern must be cyclic (first == last), got %v", m.Pattern)
	}
	// Resolve type names.
	types := make([]graph.NodeType, len(m.Pattern))
	for i, name := range m.Pattern {
		found := false
		for t, tn := range g.NodeTypeNames {
			if tn == name {
				types[i] = graph.NodeType(t)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("metapath2vec: unknown node type %q", name)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	adj := walk.NewAdj(g)
	mp := walk.MetaPath{Adj: adj, Pattern: types}

	var paths [][]int
	for _, n := range g.Nodes {
		if n.Type != types[0] {
			continue
		}
		for w := 0; w < m.NumWalks; w++ {
			p := mp.Walk(n.ID, m.WalkLength, rng)
			if len(p) >= 2 {
				ints := make([]int, len(p))
				for i, id := range p {
					ints[i] = int(id)
				}
				paths = append(paths, ints)
			}
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("metapath2vec: pattern %v produced no walks", m.Pattern)
	}
	model := skipgram.NewModel(g.NumNodes(), dim, rng)
	neg := skipgram.NewNegSampler(skipgram.CorpusFrequencies(paths, g.NumNodes()))
	offsets := skipgram.SymmetricOffsets(m.Window)
	for e := 0; e < m.Epochs; e++ {
		lr := m.LR * (1 - float64(e)/float64(m.Epochs))
		model.TrainCorpus(paths, offsets, m.Negative, lr, neg, rng)
	}
	return model.In, nil
}

// DefaultPattern suggests a meta-path for a graph by mirroring the
// paper's choices: it finds the labeled node type L and a bridging type
// B adjacent to it and returns L-B-L; when a second-hop type C exists
// (as in AMiner's APVPA) callers should prefer an explicit pattern.
func DefaultPattern(g *graph.Graph) []string {
	labeledType := -1
	for _, n := range g.Nodes {
		if n.Label != graph.NoLabel {
			labeledType = int(n.Type)
			break
		}
	}
	if labeledType < 0 {
		if g.NumNodeTypes() > 0 {
			t := g.NodeTypeNames[0]
			return []string{t, t, t}
		}
		return nil
	}
	// Find a neighbor type via any edge touching the labeled type.
	for _, e := range g.Edges {
		tu, tv := int(g.Nodes[e.U].Type), int(g.Nodes[e.V].Type)
		if tu == labeledType && tv != labeledType {
			return []string{g.NodeTypeNames[tu], g.NodeTypeNames[tv], g.NodeTypeNames[tu]}
		}
		if tv == labeledType && tu != labeledType {
			return []string{g.NodeTypeNames[tv], g.NodeTypeNames[tu], g.NodeTypeNames[tv]}
		}
	}
	t := g.NodeTypeNames[labeledType]
	return []string{t, t, t}
}
