// Package node2vec implements node2vec (Grover & Leskovec, KDD 2016):
// (p, q)-biased second-order random walks over the type-blind merged
// network followed by skip-gram with negative sampling. With P=Q=1 it
// degenerates to DeepWalk.
package node2vec

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// Method is the node2vec baseline. Zero values take defaults.
type Method struct {
	P, Q       float64 // return / in-out parameters (default 1, 1)
	WalkLength int     // default 40
	NumWalks   int     // walks per node, default 10
	Window     int     // skip-gram window, default 5
	Negative   int     // default 5
	LR         float64 // default 0.025
	Epochs     int     // passes over the corpus, default 2
}

// Name implements baselines.Method.
func (m Method) Name() string {
	if m.P == 1 && m.Q == 1 {
		return "DeepWalk"
	}
	return "Node2Vec"
}

func (m Method) withDefaults() Method {
	if m.P == 0 {
		m.P = 1
	}
	if m.Q == 0 {
		m.Q = 1
	}
	if m.WalkLength == 0 {
		m.WalkLength = 40
	}
	if m.NumWalks == 0 {
		m.NumWalks = 10
	}
	if m.Window == 0 {
		m.Window = 5
	}
	if m.Negative == 0 {
		m.Negative = 5
	}
	if m.LR == 0 {
		m.LR = 0.025
	}
	if m.Epochs == 0 {
		m.Epochs = 2
	}
	return m
}

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	m = m.withDefaults()
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("node2vec: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	v := graph.MergedView(g)
	walker := walk.Node2Vec{P: m.P, Q: m.Q}

	var paths [][]int
	for w := 0; w < m.NumWalks; w++ {
		for l := 0; l < v.NumNodes(); l++ {
			p := walker.Walk(v, l, m.WalkLength, rng)
			if len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	}
	model := skipgram.NewModel(v.NumNodes(), dim, rng)
	neg := skipgram.NewNegSampler(skipgram.CorpusFrequencies(paths, v.NumNodes()))
	offsets := skipgram.SymmetricOffsets(m.Window)
	for e := 0; e < m.Epochs; e++ {
		lr := m.LR * (1 - float64(e)/float64(m.Epochs))
		model.TrainCorpus(paths, offsets, m.Negative, lr, neg, rng)
	}
	// Map local (merged-view) rows back to global node IDs.
	out := mat.New(g.NumNodes(), dim)
	for l := 0; l < v.NumNodes(); l++ {
		out.SetRow(int(v.Global(l)), model.In.Row(l))
	}
	return out, nil
}
