// Package simple implements SimplE (Kazemi & Poole, NeurIPS 2018), the
// knowledge-graph embedding baseline of Section IV-A2. Each entity has a
// head vector h and a tail vector t; each relation has a vector v and an
// inverse vector v'. A triple (i, r, j) scores
//
//	s = ½(⟨h_i, v_r, t_j⟩ + ⟨h_j, v'_r, t_i⟩)
//
// trained with logistic loss over corrupted negatives. Edge weights are
// ignored, matching the paper's setup for KG methods. The node embedding
// returned is (h + t)/2.
package simple

import (
	"fmt"
	"math"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
)

// Method is the SimplE baseline. Zero values take defaults.
type Method struct {
	Epochs   int     // passes over the edge list (default 60)
	Negative int     // negatives per positive (default 4)
	LR       float64 // SGD rate (default 0.05)
	L2       float64 // weight decay (default 1e-5)
}

// Name implements baselines.Method.
func (Method) Name() string { return "SimplE" }

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	if m.Epochs == 0 {
		m.Epochs = 60
	}
	if m.Negative == 0 {
		m.Negative = 4
	}
	if m.LR == 0 {
		m.LR = 0.05
	}
	if m.L2 == 0 {
		m.L2 = 1e-5
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("simple: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	nRel := g.NumEdgeTypes()

	head := mat.RandN(n, dim, 0.1, rng)
	tail := mat.RandN(n, dim, 0.1, rng)
	rel := mat.RandN(nRel, dim, 0.1, rng)
	inv := mat.RandN(nRel, dim, 0.1, rng)

	// Relation vectors pass through a sigmoid so the learned diagonal is
	// positive: the evaluation protocol ranks pairs by plain inner
	// product (no relation access), and a positive diagonal keeps the
	// trained scorer aligned with that ranking.
	score := func(i, r, j int) float64 {
		hi, tj := head.Row(i), tail.Row(j)
		hj, ti := head.Row(j), tail.Row(i)
		vr, vir := rel.Row(r), inv.Row(r)
		var s float64
		for k := 0; k < dim; k++ {
			s += hi[k]*sigmoid(vr[k])*tj[k] + hj[k]*sigmoid(vir[k])*ti[k]
		}
		return s / 2
	}
	update := func(i, r, j int, label, lr float64) {
		s := score(i, r, j)
		gBase := (sigmoid(s) - label) / 2
		hi, tj := head.Row(i), tail.Row(j)
		hj, ti := head.Row(j), tail.Row(i)
		vr, vir := rel.Row(r), inv.Row(r)
		for k := 0; k < dim; k++ {
			sr, sir := sigmoid(vr[k]), sigmoid(vir[k])
			ghi := gBase*sr*tj[k] + m.L2*hi[k]
			gtj := gBase*hi[k]*sr + m.L2*tj[k]
			gvr := gBase * hi[k] * tj[k] * sr * (1 - sr)
			ghj := gBase*sir*ti[k] + m.L2*hj[k]
			gti := gBase*hj[k]*sir + m.L2*ti[k]
			gvir := gBase * hj[k] * ti[k] * sir * (1 - sir)
			hi[k] -= lr * ghi
			tj[k] -= lr * gtj
			vr[k] -= lr * gvr
			hj[k] -= lr * ghj
			ti[k] -= lr * gti
			vir[k] -= lr * gvir
		}
	}

	order := make([]int, g.NumEdges())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LR * (1 - float64(epoch)/float64(m.Epochs))
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, ei := range order {
			e := g.Edges[ei]
			update(int(e.U), int(e.Type), int(e.V), 1, lr)
			for k := 0; k < m.Negative; k++ {
				// Corrupt head or tail alternately.
				if k%2 == 0 {
					update(int(e.U), int(e.Type), rng.Intn(n), 0, lr)
				} else {
					update(rng.Intn(n), int(e.Type), int(e.V), 0, lr)
				}
			}
		}
	}

	out := mat.New(n, dim)
	for i := 0; i < n; i++ {
		h, t, o := head.Row(i), tail.Row(i), out.Row(i)
		for k := 0; k < dim; k++ {
			o[k] = (h[k] + t[k]) / 2
		}
	}
	return out, nil
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
