// Package transe implements TransE (Bordes et al., NeurIPS 2013), the
// classic translation-based knowledge-graph embedding the paper's
// related-work section builds its naming on ("translating node
// embeddings"). It is provided as an extension baseline beyond the
// paper's seven compared methods: triples (h, r, t) are scored by
// −‖h + r − t‖₂ and trained with margin ranking against corrupted
// negatives; entity vectors are re-normalized to the unit ball each
// epoch, as in the original.
package transe

import (
	"fmt"
	"math"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
)

// Method is the TransE extension baseline. Zero values take defaults.
type Method struct {
	Epochs int     // passes over the edge list (default 60)
	LR     float64 // SGD rate (default 0.01)
	Margin float64 // ranking margin γ (default 1)
}

// Name implements baselines.Method.
func (Method) Name() string { return "TransE" }

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	if m.Epochs == 0 {
		m.Epochs = 60
	}
	if m.LR == 0 {
		m.LR = 0.01
	}
	if m.Margin == 0 {
		m.Margin = 1
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("transe: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	bound := 6 / math.Sqrt(float64(dim))
	ent := mat.RandUniform(n, dim, -bound, bound, rng)
	rel := mat.RandUniform(g.NumEdgeTypes(), dim, -bound, bound, rng)
	normalizeRows(rel)

	diffPos := make([]float64, dim)
	diffNeg := make([]float64, dim)
	order := make([]int, g.NumEdges())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		normalizeRows(ent)
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, ei := range order {
			e := g.Edges[ei]
			h, t, r := int(e.U), int(e.V), int(e.Type)
			// Corrupt head or tail.
			h2, t2 := h, t
			if rng.Intn(2) == 0 {
				h2 = rng.Intn(n)
			} else {
				t2 = rng.Intn(n)
			}
			dPos := tripleDiff(ent, rel, h, r, t, diffPos)
			dNeg := tripleDiff(ent, rel, h2, r, t2, diffNeg)
			loss := m.Margin + dPos - dNeg
			if loss <= 0 {
				continue
			}
			// ∂‖v‖/∂v = v/‖v‖ for the positive triple (descend), negated
			// for the corrupted one (ascend).
			hRow, tRow, rRow := ent.Row(h), ent.Row(t), rel.Row(r)
			h2Row, t2Row := ent.Row(h2), ent.Row(t2)
			for k := 0; k < dim; k++ {
				var gp, gn float64
				if dPos > 0 {
					gp = diffPos[k] / dPos
				}
				if dNeg > 0 {
					gn = diffNeg[k] / dNeg
				}
				hRow[k] -= m.LR * gp
				rRow[k] -= m.LR * gp
				tRow[k] += m.LR * gp
				h2Row[k] += m.LR * gn
				rRow[k] += m.LR * gn
				t2Row[k] -= m.LR * gn
			}
		}
	}
	// Final projection so returned vectors satisfy the unit-ball
	// constraint exactly (in-epoch updates can overshoot slightly).
	normalizeRows(ent)
	return ent, nil
}

// tripleDiff fills buf with h + r − t and returns its Euclidean norm.
func tripleDiff(ent, rel *mat.Dense, h, r, t int, buf []float64) float64 {
	hr, rr, tr := ent.Row(h), rel.Row(r), ent.Row(t)
	var s float64
	for k := range buf {
		buf[k] = hr[k] + rr[k] - tr[k]
		s += buf[k] * buf[k]
	}
	return math.Sqrt(s)
}

func normalizeRows(m *mat.Dense) {
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		n := mat.Norm2(row)
		if n > 1 {
			inv := 1 / n
			for k := range row {
				row[k] *= inv
			}
		}
	}
}
