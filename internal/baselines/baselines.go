// Package baselines defines the interface shared by the seven compared
// embedding methods of Section IV-A2 (LINE, node2vec, metapath2vec,
// HIN2VEC, MVE, R-GCN, SimplE), each implemented in its own subpackage.
package baselines

import (
	"transn/internal/graph"
	"transn/internal/mat"
)

// Method is an embedding method under evaluation: it maps a
// heterogeneous network to one d-dimensional vector per node (one row
// per global NodeID). Implementations must be deterministic in seed.
type Method interface {
	// Name returns the display name used in result tables.
	Name() string
	// Embed trains the method on g and returns a NumNodes×dim matrix.
	Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error)
}
