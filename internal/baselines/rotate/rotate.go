// Package rotate implements RotatE (Sun et al., ICLR 2019), the
// rotation-based knowledge-graph embedding cited in the paper's related
// work. Entities live in complex space (dim/2 complex coordinates);
// each relation is a rotation (unit-modulus phases), and triples are
// scored by −‖h ∘ r − t‖ with self-adversarial-free margin loss against
// corrupted negatives. Provided as an extension baseline beyond the
// paper's seven compared methods.
package rotate

import (
	"fmt"
	"math"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
)

// Method is the RotatE extension baseline. Zero values take defaults.
type Method struct {
	Epochs   int     // passes over the edge list (default 60)
	LR       float64 // SGD rate (default 0.02)
	Margin   float64 // γ in the margin loss (default 4)
	Negative int     // negatives per positive (default 2)
}

// Name implements baselines.Method.
func (Method) Name() string { return "RotatE" }

// Embed implements baselines.Method. dim must be even (complex pairs);
// odd dims are rounded down internally and padded with a zero column.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	if m.Epochs == 0 {
		m.Epochs = 60
	}
	if m.LR == 0 {
		m.LR = 0.02
	}
	if m.Margin == 0 {
		m.Margin = 4
	}
	if m.Negative == 0 {
		m.Negative = 2
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("rotate: graph has no edges")
	}
	half := dim / 2
	if half == 0 {
		return nil, fmt.Errorf("rotate: dim %d too small for complex pairs", dim)
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	// Entity re/im parts and relation phases.
	re := mat.RandUniform(n, half, -0.5, 0.5, rng)
	im := mat.RandUniform(n, half, -0.5, 0.5, rng)
	phase := mat.RandUniform(g.NumEdgeTypes(), half, -math.Pi, math.Pi, rng)

	// score distance: d(h∘r, t) summed over complex coordinates
	// (L1 over complex moduli, as in the original).
	dist := func(h, r, t int) float64 {
		hr, hi := re.Row(h), im.Row(h)
		tr, ti := re.Row(t), im.Row(t)
		ph := phase.Row(r)
		var s float64
		for k := 0; k < half; k++ {
			c, sn := math.Cos(ph[k]), math.Sin(ph[k])
			dr := hr[k]*c - hi[k]*sn - tr[k]
			di := hr[k]*sn + hi[k]*c - ti[k]
			s += math.Sqrt(dr*dr + di*di)
		}
		return s
	}
	// One SGD step toward lower (label=+1) or higher (label=-1) distance.
	step := func(h, r, t int, dir, lr float64) {
		hr, hi := re.Row(h), im.Row(h)
		tr, ti := re.Row(t), im.Row(t)
		ph := phase.Row(r)
		for k := 0; k < half; k++ {
			c, sn := math.Cos(ph[k]), math.Sin(ph[k])
			rotRe := hr[k]*c - hi[k]*sn
			rotIm := hr[k]*sn + hi[k]*c
			dr := rotRe - tr[k]
			di := rotIm - ti[k]
			mod := math.Sqrt(dr*dr + di*di)
			if mod < 1e-9 {
				continue
			}
			gr := dir * dr / mod // ∂|·|/∂(rotRe)
			gi := dir * di / mod
			// Chain into h (through the rotation), t, and the phase.
			hr[k] -= lr * (gr*c + gi*sn)
			hi[k] -= lr * (-gr*sn + gi*c)
			tr[k] += lr * gr
			ti[k] += lr * gi
			// ∂rotRe/∂φ = −rotIm, ∂rotIm/∂φ = rotRe.
			ph[k] -= lr * (gr*(-rotIm) + gi*rotRe)
		}
	}

	order := make([]int, g.NumEdges())
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LR * (1 - float64(epoch)/float64(m.Epochs))
		rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, ei := range order {
			e := g.Edges[ei]
			h, t, r := int(e.U), int(e.V), int(e.Type)
			dPos := dist(h, r, t)
			for k := 0; k < m.Negative; k++ {
				h2, t2 := h, t
				if rng.Intn(2) == 0 {
					h2 = rng.Intn(n)
				} else {
					t2 = rng.Intn(n)
				}
				if m.Margin+dPos-dist(h2, r, t2) <= 0 {
					continue
				}
				step(h, r, t, 1, lr)    // pull the positive together
				step(h2, r, t2, -1, lr) // push the negative apart
			}
		}
	}

	// Final node embedding: concatenated real and imaginary parts
	// (padded with a zero column when dim is odd).
	out := mat.New(n, dim)
	for i := 0; i < n; i++ {
		row := out.Row(i)
		copy(row[:half], re.Row(i))
		copy(row[half:2*half], im.Row(i))
	}
	return out, nil
}
