// Package hin2vec implements HIN2VEC (Fu et al., CIKM 2017): joint
// learning of node embeddings and meta-path (relation) embeddings. For
// each pair of nodes within MaxHops on a random walk, the relation is
// the sequence of edge types between them; the model scores the triple
// (u, v, r) with a Hadamard-product logistic and trains against sampled
// negatives. Unlike metapath2vec, users specify only the maximum
// meta-path length, not a particular path.
package hin2vec

import (
	"fmt"
	"math"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/walk"
)

// Method is the HIN2VEC baseline. Zero values take defaults.
type Method struct {
	MaxHops    int     // maximum meta-path length (default 2)
	WalkLength int     // default 40
	NumWalks   int     // walks per node, default 8
	Negative   int     // default 4
	LR         float64 // default 0.025
}

// Name implements baselines.Method.
func (Method) Name() string { return "HIN2VEC" }

func (m Method) withDefaults() Method {
	if m.MaxHops == 0 {
		m.MaxHops = 2
	}
	if m.WalkLength == 0 {
		m.WalkLength = 40
	}
	if m.NumWalks == 0 {
		m.NumWalks = 8
	}
	if m.Negative == 0 {
		m.Negative = 4
	}
	if m.LR == 0 {
		m.LR = 0.025
	}
	return m
}

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	m = m.withDefaults()
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("hin2vec: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	adj := walk.NewAdj(g)
	n := g.NumNodes()

	nodes := mat.EmbeddingInit(n, dim, rng)
	// Relations are interned edge-type sequences of length ≤ MaxHops.
	relIdx := map[string]int{}
	var rels *mat.Dense
	relRows := 0
	internRel := func(key string) int {
		if id, ok := relIdx[key]; ok {
			return id
		}
		id := relRows
		relIdx[key] = id
		relRows++
		return id
	}
	// Pre-size relation table: |C_E| + |C_E|² is an upper bound for
	// MaxHops ≤ 2; grow-by-copy handles deeper settings.
	capRel := g.NumEdgeTypes()
	for h := 1; h < m.MaxHops; h++ {
		capRel *= g.NumEdgeTypes()
		capRel += g.NumEdgeTypes()
	}
	rels = mat.EmbeddingInit(capRel+1, dim, rng)

	totalWalks := n * m.NumWalks
	step := 0
	totalSteps := totalWalks * m.WalkLength
	nodesBuf := make([]graph.NodeID, 0, m.WalkLength)
	etypesBuf := make([]int32, 0, m.WalkLength)
	for w := 0; w < totalWalks; w++ {
		start := graph.NodeID(rng.Intn(n))
		nodesBuf, etypesBuf = randomWalkTyped(adj, start, m.WalkLength, rng, nodesBuf[:0], etypesBuf[:0])
		for i := 0; i < len(nodesBuf); i++ {
			step++
			lr := m.LR * (1 - float64(step)/float64(totalSteps+1))
			for hop := 1; hop <= m.MaxHops && i+hop < len(nodesBuf); hop++ {
				key := relKey(etypesBuf[i : i+hop])
				r := internRel(key)
				if r >= rels.R {
					grown := mat.EmbeddingInit(rels.R*2, dim, rng)
					copy(grown.Data, rels.Data)
					rels = grown
				}
				u, v := int(nodesBuf[i]), int(nodesBuf[i+hop])
				trainTriple(nodes, rels, u, v, r, 1, lr)
				for k := 0; k < m.Negative; k++ {
					trainTriple(nodes, rels, u, rng.Intn(n), r, 0, lr)
				}
			}
		}
	}
	return nodes, nil
}

// relKey encodes an edge-type sequence as a compact string key.
func relKey(ets []int32) string {
	buf := make([]byte, 0, len(ets)*2)
	for _, t := range ets {
		buf = append(buf, byte(t), '|')
	}
	return string(buf)
}

// trainTriple performs one logistic update on score(u, v, r) =
// σ(Σ_k x_u[k]·x_v[k]·σ(r[k])), where the relation vector passes through
// the paper's binary-step regularization approximated by a sigmoid.
func trainTriple(nodes, rels *mat.Dense, u, v, r int, label float64, lr float64) {
	xu, xv, xr := nodes.Row(u), nodes.Row(v), rels.Row(r)
	var s float64
	for k := range xu {
		s += xu[k] * xv[k] * sigmoid(xr[k])
	}
	g := (sigmoid(s) - label) * lr
	for k := range xu {
		sr := sigmoid(xr[k])
		gu := g * xv[k] * sr
		gv := g * xu[k] * sr
		gr := g * xu[k] * xv[k] * sr * (1 - sr)
		xu[k] -= gu
		xv[k] -= gv
		xr[k] -= gr
	}
}

// randomWalkTyped walks the merged adjacency proportionally to edge
// weight, recording the edge type of each step.
func randomWalkTyped(adj *walk.Adj, start graph.NodeID, length int, rng *rand.Rand, nodes []graph.NodeID, etypes []int32) ([]graph.NodeID, []int32) {
	nodes = append(nodes, start)
	cur := start
	for len(nodes) < length {
		ns, ws, ets := adj.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		var total float64
		for _, w := range ws {
			total += w
		}
		x := rng.Float64() * total
		i := 0
		for ; i < len(ws)-1; i++ {
			x -= ws[i]
			if x <= 0 {
				break
			}
		}
		cur = graph.NodeID(ns[i])
		nodes = append(nodes, cur)
		etypes = append(etypes, ets[i])
	}
	return nodes, etypes
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
