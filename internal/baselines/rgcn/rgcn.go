// Package rgcn implements a two-layer relational graph convolutional
// network (Schlichtkrull et al., 2017) trained end-to-end for link
// prediction with a DistMult decoder, the knowledge-graph baseline of
// Section IV-A2. Features are one-hot node indicators (so the first
// layer's weights double as input embeddings), relations use per-type
// weight matrices with row-normalized adjacency, and edge weights are
// ignored per the paper's setup.
package rgcn

import (
	"fmt"
	"math/rand"

	"transn/internal/autodiff"
	"transn/internal/graph"
	"transn/internal/mat"
)

// Method is the R-GCN baseline. Zero values take defaults.
type Method struct {
	Hidden   int     // hidden width (default = output dim)
	Epochs   int     // training steps (default 60)
	Batch    int     // positive edges per step (default 256)
	Negative int     // negatives per positive (default 2)
	LR       float64 // Adam rate (default 0.01)
}

// Name implements baselines.Method.
func (Method) Name() string { return "R-GCN" }

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	if m.Epochs == 0 {
		m.Epochs = 60
	}
	if m.Batch == 0 {
		m.Batch = 256
	}
	if m.Negative == 0 {
		m.Negative = 2
	}
	if m.LR == 0 {
		m.LR = 0.01
	}
	if m.Hidden == 0 {
		m.Hidden = dim
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("rgcn: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	nRel := g.NumEdgeTypes()

	adjs := normalizedAdjacency(g)

	// Parameters. With identity features, layer-1 weights are n×hidden.
	w0 := make([]*mat.Dense, nRel)
	w1 := make([]*mat.Dense, nRel)
	for r := 0; r < nRel; r++ {
		w0[r] = mat.XavierInit(n, m.Hidden, rng)
		w1[r] = mat.XavierInit(m.Hidden, dim, rng)
	}
	w0self := mat.XavierInit(n, m.Hidden, rng)
	w1self := mat.XavierInit(m.Hidden, dim, rng)
	relVec := mat.RandN(nRel, dim, 0.1, rng)

	params := append(append([]*mat.Dense{}, w0...), w1...)
	params = append(params, w0self, w1self, relVec)
	opts := make([]*autodiff.Adam, len(params))
	for i := range opts {
		opts[i] = autodiff.NewAdam(m.LR)
	}

	forward := func(tp *autodiff.Tape) (e *autodiff.Tensor, pts []*autodiff.Tensor) {
		pts = make([]*autodiff.Tensor, len(params))
		for i, p := range params {
			pts[i] = tp.Param(p)
		}
		// Layer 1: H = relu(Σ_r Ŝ_r·W0_r + W0_self).
		h := pts[2*nRel] // w0self
		for r := 0; r < nRel; r++ {
			if adjs[r] == nil {
				continue
			}
			h = tp.Add(h, tp.SparseMatMul(adjs[r], pts[r]))
		}
		h = tp.Relu(h)
		// Layer 2: E = Σ_r Ŝ_r·(H·W1_r) + H·W1_self.
		e = tp.MatMul(h, pts[2*nRel+1]) // w1self
		for r := 0; r < nRel; r++ {
			if adjs[r] == nil {
				continue
			}
			e = tp.Add(e, tp.SparseMatMul(adjs[r], tp.MatMul(h, pts[nRel+r])))
		}
		return e, pts
	}

	var lastLoss float64
	_ = lastLoss // retained for debugging sessions
	for step := 0; step < m.Epochs; step++ {
		// Sample a batch of positive edges + corrupted negatives.
		var us, vs, rs []int
		var labels []float64
		batch := m.Batch
		if batch > g.NumEdges() {
			batch = g.NumEdges()
		}
		for b := 0; b < batch; b++ {
			e := g.Edges[rng.Intn(g.NumEdges())]
			us = append(us, int(e.U))
			vs = append(vs, int(e.V))
			rs = append(rs, int(e.Type))
			labels = append(labels, 1)
			for k := 0; k < m.Negative; k++ {
				us = append(us, int(e.U))
				vs = append(vs, rng.Intn(n))
				rs = append(rs, int(e.Type))
				labels = append(labels, -1)
			}
		}
		tp := autodiff.NewTape()
		e, pts := forward(tp)
		uT := tp.GatherRows(e, us)
		vT := tp.GatherRows(e, vs)
		// DistMult with positivity-constrained relation weights
		// (σ(r) per dimension): a positive diagonal keeps the learned
		// scorer consistent with the protocol's plain inner-product
		// ranking, which has no access to relation vectors.
		rT := tp.Sigmoid(tp.GatherRows(pts[len(pts)-1], rs))
		scores := tp.SumRows(tp.ElemMul(tp.ElemMul(uT, vT), rT))
		loss := tp.LogisticLoss(scores, labels)
		tp.Backward(loss)
		lastLoss = loss.Value.At(0, 0)
		for i := range params {
			opts[i].Step(params[i], pts[i].Grad)
		}
	}

	// Final inference pass.
	tp := autodiff.NewTape()
	e, _ := forward(tp)
	return e.Value.Clone(), nil
}

// normalizedAdjacency builds one row-normalized symmetric adjacency per
// edge type; entries are 1/deg_r(i). Types with no edges yield nil.
func normalizedAdjacency(g *graph.Graph) []*mat.Sparse {
	n := g.NumNodes()
	nRel := g.NumEdgeTypes()
	rows := make([][][]mat.SparseEntry, nRel)
	deg := make([][]int, nRel)
	for r := 0; r < nRel; r++ {
		rows[r] = make([][]mat.SparseEntry, n)
		deg[r] = make([]int, n)
	}
	for _, e := range g.Edges {
		r := int(e.Type)
		deg[r][e.U]++
		deg[r][e.V]++
	}
	for _, e := range g.Edges {
		r := int(e.Type)
		rows[r][e.U] = append(rows[r][e.U], mat.SparseEntry{Col: int(e.V), Val: 1 / float64(deg[r][e.U])})
		rows[r][e.V] = append(rows[r][e.V], mat.SparseEntry{Col: int(e.U), Val: 1 / float64(deg[r][e.V])})
	}
	out := make([]*mat.Sparse, nRel)
	for r := 0; r < nRel; r++ {
		hasEdges := false
		for i := 0; i < n; i++ {
			if len(rows[r][i]) > 0 {
				hasEdges = true
				break
			}
		}
		if hasEdges {
			out[r] = mat.NewSparse(n, n, rows[r])
		}
	}
	return out
}
