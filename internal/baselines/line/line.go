// Package line implements LINE (Tang et al., WWW 2015) with second-order
// proximity, the variant the paper compares against. Types are ignored:
// the network is treated as a homogeneous weighted graph. Training
// follows the original edge-sampling scheme: edges are drawn from an
// alias table proportional to weight and each draw performs one SGNS
// update in both directions.
package line

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// Method is the LINE(2nd) baseline. Zero values take defaults.
type Method struct {
	// SamplesPerEdge controls total updates: |E|·SamplesPerEdge
	// (default 300).
	SamplesPerEdge int
	// Negative is the number of negative samples per update (default 5).
	Negative int
	// LR is the initial learning rate, linearly decayed (default 0.025).
	LR float64
}

// Name implements baselines.Method.
func (Method) Name() string { return "LINE" }

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	if m.SamplesPerEdge == 0 {
		m.SamplesPerEdge = 300
	}
	if m.Negative == 0 {
		m.Negative = 5
	}
	if m.LR == 0 {
		m.LR = 0.025
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("line: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	model := skipgram.NewModel(n, dim, rng)

	// Edge alias table over weights; negatives ∝ degree^0.75.
	ws := make([]float64, g.NumEdges())
	deg := make([]float64, n)
	for i, e := range g.Edges {
		ws[i] = e.Weight
		deg[e.U] += e.Weight
		deg[e.V] += e.Weight
	}
	edgeAlias := walk.NewAlias(ws)
	neg := skipgram.NewNegSampler(deg)

	total := g.NumEdges() * m.SamplesPerEdge
	for s := 0; s < total; s++ {
		lr := m.LR * (1 - float64(s)/float64(total))
		if lr < m.LR*1e-4 {
			lr = m.LR * 1e-4
		}
		e := g.Edges[edgeAlias.Draw(rng)]
		// Second-order proximity: each endpoint predicts the other as
		// context.
		model.TrainPair(int(e.U), int(e.V), m.Negative, lr, neg, rng)
		model.TrainPair(int(e.V), int(e.U), m.Negative, lr, neg, rng)
	}
	return model.In, nil
}
