// Package mve implements the unsupervised variant of MVE (Qu et al.,
// CIKM 2017): per-view skip-gram embeddings collaborating with a shared
// center embedding under equal view weights (the fair-comparison setting
// of Section IV-A2). Each iteration alternates a proximity pass inside
// every view with a regularization step that pulls view embeddings and
// the center together.
package mve

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/skipgram"
	"transn/internal/walk"
)

// Method is the MVE baseline. Zero values take defaults.
type Method struct {
	WalkLength int     // default 40
	NumWalks   int     // walks per node per view, default 6
	Window     int     // default 3
	Negative   int     // default 5
	LR         float64 // default 0.025
	RegWeight  float64 // center-alignment strength η, default 0.1
	Iterations int     // default 4
}

// Name implements baselines.Method.
func (Method) Name() string { return "MVE" }

func (m Method) withDefaults() Method {
	if m.WalkLength == 0 {
		m.WalkLength = 40
	}
	if m.NumWalks == 0 {
		m.NumWalks = 6
	}
	if m.Window == 0 {
		m.Window = 3
	}
	if m.Negative == 0 {
		m.Negative = 5
	}
	if m.LR == 0 {
		m.LR = 0.025
	}
	if m.RegWeight == 0 {
		m.RegWeight = 0.1
	}
	if m.Iterations == 0 {
		m.Iterations = 4
	}
	return m
}

// Embed implements baselines.Method.
func (m Method) Embed(g *graph.Graph, dim int, seed int64) (*mat.Dense, error) {
	m = m.withDefaults()
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("mve: graph has no edges")
	}
	rng := rand.New(rand.NewSource(seed))
	views := g.Views()
	models := make([]*skipgram.Model, len(views))
	samplers := make([]*skipgram.NegSampler, len(views))
	walkers := make([]*walk.Biased, len(views))
	for i, v := range views {
		if v.NumNodes() == 0 {
			continue
		}
		models[i] = skipgram.NewModel(v.NumNodes(), dim, rng)
		freq := make([]float64, v.NumNodes())
		for l := range freq {
			freq[l] = v.WeightedDegree(l)
		}
		samplers[i] = skipgram.NewNegSampler(freq)
		walkers[i] = walk.NewBiased(v)
	}

	center := mat.New(g.NumNodes(), dim)
	counts := make([]int, g.NumNodes())
	recomputeCenter := func() {
		center.Zero()
		for i := range counts {
			counts[i] = 0
		}
		for vi, v := range views {
			if models[vi] == nil {
				continue
			}
			for l := 0; l < v.NumNodes(); l++ {
				gid := int(v.Global(l))
				row := center.Row(gid)
				src := models[vi].In.Row(l)
				for d := range row {
					row[d] += src[d]
				}
				counts[gid]++
			}
		}
		for i, c := range counts {
			if c > 1 {
				row := center.Row(i)
				inv := 1 / float64(c)
				for d := range row {
					row[d] *= inv
				}
			}
		}
	}

	cfg := walk.CorpusConfig{
		WalkLength:      m.WalkLength,
		MinWalksPerNode: m.NumWalks,
		MaxWalksPerNode: m.NumWalks,
	}
	offsets := skipgram.SymmetricOffsets(m.Window)
	for it := 0; it < m.Iterations; it++ {
		lr := m.LR * (1 - float64(it)/float64(m.Iterations))
		for vi, v := range views {
			if models[vi] == nil {
				continue
			}
			paths := walk.Corpus(v, walkers[vi], cfg, rng)
			models[vi].TrainCorpus(paths, offsets, m.Negative, lr, samplers[vi], rng)
		}
		// Collaboration: equal-weight center, view embeddings pulled in.
		recomputeCenter()
		for vi, v := range views {
			if models[vi] == nil {
				continue
			}
			for l := 0; l < v.NumNodes(); l++ {
				row := models[vi].In.Row(l)
				c := center.Row(int(v.Global(l)))
				for d := range row {
					row[d] += m.RegWeight * (c[d] - row[d])
				}
			}
		}
	}
	recomputeCenter()
	return center, nil
}
