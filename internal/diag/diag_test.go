package diag

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"transn/internal/graph"
	"transn/internal/obs"
	"transn/internal/transn"
)

// testGraph builds the two-community user/keyword network the transn
// tests use: a UU homo-view and a UK heter-view sharing the user nodes,
// so cross-view pairs (and translators) exist.
func testGraph(t testing.TB, usersPerGroup, keywordsPerGroup int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	user := b.NodeType("user")
	keyword := b.NodeType("keyword")
	uu := b.EdgeType("UU")
	uk := b.EdgeType("UK")

	var users [2][]graph.NodeID
	var kws [2][]graph.NodeID
	for g := 0; g < 2; g++ {
		for i := 0; i < usersPerGroup; i++ {
			id := b.AddNode(user, "")
			b.SetLabel(id, g)
			users[g] = append(users[g], id)
		}
		for i := 0; i < keywordsPerGroup; i++ {
			kws[g] = append(kws[g], b.AddNode(keyword, ""))
		}
	}
	seen := map[[2]graph.NodeID]bool{}
	addOnce := func(u, v graph.NodeID, et graph.EdgeType, w float64) {
		if u > v {
			u, v = v, u
		}
		k := [2]graph.NodeID{u, v}
		if u == v || seen[k] {
			return
		}
		seen[k] = true
		b.AddEdge(u, v, et, w)
	}
	for g := 0; g < 2; g++ {
		n := len(users[g])
		for i := 0; i < n; i++ {
			addOnce(users[g][i], users[g][(i+1)%n], uu, 1)
			addOnce(users[g][i], users[g][rng.Intn(n)], uu, 1)
		}
		for _, u := range users[g] {
			for j := 0; j < 3; j++ {
				kw := kws[g][rng.Intn(len(kws[g]))]
				addOnce(u, kw, uk, 1+4*rng.Float64())
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func quickCfg() transn.Config {
	cfg := transn.DefaultConfig()
	cfg.Dim = 12
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 2
	cfg.MaxWalksPerNode = 4
	cfg.Iterations = 3
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 1
	return cfg
}

// TestAnalyzeHealthyModel pins the acceptance criteria for a normal
// run: a valid healthy document with full per-view walk coverage,
// finite embeddings, and finite per-pair round-trip errors.
func TestAnalyzeHealthyModel(t *testing.T) {
	g := testGraph(t, 8, 4, 1)
	m, err := transn.Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	doc := Analyze(m, Options{Name: "test"})
	if err := doc.Err(); err != nil {
		t.Fatalf("healthy model produced error findings: %v\nfindings: %+v", err, doc.Findings)
	}
	if !doc.Healthy {
		t.Fatal("healthy model: doc.Healthy = false")
	}
	if doc.Schema != Schema || doc.Name != "test" {
		t.Fatalf("bad header: schema %q name %q", doc.Schema, doc.Name)
	}

	if doc.Model == nil || len(doc.Model.Views) != len(m.Views()) {
		t.Fatalf("model section missing or wrong view count: %+v", doc.Model)
	}
	for _, vh := range doc.Model.Views {
		if vh.NaN != 0 || vh.Inf != 0 {
			t.Fatalf("view %d reported non-finite elements: %+v", vh.View, vh)
		}
		if vh.NormMean <= 0 || vh.NormMin <= 0 {
			t.Fatalf("view %d has degenerate norms: %+v", vh.View, vh)
		}
		if vh.EffectiveDims <= 1 {
			t.Fatalf("view %d effective dims %.2f — trained embedding should use more than one", vh.View, vh.EffectiveDims)
		}
	}
	if len(m.ViewPairs()) > 0 && len(doc.Model.Translators) == 0 {
		t.Fatal("model has view pairs but no translator health")
	}
	for _, th := range doc.Model.Translators {
		if th.Segments == 0 {
			t.Fatalf("translator pair %d scored no segments", th.Pair)
		}
		for s := 0; s < 2; s++ {
			if !finite(th.TranslationMSE[s]) || !finite(th.RoundTripMSE[s]) {
				t.Fatalf("translator pair %d has non-finite residuals: %+v", th.Pair, th)
			}
		}
	}

	if len(doc.Corpus) != len(m.Views()) {
		t.Fatalf("corpus section has %d entries, want %d", len(doc.Corpus), len(m.Views()))
	}
	for _, cov := range doc.Corpus {
		if cov.Coverage <= 0.95 {
			t.Fatalf("view %d coverage %.3f, want > 0.95", cov.View, cov.Coverage)
		}
		if cov.ContextPairsW1 == 0 {
			t.Fatalf("view %d yielded no W1 context pairs", cov.View)
		}
		if cov.Hetero && cov.ContextPairsW2 == 0 {
			t.Fatalf("heter-view %d yielded no W2 context pairs", cov.View)
		}
		if !cov.Hetero && cov.ContextPairsW2 != 0 {
			t.Fatalf("homo-view %d yielded W2 context pairs", cov.View)
		}
		if cov.BiasRatio <= 0 {
			t.Fatalf("view %d bias ratio %.3f", cov.View, cov.BiasRatio)
		}
	}

	if doc.Convergence == nil || doc.Convergence.Iterations != 3 {
		t.Fatalf("convergence section wrong: %+v", doc.Convergence)
	}

	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("written document failed Validate: %v", err)
	}
}

// TestAnalyzeCorruptedModel injects NaN into a trained model and checks
// the document flags it: unhealthy, a named embedding.nonfinite error
// finding scoped to the view, Err() non-nil — and still valid JSON.
func TestAnalyzeCorruptedModel(t *testing.T) {
	g := testGraph(t, 8, 4, 2)
	m, err := transn.Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	m.ViewTable(0).Set(0, 0, math.NaN())
	doc := Analyze(m, Options{SkipCorpus: true})
	if doc.Healthy {
		t.Fatal("NaN-corrupted model reported healthy")
	}
	if err := doc.Err(); err == nil {
		t.Fatal("Err() nil for corrupted model")
	} else if !strings.Contains(err.Error(), CodeEmbeddingNonFinite) {
		t.Fatalf("Err() does not name the finding: %v", err)
	}
	found := false
	for _, f := range doc.Findings {
		if f.Code == CodeEmbeddingNonFinite && f.Severity == SeverityError && f.View == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no embedding.nonfinite error finding for view 0: %+v", doc.Findings)
	}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatalf("corrupted-model document failed to encode: %v", err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("corrupted-model document failed Validate: %v", err)
	}
}

// TestAnalyzeCorruptedTranslator covers the translator parameter sweep.
func TestAnalyzeCorruptedTranslator(t *testing.T) {
	g := testGraph(t, 8, 4, 3)
	m, err := transn.Train(g, quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ViewPairs()) == 0 {
		t.Fatal("test graph produced no view pairs")
	}
	m.Translators(0)[0].Ws[0].Set(0, 0, math.Inf(1))
	doc := Analyze(m, Options{SkipCorpus: true})
	found := false
	for _, f := range doc.Findings {
		if f.Code == CodeTranslatorNonFinite && f.Severity == SeverityError && f.Pair == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no translator.nonfinite error finding for pair 0: %+v", doc.Findings)
	}
	if doc.Err() == nil {
		t.Fatal("Err() nil for corrupted translator")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"not json", `{`},
		{"wrong schema", `{"schema":"x/v9","name":"a","healthy":true,"findings":[]}`},
		{"missing name", `{"schema":"transn.diagnostics/v1","healthy":true,"findings":[]}`},
		{"empty name", `{"schema":"transn.diagnostics/v1","name":"","healthy":true,"findings":[]}`},
		{"missing healthy", `{"schema":"transn.diagnostics/v1","name":"a","findings":[]}`},
		{"missing findings", `{"schema":"transn.diagnostics/v1","name":"a","healthy":true}`},
		{"bad severity", `{"schema":"transn.diagnostics/v1","name":"a","healthy":true,"findings":[{"severity":"fatal","code":"x","view":-1,"pair":-1,"message":"m"}]}`},
		{"empty code", `{"schema":"transn.diagnostics/v1","name":"a","healthy":true,"findings":[{"severity":"info","code":"","view":-1,"pair":-1,"message":"m"}]}`},
		{"healthy contradicts error finding", `{"schema":"transn.diagnostics/v1","name":"a","healthy":true,"findings":[{"severity":"error","code":"x","view":-1,"pair":-1,"message":"m"}]}`},
		{"unhealthy without error finding", `{"schema":"transn.diagnostics/v1","name":"a","healthy":false,"findings":[]}`},
		{"coverage out of range", `{"schema":"transn.diagnostics/v1","name":"a","healthy":true,"findings":[],"corpus":[{"view":0,"coverage":1.5}]}`},
	}
	for _, tc := range cases {
		if err := Validate([]byte(tc.doc)); err == nil {
			t.Errorf("%s: Validate accepted invalid document", tc.name)
		}
	}
	good := `{"schema":"transn.diagnostics/v1","name":"a","healthy":true,"findings":[],"future_field":123}`
	if err := Validate([]byte(good)); err != nil {
		t.Errorf("Validate rejected document with unknown extra field: %v", err)
	}
}

// TestDiagnosticsObserveOnly pins the acceptance criterion that
// diagnostics never perturb training: under DeterministicApply, a run
// with a convergence monitor in the observer chain, telemetry on, and a
// full post-training Analyze produces byte-identical embeddings to a
// bare run with the same seed.
func TestDiagnosticsObserveOnly(t *testing.T) {
	g := testGraph(t, 8, 4, 4)
	base := quickCfg()
	base.Workers = 2
	base.DeterministicApply = true

	bare, err := transn.Train(g, base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	mon := NewMonitor(func(obs.TrainEvent) {}, MonitorOptions{})
	cfg.Observer = mon.Observe
	cfg.Telemetry = obs.NewRun()
	observed, err := transn.Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	doc := Analyze(observed, Options{}) // full analysis, corpus included
	if doc == nil {
		t.Fatal("Analyze returned nil")
	}

	if !bare.Embeddings().Equal(observed.Embeddings(), 0) {
		t.Fatal("final embeddings differ with diagnostics attached")
	}
	for vi := range bare.Views() {
		a, b := bare.ViewTable(vi), observed.ViewTable(vi)
		if a == nil || b == nil {
			continue
		}
		if !a.Equal(b, 0) {
			t.Fatalf("view %d embedding table differs with diagnostics attached", vi)
		}
	}
	if mon.Report().Iterations != base.Iterations {
		t.Fatalf("monitor saw %d iterations, want %d", mon.Report().Iterations, base.Iterations)
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
