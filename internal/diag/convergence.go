package diag

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"transn/internal/obs"
	"transn/internal/transn"
)

// MonitorOptions tunes the convergence detector. The zero value is
// usable: every field has a default.
type MonitorOptions struct {
	// Window is how many iterations back the plateau test looks
	// (default 3).
	Window int
	// PlateauRel is the relative total-loss improvement over Window
	// iterations below which the curve counts as plateaued
	// (default 0.01 = 1%).
	PlateauRel float64
	// DivergeFactor flags divergence when the total loss exceeds this
	// multiple of the best total seen so far (default 3). Set negative
	// to disable.
	DivergeFactor float64
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.Window == 0 {
		o.Window = 3
	}
	if o.PlateauRel == 0 {
		o.PlateauRel = 0.01
	}
	if o.DivergeFactor == 0 {
		o.DivergeFactor = 3
	}
	return o
}

// ConvergencePoint is one iteration of the loss curve.
type ConvergencePoint struct {
	Iteration int     `json:"iteration"`
	LSingle   float64 `json:"l_single"`
	LCross    float64 `json:"l_cross"`
}

// ConvergenceReport is the convergence section of the document.
type ConvergenceReport struct {
	Iterations int `json:"iterations"`
	// FinalSingle / FinalCross are the last iteration's losses;
	// BestTotal the lowest single+cross total seen.
	FinalSingle float64 `json:"final_single"`
	FinalCross  float64 `json:"final_cross"`
	BestTotal   float64 `json:"best_total"`
	// PlateauAt is the iteration at which improvement first dropped
	// below MonitorOptions.PlateauRel over the window, or -1.
	PlateauAt int  `json:"plateau_at"`
	Diverged  bool `json:"diverged"`
	NonFinite bool `json:"non_finite"`
	// Curve is the per-iteration loss trace (sanitized: non-finite
	// values are recorded as NonFinite and zeroed here so the document
	// always JSON-encodes).
	Curve []ConvergencePoint `json:"curve,omitempty"`
}

// Monitor is an online convergence detector shaped to sit in the
// Config.Observer chain: construct it with the downstream observer (or
// nil) and pass Observe as the observer. Every event is forwarded
// unchanged, then the monitor appends synthesized StageDiagnostic
// events for what it noticed: LevelWarning on a non-finite or diverging
// loss curve, LevelInfo on a plateau — each condition reported once per
// training run. A StageIteration event with Epoch 0 arriving after a
// non-empty curve resets the monitor (benchrun trains several models
// through one observer chain).
//
// The trainer serializes Observer calls; the monitor's own mutex exists
// so Report, Findings and ServeHTTP are additionally safe from other
// goroutines while training runs.
type Monitor struct {
	mu       sync.Mutex
	next     func(obs.TrainEvent)
	opts     MonitorOptions
	curve    []ConvergencePoint
	best     float64
	haveBest bool
	plateau  int
	diverged bool
	nonFin   bool
	warned   bool // non-finite warning emitted for this run
	findings []Finding
}

// NewMonitor returns a Monitor forwarding to next (which may be nil).
func NewMonitor(next func(obs.TrainEvent), opts MonitorOptions) *Monitor {
	return &Monitor{next: next, opts: opts.withDefaults(), plateau: -1}
}

// Observe ingests one training event. It never blocks on anything but
// the monitor's own mutex and allocates only when a condition first
// trips, so it is safe on the training hot path.
func (mn *Monitor) Observe(ev obs.TrainEvent) {
	mn.mu.Lock()
	var derived []obs.TrainEvent
	switch ev.Stage {
	case obs.StageDiagnostic:
		// Trainer-synthesized health events (the non-finite guard) pass
		// through; the analyzer records them so they surface in the
		// document even when the monitor's own loss sniffing missed the
		// corruption (e.g. NaN embeddings with finite losses).
		sev := SeverityInfo
		if ev.Level == obs.LevelWarning {
			sev = SeverityWarning
		}
		mn.findings = append(mn.findings, Finding{
			Severity: sev, Code: CodeTrainerDiagnostic,
			View: ev.View, Pair: ev.Pair, Message: ev.Message,
		})
	case obs.StageIteration:
		if ev.Epoch == 0 && len(mn.curve) > 0 {
			mn.resetLocked()
		}
		derived = mn.observeIteration(ev)
	default:
		// Cheap per-stage sniff: a non-finite stage loss means the run
		// is corrupt even before the iteration event lands.
		if !isFinite(ev.LSingle) || !isFinite(ev.LCross) {
			derived = mn.flagNonFinite(ev)
		}
	}
	next := mn.next
	mn.mu.Unlock()
	if next != nil {
		next(ev)
		for _, d := range derived {
			next(d)
		}
	}
}

func (mn *Monitor) resetLocked() {
	mn.curve = nil
	mn.best = 0
	mn.haveBest = false
	mn.plateau = -1
	mn.diverged = false
	mn.nonFin = false
	mn.warned = false
	mn.findings = nil
}

func (mn *Monitor) flagNonFinite(ev obs.TrainEvent) []obs.TrainEvent {
	mn.nonFin = true
	if mn.warned {
		return nil
	}
	mn.warned = true
	msg := fmt.Sprintf("non-finite loss in %s stage at iteration %d", ev.Stage, ev.Epoch)
	mn.findings = append(mn.findings, Finding{
		Severity: SeverityError, Code: CodeLossNonFinite, View: ev.View, Pair: ev.Pair, Message: msg,
	})
	return []obs.TrainEvent{{
		Stage: obs.StageDiagnostic, View: ev.View, Pair: ev.Pair, Epoch: ev.Epoch,
		Level: obs.LevelWarning, Message: msg,
	}}
}

func (mn *Monitor) observeIteration(ev obs.TrainEvent) []obs.TrainEvent {
	var derived []obs.TrainEvent
	pt := ConvergencePoint{Iteration: ev.Epoch, LSingle: ev.LSingle, LCross: ev.LCross}
	total := ev.LSingle + ev.LCross
	if !isFinite(total) {
		derived = append(derived, mn.flagNonFinite(ev)...)
		// Keep the curve encodable: the point is recorded as zeros and
		// the condition as NonFinite.
		if !isFinite(pt.LSingle) {
			pt.LSingle = 0
		}
		if !isFinite(pt.LCross) {
			pt.LCross = 0
		}
		mn.curve = append(mn.curve, pt)
		return derived
	}
	mn.curve = append(mn.curve, pt)
	if !mn.haveBest || total < mn.best {
		mn.best = total
		mn.haveBest = true
	} else if mn.opts.DivergeFactor > 0 && mn.best > 0 &&
		total > mn.opts.DivergeFactor*mn.best && !mn.diverged {
		mn.diverged = true
		msg := fmt.Sprintf("loss diverging: total %.4g at iteration %d is %.1f× the best %.4g",
			total, ev.Epoch, total/mn.best, mn.best)
		mn.findings = append(mn.findings, Finding{
			Severity: SeverityWarning, Code: CodeLossDiverged, View: -1, Pair: -1, Message: msg,
		})
		derived = append(derived, obs.TrainEvent{
			Stage: obs.StageDiagnostic, View: -1, Pair: -1, Epoch: ev.Epoch,
			Level: obs.LevelWarning, Message: msg,
		})
	}
	// A diverging curve is already reported; a plateau verdict on top of
	// it would be noise (any worsening trivially fails the improvement
	// test).
	if mn.plateau < 0 && !mn.diverged && len(mn.curve) > mn.opts.Window {
		prev := mn.curve[len(mn.curve)-1-mn.opts.Window]
		ref := prev.LSingle + prev.LCross
		if ref != 0 {
			improve := (ref - total) / abs(ref)
			if improve < mn.opts.PlateauRel {
				mn.plateau = ev.Epoch
				msg := fmt.Sprintf("loss plateaued: %.2f%% improvement over the last %d iterations (threshold %.2f%%)",
					100*improve, mn.opts.Window, 100*mn.opts.PlateauRel)
				mn.findings = append(mn.findings, Finding{
					Severity: SeverityInfo, Code: CodeLossPlateau, View: -1, Pair: -1, Message: msg,
				})
				derived = append(derived, obs.TrainEvent{
					Stage: obs.StageDiagnostic, View: -1, Pair: -1, Epoch: ev.Epoch,
					Level: obs.LevelInfo, Message: msg,
				})
			}
		}
	}
	return derived
}

// Report snapshots the convergence state. Safe concurrently with
// Observe.
func (mn *Monitor) Report() *ConvergenceReport {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	rep := &ConvergenceReport{
		Iterations: len(mn.curve),
		PlateauAt:  mn.plateau,
		Diverged:   mn.diverged,
		NonFinite:  mn.nonFin,
		BestTotal:  mn.best,
		Curve:      append([]ConvergencePoint(nil), mn.curve...),
	}
	if n := len(mn.curve); n > 0 {
		rep.FinalSingle = mn.curve[n-1].LSingle
		rep.FinalCross = mn.curve[n-1].LCross
	}
	return rep
}

// Findings snapshots the findings the monitor accumulated (plateau,
// divergence, non-finite, forwarded trainer diagnostics). Safe
// concurrently with Observe.
func (mn *Monitor) Findings() []Finding {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	return append([]Finding(nil), mn.findings...)
}

// Document assembles a convergence-only diagnostics document — what
// the live /debug/diagnostics endpoint serves mid-training.
func (mn *Monitor) Document(name string) *Document {
	doc := &Document{Schema: Schema, Name: name, Convergence: mn.Report()}
	doc.Add(mn.Findings()...)
	doc.Finalize()
	return doc
}

// ServeHTTP serves the live convergence document as JSON, for mounting
// at /debug/diagnostics via obs.ServeDebug's extra routes.
func (mn *Monitor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	if err := Write(w, mn.Document("live")); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// AnalyzeHistory runs the convergence analysis offline over a recorded
// Model.History: the iteration curve is replayed through a Monitor, and
// the per-view / per-pair loss arrays (which the iteration means can
// mask) are swept for non-finite values directly.
func AnalyzeHistory(hist []transn.IterStats, opts MonitorOptions) (*ConvergenceReport, []Finding) {
	mn := NewMonitor(nil, opts)
	badView := map[int]bool{}
	badPair := map[int]bool{}
	var extra []Finding
	for _, st := range hist {
		for vi, l := range st.ViewLoss {
			if !isFinite(l) && !badView[vi] {
				badView[vi] = true
				extra = append(extra, Finding{
					Severity: SeverityError, Code: CodeLossNonFinite, View: vi, Pair: -1,
					Message: fmt.Sprintf("view %d single-view loss non-finite at iteration %d", vi, st.Iteration),
				})
			}
		}
		for pi, l := range st.PairLoss {
			if !isFinite(l) && !badPair[pi] {
				badPair[pi] = true
				extra = append(extra, Finding{
					Severity: SeverityError, Code: CodeLossNonFinite, View: -1, Pair: pi,
					Message: fmt.Sprintf("pair %d cross-view loss non-finite at iteration %d", pi, st.Iteration),
				})
			}
		}
		mn.Observe(obs.TrainEvent{
			Stage: obs.StageIteration, View: -1, Pair: -1, Epoch: st.Iteration,
			LSingle: st.SingleLoss, LCross: st.CrossLoss,
		})
	}
	rep := mn.Report()
	rep.NonFinite = rep.NonFinite || len(extra) > 0
	return rep, append(extra, mn.Findings()...)
}

// ReplayEvents feeds a recorded JSONL event stream (the `transn train
// -events` output) through a fresh Monitor and returns the resulting
// report and findings. This is the convergence path for models loaded
// from disk, whose in-memory History is empty. Unknown lines fail the
// replay; an empty stream yields an empty report.
func ReplayEvents(r io.Reader, opts MonitorOptions) (*ConvergenceReport, []Finding, error) {
	mn := NewMonitor(nil, opts)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev obs.TrainEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, nil, fmt.Errorf("events line %d: %w", line, err)
		}
		mn.Observe(ev)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("reading events: %w", err)
	}
	return mn.Report(), mn.Findings(), nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
