package diag

import (
	"math"
	"strings"
	"testing"

	"transn/internal/obs"
	"transn/internal/transn"
)

func iterEvent(epoch int, single, cross float64) obs.TrainEvent {
	return obs.TrainEvent{Stage: obs.StageIteration, View: -1, Pair: -1, Epoch: epoch,
		LSingle: single, LCross: cross}
}

func findingCodes(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Code)
	}
	return out
}

func TestMonitorForwardsEverything(t *testing.T) {
	var got []obs.TrainEvent
	mn := NewMonitor(func(ev obs.TrainEvent) { got = append(got, ev) }, MonitorOptions{})
	in := []obs.TrainEvent{
		{Stage: obs.StageWalk, View: 0, Pair: -1},
		{Stage: obs.StageSkipGram, View: 0, Pair: -1, LSingle: 1.5},
		iterEvent(0, 1.5, 0.5),
	}
	for _, ev := range in {
		mn.Observe(ev)
	}
	if len(got) != len(in) {
		t.Fatalf("forwarded %d events, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("event %d altered in transit:\n got %+v\nwant %+v", i, got[i], in[i])
		}
	}
}

func TestMonitorPlateau(t *testing.T) {
	var diags []obs.TrainEvent
	mn := NewMonitor(func(ev obs.TrainEvent) {
		if ev.Stage == obs.StageDiagnostic {
			diags = append(diags, ev)
		}
	}, MonitorOptions{Window: 2, PlateauRel: 0.01})
	losses := []float64{10, 8, 6, 5.99, 5.98}
	for i, l := range losses {
		mn.Observe(iterEvent(i, l, 0))
	}
	rep := mn.Report()
	if rep.PlateauAt != 4 {
		t.Fatalf("plateau at %d, want 4 (curve %v)", rep.PlateauAt, rep.Curve)
	}
	if rep.Diverged || rep.NonFinite {
		t.Fatalf("unexpected flags: %+v", rep)
	}
	if len(diags) != 1 || diags[0].Level != obs.LevelInfo {
		t.Fatalf("want one info diagnostic event, got %+v", diags)
	}
	codes := findingCodes(mn.Findings())
	if len(codes) != 1 || codes[0] != CodeLossPlateau {
		t.Fatalf("findings = %v", codes)
	}
}

func TestMonitorDivergence(t *testing.T) {
	var diags []obs.TrainEvent
	mn := NewMonitor(func(ev obs.TrainEvent) {
		if ev.Stage == obs.StageDiagnostic {
			diags = append(diags, ev)
		}
	}, MonitorOptions{DivergeFactor: 2})
	for i, l := range []float64{4, 3, 2, 5, 7} {
		mn.Observe(iterEvent(i, l, 0))
	}
	rep := mn.Report()
	if !rep.Diverged {
		t.Fatal("divergence not flagged")
	}
	if rep.BestTotal != 2 {
		t.Fatalf("best total %v, want 2", rep.BestTotal)
	}
	// 5 > 2×2 already: exactly one warning, not one per bad iteration.
	if len(diags) != 1 || diags[0].Level != obs.LevelWarning {
		t.Fatalf("want one warning diagnostic event, got %+v", diags)
	}
	fs := mn.Findings()
	if len(fs) != 1 || fs[0].Code != CodeLossDiverged || fs[0].Severity != SeverityWarning {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestMonitorNonFiniteIteration(t *testing.T) {
	var diags []obs.TrainEvent
	mn := NewMonitor(func(ev obs.TrainEvent) {
		if ev.Stage == obs.StageDiagnostic {
			diags = append(diags, ev)
		}
	}, MonitorOptions{})
	mn.Observe(iterEvent(0, 2, 0.5))
	mn.Observe(iterEvent(1, math.NaN(), 0.5))
	mn.Observe(iterEvent(2, math.Inf(1), 0.5))
	rep := mn.Report()
	if !rep.NonFinite {
		t.Fatal("non-finite loss not flagged")
	}
	if len(diags) != 1 || diags[0].Level != obs.LevelWarning {
		t.Fatalf("want exactly one warning (latched), got %+v", diags)
	}
	fs := mn.Findings()
	if len(fs) != 1 || fs[0].Code != CodeLossNonFinite || fs[0].Severity != SeverityError {
		t.Fatalf("findings = %+v", fs)
	}
	// The curve stays JSON-encodable: poisoned points recorded as zeros.
	for _, pt := range rep.Curve {
		if !finite(pt.LSingle) || !finite(pt.LCross) {
			t.Fatalf("non-finite value leaked into curve: %+v", pt)
		}
	}
	doc := mn.Document("live")
	if doc.Healthy {
		t.Fatal("document healthy despite non-finite loss")
	}
}

func TestMonitorStageSniff(t *testing.T) {
	mn := NewMonitor(nil, MonitorOptions{})
	mn.Observe(obs.TrainEvent{Stage: obs.StageSkipGram, View: 1, Pair: -1, LSingle: math.NaN(), Epoch: 2})
	rep := mn.Report()
	if !rep.NonFinite {
		t.Fatal("stage-level NaN not sniffed")
	}
	fs := mn.Findings()
	if len(fs) != 1 || fs[0].View != 1 || !strings.Contains(fs[0].Message, "skipgram") {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestMonitorTrainerDiagnosticPassthrough(t *testing.T) {
	mn := NewMonitor(nil, MonitorOptions{})
	mn.Observe(obs.TrainEvent{Stage: obs.StageDiagnostic, View: 0, Pair: -1,
		Level: obs.LevelWarning, Message: "non-finite view 0 embedding at iteration 1"})
	fs := mn.Findings()
	if len(fs) != 1 || fs[0].Severity != SeverityWarning || fs[0].View != 0 {
		t.Fatalf("trainer diagnostic not recorded: %+v", fs)
	}
}

// TestMonitorReset: a fresh Epoch-0 iteration after a completed curve
// (benchrun trains several models through one observer chain) starts a
// new run.
func TestMonitorReset(t *testing.T) {
	mn := NewMonitor(nil, MonitorOptions{})
	mn.Observe(iterEvent(0, math.NaN(), 0))
	if !mn.Report().NonFinite {
		t.Fatal("setup: first run not flagged")
	}
	mn.Observe(iterEvent(0, 3, 1))
	mn.Observe(iterEvent(1, 2, 1))
	rep := mn.Report()
	if rep.NonFinite || rep.Iterations != 2 || len(mn.Findings()) != 0 {
		t.Fatalf("monitor did not reset: %+v findings %+v", rep, mn.Findings())
	}
}

func TestAnalyzeHistoryNonFiniteArrays(t *testing.T) {
	hist := []transn.IterStats{
		{Iteration: 0, SingleLoss: 2, CrossLoss: 1, ViewLoss: []float64{2, 2}, PairLoss: []float64{1}},
		{Iteration: 1, SingleLoss: 1.5, CrossLoss: 1, ViewLoss: []float64{1.5, math.NaN()}, PairLoss: []float64{1}},
	}
	rep, fs := AnalyzeHistory(hist, MonitorOptions{})
	if !rep.NonFinite {
		t.Fatal("per-view NaN not reflected in report")
	}
	found := false
	for _, f := range fs {
		if f.Code == CodeLossNonFinite && f.View == 1 && f.Severity == SeverityError {
			found = true
		}
	}
	if !found {
		t.Fatalf("no view-scoped non-finite finding: %+v", fs)
	}
	if rep.Iterations != 2 {
		t.Fatalf("iterations = %d", rep.Iterations)
	}
}

func TestReplayEvents(t *testing.T) {
	jsonl := `{"stage":"walk","view":0,"pair":-1,"epoch":0}
{"stage":"iteration","view":-1,"pair":-1,"epoch":0,"l_single":3,"l_cross":1}
{"stage":"iteration","view":-1,"pair":-1,"epoch":1,"l_single":2,"l_cross":1}

{"stage":"iteration","view":-1,"pair":-1,"epoch":2,"l_single":1.5,"l_cross":1}
`
	rep, fs, err := ReplayEvents(strings.NewReader(jsonl), MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Iterations != 3 || rep.FinalSingle != 1.5 || rep.FinalCross != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %+v", fs)
	}
	if _, _, err := ReplayEvents(strings.NewReader("not json\n"), MonitorOptions{}); err == nil {
		t.Fatal("garbage line accepted")
	}
}
