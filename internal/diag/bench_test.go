package diag

import (
	"testing"

	"transn/internal/obs"
	"transn/internal/transn"
)

// BenchmarkTrainBare vs BenchmarkTrainWithMonitor measure the
// acceptance criterion that attaching the convergence monitor to the
// observer chain costs nothing measurable: the monitor does a handful
// of float compares per *iteration* (not per pair), so the two numbers
// should be statistically indistinguishable.
func benchTrain(b *testing.B, observer func(obs.TrainEvent)) {
	g := testGraph(b, 10, 5, 7)
	cfg := quickCfg()
	cfg.Iterations = 2
	cfg.Observer = observer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := transn.Train(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainBare(b *testing.B) {
	benchTrain(b, nil)
}

func BenchmarkTrainWithMonitor(b *testing.B) {
	mn := NewMonitor(nil, MonitorOptions{})
	benchTrain(b, mn.Observe)
}
