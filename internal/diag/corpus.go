package diag

import (
	"fmt"
	"math"

	"transn/internal/rngstream"
	"transn/internal/skipgram"
	"transn/internal/transn"
	"transn/internal/walk"
)

// ViewCoverage is the walk-corpus section for one view: how well a
// corpus generated with the model's own walk configuration covers the
// nodes the view is supposed to embed. The corpus is regenerated under
// Options.CorpusSeed with the analyzer's private RNG streams — the
// numbers characterize the *configuration* (walk length, per-node walk
// counts, bias), not the exact paths training consumed.
type ViewCoverage struct {
	View   int  `json:"view"`
	Hetero bool `json:"hetero"`
	Nodes  int  `json:"nodes"`
	Paths  int  `json:"paths"`
	Steps  int  `json:"steps"`
	// Coverage is the fraction of the view's nodes visited at least
	// once. Nodes the corpus never visits get no single-view gradient
	// in that iteration's pass.
	Coverage float64 `json:"coverage"`
	// VisitEntropy is the entropy of the visit-count distribution
	// normalized by log(nodes): 1.0 means uniform attention, values
	// near 0 mean the corpus fixates on a few hubs.
	VisitEntropy float64 `json:"visit_entropy"`
	// ContextPairsW1 / W2 count the (center, context) training pairs
	// the corpus yields per Definition 6: W1 at offset ±1 (all views),
	// W2 at offset ±2 (heter-views only, where ±1 neighbors are the
	// other node type).
	ContextPairsW1 int `json:"context_pairs_w1"`
	ContextPairsW2 int `json:"context_pairs_w2"`
	// RealizedMeanWeight vs UniformMeanWeight compare the mean edge
	// weight of steps the walker actually took against the mean
	// incident weight at the visited sources — what an unbiased
	// uniform walker would realize. BiasRatio is their quotient: > 1
	// means the π₁ weight bias is steering walks onto heavier edges;
	// ≈ 1 for Simple walks or unweighted views.
	RealizedMeanWeight float64 `json:"realized_mean_weight"`
	UniformMeanWeight  float64 `json:"uniform_mean_weight"`
	BiasRatio          float64 `json:"bias_ratio"`
}

// diagStreamCorpus namespaces the analyzer's corpus RNG streams so
// they cannot collide with training's (streamWalk etc. derive from
// Config.Seed; this derives from Options.CorpusSeed).
const diagStreamCorpus = 1001

func analyzeCorpus(m *transn.Model, opts Options, doc *Document) []ViewCoverage {
	cfg := m.Cfg
	workers := opts.Workers
	if workers <= 0 {
		workers = cfg.Workers
	}
	if workers <= 0 {
		workers = 1
	}
	wcfg := walk.CorpusConfig{
		WalkLength:      cfg.WalkLength,
		MinWalksPerNode: cfg.MinWalksPerNode,
		MaxWalksPerNode: cfg.MaxWalksPerNode,
	}
	var out []ViewCoverage
	for vi, v := range m.Views() {
		cov := ViewCoverage{View: vi, Hetero: v.Hetero, Nodes: v.NumNodes()}
		if v.NumNodes() > 0 {
			var walker walk.Walker = walk.Simple{}
			if !cfg.SimpleWalk {
				walker = walk.NewCorrelated(v)
			}
			seed := rngstream.Derive(opts.CorpusSeed, diagStreamCorpus, int64(vi))
			paths := walk.CorpusParallel(v, walker, wcfg, seed, workers)
			st := walk.Stats(v, paths)
			cov.Paths = st.Paths
			cov.Steps = st.Steps
			cov.Coverage = float64(st.Visited) / float64(cov.Nodes)
			cov.VisitEntropy = visitEntropy(st.VisitCounts)
			cov.ContextPairsW1, cov.ContextPairsW2 = contextPairs(paths, v.Hetero)
			if st.Steps > 0 {
				cov.RealizedMeanWeight = st.RealizedWeightSum / float64(st.Steps)
				cov.UniformMeanWeight = st.UniformWeightSum / float64(st.Steps)
				if cov.UniformMeanWeight > 0 {
					cov.BiasRatio = cov.RealizedMeanWeight / cov.UniformMeanWeight
				}
			}
		}
		out = append(out, cov)
		if cov.Nodes > 0 && cov.Coverage < opts.CoverageWarn {
			doc.Add(Finding{
				Severity: SeverityWarning, Code: CodeCorpusCoverage, View: vi, Pair: -1,
				Message: fmt.Sprintf("walk corpus covers %.1f%% of view %d's %d nodes (threshold %.1f%%); uncovered nodes get no single-view gradient",
					100*cov.Coverage, vi, cov.Nodes, 100*opts.CoverageWarn),
			})
		}
	}
	return out
}

// visitEntropy returns the entropy of the visit distribution normalized
// to [0, 1] by the uniform maximum log(n); 1.0 for a single-node view.
func visitEntropy(counts []int) float64 {
	if len(counts) <= 1 {
		return 1
	}
	var total float64
	for _, c := range counts {
		total += float64(c)
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / total
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(len(counts)))
}

// contextPairs counts the directed (center, context) pairs the
// skip-gram pass extracts from the corpus: per path position, one pair
// per valid offset from skipgram.ContextOffsets. W1 collects offsets
// ±1, W2 offsets ±2 (present only for heter-views, per Definition 6).
func contextPairs(paths [][]int, hetero bool) (w1, w2 int) {
	offsets := skipgram.ContextOffsets(hetero)
	for _, p := range paths {
		n := len(p)
		for _, o := range offsets {
			step := o
			if step < 0 {
				step = -step
			}
			valid := n - step
			if valid < 0 {
				valid = 0
			}
			if step == 1 {
				w1 += valid
			} else {
				w2 += valid
			}
		}
	}
	return w1, w2
}
