// Package diag inspects trained TransN models, walk corpora and
// training histories and reports what it finds as a schema-stable JSON
// document. It is the model-and-data counterpart of internal/obs:
// where obs makes the training *process* observable (spans, metrics,
// events), diag judges the *artifacts* — are the view embeddings
// finite and non-collapsed, do the translators actually map between
// view spaces, did the walk corpus cover the views it was supposed to
// embed, did the loss curve converge — so a degenerate run is a named
// finding instead of a silently worse downstream score.
//
// Three analyzers feed one Document:
//
//   - embedding/translator health (model.go): per-view norm
//     distributions, NaN/Inf sweeps, collapsed-dimension and
//     variance-spectrum checks, and per-pair translator quality —
//     Eq. 11–14 translation residuals on common nodes and the
//     round-trip consistency ‖T_{j→i}(T_{i→j}(A)) − A‖.
//   - walk-corpus coverage (corpus.go): per-view node coverage,
//     visit-count entropy, Definition 6 context-pair counts, and the
//     realized-vs-uniform step-weight ratio that shows whether the
//     π₁/π₂ walk bias is doing anything.
//   - convergence (convergence.go): an online plateau/divergence/
//     non-finite detector over the iteration loss stream, usable live
//     (as a Config.Observer middleware) or offline (over
//     Model.History or a recorded event log).
//
// Everything here is observe-only: analyzers never mutate the model,
// consume none of its RNG streams, and attach to training only through
// the serialized Observer callback — deterministic runs produce
// byte-identical embeddings with or without diagnostics (pinned by
// TestDiagnosticsObserveOnly).
//
// The package is stdlib-only, like the rest of the repo.
package diag

import (
	"encoding/json"
	"fmt"
	"io"

	"transn/internal/transn"
)

// Schema identifies the JSON diagnostics document layout. Consumers
// (CI's diagnose smoke job, external tooling) match on this string;
// any breaking change to the document shape must bump the version
// suffix. The schema is append-only within a version.
const Schema = "transn.diagnostics/v1"

// Severity grades a finding. Error findings make a document unhealthy
// and `transn diagnose` exit non-zero; warnings and infos are advisory.
type Severity string

// The three severity grades, in ascending order of consequence.
const (
	SeverityInfo    Severity = "info"
	SeverityWarning Severity = "warning"
	SeverityError   Severity = "error"
)

// Finding codes are stable identifiers — tooling matches on them, so
// renaming one is a schema break.
const (
	CodeEmbeddingNonFinite  = "embedding.nonfinite"
	CodeEmbeddingZero       = "embedding.zero"
	CodeEmbeddingCollapsed  = "embedding.collapsed"
	CodeTranslatorNonFinite = "translator.nonfinite"
	CodeTranslatorResidual  = "translator.residual"
	CodeCorpusCoverage      = "corpus.coverage"
	CodeLossNonFinite       = "convergence.nonfinite"
	CodeLossDiverged        = "convergence.diverged"
	CodeLossPlateau         = "convergence.plateau"
	// CodeTrainerDiagnostic relays a trainer-synthesized StageDiagnostic
	// event (e.g. the non-finite guard) into the document. It was
	// previously built as "trainer." + string(obs.StageDiagnostic) at
	// the emit site — exactly the stringly-typed drift the
	// schema-registry lint analyzer now forbids.
	CodeTrainerDiagnostic = "trainer.diagnostic"
)

// Finding is one named verdict about the inspected artifacts. View and
// Pair are -1 when the finding is not scoped to one.
type Finding struct {
	Severity Severity `json:"severity"`
	Code     string   `json:"code"`
	View     int      `json:"view"`
	Pair     int      `json:"pair"`
	Message  string   `json:"message"`
}

// Document is the schema-stable diagnostics report. Required fields
// (validated by Validate): schema, name, healthy, findings. The
// analyzer sections are optional — a corpus-less diagnose run omits
// corpus, a model loaded from disk has no training history and omits
// convergence — so every producer shares one schema.
type Document struct {
	Schema  string `json:"schema"`
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`

	Model       *ModelHealth       `json:"model,omitempty"`
	Corpus      []ViewCoverage     `json:"corpus,omitempty"`
	Convergence *ConvergenceReport `json:"convergence,omitempty"`

	Findings []Finding `json:"findings"`
}

// Add appends findings and updates Healthy.
func (d *Document) Add(fs ...Finding) {
	d.Findings = append(d.Findings, fs...)
	d.Finalize()
}

// Finalize recomputes Healthy from the findings: a document is healthy
// iff it has no error-severity finding. Write calls it automatically.
func (d *Document) Finalize() {
	d.Healthy = true
	for _, f := range d.Findings {
		if f.Severity == SeverityError {
			d.Healthy = false
			return
		}
	}
}

// Err returns nil for a healthy document, or an error naming the first
// error-severity finding (and the total count) — the CLI exit verdict.
func (d *Document) Err() error {
	var first *Finding
	n := 0
	for i, f := range d.Findings {
		if f.Severity == SeverityError {
			if first == nil {
				first = &d.Findings[i]
			}
			n++
		}
	}
	if first == nil {
		return nil
	}
	return fmt.Errorf("diagnostics found %d error finding(s), first: [%s] %s", n, first.Code, first.Message)
}

// Options configures Analyze. The zero value is usable: every field
// has a default.
type Options struct {
	// Name is the document name (default "diagnostics").
	Name string

	// SkipCorpus disables the walk-coverage analyzer (which has to
	// generate fresh corpora — the only non-trivially-cheap analyzer).
	SkipCorpus bool
	// CorpusSeed seeds the diagnostic walk corpora (default 1). The
	// corpora are the analyzer's own: generating them never touches the
	// model's RNG streams.
	CorpusSeed int64
	// Workers is the worker-pool size for corpus generation; 0 uses the
	// model's trained Cfg.Workers.
	Workers int
	// CoverageWarn is the per-view coverage ratio below which a
	// corpus.coverage warning fires (default 0.95).
	CoverageWarn float64

	// CollapseVarTol is the per-dimension variance below which a
	// dimension counts as collapsed (default 1e-12).
	CollapseVarTol float64
	// TopShareWarn is the variance share of the single largest
	// dimension above which an embedding.collapsed warning fires
	// (default 0.9).
	TopShareWarn float64
	// ResidualWarn is the per-element translation/round-trip MSE above
	// which a translator.residual warning fires. Translator outputs and
	// targets are row-normalized (unit variance), so 2.0 is the
	// expected MSE of two unrelated embeddings; the default 1.5 flags
	// translators doing little better than chance.
	ResidualWarn float64
	// SegmentsPerPair caps the common-node segments scored per pair per
	// direction (default 16).
	SegmentsPerPair int

	// Monitor configures the offline convergence analysis.
	Monitor MonitorOptions
}

func (o Options) withDefaults() Options {
	if o.Name == "" {
		o.Name = "diagnostics"
	}
	if o.CorpusSeed == 0 {
		o.CorpusSeed = 1
	}
	if o.CoverageWarn == 0 {
		o.CoverageWarn = 0.95
	}
	if o.CollapseVarTol == 0 {
		o.CollapseVarTol = 1e-12
	}
	if o.TopShareWarn == 0 {
		o.TopShareWarn = 0.9
	}
	if o.ResidualWarn == 0 {
		o.ResidualWarn = 1.5
	}
	if o.SegmentsPerPair == 0 {
		o.SegmentsPerPair = 16
	}
	return o
}

// Analyze inspects a trained (or loaded) model and returns the
// diagnostics document: embedding/translator health always, walk
// coverage unless opts.SkipCorpus, and convergence when the model
// carries a training history (models reconstructed by Load do not —
// replay a recorded event stream with ReplayEvents instead and attach
// the result). Analyze is observe-only; it is safe on any model Train
// or Load returned, but not concurrently with a still-running Train.
func Analyze(m *transn.Model, opts Options) *Document {
	opts = opts.withDefaults()
	doc := &Document{Schema: Schema, Name: opts.Name}
	doc.Model = analyzeModel(m, opts, doc)
	if !opts.SkipCorpus {
		doc.Corpus = analyzeCorpus(m, opts, doc)
	}
	if len(m.History) > 0 {
		conv, fs := AnalyzeHistory(m.History, opts.Monitor)
		doc.Convergence = conv
		doc.Add(fs...)
	}
	doc.Finalize()
	return doc
}

// Write writes the document as indented JSON with a trailing newline —
// the exact bytes `transn diagnose` emits and CI validates. Healthy is
// recomputed first so a hand-assembled document cannot contradict its
// own findings.
func Write(w io.Writer, d *Document) error {
	d.Finalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Validate checks that data is a well-formed diagnostics document:
// valid JSON, the expected schema string, required fields with the
// right types, findings with known severities and non-empty codes, and
// a Healthy flag consistent with the findings. Unknown extra fields
// are allowed (the schema is append-only within a version). It is the
// diag mirror of obs.ValidateReport.
func Validate(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("diagnostics document is not valid JSON: %w", err)
	}
	req := func(key string, dst any) error {
		msg, ok := raw[key]
		if !ok {
			return fmt.Errorf("diagnostics document is missing required field %q", key)
		}
		if err := json.Unmarshal(msg, dst); err != nil {
			return fmt.Errorf("field %q: %w", key, err)
		}
		return nil
	}
	var schema string
	if err := req("schema", &schema); err != nil {
		return err
	}
	if schema != Schema {
		return fmt.Errorf("diagnostics schema %q, want %q", schema, Schema)
	}
	var name string
	if err := req("name", &name); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("diagnostics document name is empty")
	}
	var healthy bool
	if err := req("healthy", &healthy); err != nil {
		return err
	}
	var findings []Finding
	if err := req("findings", &findings); err != nil {
		return err
	}
	sawError := false
	for i, f := range findings {
		switch f.Severity {
		case SeverityInfo, SeverityWarning, SeverityError:
		default:
			return fmt.Errorf("finding %d has unknown severity %q", i, f.Severity)
		}
		if f.Code == "" {
			return fmt.Errorf("finding %d has an empty code", i)
		}
		if f.Message == "" {
			return fmt.Errorf("finding %d [%s] has an empty message", i, f.Code)
		}
		if f.Severity == SeverityError {
			sawError = true
		}
	}
	if healthy == sawError {
		return fmt.Errorf("healthy=%v contradicts findings (error findings present: %v)", healthy, sawError)
	}
	// Optional sections still type-check when present.
	for _, opt := range []struct {
		key string
		dst any
	}{
		{"model", &ModelHealth{}},
		{"corpus", &[]ViewCoverage{}},
		{"convergence", &ConvergenceReport{}},
	} {
		if msg, ok := raw[opt.key]; ok {
			if err := json.Unmarshal(msg, opt.dst); err != nil {
				return fmt.Errorf("field %q: %w", opt.key, err)
			}
		}
	}
	var corpus []ViewCoverage
	if msg, ok := raw["corpus"]; ok {
		if err := json.Unmarshal(msg, &corpus); err == nil {
			for _, c := range corpus {
				if c.Coverage < 0 || c.Coverage > 1 {
					return fmt.Errorf("view %d coverage %v outside [0, 1]", c.View, c.Coverage)
				}
			}
		}
	}
	return nil
}
