package diag

import (
	"fmt"
	"math"

	"transn/internal/mat"
	"transn/internal/transn"
)

// ModelHealth is the embedding/translator section of the document.
type ModelHealth struct {
	Dim         int                `json:"dim"`
	Views       []ViewHealth       `json:"views"`
	Translators []TranslatorHealth `json:"translators,omitempty"`
}

// ViewHealth summarizes one view-specific embedding table.
type ViewHealth struct {
	View  int `json:"view"`
	Nodes int `json:"nodes"`
	// NaN / Inf count non-finite elements in the table.
	NaN int `json:"nan"`
	Inf int `json:"inf"`
	// Row-norm distribution (over finite rows).
	NormMin  float64 `json:"norm_min"`
	NormMean float64 `json:"norm_mean"`
	NormMax  float64 `json:"norm_max"`
	// CollapsedDims counts dimensions whose variance across nodes is
	// below Options.CollapseVarTol — coordinates the model stopped
	// using.
	CollapsedDims int `json:"collapsed_dims"`
	// VarTopShare is the share of total variance carried by the single
	// largest dimension; near 1.0 means the embedding is effectively
	// one-dimensional.
	VarTopShare float64 `json:"var_top_share"`
	// EffectiveDims is the perplexity of the per-dimension variance
	// distribution, exp(−Σ p_d ln p_d): how many dimensions the
	// embedding behaves as if it has. A healthy d-dim table sits near
	// d; a collapsed one near 1.
	EffectiveDims float64 `json:"effective_dims"`
}

// TranslatorHealth scores one trained translator pair {T_i→j, T_j→i}
// on segments of the views' common nodes — the same inputs the Eq.
// 11–14 objectives trained on. MSEs are per-element, on
// layer-normalized matrices, so ~2.0 is the score of two unrelated
// embeddings and values well below it mean the translator learned a
// real mapping. Index 0 of each array is the i→j direction, index 1
// is j→i.
type TranslatorHealth struct {
	Pair     int `json:"pair"`
	I        int `json:"i"`
	J        int `json:"j"`
	Segments int `json:"segments"`
	// NaN / Inf count non-finite translator parameters (both
	// directions).
	NaN int `json:"nan"`
	Inf int `json:"inf"`
	// TranslationMSE is the Eq. 11–12 residual: translated source rows
	// vs layer-normalized target-view rows of the same common nodes.
	TranslationMSE [2]float64 `json:"translation_mse"`
	// RoundTripMSE is the Eq. 13–14 consistency residual:
	// ‖T_back(T_fwd(A)) − layernorm(A)‖² per element.
	RoundTripMSE [2]float64 `json:"round_trip_mse"`
}

func analyzeModel(m *transn.Model, opts Options, doc *Document) *ModelHealth {
	mh := &ModelHealth{Dim: m.Cfg.Dim}
	for vi := range m.Views() {
		vh := viewHealth(m, vi, opts)
		mh.Views = append(mh.Views, vh)
		switch {
		case vh.NaN+vh.Inf > 0:
			doc.Add(Finding{
				Severity: SeverityError, Code: CodeEmbeddingNonFinite, View: vi, Pair: -1,
				Message: fmt.Sprintf("view %d embedding has %d NaN and %d Inf elements", vi, vh.NaN, vh.Inf),
			})
		case vh.Nodes > 0 && vh.NormMax == 0:
			doc.Add(Finding{
				Severity: SeverityWarning, Code: CodeEmbeddingZero, View: vi, Pair: -1,
				Message: fmt.Sprintf("view %d embedding is all zeros", vi),
			})
		case vh.Nodes > 1 && vh.CollapsedDims > 0:
			doc.Add(Finding{
				Severity: SeverityWarning, Code: CodeEmbeddingCollapsed, View: vi, Pair: -1,
				Message: fmt.Sprintf("view %d embedding has %d of %d dimensions with variance below %g",
					vi, vh.CollapsedDims, mh.Dim, opts.CollapseVarTol),
			})
		case vh.Nodes > 1 && vh.VarTopShare > opts.TopShareWarn:
			doc.Add(Finding{
				Severity: SeverityWarning, Code: CodeEmbeddingCollapsed, View: vi, Pair: -1,
				Message: fmt.Sprintf("view %d embedding concentrates %.0f%% of its variance in one dimension",
					vi, 100*vh.VarTopShare),
			})
		}
	}
	for pi, pr := range m.ViewPairs() {
		th, ok := translatorHealth(m, pi, opts)
		if !ok {
			continue
		}
		mh.Translators = append(mh.Translators, th)
		if th.NaN+th.Inf > 0 {
			doc.Add(Finding{
				Severity: SeverityError, Code: CodeTranslatorNonFinite, View: -1, Pair: pi,
				Message: fmt.Sprintf("translator pair %d (views %d↔%d) has %d NaN and %d Inf parameters",
					pi, pr.I, pr.J, th.NaN, th.Inf),
			})
			continue
		}
		worst := math.Max(
			math.Max(th.TranslationMSE[0], th.TranslationMSE[1]),
			math.Max(th.RoundTripMSE[0], th.RoundTripMSE[1]))
		// Non-finite residuals stem from non-finite embeddings, which
		// already produced an error finding — don't double-report.
		if th.Segments > 0 && isFinite(worst) && worst > opts.ResidualWarn {
			doc.Add(Finding{
				Severity: SeverityWarning, Code: CodeTranslatorResidual, View: -1, Pair: pi,
				Message: fmt.Sprintf("translator pair %d (views %d↔%d) residual %.3f exceeds %.3f — translation no better than chance",
					pi, pr.I, pr.J, worst, opts.ResidualWarn),
			})
		}
	}
	return mh
}

func viewHealth(m *transn.Model, vi int, opts Options) ViewHealth {
	vh := ViewHealth{View: vi, NormMin: math.Inf(1)}
	tab := m.ViewTable(vi)
	if tab == nil || tab.R == 0 {
		vh.NormMin = 0
		return vh
	}
	vh.Nodes = tab.R
	d := tab.C
	// Per-dimension first and second moments over finite elements.
	sum := make([]float64, d)
	sumsq := make([]float64, d)
	cnt := make([]int, d)
	var normSum float64
	finiteRows := 0
	for r := 0; r < tab.R; r++ {
		row := tab.Row(r)
		var sq float64
		rowFinite := true
		for c, v := range row {
			if math.IsNaN(v) {
				vh.NaN++
				rowFinite = false
				continue
			}
			if math.IsInf(v, 0) {
				vh.Inf++
				rowFinite = false
				continue
			}
			sum[c] += v
			sumsq[c] += v * v
			cnt[c]++
			sq += v * v
		}
		if rowFinite {
			n := math.Sqrt(sq)
			normSum += n
			finiteRows++
			if n < vh.NormMin {
				vh.NormMin = n
			}
			if n > vh.NormMax {
				vh.NormMax = n
			}
		}
	}
	if finiteRows > 0 {
		vh.NormMean = normSum / float64(finiteRows)
	} else {
		vh.NormMin = 0
	}
	// Variance spectrum.
	vars := make([]float64, d)
	var total, top float64
	for c := 0; c < d; c++ {
		if cnt[c] < 2 {
			vh.CollapsedDims++
			continue
		}
		n := float64(cnt[c])
		mean := sum[c] / n
		v := sumsq[c]/n - mean*mean
		if v < 0 {
			v = 0 // numerical noise
		}
		vars[c] = v
		total += v
		if v > top {
			top = v
		}
		if v < opts.CollapseVarTol {
			vh.CollapsedDims++
		}
	}
	if total > 0 {
		vh.VarTopShare = top / total
		var h float64
		for _, v := range vars {
			if p := v / total; p > 0 {
				h -= p * math.Log(p)
			}
		}
		vh.EffectiveDims = math.Exp(h)
	}
	return vh
}

// translatorHealth scores pair pi by running both translators forward
// on fixed-length segments cut from the pair's common-node list (the
// list is cycled when shorter than segments × path length, mirroring
// how training pads short paths). Deterministic: segment choice uses
// no RNG.
func translatorHealth(m *transn.Model, pi int, opts Options) (TranslatorHealth, bool) {
	pr := m.ViewPairs()[pi]
	trs := m.Translators(pi)
	if trs[0] == nil || trs[1] == nil {
		return TranslatorHealth{}, false
	}
	th := TranslatorHealth{Pair: pi, I: pr.I, J: pr.J}
	for _, tr := range trs {
		for _, ms := range [][]*mat.Dense{tr.Ws, tr.Bs} {
			for _, w := range ms {
				for _, v := range w.Data {
					if math.IsNaN(v) {
						th.NaN++
					} else if math.IsInf(v, 0) {
						th.Inf++
					}
				}
			}
		}
	}
	L := trs[0].PathLen()
	if len(pr.Common) == 0 || L == 0 {
		return th, true
	}
	nSeg := (len(pr.Common) + L - 1) / L
	if nSeg > opts.SegmentsPerPair {
		nSeg = opts.SegmentsPerPair
	}
	th.Segments = nSeg
	views := m.Views()
	d := m.Cfg.Dim
	for side := 0; side < 2; side++ {
		src, dst := pr.I, pr.J
		if side == 1 {
			src, dst = pr.J, pr.I
		}
		fwd, bwd := trs[side], trs[1-side]
		srcTab, dstTab := m.ViewTable(src), m.ViewTable(dst)
		var transSum, rtSum float64
		for s := 0; s < nSeg; s++ {
			A := mat.New(L, d)
			Tgt := mat.New(L, d)
			for k := 0; k < L; k++ {
				gid := pr.Common[(s*L+k)%len(pr.Common)]
				A.SetRow(k, srcTab.Row(views[src].Local(gid)))
				Tgt.SetRow(k, dstTab.Row(views[dst].Local(gid)))
			}
			out := fwd.Translate(A) // output is already layer-normalized
			transSum += meanSqDiff(out, layerNormRows(Tgt.Clone()))
			rt := bwd.Translate(out)
			rtSum += meanSqDiff(rt, layerNormRows(A.Clone()))
		}
		th.TranslationMSE[side] = transSum / float64(nSeg)
		th.RoundTripMSE[side] = rtSum / float64(nSeg)
	}
	// Non-finite residuals only arise from non-finite embedding rows,
	// which the view sweep reports as an error finding; zero them here
	// so the document always JSON-encodes.
	for side := 0; side < 2; side++ {
		if !isFinite(th.TranslationMSE[side]) {
			th.TranslationMSE[side] = 0
		}
		if !isFinite(th.RoundTripMSE[side]) {
			th.RoundTripMSE[side] = 0
		}
	}
	return th, true
}

// meanSqDiff returns the per-element mean squared difference of two
// same-shape matrices.
func meanSqDiff(a, b *mat.Dense) float64 {
	var s float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		s += d * d
	}
	return s / float64(len(a.Data))
}

// layerNormRows rescales each row of x in place to zero mean and unit
// variance — the same normalization training applies to translation
// targets (transn's normalizeRows is unexported), so diagnostic
// residuals are measured in the space the Eq. 11–14 objectives
// optimized.
func layerNormRows(x *mat.Dense) *mat.Dense {
	const eps = 1e-5
	for i := 0; i < x.R; i++ {
		row := x.Row(i)
		var mean float64
		for _, v := range row {
			mean += v
		}
		mean /= float64(len(row))
		var varr float64
		for _, v := range row {
			d := v - mean
			varr += d * d
		}
		varr /= float64(len(row))
		inv := 1 / math.Sqrt(varr+eps)
		for j := range row {
			row[j] = (row[j] - mean) * inv
		}
	}
	return x
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
