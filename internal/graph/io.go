package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The TSV network format is line-oriented:
//
//	# comment
//	N <name> <node-type> [label]
//	E <u-name> <v-name> <edge-type> [weight]
//
// Nodes must be declared before edges reference them. Weight defaults
// to 1. Labels are non-negative integers.

// Store writes g in the TSV network format.
func Store(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# transn network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	for _, n := range g.Nodes {
		if n.Label != NoLabel {
			fmt.Fprintf(bw, "N\t%s\t%s\t%d\n", n.Name, g.NodeTypeNames[n.Type], n.Label)
		} else {
			fmt.Fprintf(bw, "N\t%s\t%s\n", n.Name, g.NodeTypeNames[n.Type])
		}
	}
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "E\t%s\t%s\t%s\t%g\n",
			g.Nodes[e.U].Name, g.Nodes[e.V].Name, g.EdgeTypeNames[e.Type], e.Weight)
	}
	return bw.Flush()
}

// Load parses the TSV network format into a Graph.
func Load(r io.Reader) (*Graph, error) {
	b := NewBuilder()
	byName := map[string]NodeID{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "N":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("graph: line %d: N wants 2-3 args", lineNo)
			}
			name := fields[1]
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("graph: line %d: duplicate node %q", lineNo, name)
			}
			id := b.AddNode(b.NodeType(fields[2]), name)
			byName[name] = id
			if len(fields) == 4 {
				label, err := strconv.Atoi(fields[3])
				if err != nil || label < 0 {
					return nil, fmt.Errorf("graph: line %d: bad label %q", lineNo, fields[3])
				}
				b.SetLabel(id, label)
			}
		case "E":
			if len(fields) < 4 || len(fields) > 5 {
				return nil, fmt.Errorf("graph: line %d: E wants 3-4 args", lineNo)
			}
			u, ok := byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineNo, fields[1])
			}
			v, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("graph: line %d: unknown node %q", lineNo, fields[2])
			}
			w := 1.0
			if len(fields) == 5 {
				var err error
				w, err = strconv.ParseFloat(fields[4], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[4])
				}
			}
			b.AddEdge(u, v, b.EdgeType(fields[3]), w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return b.Build()
}
