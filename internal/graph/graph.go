// Package graph implements the heterogeneous network model of the paper
// (Definitions 1–5): typed nodes, typed weighted undirected edges, the
// separation of a network into one view per edge type, view-pairs that
// share common nodes, and paired-subviews used by the cross-view
// algorithm. Views expose CSR adjacency for fast random walks.
package graph

import (
	"fmt"

	"transn/internal/ordered"
)

// NodeID identifies a node within a Graph. IDs are dense: 0..NumNodes-1.
type NodeID int32

// NodeType indexes into Graph.NodeTypeNames.
type NodeType int

// EdgeType indexes into Graph.EdgeTypeNames. Each edge type induces one
// view (Definition 2).
type EdgeType int

// NoLabel marks an unlabeled node.
const NoLabel = -1

// Node is a typed, optionally labeled vertex.
type Node struct {
	ID    NodeID
	Type  NodeType
	Name  string
	Label int // NoLabel when unlabeled
}

// Edge is an undirected weighted typed edge. U < V is not required; the
// graph stores each edge once and mirrors it in adjacency.
type Edge struct {
	U, V   NodeID
	Type   EdgeType
	Weight float64
}

// Graph is a heterogeneous network G = {V, E, C_V, C_E} (Definition 1).
// Construct one with a Builder; a built Graph is immutable.
type Graph struct {
	NodeTypeNames []string
	EdgeTypeNames []string
	Nodes         []Node
	Edges         []Edge

	views []*View // one per edge type, built lazily by Views()
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// NumNodeTypes returns |C_V|.
func (g *Graph) NumNodeTypes() int { return len(g.NodeTypeNames) }

// NumEdgeTypes returns |C_E|, which is also the number of views.
func (g *Graph) NumEdgeTypes() int { return len(g.EdgeTypeNames) }

// NodeType returns the type of node id.
func (g *Graph) NodeType(id NodeID) NodeType { return g.Nodes[id].Type }

// Label returns the label of node id, or NoLabel.
func (g *Graph) Label(id NodeID) int { return g.Nodes[id].Label }

// LabeledNodes returns the IDs of all nodes with a label, sorted.
func (g *Graph) LabeledNodes() []NodeID {
	var out []NodeID
	for _, n := range g.Nodes {
		if n.Label != NoLabel {
			out = append(out, n.ID)
		}
	}
	return out
}

// NumLabels returns the number of distinct labels (max label + 1).
func (g *Graph) NumLabels() int {
	maxL := -1
	for _, n := range g.Nodes {
		if n.Label > maxL {
			maxL = n.Label
		}
	}
	return maxL + 1
}

// AverageDegree returns 2|E|/|V|, the δ of Theorem 1.
func (g *Graph) AverageDegree() float64 {
	if len(g.Nodes) == 0 {
		return 0
	}
	return 2 * float64(len(g.Edges)) / float64(len(g.Nodes))
}

// Views separates the network into one view per edge type (Definition 2)
// and memoizes the result. Views with no edges are still returned (they
// are empty views) so view indices always equal edge-type indices, and
// together the views partition E (Equation 1).
func (g *Graph) Views() []*View {
	if g.views != nil {
		return g.views
	}
	perType := make([][]Edge, g.NumEdgeTypes())
	for _, e := range g.Edges {
		perType[e.Type] = append(perType[e.Type], e)
	}
	g.views = make([]*View, g.NumEdgeTypes())
	for t := range perType {
		g.views[t] = buildView(g, EdgeType(t), perType[t])
	}
	return g.views
}

// ViewPairs returns every pair of views that share at least one node
// (Definition 3), as index pairs (i < j) into Views().
func (g *Graph) ViewPairs() []ViewPair {
	views := g.Views()
	var pairs []ViewPair
	for i := 0; i < len(views); i++ {
		for j := i + 1; j < len(views); j++ {
			common := commonNodes(views[i], views[j])
			if len(common) > 0 {
				pairs = append(pairs, ViewPair{I: i, J: j, Common: common})
			}
		}
	}
	return pairs
}

// ViewPair is a pair of views φ_i, φ_j with V_i ∩ V_j ≠ ∅ (Definition 3).
type ViewPair struct {
	I, J   int      // indices into Graph.Views()
	Common []NodeID // sorted common nodes M_ij
}

func commonNodes(a, b *View) []NodeID {
	// Both node lists are sorted; merge-intersect.
	var out []NodeID
	i, j := 0, 0
	for i < len(a.NodeIDs) && j < len(b.NodeIDs) {
		switch {
		case a.NodeIDs[i] < b.NodeIDs[j]:
			i++
		case a.NodeIDs[i] > b.NodeIDs[j]:
			j++
		default:
			out = append(out, a.NodeIDs[i])
			i++
			j++
		}
	}
	return out
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	nodeTypes map[string]NodeType
	edgeTypes map[string]EdgeType
	g         *Graph
	built     bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		nodeTypes: map[string]NodeType{},
		edgeTypes: map[string]EdgeType{},
		g:         &Graph{},
	}
}

// NodeType interns a node type name and returns its index.
func (b *Builder) NodeType(name string) NodeType {
	if t, ok := b.nodeTypes[name]; ok {
		return t
	}
	t := NodeType(len(b.g.NodeTypeNames))
	b.nodeTypes[name] = t
	b.g.NodeTypeNames = append(b.g.NodeTypeNames, name)
	return t
}

// EdgeType interns an edge type name and returns its index.
func (b *Builder) EdgeType(name string) EdgeType {
	if t, ok := b.edgeTypes[name]; ok {
		return t
	}
	t := EdgeType(len(b.g.EdgeTypeNames))
	b.edgeTypes[name] = t
	b.g.EdgeTypeNames = append(b.g.EdgeTypeNames, name)
	return t
}

// AddNode appends a node of type t and returns its ID.
func (b *Builder) AddNode(t NodeType, name string) NodeID {
	id := NodeID(len(b.g.Nodes))
	b.g.Nodes = append(b.g.Nodes, Node{ID: id, Type: t, Name: name, Label: NoLabel})
	return id
}

// SetLabel assigns a class label to node id.
func (b *Builder) SetLabel(id NodeID, label int) {
	b.g.Nodes[id].Label = label
}

// AddEdge appends an undirected edge. Self-loops are rejected at Build.
func (b *Builder) AddEdge(u, v NodeID, t EdgeType, weight float64) {
	b.g.Edges = append(b.g.Edges, Edge{U: u, V: v, Type: t, Weight: weight})
}

// Build validates and returns the graph. Validation enforces Definition 1
// plus the paper's structural observation that an edge type implicitly
// restricts its end-node types: every edge type must connect exactly one
// unordered pair of node types (so each view is a homo-view or a
// heter-view, Definition 4).
func (b *Builder) Build() (*Graph, error) {
	if b.built {
		return nil, fmt.Errorf("graph: Builder used twice")
	}
	g := b.g
	if g.NumNodeTypes()+g.NumEdgeTypes() <= 1 {
		return nil, fmt.Errorf("graph: |C_V|+|C_E| must exceed 1 (Definition 1), got %d+%d",
			g.NumNodeTypes(), g.NumEdgeTypes())
	}
	type typePair struct{ a, b NodeType }
	seen := make(map[EdgeType]typePair)
	for i, e := range g.Edges {
		if e.U == e.V {
			return nil, fmt.Errorf("graph: edge %d is a self-loop on node %d", i, e.U)
		}
		if int(e.U) >= len(g.Nodes) || int(e.V) >= len(g.Nodes) || e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: edge %d references unknown node", i)
		}
		if e.Weight <= 0 {
			return nil, fmt.Errorf("graph: edge %d has non-positive weight %g", i, e.Weight)
		}
		tu, tv := g.Nodes[e.U].Type, g.Nodes[e.V].Type
		if tu > tv {
			tu, tv = tv, tu
		}
		p := typePair{tu, tv}
		if prev, ok := seen[e.Type]; ok {
			if prev != p {
				return nil, fmt.Errorf("graph: edge type %q connects both (%s,%s) and (%s,%s)",
					g.EdgeTypeNames[e.Type],
					g.NodeTypeNames[prev.a], g.NodeTypeNames[prev.b],
					g.NodeTypeNames[p.a], g.NodeTypeNames[p.b])
			}
		} else {
			seen[e.Type] = p
		}
	}
	b.built = true
	return g, nil
}

// Stats summarizes a graph for the Table II analogue.
type Stats struct {
	NumNodes, NumEdges int
	NodesPerType       map[string]int
	EdgesPerType       map[string]int
	LabeledNodes       int
	NumLabels          int
	AverageDegree      float64
	Density            float64 // 2|E| / (|V|(|V|-1))
}

// ComputeStats gathers the statistics reported in the paper's Table II.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		NumNodes:      g.NumNodes(),
		NumEdges:      g.NumEdges(),
		NodesPerType:  map[string]int{},
		EdgesPerType:  map[string]int{},
		NumLabels:     g.NumLabels(),
		AverageDegree: g.AverageDegree(),
	}
	for _, n := range g.Nodes {
		s.NodesPerType[g.NodeTypeNames[n.Type]]++
		if n.Label != NoLabel {
			s.LabeledNodes++
		}
	}
	for _, e := range g.Edges {
		s.EdgesPerType[g.EdgeTypeNames[e.Type]]++
	}
	if n := float64(g.NumNodes()); n > 1 {
		s.Density = 2 * float64(g.NumEdges()) / (n * (n - 1))
	}
	return s
}

// SortedTypeCounts returns map entries as sorted "name=count" pairs, a
// stable form for printing and tests.
func SortedTypeCounts(m map[string]int) []string {
	keys := ordered.Keys(m)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return out
}
