package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildAcademic replicates the paper's Figure 2(a) academic network:
// 3 authors, 2 papers, 1 university; edge types authorship (AP),
// citation (PP), affiliation (AU).
func buildAcademic(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	b := NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	univ := b.NodeType("university")
	ap := b.EdgeType("authorship")
	pp := b.EdgeType("citation")
	au := b.EdgeType("affiliation")

	ids := map[string]NodeID{}
	for _, n := range []string{"A1", "A2", "A3"} {
		ids[n] = b.AddNode(author, n)
	}
	for _, n := range []string{"P1", "P2"} {
		ids[n] = b.AddNode(paper, n)
	}
	ids["U1"] = b.AddNode(univ, "U1")

	b.AddEdge(ids["A1"], ids["P1"], ap, 1)
	b.AddEdge(ids["A2"], ids["P1"], ap, 1)
	b.AddEdge(ids["A3"], ids["P2"], ap, 1)
	b.AddEdge(ids["P1"], ids["P2"], pp, 1)
	b.AddEdge(ids["A1"], ids["U1"], au, 1)
	b.AddEdge(ids["A3"], ids["U1"], au, 1)

	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, ids
}

func TestBuildAcademicCounts(t *testing.T) {
	g, _ := buildAcademic(t)
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.NumNodeTypes() != 3 || g.NumEdgeTypes() != 3 {
		t.Fatalf("got %d node types %d edge types", g.NumNodeTypes(), g.NumEdgeTypes())
	}
}

func TestViewsPartitionEdges(t *testing.T) {
	// Equation 1: views' edge sets are disjoint and their union is E.
	g, _ := buildAcademic(t)
	views := g.Views()
	total := 0
	for _, v := range views {
		total += v.NumEdges()
		if err := v.Validate(); err != nil {
			t.Fatalf("view %d invalid: %v", v.Type, err)
		}
	}
	if total != g.NumEdges() {
		t.Fatalf("views cover %d edges, want %d", total, g.NumEdges())
	}
}

func TestViewKinds(t *testing.T) {
	g, _ := buildAcademic(t)
	views := g.Views()
	// authorship: author-paper => heter; citation: paper-paper => homo;
	// affiliation: author-university => heter.
	wantHetero := []bool{true, false, true}
	for i, v := range views {
		if v.Hetero != wantHetero[i] {
			t.Errorf("view %s Hetero=%v want %v", g.EdgeTypeNames[i], v.Hetero, wantHetero[i])
		}
	}
}

func TestNoIsolatedNodesInViews(t *testing.T) {
	// The paper's core claim for edge-type views (Figure 2c): every node
	// in a view has at least one incident edge.
	g, _ := buildAcademic(t)
	for _, v := range g.Views() {
		for l := 0; l < v.NumNodes(); l++ {
			if v.Degree(l) == 0 {
				t.Fatalf("view %d has isolated node %d", v.Type, v.Global(l))
			}
		}
	}
}

func TestViewPairsShareCommonNodes(t *testing.T) {
	g, ids := buildAcademic(t)
	pairs := g.ViewPairs()
	// authorship∩citation share papers; authorship∩affiliation share
	// authors; citation∩affiliation share nothing.
	if len(pairs) != 2 {
		t.Fatalf("got %d view pairs, want 2: %+v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if len(p.Common) == 0 {
			t.Fatal("view pair with empty common set")
		}
	}
	// authorship(0) x citation(1): common = P1, P2.
	if pairs[0].I != 0 || pairs[0].J != 1 {
		t.Fatalf("unexpected first pair %+v", pairs[0])
	}
	want := []NodeID{ids["P1"], ids["P2"]}
	if len(pairs[0].Common) != 2 || pairs[0].Common[0] != want[0] || pairs[0].Common[1] != want[1] {
		t.Fatalf("common = %v want %v", pairs[0].Common, want)
	}
}

func TestLocalGlobalRoundTrip(t *testing.T) {
	g, _ := buildAcademic(t)
	for _, v := range g.Views() {
		for l := 0; l < v.NumNodes(); l++ {
			if got := v.Local(v.Global(l)); got != l {
				t.Fatalf("Local(Global(%d)) = %d", l, got)
			}
		}
		if v.Local(NodeID(9999)) != -1 {
			t.Fatal("Local of absent node should be -1")
		}
	}
}

func TestDegreeAndWeights(t *testing.T) {
	g, ids := buildAcademic(t)
	ap := g.Views()[0] // authorship
	lp1 := ap.Local(ids["P1"])
	if d := ap.Degree(lp1); d != 2 {
		t.Fatalf("P1 authorship degree = %d want 2", d)
	}
	la1 := ap.Local(ids["A1"])
	if w := ap.EdgeWeight(la1, lp1); w != 1 {
		t.Fatalf("A1-P1 weight = %v", w)
	}
	if w := ap.EdgeWeight(lp1, ap.Local(ids["A3"])); w != 0 {
		t.Fatalf("absent edge weight = %v, want 0", w)
	}
	if wd := ap.WeightedDegree(lp1); wd != 2 {
		t.Fatalf("P1 weighted degree = %v", wd)
	}
}

func TestPairedSubview(t *testing.T) {
	g, ids := buildAcademic(t)
	views := g.Views()
	pairs := g.ViewPairs()
	// Pair authorship(0) x affiliation(2): common nodes are A1, A3.
	var pr ViewPair
	found := false
	for _, p := range pairs {
		if p.I == 0 && p.J == 2 {
			pr = p
			found = true
		}
	}
	if !found {
		t.Fatal("authorship x affiliation pair missing")
	}
	sub := PairedSubview(views[0], pr.Common)
	// In the authorship view, common {A1, A3} plus their neighbors
	// {P1, P2} = 4 nodes; edges A1-P1, A3-P2 (A2-P1 dropped since A2 not kept).
	if sub.NumNodes() != 4 {
		t.Fatalf("subview nodes = %d want 4 (%v)", sub.NumNodes(), sub.NodeIDs)
	}
	if sub.NumEdges() != 2 {
		t.Fatalf("subview edges = %d want 2", sub.NumEdges())
	}
	if sub.Contains(ids["A2"]) {
		t.Fatal("A2 should be excluded from the paired-subview")
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subview invalid: %v", err)
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder()
	tt := b.NodeType("x")
	et := b.EdgeType("e")
	id := b.AddNode(tt, "n")
	b.AddEdge(id, id, et, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected self-loop rejection")
	}
}

func TestBuilderRejectsInconsistentEdgeType(t *testing.T) {
	b := NewBuilder()
	a := b.NodeType("a")
	c := b.NodeType("c")
	et := b.EdgeType("e")
	n1 := b.AddNode(a, "n1")
	n2 := b.AddNode(a, "n2")
	n3 := b.AddNode(c, "n3")
	b.AddEdge(n1, n2, et, 1) // a-a
	b.AddEdge(n1, n3, et, 1) // a-c with same type: invalid
	if _, err := b.Build(); err == nil {
		t.Fatal("expected inconsistent edge type rejection")
	}
}

func TestBuilderRejectsNonPositiveWeight(t *testing.T) {
	b := NewBuilder()
	a := b.NodeType("a")
	et := b.EdgeType("e")
	n1 := b.AddNode(a, "n1")
	n2 := b.AddNode(a, "n2")
	b.AddEdge(n1, n2, et, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected weight rejection")
	}
}

func TestBuilderRejectsTrivialTypeUniverse(t *testing.T) {
	b := NewBuilder()
	b.NodeType("only")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected |C_V|+|C_E| > 1 rejection")
	}
}

func TestLabels(t *testing.T) {
	b := NewBuilder()
	a := b.NodeType("a")
	b.EdgeType("e")
	n1 := b.AddNode(a, "n1")
	n2 := b.AddNode(a, "n2")
	n3 := b.AddNode(a, "n3")
	et := b.EdgeType("e")
	b.AddEdge(n1, n2, et, 1)
	b.AddEdge(n2, n3, et, 1)
	b.SetLabel(n1, 0)
	b.SetLabel(n3, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := g.LabeledNodes(); len(got) != 2 {
		t.Fatalf("labeled = %v", got)
	}
	if g.NumLabels() != 3 {
		t.Fatalf("NumLabels = %d want 3", g.NumLabels())
	}
	if g.Label(n2) != NoLabel {
		t.Fatal("n2 should be unlabeled")
	}
}

func TestComputeStats(t *testing.T) {
	g, _ := buildAcademic(t)
	s := g.ComputeStats()
	if s.NumNodes != 6 || s.NumEdges != 6 {
		t.Fatalf("stats %+v", s)
	}
	if s.NodesPerType["author"] != 3 || s.NodesPerType["paper"] != 2 {
		t.Fatalf("nodes per type %v", s.NodesPerType)
	}
	if s.EdgesPerType["authorship"] != 3 {
		t.Fatalf("edges per type %v", s.EdgesPerType)
	}
	if s.AverageDegree != 2 {
		t.Fatalf("avg degree %v", s.AverageDegree)
	}
	pairs := SortedTypeCounts(s.NodesPerType)
	if len(pairs) != 3 || !strings.HasPrefix(pairs[0], "author=") {
		t.Fatalf("SortedTypeCounts = %v", pairs)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	g, _ := buildAcademic(t)
	var buf bytes.Buffer
	if err := Store(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := range g.Nodes {
		if g.Nodes[i].Name != g2.Nodes[i].Name || g.Nodes[i].Label != g2.Nodes[i].Label {
			t.Fatalf("node %d mismatch", i)
		}
	}
	for i := range g.Edges {
		if g.Edges[i].Weight != g2.Edges[i].Weight {
			t.Fatalf("edge %d weight mismatch", i)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"unknown record", "X\ta\tb\n"},
		{"dup node", "N\ta\tt\nN\ta\tt\n"},
		{"edge unknown node", "N\ta\tt\nE\ta\tb\te\n"},
		{"bad weight", "N\ta\tt\nN\tb\tt\nE\ta\tb\te\tnope\n"},
		{"bad label", "N\ta\tt\t-5\n"},
		{"short N", "N\ta\n"},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestLoadSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\nN\ta\tt1\nN\tb\tt2\n# middle\nE\ta\tb\te\t2.5\n"
	g, err := Load(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.Edges[0].Weight != 2.5 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

// Property: on random graphs, views always partition the edge set and CSR
// symmetry holds (Equation 1 + undirectedness).
func TestRandomGraphViewInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		ta := b.NodeType("a")
		tb := b.NodeType("b")
		eAA := b.EdgeType("aa")
		eAB := b.EdgeType("ab")
		nA, nB := 5+rng.Intn(10), 5+rng.Intn(10)
		var as, bs []NodeID
		for i := 0; i < nA; i++ {
			as = append(as, b.AddNode(ta, ""))
		}
		for i := 0; i < nB; i++ {
			bs = append(bs, b.AddNode(tb, ""))
		}
		ne := 10 + rng.Intn(30)
		for i := 0; i < ne; i++ {
			if rng.Intn(2) == 0 {
				u, v := rng.Intn(nA), rng.Intn(nA)
				if u == v {
					continue
				}
				b.AddEdge(as[u], as[v], eAA, 1+rng.Float64())
			} else {
				b.AddEdge(as[rng.Intn(nA)], bs[rng.Intn(nB)], eAB, 1+rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		total := 0
		for _, v := range g.Views() {
			if v.Validate() != nil {
				return false
			}
			total += v.NumEdges()
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: paired-subview node sets always contain the common nodes that
// appear in the view and are subsets of the view's nodes.
func TestPairedSubviewProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		ta := b.NodeType("a")
		tb := b.NodeType("b")
		e1 := b.EdgeType("ab1")
		e2 := b.EdgeType("ab2")
		var as, bs []NodeID
		for i := 0; i < 8; i++ {
			as = append(as, b.AddNode(ta, ""))
		}
		for i := 0; i < 8; i++ {
			bs = append(bs, b.AddNode(tb, ""))
		}
		for i := 0; i < 20; i++ {
			b.AddEdge(as[rng.Intn(8)], bs[rng.Intn(8)], e1, 1)
			b.AddEdge(as[rng.Intn(8)], bs[rng.Intn(8)], e2, 1)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		for _, p := range g.ViewPairs() {
			views := g.Views()
			for _, vi := range []int{p.I, p.J} {
				sub := PairedSubview(views[vi], p.Common)
				if sub.Validate() != nil {
					return false
				}
				for _, id := range sub.NodeIDs {
					if !views[vi].Contains(id) {
						return false
					}
				}
				for _, c := range p.Common {
					if views[vi].Contains(c) && !sub.Contains(c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMergedView(t *testing.T) {
	g, ids := buildAcademic(t)
	mv := MergedView(g)
	if mv.NumNodes() != g.NumNodes() {
		t.Fatalf("merged view has %d nodes, want %d", mv.NumNodes(), g.NumNodes())
	}
	if mv.NumEdges() != g.NumEdges() {
		t.Fatalf("merged view has %d edges, want %d", mv.NumEdges(), g.NumEdges())
	}
	if err := mv.Validate(); err != nil {
		t.Fatalf("merged view invalid: %v", err)
	}
	// All edge types are reachable: A1's merged degree counts authorship
	// plus affiliation edges.
	la1 := mv.Local(ids["A1"])
	if d := mv.Degree(la1); d != 2 {
		t.Fatalf("A1 merged degree = %d want 2", d)
	}
}
