package graph

// MergedView builds a single View over all edges of the graph, ignoring
// edge types. It is a utility for the homogeneous baselines (LINE,
// node2vec), which the paper feeds the network with type information
// removed (Section IV-A2). Hetero is set when the merged node set spans
// more than one node type, which only affects context-window selection.
func MergedView(g *Graph) *View {
	return buildView(g, EdgeType(-1), g.Edges)
}
