package graph

import (
	"fmt"

	"transn/internal/ordered"
)

// View is a subnetwork φ_i = {V_i, E_i} induced by one edge type
// (Definition 2). Adjacency is stored in CSR form over local node indices
// so random walks touch contiguous memory.
type View struct {
	Type    EdgeType
	NodeIDs []NodeID // sorted global IDs of V_i
	Hetero  bool     // heter-view (two node types) vs homo-view (Definition 4)

	local   map[NodeID]int // global → local index
	rowPtr  []int          // CSR row pointers, len = |V_i|+1
	colIdx  []int32        // CSR neighbor local indices
	weights []float64      // CSR edge weights, parallel to colIdx
	numEdge int
}

func buildView(g *Graph, t EdgeType, edges []Edge) *View {
	v := &View{Type: t, local: map[NodeID]int{}}
	// Collect end-nodes.
	inView := map[NodeID]bool{}
	types := map[NodeType]bool{}
	for _, e := range edges {
		inView[e.U] = true
		inView[e.V] = true
		types[g.Nodes[e.U].Type] = true
		types[g.Nodes[e.V].Type] = true
	}
	v.Hetero = len(types) == 2
	v.NodeIDs = ordered.Keys(inView)
	for i, id := range v.NodeIDs {
		v.local[id] = i
	}
	// Degree counting pass, then fill.
	n := len(v.NodeIDs)
	deg := make([]int, n)
	for _, e := range edges {
		deg[v.local[e.U]]++
		deg[v.local[e.V]]++
	}
	v.rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		v.rowPtr[i+1] = v.rowPtr[i] + deg[i]
	}
	v.colIdx = make([]int32, v.rowPtr[n])
	v.weights = make([]float64, v.rowPtr[n])
	fill := make([]int, n)
	copy(fill, v.rowPtr[:n])
	for _, e := range edges {
		lu, lv := v.local[e.U], v.local[e.V]
		v.colIdx[fill[lu]] = int32(lv)
		v.weights[fill[lu]] = e.Weight
		fill[lu]++
		v.colIdx[fill[lv]] = int32(lu)
		v.weights[fill[lv]] = e.Weight
		fill[lv]++
	}
	v.numEdge = len(edges)
	return v
}

// NumNodes returns |V_i|.
func (v *View) NumNodes() int { return len(v.NodeIDs) }

// NumEdges returns |E_i|.
func (v *View) NumEdges() int { return v.numEdge }

// Local returns the local index of global node id, or -1 when the node is
// not in the view.
func (v *View) Local(id NodeID) int {
	if l, ok := v.local[id]; ok {
		return l
	}
	return -1
}

// Global returns the global NodeID for local index l.
func (v *View) Global(l int) NodeID { return v.NodeIDs[l] }

// Contains reports whether global node id is in the view.
func (v *View) Contains(id NodeID) bool {
	_, ok := v.local[id]
	return ok
}

// Degree returns the number of incident edges of local node l.
func (v *View) Degree(l int) int { return v.rowPtr[l+1] - v.rowPtr[l] }

// Neighbors returns local neighbor indices and parallel edge weights of
// local node l. The returned slices alias the CSR storage; do not mutate.
func (v *View) Neighbors(l int) ([]int32, []float64) {
	lo, hi := v.rowPtr[l], v.rowPtr[l+1]
	return v.colIdx[lo:hi], v.weights[lo:hi]
}

// WeightedDegree returns the total weight incident to local node l.
func (v *View) WeightedDegree(l int) float64 {
	_, ws := v.Neighbors(l)
	var s float64
	for _, w := range ws {
		s += w
	}
	return s
}

// EdgeWeight returns the weight of the edge between local nodes a and b,
// or 0 when no edge exists. For multi-edges it returns the first found.
func (v *View) EdgeWeight(a, b int) float64 {
	ns, ws := v.Neighbors(a)
	for i, n := range ns {
		if int(n) == b {
			return ws[i]
		}
	}
	return 0
}

// PairedSubview reduces views φ_i, φ_j of a view-pair to the paired-
// subviews φ'_i, φ'_j (Definition 5): the subnetwork of each view over the
// common nodes M_ij together with their neighbors A_ij, and the edges
// between them.
//
// Note on the definition: the paper's formula says "nodes M_ij ∩ A_ij"
// but its prose ("we focus on the common nodes and their neighbor nodes")
// and Figure 5 make clear the intended node set is M_ij ∪ A_ij; the
// intersection would typically be empty. We implement the union. See
// DESIGN.md §2.
func PairedSubview(view *View, common []NodeID) *View {
	commonSet := make(map[NodeID]bool, len(common))
	for _, id := range common {
		commonSet[id] = true
	}
	keep := map[NodeID]bool{}
	for _, id := range common {
		l := view.Local(id)
		if l < 0 {
			continue
		}
		keep[id] = true
		ns, _ := view.Neighbors(l)
		for _, nb := range ns {
			keep[view.Global(int(nb))] = true
		}
	}
	return inducedSubview(view, keep)
}

// inducedSubview builds a new View over the kept global nodes with all
// view edges whose both endpoints are kept.
func inducedSubview(view *View, keep map[NodeID]bool) *View {
	sub := &View{Type: view.Type, Hetero: view.Hetero, local: map[NodeID]int{}}
	for _, id := range ordered.Keys(keep) {
		if view.Contains(id) {
			sub.NodeIDs = append(sub.NodeIDs, id)
		}
	}
	for i, id := range sub.NodeIDs {
		sub.local[id] = i
	}
	n := len(sub.NodeIDs)
	deg := make([]int, n)
	// Count (each undirected edge seen twice in CSR; count directed slots).
	for i, id := range sub.NodeIDs {
		vl := view.Local(id)
		ns, _ := view.Neighbors(vl)
		for _, nb := range ns {
			if keep[view.Global(int(nb))] {
				deg[i]++
			}
		}
	}
	sub.rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		sub.rowPtr[i+1] = sub.rowPtr[i] + deg[i]
	}
	sub.colIdx = make([]int32, sub.rowPtr[n])
	sub.weights = make([]float64, sub.rowPtr[n])
	fill := make([]int, n)
	copy(fill, sub.rowPtr[:n])
	for i, id := range sub.NodeIDs {
		vl := view.Local(id)
		ns, ws := view.Neighbors(vl)
		for k, nb := range ns {
			gnb := view.Global(int(nb))
			if sl, ok := sub.local[gnb]; ok {
				sub.colIdx[fill[i]] = int32(sl)
				sub.weights[fill[i]] = ws[k]
				fill[i]++
			}
		}
	}
	sub.numEdge = sub.rowPtr[n] / 2
	return sub
}

// Validate checks internal CSR invariants; it is used by tests and guards
// against builder regressions. It returns nil when the view is coherent.
func (v *View) Validate() error {
	n := len(v.NodeIDs)
	if len(v.rowPtr) != n+1 {
		return fmt.Errorf("view: rowPtr length %d want %d", len(v.rowPtr), n+1)
	}
	if v.rowPtr[n] != len(v.colIdx) || len(v.colIdx) != len(v.weights) {
		return fmt.Errorf("view: CSR arrays inconsistent")
	}
	for l := 0; l < n; l++ {
		ns, ws := v.Neighbors(l)
		for i, nb := range ns {
			if int(nb) < 0 || int(nb) >= n {
				return fmt.Errorf("view: neighbor index %d out of range", nb)
			}
			if ws[i] <= 0 {
				return fmt.Errorf("view: non-positive weight %g", ws[i])
			}
			// Symmetry: nb must list l back with the same weight.
			if !hasBackEdge(v, int(nb), l, ws[i]) {
				return fmt.Errorf("view: missing symmetric edge %d->%d", nb, l)
			}
		}
	}
	return nil
}

func hasBackEdge(v *View, from, to int, w float64) bool {
	ns, ws := v.Neighbors(from)
	for i, nb := range ns {
		if int(nb) == to && ws[i] == w {
			return true
		}
	}
	return false
}
