package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// globalRandFuncs are the math/rand package-level functions that draw
// from the shared global source. Using one anywhere on the training
// path silently decouples results from Config.Seed; every stream must
// derive from internal/rngstream instead.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// seedSinks are the functions whose arguments must never carry
// wall-clock input: feeding time.Now into one seeds a run that can
// never be reproduced.
var seedSinks = map[string]bool{"New": true, "NewSource": true, "Derive": true}

// analyzerDeterminism enforces the reproducibility contract behind
// DeterministicApply (DESIGN.md §6) and the schema-stable documents
// (§7–8): no global math/rand calls and no wall-clock-derived seeds in
// the deterministic-core packages, and no order-sensitive iteration
// over maps anywhere — Go randomizes map range order per run, so a
// range body that appends, prints, encodes, sends, or accumulates
// floats leaks that randomness into output. Iterating a sorted key
// slice (internal/ordered.Keys) is the sanctioned escape hatch, and
// //lint:ignore determinism.map-order is available for genuinely
// order-insensitive bodies.
func analyzerDeterminism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Run: func(m *Module, opts Options, report func(Finding)) {
			for _, pkg := range m.Pkgs {
				core := inScope(pkg, opts.DeterminismPkgs)
				mapScope := inScope(pkg, opts.MapOrderPkgs)
				if !core && !mapScope {
					continue
				}
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.CallExpr:
							if core {
								checkRandCall(m, pkg, n, report)
								checkSeedSink(m, pkg, n, report)
								checkWallClockEpoch(m, pkg, n, report)
							}
						case *ast.RangeStmt:
							if mapScope {
								checkMapRange(m, pkg, n, report)
							}
						}
						return true
					})
				}
			}
		},
	}
}

// checkRandCall flags calls to math/rand's global-source functions.
func checkRandCall(m *Module, pkg *Package, call *ast.CallExpr, report func(Finding)) {
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // method on an explicit *rand.Rand stream — fine
	}
	if globalRandFuncs[fn.Name()] {
		report(m.finding(CodeGlobalRand, call,
			"rand.%s uses the global math/rand source; derive a private stream with rngstream.New(seed, labels...) instead", fn.Name()))
	}
}

// checkSeedSink flags seed-deriving calls (rand.NewSource, rand.New,
// rngstream.New, rngstream.Derive) whose arguments contain time.Now.
func checkSeedSink(m *Module, pkg *Package, call *ast.CallExpr, report func(Finding)) {
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil || !seedSinks[fn.Name()] {
		return
	}
	p := fn.Pkg().Path()
	if p != "math/rand" && !strings.HasSuffix(p, "/rngstream") {
		return
	}
	for _, arg := range call.Args {
		if containsTimeNow(pkg, arg) {
			report(m.finding(CodeTimeSeed, call,
				"%s.%s seeded from the wall clock; seeds must come from configuration so runs are reproducible", fn.Pkg().Name(), fn.Name()))
			return
		}
	}
}

// checkWallClockEpoch flags time.Now().UnixNano() and friends in the
// deterministic core — the canonical wall-clock seed recipe. Plain
// time.Now/time.Since (telemetry timing) is allowed; converting the
// wall clock to an integer on the training path has no other use.
func checkWallClockEpoch(m *Module, pkg *Package, call *ast.CallExpr, report func(Finding)) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch sel.Sel.Name {
	case "UnixNano", "Unix", "UnixMilli", "UnixMicro":
	default:
		return
	}
	inner, ok := ast.Unparen(sel.X).(*ast.CallExpr)
	if !ok {
		return
	}
	if fn := calleeOf(pkg, inner); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
		report(m.finding(CodeTimeSeed, call,
			"time.Now().%s() on the deterministic training path — a wall-clock value has no reproducible use here", sel.Sel.Name))
	}
}

func containsTimeNow(pkg *Package, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(pkg, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// checkMapRange flags a range over a map whose body is order-sensitive.
func checkMapRange(m *Module, pkg *Package, rng *ast.RangeStmt, report func(Finding)) {
	tv, ok := pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if why := orderSensitive(pkg, rng.Body); why != "" {
		report(m.finding(CodeMapOrder, rng,
			"map iteration order is random per run and this body %s; iterate ordered.Keys(m) (or //lint:ignore %s with a reason) instead", why, CodeMapOrder))
	}
}

// orderSensitive names the first construct in the range body whose
// result depends on iteration order, or returns "" when the body is
// order-insensitive (map writes, integer counting, comparisons).
func orderSensitive(pkg *Package, body *ast.BlockStmt) string {
	why := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if obj, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					why = "appends to a slice"
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				if fn := calleeOf(pkg, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					why = "prints"
				} else if name == "Encode" || name == "Write" || name == "WriteString" {
					why = "writes encoded output"
				}
			}
		case *ast.SendStmt:
			why = "sends on a channel"
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				if len(n.Lhs) == 1 && isFloatExpr(pkg, n.Lhs[0]) {
					why = "accumulates floats (addition order changes the result bits)"
				}
			}
		}
		return why == ""
	})
	return why
}

func isFloatExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
