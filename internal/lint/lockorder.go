package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockorder.go — the lock-order analyzer. It keys every
// sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock call to the variable
// holding the mutex (a struct field like coalescer.mu, or a package
// variable), then does two things:
//
//   - a symbolic per-function walk tracking the held set across
//     branches, loops, and defers, reporting locks still held on a
//     return, an explicit panic, or the end of the body with no
//     deferred unlock covering them (lock.unbalanced);
//   - a module-wide acquisition graph — an edge A→B whenever B is
//     taken (directly or through a statically resolved call chain)
//     while A is held — whose cycles are the classic AB/BA deadlocks
//     (lock.cycle). Re-acquiring a write-held mutex is reported as a
//     self-deadlock immediately.
//
// `go` statements and function literals run outside the caller's
// critical section, so the walk skips into neither; literals are walked
// standalone with an empty held set.

// analyzerLockOrder builds the lock-order analyzer.
func analyzerLockOrder() *Analyzer {
	return &Analyzer{Name: "lock-order", Run: runLockOrder}
}

// lockKey identifies one mutex variable in one acquisition mode (read
// for RLock/RUnlock, write for Lock/Unlock).
type lockKey struct {
	v    *types.Var
	read bool
}

// heldLock is one entry of the walker's held set: which lock, and where
// it was taken (findings anchor at the acquisition site).
type heldLock struct {
	key lockKey
	pos token.Pos
}

// heldSet is the ordered set of locks held on the current path. It is
// a slice — held sets are tiny and slice order keeps every iteration
// deterministic.
type heldSet []heldLock

func (h heldSet) index(k lockKey) int {
	for i, hl := range h {
		if hl.key == k {
			return i
		}
	}
	return -1
}

func (h heldSet) clone() heldSet { return append(heldSet(nil), h...) }

func unionHeld(a, b heldSet) heldSet {
	out := a.clone()
	for _, hl := range b {
		if out.index(hl.key) < 0 {
			out = append(out, hl)
		}
	}
	return out
}

// varSet is a declaration-position-sorted set of lock variables — the
// per-function summary of what a call may acquire.
type varSet []*types.Var

func (s varSet) has(v *types.Var) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (s varSet) add(v *types.Var) (varSet, bool) {
	if s.has(v) {
		return s, false
	}
	i := len(s)
	for j, x := range s {
		if v.Pos() < x.Pos() {
			i = j
			break
		}
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// lockAnalysis is the module-wide state: display names, per-function
// acquisition summaries, and the ordering graph.
type lockAnalysis struct {
	m      *Module
	report func(Finding)

	names    map[*types.Var]string
	acquires map[*types.Func]varSet

	edgeSeen map[[2]*types.Var]token.Pos
	edges    map[*types.Var][]*types.Var
	order    []*types.Var // first-seen order for deterministic DFS
}

func runLockOrder(m *Module, opts Options, report func(Finding)) {
	la := &lockAnalysis{
		m: m, report: report,
		names:    map[*types.Var]string{},
		acquires: map[*types.Func]varSet{},
		edgeSeen: map[[2]*types.Var]token.Pos{},
		edges:    map[*types.Var][]*types.Var{},
	}
	la.computeAcquires()
	for _, pkg := range m.Pkgs {
		if !inScope(pkg, opts.LockPkgs) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				la.walkFunction(pkg, fd.Body, "function "+fd.Name.Name)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						la.walkFunction(pkg, lit.Body, "function literal in "+fd.Name.Name)
					}
					return true
				})
			}
		}
	}
	la.reportCycles()
}

// walkFunction runs the balance walk over one function body.
func (la *lockAnalysis) walkFunction(pkg *Package, body *ast.BlockStmt, where string) {
	w := &lockWalker{la: la, pkg: pkg, where: where, deferRel: map[lockKey]bool{}}
	held, terminated := w.walk(body.List, nil)
	if !terminated {
		w.checkRelease(held, body.End(), "end of "+where)
	}
}

// mutexOp classifies a call as a sync lock-discipline method on a
// keyable variable; acquire is true for Lock/RLock.
func (la *lockAnalysis) mutexOp(pkg *Package, call *ast.CallExpr) (lockKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockKey{}, false, false
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return lockKey{}, false, false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, false, false
	}
	v := lockVarOf(pkg, sel.X)
	if v == nil {
		return lockKey{}, false, false
	}
	la.nameFor(pkg, sel.X, v)
	return lockKey{v, read}, acquire, true
}

// lockVarOf resolves the receiver expression of a mutex method to the
// variable that owns the mutex: a struct field (c.mu → field mu) or a
// plain variable. nil for anything unkeyable.
func lockVarOf(pkg *Package, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// nameFor renders (and caches) a lock's display name: Type.field for
// struct fields, the bare name otherwise.
func (la *lockAnalysis) nameFor(pkg *Package, x ast.Expr, v *types.Var) string {
	if n, ok := la.names[v]; ok {
		return n
	}
	name := v.Name()
	if sel, ok := ast.Unparen(x).(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok {
			t := s.Recv()
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				name = named.Obj().Name() + "." + v.Name()
			}
		}
	}
	la.names[v] = name
	return name
}

// computeAcquires summarizes, for every module function, the set of
// lock variables it may acquire — directly or through its statically
// resolved callees. `go` subtrees are excluded: a launched goroutine
// does not lock on the caller's path. The summary drives the
// interprocedural ordering edges.
func (la *lockAnalysis) computeAcquires() {
	type fnInfo struct {
		fn      *types.Func
		callees []*types.Func
	}
	var fns []fnInfo
	for _, pkg := range la.m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				var direct varSet
				var callees []*types.Func
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.GoStmt:
						return false
					case *ast.CallExpr:
						if key, acquire, ok := la.mutexOp(pkg, n); ok {
							if acquire {
								direct, _ = direct.add(key.v)
							}
							return true
						}
						if callee := calleeOf(pkg, n); callee != nil && callee.Pkg() != nil && isModulePath(callee.Pkg().Path(), la.m.Path) {
							callees = append(callees, callee)
						}
					}
					return true
				})
				la.acquires[fn] = direct
				fns = append(fns, fnInfo{fn, callees})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			mine := la.acquires[fi.fn]
			for _, c := range fi.callees {
				for _, v := range la.acquires[c] {
					var added bool
					if mine, added = mine.add(v); added {
						changed = true
					}
				}
			}
			la.acquires[fi.fn] = mine
		}
	}
}

// noteVar registers a lock variable as a graph node in first-seen
// order.
func (la *lockAnalysis) noteVar(v *types.Var) {
	if _, ok := la.edges[v]; !ok {
		la.edges[v] = nil
		la.order = append(la.order, v)
	}
}

// addEdge records A→B (B taken while A held) once, keeping the first
// acquisition site for the cycle report.
func (la *lockAnalysis) addEdge(from, to *types.Var, pos token.Pos) {
	key := [2]*types.Var{from, to}
	if _, ok := la.edgeSeen[key]; ok {
		return
	}
	la.edgeSeen[key] = pos
	la.noteVar(from)
	la.noteVar(to)
	la.edges[from] = append(la.edges[from], to)
}

// reportCycles runs a DFS over the acquisition graph and reports every
// distinct cycle once, anchored at the back edge that closes it.
func (la *lockAnalysis) reportCycles() {
	state := map[*types.Var]int{}
	dupes := map[string]bool{}
	var stack []*types.Var
	var dfs func(v *types.Var)
	dfs = func(v *types.Var) {
		state[v] = 1
		stack = append(stack, v)
		for _, to := range la.edges[v] {
			switch state[to] {
			case 0:
				dfs(to)
			case 1:
				i := 0
				for stack[i] != to {
					i++
				}
				cycle := append([]*types.Var(nil), stack[i:]...)
				la.reportCycle(cycle, la.edgeSeen[[2]*types.Var{v, to}], dupes)
			}
		}
		stack = stack[:len(stack)-1]
		state[v] = 2
	}
	for _, v := range la.order {
		if state[v] == 0 {
			dfs(v)
		}
	}
}

func (la *lockAnalysis) reportCycle(cycle []*types.Var, pos token.Pos, dupes map[string]bool) {
	// Canonicalize: rotate the cycle so the earliest-declared lock
	// leads, so A→B→A and B→A→B are the same finding.
	lead := 0
	for i, v := range cycle {
		if v.Pos() < cycle[lead].Pos() {
			lead = i
		}
	}
	rotated := append(append([]*types.Var(nil), cycle[lead:]...), cycle[:lead]...)
	parts := make([]string, 0, len(rotated)+1)
	for _, v := range rotated {
		parts = append(parts, la.names[v])
	}
	parts = append(parts, la.names[rotated[0]])
	key := strings.Join(parts, "→")
	if dupes[key] {
		return
	}
	dupes[key] = true
	la.report(la.m.findingAt(CodeLockCycle, pos,
		"lock ordering cycle %s — these mutexes are acquired in opposite orders, a potential deadlock", strings.Join(parts, " → ")))
}

// lockWalker is the per-function symbolic walk.
type lockWalker struct {
	la       *lockAnalysis
	pkg      *Package
	where    string
	deferRel map[lockKey]bool // deferred unlocks cover every later exit
}

// walk processes a statement list, threading the held set through and
// reporting on terminating paths; terminated is true when every path
// through the list returns or panics.
func (w *lockWalker) walk(stmts []ast.Stmt, held heldSet) (heldSet, bool) {
	held = held.clone()
	for _, s := range stmts {
		var term bool
		held, term = w.stmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) stmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isPanicCall(w.pkg, call) {
			w.checkRelease(held, call.Pos(), "panic")
			return held, true
		}
		held = w.exprEffects(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.exprEffects(e, held)
		}
	case *ast.DeclStmt:
		held = w.exprEffects(s, held)
	case *ast.SendStmt:
		held = w.exprEffects(s.Chan, held)
		held = w.exprEffects(s.Value, held)
	case *ast.DeferStmt:
		if key, acquire, ok := w.la.mutexOp(w.pkg, s.Call); ok && !acquire {
			w.deferRel[key] = true
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.exprEffects(e, held)
		}
		w.checkRelease(held, s.Pos(), "return")
		return held, true
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		held = w.exprEffects(s.Cond, held)
		h1, t1 := w.walk(s.Body.List, held)
		h2, t2 := held, false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			h2, t2 = w.walk(e.List, held)
		case *ast.IfStmt:
			h2, t2 = w.stmt(e, held)
		}
		switch {
		case t1 && t2:
			return held, true
		case t1:
			return h2, false
		case t2:
			return h1, false
		default:
			return unionHeld(h1, h2), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.exprEffects(s.Cond, held)
		}
		// Loop bodies must re-balance per iteration, so their net
		// effect on the held set is discarded; returns inside are
		// still checked by the nested walk.
		w.walk(s.Body.List, held)
	case *ast.RangeStmt:
		held = w.exprEffects(s.X, held)
		w.walk(s.Body.List, held)
	case *ast.BlockStmt:
		return w.walk(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.exprEffects(s.Tag, held)
		}
		bodies, exhaustive := caseBodies(s.Body)
		return w.branches(bodies, exhaustive, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.stmt(s.Init, held)
		}
		bodies, exhaustive := caseBodies(s.Body)
		return w.branches(bodies, exhaustive, held)
	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		exhaustive := true // select blocks until some clause runs
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			var b []ast.Stmt
			if cc.Comm != nil {
				b = append(b, cc.Comm)
			}
			bodies = append(bodies, append(b, cc.Body...))
		}
		return w.branches(bodies, exhaustive, held)
	}
	return held, false
}

// branches walks each alternative with the same entry set and merges:
// all-terminated + exhaustive means the statement terminates; otherwise
// the union of every surviving exit (plus the entry set when a no-match
// fall-through exists) flows on.
func (w *lockWalker) branches(bodies [][]ast.Stmt, exhaustive bool, held heldSet) (heldSet, bool) {
	if len(bodies) == 0 {
		return held, false
	}
	var merged heldSet
	any := false
	for _, b := range bodies {
		h, t := w.walk(b, held)
		if t {
			continue
		}
		if !any {
			merged, any = h, true
		} else {
			merged = unionHeld(merged, h)
		}
	}
	if !any && exhaustive {
		return held, true
	}
	if !exhaustive {
		merged = unionHeld(merged, held)
	} else if !any {
		merged = held
	}
	return merged, false
}

// caseBodies extracts switch clause bodies and whether a default clause
// makes the switch exhaustive.
func caseBodies(block *ast.BlockStmt) ([][]ast.Stmt, bool) {
	var bodies [][]ast.Stmt
	exhaustive := false
	for _, c := range block.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			exhaustive = true
		}
		bodies = append(bodies, cc.Body)
	}
	return bodies, exhaustive
}

// exprEffects applies an expression's lock effects: mutex calls move
// the held set, and calls into functions that themselves acquire locks
// add ordering edges from everything currently held. Function literals
// are skipped — they run later, outside this critical section.
func (w *lockWalker) exprEffects(n ast.Node, held heldSet) heldSet {
	if n == nil {
		return held
	}
	ast.Inspect(n, func(nn ast.Node) bool {
		if _, ok := nn.(*ast.FuncLit); ok {
			return false
		}
		call, ok := nn.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, ok := w.la.mutexOp(w.pkg, call); ok {
			if !acquire {
				if i := held.index(key); i >= 0 {
					held = append(held[:i:i], held[i+1:]...)
				}
				return true
			}
			for _, hl := range held {
				if hl.key.v == key.v {
					if !(hl.key.read && key.read) {
						w.la.report(w.la.m.finding(CodeLockCycle, call,
							"%s is acquired here while already held (taken at %s) — guaranteed self-deadlock",
							w.la.names[key.v], w.la.m.shortPos(hl.pos)))
					}
					continue
				}
				w.la.addEdge(hl.key.v, key.v, call.Pos())
			}
			if held.index(key) < 0 {
				held = append(held, heldLock{key, call.Pos()})
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		if callee := calleeOf(w.pkg, call); callee != nil {
			for _, v := range w.la.acquires[callee] {
				for _, hl := range held {
					if hl.key.v != v {
						w.la.addEdge(hl.key.v, v, call.Pos())
					}
				}
			}
		}
		return true
	})
	return held
}

// checkRelease reports every lock still held at a path exit that no
// deferred unlock covers.
func (w *lockWalker) checkRelease(held heldSet, at token.Pos, why string) {
	for _, hl := range held {
		if w.deferRel[hl.key] {
			continue
		}
		pos := w.la.m.Rel(w.la.m.Fset.Position(at))
		w.la.report(w.la.m.findingAt(CodeLockUnbalanced, hl.pos,
			"%s locked here is not released on the %s at line %d (no unlock on this path, no deferred unlock)",
			w.la.names[hl.key.v], why, pos.Line))
	}
}

// isPanicCall reports whether the call is the builtin panic.
func isPanicCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}
