package lint

import (
	"go/ast"
	"go/types"
)

// FuncNode is one module function in the lightweight call graph built
// for the reachability analyzers. Only static calls are resolved
// (direct calls and concrete method calls); a call through a function
// value or interface method is recorded as Dynamic, which the norace
// analyzer treats as an escape — it cannot prove what runs there.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Callees are the statically resolved module-internal callees.
	Callees []*types.Func
	// StdCallees are statically resolved non-module callees (stdlib),
	// kept as objects so analyzers can match on package paths.
	StdCallees []*types.Func
	// Dynamic marks a call whose target cannot be resolved statically.
	Dynamic bool
	// TouchesSync marks any use of sync or sync/atomic in the body
	// (mutex methods, atomic types/functions) — the instrumented
	// shared-state signature norace containment keys on.
	TouchesSync bool
}

// CallGraph indexes every function declaration in the module.
type CallGraph struct {
	nodes map[*types.Func]*FuncNode
}

// Node returns the graph node for fn, or nil for functions without a
// body in the module (stdlib, interface methods).
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// BuildCallGraph walks every function body in the module once and
// resolves its static callees through the type-checker's Uses map.
func BuildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*FuncNode{}}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = node
				collectCalls(pkg, m.Path, fd.Body, node)
			}
		}
	}
	return g
}

func collectCalls(pkg *Package, modPath string, body ast.Node, node *FuncNode) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[n]; obj != nil && obj.Pkg() != nil {
				if p := obj.Pkg().Path(); p == "sync" || p == "sync/atomic" {
					node.TouchesSync = true
				}
			}
		case *ast.CallExpr:
			callee := calleeOf(pkg, n)
			if callee == nil {
				if !isConversionOrBuiltin(pkg, n) {
					node.Dynamic = true
				}
				return true
			}
			if callee.Pkg() != nil && isModulePath(callee.Pkg().Path(), modPath) {
				node.Callees = append(node.Callees, callee)
			} else {
				node.StdCallees = append(node.StdCallees, callee)
			}
		case *ast.GoStmt:
			// A goroutine launched from a norace region is an escape by
			// construction; model it as a dynamic call.
			node.Dynamic = true
		}
		return true
	})
}

// calleeOf resolves a call expression to a *types.Func when the target
// is a declared function or concrete method; nil otherwise. Explicit
// generic instantiations (f[T](x)) are unwrapped to the function name.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	target := ast.Unparen(call.Fun)
	switch idx := target.(type) {
	case *ast.IndexExpr:
		target = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		target = ast.Unparen(idx.X)
	}
	switch fun := target.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// Interface method calls resolve to the interface's *types.Func;
		// treat them as unresolved (dynamic) since any implementation
		// may run.
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isConversionOrBuiltin reports whether the call expression is a type
// conversion or a builtin (len, append, make, ...), neither of which is
// a dynamic call.
func isConversionOrBuiltin(pkg *Package, call *ast.CallExpr) bool {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return true
	}
	return false
}

func isModulePath(path, modPath string) bool {
	return path == modPath || len(path) > len(modPath) && path[:len(modPath)] == modPath && path[len(modPath)] == '/'
}
