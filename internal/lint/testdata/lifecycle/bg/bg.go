// Package bg exercises the goroutine-lifecycle analyzer: background
// loops need a stop path and tickers need a Stop.
package bg

import "time"

func work() {}

// Leak spins a goroutine with no way out: no done receive, no return.
func Leak() {
	go func() {
		for { // want lifecycle.goroutine-leak
			work()
		}
	}()
}

// spin loops forever; reported when a goroutine reaches it through the
// call graph.
func spin() {
	for { // want lifecycle.goroutine-leak
		work()
	}
}

// LaunchNamed leaks through a named entry point.
func LaunchNamed() {
	go spin()
}

// Drop arms a ticker nobody stops, then ranges its channel forever.
func Drop() {
	t := time.NewTicker(time.Second) // want lifecycle.ticker-stop
	go func() {
		for range t.C { // want lifecycle.goroutine-leak
			work()
		}
	}()
}

// Inline can never stop its ticker: the constructor result is consumed
// directly, and ticker channels never close.
func Inline() {
	go func() {
		for range time.NewTicker(time.Second).C { // want lifecycle.ticker-stop lifecycle.goroutine-leak
			work()
		}
	}()
}

// Stoppable is the clean shape: done-channel select, deferred Stop.
func Stoppable(done chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				work()
			}
		}
	}()
}

// Server owns a ticker field with a matching Stop elsewhere in the
// package: clean.
type Server struct {
	tick *time.Ticker
}

// Start arms the field ticker.
func (s *Server) Start() {
	s.tick = time.NewTicker(time.Second)
}

// Close stops it.
func (s *Server) Close() {
	s.tick.Stop()
}

// Bad owns a ticker no function in the package ever stops.
type Bad struct {
	tick *time.Ticker
}

// Arm arms the doomed field ticker.
func (b *Bad) Arm() {
	b.tick = time.NewTicker(time.Second) // want lifecycle.ticker-stop
}

// Forever is a process-lifetime worker; the suppression vouches that
// exit is the stop path.
func Forever() {
	go func() {
		//lint:ignore lifecycle.goroutine-leak process-lifetime worker, reaped at exit
		for {
			work()
		}
	}()
}

// Quiet holds the stale suppressions.
func Quiet() {
	// want-next lint.unused-suppression
	//lint:ignore lifecycle.goroutine-leak nothing loops here
	work()
	// want-next lint.unused-suppression
	//lint:ignore lifecycle.ticker-stop nothing ticks here
	work()
}
