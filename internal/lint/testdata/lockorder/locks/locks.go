// Package locks exercises the lock-order analyzer: AB/BA acquisition
// cycles and locks not released on every path.
package locks

import "sync"

// pair holds two mutexes the functions below acquire in both orders.
type pair struct {
	a sync.Mutex
	b sync.Mutex
	n int
}

// AB takes a then b — one half of the cycle.
func (p *pair) AB() {
	p.a.Lock()
	p.b.Lock()
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

// BA takes b then a — the opposite order; the back edge closes the
// cycle here.
func (p *pair) BA() {
	p.b.Lock()
	p.a.Lock() // want lock.cycle
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// lockB locks b briefly — callee for the interprocedural edge.
func (p *pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

// Nested takes a and calls lockB: an a→b edge through the call graph
// (already present from AB, so no extra cycle).
func (p *pair) Nested() {
	p.a.Lock()
	p.lockB()
	p.a.Unlock()
}

// Leaky forgets to unlock on the early return.
func (p *pair) Leaky(fail bool) {
	p.a.Lock() // want lock.unbalanced
	if fail {
		return
	}
	p.a.Unlock()
}

// Twice re-acquires a mutex it already holds — self-deadlock.
func (p *pair) Twice() {
	p.a.Lock()
	p.a.Lock() // want lock.cycle
	p.a.Unlock()
	p.a.Unlock()
}

// EarlyOut unlocks on both paths: clean.
func (p *pair) EarlyOut(skip bool) {
	p.a.Lock()
	if skip {
		p.a.Unlock()
		return
	}
	p.n++
	p.a.Unlock()
}

// Deferred relies on the deferred unlock: clean.
func (p *pair) Deferred() {
	p.a.Lock()
	defer p.a.Unlock()
	p.n++
}

// Looped continues inside the critical section and unlocks at the end:
// clean.
func (p *pair) Looped(xs []int) {
	p.a.Lock()
	for _, x := range xs {
		if x == 0 {
			continue
		}
		p.n += x
	}
	p.a.Unlock()
}

// Handoff intentionally exits holding the lock; Release is the pair.
func (p *pair) Handoff() {
	//lint:ignore lock.unbalanced ownership passes to the caller, released by Release
	p.a.Lock()
	p.n++
}

// Release matches Handoff.
func (p *pair) Release() {
	p.a.Unlock()
}

// Quiet holds the stale suppressions.
func (p *pair) Quiet() {
	// want-next lint.unused-suppression
	//lint:ignore lock.cycle no ordering edge on this line
	p.n = 0
	// want-next lint.unused-suppression
	//lint:ignore lock.unbalanced nothing held on this line
	p.n = 1
}
