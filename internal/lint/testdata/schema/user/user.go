// Package user exercises every schema-sensitive site: declared
// constants pass, drifting literals are findings, dynamic names are
// exempt.
package user

import (
	"log/slog"

	"fixture/diag"
	"fixture/obs"
)

func use(r *obs.Registry, t *obs.Tracer, rep obs.Report, dynamic string) {
	_ = r.Counter(obs.MetricPairs)
	_ = r.Counter("skipgram.pairz") // want schema.metric-name
	_ = t.Start(obs.SpanTrain)
	_ = t.Start(string(obs.StageWalk))
	_ = t.Start("tarin") // want schema.span-name
	_ = t.Start(dynamic)
	_ = rep.Counters[obs.MetricPairs]
	_ = rep.Counters["walk.pathz"] // want schema.metric-name
	_ = obs.TrainEvent{Stage: obs.StageWalk, Level: obs.LevelWarn}
	_ = obs.TrainEvent{
		Stage: "wark",    // want schema.event-stage
		Level: "wanring", // want schema.event-level
	}
	_ = diag.Finding{Code: diag.CodeGood}
	_ = diag.Finding{Code: "embedding.bad"} // want schema.finding-code

	tr := &obs.ReqTrace{}
	tr.StartStage(obs.TraceStageDecode)
	tr.StartStage("decod") // want schema.trace-stage
	tr.EndStage(obs.TraceStageDecode)
	tr.EndStage("froward") // want schema.trace-stage

	_ = obs.WatchEvent{Rule: dynamic, Code: obs.WatchCodeP99}
	_ = obs.WatchEvent{Code: "watch.p99_budgit"} // want schema.watch-code

	var res obs.HistoryResolution
	_ = res.Counters[obs.MetricPairs]
	_ = res.Counters["skipgram.pears"] // want schema.metric-name
	_ = res.Rates[obs.MetricPairs]
	_ = res.Rates["skipgram.pares"] // want schema.metric-name
	_ = res.Gauges["walk.depthz"]   // want schema.metric-name
	_ = res.Quantiles[obs.MetricPairs]
	_ = res.Quantiles[dynamic]

	_ = slog.String(obs.LogKeyRequestID, dynamic)
	_ = slog.String("requist_id", dynamic) // want schema.log-key
	_ = slog.Float64(string(obs.TraceStageDecode), 1)
	_ = slog.Int("statas", 200) // want schema.log-key
	_ = slog.Bool(dynamic, true)
}
