// Package diag is the fixture's diagnostics stub declaring the finding
// code constant set.
package diag

// CodeGood is the only declared finding code in the fixture.
const CodeGood = "embedding.ok"

// Finding is one diagnostics verdict.
type Finding struct {
	Code string
}
