// Package obs is the fixture's telemetry stub: it declares the
// metric/span/stage/level constant sets and the types whose call sites
// the schema-registry analyzer validates.
package obs

// Stage labels one phase of the training loop.
type Stage string

// StageWalk is the only declared stage in the fixture.
const StageWalk Stage = "walk"

// Declared schema constants.
const (
	MetricPairs = "skipgram.pairs"
	SpanTrain   = "train"
	LevelWarn   = "warning"
)

// Registry hands out metric handles by declared name.
type Registry struct{}

// Counter returns a counter handle for the named metric.
func (r *Registry) Counter(name string) *int64 { return new(int64) }

// Tracer times named spans.
type Tracer struct{}

// Start opens the named span.
func (t *Tracer) Start(name string) int { return 0 }

// TrainEvent is one training progress event.
type TrainEvent struct {
	Stage Stage
	Level string
}

// Report is the schema-stable run report.
type Report struct {
	Counters map[string]int64
}

// TraceStage labels one phase of request handling.
type TraceStage string

// TraceStageDecode is the only declared trace stage in the fixture.
const TraceStageDecode TraceStage = "decode"

// LogKeyRequestID is the only declared structured-log key in the
// fixture.
const LogKeyRequestID = "request_id"

// WatchCodeP99 is the only declared watchdog rule code in the fixture.
const WatchCodeP99 = "watch.p99_budget"

// WatchEvent is one watchdog trip record.
type WatchEvent struct {
	Rule string
	Code string
}

// HistoryResolution is one resolution of the fixture's history dump;
// its series maps are keyed by declared metric names.
type HistoryResolution struct {
	Counters  map[string][]int64
	Rates     map[string][]float64
	Gauges    map[string][]float64
	Quantiles map[string][]float64
}

// ReqTrace is one request's in-flight trace.
type ReqTrace struct{}

// StartStage opens the named stage.
func (tr *ReqTrace) StartStage(s TraceStage) {}

// EndStage closes the named stage.
func (tr *ReqTrace) EndStage(s TraceStage) {}
