package nodoc // want doc.missing

// Only the package clause is undocumented here; the one exported
// symbol is fine.

// Fine is documented.
func Fine() {}
