// Package api is the doccheck fixture's documented package: a package
// comment plus a mix of documented and undocumented exported symbols.
package api

// Documented is an exported type with its own doc comment: no finding.
type Documented struct{}

// Describe is a documented exported method on an exported type.
func (d *Documented) Describe() string { return "ok" }

func (d *Documented) Bare() string { return "oops" } // want doc.missing

type Naked struct{} // want doc.missing

// grouped types need per-spec docs; the single-spec form may use the
// declaration doc instead.
type (
	// Inner is documented at the spec: no finding.
	Inner struct{}
	Outer struct{} // want doc.missing
)

// Single-spec declaration doc covers the one type it declares.
type Covered struct{}

// Exported is a documented function: no finding.
func Exported() {}

func Undocumented() {} // want doc.missing

// helper is unexported: never a finding.
func helper() {}

// methods on unexported receivers are plumbing, not API: no finding
// even without a doc comment.
type internalOnly struct{}

func (internalOnly) Exported() {}

// Declared constants: a group doc documents every name in the block.
const (
	GroupedA = "a"
	GroupedB = "b"
)

const LonelyConst = 1 // want doc.missing

var LonelyVar = 2 // want doc.missing

// TrailedVar is covered by this single-spec declaration doc.
var TrailedVar = 3

var (
	// DocdVar carries its own doc: no finding.
	DocdVar = 4
	BareVar = 5 // want doc.missing
)

// A directive alone is not documentation (CommentGroup.Text strips
// it), but it IS a working suppression — the audited escape hatch.

//lint:ignore doc.missing the fixture's sanctioned escape hatch in action
var Suppressed = 6

var _ = helper
