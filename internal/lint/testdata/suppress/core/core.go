// Package core proves the suppression machinery: a reasoned
// //lint:ignore silences its finding, a stale one is itself a finding,
// and malformed directives are reported.
package core

// sorted iterates a map into a slice, which the determinism analyzer
// flags — but the suppression right above the loop vouches that the
// caller sorts, so no finding survives.
func sorted(m map[string]int) []string {
	var out []string
	//lint:ignore determinism.map-order the caller sorts the keys before use
	for k := range m {
		out = append(out, k)
	}
	return out
}

func stale() int {
	// want-next lint.unused-suppression
	//lint:ignore determinism.map-order suppresses nothing on this line
	return 0
}

func missingReason(m map[string]int) []string {
	var out []string
	// want-next lint.bad-directive
	//lint:ignore determinism.map-order
	for k := range m { // want determinism.map-order
		out = append(out, k)
	}
	return out
}

func unknownVerb() int {
	// want-next lint.bad-directive
	//lint:frobnicate whatever this is
	return 0
}
