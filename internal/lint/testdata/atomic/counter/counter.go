// Package counter exercises the atomic-consistency analyzer: a field
// touched through raw sync/atomic anywhere must be accessed atomically
// everywhere, and 64-bit atomics need 8-byte-aligned offsets under the
// 32-bit struct layout.
package counter

import "sync/atomic"

// Stats mixes aligned and misaligned atomically-owned fields: under
// GOARCH=386 hits sits at offset 0 (fine) and miss at offset 12 (a
// runtime panic on 32-bit).
type Stats struct {
	hits int64
	pad  int32
	miss int64 // want atomic.alignment
}

// total is an atomically-owned package variable.
var total int64

// Bump is all-atomic: clean.
func Bump(s *Stats) {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.miss, 1)
	atomic.AddInt64(&total, 1)
}

// Read loads atomically: clean.
func Read(s *Stats) int64 {
	return atomic.LoadInt64(&s.hits) + atomic.LoadInt64(&total)
}

// Race reads an atomically-owned field plainly — the data race the
// analyzer exists for.
func Race(s *Stats) int64 {
	return s.hits // want atomic.mixed-access
}

// Plain writes the package variable plainly.
func Plain() {
	total = 0 // want atomic.mixed-access
}

// New builds a Stats: composite-literal field keys are declarations,
// not accesses, so this is clean.
func New() *Stats {
	return &Stats{hits: 0, miss: 0}
}

// Init writes before any reader can exist; the suppression vouches for
// the happens-before edge.
func Init(s *Stats) {
	//lint:ignore atomic.mixed-access construction-time write before any reader exists
	s.hits = 0
}

// Quiet holds the stale suppressions: nothing fires on these lines, so
// each ignore is itself a finding.
func Quiet() {
	// want-next lint.unused-suppression
	//lint:ignore atomic.mixed-access nothing races on this line
	x := 1
	// want-next lint.unused-suppression
	//lint:ignore atomic.alignment nothing misaligned on this line
	_ = x
}
