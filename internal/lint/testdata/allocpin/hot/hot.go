// Package hot exercises the alloc-pin analyzer: a //lint:alloc-free
// body must not allocate, verified through the compiler's own escape
// analysis.
package hot

// Escapes allocates in an annotated body — the pin the analyzer turns
// into a finding.
//
//lint:alloc-free pinned hot path (fixture)
func Escapes(n int) *int {
	x := new(int) // want alloc.escape
	*x = n
	return x
}

// Clean is pure arithmetic: annotated and genuinely allocation-free.
//
//lint:alloc-free no allocation, pure arithmetic
func Clean(n int) int {
	return n*2 + 1
}

// Unannotated allocates freely — without the annotation the analyzer
// has nothing to say.
func Unannotated(n int) *int {
	y := new(int)
	*y = n
	return y
}

// Amortized allocates once; the suppression vouches the warmup cost is
// amortized to zero in steady state.
//
//lint:alloc-free steady-state path is allocation-free after warmup
func Amortized(n int) *int {
	//lint:ignore alloc.escape one-time warmup allocation, amortized away
	z := new(int)
	*z = n
	return z
}

// Quiet holds the stale suppressions.
func Quiet(n int) int {
	// want-next lint.unused-suppression
	//lint:ignore alloc.escape nothing escapes here
	n++
	// want-next lint.unused-suppression
	//lint:ignore alloc.driver the driver is healthy
	return n
}
