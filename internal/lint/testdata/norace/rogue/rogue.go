// Package rogue is outside the Hogwild-leaf allowlist, so any
// //go:norace here is a finding regardless of how clean the body is.
package rogue

// hot is race-exempt in a package that is not allowed to be.
//
// want-next norace.allowlist
//
//go:norace
//go:noinline
func hot(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}
