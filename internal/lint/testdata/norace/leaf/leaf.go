// Package leaf is the fixture's allowlisted Hogwild-leaf package: the
// one place //go:norace pragmas are allowed, provided they pair with
// //go:noinline and their call graph stays free of instrumented state.
package leaf

import (
	"sync"

	"fixture/obsstub"
)

// ok is a clean leaf: allowlisted package, paired pragmas, pure body.
//
//go:norace
//go:noinline
func ok(in, out []float64, lr float64) {
	for i := range in {
		out[i] = lr * in[i]
	}
}

// missingNoinline omits the paired pragma, so an instrumented caller
// could inline the body and widen the race exemption.
//
// want-next norace.noinline
//
//go:norace
func missingNoinline(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

var mu sync.Mutex

// locks reaches a sync.Mutex through its callee.
//
//go:norace
//go:noinline
func locks(xs []float64) { // want norace.escape
	bump(xs)
}

func bump(xs []float64) {
	mu.Lock()
	xs[0] = 1
	mu.Unlock()
}

// reports reaches the forbidden instrumented package.
//
//go:norace
//go:noinline
func reports(xs []float64) { // want norace.escape
	obsstub.Bump()
	xs[0] = 1
}

// dynamic calls a function value, which cannot be proven race-exempt.
//
//go:norace
//go:noinline
func dynamic(f func()) { // want norace.escape
	f()
}

func stray() int {
	// want-next norace.allowlist
	//go:norace
	n := 0
	return n
}
