// Package obsstub stands in for the instrumented telemetry package a
// norace call graph must never reach.
package obsstub

var calls int

// Bump touches shared state the way a metrics registry would.
func Bump() {
	calls++
}
