// Package core is the fixture's deterministic-core package: global
// math/rand draws, wall-clock seeds and order-sensitive map iteration
// are findings here.
package core

import (
	"math/rand"
	"time"
)

// globalDraw consumes the process-global math/rand source.
func globalDraw() float64 {
	return rand.Float64() // want determinism.global-rand
}

// clockSeed converts the wall clock to an integer — the canonical
// irreproducible-seed recipe.
func clockSeed() int64 {
	return time.Now().UnixNano() // want determinism.time-seed
}

// clockStream seeds a stream straight from the clock.
func clockStream() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want determinism.time-seed
}

// collect leaks map iteration order through append.
func collect(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism.map-order
		out = append(out, k)
	}
	return out
}

// total accumulates floats in map iteration order.
func total(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want determinism.map-order
		s += v
	}
	return s
}

// count is order-insensitive: no finding.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// seeded threads an explicit configured seed: no finding.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func use(m map[string]float64) {
	_ = globalDraw()
	_ = clockSeed()
	_ = clockStream()
	_ = collect(nil)
	_ = total(m)
	_ = count(nil)
	_ = seeded(1)
}
