// finite.go is the fixture's guard file: functions declared here are
// the guard itself and exempt from finite-hygiene findings.
package weights

import "math"

// checkFinite reports whether every value in xs is finite.
func checkFinite(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
