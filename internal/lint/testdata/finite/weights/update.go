// Package weights is the fixture's weight-owning package: float math
// written into slice elements must flow through the finite.go guard or
// carry a //lint:finite-checked annotation.
package weights

// unguarded writes float math into a row with no guard in sight.
func unguarded(row []float64, g float64) {
	for i := range row {
		row[i] -= g * row[i] // want finite.unguarded
	}
}

// guarded performs the same update but sweeps the row with the guard.
func guarded(row []float64, g float64) {
	for i := range row {
		row[i] -= g * row[i]
	}
	if !checkFinite(row) {
		panic("weights: non-finite row")
	}
}

// annotated is exempt because it names who checks its output.
//
//lint:finite-checked the caller sweeps the row after every batch
func annotated(row []float64, g float64) {
	for i := range row {
		row[i] *= g
	}
}

// copyRow is a plain element copy: it preserves finiteness and needs no
// guard.
func copyRow(dst, src []float64) {
	for i := range dst {
		dst[i] = src[i]
	}
}

func use() {
	r := []float64{1, 2}
	unguarded(r, 0.5)
	guarded(r, 0.5)
	annotated(r, 0.5)
	copyRow(r, r)
}
