package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lifecycle.go — the goroutine-lifecycle analyzer. In the long-lived
// packages (Options.LifecyclePkgs: obs, serve, load, par) every `go`
// statement must lead to a goroutine that can stop: an unbounded
// background loop with no receive from a done/ctx channel and no
// return/break outlives its owner — exactly the leak class the
// History/Watchdog clean-stop tests pin dynamically. The analyzer also
// checks that every time.NewTicker/time.NewTimer is paired with a Stop
// (in the same function for locals, anywhere in the package for struct
// fields); an unstopped ticker keeps its runtime timer and everything
// it retains alive until process exit.

// analyzerLifecycle builds the goroutine-lifecycle analyzer.
func analyzerLifecycle() *Analyzer {
	return &Analyzer{Name: "goroutine-lifecycle", Run: runLifecycle}
}

func runLifecycle(m *Module, opts Options, report func(Finding)) {
	graph := BuildCallGraph(m)
	seenLoop := map[token.Pos]bool{} // a loop reachable from two go statements reports once
	for _, pkg := range m.Pkgs {
		if !inScope(pkg, opts.LifecyclePkgs) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoroutine(m, pkg, graph, g, seenLoop, report)
				}
				return true
			})
			checkTickers(m, pkg, f, report)
		}
	}
}

// checkGoroutine scans the goroutine's entry body — a function literal
// or the resolved callee — plus every module function statically
// reachable from it for unstoppable background loops.
func checkGoroutine(m *Module, pkg *Package, graph *CallGraph, g *ast.GoStmt, seen map[token.Pos]bool, report func(Finding)) {
	launch := m.shortPos(g.Pos())

	type body struct {
		pkg  *Package
		node ast.Node
	}
	var bodies []body
	visited := map[*types.Func]bool{}
	var follow func(p *Package, fn *types.Func)
	follow = func(p *Package, fn *types.Func) {
		if fn == nil || visited[fn] {
			return
		}
		visited[fn] = true
		node := graph.Node(fn)
		if node == nil {
			return
		}
		bodies = append(bodies, body{node.Pkg, node.Decl.Body})
		for _, callee := range node.Callees {
			follow(node.Pkg, callee)
		}
	}

	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		bodies = append(bodies, body{pkg, lit.Body})
		// Module functions the literal calls are part of the goroutine.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := calleeOf(pkg, call); fn != nil && fn.Pkg() != nil && isModulePath(fn.Pkg().Path(), m.Path) {
					follow(pkg, fn)
				}
			}
			return true
		})
	} else if fn := calleeOf(pkg, g.Call); fn != nil {
		follow(pkg, fn)
	}
	// An unresolvable target (go through a function value) cannot be
	// proven either way; the norace analyzer owns dynamic-call policy.

	for _, b := range bodies {
		ast.Inspect(b.node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // separate goroutine or deferred context
			case *ast.ForStmt:
				if n.Cond == nil && !seen[n.Pos()] && !loopHasStopPath(b.pkg, n.Body) {
					seen[n.Pos()] = true
					report(m.finding(CodeLifecycleLeak, n,
						"unbounded loop in goroutine launched at %s has no stop path (no done/ctx receive, return, or break) — the goroutine outlives its owner", launch))
				}
			case *ast.RangeStmt:
				if isTickerChan(b.pkg, n.X) && !seen[n.Pos()] && !loopHasStopPath(b.pkg, n.Body) {
					seen[n.Pos()] = true
					report(m.finding(CodeLifecycleLeak, n,
						"range over a ticker channel in goroutine launched at %s never ends (ticker channels are never closed) and has no return or break", launch))
				}
			}
			return true
		})
	}
}

// loopHasStopPath reports whether the loop body contains a way out:
// a return, a break (or goto), or a receive from a channel that is not
// a ticker/timer feed — done channels, ctx.Done(), and result channels
// all count; tick.C does not, because it fires forever.
func loopHasStopPath(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !isTickerChan(pkg, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isTickerChan(pkg, n.X) {
					found = true // terminates when the channel closes
				}
			}
		}
		return !found
	})
	return found
}

// isTickerChan reports whether the expression is the C field of a
// time.Ticker or time.Timer — the channels that fire forever and never
// close, so receiving from them is not a stop path.
func isTickerChan(pkg *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "C" {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "time" {
		return false
	}
	return named.Obj().Name() == "Ticker" || named.Obj().Name() == "Timer"
}

// checkTickers verifies every time.NewTicker/NewTimer call in the file
// is paired with a Stop: locals must be stopped (or escape — returned
// or handed to another function, transferring ownership) within the
// enclosing function; struct fields must have a Stop call somewhere in
// the package.
func checkTickers(m *Module, pkg *Package, f *ast.File, report func(Finding)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// Map each NewTicker/NewTimer call to the variable it lands in.
		consumed := map[*ast.CallExpr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					call := tickerCall(pkg, rhs)
					if call == nil {
						continue
					}
					consumed[call] = true
					checkTickerTarget(m, pkg, fd, n.Lhs[i], call, report)
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i, v := range n.Values {
					call := tickerCall(pkg, v)
					if call == nil {
						continue
					}
					consumed[call] = true
					checkTickerTarget(m, pkg, fd, n.Names[i], call, report)
				}
			}
			return true
		})
		// Any NewTicker/NewTimer used as a bare expression (for range
		// time.NewTicker(d).C, a call argument) can never be stopped.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call := tickerCall(pkg, n); call != nil && !consumed[call] {
				report(m.finding(CodeLifecycleTicker, call,
					"%s is never assigned, so its Stop is unreachable — bind it and defer Stop", tickerCtor(pkg, call)))
				return false
			}
			return true
		})
	}
}

// tickerCall returns n as a time.NewTicker/NewTimer call, or nil.
func tickerCall(pkg *Package, n ast.Node) *ast.CallExpr {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return nil
	}
	if fn.Name() == "NewTicker" || fn.Name() == "NewTimer" {
		return call
	}
	return nil
}

func tickerCtor(pkg *Package, call *ast.CallExpr) string {
	if fn := calleeOf(pkg, call); fn != nil {
		return "time." + fn.Name()
	}
	return "time.NewTicker"
}

// checkTickerTarget verifies the variable receiving a ticker gets a
// Stop. Locals: a Stop call, or an escape (return, call argument,
// further assignment) inside the same declared function. Fields: a Stop
// on the same field object anywhere in the package.
func checkTickerTarget(m *Module, pkg *Package, fd *ast.FuncDecl, lhs ast.Expr, call *ast.CallExpr, report func(Finding)) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			report(m.finding(CodeLifecycleTicker,
				call, "%s is assigned to _, so its Stop is unreachable", tickerCtor(pkg, call)))
			return
		}
		obj := pkg.Info.Defs[lhs]
		if obj == nil {
			obj = pkg.Info.Uses[lhs]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if !localTickerHandled(pkg, fd, v, lhs) {
			report(m.finding(CodeLifecycleTicker, call,
				"%s bound to %q has no Stop in %s — defer %s.Stop() or stop it on the shutdown path",
				tickerCtor(pkg, call), lhs.Name, fd.Name.Name, lhs.Name))
		}
	case *ast.SelectorExpr:
		obj, _ := addressedVar(pkg, lhs)
		if obj == nil {
			return
		}
		if !packageStopsField(pkg, obj) {
			report(m.finding(CodeLifecycleTicker, call,
				"%s stored in field %s has no Stop anywhere in package %s",
				tickerCtor(pkg, call), obj.Name(), pkg.Name))
		}
	}
}

// localTickerHandled reports whether the local ticker variable is
// stopped or escapes ownership inside the function.
func localTickerHandled(pkg *Package, fd *ast.FuncDecl, v *types.Var, def *ast.Ident) bool {
	handled := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if handled {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Stop() — the pairing we want.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == v {
					handled = true
					return false
				}
			}
			// v passed to another function: ownership transferred.
			for _, arg := range n.Args {
				if usesVarDirectly(pkg, arg, v) {
					handled = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if usesVarDirectly(pkg, res, v) {
					handled = true
					return false
				}
			}
		case *ast.AssignStmt:
			// v stored somewhere else (a field, a map) escapes too.
			for _, rhs := range n.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && id != def && pkg.Info.Uses[id] == v {
					handled = true
					return false
				}
			}
		}
		return true
	})
	return handled
}

// usesVarDirectly reports whether e is the variable itself (or its
// address) — a selector like v.C does not transfer ownership.
func usesVarDirectly(pkg *Package, e ast.Expr, v *types.Var) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && pkg.Info.Uses[id] == v
}

// packageStopsField reports whether any file in the package calls Stop
// on the given ticker field.
func packageStopsField(pkg *Package, field *types.Var) bool {
	for _, f := range pkg.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Stop" {
				return true
			}
			if obj, _ := addressedVar(pkg, ast.Unparen(sel.X)); obj == field {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
