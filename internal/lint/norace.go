package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// analyzerNorace enforces the Hogwild containment contract of DESIGN.md
// §6: the //go:norace race-detector exemption may appear only on the
// allowlisted leaf packages, must pair with //go:noinline (inlining
// into an instrumented caller would silently widen the exemption), and
// the static call graph from a norace function must never reach
// instrumented shared state — the obs registry/tracer, any sync or
// sync/atomic user, or a call that cannot be resolved statically
// (function values, interface methods, goroutines). The pragma is a
// scalpel; this analyzer keeps it from becoming a blanket.
func analyzerNorace() *Analyzer {
	return &Analyzer{
		Name: "norace-containment",
		Run: func(m *Module, opts Options, report func(Finding)) {
			graph := BuildCallGraph(m)
			for _, pkg := range m.Pkgs {
				for _, f := range pkg.Files {
					checkNoraceFile(m, graph, pkg, f, opts, report)
				}
			}
		},
	}
}

func checkNoraceFile(m *Module, graph *CallGraph, pkg *Package, f *ast.File, opts Options, report func(Finding)) {
	// Pragma comments that belong to a function's doc group are
	// accounted for through the declaration; any other //go:norace in
	// the file is a stray that the compiler may or may not honor —
	// either way it is outside the audited set.
	attached := map[*ast.Comment]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		var norace, noinline *ast.Comment
		for _, c := range fd.Doc.List {
			attachedPragma := false
			switch strings.TrimSpace(c.Text) {
			case "//go:norace":
				norace, attachedPragma = c, true
			case "//go:noinline":
				noinline, attachedPragma = c, true
			}
			if attachedPragma {
				attached[c] = true
			}
		}
		if norace == nil {
			continue
		}
		if !inScope(pkg, opts.NoracePkgs) {
			report(m.finding(CodeNoraceAllowlist, norace,
				"//go:norace on %s.%s: package %s is not in the Hogwild leaf allowlist (%s)",
				pkg.Name, fd.Name.Name, pkg.Path, strings.Join(opts.NoracePkgs, ", ")))
		}
		if noinline == nil {
			report(m.finding(CodeNoraceNoinline, norace,
				"//go:norace on %s.%s without //go:noinline: an instrumented caller could inline the body and widen the exemption",
				pkg.Name, fd.Name.Name))
		}
		if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			checkNoraceEscape(m, graph, fn, fd, opts, report)
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == "//go:norace" && !attached[c] {
				report(m.finding(CodeNoraceAllowlist, c,
					"stray //go:norace not attached to a function declaration"))
			}
		}
	}
}

// checkNoraceEscape walks the static call graph from the norace
// function and reports the first path to instrumented shared state.
func checkNoraceEscape(m *Module, graph *CallGraph, root *types.Func, decl *ast.FuncDecl, opts Options, report func(Finding)) {
	type item struct {
		fn   *types.Func
		path string
	}
	seen := map[*types.Func]bool{root: true}
	queue := []item{{root, root.Name()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := graph.Node(cur.fn)
		if node == nil {
			continue // no body in the module (stdlib? shouldn't happen)
		}
		if violation := noraceViolation(node, opts); violation != "" {
			report(m.finding(CodeNoraceEscape, decl.Name,
				"//go:norace %s reaches instrumented shared state: %s (%s)",
				root.Name(), cur.path, violation))
			return
		}
		for _, callee := range node.Callees {
			if seen[callee] {
				continue
			}
			seen[callee] = true
			queue = append(queue, item{callee, cur.path + " -> " + callee.Name()})
		}
	}
}

// noraceViolation names why a function reached from a norace leaf
// breaks containment, or returns "" when it is clean.
func noraceViolation(node *FuncNode, opts Options) string {
	if node.TouchesSync {
		return fmt.Sprintf("%s uses sync/atomic", node.Fn.Name())
	}
	for _, p := range opts.ForbiddenPkgs {
		if node.Pkg.Path == p {
			return fmt.Sprintf("%s lives in forbidden package %s", node.Fn.Name(), p)
		}
	}
	if node.Dynamic {
		return fmt.Sprintf("%s makes a dynamic call (function value, interface method, or goroutine) that cannot be proven race-exempt", node.Fn.Name())
	}
	for _, std := range node.StdCallees {
		if std.Pkg() != nil {
			if p := std.Pkg().Path(); p == "sync" || p == "sync/atomic" {
				return fmt.Sprintf("%s calls %s.%s", node.Fn.Name(), p, std.Name())
			}
		}
	}
	return ""
}
