package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// atomic.go — the atomic-consistency analyzer. A variable or struct
// field touched through raw sync/atomic functions (atomic.AddInt64(&f)
// style) anywhere in the module must be accessed atomically everywhere:
// one plain load or store next to atomic ones is a data race the race
// detector only sees when both sides happen to run under -race. The
// analyzer also checks 64-bit alignment: plain int64/uint64 fields used
// with 64-bit atomic ops must sit at an 8-byte-aligned offset under the
// GOARCH=386 struct layout, or the op panics at runtime on 32-bit
// platforms (the wrapper types atomic.Int64/Uint64 carry their own
// alignment and are exempt by construction — using them is the
// preferred fix for both findings).

// analyzerAtomic builds the atomic-consistency analyzer.
func analyzerAtomic() *Analyzer {
	return &Analyzer{Name: "atomic-consistency", Run: runAtomic}
}

// atomicTarget tracks one variable that appears as the address argument
// of a raw sync/atomic call somewhere in the module.
type atomicTarget struct {
	obj  *types.Var
	name string    // display name ("Counter.n" or "hits")
	is64 bool      // some 64-bit raw op targets it
	pos  token.Pos // one atomic call site, for the mixed-access message
	sel  *types.Selection
}

// rawAtomicCallee reports whether fn is a raw sync/atomic package-level
// function operating through a pointer first argument, and whether the
// operation is 64 bits wide.
func rawAtomicCallee(fn *types.Func) (raw, is64 bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false, false
	}
	name := fn.Name()
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		suffix, ok := strings.CutPrefix(name, op)
		if !ok {
			continue
		}
		switch suffix {
		case "Int32", "Uint32", "Uintptr", "Pointer":
			return true, false
		case "Int64", "Uint64":
			return true, true
		}
	}
	return false, false
}

// addressedVar resolves the operand of an &-expression to the variable
// it names: a struct field (through the type-checker's selection) or a
// plain/package-level variable. nil for anything unkeyable (slice
// elements, map values, dereferences).
func addressedVar(pkg *Package, e ast.Expr) (*types.Var, *types.Selection) {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v, sel
			}
		}
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v, nil // qualified package-level var
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v, nil
		}
	}
	return nil, nil
}

// atomicDisplayName renders a field as Type.field (or a bare variable
// name) for messages.
func atomicDisplayName(v *types.Var, sel *types.Selection) string {
	if sel != nil {
		t := sel.Recv()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + v.Name()
		}
	}
	return v.Name()
}

func runAtomic(m *Module, opts Options, report func(Finding)) {
	targets := map[*types.Var]*atomicTarget{}
	// ordered keeps the targets in discovery order (a deterministic
	// walk), so the alignment pass below needs no map iteration.
	var ordered []*atomicTarget
	// sanctioned marks the exact syntax nodes that appear as raw atomic
	// call operands — the accesses that are atomic by definition.
	sanctioned := map[ast.Expr]bool{}

	// Pass 1: a raw sync/atomic call anywhere in the module marks its
	// address argument's variable as atomically owned.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				raw, is64 := rawAtomicCallee(calleeOf(pkg, call))
				if !raw {
					return true
				}
				unary, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					return true
				}
				target := ast.Unparen(unary.X)
				obj, sel := addressedVar(pkg, target)
				if obj == nil {
					return true
				}
				sanctioned[target] = true
				at := targets[obj]
				if at == nil {
					at = &atomicTarget{obj: obj, pos: call.Pos(), sel: sel, name: atomicDisplayName(obj, sel)}
					targets[obj] = at
					ordered = append(ordered, at)
				}
				at.is64 = at.is64 || is64
				return true
			})
		}
	}
	if len(targets) == 0 {
		return
	}

	// Pass 2: every other read or write of those variables is a mixed
	// access. Composite-literal keys (field names in S{f: v}) and the
	// declarations themselves are not accesses.
	for _, pkg := range m.Pkgs {
		if !inScope(pkg, opts.AtomicPkgs) {
			continue
		}
		for _, f := range pkg.Files {
			skip := map[*ast.Ident]bool{}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					for _, el := range n.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if id, ok := kv.Key.(*ast.Ident); ok {
								skip[id] = true
							}
						}
					}
				case *ast.SelectorExpr:
					skip[n.Sel] = true
					if sanctioned[n] {
						return true
					}
					if obj, _ := addressedVar(pkg, n); obj != nil {
						if at := targets[obj]; at != nil {
							report(m.finding(CodeAtomicMixed, n,
								"%s is accessed with sync/atomic at %s but plainly here — every access must be atomic (or use atomic.Int64-style wrapper types)",
								at.name, m.shortPos(at.pos)))
						}
					}
				case *ast.Ident:
					if skip[n] || sanctioned[n] {
						return true
					}
					if v, ok := pkg.Info.Uses[n].(*types.Var); ok {
						if at := targets[v]; at != nil {
							report(m.finding(CodeAtomicMixed, n,
								"%s is accessed with sync/atomic at %s but plainly here — every access must be atomic (or use atomic.Int64-style wrapper types)",
								at.name, m.shortPos(at.pos)))
						}
					}
				}
				return true
			})
		}
	}

	// Alignment: 64-bit raw atomics on a plain int64/uint64 field are
	// only safe when the field's offset is 8-byte aligned under the
	// 32-bit layout (Go guarantees allocation starts are 64-bit
	// aligned, so offset alignment is the whole condition).
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].obj.Pos() < ordered[j].obj.Pos() })
	sizes := types.SizesFor("gc", "386")
	for _, at := range ordered {
		if !at.is64 || at.sel == nil {
			continue
		}
		basic, ok := at.obj.Type().Underlying().(*types.Basic)
		if !ok || (basic.Kind() != types.Int64 && basic.Kind() != types.Uint64) {
			continue
		}
		off, ok := fieldOffset(sizes, at.sel)
		if !ok || off%8 == 0 {
			continue
		}
		report(m.findingAt(CodeAtomicAlign, at.obj.Pos(),
			"64-bit atomic field %s sits at offset %d under GOARCH=386 — move it to the front of the struct, pad to 8 bytes, or use atomic.Int64/Uint64",
			at.name, off))
	}
}

// fieldOffset walks a field selection's index path and sums the offsets
// under the given layout. It reports ok=false when the path crosses a
// pointer indirection (the inner struct is its own allocation, and Go
// guarantees allocations start 64-bit aligned).
func fieldOffset(sizes types.Sizes, sel *types.Selection) (int64, bool) {
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	var off int64
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
		if _, ok := t.Underlying().(*types.Pointer); ok {
			return 0, false
		}
	}
	return off, true
}

// shortPos renders a position as file:line for messages.
func (m *Module) shortPos(p token.Pos) string {
	pos := m.Rel(m.Fset.Position(p))
	return pos.Filename + ":" + strconv.Itoa(pos.Line)
}
