package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Fixture tests: each tree under testdata is a tiny module (import-path
// prefix "fixture") seeded with violations. Expected findings are
// written in the fixture source as
//
//	<code under test>           // want CODE [CODE...]
//	// want-next CODE           (for findings on the following line,
//	                             e.g. on pragma comments that cannot
//	                             carry a trailing comment)
//
// and the harness compares the set of (file, line, code) findings
// against the expectations — both directions, so a fixture also proves
// the analyzer stays quiet on its negative cases.

// testFixture loads testdata/<name>, runs the given analyzers with
// fixture-specific options, and diffs findings against the // want
// expectations embedded in the fixture source.
func testFixture(t *testing.T, name string, opts Options, analyzers []*Analyzer) *Document {
	t.Helper()
	root := filepath.Join("testdata", name)
	m, err := Load(root, "fixture")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	doc := Run(m, opts, analyzers, "fixture-"+name)

	want := fixtureExpectations(t, root)
	got := map[string]string{}
	for _, f := range doc.Findings {
		got[fmt.Sprintf("%s:%d %s", filepath.ToSlash(f.File), f.Line, f.Code)] = f.Message
	}
	for key := range want {
		if _, ok := got[key]; !ok {
			t.Errorf("fixture %s: expected finding %s was not reported", name, key)
		}
	}
	for key, msg := range got {
		if !want[key] {
			t.Errorf("fixture %s: unexpected finding %s: %s", name, key, msg)
		}
	}
	return doc
}

// fixtureExpectations scans fixture source for // want and // want-next
// comments and returns the expected "file:line code" keys.
func fixtureExpectations(t *testing.T, root string) map[string]bool {
	t.Helper()
	want := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		var lines []string
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			return err
		}
		for n, text := range lines {
			line := n + 1
			if i := strings.Index(text, "// want-next "); i >= 0 {
				// The expectation applies to the next non-blank comment
				// line: gofmt separates directives from prose with a
				// bare "//", which must not shift the target.
				target := line + 1
				for target-1 < len(lines) && strings.TrimSpace(lines[target-1]) == "//" {
					target++
				}
				for _, code := range strings.Fields(text[i+len("// want-next "):]) {
					want[fmt.Sprintf("%s:%d %s", filepath.ToSlash(rel), target, code)] = true
				}
			} else if i := strings.Index(text, "// want "); i >= 0 {
				for _, code := range strings.Fields(text[i+len("// want "):]) {
					want[fmt.Sprintf("%s:%d %s", filepath.ToSlash(rel), line, code)] = true
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan fixture expectations: %v", err)
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s declares no // want expectations", root)
	}
	return want
}

func TestNoraceFixture(t *testing.T) {
	testFixture(t, "norace", Options{
		NoracePkgs:    []string{"fixture/leaf"},
		ForbiddenPkgs: []string{"fixture/obsstub"},
	}, []*Analyzer{analyzerNorace()})
}

func TestDeterminismFixture(t *testing.T) {
	testFixture(t, "determinism", Options{
		DeterminismPkgs: []string{"fixture/core"},
		MapOrderPkgs:    []string{"fixture/core"},
	}, []*Analyzer{analyzerDeterminism()})
}

func TestFiniteFixture(t *testing.T) {
	testFixture(t, "finite", Options{
		FinitePkgs: []string{"fixture/weights"},
		GuardFuncs: []string{"checkFinite"},
		GuardFiles: []string{"finite.go"},
	}, []*Analyzer{analyzerFinite()})
}

func TestSchemaFixture(t *testing.T) {
	testFixture(t, "schema", Options{
		SchemaObsPkg:  "fixture/obs",
		SchemaDiagPkg: "fixture/diag",
	}, []*Analyzer{analyzerSchema()})
}

// TestDoccheckFixture covers the documentation analyzer: undocumented
// exported symbols and package clauses are findings, group docs cover
// declared-constant blocks, directives do not masquerade as docs, and
// a reasoned //lint:ignore doc.missing still works as the audited
// escape hatch.
func TestDoccheckFixture(t *testing.T) {
	doc := testFixture(t, "doccheck", Options{}, []*Analyzer{analyzerDoccheck()})
	if doc.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1 (the reasoned ignore on Suppressed)", doc.Suppressions)
	}
}

// TestAtomicFixture covers the atomic-consistency analyzer: plain
// access to an atomically-owned field or package variable (the
// unpaired-access bug class), the 386 alignment check, the
// composite-literal exemption, a reasoned suppression, and stale
// suppressions for both codes.
func TestAtomicFixture(t *testing.T) {
	doc := testFixture(t, "atomic", Options{
		AtomicPkgs: []string{"fixture/counter"},
	}, []*Analyzer{analyzerAtomic()})
	if doc.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1 (the construction-time write in Init)", doc.Suppressions)
	}
}

// TestLifecycleFixture covers the goroutine-lifecycle analyzer: leaked
// background loops (direct, through a named entry point, over a ticker
// channel), unstopped tickers (local, field, inline), the clean
// done-channel shape, a reasoned suppression, and stale suppressions
// for both codes.
func TestLifecycleFixture(t *testing.T) {
	doc := testFixture(t, "lifecycle", Options{
		LifecyclePkgs: []string{"fixture/bg"},
	}, []*Analyzer{analyzerLifecycle()})
	if doc.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1 (the process-lifetime worker in Forever)", doc.Suppressions)
	}
}

// TestLockOrderFixture covers the lock-order analyzer: the AB/BA
// acquisition cycle, self-deadlock on re-acquisition, a lock leaked on
// an early return, the clean early-unlock/defer/loop shapes, a
// reasoned suppression for a lock handoff, and stale suppressions for
// both codes.
func TestLockOrderFixture(t *testing.T) {
	doc := testFixture(t, "lockorder", Options{
		LockPkgs: []string{"fixture/locks"},
	}, []*Analyzer{analyzerLockOrder()})
	if doc.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1 (the handoff lock)", doc.Suppressions)
	}
}

// TestAllocPinFixture covers the alloc-pin analyzer end to end: the
// fixture is its own module (testdata/allocpin/go.mod), so the driver
// really runs `go build -gcflags=-m` and the escaping alloc in the
// annotated function becomes a finding, while the unannotated
// allocator stays silent.
func TestAllocPinFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go compiler; run without -short")
	}
	doc := testFixture(t, "allocpin", Options{}, []*Analyzer{analyzerAllocPin()})
	if doc.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1 (the amortized warmup allocation)", doc.Suppressions)
	}
}

// TestSuppressFixture is the negative fixture: a reasoned //lint:ignore
// silences its finding (and counts in Document.Suppressions), a stale
// one is a lint.unused-suppression finding, and malformed directives
// are lint.bad-directive findings.
func TestSuppressFixture(t *testing.T) {
	doc := testFixture(t, "suppress", Options{
		DeterminismPkgs: []string{"fixture/core"},
		MapOrderPkgs:    []string{"fixture/core"},
	}, []*Analyzer{analyzerDeterminism()})
	if doc.Suppressions != 1 {
		t.Errorf("Suppressions = %d, want 1 (the reasoned ignore in sorted)", doc.Suppressions)
	}
}

// TestLoadRepoFindsModule checks LoadRepo resolves the module root and
// path from go.mod starting inside a subdirectory.
func TestLoadRepoFindsModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; run without -short")
	}
	m, err := LoadRepo(".")
	if err != nil {
		t.Fatalf("LoadRepo: %v", err)
	}
	if m.Path != "transn" {
		t.Errorf("module path = %q, want %q", m.Path, "transn")
	}
	if m.Lookup("transn/internal/lint") == nil {
		t.Errorf("module did not load its own package transn/internal/lint")
	}
}
