// Package lint is the repo's custom static-analysis engine: it loads
// the whole module through go/parser + go/types (stdlib only, like the
// rest of the repo) and runs a suite of repo-specific analyzers that
// machine-check the invariants PRs 1–3 established by convention:
//
//   - norace-containment (norace.go): every //go:norace pragma sits on
//     an allowlisted Hogwild leaf, pairs with //go:noinline, and its
//     call graph never reaches instrumented shared state (the obs
//     registry, sync/atomic users) — the race-detector exemption stays
//     exactly as narrow as DESIGN.md §6 promises.
//   - determinism (determinism.go): no global math/rand calls, no
//     time-derived seeds, and no order-sensitive iteration over maps —
//     the failure class that silently breaks DeterministicApply's
//     byte-identity contract and Algorithm 1 reproducibility.
//   - finite-hygiene (finitecheck.go): float arithmetic writing into
//     weight tables happens only in functions covered by the finite.go
//     guard or annotated //lint:finite-checked.
//   - schema-registry consistency (schema.go): metric names, span
//     names, event stages/levels and finding codes are the declared
//     constants, never drifting string literals.
//   - doccheck (doccheck.go): every exported top-level symbol and every
//     package carries a doc comment — the source-level half of the
//     documented public API surface (API.md is the HTTP half).
//   - atomic-consistency (atomic.go): a variable touched through raw
//     sync/atomic anywhere is accessed atomically everywhere, and
//     64-bit atomics on plain fields sit at 8-byte-aligned offsets
//     under the 32-bit layout.
//   - goroutine-lifecycle (lifecycle.go): `go` statements in the
//     long-lived packages lead to stoppable loops, and every
//     time.NewTicker/NewTimer has a matching Stop.
//   - lock-order (lockorder.go): the static mutex acquisition graph is
//     acyclic and every lock is released (or defer-released) on every
//     return/panic path.
//   - alloc-pin (allocpin.go): //lint:alloc-free bodies stay free of
//     heap escapes, checked against `go build -gcflags=-m` output.
//
// Findings carry stable codes and are reported as a schema-stable
// transn.lint/v1 JSON document, mirroring the obs/diag report
// conventions (Validate, checkreport dispatch). `//lint:ignore CODE
// reason` suppresses a finding on the same or next line; suppressions
// are themselves audited — an unused one is a finding.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Schema identifies the JSON lint document layout. Consumers (CI's
// transnlint job, `transn checkreport`) match on this string; any
// breaking change to the document shape must bump the version suffix.
// The schema is append-only within a version.
const Schema = "transn.lint/v1"

// Finding codes are stable identifiers — tooling and //lint:ignore
// comments match on them, so renaming one is a schema break.
const (
	// CodeNoraceAllowlist: a //go:norace pragma outside the allowlisted
	// leaf set (packages and functions DESIGN.md §6 documents), or a
	// stray pragma not attached to a function declaration.
	CodeNoraceAllowlist = "norace.allowlist"
	// CodeNoraceNoinline: a //go:norace function without the paired
	// //go:noinline that keeps the exemption effective when inlined
	// into an instrumented caller.
	CodeNoraceNoinline = "norace.noinline"
	// CodeNoraceEscape: the static call graph from a //go:norace
	// function reaches instrumented shared state — an obs function, a
	// sync/atomic user, or a dynamic call that cannot be proven pure.
	CodeNoraceEscape = "norace.escape"

	// CodeGlobalRand: a call to a math/rand package-level function
	// (global source) on the deterministic training path; streams must
	// come from internal/rngstream.
	CodeGlobalRand = "determinism.global-rand"
	// CodeTimeSeed: a seed derived from the wall clock (time.Now
	// flowing into rand.NewSource / rngstream.New / rngstream.Derive).
	CodeTimeSeed = "determinism.time-seed"
	// CodeMapOrder: order-sensitive iteration over a map (appending to
	// a slice, printing, sending, or float accumulation inside the
	// range body) — output order and float sums change run to run.
	// Iterating a sorted key slice (internal/ordered.Keys) is the
	// sanctioned escape hatch.
	CodeMapOrder = "determinism.map-order"

	// CodeFiniteUnguarded: float arithmetic written into a slice
	// element in a weight-owning package, in a function neither covered
	// by the finite.go guard nor annotated //lint:finite-checked.
	CodeFiniteUnguarded = "finite.unguarded"

	// CodeSchemaMetric: a constant metric name at a Registry call site
	// (or report map index) that is not a declared obs Metric* constant.
	CodeSchemaMetric = "schema.metric-name"
	// CodeSchemaSpan: a constant span name passed to Tracer.Start that
	// is not a declared obs Span* constant or Stage value.
	CodeSchemaSpan = "schema.span-name"
	// CodeSchemaStage: a constant obs.TrainEvent Stage value outside
	// the declared Stage constant set.
	CodeSchemaStage = "schema.event-stage"
	// CodeSchemaLevel: a constant obs.TrainEvent Level value outside
	// the declared Level* constant set.
	CodeSchemaLevel = "schema.event-level"
	// CodeSchemaFindingCode: a constant diag.Finding Code outside the
	// declared Code* constant set.
	CodeSchemaFindingCode = "schema.finding-code"
	// CodeSchemaTraceStage: a constant stage name passed to
	// ReqTrace.StartStage/EndStage that is not a declared obs
	// TraceStage constant — the transn.trace.serve/v1 stage vocabulary.
	CodeSchemaTraceStage = "schema.trace-stage"
	// CodeSchemaLogKey: a constant attribute key handed to a log/slog
	// attr constructor that is not a declared obs LogKey* constant (or
	// TraceStage value) — structured-log field names are a published
	// schema consumers grep and parse.
	CodeSchemaLogKey = "schema.log-key"
	// CodeSchemaWatchCode: a constant obs.WatchEvent Code outside the
	// declared WatchCode* constant set — the SLO watchdog's rule-code
	// vocabulary ships in WARN logs and anomaly bundles.
	CodeSchemaWatchCode = "schema.watch-code"

	// CodeDocMissing: an exported top-level symbol (or a package clause)
	// without a doc comment — the public API surface stays documented,
	// API.md-style, at the source level.
	CodeDocMissing = "doc.missing"

	// CodeAtomicMixed: a variable or struct field accessed through raw
	// sync/atomic functions somewhere and through a plain read/write
	// somewhere else — the plain access races with the atomic ones, and
	// the race detector only catches it if both sides run under -race.
	CodeAtomicMixed = "atomic.mixed-access"
	// CodeAtomicAlign: a plain int64/uint64 struct field used with
	// 64-bit sync/atomic operations whose offset is not 8-byte aligned
	// under the 32-bit (GOARCH=386) struct layout — such an access
	// panics at runtime on 32-bit platforms.
	CodeAtomicAlign = "atomic.alignment"

	// CodeLifecycleLeak: a goroutine launched in a long-lived package
	// whose body spins an unbounded background loop with no stop path —
	// no receive from a done/ctx channel and no return/break — so the
	// goroutine outlives its owner (the bug class the History/Watchdog
	// clean-stop tests guard dynamically).
	CodeLifecycleLeak = "lifecycle.goroutine-leak"
	// CodeLifecycleTicker: a time.NewTicker/time.NewTimer whose Stop is
	// unreachable — the runtime timer (and anything its callback chain
	// retains) leaks until process exit.
	CodeLifecycleTicker = "lifecycle.ticker-stop"

	// CodeLockCycle: the static mutex acquisition graph contains a
	// cycle (lock A held while taking B in one place, B held while
	// taking A in another) — a potential deadlock under concurrency.
	CodeLockCycle = "lock.cycle"
	// CodeLockUnbalanced: a mutex locked on some path that can return
	// (or fall off the end of the function) without the matching unlock
	// and with no deferred unlock covering it.
	CodeLockUnbalanced = "lock.unbalanced"

	// CodeAllocEscape: a heap escape the compiler reports inside the
	// body of a //lint:alloc-free function — the static half of the
	// AllocsPerRun zero-allocation pins.
	CodeAllocEscape = "alloc.escape"
	// CodeAllocDriver: the compiler-assisted alloc-pin driver could not
	// run (go toolchain missing or the build failed), so annotated
	// functions were not verified.
	CodeAllocDriver = "alloc.driver"

	// CodeUnusedSuppression: a //lint:ignore comment that suppressed
	// nothing — stale suppressions hide future regressions.
	CodeUnusedSuppression = "lint.unused-suppression"
	// CodeBadDirective: a malformed //lint: comment (unknown verb,
	// missing code or reason, or an annotation in the wrong place).
	CodeBadDirective = "lint.bad-directive"
)

// Finding is one analyzer verdict, positioned at file:line:col relative
// to the linted module root.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Code     string `json:"code"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the file:line:col [code] message form
// the CLI prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Code, f.Message)
}

// Document is the schema-stable lint report. Required fields (validated
// by Validate): schema, name, clean, packages, findings. Clean mirrors
// diag's Healthy: true iff findings is empty.
type Document struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	// Clean is true iff Findings is empty (recomputed by Finalize).
	Clean bool `json:"clean"`
	// Packages counts the module packages loaded and analyzed.
	Packages int `json:"packages"`
	// Suppressions counts the //lint:ignore comments that matched (and
	// silenced) a finding — the audited escape-hatch usage.
	Suppressions int `json:"suppressions,omitempty"`
	// Analyzers counts the analyzers that ran — the suite-growth
	// header future PRs read to see the suite expanding.
	Analyzers int `json:"analyzers,omitempty"`
	// ElapsedMS is the whole-repo wall-clock runtime of the suite in
	// milliseconds (load + all analyzers), recorded by Run.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`

	Findings []Finding `json:"findings"`
}

// Finalize sorts findings by position and recomputes Clean. Write calls
// it automatically.
func (d *Document) Finalize() {
	sort.Slice(d.Findings, func(i, j int) bool {
		a, b := d.Findings[i], d.Findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Code < b.Code
	})
	d.Clean = len(d.Findings) == 0
}

// Err returns nil for a clean document, or an error naming the first
// finding and the total count — the CLI exit verdict.
func (d *Document) Err() error {
	if len(d.Findings) == 0 {
		return nil
	}
	return fmt.Errorf("lint found %d finding(s), first: %s", len(d.Findings), d.Findings[0])
}

// Write writes the document as indented JSON with a trailing newline —
// the exact bytes `transnlint -json` emits and CI validates.
func Write(w io.Writer, d *Document) error {
	d.Finalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Validate checks that data is a well-formed lint document: valid JSON,
// the expected schema string, required fields with the right types,
// findings with non-empty codes and positions, and a Clean flag
// consistent with the findings. Unknown extra fields are allowed (the
// schema is append-only within a version). It is the lint mirror of
// obs.ValidateReport and diag.Validate.
func Validate(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("lint document is not valid JSON: %w", err)
	}
	req := func(key string, dst any) error {
		msg, ok := raw[key]
		if !ok {
			return fmt.Errorf("lint document is missing required field %q", key)
		}
		if err := json.Unmarshal(msg, dst); err != nil {
			return fmt.Errorf("field %q: %w", key, err)
		}
		return nil
	}
	var schema string
	if err := req("schema", &schema); err != nil {
		return err
	}
	if schema != Schema {
		return fmt.Errorf("lint schema %q, want %q", schema, Schema)
	}
	var name string
	if err := req("name", &name); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("lint document name is empty")
	}
	var clean bool
	if err := req("clean", &clean); err != nil {
		return err
	}
	var packages int
	if err := req("packages", &packages); err != nil {
		return err
	}
	if packages < 0 {
		return fmt.Errorf("packages is negative: %d", packages)
	}
	// Optional header fields (append-only additions within v1): when
	// present they must be well-typed and non-negative.
	opt := func(key string) (int64, error) {
		msg, ok := raw[key]
		if !ok {
			return 0, nil
		}
		var v int64
		if err := json.Unmarshal(msg, &v); err != nil {
			return 0, fmt.Errorf("field %q: %w", key, err)
		}
		if v < 0 {
			return 0, fmt.Errorf("%s is negative: %d", key, v)
		}
		return v, nil
	}
	if _, err := opt("analyzers"); err != nil {
		return err
	}
	if _, err := opt("elapsed_ms"); err != nil {
		return err
	}
	var findings []Finding
	if err := req("findings", &findings); err != nil {
		return err
	}
	for i, f := range findings {
		if f.Code == "" {
			return fmt.Errorf("finding %d has an empty code", i)
		}
		if f.Analyzer == "" {
			return fmt.Errorf("finding %d [%s] has an empty analyzer", i, f.Code)
		}
		if f.Message == "" {
			return fmt.Errorf("finding %d [%s] has an empty message", i, f.Code)
		}
		if f.File == "" || f.Line <= 0 {
			return fmt.Errorf("finding %d [%s] has no position", i, f.Code)
		}
	}
	if clean == (len(findings) > 0) {
		return fmt.Errorf("clean=%v contradicts findings (count %d)", clean, len(findings))
	}
	return nil
}
