package lint

import (
	"fmt"
	"go/ast"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// allocpin.go — the alloc-pin analyzer, the static half of the
// AllocsPerRun zero-allocation pins. Functions annotated
//
//	//lint:alloc-free <reason naming the pin or hot path>
//
// in their doc comment promise no heap allocation per call. The
// analyzer asks the compiler directly: it runs `go build -gcflags=-m`
// over the module (the go command replays compiler diagnostics on
// build-cache hits, so repeat runs stay cheap) and reports every
// "escapes to heap" / "moved to heap" line inside an annotated body.
// When the toolchain is unavailable or the build fails, annotated
// functions cannot be verified and a single alloc.driver finding says
// so rather than passing silently.

// analyzerAllocPin builds the alloc-pin analyzer.
func analyzerAllocPin() *Analyzer {
	return &Analyzer{Name: "alloc-pin", Run: runAllocPin}
}

// allocSpan is one annotated function's file/line extent.
type allocSpan struct {
	file       string // slash path relative to module root
	start, end int
	name       string
}

func runAllocPin(m *Module, opts Options, report func(Finding)) {
	var spans []allocSpan
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasAnnotation(m, fd, "alloc-free") {
					continue
				}
				start := m.Rel(m.Fset.Position(fd.Pos()))
				end := m.Fset.Position(fd.Body.End())
				spans = append(spans, allocSpan{
					file:  filepath.ToSlash(start.Filename),
					start: start.Line,
					end:   end.Line,
					name:  fd.Name.Name,
				})
			}
		}
	}
	if len(spans) == 0 {
		return // nothing annotated, nothing to build
	}

	goBin, err := exec.LookPath("go")
	if err != nil {
		report(driverFinding("go toolchain not found in PATH — //lint:alloc-free functions were not verified"))
		return
	}
	cmd := exec.Command(goBin, "build", "-gcflags=-m", "./...")
	cmd.Dir = m.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		report(driverFinding(fmt.Sprintf("go build -gcflags=-m failed (%v): %s — //lint:alloc-free functions were not verified",
			err, firstLine(out))))
		return
	}

	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		file, lineNo, col, msg, ok := parseEscapeLine(line)
		if !ok {
			continue
		}
		for _, sp := range spans {
			if file != sp.file || lineNo < sp.start || lineNo > sp.end {
				continue
			}
			key := file + ":" + strconv.Itoa(lineNo) + ":" + msg
			if seen[key] {
				continue
			}
			seen[key] = true
			report(Finding{
				Code: CodeAllocEscape, File: file, Line: lineNo, Col: col,
				Message: fmt.Sprintf("%s inside //lint:alloc-free %s — the annotated hot path allocates", msg, sp.name),
			})
			break
		}
	}
}

// parseEscapeLine extracts file:line:col and the message from one
// compiler diagnostic, keeping only heap-escape verdicts ("x escapes to
// heap", "moved to heap: x") and dropping the rest of -m's output
// (inlining reports, "leaking param" annotations, which do not allocate
// at the annotated site).
func parseEscapeLine(line string) (file string, lineNo, col int, msg string, ok bool) {
	parts := strings.SplitN(strings.TrimSpace(line), ":", 4)
	if len(parts) != 4 {
		return "", 0, 0, "", false
	}
	msg = strings.TrimSpace(parts[3])
	if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
		return "", 0, 0, "", false
	}
	lineNo, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || lineNo <= 0 {
		return "", 0, 0, "", false
	}
	file = filepath.ToSlash(strings.TrimPrefix(parts[0], "./"))
	return file, lineNo, col, msg, true
}

func driverFinding(msg string) Finding {
	return Finding{Code: CodeAllocDriver, File: "go.mod", Line: 1, Col: 1, Message: msg}
}

func firstLine(out []byte) string {
	s := strings.TrimSpace(string(out))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		return "no output"
	}
	return s
}
