package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// analyzerFinite enforces the non-finite hygiene contract of DESIGN.md
// §8: in the weight-owning packages (transn, skipgram), float
// arithmetic written into a slice element — the shape of every
// embedding/translator update — must be covered by the finite.go guard
// (the function itself calls a guard helper, or is declared in the
// guard file) or carry a //lint:finite-checked annotation naming who
// checks its output. A NaN written unguarded corrupts every later
// iteration silently; the guard turns that into a named finding at the
// next iteration boundary, but only for writes it knows about.
//
// The analyzer cannot tell a weight table from a scratch slice, so the
// annotation is the sanctioned statement "these writes are probed by
// guardIteration / swept by CheckFinite" — and the audit is that every
// new float-writing function must make that statement explicitly.
func analyzerFinite() *Analyzer {
	return &Analyzer{
		Name: "finite-hygiene",
		Run: func(m *Module, opts Options, report func(Finding)) {
			guardFuncs := map[string]bool{}
			for _, g := range opts.GuardFuncs {
				guardFuncs[g] = true
			}
			guardFiles := map[string]bool{}
			for _, g := range opts.GuardFiles {
				guardFiles[g] = true
			}
			for _, pkg := range m.Pkgs {
				if !inScope(pkg, opts.FinitePkgs) {
					continue
				}
				for _, f := range pkg.Files {
					if guardFiles[filepath.Base(pkg.Filenames[f])] {
						continue // the guard itself
					}
					for _, decl := range f.Decls {
						fd, ok := decl.(*ast.FuncDecl)
						if !ok || fd.Body == nil {
							continue
						}
						if hasAnnotation(m, fd, "finite-checked") {
							continue
						}
						if callsGuard(pkg, fd.Body, guardFuncs) {
							continue
						}
						checkFiniteWrites(m, pkg, fd, report)
					}
				}
			}
		},
	}
}

func hasAnnotation(m *Module, fd *ast.FuncDecl, name string) bool {
	for _, a := range m.Annotations[fd] {
		if a == name {
			return true
		}
	}
	return false
}

// callsGuard reports whether the body calls one of the finite-guard
// helpers — the "flows through the guard" exemption.
func callsGuard(pkg *Package, body *ast.BlockStmt, guards map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && !found {
			if fn := calleeOf(pkg, call); fn != nil && guards[fn.Name()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkFiniteWrites reports float arithmetic written into slice
// elements: compound assignments (x[i] += e) always, and plain
// assignments (x[i] = e) when the right-hand side computes (contains an
// arithmetic binary expression). Plain element copies (x[i] = y[j])
// preserve finiteness and pass.
func checkFiniteWrites(m *Module, pkg *Package, fd *ast.FuncDecl, report func(Finding)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch assign.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range assign.Lhs {
				if isFloatSliceElem(pkg, lhs) {
					report(m.finding(CodeFiniteUnguarded, assign,
						"%s writes float math into a slice element without the finite guard; call a finite.go helper or annotate the function //lint:finite-checked <who checks>", fd.Name.Name))
					return true
				}
			}
		case token.ASSIGN:
			if len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				if isFloatSliceElem(pkg, lhs) && containsArithmetic(assign.Rhs[i]) {
					report(m.finding(CodeFiniteUnguarded, assign,
						"%s writes float math into a slice element without the finite guard; call a finite.go helper or annotate the function //lint:finite-checked <who checks>", fd.Name.Name))
					return true
				}
			}
		}
		return true
	})
}

// isFloatSliceElem reports whether expr is x[i] with a float element
// type on an indexable (slice/array) base.
func isFloatSliceElem(pkg *Package, expr ast.Expr) bool {
	idx, ok := ast.Unparen(expr).(*ast.IndexExpr)
	if !ok {
		return false
	}
	base, ok := pkg.Info.Types[idx.X]
	if !ok || base.Type == nil {
		return false
	}
	switch base.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Pointer:
	default:
		return false
	}
	return isFloatExpr(pkg, expr)
}

func containsArithmetic(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				found = true
			}
		}
		return !found
	})
	return found
}
