package lint

import (
	"strings"
	"testing"
)

// TestSelfCheck runs the full analyzer suite over this repository with
// the production options — the same check CI's transnlint job and the
// transnlint binary perform. The tree must be clean: every invariant
// the analyzers encode (norace containment, determinism, finite
// hygiene, schema-registry consistency, atomic consistency, goroutine
// lifecycle, lock ordering, alloc-free pins) holds at HEAD, and every
// suppression in the tree is still earning its keep.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow; run without -short")
	}
	m, err := LoadRepo(".")
	if err != nil {
		t.Fatalf("LoadRepo: %v", err)
	}
	doc := Run(m, Defaults(), Analyzers(), "selfcheck")
	for _, f := range doc.Findings {
		t.Errorf("%s", f)
	}
	if t.Failed() {
		t.Logf("fix the findings or suppress with //lint:ignore CODE reason")
	}
	if doc.Packages < 10 {
		t.Errorf("only %d packages loaded; the module walk is missing most of the tree", doc.Packages)
	}
	// The sanctioned escape hatches in internal/ordered must stay in
	// use — if they disappear, the suppression audit above would not
	// notice, but the count here pins the contract.
	if doc.Suppressions < 2 {
		t.Errorf("Suppressions = %d, want >= 2 (internal/ordered's reasoned ignores)", doc.Suppressions)
	}
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	const suite = "norace-containment,determinism,finite-hygiene,schema-registry,doccheck," +
		"atomic-consistency,goroutine-lifecycle,lock-order,alloc-pin"
	if got := strings.Join(names, ","); got != suite {
		t.Errorf("analyzer suite = %s; order and names are part of the report contract", got)
	}
	// The report header counts the suite and times the run — the
	// suite-growth trail future PRs read.
	if doc.Analyzers != 9 {
		t.Errorf("doc.Analyzers = %d, want 9", doc.Analyzers)
	}
	if doc.ElapsedMS < 0 {
		t.Errorf("doc.ElapsedMS = %d, want >= 0", doc.ElapsedMS)
	}
}
