package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"transn/internal/ordered"
)

// schemaSets are the declared schema-identifier constant sets harvested
// from the obs and diag packages: tooling matches on these strings, so
// any value used at a schema-sensitive site must be one of them.
type schemaSets struct {
	obsPath, diagPath string

	metrics     set // obs Metric* constants: registry metric names
	spans       set // obs Span* constants (+ stage values): tracer span names
	stages      set // obs Stage-typed constants: TrainEvent stages
	levels      set // obs Level* constants: TrainEvent diagnostic levels
	codes       set // diag Code* constants: finding codes
	traceStages set // obs TraceStage-typed constants: request trace stages
	logKeys     set // obs LogKey* constants: structured-log field names
	watchCodes  set // obs WatchCode* constants: SLO watchdog rule codes
}

type set map[string]bool

func (s set) sorted() string {
	return strings.Join(ordered.Keys(s), ", ")
}

// analyzerSchema enforces schema-registry consistency (DESIGN.md §7–8):
// the metric names handed to the obs registry, the span names handed to
// the tracer, the stages/levels placed in TrainEvents, and the codes
// placed in diag Findings are all part of published schemas
// (transn.telemetry.report/v1, transn.diagnostics/v1). Each must be a
// member of the declared constant set — a raw literal that drifts from
// the set ships a silent consumer-breaking rename. Dynamic (non-
// constant) names are allowed: benchrun's experiment-named spans and
// free-form Metrics paths are documented features.
func analyzerSchema() *Analyzer {
	return &Analyzer{
		Name: "schema-registry",
		Run: func(m *Module, opts Options, report func(Finding)) {
			sets := collectSchemaSets(m, opts)
			if sets == nil {
				return // tree has no obs/diag packages to check against
			}
			for _, pkg := range m.Pkgs {
				for _, f := range pkg.Files {
					ast.Inspect(f, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.CallExpr:
							checkSchemaCall(m, pkg, n, sets, report)
						case *ast.CompositeLit:
							checkSchemaComposite(m, pkg, n, sets, report)
						case *ast.IndexExpr:
							checkSchemaIndex(m, pkg, n, sets, report)
						}
						return true
					})
				}
			}
		},
	}
}

func collectSchemaSets(m *Module, opts Options) *schemaSets {
	obs := m.Lookup(opts.SchemaObsPkg)
	diag := m.Lookup(opts.SchemaDiagPkg)
	if obs == nil && diag == nil {
		return nil
	}
	sets := &schemaSets{
		obsPath: opts.SchemaObsPkg, diagPath: opts.SchemaDiagPkg,
		metrics: set{}, spans: set{}, stages: set{}, levels: set{}, codes: set{},
		traceStages: set{}, logKeys: set{}, watchCodes: set{},
	}
	harvest := func(pkg *Package, prefix string, dst set, typeName string) {
		if pkg == nil || pkg.Types == nil {
			return
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || c.Val().Kind() != constant.String {
				continue
			}
			if typeName != "" {
				named, ok := c.Type().(*types.Named)
				if !ok || named.Obj().Name() != typeName {
					continue
				}
			} else if !strings.HasPrefix(name, prefix) {
				continue
			}
			dst[constant.StringVal(c.Val())] = true
		}
	}
	harvest(obs, "Metric", sets.metrics, "")
	harvest(obs, "Span", sets.spans, "")
	harvest(obs, "", sets.stages, "Stage")
	harvest(obs, "Level", sets.levels, "")
	harvest(obs, "", sets.traceStages, "TraceStage")
	harvest(obs, "LogKey", sets.logKeys, "")
	harvest(obs, "WatchCode", sets.watchCodes, "")
	harvest(diag, "Code", sets.codes, "")
	// Every stage string is also a valid span name: the tracer times
	// the same Algorithm 1 phases the event stream labels.
	for v := range sets.stages {
		sets.spans[v] = true
	}
	return sets
}

// constString returns the expression's compile-time string value, if it
// has one (literals, constants, and constant expressions alike).
func constString(pkg *Package, expr ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// namedIn reports whether t (after deref) is the named type pkgPath.name.
func namedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// checkSchemaCall validates constant names at Registry.Counter/Gauge/
// Histogram, Tracer.Start and ReqTrace.StartStage/EndStage call sites,
// plus attribute keys at log/slog attr-constructor call sites.
func checkSchemaCall(m *Module, pkg *Package, call *ast.CallExpr, sets *schemaSets, report func(Finding)) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return
	}
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		checkSlogKey(m, pkg, call, sel, sets, report)
		return
	}
	recv := selection.Recv()
	method := sel.Sel.Name
	switch {
	case namedIn(recv, sets.obsPath, "Registry") && (method == "Counter" || method == "Gauge" || method == "Histogram"):
		if name, ok := constString(pkg, call.Args[0]); ok && !sets.metrics[name] {
			report(m.finding(CodeSchemaMetric, call.Args[0],
				"metric name %q is not a declared Metric* constant (known: %s); registering it here is stringly-typed schema drift", name, sets.metrics.sorted()))
		}
	case namedIn(recv, sets.obsPath, "Tracer") && method == "Start":
		if name, ok := constString(pkg, call.Args[0]); ok && !sets.spans[name] {
			report(m.finding(CodeSchemaSpan, call.Args[0],
				"span name %q is not a declared Span* constant or Stage value (known: %s)", name, sets.spans.sorted()))
		}
	case namedIn(recv, sets.obsPath, "ReqTrace") && (method == "StartStage" || method == "EndStage"):
		if name, ok := constString(pkg, call.Args[0]); ok && !sets.traceStages[name] {
			report(m.finding(CodeSchemaTraceStage, call.Args[0],
				"trace stage %q is not a declared TraceStage constant (known: %s); the transn.trace.serve/v1 stage vocabulary is fixed", name, sets.traceStages.sorted()))
		}
	}
}

// checkSlogKey validates the constant first argument of log/slog attr
// constructors (slog.String, slog.Int, slog.Group, ...): structured-log
// field names must be declared obs LogKey* constants or TraceStage
// values (per-stage timings appear as keys in the slow-log stage
// group). Dynamic keys are exempt, and trees that declare no LogKey*
// set (no structured-log schema) are not checked.
func checkSlogKey(m *Module, pkg *Package, call *ast.CallExpr, sel *ast.SelectorExpr, sets *schemaSets, report func(Finding)) {
	if len(sets.logKeys) == 0 {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "log/slog" {
		return
	}
	switch sel.Sel.Name {
	case "String", "Int", "Int64", "Uint64", "Float64", "Bool", "Duration", "Time", "Any", "Group":
	default:
		return
	}
	if name, ok := constString(pkg, call.Args[0]); ok && !sets.logKeys[name] && !sets.traceStages[name] {
		report(m.finding(CodeSchemaLogKey, call.Args[0],
			"log attribute key %q is not a declared LogKey* constant or TraceStage value (known: %s); structured-log field names are schema", name, sets.logKeys.sorted()))
	}
}

// checkSchemaComposite validates constant Stage/Level fields of
// obs.TrainEvent literals and Code fields of diag.Finding literals.
func checkSchemaComposite(m *Module, pkg *Package, lit *ast.CompositeLit, sets *schemaSets, report func(Finding)) {
	tv, ok := pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	check := func(field, code string, allowed set, kind string) {
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != field {
				continue
			}
			if v, ok := constString(pkg, kv.Value); ok && v != "" && !allowed[v] {
				report(m.finding(code, kv.Value,
					"%s %q is not in the declared constant set (known: %s)", kind, v, allowed.sorted()))
			}
		}
	}
	switch {
	case namedIn(tv.Type, sets.obsPath, "TrainEvent"):
		check("Stage", CodeSchemaStage, sets.stages, "event stage")
		check("Level", CodeSchemaLevel, sets.levels, "event level")
	case namedIn(tv.Type, sets.obsPath, "WatchEvent"):
		check("Code", CodeSchemaWatchCode, sets.watchCodes, "watchdog rule code")
	case namedIn(tv.Type, sets.diagPath, "Finding"):
		check("Code", CodeSchemaFindingCode, sets.codes, "finding code")
	}
}

// checkSchemaIndex validates constant keys used to index the metric-
// keyed maps of schema-stable documents — the read side of the metric
// schema: Report/Snapshot Counters/Gauges/Histograms, and the history
// dump's per-resolution Counters/Rates/Gauges/Quantiles series (history
// series keys ARE metric names, so a consumer indexing them with a
// drifted string reads an always-empty series).
func checkSchemaIndex(m *Module, pkg *Package, idx *ast.IndexExpr, sets *schemaSets, report func(Finding)) {
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	base, ok := pkg.Info.Types[sel.X]
	if !ok || base.Type == nil {
		return
	}
	switch sel.Sel.Name {
	case "Counters", "Gauges", "Histograms":
		if !namedIn(base.Type, sets.obsPath, "Report") && !namedIn(base.Type, sets.obsPath, "Snapshot") &&
			!namedIn(base.Type, sets.obsPath, "HistoryResolution") {
			return
		}
	case "Rates", "Quantiles":
		if !namedIn(base.Type, sets.obsPath, "HistoryResolution") {
			return
		}
	default:
		return
	}
	if name, ok := constString(pkg, idx.Index); ok && !sets.metrics[name] {
		report(m.finding(CodeSchemaMetric, idx.Index,
			"metric key %q is not a declared Metric* constant (known: %s)", name, sets.metrics.sorted()))
	}
}
