package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// analyzerDoccheck enforces the documentation contract on the public
// API surface: every exported top-level symbol in every loaded package
// (Load already excludes _test.go files) must carry a doc comment, and
// every package must have a package comment. The rules follow the
// repo's existing idiom:
//
//   - Exported functions, and exported methods on exported receiver
//     types, need their own doc comment. Methods on unexported types
//     are internal plumbing and exempt.
//   - An exported type needs a doc comment on its spec, or on the
//     declaration when it declares that one type.
//   - An exported const or var is documented by its own doc comment or
//     by a doc comment on its declaration group — matching the
//     declared-constant blocks in internal/obs, where a group doc plus
//     per-name doc comments document families like MetricLoss*.
//     Trailing line comments do not count: they are not doc comments
//     under the godoc convention.
//
// `//lint:ignore doc.missing reason` suppresses a finding where a bare
// name is genuinely self-describing; like every suppression it is
// audited, so a stale ignore becomes a finding itself.
func analyzerDoccheck() *Analyzer {
	return &Analyzer{
		Name: "doccheck",
		Run: func(m *Module, opts Options, report func(Finding)) {
			for _, pkg := range m.Pkgs {
				if !inScope(pkg, opts.DocPkgs) {
					continue
				}
				hasPkgDoc := false
				for _, f := range pkg.Files {
					if hasDocText(f.Doc) {
						hasPkgDoc = true
						break
					}
				}
				if !hasPkgDoc && len(pkg.Files) > 0 {
					// pkg.Files follows os.ReadDir's sorted order, so
					// the finding lands deterministically on the first
					// file's package clause.
					report(m.finding(CodeDocMissing, pkg.Files[0].Name,
						"package %s has no package comment", pkg.Name))
				}
				for _, f := range pkg.Files {
					for _, decl := range f.Decls {
						checkDeclDocs(m, decl, report)
					}
				}
			}
		},
	}
}

// checkDeclDocs reports undocumented exported symbols in one top-level
// declaration.
func checkDeclDocs(m *Module, decl ast.Decl, report func(Finding)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		if !hasDocText(d.Doc) {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(m.finding(CodeDocMissing, d.Name,
				"exported %s %s has no doc comment", kind, d.Name.Name))
		}
	case *ast.GenDecl:
		switch d.Tok {
		case token.TYPE:
			for _, spec := range d.Specs {
				ts := spec.(*ast.TypeSpec)
				if !ts.Name.IsExported() {
					continue
				}
				if !hasDocText(ts.Doc) && !(len(d.Specs) == 1 && hasDocText(d.Doc)) {
					report(m.finding(CodeDocMissing, ts.Name,
						"exported type %s has no doc comment", ts.Name.Name))
				}
			}
		case token.CONST, token.VAR:
			kind := "const"
			if d.Tok == token.VAR {
				kind = "var"
			}
			for _, spec := range d.Specs {
				vs := spec.(*ast.ValueSpec)
				if hasDocText(d.Doc) || hasDocText(vs.Doc) {
					continue
				}
				for _, name := range vs.Names {
					if name.IsExported() {
						report(m.finding(CodeDocMissing, name,
							"exported %s %s has no doc comment (own or declaration-group)", kind, name.Name))
					}
				}
			}
		}
	}
}

// hasDocText reports whether a comment group contains actual prose.
// CommentGroup.Text strips directive comments (//go:..., //lint:...),
// so a bare //lint:ignore above a symbol suppresses the finding rather
// than masquerading as its documentation.
func hasDocText(cg *ast.CommentGroup) bool {
	return cg != nil && strings.TrimSpace(cg.Text()) != ""
}

// exportedReceiver reports whether a method receiver's base type name
// is exported, unwrapping pointers and type-parameter instantiations.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
