package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleDoc() *Document {
	return &Document{
		Schema:   Schema,
		Name:     "test",
		Packages: 3,
		Findings: []Finding{
			{Analyzer: "determinism", Code: CodeMapOrder, File: "b.go", Line: 10, Col: 2, Message: "m"},
			{Analyzer: "determinism", Code: CodeGlobalRand, File: "a.go", Line: 5, Col: 9, Message: "m"},
			{Analyzer: "finite-hygiene", Code: CodeFiniteUnguarded, File: "a.go", Line: 5, Col: 2, Message: "m"},
		},
	}
}

func TestFinalizeSortsAndSetsClean(t *testing.T) {
	d := sampleDoc()
	d.Finalize()
	if d.Clean {
		t.Errorf("Clean = true with %d findings", len(d.Findings))
	}
	wantOrder := []string{"a.go:5:2", "a.go:5:9", "b.go:10:2"}
	for i, f := range d.Findings {
		got := strings.SplitN(f.String(), ":", 4)
		if key := strings.Join(got[:3], ":"); key != wantOrder[i] {
			t.Errorf("finding %d at %s, want %s", i, key, wantOrder[i])
		}
	}
	empty := &Document{Schema: Schema, Name: "empty"}
	empty.Finalize()
	if !empty.Clean {
		t.Errorf("Clean = false with no findings")
	}
}

func TestErr(t *testing.T) {
	d := sampleDoc()
	d.Finalize()
	err := d.Err()
	if err == nil {
		t.Fatalf("Err = nil with findings")
	}
	if !strings.Contains(err.Error(), "3 finding(s)") || !strings.Contains(err.Error(), "a.go:5:2") {
		t.Errorf("Err = %q, want count and first finding position", err)
	}
	if (&Document{}).Err() != nil {
		t.Errorf("Err != nil for empty document")
	}
}

func TestWriteValidateRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDoc()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if !bytes.HasSuffix(buf.Bytes(), []byte("\n")) {
		t.Errorf("document does not end in a newline")
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Errorf("Validate rejects Write's own output: %v", err)
	}

	var clean bytes.Buffer
	if err := Write(&clean, &Document{Schema: Schema, Name: "clean", Packages: 1}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Validate(clean.Bytes()); err != nil {
		t.Errorf("Validate rejects a clean document: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() map[string]any {
		return map[string]any{
			"schema":   Schema,
			"name":     "test",
			"clean":    true,
			"packages": 2,
			"findings": []any{},
		}
	}
	cases := []struct {
		name   string
		mutate func(m map[string]any)
		want   string
	}{
		{"not json", nil, "not valid JSON"},
		{"wrong schema", func(m map[string]any) { m["schema"] = "transn.lint/v999" }, "schema"},
		{"missing name", func(m map[string]any) { delete(m, "name") }, "missing required field"},
		{"empty name", func(m map[string]any) { m["name"] = "" }, "name is empty"},
		{"negative packages", func(m map[string]any) { m["packages"] = -1 }, "negative"},
		{"clean contradiction", func(m map[string]any) {
			m["findings"] = []any{map[string]any{
				"analyzer": "a", "code": "c.d", "file": "f.go", "line": 1, "col": 1, "message": "m",
			}}
		}, "contradicts"},
		{"finding without code", func(m map[string]any) {
			m["clean"] = false
			m["findings"] = []any{map[string]any{
				"analyzer": "a", "code": "", "file": "f.go", "line": 1, "col": 1, "message": "m",
			}}
		}, "empty code"},
		{"finding without position", func(m map[string]any) {
			m["clean"] = false
			m["findings"] = []any{map[string]any{
				"analyzer": "a", "code": "c.d", "file": "", "line": 0, "col": 0, "message": "m",
			}}
		}, "no position"},
		{"negative analyzers", func(m map[string]any) { m["analyzers"] = -3 }, "analyzers is negative"},
		{"non-numeric analyzers", func(m map[string]any) { m["analyzers"] = "nine" }, "analyzers"},
		{"negative elapsed", func(m map[string]any) { m["elapsed_ms"] = -1 }, "elapsed_ms is negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte("{")
			if tc.mutate != nil {
				m := base()
				tc.mutate(m)
				var err error
				data, err = json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
			}
			err := Validate(data)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestValidateAllowsUnknownFields(t *testing.T) {
	doc := `{"schema":"transn.lint/v1","name":"x","clean":true,"packages":1,"findings":[],"future":"field"}`
	if err := Validate([]byte(doc)); err != nil {
		t.Errorf("Validate rejects appended field: %v", err)
	}
}

// TestRunRecordsSuiteHeader pins the analyzer-count and runtime fields
// Run stamps into the report header: the suite-growth trail future PRs
// read (and the CI transnlint job asserts on). Validate must accept the
// populated header, and the JSON field names are part of the schema.
func TestRunRecordsSuiteHeader(t *testing.T) {
	m, err := Load("testdata/suppress", "fixture")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	doc := Run(m, Options{
		DeterminismPkgs: []string{"fixture/core"},
		MapOrderPkgs:    []string{"fixture/core"},
	}, Analyzers(), "header")
	if doc.Analyzers != len(Analyzers()) {
		t.Errorf("doc.Analyzers = %d, want %d (the full suite)", doc.Analyzers, len(Analyzers()))
	}
	if doc.ElapsedMS < 0 {
		t.Errorf("doc.ElapsedMS = %d, want >= 0", doc.ElapsedMS)
	}
	var buf bytes.Buffer
	if err := Write(&buf, doc); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Errorf("Validate rejects a document with the suite header: %v", err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["analyzers"]; !ok {
		t.Errorf("report JSON is missing the analyzers field")
	}
	// elapsed_ms is omitempty, so a sub-millisecond run may drop it —
	// only the name is pinned, via the negative-value rejection above.
}
