package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"transn/internal/ordered"
)

// Package is one type-checked module package: its parsed files with
// comments, the go/types results, and the directives (//go:norace,
// //lint:...) harvested from its comments. Test files are excluded —
// the invariants govern shipped code, and tests exercise seeded
// randomness and unordered maps on purpose.
type Package struct {
	Path string // import path ("transn/internal/obs")
	Dir  string // absolute directory
	Name string // package name ("obs")

	Files     []*ast.File
	Filenames map[*ast.File]string // absolute path per file

	Types *types.Package
	Info  *types.Info
}

// Module is a loaded, type-checked source tree: the real repo (rooted
// at go.mod) or a fixture tree under testdata.
type Module struct {
	Root string // absolute root directory
	Path string // module import path ("transn", "fixture")
	Pkgs []*Package

	Fset   *token.FileSet
	byPath map[string]*Package

	// Suppressions are the //lint:ignore directives found anywhere in
	// the tree; the runner matches them against findings after every
	// analyzer has run.
	Suppressions []*Suppression
	// Annotations maps a function declaration to its //lint: function
	// annotations ("finite-checked", "alloc-free").
	Annotations map[*ast.FuncDecl][]string
	// directiveFindings are malformed //lint: comments, reported as
	// lint.bad-directive by the runner.
	directiveFindings []Finding
}

// Suppression is one //lint:ignore CODE reason comment. It silences
// findings with the same code on its own line or the line immediately
// below (so it can trail a statement or sit on its own line above one).
type Suppression struct {
	File string // relative to module root
	Line int
	Code string
	used bool
}

// Lookup returns the loaded package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// Rel makes a position's filename relative to the module root, which
// keeps documents and fixture expectations machine-independent.
func (m *Module) Rel(p token.Position) token.Position {
	if r, err := filepath.Rel(m.Root, p.Filename); err == nil {
		p.Filename = r
	}
	return p
}

// Load parses and type-checks every non-test package under root.
// modPath is the tree's import-path prefix: for the real repo it is
// read from go.mod by LoadRepo; fixture trees pass their own. Stdlib
// imports are type-checked from GOROOT source via go/importer;
// module-internal imports resolve recursively within the tree.
// Directories named testdata (and hidden directories) are skipped.
func Load(root, modPath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:        root,
		Path:        modPath,
		Fset:        token.NewFileSet(),
		byPath:      map[string]*Package{},
		Annotations: map[*ast.FuncDecl][]string{},
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	parsed := map[string]*Package{} // import path -> parsed (pre-typecheck)
	for _, dir := range dirs {
		pkg, err := m.parseDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			parsed[pkg.Path] = pkg
		}
	}

	// Type-check in dependency order: the importer recurses into
	// module-internal imports, so iterating in any order works; sorted
	// paths keep error output stable.
	imp := &moduleImporter{
		m:      m,
		parsed: parsed,
		std:    importer.ForCompiler(m.Fset, "source", nil),
		state:  map[string]int{},
	}
	paths := ordered.Keys(parsed)
	for _, p := range paths {
		if _, err := imp.check(p); err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p, err)
		}
	}
	// Pkgs in path order for deterministic analysis and reports.
	for _, p := range paths {
		m.Pkgs = append(m.Pkgs, m.byPath[p])
	}
	m.harvestDirectives()
	return m, nil
}

// LoadRepo loads the module containing dir: it walks up to the nearest
// go.mod, reads the module path, and Loads the whole tree.
func LoadRepo(dir string) (*Module, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: %s/go.mod has no module line", root)
	}
	return Load(root, modPath)
}

// parseDir parses the non-test .go files of one directory into a
// Package (nil if the directory holds no non-test Go files).
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Dir: dir, Filenames: map[*ast.File]string{}}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames[f] = path
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	pkg.Name = pkg.Files[0].Name.Name
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		pkg.Path = m.Path
	} else {
		pkg.Path = m.Path + "/" + filepath.ToSlash(rel)
	}
	return pkg, nil
}

// moduleImporter resolves module-internal imports against the parsed
// tree (type-checking on demand, with cycle detection) and everything
// else through the stdlib source importer.
type moduleImporter struct {
	m      *Module
	parsed map[string]*Package
	std    types.Importer
	state  map[string]int // 0 unvisited, 1 in progress, 2 done
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == mi.m.Path || strings.HasPrefix(path, mi.m.Path+"/") {
		return mi.check(path)
	}
	return mi.std.Import(path)
}

func (mi *moduleImporter) check(path string) (*types.Package, error) {
	if mi.state[path] == 2 {
		return mi.m.byPath[path].Types, nil
	}
	if mi.state[path] == 1 {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	pkg := mi.parsed[path]
	if pkg == nil {
		return nil, fmt.Errorf("module package %s not found under %s", path, mi.m.Root)
	}
	mi.state[path] = 1
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: mi}
	tpkg, err := conf.Check(path, mi.m.Fset, pkg.Files, info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tpkg
	pkg.Info = info
	mi.m.byPath[path] = pkg
	mi.state[path] = 2
	return tpkg, nil
}

// harvestDirectives scans every comment in the tree for //lint:
// directives: suppressions, function annotations, and malformed forms.
func (m *Module) harvestDirectives() {
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			// Map function declarations to their doc comments so
			// annotations can be attached (and strays detected).
			docOwner := map[*ast.CommentGroup]*ast.FuncDecl{}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
					docOwner[fd.Doc] = fd
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:")
					if !ok {
						continue
					}
					pos := m.Rel(m.Fset.Position(c.Pos()))
					verb, rest, _ := strings.Cut(text, " ")
					rest = strings.TrimSpace(rest)
					switch verb {
					case "ignore":
						code, reason, _ := strings.Cut(rest, " ")
						if code == "" || strings.TrimSpace(reason) == "" {
							m.directiveFindings = append(m.directiveFindings, Finding{
								Analyzer: "lint", Code: CodeBadDirective,
								File: pos.Filename, Line: pos.Line, Col: pos.Column,
								Message: "//lint:ignore needs a finding code and a reason: //lint:ignore CODE reason",
							})
							continue
						}
						m.Suppressions = append(m.Suppressions, &Suppression{
							File: pos.Filename, Line: pos.Line, Code: code,
						})
					case "finite-checked", "alloc-free":
						fd := docOwner[cg]
						if fd == nil {
							m.directiveFindings = append(m.directiveFindings, Finding{
								Analyzer: "lint", Code: CodeBadDirective,
								File: pos.Filename, Line: pos.Line, Col: pos.Column,
								Message: fmt.Sprintf("//lint:%s must be part of a function's doc comment", verb),
							})
							continue
						}
						if rest == "" {
							reason := "a reason naming who checks the writes"
							if verb == "alloc-free" {
								reason = "a reason naming the AllocsPerRun pin or hot path"
							}
							m.directiveFindings = append(m.directiveFindings, Finding{
								Analyzer: "lint", Code: CodeBadDirective,
								File: pos.Filename, Line: pos.Line, Col: pos.Column,
								Message: fmt.Sprintf("//lint:%s needs %s", verb, reason),
							})
							continue
						}
						m.Annotations[fd] = append(m.Annotations[fd], verb)
					default:
						m.directiveFindings = append(m.directiveFindings, Finding{
							Analyzer: "lint", Code: CodeBadDirective,
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Message: fmt.Sprintf("unknown //lint: directive %q (know: ignore, finite-checked, alloc-free)", verb),
						})
					}
				}
			}
		}
	}
}

// Analyzer is one invariant checker. Analyzers only read the module and
// append findings; the runner owns suppression matching and ordering.
type Analyzer struct {
	Name string
	Run  func(m *Module, opts Options, report func(Finding))
}

// Options tunes the analyzers for the tree being linted. Defaults()
// returns the real repo's configuration; fixture tests substitute their
// own package names so each analyzer can be exercised in isolation.
type Options struct {
	// NoracePkgs are the package paths allowed to declare //go:norace
	// leaves (the Hogwild update helpers of DESIGN.md §6).
	NoracePkgs []string
	// ForbiddenPkgs are packages a norace call graph must never reach
	// (instrumented shared state: the obs registry and tracer).
	ForbiddenPkgs []string

	// DeterminismPkgs are the deterministic-core packages where global
	// math/rand calls and wall-clock seeds are findings: everything
	// reachable from Train under DeterministicApply owns its RNG
	// streams (rngstream) and no wall-clock input.
	DeterminismPkgs []string
	// MapOrderPkgs are the packages where order-sensitive map ranges
	// are findings: the deterministic core plus every package that
	// assembles schema-stable documents (obs, diag) or prints results.
	// Empty means every loaded package.
	MapOrderPkgs []string

	// FinitePkgs are the weight-owning packages where unguarded float
	// writes into slices are findings.
	FinitePkgs []string
	// GuardFuncs are function names whose presence in a body counts as
	// flowing through the finite guard.
	GuardFuncs []string
	// GuardFiles are base filenames whose functions are the guard
	// itself and therefore exempt.
	GuardFiles []string

	// SchemaObsPkg / SchemaDiagPkg name the packages declaring the
	// metric/span/stage/level and finding-code constant sets.
	SchemaObsPkg  string
	SchemaDiagPkg string

	// DocPkgs are the packages where undocumented exported symbols are
	// findings. Empty means every loaded package (Load already excludes
	// _test.go files, so tests are never in scope).
	DocPkgs []string

	// AtomicPkgs are the packages where mixed atomic/plain access to a
	// field is a finding. Empty means every loaded package — atomics
	// must be consistent wherever they appear.
	AtomicPkgs []string
	// LifecyclePkgs are the long-lived packages where a `go` statement
	// spinning an unstoppable background loop, or an unstopped
	// time.NewTicker/NewTimer, is a finding.
	LifecyclePkgs []string
	// LockPkgs are the packages whose mutex acquisition graphs are
	// checked for cycles and unbalanced lock/unlock paths. Empty means
	// every loaded package.
	LockPkgs []string
}

// Defaults returns the options that describe this repository.
func Defaults() Options {
	return Options{
		NoracePkgs:      []string{"transn/internal/skipgram", "transn/internal/transn"},
		ForbiddenPkgs:   []string{"transn/internal/obs"},
		DeterminismPkgs: []string{"transn/internal/transn", "transn/internal/walk", "transn/internal/skipgram", "transn/internal/rngstream", "transn/internal/par", "transn/internal/mat", "transn/internal/graph", "transn/internal/ann", "transn/internal/snapfmt"},
		MapOrderPkgs:    nil, // every package: reports, CLIs and examples all emit ordered output
		FinitePkgs:      []string{"transn/internal/transn", "transn/internal/skipgram"},
		GuardFuncs:      []string{"isFinite", "finiteSlice", "CheckFinite", "guardIteration"},
		GuardFiles:      []string{"finite.go"},
		SchemaObsPkg:    "transn/internal/obs",
		SchemaDiagPkg:   "transn/internal/diag",
		AtomicPkgs:      nil, // every package: atomics must be consistent repo-wide
		LifecyclePkgs:   []string{"transn/internal/obs", "transn/internal/serve", "transn/internal/load", "transn/internal/par"},
		LockPkgs:        nil, // every package: lock discipline is repo-wide
	}
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzerNorace(),
		analyzerDeterminism(),
		analyzerFinite(),
		analyzerSchema(),
		analyzerDoccheck(),
		analyzerAtomic(),
		analyzerLifecycle(),
		analyzerLockOrder(),
		analyzerAllocPin(),
	}
}

// Run executes the analyzers over the module, applies suppressions, and
// returns the finalized document. A //lint:ignore CODE on a finding's
// line (or the line above) silences it and marks the suppression used;
// unused suppressions and malformed directives are findings themselves.
func Run(m *Module, opts Options, analyzers []*Analyzer, name string) *Document {
	start := time.Now()
	doc := &Document{Schema: Schema, Name: name, Packages: len(m.Pkgs), Analyzers: len(analyzers)}
	var raw []Finding
	for _, a := range analyzers {
		a.Run(m, opts, func(f Finding) {
			f.Analyzer = a.Name
			raw = append(raw, f)
		})
	}
	suppressed := 0
	for _, f := range raw {
		if s := m.suppressionFor(f); s != nil {
			s.used = true
			suppressed++
			continue
		}
		doc.Findings = append(doc.Findings, f)
	}
	doc.Suppressions = suppressed
	for _, s := range m.Suppressions {
		if !s.used {
			doc.Findings = append(doc.Findings, Finding{
				Analyzer: "lint", Code: CodeUnusedSuppression,
				File: s.File, Line: s.Line, Col: 1,
				Message: fmt.Sprintf("//lint:ignore %s suppresses nothing — remove it", s.Code),
			})
		}
	}
	doc.Findings = append(doc.Findings, m.directiveFindings...)
	doc.Finalize()
	doc.ElapsedMS = time.Since(start).Milliseconds()
	return doc
}

// suppressionFor returns the first suppression covering the finding: a
// matching code in the same file on the finding's line (trailing
// comment) or the line directly above (own-line comment).
func (m *Module) suppressionFor(f Finding) *Suppression {
	for _, s := range m.Suppressions {
		if s.Code != f.Code || s.File != f.File {
			continue
		}
		if s.Line == f.Line || s.Line == f.Line-1 {
			return s
		}
	}
	return nil
}

// finding builds a Finding at the given node's position.
func (m *Module) finding(code string, node ast.Node, format string, args ...any) Finding {
	return m.findingAt(code, node.Pos(), format, args...)
}

// findingAt builds a Finding at an explicit position — for verdicts
// anchored to a types.Object (a field declaration) rather than the
// syntax node that triggered the analysis.
func (m *Module) findingAt(code string, p token.Pos, format string, args ...any) Finding {
	pos := m.Rel(m.Fset.Position(p))
	return Finding{
		Code: code, File: pos.Filename, Line: pos.Line, Col: pos.Column,
		Message: fmt.Sprintf(format, args...),
	}
}

// inScope reports whether pkg's import path is in the list; an empty
// list means every package is in scope.
func inScope(pkg *Package, paths []string) bool {
	if len(paths) == 0 {
		return true
	}
	for _, p := range paths {
		if pkg.Path == p {
			return true
		}
	}
	return false
}
