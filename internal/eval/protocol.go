package eval

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
	"transn/internal/mat"
)

// NodeClassification runs the paper's Table III protocol: embed → take
// labeled nodes → 90/10 split → logistic regression → macro/micro-F1,
// repeated reps times with fresh splits, averaged.
func NodeClassification(emb *mat.Dense, g *graph.Graph, trainFrac float64, reps int, rng *rand.Rand) (macroF1, microF1 float64, err error) {
	labeled := g.LabeledNodes()
	if len(labeled) < 4 {
		return 0, 0, fmt.Errorf("eval: only %d labeled nodes", len(labeled))
	}
	numClasses := g.NumLabels()
	X := mat.New(len(labeled), emb.C)
	y := make([]int, len(labeled))
	for i, id := range labeled {
		X.SetRow(i, emb.Row(int(id)))
		y[i] = g.Label(id)
	}
	var sumMacro, sumMicro float64
	for r := 0; r < reps; r++ {
		trainIdx, testIdx := TrainTestSplit(len(labeled), trainFrac, rng)
		Xtr := mat.New(len(trainIdx), X.C)
		ytr := make([]int, len(trainIdx))
		for i, k := range trainIdx {
			Xtr.SetRow(i, X.Row(k))
			ytr[i] = y[k]
		}
		clf := TrainClassifier(Xtr, ytr, numClasses, ClassifierConfig{})
		yPred := make([]int, len(testIdx))
		yTrue := make([]int, len(testIdx))
		for i, k := range testIdx {
			yPred[i] = clf.Predict(X.Row(k))
			yTrue[i] = y[k]
		}
		sumMacro += MacroF1(yTrue, yPred, numClasses)
		sumMicro += MicroF1(yTrue, yPred)
	}
	return sumMacro / float64(reps), sumMicro / float64(reps), nil
}

// NodePair is an unordered node pair used by the link-prediction
// protocol.
type NodePair struct {
	U, V graph.NodeID
}

// LinkPredictionSplit implements the Table IV protocol setup: it removes
// removeFrac of the edges uniformly at random (these become positive
// test examples) and samples an equal number of nonadjacent node pairs
// (negative examples). The returned graph contains the surviving edges.
//
// Removal is per-edge across the whole network, matching the paper
// ("randomly remove 40% edges from each experimental network"). Nodes
// that lose all their edges simply end up in no view.
func LinkPredictionSplit(g *graph.Graph, removeFrac float64, rng *rand.Rand) (*graph.Graph, []NodePair, []NodePair, error) {
	nE := g.NumEdges()
	nRemove := int(removeFrac * float64(nE))
	if nRemove < 1 || nRemove >= nE {
		return nil, nil, nil, fmt.Errorf("eval: cannot remove %d of %d edges", nRemove, nE)
	}
	perm := rng.Perm(nE)
	removed := map[int]bool{}
	for _, i := range perm[:nRemove] {
		removed[i] = true
	}

	// Rebuild the graph with the surviving edges.
	b := graph.NewBuilder()
	for _, name := range g.NodeTypeNames {
		b.NodeType(name)
	}
	for _, name := range g.EdgeTypeNames {
		b.EdgeType(name)
	}
	for _, n := range g.Nodes {
		id := b.AddNode(n.Type, n.Name)
		if n.Label != graph.NoLabel {
			b.SetLabel(id, n.Label)
		}
	}
	var pos []NodePair
	adj := make(map[NodePair]bool, nE)
	for i, e := range g.Edges {
		p := orient(e.U, e.V)
		adj[p] = true
		if removed[i] {
			pos = append(pos, p)
			continue
		}
		b.AddEdge(e.U, e.V, e.Type, e.Weight)
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("eval: rebuilding split graph: %w", err)
	}

	// Negative pairs: nonadjacent in the ORIGINAL graph.
	neg := make([]NodePair, 0, len(pos))
	n := g.NumNodes()
	negSeen := map[NodePair]bool{}
	budget := len(pos) * 100
	for len(neg) < len(pos) && budget > 0 {
		budget--
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		p := orient(u, v)
		if adj[p] || negSeen[p] {
			continue
		}
		negSeen[p] = true
		neg = append(neg, p)
	}
	if len(neg) < len(pos) {
		return nil, nil, nil, fmt.Errorf("eval: could not sample %d negatives", len(pos))
	}
	return sub, pos, neg, nil
}

func orient(u, v graph.NodeID) NodePair {
	if u > v {
		u, v = v, u
	}
	return NodePair{U: u, V: v}
}

// LinkPredictionAUC scores pairs by the inner product of their
// embeddings (the paper's likelihood model) and returns the AUC of
// positives vs negatives.
func LinkPredictionAUC(emb *mat.Dense, pos, neg []NodePair) float64 {
	scores := make([]float64, 0, len(pos)+len(neg))
	labels := make([]bool, 0, len(pos)+len(neg))
	for _, p := range pos {
		scores = append(scores, mat.Dot(emb.Row(int(p.U)), emb.Row(int(p.V))))
		labels = append(labels, true)
	}
	for _, p := range neg {
		scores = append(scores, mat.Dot(emb.Row(int(p.U)), emb.Row(int(p.V))))
		labels = append(labels, false)
	}
	return AUC(scores, labels)
}
