package eval

import (
	"math"
	"math/rand"

	"transn/internal/mat"
	"transn/internal/ordered"
)

// KMeans clusters the rows of X into k clusters with Lloyd's algorithm
// and k-means++ seeding, returning the cluster assignment of each row.
// It is used by the node-clustering extension task (clustering quality
// of embeddings, scored with NMI), a standard companion evaluation in
// the HIN-embedding literature.
func KMeans(X *mat.Dense, k, iterations int, rng *rand.Rand) []int {
	n := X.R
	assign := make([]int, n)
	if n == 0 || k <= 1 {
		return assign
	}
	if k > n {
		k = n
	}
	centers := kmeansppInit(X, k, rng)
	dists := make([]float64, n)
	counts := make([]int, k)
	for iter := 0; iter < iterations; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(X.Row(i), centers.Row(c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			dists[i] = bestD
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers; empty clusters grab the farthest point.
		centers.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := centers.Row(c)
			x := X.Row(i)
			for j := range row {
				row[j] += x[j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				far := argmaxF(dists)
				centers.SetRow(c, X.Row(far))
				dists[far] = 0
				continue
			}
			row := centers.Row(c)
			inv := 1 / float64(counts[c])
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return assign
}

func kmeansppInit(X *mat.Dense, k int, rng *rand.Rand) *mat.Dense {
	n := X.R
	centers := mat.New(k, X.C)
	first := rng.Intn(n)
	centers.SetRow(0, X.Row(first))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = sqDist(X.Row(i), centers.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range minD {
			total += d
		}
		idx := n - 1
		if total > 0 {
			x := rng.Float64() * total
			for i, d := range minD {
				x -= d
				if x <= 0 {
					idx = i
					break
				}
			}
		} else {
			idx = rng.Intn(n)
		}
		centers.SetRow(c, X.Row(idx))
		for i := range minD {
			if d := sqDist(X.Row(i), centers.Row(c)); d < minD[i] {
				minD[i] = d
			}
		}
	}
	return centers
}

func sqDist(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return s
}

func argmaxF(xs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// NMI computes the normalized mutual information between two labelings
// (arithmetic-mean normalization): 2·I(a;b)/(H(a)+H(b)). It returns 1
// for identical partitions (up to relabeling) and 0 for independent
// ones; degenerate single-cluster inputs yield 0.
func NMI(a, b []int) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	joint := map[[2]int]float64{}
	ca := map[int]float64{}
	cb := map[int]float64{}
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	fn := float64(n)
	var mi float64
	// Accumulate in sorted key order so the float sum is deterministic.
	keys := ordered.KeysFunc(joint, func(x, y [2]int) bool {
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	})
	for _, key := range keys {
		pij := joint[key] / fn
		pa := ca[key[0]] / fn
		pb := cb[key[1]] / fn
		mi += pij * math.Log(pij/(pa*pb))
	}
	ha := entropy(ca, fn)
	hb := entropy(cb, fn)
	if ha == 0 || hb == 0 {
		return 0
	}
	return 2 * mi / (ha + hb)
}

func entropy(counts map[int]float64, n float64) float64 {
	var h float64
	for _, k := range ordered.Keys(counts) {
		p := counts[k] / n
		h -= p * math.Log(p)
	}
	return h
}

// NodeClustering runs the extension task: k-means over the embeddings of
// labeled nodes (k = number of classes) scored by NMI against the true
// labels.
func NodeClustering(emb *mat.Dense, labels []int, numClasses int, rng *rand.Rand) float64 {
	assign := KMeans(emb, numClasses, 50, rng)
	return NMI(labels, assign)
}
