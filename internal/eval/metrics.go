package eval

import (
	"math"
	"sort"

	"transn/internal/mat"
)

// MicroF1 computes the micro-averaged F1 score: with single-label
// multiclass predictions this equals global accuracy.
func MicroF1(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	var tp, fp, fn float64
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			tp++
		} else {
			fp++
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := tp / (tp + fp)
	r := tp / (tp + fn)
	return 2 * p * r / (p + r)
}

// MacroF1 computes the unweighted mean of per-class F1 scores over the
// classes present in yTrue ∪ yPred (scikit-learn's default label set);
// numClasses bounds the class indices. A present class with zero F1
// contributes 0.
func MacroF1(yTrue, yPred []int, numClasses int) float64 {
	if numClasses == 0 {
		return 0
	}
	tp := make([]float64, numClasses)
	fp := make([]float64, numClasses)
	fn := make([]float64, numClasses)
	present := make([]bool, numClasses)
	for i := range yTrue {
		present[yTrue[i]] = true
		present[yPred[i]] = true
		if yTrue[i] == yPred[i] {
			tp[yTrue[i]]++
		} else {
			fp[yPred[i]]++
			fn[yTrue[i]]++
		}
	}
	var sum float64
	var nPresent int
	for k := 0; k < numClasses; k++ {
		if !present[k] {
			continue
		}
		nPresent++
		denom := 2*tp[k] + fp[k] + fn[k]
		if denom > 0 {
			sum += 2 * tp[k] / denom
		}
	}
	if nPresent == 0 {
		return 0
	}
	return sum / float64(nPresent)
}

// AUC computes the area under the ROC curve from scores and binary
// labels using the rank-sum (Mann–Whitney) formulation, with tie
// midranks.
func AUC(scores []float64, labels []bool) float64 {
	n := len(scores)
	if n == 0 || n != len(labels) {
		return 0
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // 1-based midrank
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var posRankSum float64
	var nPos, nNeg float64
	for i := range labels {
		if labels[i] {
			posRankSum += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0
	}
	return (posRankSum - nPos*(nPos+1)/2) / (nPos * nNeg)
}

// Silhouette computes the mean silhouette coefficient of rows of X under
// the given cluster labels, using Euclidean distance. Clusters of size 1
// contribute 0 (the scikit-learn convention).
func Silhouette(X *mat.Dense, labels []int) float64 {
	n := X.R
	if n == 0 || n != len(labels) {
		return 0
	}
	clusterOf := labels
	sizes := map[int]int{}
	for _, c := range clusterOf {
		sizes[c]++
	}
	if len(sizes) < 2 {
		return 0
	}
	var total float64
	for i := 0; i < n; i++ {
		// Mean distance to each cluster.
		sumDist := map[int]float64{}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := euclidean(X.Row(i), X.Row(j))
			sumDist[clusterOf[j]] += d
		}
		own := clusterOf[i]
		if sizes[own] <= 1 {
			continue // silhouette of singleton is 0
		}
		a := sumDist[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c, s := range sumDist {
			if c == own {
				continue
			}
			if m := s / float64(sizes[c]); m < b {
				b = m
			}
		}
		denom := math.Max(a, b)
		if denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n)
}

func euclidean(x, y []float64) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}
