package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"transn/internal/graph"
	"transn/internal/mat"
)

func TestMicroF1PerfectAndWorst(t *testing.T) {
	if got := MicroF1([]int{0, 1, 2}, []int{0, 1, 2}); got != 1 {
		t.Fatalf("perfect micro-F1 = %v", got)
	}
	if got := MicroF1([]int{0, 0, 0}, []int{1, 1, 1}); got != 0 {
		t.Fatalf("worst micro-F1 = %v", got)
	}
	if got := MicroF1(nil, nil); got != 0 {
		t.Fatalf("empty micro-F1 = %v", got)
	}
}

func TestMicroF1EqualsAccuracy(t *testing.T) {
	yt := []int{0, 1, 1, 2, 2, 2}
	yp := []int{0, 1, 0, 2, 1, 2}
	// 4/6 correct.
	if got := MicroF1(yt, yp); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("micro-F1 = %v want %v", got, 4.0/6)
	}
}

func TestMacroF1Known(t *testing.T) {
	// Class 0: tp=1 fp=1 fn=0 → F1 = 2/3; class 1: tp=1 fp=0 fn=1 → 2/3.
	yt := []int{0, 1, 1}
	yp := []int{0, 1, 0}
	want := (2.0/3 + 2.0/3) / 2
	if got := MacroF1(yt, yp, 2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("macro-F1 = %v want %v", got, want)
	}
}

func TestMacroF1AbsentClassIgnored(t *testing.T) {
	yt := []int{0, 0}
	yp := []int{0, 0}
	// Class 1 never appears in truth or prediction → averaged over the
	// present class only (the scikit-learn default label set).
	if got := MacroF1(yt, yp, 2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("macro-F1 = %v want 1", got)
	}
	// A predicted-but-never-true class IS counted (with F1 = 0).
	yt2 := []int{0, 0}
	yp2 := []int{0, 1}
	// class0: tp=1 fp=0 fn=1 → 2/3; class1: tp=0 fp=1 fn=0 → 0.
	if got := MacroF1(yt2, yp2, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("macro-F1 = %v want 1/3", got)
	}
}

func TestAUCKnownValues(t *testing.T) {
	// Perfect separation.
	if got := AUC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{false, false, true, true}); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted.
	if got := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All tied → 0.5.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{false, true, false, true}); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// Single class → 0 by convention.
	if got := AUC([]float64{0.5, 0.7}, []bool{true, true}); got != 0 {
		t.Fatalf("degenerate AUC = %v", got)
	}
}

// Property: AUC is invariant under strictly monotone score transforms.
func TestAUCMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		scores := make([]float64, n)
		labels := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Intn(2) == 0
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		a := AUC(scores, labels)
		transformed := make([]float64, n)
		for i, s := range scores {
			transformed[i] = math.Exp(s/2) + 7
		}
		b := AUC(transformed, labels)
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifierSeparatesLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := mat.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		y[i] = c
		X.Set(i, 0, float64(c)*4-2+rng.NormFloat64()*0.5)
		X.Set(i, 1, rng.NormFloat64())
	}
	clf := TrainClassifier(X, y, 2, ClassifierConfig{})
	pred := clf.PredictBatch(X)
	if acc := MicroF1(y, pred); acc < 0.95 {
		t.Fatalf("training accuracy %.3f too low", acc)
	}
}

func TestClassifierThreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	X := mat.New(n, 2)
	y := make([]int, n)
	centers := [][2]float64{{0, 3}, {-3, -2}, {3, -2}}
	for i := 0; i < n; i++ {
		c := i % 3
		y[i] = c
		X.Set(i, 0, centers[c][0]+rng.NormFloat64()*0.6)
		X.Set(i, 1, centers[c][1]+rng.NormFloat64()*0.6)
	}
	clf := TrainClassifier(X, y, 3, ClassifierConfig{})
	pred := clf.PredictBatch(X)
	if acc := MicroF1(y, pred); acc < 0.95 {
		t.Fatalf("3-class accuracy %.3f too low", acc)
	}
	if m := MacroF1(y, pred, 3); m < 0.95 {
		t.Fatalf("3-class macro-F1 %.3f too low", m)
	}
}

func TestClassifierEmptyInput(t *testing.T) {
	clf := TrainClassifier(mat.New(0, 3), nil, 2, ClassifierConfig{})
	if clf.Predict([]float64{1, 2, 3}) < 0 {
		t.Fatal("predict on empty-trained classifier must not panic")
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, te := TrainTestSplit(100, 0.9, rng)
	if len(tr) != 90 || len(te) != 10 {
		t.Fatalf("split sizes %d/%d", len(tr), len(te))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, tr...), te...) {
		if seen[i] {
			t.Fatal("duplicate index in split")
		}
		seen[i] = true
	}
	// Extremes stay non-degenerate.
	tr2, te2 := TrainTestSplit(5, 0.999, rng)
	if len(tr2) == 5 || len(te2) == 0 {
		t.Fatal("split must leave at least one test example")
	}
}

func TestSilhouetteSeparatedVsMixed(t *testing.T) {
	// Two tight, well-separated clusters → silhouette near 1.
	X := mat.New(8, 2)
	labels := make([]int, 8)
	for i := 0; i < 4; i++ {
		X.Set(i, 0, 0.01*float64(i))
		labels[i] = 0
	}
	for i := 4; i < 8; i++ {
		X.Set(i, 0, 10+0.01*float64(i))
		labels[i] = 1
	}
	if got := Silhouette(X, labels); got < 0.9 {
		t.Fatalf("separated silhouette = %v", got)
	}
	// Random labels on the same points → much lower.
	mixed := []int{0, 1, 0, 1, 0, 1, 0, 1}
	if got := Silhouette(X, mixed); got > 0.1 {
		t.Fatalf("mixed silhouette = %v", got)
	}
	// Single cluster → 0.
	if got := Silhouette(X, make([]int, 8)); got != 0 {
		t.Fatalf("single-cluster silhouette = %v", got)
	}
}

// lpGraph builds a labeled two-community homo+heter network for protocol
// tests.
func lpGraph(t testing.TB, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	user := b.NodeType("user")
	kw := b.NodeType("kw")
	uu := b.EdgeType("UU")
	uk := b.EdgeType("UK")
	var us, ks []graph.NodeID
	for i := 0; i < 30; i++ {
		id := b.AddNode(user, "")
		b.SetLabel(id, i%3)
		us = append(us, id)
	}
	for i := 0; i < 10; i++ {
		ks = append(ks, b.AddNode(kw, ""))
	}
	seen := map[[2]graph.NodeID]bool{}
	add := func(u, v graph.NodeID, et graph.EdgeType) {
		if u > v {
			u, v = v, u
		}
		k := [2]graph.NodeID{u, v}
		if u == v || seen[k] {
			return
		}
		seen[k] = true
		b.AddEdge(u, v, et, 1)
	}
	for i := 0; i < 30; i++ {
		add(us[i], us[(i+1)%30], uu)
		add(us[i], us[(i+3)%30], uu)
		add(us[i], ks[rng.Intn(10)], uk)
		add(us[i], ks[rng.Intn(10)], uk)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLinkPredictionSplit(t *testing.T) {
	g := lpGraph(t, 4)
	rng := rand.New(rand.NewSource(5))
	sub, pos, neg, err := LinkPredictionSplit(g, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	wantRemoved := int(0.4 * float64(g.NumEdges()))
	if len(pos) != wantRemoved {
		t.Fatalf("removed %d want %d", len(pos), wantRemoved)
	}
	if len(neg) != len(pos) {
		t.Fatalf("negatives %d want %d", len(neg), len(pos))
	}
	if sub.NumEdges() != g.NumEdges()-wantRemoved {
		t.Fatalf("surviving edges %d", sub.NumEdges())
	}
	if sub.NumNodes() != g.NumNodes() {
		t.Fatal("split must keep all nodes")
	}
	// Negatives must be nonadjacent in the original graph.
	adj := map[NodePair]bool{}
	for _, e := range g.Edges {
		adj[orient(e.U, e.V)] = true
	}
	for _, p := range neg {
		if adj[p] {
			t.Fatal("negative pair is an original edge")
		}
	}
}

func TestLinkPredictionSplitRejectsExtremes(t *testing.T) {
	g := lpGraph(t, 6)
	rng := rand.New(rand.NewSource(7))
	if _, _, _, err := LinkPredictionSplit(g, 0, rng); err == nil {
		t.Fatal("expected error for 0 removal")
	}
	if _, _, _, err := LinkPredictionSplit(g, 1, rng); err == nil {
		t.Fatal("expected error for full removal")
	}
}

func TestLinkPredictionAUCWithOracleEmbeddings(t *testing.T) {
	// Embeddings where adjacent nodes share direction should give high
	// AUC: put all nodes of the same community on the same axis.
	g := lpGraph(t, 8)
	rng := rand.New(rand.NewSource(9))
	_, pos, neg, err := LinkPredictionSplit(g, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: embedding = indicator of adjacency via shared coordinate.
	emb := mat.New(g.NumNodes(), g.NumNodes())
	for _, e := range g.Edges {
		emb.Set(int(e.U), int(e.V), 1)
		emb.Set(int(e.V), int(e.U), 1)
		emb.Set(int(e.U), int(e.U), 1)
		emb.Set(int(e.V), int(e.V), 1)
	}
	auc := LinkPredictionAUC(emb, pos, neg)
	if auc < 0.9 {
		t.Fatalf("oracle AUC = %v", auc)
	}
}

func TestNodeClassificationProtocol(t *testing.T) {
	g := lpGraph(t, 10)
	rng := rand.New(rand.NewSource(11))
	// Oracle embedding: one-hot label (plus noise) → near-perfect F1.
	emb := mat.New(g.NumNodes(), 4)
	for _, id := range g.LabeledNodes() {
		emb.Set(int(id), g.Label(id), 1)
		emb.Set(int(id), 3, rng.NormFloat64()*0.01)
	}
	macro, micro, err := NodeClassification(emb, g, 0.9, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if macro < 0.9 || micro < 0.9 {
		t.Fatalf("oracle classification macro=%.3f micro=%.3f", macro, micro)
	}
	// Random embedding → near chance (1/3 classes).
	randEmb := mat.RandN(g.NumNodes(), 4, 1, rng)
	_, microR, err := NodeClassification(randEmb, g, 0.9, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if microR > 0.85 {
		t.Fatalf("random embedding micro-F1 suspiciously high: %.3f", microR)
	}
}

func TestNodeClassificationTooFewLabels(t *testing.T) {
	b := graph.NewBuilder()
	tt := b.NodeType("x")
	et := b.EdgeType("e")
	n1 := b.AddNode(tt, "")
	n2 := b.AddNode(tt, "")
	b.AddEdge(n1, n2, et, 1)
	b.SetLabel(n1, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	if _, _, err := NodeClassification(mat.New(2, 2), g, 0.9, 1, rng); err == nil {
		t.Fatal("expected too-few-labels error")
	}
}

// Property: silhouette is always within [-1, 1].
func TestSilhouetteBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		X := mat.RandN(n, 3, 1, rng)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		s := Silhouette(X, labels)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
