package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"transn/internal/mat"
)

func gaussBlobs(rng *rand.Rand, perCluster, k, dim int, sep float64) (*mat.Dense, []int) {
	X := mat.New(perCluster*k, dim)
	labels := make([]int, X.R)
	for c := 0; c < k; c++ {
		for i := 0; i < perCluster; i++ {
			r := c*perCluster + i
			labels[r] = c
			row := X.Row(r)
			for j := range row {
				row[j] = rng.NormFloat64() * 0.4
			}
			row[c%dim] += sep
		}
	}
	return X, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, labels := gaussBlobs(rng, 20, 3, 4, 6)
	assign := KMeans(X, 3, 50, rng)
	if nmi := NMI(labels, assign); nmi < 0.9 {
		t.Fatalf("k-means NMI %.3f on well-separated blobs", nmi)
	}
}

func TestKMeansDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := KMeans(mat.New(0, 3), 2, 10, rng); len(got) != 0 {
		t.Fatal("empty input should give empty assignment")
	}
	// k > n collapses to n clusters without panicking.
	X := mat.RandN(3, 2, 1, rng)
	assign := KMeans(X, 10, 10, rng)
	if len(assign) != 3 {
		t.Fatal("assignment length mismatch")
	}
	// k <= 1 assigns everything to cluster 0.
	for _, a := range KMeans(X, 1, 10, rng) {
		if a != 0 {
			t.Fatal("k=1 must assign all to cluster 0")
		}
	}
}

func TestNMIKnownValues(t *testing.T) {
	// Identical partitions → 1.
	a := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(a,a) = %v", got)
	}
	// Relabeled partition → still 1.
	b := []int{5, 5, 9, 9, 7, 7}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI under relabeling = %v", got)
	}
	// Single cluster on one side → 0.
	if got := NMI(a, []int{0, 0, 0, 0, 0, 0}); got != 0 {
		t.Fatalf("degenerate NMI = %v", got)
	}
	// Empty / mismatched → 0.
	if NMI(nil, nil) != 0 || NMI([]int{1}, []int{1, 2}) != 0 {
		t.Fatal("bad-input NMI should be 0")
	}
}

// Property: NMI is symmetric and within [0, 1] (up to float error).
func TestNMIProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(3)
		}
		x := NMI(a, b)
		y := NMI(b, a)
		if math.Abs(x-y) > 1e-12 {
			return false
		}
		return x >= -1e-12 && x <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeClusteringOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, labels := gaussBlobs(rng, 15, 4, 6, 8)
	if nmi := NodeClustering(X, labels, 4, rng); nmi < 0.9 {
		t.Fatalf("oracle clustering NMI = %.3f", nmi)
	}
	// Random embeddings → low NMI.
	R := mat.RandN(X.R, 6, 1, rng)
	if nmi := NodeClustering(R, labels, 4, rng); nmi > 0.4 {
		t.Fatalf("random clustering NMI suspiciously high: %.3f", nmi)
	}
}
