// Package eval implements the paper's evaluation protocols (Section IV):
// multiclass logistic-regression node classification scored with
// micro/macro-F1, the 40%-edge-removal link-prediction protocol scored
// with AUC, and the silhouette score used to quantify Figure 6.
package eval

import (
	"math"
	"math/rand"

	"transn/internal/mat"
)

// Classifier is a multinomial logistic-regression classifier trained by
// full-batch gradient descent, standing in for the scikit-learn
// LogisticRegression of Section IV-B1.
type Classifier struct {
	W *mat.Dense // numClasses × dim
	B []float64  // numClasses
}

// ClassifierConfig controls training. Zero values take defaults.
type ClassifierConfig struct {
	Epochs int     // default 200
	LR     float64 // default 0.1
	L2     float64 // default 1e-4
}

func (c ClassifierConfig) withDefaults() ClassifierConfig {
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.LR == 0 {
		c.LR = 0.1
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// TrainClassifier fits a softmax classifier on rows X[i] with labels
// y[i] ∈ [0, numClasses).
func TrainClassifier(X *mat.Dense, y []int, numClasses int, cfg ClassifierConfig) *Classifier {
	cfg = cfg.withDefaults()
	n, d := X.R, X.C
	c := &Classifier{W: mat.New(numClasses, d), B: make([]float64, numClasses)}
	if n == 0 {
		return c
	}
	gradW := mat.New(numClasses, d)
	gradB := make([]float64, numClasses)
	probs := make([]float64, numClasses)
	inv := 1 / float64(n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		gradW.Zero()
		for k := range gradB {
			gradB[k] = 0
		}
		for i := 0; i < n; i++ {
			xi := X.Row(i)
			c.scores(xi, probs)
			softmaxInPlace(probs)
			for k := 0; k < numClasses; k++ {
				diff := probs[k]
				if k == y[i] {
					diff -= 1
				}
				gradB[k] += diff * inv
				gw := gradW.Row(k)
				for j := 0; j < d; j++ {
					gw[j] += diff * xi[j] * inv
				}
			}
		}
		// L2 on weights; step.
		for k := 0; k < numClasses; k++ {
			wr := c.W.Row(k)
			gw := gradW.Row(k)
			for j := 0; j < d; j++ {
				wr[j] -= cfg.LR * (gw[j] + cfg.L2*wr[j])
			}
			c.B[k] -= cfg.LR * gradB[k]
		}
	}
	return c
}

// scores writes the raw class scores of x into out.
func (c *Classifier) scores(x []float64, out []float64) {
	for k := range out {
		out[k] = c.B[k] + mat.Dot(c.W.Row(k), x)
	}
}

func softmaxInPlace(v []float64) {
	maxv := math.Inf(-1)
	for _, x := range v {
		if x > maxv {
			maxv = x
		}
	}
	var sum float64
	for i, x := range v {
		v[i] = math.Exp(x - maxv)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

// Predict returns the most likely class of x.
func (c *Classifier) Predict(x []float64) int {
	scores := make([]float64, c.W.R)
	c.scores(x, scores)
	best, bestV := 0, math.Inf(-1)
	for k, s := range scores {
		if s > bestV {
			best, bestV = k, s
		}
	}
	return best
}

// PredictBatch predicts a class for every row of X.
func (c *Classifier) PredictBatch(X *mat.Dense) []int {
	out := make([]int, X.R)
	for i := 0; i < X.R; i++ {
		out[i] = c.Predict(X.Row(i))
	}
	return out
}

// TrainTestSplit shuffles indices 0..n-1 and splits them trainFrac/rest.
func TrainTestSplit(n int, trainFrac float64, rng *rand.Rand) (train, test []int) {
	perm := rng.Perm(n)
	cut := int(math.Round(trainFrac * float64(n)))
	if cut < 1 {
		cut = 1
	}
	if cut >= n {
		cut = n - 1
	}
	return perm[:cut], perm[cut:]
}
