package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerSpansAndStages(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("walk").View(2).Epoch(1)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("span duration not positive")
	}
	tr.Start("walk").View(3).End()
	tr.Start("skipgram").View(2).End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "walk" || spans[0].View != 2 || spans[0].Epoch != 1 {
		t.Fatalf("first span attributes wrong: %+v", spans[0])
	}
	if spans[0].Pair != -1 || spans[0].Worker != -1 {
		t.Fatalf("unset attributes should be -1: %+v", spans[0])
	}

	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	// walk has 2 spans including the slept one, so it sorts first.
	if stages[0].Name != "walk" || stages[0].Count != 2 {
		t.Fatalf("stage aggregation wrong: %+v", stages)
	}
	if stages[0].TotalSeconds < stages[0].MaxSeconds || stages[0].MaxSeconds < stages[0].MinSeconds {
		t.Fatalf("stage bounds inconsistent: %+v", stages[0])
	}
}

// Spans may end concurrently (cross-view pair steps fan out); the
// tracer must tolerate that under -race.
func TestTracerConcurrentEnd(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.Start("cross_pair").Pair(i).Worker(i % 4).End()
		}(i)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 16 {
		t.Fatalf("got %d spans, want 16", got)
	}
	st := tr.Stages()
	if len(st) != 1 || st[0].Count != 16 {
		t.Fatalf("stage summary wrong: %+v", st)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	if sp != nil {
		t.Fatal("nil tracer should return nil span")
	}
	if sp.View(1).Pair(2).Epoch(3).Worker(4).End() != 0 {
		t.Fatal("nil span End should return 0")
	}
	if tr.Spans() != nil || tr.Stages() != nil {
		t.Fatal("nil tracer aggregation should be nil")
	}
}
