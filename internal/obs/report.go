package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// ReportSchema identifies the JSON run-report layout. Consumers
// (benchrun, CI's telemetry smoke job, external tooling) match on this
// string; any breaking change to the report shape must bump the
// version suffix.
const ReportSchema = "transn.telemetry.report/v1"

// ViewReport is a view's final single-view loss.
type ViewReport struct {
	View    int     `json:"view"`
	LSingle float64 `json:"l_single"`
}

// PairReport is a view-pair's final cross-view loss.
type PairReport struct {
	Pair   int     `json:"pair"`
	I      int     `json:"i"`
	J      int     `json:"j"`
	LCross float64 `json:"l_cross"`
}

// IterationReport is one point of the loss curve.
type IterationReport struct {
	Iteration int       `json:"iteration"`
	LSingle   float64   `json:"l_single"`
	LCross    float64   `json:"l_cross"`
	ViewLoss  []float64 `json:"view_loss,omitempty"`
	PairLoss  []float64 `json:"pair_loss,omitempty"`
}

// Report is the schema-stable JSON run report. Required fields (always
// present, validated by ValidateReport): schema, name, wall_seconds,
// stages, counters, gauges. The remaining sections are optional and
// omitted when empty so benchmark reports and training reports share
// one schema.
type Report struct {
	Schema      string  `json:"schema"`
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`

	// Per-stage wall time from the tracer, sorted by total descending.
	Stages []StageSummary `json:"stages"`

	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`

	Workers []WorkerSummary `json:"workers,omitempty"`

	// Training sections (filled by transn.Model.Report).
	Views          []ViewReport      `json:"views,omitempty"`
	Pairs          []PairReport      `json:"pairs,omitempty"`
	Iterations     []IterationReport `json:"iterations,omitempty"`
	ExamplesPerSec float64           `json:"examples_per_sec"`

	// Metrics carries run-level result numbers keyed by free-form path,
	// e.g. benchrun's "table3/AMiner/TransN/Micro-F1".
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Diagnostics optionally embeds a transn.diagnostics/v1 document
	// (internal/diag) produced for the same run — `transn train
	// -diagnose` fills it. Kept as raw JSON so obs does not depend on
	// the diagnostics schema.
	Diagnostics json.RawMessage `json:"diagnostics,omitempty"`

	// NonFiniteValues counts report numbers that were NaN/±Inf and were
	// zeroed by Sanitize so the report stays JSON-encodable. Zero (and
	// omitted) on healthy runs; a non-zero value is itself a finding —
	// the diagnostics section names the culprit.
	NonFiniteValues int `json:"non_finite_values,omitempty"`
}

// Sanitize replaces every non-finite float in the report with zero and
// returns how many were replaced, recording the count in
// NonFiniteValues. encoding/json rejects NaN/±Inf outright, so without
// this a single diverged loss gauge would make the whole report
// unwritable — exactly when a report is most needed. WriteReport calls
// it automatically.
func (rep *Report) Sanitize() int {
	n := 0
	fix := func(v *float64) {
		if math.IsNaN(*v) || math.IsInf(*v, 0) {
			*v = 0
			n++
		}
	}
	fix(&rep.WallSeconds)
	fix(&rep.ExamplesPerSec)
	for i := range rep.Stages {
		fix(&rep.Stages[i].TotalSeconds)
		fix(&rep.Stages[i].MinSeconds)
		fix(&rep.Stages[i].MaxSeconds)
	}
	for k, v := range rep.Gauges {
		fix(&v)
		rep.Gauges[k] = v
	}
	for k, v := range rep.Metrics {
		fix(&v)
		rep.Metrics[k] = v
	}
	for k, h := range rep.Histograms {
		fix(&h.Sum)
		rep.Histograms[k] = h
	}
	for i := range rep.Views {
		fix(&rep.Views[i].LSingle)
	}
	for i := range rep.Pairs {
		fix(&rep.Pairs[i].LCross)
	}
	for i := range rep.Iterations {
		it := &rep.Iterations[i]
		fix(&it.LSingle)
		fix(&it.LCross)
		for j := range it.ViewLoss {
			fix(&it.ViewLoss[j])
		}
		for j := range it.PairLoss {
			fix(&it.PairLoss[j])
		}
	}
	rep.NonFiniteValues += n
	return n
}

// Report snapshots the run into a report named name. Training sections
// (Views/Pairs/Iterations) are left empty; transn fills them from the
// model's history. ExamplesPerSec is derived from the
// "skipgram.pairs" counter over the run's wall time when present.
func (r *Run) Report(name string) *Report {
	rep := &Report{
		Schema:   ReportSchema,
		Name:     name,
		Counters: map[string]int64{},
		Gauges:   map[string]float64{},
	}
	if r == nil {
		return rep
	}
	rep.WallSeconds = r.Elapsed().Seconds()
	rep.Stages = r.Trace.Stages()
	snap := r.Reg.Snapshot()
	rep.Counters = snap.Counters
	rep.Gauges = snap.Gauges
	if len(snap.Histograms) > 0 {
		rep.Histograms = snap.Histograms
	}
	rep.Workers = r.WorkerSummaries()
	if pairs, ok := rep.Counters[MetricSkipgramPairs]; ok && rep.WallSeconds > 0 {
		rep.ExamplesPerSec = float64(pairs) / rep.WallSeconds
	}
	return rep
}

// WriteReport writes the report as indented JSON with a trailing
// newline, the exact bytes the CLIs emit and CI validates. The report
// is sanitized first (see Sanitize), so it always encodes.
func WriteReport(w io.Writer, rep *Report) error {
	rep.Sanitize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ValidateReport checks that data is a well-formed run report: valid
// JSON, the expected schema string, every required field present with
// the right JSON type, and durations/counts non-negative. Unknown extra
// fields are allowed (the schema is append-only within a version).
func ValidateReport(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("report is not valid JSON: %w", err)
	}
	var schema string
	if err := unmarshalField(raw, "schema", &schema); err != nil {
		return err
	}
	if schema != ReportSchema {
		return fmt.Errorf("report schema %q, want %q", schema, ReportSchema)
	}
	var name string
	if err := unmarshalField(raw, "name", &name); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("report name is empty")
	}
	var wall float64
	if err := unmarshalField(raw, "wall_seconds", &wall); err != nil {
		return err
	}
	if wall < 0 {
		return fmt.Errorf("wall_seconds is negative: %v", wall)
	}
	var stages []StageSummary
	if err := unmarshalField(raw, "stages", &stages); err != nil {
		return err
	}
	for _, s := range stages {
		if s.Name == "" {
			return fmt.Errorf("stage with empty name")
		}
		if s.Count < 0 || s.TotalSeconds < 0 || s.MinSeconds < 0 || s.MaxSeconds < 0 {
			return fmt.Errorf("stage %q has negative count or duration", s.Name)
		}
	}
	var counters map[string]int64
	if err := unmarshalField(raw, "counters", &counters); err != nil {
		return err
	}
	for k, v := range counters {
		if v < 0 {
			return fmt.Errorf("counter %q is negative: %d", k, v)
		}
	}
	var gauges map[string]float64
	if err := unmarshalField(raw, "gauges", &gauges); err != nil {
		return err
	}
	// Optional sections still type-check when present.
	for _, opt := range []struct {
		key string
		dst any
	}{
		{"histograms", &map[string]HistSnapshot{}},
		{"workers", &[]WorkerSummary{}},
		{"views", &[]ViewReport{}},
		{"pairs", &[]PairReport{}},
		{"iterations", &[]IterationReport{}},
		{"metrics", &map[string]float64{}},
		{"diagnostics", &map[string]json.RawMessage{}},
	} {
		if msg, ok := raw[opt.key]; ok {
			if err := json.Unmarshal(msg, opt.dst); err != nil {
				return fmt.Errorf("field %q: %w", opt.key, err)
			}
		}
	}
	return nil
}

func unmarshalField(raw map[string]json.RawMessage, key string, dst any) error {
	msg, ok := raw[key]
	if !ok {
		return fmt.Errorf("report is missing required field %q", key)
	}
	if err := json.Unmarshal(msg, dst); err != nil {
		return fmt.Errorf("field %q: %w", key, err)
	}
	return nil
}
