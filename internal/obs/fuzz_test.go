package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Fuzz targets for the three schema validators the debug endpoints and
// CLIs expose to arbitrary on-disk input: ValidateReport,
// ValidateTraceDump and ValidateHistoryDump. The property under test is
// total robustness — a validator may reject, but must never panic, on
// any byte string. Seeds are built as deterministic struct literals
// (not via live Run/History instances) so the committed corpora under
// testdata/fuzz/<FuzzName>/ are stable bytes; TestFuzzCorpusCommitted
// keeps them in sync with the builders.

// fuzzSeedReport is a minimal valid transn.telemetry.report/v1 document.
func fuzzSeedReport(tb testing.TB) []byte {
	tb.Helper()
	rep := &Report{
		Schema:      ReportSchema,
		Name:        "fuzz-seed",
		WallSeconds: 1.5,
		Stages: []StageSummary{
			{Name: "walk", Count: 2, TotalSeconds: 0.9, MinSeconds: 0.4, MaxSeconds: 0.5},
		},
		Counters: map[string]int64{MetricSkipgramPairs: 10},
		Gauges:   map[string]float64{"loss": 0.25},
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		tb.Fatalf("build report seed: %v", err)
	}
	return buf.Bytes()
}

// fuzzSeedTraceDump is a minimal valid transn.trace.serve/v1 document
// with one sampled record touching a declared stage.
func fuzzSeedTraceDump(tb testing.TB) []byte {
	tb.Helper()
	d := &TraceDump{
		Schema:     TraceDumpSchema,
		Ring:       TraceRingRequests,
		Capacity:   4,
		Seen:       1,
		Kept:       1,
		SampleHead: 1,
		SampleRate: 1,
		Traces: []TraceRecord{{
			ID:           "req-1",
			Seq:          1,
			Endpoint:     "translate",
			Start:        time.Unix(0, 0).UTC(),
			TotalSeconds: 0.01,
			Stages:       map[string]float64{string(TraceStageDecode): 0.001},
			Outcome:      TraceOutcomeOK,
			Status:       200,
			Sampled:      true,
		}},
	}
	var buf bytes.Buffer
	if err := WriteTraceDump(&buf, d); err != nil {
		tb.Fatalf("build trace seed: %v", err)
	}
	return buf.Bytes()
}

// fuzzSeedHistoryDump is a minimal valid transn.history/v1 document with
// two fine samples and an empty coarse ring.
func fuzzSeedHistoryDump(tb testing.TB) []byte {
	tb.Helper()
	d := &HistoryDump{
		Schema: HistorySchema,
		Resolutions: []HistoryResolution{
			{
				Name:            HistoryResFine,
				IntervalSeconds: 1,
				Capacity:        4,
				Taken:           2,
				TimesUnixMS:     []int64{1000, 2000},
				OffsetSeconds:   []float64{0, 1},
				Counters:        map[string][]int64{MetricServeRequests: {3, 7}},
				Rates:           map[string][]float64{MetricServeRequests: {0, 4}},
				Gauges:          map[string][]float64{MetricRuntimeGoroutines: {8, 9}},
			},
			{
				Name:            HistoryResCoarse,
				IntervalSeconds: 60,
				Capacity:        4,
				TimesUnixMS:     []int64{},
				OffsetSeconds:   []float64{},
				Counters:        map[string][]int64{},
				Rates:           map[string][]float64{},
				Gauges:          map[string][]float64{},
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteHistoryDump(&buf, d); err != nil {
		tb.Fatalf("build history seed: %v", err)
	}
	return buf.Bytes()
}

func FuzzValidateReport(f *testing.F) {
	f.Add(fuzzSeedReport(f))
	f.Add([]byte(`{"schema":"transn.telemetry.report/v1"}`))
	f.Add([]byte("not json"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ValidateReport(data) // must not panic
	})
}

func FuzzValidateTraceDump(f *testing.F) {
	f.Add(fuzzSeedTraceDump(f))
	f.Add([]byte(`{"schema":"transn.trace.serve/v1","ring":"slow","capacity":1}`))
	f.Add([]byte("{"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ValidateTraceDump(data) // must not panic
	})
}

func FuzzValidateHistoryDump(f *testing.F) {
	f.Add(fuzzSeedHistoryDump(f))
	f.Add([]byte(`{"schema":"transn.history/v1","resolutions":[]}`))
	f.Add([]byte("[]"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ValidateHistoryDump(data) // must not panic
	})
}

// corpusEntries maps each fuzz target's committed corpus files to their
// expected contents. "valid" entries must pass their validator; the
// rest only have to be handled without panicking.
func corpusEntries(tb testing.TB) map[string]map[string][]byte {
	return map[string]map[string][]byte{
		"FuzzValidateReport": {
			"seed-valid":        fuzzSeedReport(tb),
			"seed-missing-name": []byte(`{"schema":"transn.telemetry.report/v1","wall_seconds":1}`),
			"seed-wrong-schema": []byte(`{"schema":"transn.telemetry.report/v9"}`),
		},
		"FuzzValidateTraceDump": {
			"seed-valid":         fuzzSeedTraceDump(tb),
			"seed-over-capacity": []byte(`{"schema":"transn.trace.serve/v1","ring":"requests","capacity":0}`),
			"seed-wrong-schema":  []byte(`{"schema":"transn.trace.serve/v9"}`),
		},
		"FuzzValidateHistoryDump": {
			"seed-valid":           fuzzSeedHistoryDump(tb),
			"seed-one-resolution":  []byte(`{"schema":"transn.history/v1","resolutions":[{"name":"fine"}]}`),
			"seed-ragged-counters": []byte(`{"schema":"transn.history/v1","resolutions":[{"name":"fine","interval_seconds":1,"capacity":2,"taken":1,"times_unix_ms":[1],"offset_seconds":[0],"counters":{"serve.requests":[1,2]},"rates":{},"gauges":{}},{"name":"coarse","interval_seconds":60,"capacity":2,"times_unix_ms":[],"offset_seconds":[],"counters":{},"rates":{},"gauges":{}}]}`),
		},
	}
}

// corpusFile renders one seed in the "go test fuzz v1" encoding that
// `go test` reads from testdata/fuzz/<FuzzName>/.
func corpusFile(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// TestFuzzCorpusCommitted pins the committed seed corpora: every entry
// corpusEntries describes must exist under testdata/fuzz/<FuzzName>/
// with exactly the encoded bytes, and the valid seeds must actually
// pass their validator (so the corpus can't rot into all-rejects).
// Regenerate with TRANSN_REGEN_CORPUS=1 go test ./internal/obs -run
// TestFuzzCorpusCommitted.
func TestFuzzCorpusCommitted(t *testing.T) {
	regen := os.Getenv("TRANSN_REGEN_CORPUS") != ""
	validators := map[string]func([]byte) error{
		"FuzzValidateReport":      ValidateReport,
		"FuzzValidateTraceDump":   ValidateTraceDump,
		"FuzzValidateHistoryDump": ValidateHistoryDump,
	}
	for target, entries := range corpusEntries(t) {
		dir := filepath.Join("testdata", "fuzz", target)
		for name, seed := range entries {
			path := filepath.Join(dir, name)
			want := corpusFile(seed)
			if regen {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, want, 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Errorf("corpus entry %s missing (regenerate with TRANSN_REGEN_CORPUS=1): %v", path, err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("corpus entry %s is stale (regenerate with TRANSN_REGEN_CORPUS=1)", path)
			}
			if strings.HasPrefix(name, "seed-valid") {
				if err := validators[target](seed); err != nil {
					t.Errorf("%s/%s no longer validates: %v", target, name, err)
				}
			}
		}
		// Stray files would silently widen the corpus CI thinks it pinned.
		ents, err := os.ReadDir(dir)
		if err != nil {
			if !regen {
				t.Errorf("corpus dir %s: %v", dir, err)
			}
			continue
		}
		for _, e := range ents {
			if _, ok := entries[e.Name()]; !ok {
				t.Errorf("unexpected corpus entry %s", filepath.Join(dir, e.Name()))
			}
		}
	}
}
