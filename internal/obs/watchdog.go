package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"transn/internal/ordered"
)

// Declared SLO watchdog rule codes: the stable vocabulary a tripped
// rule reports in WatchEvent.Code and the anomaly bundle's
// watchdog.json. transnlint's schema-registry analyzer flags WatchEvent
// literals whose Code is a constant string outside this set.
const (
	// WatchCodeP99 — windowed serve.latency_seconds p99 exceeded its
	// budget.
	WatchCodeP99 = "watch.p99_budget"
	// WatchCodeErrorRate — windowed error rate (serve.errors over
	// serve.requests) exceeded its budget.
	WatchCodeErrorRate = "watch.error_rate"
	// WatchCodeHitRate — windowed cache hit rate fell below its floor.
	WatchCodeHitRate = "watch.hit_rate_floor"
	// WatchCodeGoroutines — the runtime.goroutines gauge exceeded its
	// ceiling anywhere in the window.
	WatchCodeGoroutines = "watch.goroutine_ceiling"
	// WatchCodeHeap — the runtime.heap_alloc_bytes gauge exceeded its
	// ceiling anywhere in the window.
	WatchCodeHeap = "watch.heap_ceiling"
)

// WatchRule is one declarative burn-rate rule evaluated over a trailing
// history window. Like load.Budget, every budget field is a pointer so
// an absent budget and a zero budget are distinguishable; a rule must
// set at least one.
type WatchRule struct {
	// Name identifies the rule in logs, /readyz degradation details and
	// anomaly bundle directory names. Required and unique.
	Name string `json:"name"`
	// WindowSeconds is the trailing window to aggregate. Required and
	// positive; windows longer than the retained fine history clamp to
	// the whole ring.
	WindowSeconds float64 `json:"window_seconds"`
	// MinRequests suppresses the rule when the window saw fewer
	// requests — burn rates over a handful of requests are noise. 0 (or
	// absent) means always evaluate.
	MinRequests *int64 `json:"min_requests,omitempty"`
	// MaxP99Seconds bounds the windowed serve p99 latency.
	MaxP99Seconds *float64 `json:"max_p99_seconds,omitempty"`
	// MaxErrorRate bounds the windowed error fraction within [0,1].
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
	// MinCacheHitRate floors the windowed cache hit fraction; only
	// judged when the window saw at least one cache lookup.
	MinCacheHitRate *float64 `json:"min_cache_hit_rate,omitempty"`
	// MaxGoroutines ceilings the runtime.goroutines gauge's window max.
	MaxGoroutines *float64 `json:"max_goroutines,omitempty"`
	// MaxHeapBytes ceilings the runtime.heap_alloc_bytes window max.
	MaxHeapBytes *float64 `json:"max_heap_bytes,omitempty"`
}

// WatchConfig is the watchdog rules file: a list of rules, each judged
// independently every evaluation tick.
type WatchConfig struct {
	// Rules holds the burn-rate rules. At least one is required.
	Rules []WatchRule `json:"rules"`
}

// ParseWatchRules decodes a watchdog rules file strictly: unknown
// fields are errors (a typo like "max_p99_second" must fail loudly),
// names must be present and unique, windows positive, and every rule
// must carry at least one budget.
func ParseWatchRules(data []byte) (*WatchConfig, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cfg WatchConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("obs: watchdog rules: %w", err)
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("obs: watchdog rules: no rules declared")
	}
	seen := map[string]bool{}
	for i, r := range cfg.Rules {
		if r.Name == "" {
			return nil, fmt.Errorf("obs: watchdog rule %d: missing name", i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("obs: watchdog rule %q declared twice", r.Name)
		}
		seen[r.Name] = true
		if r.WindowSeconds <= 0 {
			return nil, fmt.Errorf("obs: watchdog rule %q: window_seconds = %v, want > 0", r.Name, r.WindowSeconds)
		}
		if r.MaxP99Seconds == nil && r.MaxErrorRate == nil && r.MinCacheHitRate == nil &&
			r.MaxGoroutines == nil && r.MaxHeapBytes == nil {
			return nil, fmt.Errorf("obs: watchdog rule %q sets no budget", r.Name)
		}
	}
	return &cfg, nil
}

// WatchEvent is one rule violation: which rule, which budget (a
// WatchCode* constant), the window it was judged over, and the observed
// vs budgeted values. It is the WARN log payload and the anomaly
// bundle's watchdog.json.
type WatchEvent struct {
	// Rule is the violated rule's name.
	Rule string `json:"rule"`
	// Code is the violated budget's WatchCode* constant.
	Code string `json:"code"`
	// WindowSeconds is the actual covered window span.
	WindowSeconds float64 `json:"window_seconds"`
	// Observed is the measured value; Budget the bound it broke.
	Observed float64 `json:"observed"`
	Budget   float64 `json:"budget"`
	// UnixMS stamps the evaluation time.
	UnixMS int64 `json:"unix_ms"`
}

// WatchdogConfig wires a Watchdog to its inputs and outputs.
type WatchdogConfig struct {
	// History supplies the windows. Required.
	History *History
	// Rules are the parsed burn-rate rules. Required (use
	// ParseWatchRules).
	Rules *WatchConfig
	// Interval is the evaluation period. 0 means 1s.
	Interval time.Duration
	// Logger receives a WARN per newly-tripped rule and an INFO per
	// recovery. Nil disables logging.
	Logger *slog.Logger
	// Trips, when non-nil, counts rule trips (MetricWatchTrips);
	// Degraded, when non-nil, tracks the currently-degraded rule count
	// (MetricWatchDegraded).
	Trips        *Counter
	DegradedRule *Gauge
	// OnTrip, when non-nil, runs once per newly-tripped rule (after the
	// WARN) — the anomaly-capture hook. It runs on the watchdog
	// goroutine; keep it bounded.
	OnTrip func(WatchEvent)
}

// Watchdog evaluates declarative SLO burn-rate rules over History
// windows. A rule "trips" on the healthy→violated transition (WARN log,
// trips counter, OnTrip hook) and "recovers" when a later evaluation
// finds it healthy again; Degraded lists the currently-tripped rules
// for the /readyz degradation detail.
type Watchdog struct {
	cfg WatchdogConfig

	mu       sync.Mutex
	degraded map[string]WatchEvent
}

// NewWatchdog validates the wiring and returns an idle watchdog; drive
// it with Start (production) or Evaluate (tests).
func NewWatchdog(cfg WatchdogConfig) (*Watchdog, error) {
	if cfg.History == nil {
		return nil, fmt.Errorf("obs: watchdog needs a History")
	}
	if cfg.Rules == nil || len(cfg.Rules.Rules) == 0 {
		return nil, fmt.Errorf("obs: watchdog needs at least one rule")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	return &Watchdog{cfg: cfg, degraded: map[string]WatchEvent{}}, nil
}

// judge returns the rule's first violated budget over the window, or
// ok=false when the rule holds. Budgets are checked in declaration
// order (p99, error rate, hit rate, goroutines, heap) so a rule that
// breaks several reports the same code deterministically.
func judge(r WatchRule, w HistoryWindow, now time.Time) (WatchEvent, bool) {
	ev := WatchEvent{Rule: r.Name, WindowSeconds: w.Seconds, UnixMS: now.UnixMilli()}
	if r.MinRequests != nil && w.Requests < *r.MinRequests {
		return WatchEvent{}, false
	}
	switch {
	case r.MaxP99Seconds != nil && w.P99Seconds > *r.MaxP99Seconds:
		ev.Code, ev.Observed, ev.Budget = WatchCodeP99, w.P99Seconds, *r.MaxP99Seconds
	case r.MaxErrorRate != nil && w.Requests > 0 && w.ErrorRate > *r.MaxErrorRate:
		ev.Code, ev.Observed, ev.Budget = WatchCodeErrorRate, w.ErrorRate, *r.MaxErrorRate
	case r.MinCacheHitRate != nil && w.CacheLookups > 0 && w.CacheHitRate < *r.MinCacheHitRate:
		ev.Code, ev.Observed, ev.Budget = WatchCodeHitRate, w.CacheHitRate, *r.MinCacheHitRate
	case r.MaxGoroutines != nil && w.MaxGoroutines > *r.MaxGoroutines:
		ev.Code, ev.Observed, ev.Budget = WatchCodeGoroutines, w.MaxGoroutines, *r.MaxGoroutines
	case r.MaxHeapBytes != nil && w.MaxHeapBytes > *r.MaxHeapBytes:
		ev.Code, ev.Observed, ev.Budget = WatchCodeHeap, w.MaxHeapBytes, *r.MaxHeapBytes
	default:
		return WatchEvent{}, false
	}
	return ev, true
}

// Evaluate judges every rule against the current history once and
// returns the newly-tripped events (rules already degraded stay
// degraded silently until they recover). Exported so tests can drive
// the watchdog deterministically without tickers.
func (w *Watchdog) Evaluate(now time.Time) []WatchEvent {
	var tripped []WatchEvent
	w.mu.Lock()
	for _, rule := range w.cfg.Rules.Rules {
		win, ok := w.cfg.History.Window(rule.WindowSeconds)
		if !ok {
			continue // not enough samples to judge anything yet
		}
		ev, violated := judge(rule, win, now)
		if violated {
			if _, already := w.degraded[rule.Name]; !already {
				w.degraded[rule.Name] = ev
				tripped = append(tripped, ev)
			}
		} else {
			if _, was := w.degraded[rule.Name]; was {
				delete(w.degraded, rule.Name)
				if w.cfg.Logger != nil {
					w.cfg.Logger.Info("slo rule recovered",
						slog.String(LogKeyRule, rule.Name),
						slog.Float64(LogKeyWindowSeconds, win.Seconds))
				}
			}
		}
	}
	if w.cfg.DegradedRule != nil {
		w.cfg.DegradedRule.Set(float64(len(w.degraded)))
	}
	w.mu.Unlock()
	for _, ev := range tripped {
		if w.cfg.Trips != nil {
			w.cfg.Trips.Add(1)
		}
		if w.cfg.Logger != nil {
			w.cfg.Logger.Warn("slo rule tripped",
				slog.String(LogKeyRule, ev.Rule),
				slog.String(LogKeyCode, ev.Code),
				slog.Float64(LogKeyWindowSeconds, ev.WindowSeconds),
				slog.Float64(LogKeyObserved, ev.Observed),
				slog.Float64(LogKeyBudget, ev.Budget))
		}
		if w.cfg.OnTrip != nil {
			w.cfg.OnTrip(ev)
		}
	}
	return tripped
}

// Degraded returns the names of currently-tripped rules, sorted — the
// /readyz degradation detail.
func (w *Watchdog) Degraded() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return ordered.Keys(w.degraded)
}

// DegradedEvents returns the violation behind each currently-tripped
// rule, sorted by rule name — what the anomaly bundle and debug
// surfaces show.
func (w *Watchdog) DegradedEvents() []WatchEvent {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	names := ordered.Keys(w.degraded)
	evs := make([]WatchEvent, len(names))
	for i, name := range names {
		evs[i] = w.degraded[name]
	}
	return evs
}

// Start launches the evaluation ticker. The returned stop function
// halts it and waits for the goroutine to exit; safe to call twice. A
// nil Watchdog returns a no-op stop.
func (w *Watchdog) Start() (stop func()) {
	if w == nil {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(w.cfg.Interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				w.Evaluate(now)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
