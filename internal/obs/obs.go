// Package obs is the training telemetry layer: a metrics registry
// (counters, gauges, fixed-bucket histograms), a span tracer that times
// every stage of Algorithm 1 with worker attribution, a typed event
// stream (TrainEvent) for loss curves, and sinks — a schema-stable JSON
// run report, an expvar bridge, and an optional pprof/metrics HTTP
// endpoint.
//
// The package is stdlib-only and race-safe. The design keeps telemetry
// off the training hot path: shard loops accumulate into plain local
// variables (or a LocalHist) and merge into the shared registry only at
// stage boundaries; the shared metric types use atomics, never locks,
// so a merge from one shard never stalls another. With no Run attached
// the instrumented code paths reduce to nil checks — see the cost
// budget in DESIGN.md §7.
package obs

import (
	"sync"
	"time"

	"transn/internal/ordered"
)

// Run collects one training (or benchmark) run's telemetry: a metrics
// registry, a stage tracer, and per-worker busy/idle accounting. A nil
// *Run is valid everywhere and disables collection; instrumentation
// sites guard with a single nil check per stage boundary.
type Run struct {
	Reg   *Registry
	Trace *Tracer

	start time.Time

	wmu     sync.Mutex
	workers map[int]*workerAgg
}

type workerAgg struct {
	busy   time.Duration
	idle   time.Duration
	shards int
}

// NewRun returns an empty telemetry run anchored at the current time.
func NewRun() *Run {
	return &Run{
		Reg:     NewRegistry(),
		Trace:   NewTracer(),
		start:   time.Now(),
		workers: map[int]*workerAgg{},
	}
}

// WorkerSample is one worker's contribution to a single pool fan-out:
// how long it spent inside shard bodies and how many shards it claimed.
// Idle time is derived as wall − busy for the fan-out it came from.
type WorkerSample struct {
	Worker int
	Busy   time.Duration
	Shards int
}

// RecordPool folds one worker-pool fan-out into the run's per-worker
// totals. wall is the fan-out's wall-clock duration; each worker's idle
// share is wall − busy (clamped at zero). Safe for concurrent use.
func (r *Run) RecordPool(wall time.Duration, samples []WorkerSample) {
	if r == nil || len(samples) == 0 {
		return
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	for _, s := range samples {
		w := r.workers[s.Worker]
		if w == nil {
			w = &workerAgg{}
			r.workers[s.Worker] = w
		}
		w.busy += s.Busy
		w.shards += s.Shards
		if idle := wall - s.Busy; idle > 0 {
			w.idle += idle
		}
	}
}

// WorkerSummary is the per-worker section of the run report.
type WorkerSummary struct {
	Worker      int     `json:"worker"`
	BusySeconds float64 `json:"busy_seconds"`
	IdleSeconds float64 `json:"idle_seconds"`
	Shards      int     `json:"shards"`
}

// WorkerSummaries returns the accumulated per-worker totals sorted by
// worker index.
func (r *Run) WorkerSummaries() []WorkerSummary {
	if r == nil {
		return nil
	}
	r.wmu.Lock()
	defer r.wmu.Unlock()
	out := make([]WorkerSummary, 0, len(r.workers))
	for _, w := range ordered.Keys(r.workers) {
		agg := r.workers[w]
		out = append(out, WorkerSummary{
			Worker:      w,
			BusySeconds: agg.busy.Seconds(),
			IdleSeconds: agg.idle.Seconds(),
			Shards:      agg.shards,
		})
	}
	return out
}

// Elapsed returns the wall-clock time since the run started.
func (r *Run) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}
