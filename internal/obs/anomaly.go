package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"transn/internal/ordered"
)

// anomalyPrefix names bundle directories: anomaly-<unixms>-<rule>.
// Retention globs on it, so nothing else may live under the anomaly
// dir with this prefix.
const anomalyPrefix = "anomaly-"

// AnomalyConfig bounds the anomaly capturer.
type AnomalyConfig struct {
	// Dir is the directory bundles are written under. Required; created
	// on first capture.
	Dir string
	// Keep bounds retention: after a capture, only the newest Keep
	// bundle directories survive. 0 means 8.
	Keep int
	// Cooldown is the minimum spacing between captures — a flapping
	// rule must not fill the disk. 0 means 30s.
	Cooldown time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c AnomalyConfig) withDefaults() AnomalyConfig {
	if c.Keep <= 0 {
		c.Keep = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	return c
}

// AnomalyCapturer writes bounded-retention anomaly bundles: per tripped
// rule, a directory holding heap and goroutine profiles, the violation
// record, and any extra documents the caller attaches (the server adds
// its history and slow-ring dumps). The capturer is safe for concurrent
// use; captures inside the cooldown window are skipped.
type AnomalyCapturer struct {
	cfg AnomalyConfig

	mu   sync.Mutex
	last time.Time
}

// NewAnomalyCapturer returns a capturer for the directory; it fails
// fast when no directory is configured.
func NewAnomalyCapturer(cfg AnomalyConfig) (*AnomalyCapturer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("obs: anomaly capturer needs a directory")
	}
	return &AnomalyCapturer{cfg: cfg.withDefaults()}, nil
}

// sanitizeRuleName maps a rule name onto the filesystem-safe charset
// used in bundle directory names.
func sanitizeRuleName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		default:
			b.WriteRune('_')
		}
	}
	if b.Len() == 0 {
		return "rule"
	}
	return b.String()
}

// Capture writes one bundle for the event and prunes old bundles. The
// extras map attaches additional documents by file name (e.g.
// "history.json"); each writer runs with the file already open, and an
// extra's error aborts the capture. Captures within the cooldown of the
// previous one are skipped (returned dir is empty, error nil). A nil
// capturer skips silently.
func (a *AnomalyCapturer) Capture(ev WatchEvent, extras map[string]func(io.Writer) error) (string, error) {
	if a == nil {
		return "", nil
	}
	now := time.Now()
	a.mu.Lock()
	if !a.last.IsZero() && now.Sub(a.last) < a.cfg.Cooldown {
		a.mu.Unlock()
		return "", nil
	}
	a.last = now
	a.mu.Unlock()

	dir := filepath.Join(a.cfg.Dir, fmt.Sprintf("%s%d-%s", anomalyPrefix, now.UnixMilli(), sanitizeRuleName(ev.Rule)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: anomaly bundle: %w", err)
	}
	writeFile := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("obs: anomaly bundle %s: %w", name, err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: anomaly bundle %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: anomaly bundle %s: %w", name, err)
		}
		return nil
	}
	if err := writeFile("watchdog.json", func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(ev)
	}); err != nil {
		return "", err
	}
	if err := writeFile("heap.pprof", func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		return "", err
	}
	if err := writeFile("goroutine.pprof", func(w io.Writer) error {
		return pprof.Lookup("goroutine").WriteTo(w, 0)
	}); err != nil {
		return "", err
	}
	for _, name := range ordered.Keys(extras) {
		if err := writeFile(name, extras[name]); err != nil {
			return "", err
		}
	}
	if err := a.prune(); err != nil {
		return "", err
	}
	return dir, nil
}

// prune deletes the oldest bundle directories beyond the retention
// bound. Bundle names embed a millisecond timestamp, so lexicographic
// order on the equal-width numeric prefix is capture order; sorting
// newest-first and deleting from index Keep onward keeps the most
// recent bundles.
func (a *AnomalyCapturer) prune() error {
	entries, err := os.ReadDir(a.cfg.Dir)
	if err != nil {
		return fmt.Errorf("obs: anomaly retention: %w", err)
	}
	var bundles []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), anomalyPrefix) {
			bundles = append(bundles, e.Name())
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(bundles)))
	for _, name := range bundles[min(len(bundles), a.cfg.Keep):] {
		if err := os.RemoveAll(filepath.Join(a.cfg.Dir, name)); err != nil {
			return fmt.Errorf("obs: anomaly retention: %w", err)
		}
	}
	return nil
}
