package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"transn/internal/ordered"
)

// HistorySchema identifies the JSON layout of a metrics-history dump
// (the /debug/history payload). Consumers (`transn watch`, transnload's
// bench-report history section, `transn checkreport`) match on this
// string; any breaking change to the shape must bump the version
// suffix.
const HistorySchema = "transn.history/v1"

// Resolution names of a HistoryDump. Every dump carries exactly these
// two resolutions, fine first.
const (
	// HistoryResFine names the high-resolution ring (default 1s × 300:
	// the last five minutes at second granularity).
	HistoryResFine = "fine"
	// HistoryResCoarse names the low-resolution ring (default 10s × 360:
	// the last hour at ten-second granularity).
	HistoryResCoarse = "coarse"
)

// HistoryConfig sizes the flight recorder. The zero value means "use
// the documented default" for every field.
type HistoryConfig struct {
	// FineInterval is the high-resolution sampling period. 0 means 1s.
	FineInterval time.Duration
	// FineCapacity bounds the fine ring. 0 means 300 (five minutes at
	// the default interval).
	FineCapacity int
	// CoarseInterval is the low-resolution sampling period. 0 means 10s.
	CoarseInterval time.Duration
	// CoarseCapacity bounds the coarse ring. 0 means 360 (one hour at
	// the default interval).
	CoarseCapacity int
}

// withDefaults fills zero fields with the documented defaults.
func (c HistoryConfig) withDefaults() HistoryConfig {
	if c.FineInterval <= 0 {
		c.FineInterval = time.Second
	}
	if c.FineCapacity <= 0 {
		c.FineCapacity = 300
	}
	if c.CoarseInterval <= 0 {
		c.CoarseInterval = 10 * time.Second
	}
	if c.CoarseCapacity <= 0 {
		c.CoarseCapacity = 360
	}
	return c
}

// histSeries is one tracked histogram's resolved handle plus its bucket
// layout, fixed at History construction.
type histSeries struct {
	name string
	h    *Histogram
}

// historySlot is one ring slot's preallocated storage: every slice is
// sized at construction so a sample tick writes in place and allocates
// nothing (pinned by TestHistorySampleZeroAlloc).
type historySlot struct {
	unixMS   int64
	offset   float64 // seconds since the history started
	counters []int64
	gauges   []float64
	// histCounts[k] holds histogram k's cumulative bucket counts
	// (len(bounds)+1); histSums/histNs its cumulative sum and count.
	histCounts [][]int64
	histSums   []float64
	histNs     []int64
}

// sampleRing is a fixed-capacity overwrite-oldest ring of samples. One
// mutex guards writes and dumps; the sampler writes at most once per
// interval, far off any request path.
type sampleRing struct {
	mu       sync.Mutex
	interval time.Duration
	slots    []historySlot
	total    uint64 // samples ever taken, including overwritten ones
}

// History is the telemetry flight recorder: a background sampler that
// snapshots a registry's counters, gauges and histogram bucket counts
// into two fixed-capacity overwrite-oldest rings (fine and coarse
// resolution). The tracked metric set is resolved once at construction
// — metrics registered later are not recorded — so the steady-state
// sample path performs only atomic loads into preallocated ring slots
// and allocates nothing. Windowed rates, deltas and interpolated
// latency quantiles are derived on demand (Dump, Window), never on the
// sample path.
type History struct {
	cfg   HistoryConfig
	start time.Time

	counterNames []string
	counters     []*Counter
	gaugeNames   []string
	gauges       []*Gauge
	hists        []histSeries

	fine   *sampleRing
	coarse *sampleRing
}

// NewHistory resolves the registry's current metric set and returns a
// recorder with both rings empty. Call Start to begin sampling, or
// drive sampleFine/sampleCoarse manually (tests do). A nil registry
// yields a recorder that tracks nothing but still serves valid dumps.
func NewHistory(reg *Registry, cfg HistoryConfig) *History {
	cfg = cfg.withDefaults()
	h := &History{cfg: cfg, start: time.Now()}
	if reg != nil {
		reg.mu.Lock()
		h.counterNames = ordered.Keys(reg.counters)
		for _, name := range h.counterNames {
			h.counters = append(h.counters, reg.counters[name])
		}
		h.gaugeNames = ordered.Keys(reg.gauges)
		for _, name := range h.gaugeNames {
			h.gauges = append(h.gauges, reg.gauges[name])
		}
		for _, name := range ordered.Keys(reg.hists) {
			h.hists = append(h.hists, histSeries{name: name, h: reg.hists[name]})
		}
		reg.mu.Unlock()
	}
	h.fine = h.newRing(cfg.FineInterval, cfg.FineCapacity)
	h.coarse = h.newRing(cfg.CoarseInterval, cfg.CoarseCapacity)
	return h
}

// newRing preallocates every slot's storage for the tracked metric set.
func (h *History) newRing(interval time.Duration, capacity int) *sampleRing {
	r := &sampleRing{interval: interval, slots: make([]historySlot, capacity)}
	for i := range r.slots {
		s := &r.slots[i]
		s.counters = make([]int64, len(h.counters))
		s.gauges = make([]float64, len(h.gauges))
		s.histCounts = make([][]int64, len(h.hists))
		for k, hs := range h.hists {
			s.histCounts[k] = make([]int64, len(hs.h.counts))
		}
		s.histSums = make([]float64, len(h.hists))
		s.histNs = make([]int64, len(h.hists))
	}
	return r
}

// sample takes one reading into the ring's next slot. All reads are
// atomic loads; all writes land in preallocated storage.
//
//lint:alloc-free the flight-recorder tick, pinned by TestHistorySampleZeroAlloc
func (h *History) sample(r *sampleRing) {
	r.mu.Lock()
	s := &r.slots[int(r.total%uint64(len(r.slots)))]
	now := time.Now()
	s.unixMS = now.UnixMilli()
	s.offset = now.Sub(h.start).Seconds()
	for i, c := range h.counters {
		s.counters[i] = c.Value()
	}
	for i, g := range h.gauges {
		s.gauges[i] = g.Value()
	}
	for k, hs := range h.hists {
		for b := range hs.h.counts {
			s.histCounts[k][b] = hs.h.counts[b].Load()
		}
		s.histSums[k] = math.Float64frombits(hs.h.sumBits.Load())
		s.histNs[k] = hs.h.n.Load()
	}
	r.total++
	r.mu.Unlock()
}

// sampleFine takes one fine-resolution reading now.
func (h *History) sampleFine() { h.sample(h.fine) }

// sampleCoarse takes one coarse-resolution reading now.
func (h *History) sampleCoarse() { h.sample(h.coarse) }

// Start launches the background sampler: a first reading lands in both
// rings immediately, then the fine and coarse tickers each drive their
// ring. The returned stop function halts the sampler and waits for its
// goroutine to exit; it is safe to call more than once. A nil History
// returns a no-op stop.
func (h *History) Start() (stop func()) {
	if h == nil {
		return func() {}
	}
	h.sampleFine()
	h.sampleCoarse()
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		fine := time.NewTicker(h.cfg.FineInterval)
		defer fine.Stop()
		coarse := time.NewTicker(h.cfg.CoarseInterval)
		defer coarse.Stop()
		for {
			select {
			case <-done:
				return
			case <-fine.C:
				h.sampleFine()
			case <-coarse.C:
				h.sampleCoarse()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}

// resetSafeDelta returns the growth of a monotone counter between two
// readings, surviving a counter reset (process restart, registry swap):
// when cur < prev the counter restarted from zero, so the best estimate
// of the window's growth is cur itself.
func resetSafeDelta(prev, cur int64) int64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// HistoryQuantiles is one histogram's windowed quantile series: element
// i is the interpolated quantile of the samples observed between ring
// samples i-1 and i (element 0 covers an unknown partial window and is
// always zero, as is any interval with no observations).
type HistoryQuantiles struct {
	// P50/P90/P99 are the per-interval interpolated quantiles.
	P50 []float64 `json:"p50"`
	P90 []float64 `json:"p90"`
	P99 []float64 `json:"p99"`
	// Count is the number of observations in each interval.
	Count []int64 `json:"count"`
}

// HistoryResolution is one ring's section of a dump: parallel series,
// one element per retained sample, oldest first. Counters carry the raw
// cumulative readings; Rates are the derived per-second growth between
// consecutive samples (counter-reset safe, element 0 always zero).
type HistoryResolution struct {
	// Name is HistoryResFine or HistoryResCoarse.
	Name string `json:"name"`
	// IntervalSeconds is the configured sampling period.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Capacity is the ring's fixed size; no series exceeds it.
	Capacity int `json:"capacity"`
	// Taken counts samples ever taken, including overwritten ones.
	Taken uint64 `json:"taken"`
	// TimesUnixMS and OffsetSeconds locate each sample: wall-clock
	// milliseconds and seconds since the recorder started.
	TimesUnixMS   []int64   `json:"times_unix_ms"`
	OffsetSeconds []float64 `json:"offset_seconds"`
	// Counters maps metric name → cumulative reading series.
	Counters map[string][]int64 `json:"counters"`
	// Rates maps metric name → derived per-second rate series.
	Rates map[string][]float64 `json:"rates"`
	// Gauges maps metric name → sampled value series.
	Gauges map[string][]float64 `json:"gauges"`
	// Quantiles maps histogram name → windowed quantile series.
	Quantiles map[string]HistoryQuantiles `json:"quantiles,omitempty"`
}

// HistoryDump is the schema-stable snapshot of both rings — the
// /debug/history payload and the bench report's history section.
type HistoryDump struct {
	// Schema is always HistorySchema.
	Schema string `json:"schema"`
	// Resolutions holds the fine ring then the coarse ring.
	Resolutions []HistoryResolution `json:"resolutions"`
}

// dumpRing renders one ring into its dump section. Series are column-
// oriented (one slice per metric) so consumers index a metric once and
// get its whole curve.
func (h *History) dumpRing(name string, r *sampleRing) HistoryResolution {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.total)
	if n > len(r.slots) {
		n = len(r.slots)
	}
	// Oldest-first slot order.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = int((r.total + uint64(len(r.slots)) - uint64(n) + uint64(i)) % uint64(len(r.slots)))
	}
	res := HistoryResolution{
		Name:            name,
		IntervalSeconds: r.interval.Seconds(),
		Capacity:        len(r.slots),
		Taken:           r.total,
		TimesUnixMS:     make([]int64, n),
		OffsetSeconds:   make([]float64, n),
		Counters:        map[string][]int64{},
		Rates:           map[string][]float64{},
		Gauges:          map[string][]float64{},
	}
	for i, si := range idx {
		res.TimesUnixMS[i] = r.slots[si].unixMS
		res.OffsetSeconds[i] = r.slots[si].offset
	}
	for ci, cname := range h.counterNames {
		vals := make([]int64, n)
		rates := make([]float64, n)
		for i, si := range idx {
			vals[i] = r.slots[si].counters[ci]
			if i == 0 {
				continue // partial first window: no prior sample
			}
			dt := float64(res.TimesUnixMS[i]-res.TimesUnixMS[i-1]) / 1e3
			if dt <= 0 {
				dt = r.interval.Seconds()
			}
			rates[i] = float64(resetSafeDelta(vals[i-1], vals[i])) / dt
		}
		res.Counters[cname] = vals
		res.Rates[cname] = rates
	}
	for gi, gname := range h.gaugeNames {
		vals := make([]float64, n)
		for i, si := range idx {
			v := r.slots[si].gauges[gi]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0 // keep the dump JSON-encodable
			}
			vals[i] = v
		}
		res.Gauges[gname] = vals
	}
	if len(h.hists) > 0 {
		res.Quantiles = map[string]HistoryQuantiles{}
	}
	for k, hs := range h.hists {
		q := HistoryQuantiles{
			P50:   make([]float64, n),
			P90:   make([]float64, n),
			P99:   make([]float64, n),
			Count: make([]int64, n),
		}
		delta := HistSnapshot{
			Bounds: append([]float64(nil), hs.h.bounds...),
			Counts: make([]int64, len(hs.h.counts)),
		}
		for i := 1; i < n; i++ {
			prev, cur := &r.slots[idx[i-1]], &r.slots[idx[i]]
			windowHistDelta(&delta, cur.histCounts[k], prev.histCounts[k],
				cur.histNs[k], prev.histNs[k], cur.histSums[k], prev.histSums[k])
			q.Count[i] = delta.Count
			if delta.Count > 0 {
				q.P50[i] = sanitizeQuantile(delta.Quantile(0.50))
				q.P90[i] = sanitizeQuantile(delta.Quantile(0.90))
				q.P99[i] = sanitizeQuantile(delta.Quantile(0.99))
			}
		}
		res.Quantiles[hs.name] = q
	}
	return res
}

// windowHistDelta fills dst's Counts/Count/Sum with the reset-safe
// difference of two cumulative histogram readings. A count reset in any
// bucket means the histogram restarted inside the window, so the newer
// cumulative reading itself is the best window estimate.
func windowHistDelta(dst *HistSnapshot, curCounts, prevCounts []int64, curN, prevN int64, curSum, prevSum float64) {
	if curN < prevN {
		copy(dst.Counts, curCounts)
		dst.Count = curN
		dst.Sum = curSum
		return
	}
	for b := range dst.Counts {
		dst.Counts[b] = resetSafeDelta(prevCounts[b], curCounts[b])
	}
	dst.Count = curN - prevN
	dst.Sum = curSum - prevSum
	if dst.Sum < 0 {
		dst.Sum = curSum
	}
}

// sanitizeQuantile zeroes the NaN an empty-window Quantile returns (and
// any other non-finite estimate) so history dumps always JSON-encode.
func sanitizeQuantile(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Dump snapshots both rings into a schema-stable document. Nil-safe: a
// nil History returns nil.
func (h *History) Dump() *HistoryDump {
	if h == nil {
		return nil
	}
	return &HistoryDump{
		Schema: HistorySchema,
		Resolutions: []HistoryResolution{
			h.dumpRing(HistoryResFine, h.fine),
			h.dumpRing(HistoryResCoarse, h.coarse),
		},
	}
}

// HistoryWindow is an aggregate over the most recent fine-ring window:
// the inputs the SLO watchdog's burn-rate rules evaluate. Deltas are
// counter-reset safe. The serve.* and runtime.* fields are zero when
// the corresponding metric was not registered at History construction.
type HistoryWindow struct {
	// Seconds is the actual covered span (newest sample minus the
	// oldest sample inside the requested window); Samples how many ring
	// samples the window spans.
	Seconds float64
	Samples int
	// Requests and Errors are the serve.requests / serve.errors deltas;
	// ErrorRate is Errors/Requests (0 when no requests).
	Requests  int64
	Errors    int64
	ErrorRate float64
	// CacheLookups is the hits+misses delta; CacheHitRate is
	// hits/(hits+misses) over the window (0 when no lookups).
	CacheLookups int64
	CacheHitRate float64
	// P99Seconds is the windowed interpolated p99 of
	// serve.latency_seconds (0 when the window saw no requests).
	P99Seconds float64
	// MaxGoroutines and MaxHeapBytes are the window maxima of the
	// runtime.goroutines / runtime.heap_alloc_bytes gauges.
	MaxGoroutines float64
	MaxHeapBytes  float64
}

// counterIndex resolves a tracked counter's slot index, -1 when the
// metric was not registered at construction.
func (h *History) counterIndex(name string) int {
	for i, n := range h.counterNames {
		if n == name {
			return i
		}
	}
	return -1
}

// gaugeIndex resolves a tracked gauge's slot index, -1 when absent.
func (h *History) gaugeIndex(name string) int {
	for i, n := range h.gaugeNames {
		if n == name {
			return i
		}
	}
	return -1
}

// histIndex resolves a tracked histogram's slot index, -1 when absent.
func (h *History) histIndex(name string) int {
	for i, hs := range h.hists {
		if hs.name == name {
			return i
		}
	}
	return -1
}

// Window aggregates the fine ring over the trailing seconds. It returns
// ok=false when the ring holds fewer than two samples (no delta exists
// yet) — the watchdog treats that as "nothing to judge". A window
// longer than the retained history clamps to the whole ring.
func (h *History) Window(seconds float64) (HistoryWindow, bool) {
	if h == nil {
		return HistoryWindow{}, false
	}
	r := h.fine
	r.mu.Lock()
	defer r.mu.Unlock()
	n := int(r.total)
	if n > len(r.slots) {
		n = len(r.slots)
	}
	if n < 2 {
		return HistoryWindow{}, false
	}
	newest := &r.slots[int((r.total-1)%uint64(len(r.slots)))]
	// Walk backwards to the oldest retained sample still inside the
	// window. The walk always keeps at least one step back (oldestI=2,
	// the sample before newest) so a window shorter than one interval
	// still yields a real delta.
	oldestI := 2
	for i := 3; i <= n; i++ {
		s := &r.slots[int((r.total-uint64(i))%uint64(len(r.slots)))]
		if newest.offset-s.offset > seconds {
			break
		}
		oldestI = i
	}
	oldest := &r.slots[int((r.total-uint64(oldestI))%uint64(len(r.slots)))]
	w := HistoryWindow{
		Seconds: newest.offset - oldest.offset,
		Samples: oldestI,
	}
	if ci := h.counterIndex(MetricServeRequests); ci >= 0 {
		w.Requests = resetSafeDelta(oldest.counters[ci], newest.counters[ci])
	}
	if ci := h.counterIndex(MetricServeErrors); ci >= 0 {
		w.Errors = resetSafeDelta(oldest.counters[ci], newest.counters[ci])
	}
	if w.Requests > 0 {
		w.ErrorRate = float64(w.Errors) / float64(w.Requests)
	}
	var hits, misses int64
	if ci := h.counterIndex(MetricServeCacheHits); ci >= 0 {
		hits = resetSafeDelta(oldest.counters[ci], newest.counters[ci])
	}
	if ci := h.counterIndex(MetricServeCacheMisses); ci >= 0 {
		misses = resetSafeDelta(oldest.counters[ci], newest.counters[ci])
	}
	w.CacheLookups = hits + misses
	if w.CacheLookups > 0 {
		w.CacheHitRate = float64(hits) / float64(w.CacheLookups)
	}
	if hi := h.histIndex(MetricServeLatency); hi >= 0 {
		delta := HistSnapshot{
			Bounds: append([]float64(nil), h.hists[hi].h.bounds...),
			Counts: make([]int64, len(h.hists[hi].h.counts)),
		}
		windowHistDelta(&delta, newest.histCounts[hi], oldest.histCounts[hi],
			newest.histNs[hi], oldest.histNs[hi], newest.histSums[hi], oldest.histSums[hi])
		if delta.Count > 0 {
			w.P99Seconds = sanitizeQuantile(delta.Quantile(0.99))
		}
	}
	maxGauge := func(name string) float64 {
		gi := h.gaugeIndex(name)
		if gi < 0 {
			return 0
		}
		max := 0.0
		for i := 1; i <= oldestI; i++ {
			v := r.slots[int((r.total-uint64(i))%uint64(len(r.slots)))].gauges[gi]
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > max {
				max = v
			}
		}
		return max
	}
	w.MaxGoroutines = maxGauge(MetricRuntimeGoroutines)
	w.MaxHeapBytes = maxGauge(MetricRuntimeHeapAlloc)
	return w, true
}

// WriteHistoryDump writes the dump as indented JSON with a trailing
// newline — the exact bytes /debug/history serves and `transn
// checkreport` validates.
func WriteHistoryDump(w io.Writer, d *HistoryDump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ValidateHistoryDump checks that data is a well-formed
// transn.history/v1 document (see CheckHistoryDump for the rules).
func ValidateHistoryDump(data []byte) error {
	var d HistoryDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("history dump is not valid JSON: %w", err)
	}
	return CheckHistoryDump(&d)
}

// CheckHistoryDump validates a decoded dump: the expected schema, both
// resolution names in order, capacities respected, every series exactly
// as long as its time axis, times non-decreasing, and every value
// finite. Unknown extra fields are allowed — the schema is append-only
// within a version.
func CheckHistoryDump(d *HistoryDump) error {
	if d == nil {
		return fmt.Errorf("history dump is nil")
	}
	if d.Schema != HistorySchema {
		return fmt.Errorf("history dump schema %q, want %q", d.Schema, HistorySchema)
	}
	if len(d.Resolutions) != 2 || d.Resolutions[0].Name != HistoryResFine || d.Resolutions[1].Name != HistoryResCoarse {
		return fmt.Errorf("history dump must hold resolutions [%q, %q] in order", HistoryResFine, HistoryResCoarse)
	}
	for ri := range d.Resolutions {
		res := &d.Resolutions[ri]
		if res.IntervalSeconds <= 0 || math.IsNaN(res.IntervalSeconds) || math.IsInf(res.IntervalSeconds, 0) {
			return fmt.Errorf("resolution %q: interval_seconds = %v, want finite and positive", res.Name, res.IntervalSeconds)
		}
		if res.Capacity < 1 {
			return fmt.Errorf("resolution %q: capacity = %d, want >= 1", res.Name, res.Capacity)
		}
		n := len(res.TimesUnixMS)
		if n > res.Capacity {
			return fmt.Errorf("resolution %q holds %d samples over capacity %d", res.Name, n, res.Capacity)
		}
		if uint64(n) > res.Taken {
			return fmt.Errorf("resolution %q holds %d samples but taken is %d", res.Name, n, res.Taken)
		}
		if len(res.OffsetSeconds) != n {
			return fmt.Errorf("resolution %q: offset_seconds length %d != %d samples", res.Name, len(res.OffsetSeconds), n)
		}
		for i := 1; i < n; i++ {
			if res.TimesUnixMS[i] < res.TimesUnixMS[i-1] {
				return fmt.Errorf("resolution %q: times_unix_ms decreases at index %d", res.Name, i)
			}
			if res.OffsetSeconds[i] < res.OffsetSeconds[i-1] {
				return fmt.Errorf("resolution %q: offset_seconds decreases at index %d", res.Name, i)
			}
		}
		for name, series := range res.Counters {
			if len(series) != n {
				return fmt.Errorf("resolution %q: counter %q has %d points for %d samples", res.Name, name, len(series), n)
			}
			for i, v := range series {
				if v < 0 {
					return fmt.Errorf("resolution %q: counter %q is negative at index %d", res.Name, name, i)
				}
			}
		}
		for name, series := range res.Rates {
			if len(series) != n {
				return fmt.Errorf("resolution %q: rate %q has %d points for %d samples", res.Name, name, len(series), n)
			}
			if _, ok := res.Counters[name]; !ok {
				return fmt.Errorf("resolution %q: rate %q has no matching counter series", res.Name, name)
			}
			for i, v := range series {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return fmt.Errorf("resolution %q: rate %q = %v at index %d, want finite and non-negative", res.Name, name, v, i)
				}
			}
		}
		for name, series := range res.Gauges {
			if len(series) != n {
				return fmt.Errorf("resolution %q: gauge %q has %d points for %d samples", res.Name, name, len(series), n)
			}
			for i, v := range series {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("resolution %q: gauge %q is not finite at index %d", res.Name, name, i)
				}
			}
		}
		for name, q := range res.Quantiles {
			for _, s := range []struct {
				label  string
				series []float64
			}{{"p50", q.P50}, {"p90", q.P90}, {"p99", q.P99}} {
				if len(s.series) != n {
					return fmt.Errorf("resolution %q: quantile %q/%s has %d points for %d samples", res.Name, name, s.label, len(s.series), n)
				}
				for i, v := range s.series {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						return fmt.Errorf("resolution %q: quantile %q/%s = %v at index %d, want finite and non-negative", res.Name, name, s.label, v, i)
					}
				}
			}
			if len(q.Count) != n {
				return fmt.Errorf("resolution %q: quantile %q/count has %d points for %d samples", res.Name, name, len(q.Count), n)
			}
			for i, v := range q.Count {
				if v < 0 {
					return fmt.Errorf("resolution %q: quantile %q/count is negative at index %d", res.Name, name, i)
				}
			}
		}
	}
	return nil
}
