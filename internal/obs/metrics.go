package obs

// Declared metric names. The registry accepts any string, but every
// name that ships in the transn.telemetry.report/v1 counters/gauges/
// histograms sections must be one of these constants — transnlint's
// schema-registry analyzer flags constant names outside this set, so a
// renamed or misspelled metric is a lint finding instead of a silent
// consumer break. (benchrun's free-form Metrics *result* paths are a
// separate, documented free-form namespace.)
const (
	// MetricWalkPaths counts walk-corpus paths generated.
	MetricWalkPaths = "walk.paths"
	// MetricSkipgramPairs counts (center, context) skip-gram training
	// pairs — the examples/sec throughput unit.
	MetricSkipgramPairs = "skipgram.pairs"
	// MetricCrossSegments counts common-node segments consumed by
	// cross-view pair steps.
	MetricCrossSegments = "cross.segments"
	// MetricCrossSegmentLoss is the per-segment cross-view loss
	// histogram.
	MetricCrossSegmentLoss = "cross.segment_loss"
	// MetricLossSingle/Cross/Translation/Reconstruction are the most
	// recent iteration-mean loss gauges (Eq. 3, Eqs. 11–14).
	MetricLossSingle         = "loss.single"
	MetricLossCross          = "loss.cross"
	MetricLossTranslation    = "loss.translation"
	MetricLossReconstruction = "loss.reconstruction"

	// MetricServeRequests counts HTTP requests the embedding server
	// answered (every endpoint, every status).
	MetricServeRequests = "serve.requests"
	// MetricServeErrors counts requests answered with an error envelope
	// (4xx/5xx).
	MetricServeErrors = "serve.errors"
	// MetricServeLatency is the per-request wall-time histogram
	// (seconds) across every serving endpoint.
	MetricServeLatency = "serve.latency_seconds"
	// MetricServeCacheHits / MetricServeCacheMisses count lookups in the
	// per-snapshot LRU of translated vectors and inference results.
	MetricServeCacheHits   = "serve.cache_hits"
	MetricServeCacheMisses = "serve.cache_misses"
	// MetricServeSnapshotGen is the generation number of the snapshot
	// currently serving traffic; it increments on every hot reload.
	MetricServeSnapshotGen = "serve.snapshot_generation"
	// MetricServeReloads counts successful snapshot hot reloads.
	MetricServeReloads = "serve.reloads"
	// MetricServeQueueDepth is the number of translation computations
	// currently queued or running in the coalescing executor.
	MetricServeQueueDepth = "serve.queue_depth"
	// MetricServeKNNExactFallback counts /v1/knn requests answered by
	// the exact brute-force scan instead of the ANN index — either the
	// caller asked (exact=true) or the snapshot has no index.
	MetricServeKNNExactFallback = "serve.knn.exact_fallback"
	// MetricANNSearches counts ANN index searches served.
	MetricANNSearches = "ann.searches"
	// MetricANNDistEvals counts distance evaluations spent inside ANN
	// searches — the work metric that, divided by MetricANNSearches,
	// shows sub-linear behaviour against table size.
	MetricANNDistEvals = "ann.dist_evals"
	// MetricSnapLoads counts .snap snapshot loads (initial + reloads).
	MetricSnapLoads = "snap.loads"
	// MetricSnapMappedBytes is the byte size of the currently mapped
	// .snap file (0 when serving from gob or a copied load).
	MetricSnapMappedBytes = "snap.mapped_bytes"
	// MetricServeCoalesced counts requests that joined an identical
	// in-flight computation instead of running their own forward pass —
	// the coalescer's deduplication hit count.
	MetricServeCoalesced = "serve.coalesced"

	// MetricLoadOffered counts requests the load harness scheduled in
	// the measured window (the open-loop arrival process; see
	// DESIGN.md §11). Offered minus sent is harness backlog.
	MetricLoadOffered = "load.offered"
	// MetricLoadSent counts measured-window requests that completed
	// (any status); sent over the window is the achieved rate.
	MetricLoadSent = "load.sent"
	// MetricLoadErrors counts measured-window requests that failed:
	// transport errors plus any non-2xx envelope.
	MetricLoadErrors = "load.errors"
	// MetricLoadLatencyEmbedding/Translate/KNN/Infer are the
	// per-endpoint open-loop latency histograms (seconds, measured from
	// each request's scheduled arrival time so queueing delay counts).
	MetricLoadLatencyEmbedding = "load.latency_seconds.embedding"
	MetricLoadLatencyTranslate = "load.latency_seconds.translate"
	MetricLoadLatencyKNN       = "load.latency_seconds.knn"
	MetricLoadLatencyInfer     = "load.latency_seconds.infer"

	// MetricWatchTrips counts SLO watchdog rule trips (each transition
	// of a rule from healthy to violated; see DESIGN.md §13).
	MetricWatchTrips = "watch.trips"
	// MetricWatchDegraded is the number of watchdog rules currently in
	// the degraded (tripped, not yet recovered) state.
	MetricWatchDegraded = "watch.degraded_rules"

	// MetricRuntimeHeapAlloc is the live heap size in bytes
	// (runtime.MemStats.HeapAlloc), polled by Run.PollRuntime.
	MetricRuntimeHeapAlloc = "runtime.heap_alloc_bytes"
	// MetricRuntimeGCPauseTotal is the cumulative stop-the-world GC
	// pause time in seconds since process start.
	MetricRuntimeGCPauseTotal = "runtime.gc_pause_total_seconds"
	// MetricRuntimeGCCycles counts completed GC cycles since process
	// start.
	MetricRuntimeGCCycles = "runtime.gc_cycles"
	// MetricRuntimeGoroutines is the current goroutine count.
	MetricRuntimeGoroutines = "runtime.goroutines"
	// MetricRuntimeSchedLatency is a scheduler-latency proxy: the
	// observed delay of a timer wakeup beyond its requested sleep. A
	// loaded or GC-stalled scheduler shows up here before it shows up
	// in request latency.
	MetricRuntimeSchedLatency = "runtime.sched_latency_seconds"
)

// Declared span names. Tracer.Start sites with a constant name must use
// one of these (or a Stage value — every Algorithm 1 stage is also a
// span name); dynamic names (benchrun's per-experiment spans) are
// exempt by construction.
const (
	// SpanTrain covers a whole Train call.
	SpanTrain = "train"
	// SpanWalk / SpanSkipGram / SpanCrossPair / SpanIteration alias the
	// stage strings so tracing and event code share one vocabulary.
	SpanWalk      = string(StageWalk)
	SpanSkipGram  = string(StageSkipGram)
	SpanCrossPair = string(StageCrossPair)
	SpanIteration = string(StageIteration)
	// SpanServeReload covers one snapshot hot reload in the embedding
	// server (load + validate + swap).
	SpanServeReload = "serve.reload"
	// SpanServeSelfcheck covers one /admin/selfcheck diagnostics run.
	// Per-request timing deliberately goes to the serve.latency_seconds
	// histogram instead of spans: the span log is append-only and sized
	// for bounded training runs, not an unbounded request stream.
	SpanServeSelfcheck = "serve.selfcheck"
	// SpanLoadWarmup / SpanLoadMeasure cover the load harness's warmup
	// and measured windows; SpanLoadReload covers one mid-run
	// POST /admin/reload issued by the harness. Per-request timing goes
	// to the load.latency_seconds.* histograms, not spans, for the same
	// reason as serving.
	SpanLoadWarmup  = "load.warmup"
	SpanLoadMeasure = "load.measure"
	SpanLoadReload  = "load.reload"
	// SpanSnapLoad covers opening + validating + decoding one .snap
	// snapshot file (the O(header) part of a snap reload).
	SpanSnapLoad = "snap.load"
	// SpanANNBuild covers one HNSW index construction or decode at
	// snapshot load time.
	SpanANNBuild = "ann.build"
)
