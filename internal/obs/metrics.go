package obs

// Declared metric names. The registry accepts any string, but every
// name that ships in the transn.telemetry.report/v1 counters/gauges/
// histograms sections must be one of these constants — transnlint's
// schema-registry analyzer flags constant names outside this set, so a
// renamed or misspelled metric is a lint finding instead of a silent
// consumer break. (benchrun's free-form Metrics *result* paths are a
// separate, documented free-form namespace.)
const (
	// MetricWalkPaths counts walk-corpus paths generated.
	MetricWalkPaths = "walk.paths"
	// MetricSkipgramPairs counts (center, context) skip-gram training
	// pairs — the examples/sec throughput unit.
	MetricSkipgramPairs = "skipgram.pairs"
	// MetricCrossSegments counts common-node segments consumed by
	// cross-view pair steps.
	MetricCrossSegments = "cross.segments"
	// MetricCrossSegmentLoss is the per-segment cross-view loss
	// histogram.
	MetricCrossSegmentLoss = "cross.segment_loss"
	// MetricLossSingle/Cross/Translation/Reconstruction are the most
	// recent iteration-mean loss gauges (Eq. 3, Eqs. 11–14).
	MetricLossSingle         = "loss.single"
	MetricLossCross          = "loss.cross"
	MetricLossTranslation    = "loss.translation"
	MetricLossReconstruction = "loss.reconstruction"
)

// Declared span names. Tracer.Start sites with a constant name must use
// one of these (or a Stage value — every Algorithm 1 stage is also a
// span name); dynamic names (benchrun's per-experiment spans) are
// exempt by construction.
const (
	// SpanTrain covers a whole Train call.
	SpanTrain = "train"
	// SpanWalk / SpanSkipGram / SpanCrossPair / SpanIteration alias the
	// stage strings so tracing and event code share one vocabulary.
	SpanWalk      = string(StageWalk)
	SpanSkipGram  = string(StageSkipGram)
	SpanCrossPair = string(StageCrossPair)
	SpanIteration = string(StageIteration)
)
