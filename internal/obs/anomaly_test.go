package obs

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNewAnomalyCapturerValidation(t *testing.T) {
	if _, err := NewAnomalyCapturer(AnomalyConfig{}); err == nil {
		t.Fatal("capturer accepted an empty directory")
	}
}

func TestSanitizeRuleName(t *testing.T) {
	cases := map[string]string{
		"p99-budget":   "p99-budget",
		"a b/c":        "a_b_c",
		"..":           "__",
		"":             "rule",
		"Heap_Ceiling": "Heap_Ceiling",
	}
	for in, want := range cases {
		if got := sanitizeRuleName(in); got != want {
			t.Errorf("sanitizeRuleName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAnomalyCaptureBundle(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAnomalyCapturer(AnomalyConfig{Dir: dir, Keep: 4, Cooldown: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	ev := WatchEvent{Rule: "p99-budget", Code: WatchCodeP99, WindowSeconds: 60, Observed: 0.2, Budget: 0.05, UnixMS: 12345}
	bundle, err := a.Capture(ev, map[string]func(io.Writer) error{
		"history.json": func(w io.Writer) error { _, err := w.Write([]byte("{}\n")); return err },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(filepath.Base(bundle), anomalyPrefix) || !strings.HasSuffix(bundle, "-p99-budget") {
		t.Fatalf("bundle dir %q has the wrong shape", bundle)
	}

	data, err := os.ReadFile(filepath.Join(bundle, "watchdog.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got WatchEvent
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != ev {
		t.Fatalf("watchdog.json = %+v, want %+v", got, ev)
	}
	for _, name := range []string{"heap.pprof", "goroutine.pprof", "history.json"} {
		fi, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("bundle file %s is empty", name)
		}
	}

	// A failing extra aborts the capture with its error.
	time.Sleep(time.Microsecond)
	if _, err := a.Capture(ev, map[string]func(io.Writer) error{
		"broken.json": func(io.Writer) error { return io.ErrUnexpectedEOF },
	}); err == nil {
		t.Fatal("failing extra did not abort the capture")
	}

	// Nil capturer skips silently.
	var nilA *AnomalyCapturer
	if d, err := nilA.Capture(ev, nil); d != "" || err != nil {
		t.Fatalf("nil capturer returned (%q, %v)", d, err)
	}
}

func TestAnomalyCooldown(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAnomalyCapturer(AnomalyConfig{Dir: dir, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ev := WatchEvent{Rule: "r", Code: WatchCodeHeap}
	first, err := a.Capture(ev, nil)
	if err != nil || first == "" {
		t.Fatalf("first capture = (%q, %v)", first, err)
	}
	second, err := a.Capture(ev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second != "" {
		t.Fatalf("capture inside the cooldown wrote %q, want skip", second)
	}
}

func TestAnomalyRetention(t *testing.T) {
	dir := t.TempDir()
	a, err := NewAnomalyCapturer(AnomalyConfig{Dir: dir, Keep: 2, Cooldown: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	var bundles []string
	for i := 0; i < 3; i++ {
		b, err := a.Capture(WatchEvent{Rule: "r", Code: WatchCodeHeap}, nil)
		if err != nil || b == "" {
			t.Fatalf("capture %d = (%q, %v)", i, b, err)
		}
		bundles = append(bundles, b)
		// Distinct millisecond timestamps keep the retention order total.
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := os.Stat(bundles[0]); !os.IsNotExist(err) {
		t.Fatalf("oldest bundle survived retention: %v", err)
	}
	for _, b := range bundles[1:] {
		if _, err := os.Stat(b); err != nil {
			t.Fatalf("retained bundle missing: %v", err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("anomaly dir holds %d entries, want 2", len(entries))
	}
}
