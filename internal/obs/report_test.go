package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleRun() *Run {
	r := NewRun()
	r.Reg.Counter("skipgram.pairs").Add(1200)
	r.Reg.Counter("walk.paths").Add(50)
	r.Reg.Gauge("loss.single").Set(0.7)
	r.Reg.Histogram("cross.segment_loss", []float64{0.5, 1, 2, 4}).Observe(0.9)
	r.Trace.Start("skipgram").View(0).Epoch(0).End()
	r.Trace.Start("walk").View(0).Epoch(0).End()
	r.RecordPool(2*time.Millisecond, []WorkerSample{
		{Worker: 0, Busy: time.Millisecond, Shards: 3},
		{Worker: 1, Busy: 2 * time.Millisecond, Shards: 2},
	})
	return r
}

func TestReportRoundTripValidates(t *testing.T) {
	rep := sampleRun().Report("train")
	rep.Views = []ViewReport{{View: 0, LSingle: 0.7}}
	rep.Pairs = []PairReport{{Pair: 0, I: 0, J: 1, LCross: 1.2}}
	rep.Iterations = []IterationReport{{Iteration: 0, LSingle: 0.7, LCross: 1.2, ViewLoss: []float64{0.7}}}
	rep.Metrics = map[string]float64{"table3/AMiner/TransN/Micro-F1": 0.8}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(buf.Bytes()); err != nil {
		t.Fatalf("round-tripped report failed validation: %v", err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatal("report should end with a newline")
	}
	if rep.ExamplesPerSec <= 0 {
		t.Fatal("examples_per_sec not derived from skipgram.pairs")
	}
	if len(rep.Workers) != 2 || rep.Workers[0].Worker != 0 || rep.Workers[0].Shards != 3 {
		t.Fatalf("worker summaries wrong: %+v", rep.Workers)
	}
	if rep.Workers[0].IdleSeconds <= 0 {
		t.Fatalf("worker 0 should have idle time (busy 1ms of 2ms wall): %+v", rep.Workers[0])
	}
}

func TestReportEmptyRunValidates(t *testing.T) {
	var r *Run
	var buf bytes.Buffer
	if err := WriteReport(&buf, r.Report("empty")); err != nil {
		t.Fatal(err)
	}
	if err := ValidateReport(buf.Bytes()); err != nil {
		t.Fatalf("nil-run report failed validation: %v", err)
	}
}

func TestValidateReportRejectsBadInput(t *testing.T) {
	good, _ := json.Marshal(sampleRun().Report("x"))
	cases := map[string]string{
		"not json":       "{",
		"wrong schema":   strings.Replace(string(good), ReportSchema, "other/v9", 1),
		"missing schema": strings.Replace(string(good), `"schema"`, `"schema_x"`, 1),
		"empty name":     strings.Replace(string(good), `"name":"x"`, `"name":""`, 1),
		"bad stages":     strings.Replace(string(good), `"stages":[`, `"stages":[1,`, 1),
	}
	for name, data := range cases {
		if err := ValidateReport([]byte(data)); err == nil {
			t.Errorf("%s: validation unexpectedly passed", name)
		}
	}
	if err := ValidateReport(good); err != nil {
		t.Fatalf("control report failed: %v", err)
	}
}

func TestValidateReportRejectsNegativeDurations(t *testing.T) {
	rep := sampleRun().Report("x")
	rep.WallSeconds = -1
	data, _ := json.Marshal(rep)
	if err := ValidateReport(data); err == nil {
		t.Fatal("negative wall_seconds should fail validation")
	}
}

// TestReportSanitizeNonFinite checks that WriteReport survives
// non-finite values (which encoding/json rejects) by zeroing them and
// counting the replacements, and that the result still validates.
func TestReportSanitizeNonFinite(t *testing.T) {
	run := NewRun()
	run.Reg.Gauge("loss.single").Set(math.NaN())
	run.Reg.Gauge("loss.cross").Set(math.Inf(1))
	run.Reg.Gauge("healthy").Set(2.5)
	rep := run.Report("sanitize-test")
	rep.Iterations = []IterationReport{{Iteration: 0, LSingle: math.NaN(), ViewLoss: []float64{1, math.Inf(-1)}}}
	rep.Metrics = map[string]float64{"bad": math.NaN(), "good": 1}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatalf("WriteReport with non-finite values: %v", err)
	}
	if err := ValidateReport(buf.Bytes()); err != nil {
		t.Fatalf("sanitized report does not validate: %v", err)
	}
	// NaN gauge, +Inf gauge, NaN iteration loss, -Inf view loss, NaN metric.
	if rep.NonFiniteValues != 5 {
		t.Fatalf("NonFiniteValues = %d, want 5", rep.NonFiniteValues)
	}
	if rep.Gauges["healthy"] != 2.5 || rep.Metrics["good"] != 1 {
		t.Fatal("sanitize clobbered finite values")
	}
	if rep.Gauges["loss.single"] != 0 || rep.Metrics["bad"] != 0 {
		t.Fatal("sanitize left non-finite values in place")
	}
}
