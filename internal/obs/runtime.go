package obs

import (
	"runtime"
	"sync"
	"time"
)

// PollRuntime starts a background goroutine that samples Go runtime
// health into the run's registry gauges every interval: live heap
// bytes, cumulative GC pause seconds, completed GC cycles, goroutine
// count, and a scheduler-latency proxy (how late a short timer wakeup
// fires beyond its requested sleep — a loaded or GC-stalled scheduler
// delays wakeups before it delays anything else). The gauges give a
// request trace its "was the runtime itself misbehaving?" context:
// a slow request with no dominant stage and a GC pause spike in the
// same window is a GC story, not a model story.
//
// interval <= 0 defaults to 5s. The returned stop function halts the
// poller and waits for its goroutine to exit; it is safe to call more
// than once. On a nil Run the poller is a no-op and stop returns
// immediately.
func (r *Run) PollRuntime(interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	heap := r.Reg.Gauge(MetricRuntimeHeapAlloc)
	pause := r.Reg.Gauge(MetricRuntimeGCPauseTotal)
	cycles := r.Reg.Gauge(MetricRuntimeGCCycles)
	goroutines := r.Reg.Gauge(MetricRuntimeGoroutines)
	sched := r.Reg.Gauge(MetricRuntimeSchedLatency)

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapAlloc))
		pause.Set(float64(ms.PauseTotalNs) / 1e9)
		cycles.Set(float64(ms.NumGC))
		goroutines.Set(float64(runtime.NumGoroutine()))

		// Scheduler-latency probe: request a 1ms sleep and measure the
		// overshoot. On an idle scheduler the overshoot is timer slop
		// (tens of µs); under CPU saturation or a stop-the-world pause
		// it stretches to milliseconds.
		const probe = time.Millisecond
		t0 := time.Now()
		time.Sleep(probe)
		if late := time.Since(t0) - probe; late > 0 {
			sched.Set(late.Seconds())
		} else {
			sched.Set(0)
		}
	}
	sample() // publish a first reading before the first tick

	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				sample()
			}
		}
	}()

	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-exited
	}
}
