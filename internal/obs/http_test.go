package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServeDebugEndpoints(t *testing.T) {
	run := sampleRun()
	srv, addr, err := run.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	get := func(path string) []byte {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	// /metrics serves a live report that passes schema validation.
	metrics := get("/metrics")
	if err := ValidateReport(metrics); err != nil {
		t.Fatalf("/metrics did not serve a valid report: %v\n%s", err, metrics)
	}
	if !strings.Contains(string(metrics), "skipgram.pairs") {
		t.Fatalf("/metrics missing registry counters:\n%s", metrics)
	}

	// expvar and pprof are wired.
	if body := get("/debug/vars"); !strings.Contains(string(body), "memstats") {
		t.Fatal("/debug/vars missing memstats")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	run := NewRun()
	if _, _, err := run.ServeDebug("256.0.0.1:bad"); err == nil {
		t.Fatal("expected listen error")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	run := sampleRun()
	run.PublishExpvar("obs_test_run")
	run.PublishExpvar("obs_test_run") // second publish must not panic
	var nilRun *Run
	nilRun.PublishExpvar("obs_test_nil")
}
