package obs

import (
	"sort"
	"sync"
	"time"

	"transn/internal/ordered"
)

// Span is one completed timed region: a stage of Algorithm 1 (a walk
// corpus, a skip-gram pass, a cross-view pair step, an iteration) or a
// benchmark experiment. View/Pair/Epoch/Worker are -1 when not
// applicable.
type Span struct {
	Name     string        `json:"name"`
	View     int           `json:"view"`
	Pair     int           `json:"pair"`
	Epoch    int           `json:"epoch"`
	Worker   int           `json:"worker"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
}

// Tracer records spans. Starting a span allocates nothing shared;
// finishing one appends under a mutex — spans end at stage boundaries,
// never inside shard loops, so the lock is uncontended in practice.
type Tracer struct {
	mu    sync.Mutex
	spans []Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// ActiveSpan is an in-progress span. Attribute setters chain and, like
// End, are nil-safe so instrumentation reads naturally with a nil
// tracer: tr.Start("walk").View(vi).Epoch(it) ... sp.End().
type ActiveSpan struct {
	t *Tracer
	s Span
}

// Start begins a span. On a nil tracer it returns nil, and every method
// of a nil *ActiveSpan no-ops.
func (t *Tracer) Start(name string) *ActiveSpan {
	if t == nil {
		return nil
	}
	return &ActiveSpan{t: t, s: Span{
		Name: name, View: -1, Pair: -1, Epoch: -1, Worker: -1, Start: time.Now(),
	}}
}

// View attributes the span to a view index.
func (a *ActiveSpan) View(v int) *ActiveSpan {
	if a != nil {
		a.s.View = v
	}
	return a
}

// Pair attributes the span to a view-pair index.
func (a *ActiveSpan) Pair(p int) *ActiveSpan {
	if a != nil {
		a.s.Pair = p
	}
	return a
}

// Epoch attributes the span to an Algorithm 1 iteration.
func (a *ActiveSpan) Epoch(e int) *ActiveSpan {
	if a != nil {
		a.s.Epoch = e
	}
	return a
}

// Worker attributes the span to a worker index.
func (a *ActiveSpan) Worker(w int) *ActiveSpan {
	if a != nil {
		a.s.Worker = w
	}
	return a
}

// End finishes the span, records it, and returns its duration. A nil
// span returns 0.
func (a *ActiveSpan) End() time.Duration {
	if a == nil {
		return 0
	}
	a.s.Duration = time.Since(a.s.Start)
	a.t.mu.Lock()
	a.t.spans = append(a.t.spans, a.s)
	a.t.mu.Unlock()
	return a.s.Duration
}

// Spans returns a copy of every recorded span in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// StageSummary aggregates all spans sharing a name.
type StageSummary struct {
	Name         string  `json:"name"`
	Count        int     `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
}

// Stages aggregates spans by name, sorted by total time descending
// (ties broken by name) — the profile view of where a run's wall time
// went.
func (t *Tracer) Stages() []StageSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	byName := map[string]*StageSummary{}
	for _, s := range t.spans {
		sum := byName[s.Name]
		if sum == nil {
			sum = &StageSummary{Name: s.Name, MinSeconds: s.Duration.Seconds()}
			byName[s.Name] = sum
		}
		d := s.Duration.Seconds()
		sum.Count++
		sum.TotalSeconds += d
		if d < sum.MinSeconds {
			sum.MinSeconds = d
		}
		if d > sum.MaxSeconds {
			sum.MaxSeconds = d
		}
	}
	out := make([]StageSummary, 0, len(byName))
	for _, name := range ordered.Keys(byName) {
		out = append(out, *byName[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSeconds != out[j].TotalSeconds {
			return out[i].TotalSeconds > out[j].TotalSeconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}
