package obs

// Stage labels the phase of Algorithm 1 an event or span belongs to.
// The string values are part of the report schema — do not renumber or
// rename without bumping ReportSchema.
type Stage string

const (
	// StageWalk is per-view walk-corpus generation (Algorithm 1 line 4).
	StageWalk Stage = "walk"
	// StageSkipGram is a per-view skip-gram pass (lines 5–7).
	StageSkipGram Stage = "skipgram"
	// StageCrossPair is one cross-view pair step (lines 8–12).
	StageCrossPair Stage = "cross_pair"
	// StageIteration closes one outer iteration with the iteration-mean
	// losses — the loss-curve event.
	StageIteration Stage = "iteration"
	// StageDiagnostic marks a synthesized health event: the trainer's
	// non-finite guard and internal/diag's convergence monitor emit these
	// alongside (never instead of) the regular stage stream. Level and
	// Message carry the verdict; losses and Examples are zero.
	StageDiagnostic Stage = "diagnostic"
)

// Severity levels of StageDiagnostic events.
const (
	// LevelInfo marks an advisory observation (e.g. a loss plateau).
	LevelInfo = "info"
	// LevelWarning marks a health problem the run can still continue
	// from being reported (e.g. divergence, a non-finite loss).
	LevelWarning = "warning"
)

// TrainEvent is one entry of the typed training event stream, delivered
// through transn's Config.Observer callback. Numeric identity fields
// (Stage, View, Pair, Epoch), losses and Examples are deterministic for
// a fixed Seed under DeterministicApply; timing fields
// (DurationSeconds, ExamplesPerSec) never are — comparisons should use
// Key()-style projections. View and Pair are -1 when not applicable.
type TrainEvent struct {
	Stage Stage `json:"stage"`
	View  int   `json:"view"`
	Pair  int   `json:"pair"`
	Epoch int   `json:"epoch"`

	// LSingle is the mean skip-gram pair loss (StageSkipGram: this
	// view's pass; StageIteration: mean across views).
	LSingle float64 `json:"l_single"`
	// LCross is the mean cross-view segment loss (StageCrossPair: this
	// pair's step; StageIteration: mean across pairs), the sum of the
	// translation (Eqs. 11–12) and reconstruction (Eqs. 13–14)
	// components below.
	LCross          float64 `json:"l_cross"`
	LTranslation    float64 `json:"l_translation"`
	LReconstruction float64 `json:"l_reconstruction"`

	// Examples counts the stage's work items: walks generated
	// (StageWalk), skip-gram training pairs (StageSkipGram), common-node
	// segments (StageCrossPair), or the iteration total (StageIteration).
	Examples int `json:"examples"`

	DurationSeconds float64 `json:"duration_seconds"`
	ExamplesPerSec  float64 `json:"examples_per_sec"`

	// Level and Message are set only on StageDiagnostic events (the
	// schema is append-only within a version, so their addition does not
	// bump ReportSchema). Level is LevelInfo or LevelWarning.
	Level   string `json:"level,omitempty"`
	Message string `json:"message,omitempty"`
}

// Deterministic returns the event with its timing fields zeroed: the
// projection that is reproducible for a fixed Seed under
// DeterministicApply. The determinism test suite compares streams of
// these.
func (e TrainEvent) Deterministic() TrainEvent {
	e.DurationSeconds = 0
	e.ExamplesPerSec = 0
	return e
}
