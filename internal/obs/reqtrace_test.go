package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceStageIndexCoversAllStages(t *testing.T) {
	seen := map[int]bool{}
	for _, s := range TraceStages() {
		i := traceStageIndex(s)
		if i < 0 || i >= numTraceStages {
			t.Fatalf("stage %q maps to index %d outside [0, %d)", s, i, numTraceStages)
		}
		if seen[i] {
			t.Fatalf("stage %q collides on index %d", s, i)
		}
		seen[i] = true
	}
	if len(seen) != numTraceStages {
		t.Fatalf("TraceStages covers %d slots, want %d", len(seen), numTraceStages)
	}
	if traceStageIndex("bogus") != -1 {
		t.Fatal("unknown stage should map to -1")
	}
}

func TestReqTraceNilSafety(t *testing.T) {
	var tr *ReqTrace
	tr.StartStage(TraceStageDecode)
	tr.EndStage(TraceStageDecode)
	tr.SetCacheHit()
	tr.SetCoalesced()
	tr.SetGeneration(7)
	if tr.ID() != "" || tr.Sampled() {
		t.Fatal("nil trace should report zero values")
	}
	var tl *TraceLog
	if got := tl.Begin("id", "ep"); got != nil {
		t.Fatal("nil TraceLog.Begin should return nil")
	}
	if _, kept := tl.Finish(nil, TraceOutcomeOK, 200, ""); kept {
		t.Fatal("nil TraceLog.Finish should not keep")
	}
	if tl.DumpRequests() != nil || tl.DumpSlow() != nil {
		t.Fatal("nil TraceLog dumps should be nil")
	}
	if tl.SlowThreshold() != 0 {
		t.Fatal("nil TraceLog threshold should be zero")
	}
	var ring *TraceRing
	ring.Add(TraceRecord{})
	if ring.Len() != 0 || ring.Cap() != 0 || ring.Total() != 0 || ring.Dump() != nil {
		t.Fatal("nil ring should report empty")
	}
}

func TestTraceLogDeterministicSampling(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: 3, SampleRate: 10, RingSize: 64, SlowThreshold: -1})
	var sampled []uint64
	for i := 1; i <= 25; i++ {
		tr := tl.Begin(fmt.Sprintf("r%d", i), "embedding")
		if tr.Sampled() {
			sampled = append(sampled, tr.seq)
		}
		tl.Finish(tr, TraceOutcomeOK, 200, "")
	}
	want := []uint64{1, 2, 3, 10, 20}
	if fmt.Sprint(sampled) != fmt.Sprint(want) {
		t.Fatalf("sampled seqs = %v, want %v", sampled, want)
	}
	d := tl.DumpRequests()
	if d.Seen != 25 || d.Kept != uint64(len(want)) || len(d.Traces) != len(want) {
		t.Fatalf("dump seen/kept/len = %d/%d/%d, want 25/%d/%d",
			d.Seen, d.Kept, len(d.Traces), len(want), len(want))
	}
}

func TestTraceLogSamplingDisabled(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: -1, SampleRate: -1, SlowThreshold: -1})
	for i := 0; i < 100; i++ {
		tr := tl.Begin("r", "knn")
		if tr.Sampled() {
			t.Fatal("no request should be sampled with both dimensions disabled")
		}
		if _, kept := tl.Finish(tr, TraceOutcomeOK, 200, ""); kept {
			t.Fatal("nothing should be kept")
		}
	}
}

func TestTraceFinishRecordsStagesAndFlags(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: 1, SampleRate: -1, SlowThreshold: -1})
	tr := tl.Begin("req-1", "translate")
	tr.StartStage(TraceStageDecode)
	tr.EndStage(TraceStageDecode)
	tr.StartStage(TraceStageForward)
	time.Sleep(2 * time.Millisecond)
	tr.EndStage(TraceStageForward)
	tr.SetCacheHit()
	tr.SetCoalesced()
	tr.SetGeneration(3)
	rec, kept := tl.Finish(tr, TraceOutcomeOK, 200, "")
	if !kept {
		t.Fatal("head-sampled trace should be kept")
	}
	if rec.ID != "req-1" || rec.Endpoint != "translate" || rec.Seq != 1 {
		t.Fatalf("record identity wrong: %+v", rec)
	}
	if !rec.CacheHit || !rec.Coalesced || rec.Generation != 3 {
		t.Fatalf("record flags wrong: %+v", rec)
	}
	if _, ok := rec.Stages[string(TraceStageDecode)]; !ok {
		t.Fatal("decode stage missing")
	}
	fw := rec.Stages[string(TraceStageForward)]
	if fw < (1 * time.Millisecond).Seconds() {
		t.Fatalf("forward stage = %v, want >= 1ms", fw)
	}
	if _, ok := rec.Stages[string(TraceStageCache)]; ok {
		t.Fatal("unvisited cache stage should be absent")
	}
	if rec.TotalSeconds < fw {
		t.Fatalf("total %v < forward %v", rec.TotalSeconds, fw)
	}
}

// TestTraceFinishClosesOpenStage is the obs-level half of the timeout
// story: a stage that was started but never ended (the handler was
// still in its forward pass at the deadline) must appear in the record
// at its duration so far.
func TestTraceFinishClosesOpenStage(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: 1, SampleRate: -1, SlowThreshold: -1})
	tr := tl.Begin("req-t", "translate")
	tr.StartStage(TraceStageForward)
	time.Sleep(2 * time.Millisecond)
	rec, kept := tl.Finish(tr, TraceOutcomeTimeout, 504, "timeout")
	if !kept {
		t.Fatal("trace should be kept")
	}
	fw, ok := rec.Stages[string(TraceStageForward)]
	if !ok {
		t.Fatal("open forward stage missing from record")
	}
	if fw < (1 * time.Millisecond).Seconds() {
		t.Fatalf("open forward stage = %v, want >= 1ms", fw)
	}
	if rec.Outcome != TraceOutcomeTimeout || rec.Code != "timeout" {
		t.Fatalf("outcome/code = %q/%q", rec.Outcome, rec.Code)
	}
}

func TestTraceLogSlowRing(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: -1, SampleRate: -1, SlowThreshold: time.Nanosecond})
	tr := tl.Begin("slow-1", "knn")
	time.Sleep(time.Millisecond)
	rec, kept := tl.Finish(tr, TraceOutcomeOK, 200, "")
	if !kept || !rec.Slow || rec.Sampled {
		t.Fatalf("slow-only trace: kept=%v rec=%+v", kept, rec)
	}
	if n := tl.DumpSlow().Kept; n != 1 {
		t.Fatalf("slow ring kept %d, want 1", n)
	}
	if n := tl.DumpRequests().Kept; n != 0 {
		t.Fatalf("sampled ring kept %d, want 0", n)
	}
}

func TestTraceRingOverwritesOldest(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(TraceRecord{Seq: uint64(i)})
	}
	got := r.Dump()
	if len(got) != 3 || got[0].Seq != 3 || got[1].Seq != 4 || got[2].Seq != 5 {
		t.Fatalf("ring dump = %+v, want seqs 3,4,5", got)
	}
	if r.Total() != 5 || r.Len() != 3 || r.Cap() != 3 {
		t.Fatalf("ring accounting total/len/cap = %d/%d/%d", r.Total(), r.Len(), r.Cap())
	}
}

// TestTraceRingConcurrent is the property/race test from the issue: 12
// writers hammer the ring while readers dump concurrently, then the
// final state is checked against a slice oracle. Run under -race this
// also proves no torn records: each dumped record's fields must be
// internally consistent (ID derived from Seq).
func TestTraceRingConcurrent(t *testing.T) {
	const (
		writers   = 12
		perWriter = 500
		capacity  = 64
	)
	r := NewTraceRing(capacity)

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for _, rec := range r.Dump() {
					if rec.ID != fmt.Sprintf("w%d", rec.Seq) {
						t.Errorf("torn record: seq %d with id %q", rec.Seq, rec.ID)
						return
					}
				}
				if n := r.Len(); n > capacity {
					t.Errorf("ring len %d exceeds capacity %d", n, capacity)
					return
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				seq := uint64(w*perWriter + i)
				r.Add(TraceRecord{
					Seq:      seq,
					ID:       fmt.Sprintf("w%d", seq),
					Endpoint: "embedding",
					Sampled:  true,
				})
			}
		}(w)
	}
	writerWG.Wait()
	close(stopReaders)
	wg.Wait()

	// Oracle: after all writes, exactly capacity records remain, total
	// equals every append, and the retained set is a subset of what was
	// written (each at most once — the ring never duplicates).
	if got := r.Total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	final := r.Dump()
	if len(final) != capacity {
		t.Fatalf("final len = %d, want %d", len(final), capacity)
	}
	seen := map[uint64]bool{}
	for _, rec := range final {
		if rec.Seq >= writers*perWriter {
			t.Fatalf("record seq %d was never written", rec.Seq)
		}
		if seen[rec.Seq] {
			t.Fatalf("record seq %d retained twice", rec.Seq)
		}
		seen[rec.Seq] = true
	}

	// Sequential oracle: with a single writer the ring must retain
	// exactly the last `capacity` appends in order, matching a slice.
	seq := NewTraceRing(capacity)
	var oracle []TraceRecord
	for i := 0; i < 10*capacity+7; i++ {
		rec := TraceRecord{Seq: uint64(i), ID: fmt.Sprintf("w%d", i)}
		seq.Add(rec)
		oracle = append(oracle, rec)
		if len(oracle) > capacity {
			oracle = oracle[1:]
		}
	}
	got := seq.Dump()
	if len(got) != len(oracle) {
		t.Fatalf("sequential dump len = %d, want %d", len(got), len(oracle))
	}
	for i := range got {
		if got[i].Seq != oracle[i].Seq {
			t.Fatalf("sequential dump[%d].Seq = %d, oracle %d", i, got[i].Seq, oracle[i].Seq)
		}
	}
}

// TestTraceConcurrentFinishAndMark reproduces the timeout race shape at
// the trace level: one goroutine keeps marking stages while another
// finalizes the trace. Under -race this must be clean, and Finish must
// still produce a well-formed record.
func TestTraceConcurrentFinishAndMark(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: 1 << 30, SampleRate: -1, SlowThreshold: -1})
	for i := 0; i < 50; i++ {
		tr := tl.Begin(fmt.Sprintf("r%d", i), "translate")
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 100; j++ {
				tr.StartStage(TraceStageForward)
				tr.EndStage(TraceStageForward)
				tr.SetCacheHit()
				tr.SetGeneration(uint64(j))
			}
		}()
		rec, kept := tl.Finish(tr, TraceOutcomeTimeout, 504, "timeout")
		<-done
		if !kept {
			t.Fatal("trace should be kept")
		}
		if rec.Outcome != TraceOutcomeTimeout {
			t.Fatalf("outcome = %q", rec.Outcome)
		}
	}
}

func TestWriteAndValidateTraceDump(t *testing.T) {
	tl := NewTraceLog(TraceConfig{SampleHead: 8, SampleRate: -1, SlowThreshold: time.Nanosecond})
	for i := 0; i < 5; i++ {
		tr := tl.Begin(fmt.Sprintf("req-%d", i), "embedding")
		tr.StartStage(TraceStageDecode)
		tr.EndStage(TraceStageDecode)
		tl.Finish(tr, TraceOutcomeOK, 200, "")
	}
	for _, dump := range []*TraceDump{tl.DumpRequests(), tl.DumpSlow()} {
		var buf bytes.Buffer
		if err := WriteTraceDump(&buf, dump); err != nil {
			t.Fatalf("WriteTraceDump(%s): %v", dump.Ring, err)
		}
		if err := ValidateTraceDump(buf.Bytes()); err != nil {
			t.Fatalf("ValidateTraceDump(%s): %v", dump.Ring, err)
		}
		if !strings.HasSuffix(buf.String(), "\n") {
			t.Fatal("dump should end with a newline")
		}
	}
}

func TestValidateTraceDumpRejectsCorrupt(t *testing.T) {
	base := func() *TraceDump {
		return &TraceDump{
			Schema: TraceDumpSchema, Ring: TraceRingRequests, Capacity: 4,
			Seen: 2, Kept: 1, SampleHead: 1, SampleRate: 1,
			Traces: []TraceRecord{{
				ID: "r1", Seq: 1, Endpoint: "knn", Start: time.Now(),
				TotalSeconds: 0.01,
				Stages:       map[string]float64{string(TraceStageForward): 0.005},
				Outcome:      TraceOutcomeOK, Status: 200, Sampled: true,
			}},
		}
	}
	cases := []struct {
		name   string
		mutate func(*TraceDump)
		want   string
	}{
		{"not json", nil, "not valid JSON"},
		{"bad schema", func(d *TraceDump) { d.Schema = "transn.trace.serve/v0" }, "schema"},
		{"bad ring", func(d *TraceDump) { d.Ring = "warm" }, "ring"},
		{"zero capacity", func(d *TraceDump) { d.Capacity = 0 }, "capacity"},
		{"over capacity", func(d *TraceDump) {
			d.Capacity = 0
			d.Capacity = 1
			d.Traces = append(d.Traces, d.Traces[0], d.Traces[0])
		}, "over capacity"},
		{"kept undercount", func(d *TraceDump) { d.Kept = 0 }, "kept only"},
		{"empty id", func(d *TraceDump) { d.Traces[0].ID = "" }, "empty id"},
		{"empty endpoint", func(d *TraceDump) { d.Traces[0].Endpoint = "" }, "empty endpoint"},
		{"bad outcome", func(d *TraceDump) { d.Traces[0].Outcome = "meh" }, "unknown outcome"},
		{"bad status", func(d *TraceDump) { d.Traces[0].Status = 42 }, "status"},
		{"negative total", func(d *TraceDump) { d.Traces[0].TotalSeconds = -1 }, "total_seconds"},
		{"unknown stage", func(d *TraceDump) { d.Traces[0].Stages["warp"] = 0.1 }, "unknown stage"},
		{"negative stage", func(d *TraceDump) { d.Traces[0].Stages[string(TraceStageForward)] = -0.1 }, "finite and non-negative"},
		{"unkept record", func(d *TraceDump) { d.Traces[0].Sampled = false; d.Traces[0].Slow = false }, "neither sampled nor slow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var data []byte
			if tc.mutate == nil {
				data = []byte("{nope")
			} else {
				d := base()
				tc.mutate(d)
				var err error
				data, err = json.Marshal(d)
				if err != nil {
					t.Fatal(err)
				}
			}
			err := ValidateTraceDump(data)
			if err == nil {
				t.Fatal("want validation error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// And the base document itself must be clean.
	data, err := json.Marshal(base())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceDump(data); err != nil {
		t.Fatalf("base dump should validate: %v", err)
	}
}

func TestPollRuntimePublishesGauges(t *testing.T) {
	run := NewRun()
	stop := run.PollRuntime(time.Hour) // first sample is synchronous
	defer stop()
	snap := run.Reg.Snapshot()
	for _, name := range []string{
		MetricRuntimeHeapAlloc, MetricRuntimeGCPauseTotal,
		MetricRuntimeGCCycles, MetricRuntimeGoroutines,
		MetricRuntimeSchedLatency,
	} {
		v, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("gauge %q not published", name)
		}
		if v < 0 {
			t.Fatalf("gauge %q = %v, want >= 0", name, v)
		}
	}
	if snap.Gauges[MetricRuntimeHeapAlloc] == 0 {
		t.Fatal("heap_alloc_bytes should be positive on a live process")
	}
	stop()
	stop() // idempotent
	var nilRun *Run
	nilRun.PollRuntime(time.Second)() // nil-safe
}
