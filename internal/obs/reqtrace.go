package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TraceStage labels one timed stage of a traced serving request. The
// stage set is fixed and schema-stable: the strings are the keys of the
// "stages" object in transn.trace.serve/v1 records and the slow-request
// log, and transnlint's schema-registry analyzer requires stage names
// at ReqTrace call sites to be these declared constants.
type TraceStage string

// The serving request stages, in request order. Not every request
// visits every stage: cache hits skip coalesce_wait and forward,
// /v1/embedding never touches the cache at all — absent stages are
// simply omitted from the record.
const (
	// TraceStageDecode covers request parsing and validation: query
	// parameters, JSON bodies, node/view name resolution.
	TraceStageDecode TraceStage = "decode"
	// TraceStageSnapshot covers pinning the live snapshot pointer and
	// the readiness check.
	TraceStageSnapshot TraceStage = "snapshot_pin"
	// TraceStageCache covers the per-snapshot LRU lookup.
	TraceStageCache TraceStage = "cache"
	// TraceStageCoalesceWait covers time blocked in the request
	// coalescer: waiting on an identical in-flight leader, or waiting
	// for a translator-concurrency slot.
	TraceStageCoalesceWait TraceStage = "coalesce_wait"
	// TraceStageForward covers the model computation itself — the
	// Eq. 8–10 translator forward pass, a k-NN scan, or InferNode.
	TraceStageForward TraceStage = "forward"
	// TraceStageEncode covers JSON response encoding and the write to
	// the client.
	TraceStageEncode TraceStage = "encode"
)

// numTraceStages is the size of the per-stage timing arrays.
const numTraceStages = 6

// TraceStages returns every stage in canonical request order.
func TraceStages() []TraceStage {
	return []TraceStage{
		TraceStageDecode, TraceStageSnapshot, TraceStageCache,
		TraceStageCoalesceWait, TraceStageForward, TraceStageEncode,
	}
}

// traceStageIndex maps a stage to its timing-array slot, -1 for an
// unknown stage. A switch, not a map: stage marking sits on the serve
// hot path and must not allocate or hash.
func traceStageIndex(s TraceStage) int {
	switch s {
	case TraceStageDecode:
		return 0
	case TraceStageSnapshot:
		return 1
	case TraceStageCache:
		return 2
	case TraceStageCoalesceWait:
		return 3
	case TraceStageForward:
		return 4
	case TraceStageEncode:
		return 5
	}
	return -1
}

// TraceOutcome classifies how a traced request ended.
type TraceOutcome string

// The trace outcomes.
const (
	// TraceOutcomeOK marks a 2xx response.
	TraceOutcomeOK TraceOutcome = "ok"
	// TraceOutcomeError marks a request answered with an error envelope
	// before its deadline.
	TraceOutcomeError TraceOutcome = "error"
	// TraceOutcomeTimeout marks a request that exceeded its endpoint
	// deadline; stage timings cover work done up to the deadline, with
	// any still-running stage recorded at its duration so far.
	TraceOutcomeTimeout TraceOutcome = "timeout"
	// TraceOutcomePanic marks a request whose handler panicked (the
	// middleware converts the panic to a 500 envelope).
	TraceOutcomePanic TraceOutcome = "panic"
)

// traceOutcomeKnown reports whether s is a declared outcome, for dump
// validation.
func traceOutcomeKnown(s TraceOutcome) bool {
	switch s {
	case TraceOutcomeOK, TraceOutcomeError, TraceOutcomeTimeout, TraceOutcomePanic:
		return true
	}
	return false
}

// ReqTrace is the live trace of one in-flight serving request. It is
// created by TraceLog.Begin, threaded through the request (context →
// handler → cache → coalescer → forward), and snapshotted into an
// immutable TraceRecord by TraceLog.Finish. All methods are nil-safe —
// with tracing disabled the instrumentation sites reduce to nil checks
// and allocate nothing — and all mutation is atomic, so a handler
// goroutine that outlives its deadline (the timeout middleware responds
// and moves on) can keep marking stages without racing Finish.
type ReqTrace struct {
	id       string
	endpoint string
	start    time.Time
	seq      uint64
	sampled  bool

	// stageStart/stageDur hold per-stage offsets and durations in
	// nanoseconds, biased by +1 so zero means "never started"/"never
	// ended" and a genuine 0ns reading still registers.
	stageStart [numTraceStages]atomic.Int64
	stageDur   [numTraceStages]atomic.Int64

	cacheHit  atomic.Bool
	coalesced atomic.Bool
	gen       atomic.Uint64
}

// ID returns the request ID the trace was begun with ("" on nil).
func (tr *ReqTrace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Sampled reports whether this trace was selected by head/rate sampling
// at Begin (slow traces are kept regardless; see TraceLog.Finish).
func (tr *ReqTrace) Sampled() bool {
	if tr == nil {
		return false
	}
	return tr.sampled
}

// StartStage marks the stage as entered now. Re-entering a stage
// restarts its clock; unknown stages are ignored.
//
//lint:alloc-free per-stage timing on every traced request; nil path runs per untraced request
func (tr *ReqTrace) StartStage(s TraceStage) {
	if tr == nil {
		return
	}
	i := traceStageIndex(s)
	if i < 0 {
		return
	}
	tr.stageStart[i].Store(time.Since(tr.start).Nanoseconds() + 1)
}

// EndStage records the stage's duration since its StartStage. Without a
// prior StartStage it is a no-op.
//
//lint:alloc-free per-stage timing on every traced request; nil path runs per untraced request
func (tr *ReqTrace) EndStage(s TraceStage) {
	if tr == nil {
		return
	}
	i := traceStageIndex(s)
	if i < 0 {
		return
	}
	off := tr.stageStart[i].Load()
	if off == 0 {
		return
	}
	d := time.Since(tr.start).Nanoseconds() - (off - 1)
	if d < 0 {
		d = 0
	}
	tr.stageDur[i].Store(d + 1)
}

// SetCacheHit marks the request as served from the vector cache.
//
//lint:alloc-free disabled-path no-op pinned by the trace AllocsPerRun test
func (tr *ReqTrace) SetCacheHit() {
	if tr == nil {
		return
	}
	tr.cacheHit.Store(true)
}

// SetCoalesced marks the request as having joined an identical
// in-flight computation instead of running its own forward pass.
//
//lint:alloc-free disabled-path no-op pinned by the trace AllocsPerRun test
func (tr *ReqTrace) SetCoalesced() {
	if tr == nil {
		return
	}
	tr.coalesced.Store(true)
}

// SetGeneration records the snapshot generation that served the request.
//
//lint:alloc-free disabled-path no-op pinned by the trace AllocsPerRun test
func (tr *ReqTrace) SetGeneration(gen uint64) {
	if tr == nil {
		return
	}
	tr.gen.Store(gen)
}

// TraceRecord is the immutable, JSON-encodable snapshot of a finished
// request trace — one element of a transn.trace.serve/v1 dump.
type TraceRecord struct {
	// ID is the request's correlation ID (the X-Transn-Request-Id
	// value), client-supplied or server-generated.
	ID string `json:"id"`
	// Seq is the request's 1-based arrival index at this TraceLog.
	Seq uint64 `json:"seq"`
	// Endpoint is the serving endpoint label ("translate", "knn", ...).
	Endpoint string `json:"endpoint"`
	// Start is the wall-clock instant the trace began.
	Start time.Time `json:"start"`
	// TotalSeconds is the request's total traced duration.
	TotalSeconds float64 `json:"total_seconds"`
	// Stages maps visited stage names to their durations in seconds;
	// stages the request never entered are absent.
	Stages map[string]float64 `json:"stages,omitempty"`
	// Outcome classifies how the request ended.
	Outcome TraceOutcome `json:"outcome"`
	// Status is the HTTP status sent to the client.
	Status int `json:"status"`
	// Code is the transn.serve/v1 envelope code for non-2xx outcomes.
	Code string `json:"code,omitempty"`
	// CacheHit and Coalesced record how the request met the serve
	// fast paths.
	CacheHit  bool `json:"cache_hit"`
	Coalesced bool `json:"coalesced"`
	// Generation is the snapshot generation that served the request
	// (0 if the request never pinned a snapshot).
	Generation uint64 `json:"generation"`
	// Sampled reports head/rate sampling selected the request; Slow
	// reports it met the slow threshold. At least one is true for every
	// kept record.
	Sampled bool `json:"sampled"`
	Slow    bool `json:"slow"`
}

// TraceRing is a fixed-capacity concurrent ring buffer of trace
// records: writers overwrite the oldest entry once full, and Dump
// returns a consistent oldest-to-newest copy. A single mutex guards the
// ring — appends happen at most once per sampled request, far off any
// per-request critical path.
type TraceRing struct {
	mu    sync.Mutex
	buf   []TraceRecord
	total uint64 // records ever appended
}

// NewTraceRing returns a ring holding at most capacity records;
// capacity < 1 is clamped to 1.
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceRecord, 0, capacity)}
}

// Add appends a record, overwriting the oldest once the ring is full.
func (r *TraceRing) Add(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[int(r.total)%cap(r.buf)] = rec
	}
	r.total++
	r.mu.Unlock()
}

// Dump returns a copy of the ring's records, oldest first.
func (r *TraceRing) Dump() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	head := int(r.total) % cap(r.buf) // oldest element
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// Len returns the number of records currently held.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the ring's fixed capacity.
func (r *TraceRing) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Total returns how many records were ever appended (including ones
// since overwritten).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TraceConfig sizes a TraceLog. The zero value means "use the
// documented default" for every field; negative values disable the
// corresponding sampling dimension.
type TraceConfig struct {
	// SampleHead always samples the first SampleHead requests — the
	// cold-start story (cache fills, first coalesce storms) is
	// disproportionately informative. 0 means 64; negative disables
	// head sampling.
	SampleHead int
	// SampleRate samples every SampleRate-th request after the head —
	// deterministic arrival-order sampling, not random, so a replayed
	// workload samples the identical request set. 0 means 64 (~1.6%);
	// negative disables rate sampling. 1 samples everything.
	SampleRate int
	// RingSize bounds the sampled-trace ring. 0 means 256.
	RingSize int
	// SlowRingSize bounds the always-kept slow-trace ring. 0 means 64.
	SlowRingSize int
	// SlowThreshold is the total-duration gate for the slow ring: every
	// request at or above it is kept regardless of sampling. 0 means
	// 250ms; negative disables slow capture.
	SlowThreshold time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c TraceConfig) withDefaults() TraceConfig {
	if c.SampleHead == 0 {
		c.SampleHead = 64
	}
	if c.SampleRate == 0 {
		c.SampleRate = 64
	}
	if c.RingSize == 0 {
		c.RingSize = 256
	}
	if c.SlowRingSize == 0 {
		c.SlowRingSize = 64
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	return c
}

// TraceLog owns request-scoped tracing for a server: the sampling
// decision, the sampled-trace ring, and the always-kept slow ring. A
// nil *TraceLog disables tracing everywhere downstream — Begin returns
// a nil *ReqTrace whose methods no-op without allocating.
type TraceLog struct {
	cfg     TraceConfig
	seq     atomic.Uint64
	sampled *TraceRing
	slow    *TraceRing
}

// NewTraceLog builds a trace log with the given configuration (zero
// fields take the TraceConfig defaults).
func NewTraceLog(cfg TraceConfig) *TraceLog {
	cfg = cfg.withDefaults()
	return &TraceLog{
		cfg:     cfg,
		sampled: NewTraceRing(cfg.RingSize),
		slow:    NewTraceRing(cfg.SlowRingSize),
	}
}

// SlowThreshold returns the slow-ring gate duration (0 on nil).
func (tl *TraceLog) SlowThreshold() time.Duration {
	if tl == nil {
		return 0
	}
	return tl.cfg.SlowThreshold
}

// Begin starts tracing one request. The sampling decision is made here,
// deterministically from the arrival sequence number: the first
// SampleHead requests are sampled, then every SampleRate-th. Non-sampled
// requests are still traced (the slow ring needs complete timings to
// gate on), just not guaranteed a ring slot.
func (tl *TraceLog) Begin(id, endpoint string) *ReqTrace {
	if tl == nil {
		return nil
	}
	seq := tl.seq.Add(1)
	sampled := (tl.cfg.SampleHead > 0 && seq <= uint64(tl.cfg.SampleHead)) ||
		(tl.cfg.SampleRate > 0 && seq%uint64(tl.cfg.SampleRate) == 0)
	return &ReqTrace{
		id:       id,
		endpoint: endpoint,
		start:    time.Now(),
		seq:      seq,
		sampled:  sampled,
	}
}

// Finish snapshots the trace into an immutable record and routes it:
// sampled records to the sampled ring, records at or past the slow
// threshold to the slow ring (both, when both apply). Stages that were
// started but never ended — a forward pass still running when the
// timeout middleware gave up — are recorded at their duration so far,
// so a deadline-hit trace is still complete. Returns the record and
// whether it was kept in any ring; on a nil log or trace it returns a
// zero record without allocating.
func (tl *TraceLog) Finish(tr *ReqTrace, outcome TraceOutcome, status int, code string) (TraceRecord, bool) {
	if tl == nil || tr == nil {
		return TraceRecord{}, false
	}
	total := time.Since(tr.start)
	slow := tl.cfg.SlowThreshold > 0 && total >= tl.cfg.SlowThreshold
	if !tr.sampled && !slow {
		return TraceRecord{}, false
	}
	rec := TraceRecord{
		ID:           tr.id,
		Seq:          tr.seq,
		Endpoint:     tr.endpoint,
		Start:        tr.start,
		TotalSeconds: total.Seconds(),
		Stages:       make(map[string]float64, numTraceStages),
		Outcome:      outcome,
		Status:       status,
		Code:         code,
		CacheHit:     tr.cacheHit.Load(),
		Coalesced:    tr.coalesced.Load(),
		Generation:   tr.gen.Load(),
		Sampled:      tr.sampled,
		Slow:         slow,
	}
	for i, s := range TraceStages() {
		off := tr.stageStart[i].Load()
		if off == 0 {
			continue
		}
		d := tr.stageDur[i].Load()
		if d == 0 {
			// Started, never ended: record the duration so far.
			d = total.Nanoseconds() - (off - 1) + 1
			if d < 1 {
				d = 1
			}
		}
		rec.Stages[string(s)] = time.Duration(d - 1).Seconds()
	}
	if tr.sampled {
		tl.sampled.Add(rec)
	}
	if slow {
		tl.slow.Add(rec)
	}
	return rec, true
}

// Ring names of a TraceDump.
const (
	// TraceRingRequests names the head/rate-sampled ring.
	TraceRingRequests = "requests"
	// TraceRingSlow names the threshold-gated slow ring.
	TraceRingSlow = "slow"
)

// TraceDumpSchema identifies the JSON layout of a trace-ring dump (the
// /debug/requests and /debug/slow payloads). Consumers match on this
// string; any breaking change to the shape must bump the version
// suffix.
const TraceDumpSchema = "transn.trace.serve/v1"

// TraceDump is a schema-stable snapshot of one trace ring plus the
// sampling policy that filled it.
type TraceDump struct {
	// Schema is always TraceDumpSchema.
	Schema string `json:"schema"`
	// Ring is TraceRingRequests or TraceRingSlow.
	Ring string `json:"ring"`
	// Capacity is the ring's fixed size; len(Traces) never exceeds it.
	Capacity int `json:"capacity"`
	// Seen counts every request the TraceLog traced; Kept counts
	// records ever appended to this ring (including since-overwritten
	// ones), so Kept/Seen is the ring's effective sampling fraction.
	Seen uint64 `json:"seen"`
	Kept uint64 `json:"kept"`
	// SampleHead and SampleRate echo the sampling policy.
	SampleHead int `json:"sample_head"`
	SampleRate int `json:"sample_rate"`
	// SlowThresholdSeconds echoes the slow-ring gate.
	SlowThresholdSeconds float64 `json:"slow_threshold_seconds"`
	// Traces are the ring's records, oldest first.
	Traces []TraceRecord `json:"traces"`
}

// dump snapshots one ring under the given name.
func (tl *TraceLog) dump(ring string, r *TraceRing) *TraceDump {
	return &TraceDump{
		Schema:               TraceDumpSchema,
		Ring:                 ring,
		Capacity:             r.Cap(),
		Seen:                 tl.seq.Load(),
		Kept:                 r.Total(),
		SampleHead:           tl.cfg.SampleHead,
		SampleRate:           tl.cfg.SampleRate,
		SlowThresholdSeconds: tl.cfg.SlowThreshold.Seconds(),
		Traces:               r.Dump(),
	}
}

// DumpRequests snapshots the sampled ring (nil on a nil log).
func (tl *TraceLog) DumpRequests() *TraceDump {
	if tl == nil {
		return nil
	}
	return tl.dump(TraceRingRequests, tl.sampled)
}

// DumpSlow snapshots the slow ring (nil on a nil log).
func (tl *TraceLog) DumpSlow() *TraceDump {
	if tl == nil {
		return nil
	}
	return tl.dump(TraceRingSlow, tl.slow)
}

// WriteTraceDump writes the dump as indented JSON with a trailing
// newline — the exact bytes /debug/requests and /debug/slow serve and
// `transn checkreport` validates.
func WriteTraceDump(w io.Writer, d *TraceDump) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ValidateTraceDump checks that data is a well-formed
// transn.trace.serve/v1 document: the expected schema string, a known
// ring name, capacity respected, and every record internally sound
// (non-empty ID/endpoint, declared stage names and outcome, finite
// non-negative durations, kept-for-a-reason). Unknown extra fields are
// allowed — the schema is append-only within a version.
func ValidateTraceDump(data []byte) error {
	var d TraceDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("trace dump is not valid JSON: %w", err)
	}
	if d.Schema != TraceDumpSchema {
		return fmt.Errorf("trace dump schema %q, want %q", d.Schema, TraceDumpSchema)
	}
	if d.Ring != TraceRingRequests && d.Ring != TraceRingSlow {
		return fmt.Errorf("trace dump ring %q, want %q or %q", d.Ring, TraceRingRequests, TraceRingSlow)
	}
	if d.Capacity < 1 {
		return fmt.Errorf("trace dump capacity = %d, want >= 1", d.Capacity)
	}
	if len(d.Traces) > d.Capacity {
		return fmt.Errorf("trace dump holds %d traces over capacity %d", len(d.Traces), d.Capacity)
	}
	if uint64(len(d.Traces)) > d.Kept {
		return fmt.Errorf("trace dump holds %d traces but kept only %d", len(d.Traces), d.Kept)
	}
	// Negative thresholds encode "slow capture disabled"; anything
	// non-finite is corrupt.
	if math.IsNaN(d.SlowThresholdSeconds) || math.IsInf(d.SlowThresholdSeconds, 0) {
		return fmt.Errorf("trace dump slow_threshold_seconds is not finite")
	}
	known := map[string]bool{}
	for _, s := range TraceStages() {
		known[string(s)] = true
	}
	for i, rec := range d.Traces {
		if rec.ID == "" {
			return fmt.Errorf("trace %d has an empty id", i)
		}
		if rec.Endpoint == "" {
			return fmt.Errorf("trace %d (%s) has an empty endpoint", i, rec.ID)
		}
		if !traceOutcomeKnown(rec.Outcome) {
			return fmt.Errorf("trace %d (%s) has unknown outcome %q", i, rec.ID, rec.Outcome)
		}
		if rec.Status < 100 || rec.Status > 599 {
			return fmt.Errorf("trace %d (%s) has status %d outside 100..599", i, rec.ID, rec.Status)
		}
		if math.IsNaN(rec.TotalSeconds) || math.IsInf(rec.TotalSeconds, 0) || rec.TotalSeconds < 0 {
			return fmt.Errorf("trace %d (%s): total_seconds = %v, want finite and non-negative",
				i, rec.ID, rec.TotalSeconds)
		}
		if !rec.Sampled && !rec.Slow {
			return fmt.Errorf("trace %d (%s) is neither sampled nor slow; it should not have been kept", i, rec.ID)
		}
		for name, sec := range rec.Stages {
			if !known[name] {
				return fmt.Errorf("trace %d (%s): unknown stage %q", i, rec.ID, name)
			}
			if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
				return fmt.Errorf("trace %d (%s): stage %q = %v, want finite and non-negative",
					i, rec.ID, name, sec)
			}
		}
	}
	return nil
}

// Structured serving-log field keys (log/slog attributes). Every
// constant-string attribute key at a slog call site must be one of
// these — transnlint's schema-registry analyzer enforces it — so log
// pipelines can index fields without chasing renames.
const (
	// LogKeyRequestID carries the request correlation ID.
	LogKeyRequestID = "request_id"
	// LogKeyEndpoint carries the serving endpoint label.
	LogKeyEndpoint = "endpoint"
	// LogKeyMethod and LogKeyPath carry the HTTP request line.
	LogKeyMethod = "method"
	LogKeyPath   = "path"
	// LogKeyStatus carries the HTTP status sent to the client.
	LogKeyStatus = "status"
	// LogKeyOutcome carries the TraceOutcome classification.
	LogKeyOutcome = "outcome"
	// LogKeyCode carries the transn.serve/v1 envelope code on errors.
	LogKeyCode = "code"
	// LogKeyDurationMS carries the request duration in milliseconds.
	LogKeyDurationMS = "duration_ms"
	// LogKeyCacheHit and LogKeyCoalesced carry the fast-path flags.
	LogKeyCacheHit  = "cache_hit"
	LogKeyCoalesced = "coalesced"
	// LogKeyGeneration carries the serving snapshot generation.
	LogKeyGeneration = "generation"
	// LogKeyStage prefixes per-stage duration fields in slow-request
	// logs (grouped under LogKeyStages).
	LogKeyStages = "stages"
	// LogKeySlowThresholdMS carries the slow-log gate in milliseconds.
	LogKeySlowThresholdMS = "slow_threshold_ms"
	// LogKeyRule carries the name of an SLO watchdog rule.
	LogKeyRule = "rule"
	// LogKeyWindowSeconds carries the evaluation window a watchdog rule
	// judged (the actual covered span, not the configured one).
	LogKeyWindowSeconds = "window_seconds"
	// LogKeyObserved and LogKeyBudget carry a tripped rule's measured
	// value and the budget it violated.
	LogKeyObserved = "observed"
	LogKeyBudget   = "budget"
	// LogKeyAnomalyDir carries the directory an anomaly bundle was
	// captured into.
	LogKeyAnomalyDir = "anomaly_dir"
	// LogKeyError carries an error message on failure log lines.
	LogKeyError = "error"
)

// Structured serving-log levels, declared once so the access and slow
// logs keep stable, greppable severities.
const (
	// LogLevelAccess is the per-request access-log level.
	LogLevelAccess = slog.LevelInfo
	// LogLevelSlow is the slow-request log level.
	LogLevelSlow = slog.LevelWarn
)
