package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Route is an extra handler mounted on the debug server, letting
// callers attach endpoints obs itself cannot know about without an
// import cycle — cmd/transn mounts internal/diag's live convergence
// monitor at /debug/diagnostics this way.
type Route struct {
	Pattern string
	Handler http.Handler
}

// ServeDebug starts the debug HTTP endpoint for the run on addr
// (":0" picks a free port) and returns the server plus the bound
// address. Routes:
//
//	/metrics             JSON run report (live snapshot)
//	/debug/vars          expvar (Go runtime stats + anything published)
//	/debug/pprof/        CPU/heap/goroutine/... profiles (net/http/pprof)
//	/debug/diagnostics   live diagnostics, when the CLI mounts one (extra)
//
// The handlers are registered on a private mux — nothing leaks into
// http.DefaultServeMux — and the server runs on its own goroutine
// until Close/Shutdown. Both CLIs wire this behind -debug-addr. extra
// routes are mounted after the built-ins; their patterns must not
// collide with the routes above.
func (r *Run) ServeDebug(addr string, extra ...Route) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	r.MountDebug(mux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

// MountDebug registers ServeDebug's built-in routes (/metrics,
// /debug/vars, /debug/pprof/*) on an existing mux, for servers that own
// their mux — transnserve mounts them next to its API routes instead of
// running a second listener.
func (r *Run) MountDebug(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteReport(w, r.Report("live"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
