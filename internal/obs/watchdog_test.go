package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func f64(v float64) *float64 { return &v }
func i64(v int64) *int64     { return &v }

func TestParseWatchRules(t *testing.T) {
	good := []byte(`{"rules": [
		{"name": "p99", "window_seconds": 60, "max_p99_seconds": 0.05},
		{"name": "errors", "window_seconds": 300, "min_requests": 100, "max_error_rate": 0.01}
	]}`)
	cfg, err := ParseWatchRules(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Rules) != 2 || *cfg.Rules[0].MaxP99Seconds != 0.05 || *cfg.Rules[1].MinRequests != 100 {
		t.Fatalf("parsed rules wrong: %+v", cfg.Rules)
	}

	cases := []struct {
		name, data, want string
	}{
		{"not JSON", `{`, "watchdog rules"},
		{"unknown field", `{"rules": [{"name": "a", "window_seconds": 1, "max_p99_second": 0.1}]}`, "unknown field"},
		{"no rules", `{"rules": []}`, "no rules"},
		{"missing name", `{"rules": [{"window_seconds": 1, "max_p99_seconds": 0.1}]}`, "missing name"},
		{"duplicate name", `{"rules": [
			{"name": "a", "window_seconds": 1, "max_p99_seconds": 0.1},
			{"name": "a", "window_seconds": 2, "max_error_rate": 0.1}
		]}`, "declared twice"},
		{"bad window", `{"rules": [{"name": "a", "window_seconds": 0, "max_p99_seconds": 0.1}]}`, "window_seconds"},
		{"no budget", `{"rules": [{"name": "a", "window_seconds": 1}]}`, "no budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseWatchRules([]byte(tc.data))
			if err == nil {
				t.Fatal("bad rules parsed")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestJudge(t *testing.T) {
	now := time.Now()
	w := HistoryWindow{
		Seconds: 60, Samples: 10,
		Requests: 1000, Errors: 50, ErrorRate: 0.05,
		CacheLookups: 400, CacheHitRate: 0.5,
		P99Seconds:    0.2,
		MaxGoroutines: 300, MaxHeapBytes: 2 << 30,
	}
	cases := []struct {
		name     string
		rule     WatchRule
		wantCode string // empty means the rule must hold
	}{
		{"p99 over", WatchRule{Name: "r", MaxP99Seconds: f64(0.1)}, WatchCodeP99},
		{"p99 within", WatchRule{Name: "r", MaxP99Seconds: f64(0.5)}, ""},
		{"error rate over", WatchRule{Name: "r", MaxErrorRate: f64(0.01)}, WatchCodeErrorRate},
		{"error rate within", WatchRule{Name: "r", MaxErrorRate: f64(0.1)}, ""},
		{"hit rate under floor", WatchRule{Name: "r", MinCacheHitRate: f64(0.9)}, WatchCodeHitRate},
		{"hit rate above floor", WatchRule{Name: "r", MinCacheHitRate: f64(0.25)}, ""},
		{"goroutines over", WatchRule{Name: "r", MaxGoroutines: f64(100)}, WatchCodeGoroutines},
		{"heap over", WatchRule{Name: "r", MaxHeapBytes: f64(1 << 30)}, WatchCodeHeap},
		{"min requests gates", WatchRule{Name: "r", MinRequests: i64(10_000), MaxP99Seconds: f64(0.001)}, ""},
		// Several broken budgets report the first in declaration order.
		{"deterministic precedence", WatchRule{Name: "r", MaxErrorRate: f64(0.01), MaxP99Seconds: f64(0.1)}, WatchCodeP99},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev, violated := judge(tc.rule, w, now)
			if (tc.wantCode != "") != violated {
				t.Fatalf("violated = %v, want %v", violated, tc.wantCode != "")
			}
			if violated && ev.Code != tc.wantCode {
				t.Fatalf("code = %q, want %q", ev.Code, tc.wantCode)
			}
			if violated && (ev.Rule != "r" || ev.UnixMS != now.UnixMilli()) {
				t.Fatalf("event metadata wrong: %+v", ev)
			}
		})
	}

	// A zero-request window never judges error rate (0/0 is not a burn).
	empty := HistoryWindow{Seconds: 60}
	if _, violated := judge(WatchRule{Name: "r", MaxErrorRate: f64(0)}, empty, now); violated {
		t.Fatal("error-rate rule tripped on an empty window")
	}
	// A zero-lookup window never judges the hit-rate floor.
	if _, violated := judge(WatchRule{Name: "r", MinCacheHitRate: f64(0.99)}, empty, now); violated {
		t.Fatal("hit-rate rule tripped with no cache lookups")
	}
}

func TestNewWatchdogValidation(t *testing.T) {
	rules := &WatchConfig{Rules: []WatchRule{{Name: "r", WindowSeconds: 1, MaxGoroutines: f64(1)}}}
	if _, err := NewWatchdog(WatchdogConfig{Rules: rules}); err == nil {
		t.Fatal("watchdog accepted nil history")
	}
	h := NewHistory(NewRegistry(), HistoryConfig{FineCapacity: 4, CoarseCapacity: 4})
	if _, err := NewWatchdog(WatchdogConfig{History: h}); err == nil {
		t.Fatal("watchdog accepted nil rules")
	}
	if _, err := NewWatchdog(WatchdogConfig{History: h, Rules: &WatchConfig{}}); err == nil {
		t.Fatal("watchdog accepted empty rules")
	}
}

func TestWatchdogTripAndRecover(t *testing.T) {
	reg := NewRegistry()
	gor := reg.Gauge(MetricRuntimeGoroutines)
	h := NewHistory(reg, HistoryConfig{FineCapacity: 4, CoarseCapacity: 4})

	var logBuf bytes.Buffer
	var hooked []WatchEvent
	trips := reg.Counter(MetricWatchTrips)
	degraded := reg.Gauge(MetricWatchDegraded)
	wd, err := NewWatchdog(WatchdogConfig{
		History: h,
		Rules: &WatchConfig{Rules: []WatchRule{
			{Name: "goroutine-ceiling", WindowSeconds: 3600, MaxGoroutines: f64(10)},
		}},
		Logger:       slog.New(slog.NewTextHandler(&logBuf, nil)),
		Trips:        trips,
		DegradedRule: degraded,
		OnTrip:       func(ev WatchEvent) { hooked = append(hooked, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Not enough samples: nothing to judge, nothing trips.
	if evs := wd.Evaluate(time.Now()); len(evs) != 0 {
		t.Fatalf("tripped with an empty history: %+v", evs)
	}

	gor.Set(100)
	h.sampleFine()
	h.sampleFine()
	evs := wd.Evaluate(time.Now())
	if len(evs) != 1 || evs[0].Code != WatchCodeGoroutines || evs[0].Observed != 100 || evs[0].Budget != 10 {
		t.Fatalf("trip events = %+v, want one goroutine-ceiling violation 100>10", evs)
	}
	if got := wd.Degraded(); len(got) != 1 || got[0] != "goroutine-ceiling" {
		t.Fatalf("Degraded() = %v", got)
	}
	if dv := wd.DegradedEvents(); len(dv) != 1 || dv[0].Code != WatchCodeGoroutines {
		t.Fatalf("DegradedEvents() = %+v", dv)
	}
	if trips.Value() != 1 || degraded.Value() != 1 {
		t.Fatalf("trips=%d degraded=%v, want 1/1", trips.Value(), degraded.Value())
	}
	if len(hooked) != 1 || hooked[0].Rule != "goroutine-ceiling" {
		t.Fatalf("OnTrip hook saw %+v", hooked)
	}
	if !strings.Contains(logBuf.String(), "slo rule tripped") {
		t.Fatalf("no WARN in log: %q", logBuf.String())
	}

	// Still violated: stays degraded silently, no re-trip.
	h.sampleFine()
	if evs := wd.Evaluate(time.Now()); len(evs) != 0 {
		t.Fatalf("already-degraded rule re-tripped: %+v", evs)
	}
	if trips.Value() != 1 {
		t.Fatalf("trips=%d after silent evaluation, want 1", trips.Value())
	}

	// Recovery: overwrite the whole (capacity 4) ring with healthy samples.
	gor.Set(2)
	for i := 0; i < 4; i++ {
		h.sampleFine()
	}
	logBuf.Reset()
	if evs := wd.Evaluate(time.Now()); len(evs) != 0 {
		t.Fatalf("recovery produced trip events: %+v", evs)
	}
	if got := wd.Degraded(); len(got) != 0 {
		t.Fatalf("rule still degraded after recovery: %v", got)
	}
	if degraded.Value() != 0 {
		t.Fatalf("degraded gauge = %v after recovery, want 0", degraded.Value())
	}
	if !strings.Contains(logBuf.String(), "slo rule recovered") {
		t.Fatalf("no recovery INFO in log: %q", logBuf.String())
	}

	// Nil watchdog surfaces are safe.
	var nilWd *Watchdog
	if nilWd.Degraded() != nil || nilWd.DegradedEvents() != nil {
		t.Fatal("nil watchdog reported degradation")
	}
	nilWd.Start()()
}

func TestWatchdogStartStop(t *testing.T) {
	reg := NewRegistry()
	gor := reg.Gauge(MetricRuntimeGoroutines)
	gor.Set(100)
	h := NewHistory(reg, HistoryConfig{FineCapacity: 8, CoarseCapacity: 4})
	h.sampleFine()
	h.sampleFine()
	wd, err := NewWatchdog(WatchdogConfig{
		History: h,
		Rules: &WatchConfig{Rules: []WatchRule{
			{Name: "g", WindowSeconds: 3600, MaxGoroutines: f64(10)},
		}},
		Interval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := wd.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(wd.Degraded()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker-driven watchdog never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
