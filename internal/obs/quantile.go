package obs

import "math"

// Quantile returns an interpolated estimate of the q-quantile (q in
// [0, 1]; out-of-range values are clamped) from the snapshot's bucket
// counts. The estimate assumes samples are uniformly distributed within
// each bucket and interpolates linearly between the bucket's bounds —
// the same model Prometheus' histogram_quantile uses — so its error is
// bounded by the bucket width around the true quantile.
//
// Edge cases, pinned by TestQuantile*:
//   - An empty histogram (Count == 0) returns NaN: there is no sample
//     to estimate from, and callers must not confuse "no data" with a
//     zero-latency result.
//   - Mass in the first bucket interpolates from min(0, bound) to the
//     bucket's upper bound; for latency-style non-negative histograms
//     that is the [0, bounds[0]] range.
//   - Mass in the overflow bucket cannot be interpolated (the bucket
//     has no upper bound), so any quantile landing there returns the
//     highest finite bound — a deliberate underestimate that callers
//     should read as "at least this much"; pair it with an explicit
//     max when the tail matters.
//   - A histogram registered with no bounds has a single (overflow)
//     bucket and no interpolation anchor at all; it returns the mean
//     (Sum/Count), the only location estimate the data supports.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Counts) == 0 {
		return math.NaN()
	}
	if len(s.Bounds) == 0 {
		return s.Sum / float64(s.Count)
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		below := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := s.Bounds[i]
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		} else if upper < 0 {
			// All-negative first bucket: zero is above the bucket, so
			// there is no interpolation anchor below it.
			lower = upper
		}
		frac := 0.0
		if c > 0 {
			frac = (rank - below) / float64(c)
		}
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	// Unreachable with consistent counts (cum == Count >= rank by the
	// last bucket); guard for skewed concurrent snapshots.
	return s.Bounds[len(s.Bounds)-1]
}
