package obs

import (
	"math"
	"sync"
	"testing"
)

// Concurrent shard accumulation must merge to exact totals: counters
// are integer atomics and LocalHist merges integer counts, so no
// precision is lost no matter how shards interleave. This test runs
// under -race in CI.
func TestRegistryConcurrentMergeExact(t *testing.T) {
	reg := NewRegistry()
	const shards = 8
	const perShard = 10000
	c := reg.Counter("pairs")
	h := reg.Histogram("loss", []float64{0.5, 1, 2})
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Shard-local accumulation, merged once at the boundary —
			// the discipline the training loops use.
			var local int64
			lh := h.Local()
			for i := 0; i < perShard; i++ {
				local++
				lh.Observe(float64(i%4) * 0.5) // 0, 0.5, 1, 1.5
			}
			c.Add(local)
			lh.Flush()
		}(s)
	}
	wg.Wait()

	if got, want := c.Value(), int64(shards*perShard); got != want {
		t.Fatalf("counter merged to %d, want %d", got, want)
	}
	snap := h.Snapshot()
	if snap.Count != shards*perShard {
		t.Fatalf("histogram count %d, want %d", snap.Count, shards*perShard)
	}
	// Buckets (bounds 0.5, 1, 2 + overflow): 0 and 0.5 land in bucket 0,
	// 1 in bucket 1, 1.5 in bucket 2.
	wantCounts := []int64{shards * perShard / 2, shards * perShard / 4, shards * perShard / 4, 0}
	for i, w := range wantCounts {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d count %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	// Sum of each shard: perShard/4 * (0 + 0.5 + 1 + 1.5).
	wantSum := float64(shards) * float64(perShard) / 4 * 3
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Fatalf("histogram sum %v, want %v", snap.Sum, wantSum)
	}
}

// Direct atomic Observe must agree with the Local/Flush path.
func TestHistogramObserveMatchesLocal(t *testing.T) {
	bounds := []float64{1, 10}
	a := newHistogram(bounds)
	b := newHistogram(bounds)
	lb := b.Local()
	vals := []float64{0.5, 1, 1.0001, 5, 10, 11, -3}
	for _, v := range vals {
		a.Observe(v)
		lb.Observe(v)
	}
	lb.Flush()
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.Count != sb.Count || sa.Sum != sb.Sum {
		t.Fatalf("count/sum mismatch: %+v vs %+v", sa, sb)
	}
	for i := range sa.Counts {
		if sa.Counts[i] != sb.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, sa.Counts[i], sb.Counts[i])
		}
	}
}

// Flush must reset local state so a LocalHist is reusable per stage.
func TestLocalHistFlushResets(t *testing.T) {
	h := newHistogram([]float64{1})
	l := h.Local()
	l.Observe(0.5)
	l.Flush()
	l.Flush() // second flush adds nothing
	l.Observe(2)
	l.Flush()
	s := h.Snapshot()
	if s.Count != 2 || s.Counts[0] != 1 || s.Counts[1] != 1 {
		t.Fatalf("unexpected snapshot after reuse: %+v", s)
	}
}

// Nil registry and nil metric receivers must be safe no-ops so
// instrumented code paths never branch on telemetry being enabled.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Gauge("y").Set(2)
	hg := reg.Histogram("z", []float64{1})
	hg.Observe(3)
	hg.Local().Observe(4)
	if s := reg.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}

	var c *Counter
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.Local().Observe(1)
	h.Local().Flush()

	var run *Run
	run.RecordPool(0, []WorkerSample{{Worker: 0, Busy: 1}})
	if run.WorkerSummaries() != nil {
		t.Fatal("nil run worker summaries")
	}
	if run.Elapsed() != 0 {
		t.Fatal("nil run elapsed")
	}
}

func TestGaugeSetAndRegistryIdempotent(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("loss")
	g.Set(0.25)
	if reg.Gauge("loss") != g {
		t.Fatal("second Gauge lookup returned a different metric")
	}
	if v := reg.Gauge("loss").Value(); v != 0.25 {
		t.Fatalf("gauge value %v, want 0.25", v)
	}
	h := reg.Histogram("h", []float64{1, 2})
	if reg.Histogram("h", []float64{99}) != h {
		t.Fatal("second Histogram lookup returned a different metric")
	}
}

// TestHistogramBucketContract pins the bucket-assignment contract
// documented on Histogram: inclusive upper bounds, -Inf in the first
// bucket, +Inf and NaN in the overflow bucket, and non-finite samples
// counted but excluded from Sum. Both the atomic and the shard-local
// paths must agree.
func TestHistogramBucketContract(t *testing.T) {
	bounds := []float64{1, 2, 4}
	inf := math.Inf(1)
	cases := []struct {
		name   string
		v      float64
		bucket int  // index into counts (len(bounds)+1 buckets)
		inSum  bool // contributes to Sum
	}{
		{"below all bounds", 0.5, 0, true},
		{"exactly on first bound", 1, 0, true},
		{"between bounds", 1.5, 1, true},
		{"exactly on middle bound", 2, 1, true},
		{"exactly on last bound", 4, 2, true},
		{"just above last bound", 4.0000001, 3, true},
		{"overflow", 100, 3, true},
		{"negative", -3, 0, true},
		{"-Inf", math.Inf(-1), 0, false},
		{"+Inf", inf, 3, false},
		{"NaN", math.NaN(), 3, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, mode := range []string{"atomic", "local"} {
				h := newHistogram(bounds)
				switch mode {
				case "atomic":
					h.Observe(tc.v)
				case "local":
					l := h.Local()
					l.Observe(tc.v)
					l.Flush()
				}
				s := h.Snapshot()
				if s.Count != 1 {
					t.Fatalf("%s: count = %d, want 1", mode, s.Count)
				}
				for i, c := range s.Counts {
					want := int64(0)
					if i == tc.bucket {
						want = 1
					}
					if c != want {
						t.Fatalf("%s: bucket %d count = %d, want %d (value %v)",
							mode, i, c, want, tc.v)
					}
				}
				wantSum := 0.0
				if tc.inSum {
					wantSum = tc.v
				}
				if s.Sum != wantSum {
					t.Fatalf("%s: sum = %v, want %v", mode, s.Sum, wantSum)
				}
			}
		})
	}
}

// TestHistogramNonFiniteStreamStaysEncodable feeds a histogram a mix of
// finite and non-finite samples and checks the snapshot still has a
// finite sum (so run reports remain JSON-encodable) while every sample
// is accounted for in the bucket counts.
func TestHistogramNonFiniteStreamStaysEncodable(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	for _, v := range []float64{0.5, math.NaN(), 1.5, math.Inf(1), math.Inf(-1), 3} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	if got, want := s.Sum, 0.5+1.5+3; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// -Inf in bucket 0 alongside 0.5; NaN and +Inf in overflow with 3.
	if s.Counts[0] != 2 || s.Counts[1] != 1 || s.Counts[2] != 3 {
		t.Fatalf("bucket counts = %v, want [2 1 3]", s.Counts)
	}
}
