package obs

import (
	"math"
	"testing"
)

// uniformHist builds a histogram with the given bounds and n samples
// spread uniformly over (0, top].
func uniformHist(bounds []float64, n int, top float64) *Histogram {
	h := newHistogram(bounds)
	for i := 1; i <= n; i++ {
		h.Observe(top * float64(i) / float64(n))
	}
	return h
}

func TestQuantileUniform(t *testing.T) {
	// 100 samples uniform over (0, 0.5] with bucket width 0.1: 20 per
	// bucket, so interpolated quantiles are exact for the uniform model.
	s := uniformHist([]float64{0.1, 0.2, 0.3, 0.4, 0.5}, 100, 0.5).Snapshot()
	cases := []struct{ q, want float64 }{
		{0.5, 0.25},
		{0.9, 0.45},
		{0.99, 0.495},
		{1.0, 0.5},
	}
	for _, tc := range cases {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// Every sample lands in the (0.2, 0.3] bucket: estimates must stay
	// inside that bucket and spread linearly across it.
	h := newHistogram([]float64{0.1, 0.2, 0.3, 0.4, 0.5})
	for i := 0; i < 10; i++ {
		h.Observe(0.25)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("p50 = %v, want 0.25", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-0.299) > 1e-12 {
		t.Errorf("p99 = %v, want 0.299", got)
	}
	if lo, hi := s.Quantile(0), s.Quantile(1); lo < 0.2 || hi > 0.3 {
		t.Errorf("estimates [%v, %v] escape the (0.2, 0.3] bucket", lo, hi)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Samples beyond the last bound land in the unbounded overflow
	// bucket; quantiles there report the highest finite bound.
	h := newHistogram([]float64{0.1, 0.5})
	h.Observe(10)
	h.Observe(20)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 0.5 {
			t.Errorf("Quantile(%v) = %v, want 0.5 (last finite bound)", q, got)
		}
	}
	// Mixed mass: the median stays interpolated, only the tail clips.
	h2 := newHistogram([]float64{0.1, 0.5})
	for i := 0; i < 9; i++ {
		h2.Observe(0.05)
	}
	h2.Observe(10)
	s2 := h2.Snapshot()
	if got := s2.Quantile(0.5); got <= 0 || got > 0.1 {
		t.Errorf("p50 = %v, want within (0, 0.1]", got)
	}
	if got := s2.Quantile(0.99); got != 0.5 {
		t.Errorf("p99 = %v, want 0.5 (overflow clip)", got)
	}
}

func TestQuantileEmptyAndNoBounds(t *testing.T) {
	if got := newHistogram([]float64{1, 2}).Snapshot().Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty histogram Quantile = %v, want NaN", got)
	}
	// A boundless histogram has one overflow bucket and no anchor: the
	// mean is the only supportable estimate.
	h := newHistogram(nil)
	h.Observe(2)
	h.Observe(4)
	if got := h.Snapshot().Quantile(0.5); got != 3 {
		t.Errorf("boundless Quantile = %v, want mean 3", got)
	}
}

func TestQuantileClampsAndFirstBucket(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	s := h.Snapshot()
	// The first bucket interpolates from 0, and out-of-range q clamps.
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := s.Quantile(-3); got != s.Quantile(0) {
		t.Errorf("Quantile(-3) = %v, want clamp to Quantile(0) = %v", got, s.Quantile(0))
	}
	if got := s.Quantile(7); got != s.Quantile(1) {
		t.Errorf("Quantile(7) = %v, want clamp to Quantile(1) = %v", got, s.Quantile(1))
	}
}

func TestQuantileMonotone(t *testing.T) {
	s := uniformHist([]float64{0.01, 0.05, 0.1, 0.25, 1, 2.5}, 137, 3).Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v; quantiles must be monotone", q, got, prev)
		}
		prev = got
	}
}
