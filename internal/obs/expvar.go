package obs

import "expvar"

// PublishExpvar exposes the run under the given expvar name (shown at
// /debug/vars) as a live JSON object: the registry snapshot plus stage
// summaries, re-evaluated on every scrape. expvar's namespace is global
// and write-once, so if the name is already taken — a previous run in
// the same process — this is a no-op and the first publisher keeps the
// name; use distinct names for concurrent runs.
func (r *Run) PublishExpvar(name string) {
	if r == nil || name == "" {
		return
	}
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		return struct {
			Snapshot
			Stages  []StageSummary  `json:"stages"`
			Workers []WorkerSummary `json:"workers,omitempty"`
		}{r.Reg.Snapshot(), r.Trace.Stages(), r.WorkerSummaries()}
	}))
}
