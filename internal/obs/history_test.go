package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// historyBounds is a small latency bucket layout for tests.
var historyBounds = []float64{0.01, 0.1, 1}

func TestResetSafeDelta(t *testing.T) {
	cases := []struct {
		prev, cur, want int64
	}{
		{0, 0, 0},
		{0, 5, 5},
		{5, 12, 7},
		{12, 3, 3},  // reset: best estimate is the new cumulative value
		{100, 0, 0}, // reset to zero
	}
	for _, c := range cases {
		if got := resetSafeDelta(c.prev, c.cur); got != c.want {
			t.Errorf("resetSafeDelta(%d, %d) = %d, want %d", c.prev, c.cur, got, c.want)
		}
	}
}

func TestWindowHistDelta(t *testing.T) {
	dst := HistSnapshot{Bounds: historyBounds, Counts: make([]int64, 4)}

	// Normal growth: per-bucket and total deltas.
	windowHistDelta(&dst, []int64{3, 5, 0, 1}, []int64{1, 2, 0, 0}, 9, 3, 4.5, 1.5)
	if dst.Count != 6 || dst.Sum != 3 {
		t.Fatalf("growth delta: count=%d sum=%v, want 6, 3", dst.Count, dst.Sum)
	}
	for i, want := range []int64{2, 3, 0, 1} {
		if dst.Counts[i] != want {
			t.Fatalf("bucket %d delta = %d, want %d", i, dst.Counts[i], want)
		}
	}

	// Counter reset mid-window: the newer cumulative reading wins wholesale.
	windowHistDelta(&dst, []int64{2, 1, 0, 0}, []int64{5, 5, 1, 1}, 3, 12, 0.7, 9)
	if dst.Count != 3 || dst.Sum != 0.7 {
		t.Fatalf("reset delta: count=%d sum=%v, want 3, 0.7", dst.Count, dst.Sum)
	}
	if dst.Counts[0] != 2 || dst.Counts[1] != 1 {
		t.Fatalf("reset delta buckets = %v, want cur reading [2 1 0 0]", dst.Counts)
	}

	// Negative sum with grown count (sum reset alone): fall back to cur sum.
	windowHistDelta(&dst, []int64{6, 5, 1, 1}, []int64{5, 5, 1, 1}, 13, 12, 0.2, 9)
	if dst.Sum != 0.2 {
		t.Fatalf("negative-sum fallback: sum=%v, want 0.2", dst.Sum)
	}
}

// driveHistory builds a registry with one counter, gauge and histogram
// and a history over them with the given fine capacity.
func driveHistory(t *testing.T, fineCap int) (*Registry, *History) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("serve.requests")
	reg.Gauge("runtime.goroutines")
	reg.Histogram("serve.latency_seconds", historyBounds)
	h := NewHistory(reg, HistoryConfig{FineCapacity: fineCap, CoarseCapacity: 4})
	return reg, h
}

func TestHistoryEmptyRingDump(t *testing.T) {
	_, h := driveHistory(t, 8)
	d := h.Dump()
	if err := CheckHistoryDump(d); err != nil {
		t.Fatalf("empty dump invalid: %v", err)
	}
	fine := d.Resolutions[0]
	if fine.Taken != 0 || len(fine.TimesUnixMS) != 0 {
		t.Fatalf("empty ring dump has samples: taken=%d n=%d", fine.Taken, len(fine.TimesUnixMS))
	}
	if len(fine.Counters["serve.requests"]) != 0 {
		t.Fatal("empty ring produced counter points")
	}
	if _, ok := h.Window(60); ok {
		t.Fatal("Window reported ok over an empty ring")
	}
}

func TestHistoryPartialFirstWindow(t *testing.T) {
	reg, h := driveHistory(t, 8)
	reg.Counter("serve.requests").Add(7)
	h.sampleFine()
	if _, ok := h.Window(60); ok {
		t.Fatal("Window reported ok with a single sample (no delta exists)")
	}
	d := h.Dump()
	fine := d.Resolutions[0]
	if got := fine.Counters["serve.requests"]; len(got) != 1 || got[0] != 7 {
		t.Fatalf("counters = %v, want [7]", got)
	}
	// Element 0 covers an unknown partial window: rate must be zero.
	if got := fine.Rates["serve.requests"]; len(got) != 1 || got[0] != 0 {
		t.Fatalf("rates = %v, want [0]", got)
	}
	if err := CheckHistoryDump(d); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryDumpSeries(t *testing.T) {
	reg, h := driveHistory(t, 8)
	c := reg.Counter("serve.requests")
	g := reg.Gauge("runtime.goroutines")
	hist := reg.Histogram("serve.latency_seconds", historyBounds)

	g.Set(3)
	h.sampleFine()
	c.Add(10)
	g.Set(5)
	for i := 0; i < 4; i++ {
		hist.Observe(0.05)
	}
	h.sampleFine()
	c.Add(2)
	h.sampleFine()

	d := h.Dump()
	if err := CheckHistoryDump(d); err != nil {
		t.Fatal(err)
	}
	fine := d.Resolutions[0]
	if want := []int64{0, 10, 12}; !equalInt64(fine.Counters["serve.requests"], want) {
		t.Fatalf("counter series = %v, want %v", fine.Counters["serve.requests"], want)
	}
	rates := fine.Rates["serve.requests"]
	if rates[0] != 0 || rates[1] <= 0 || rates[2] <= 0 {
		t.Fatalf("rates = %v, want [0, >0, >0]", rates)
	}
	if gs := fine.Gauges["runtime.goroutines"]; gs[0] != 3 || gs[1] != 5 || gs[2] != 5 {
		t.Fatalf("gauge series = %v, want [3 5 5]", gs)
	}
	q, ok := fine.Quantiles["serve.latency_seconds"]
	if !ok {
		t.Fatal("no quantile series for the tracked histogram")
	}
	if !equalInt64(q.Count, []int64{0, 4, 0}) {
		t.Fatalf("quantile counts = %v, want [0 4 0]", q.Count)
	}
	if q.P99[1] <= 0 || q.P99[1] > 0.1 {
		t.Fatalf("windowed p99 = %v, want within (0, 0.1] for 0.05s observations", q.P99[1])
	}
	if q.P99[0] != 0 || q.P99[2] != 0 {
		t.Fatalf("empty-window quantiles = %v/%v, want 0", q.P99[0], q.P99[2])
	}

	// The serialized form round-trips through the validator.
	var buf bytes.Buffer
	if err := WriteHistoryDump(&buf, d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateHistoryDump(buf.Bytes()); err != nil {
		t.Fatalf("serialized dump invalid: %v", err)
	}
}

func TestHistoryCounterResetMidWindow(t *testing.T) {
	reg, h := driveHistory(t, 8)
	c := reg.Counter("serve.requests")
	c.Add(100)
	h.sampleFine()
	// Simulate a restart: the cumulative value drops to 3.
	c.Add(-97)
	h.sampleFine()
	d := h.Dump()
	if err := CheckHistoryDump(d); err != nil {
		t.Fatalf("reset window produced an invalid dump: %v", err)
	}
	rates := d.Resolutions[0].Rates["serve.requests"]
	if rates[1] < 0 {
		t.Fatalf("reset window rate = %v, want >= 0 (reset-safe)", rates[1])
	}
}

func TestHistoryWraparoundOracle(t *testing.T) {
	reg, h := driveHistory(t, 5)
	c := reg.Counter("serve.requests")
	// Oracle: the full cumulative sequence, appended per sample.
	var oracle []int64
	for i := 0; i < 12; i++ {
		c.Add(1)
		oracle = append(oracle, c.Value())
		h.sampleFine()
	}
	d := h.Dump()
	if err := CheckHistoryDump(d); err != nil {
		t.Fatal(err)
	}
	fine := d.Resolutions[0]
	if fine.Taken != 12 || fine.Capacity != 5 {
		t.Fatalf("taken=%d capacity=%d, want 12, 5", fine.Taken, fine.Capacity)
	}
	want := oracle[len(oracle)-5:] // the ring keeps the newest 5, oldest first
	if !equalInt64(fine.Counters["serve.requests"], want) {
		t.Fatalf("wrapped series = %v, want %v", fine.Counters["serve.requests"], want)
	}
	for i := 1; i < len(fine.TimesUnixMS); i++ {
		if fine.TimesUnixMS[i] < fine.TimesUnixMS[i-1] {
			t.Fatal("wrapped dump times not oldest-first")
		}
	}
}

func TestHistoryWindowAggregates(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.Counter(MetricServeRequests)
	errs := reg.Counter(MetricServeErrors)
	hits := reg.Counter(MetricServeCacheHits)
	misses := reg.Counter(MetricServeCacheMisses)
	lat := reg.Histogram(MetricServeLatency, historyBounds)
	gor := reg.Gauge(MetricRuntimeGoroutines)
	heap := reg.Gauge(MetricRuntimeHeapAlloc)
	h := NewHistory(reg, HistoryConfig{FineCapacity: 16, CoarseCapacity: 4})

	gor.Set(50)
	heap.Set(1 << 20)
	h.sampleFine()
	reqs.Add(10)
	errs.Add(2)
	hits.Add(6)
	misses.Add(2)
	for i := 0; i < 10; i++ {
		lat.Observe(0.05)
	}
	gor.Set(20)
	h.sampleFine()

	w, ok := h.Window(3600)
	if !ok {
		t.Fatal("Window not ok with two samples")
	}
	if w.Samples != 2 {
		t.Fatalf("Samples = %d, want 2", w.Samples)
	}
	if w.Requests != 10 || w.Errors != 2 {
		t.Fatalf("Requests/Errors = %d/%d, want 10/2", w.Requests, w.Errors)
	}
	if w.ErrorRate != 0.2 {
		t.Fatalf("ErrorRate = %v, want 0.2", w.ErrorRate)
	}
	if w.CacheLookups != 8 || w.CacheHitRate != 0.75 {
		t.Fatalf("CacheLookups/HitRate = %d/%v, want 8/0.75", w.CacheLookups, w.CacheHitRate)
	}
	if w.P99Seconds <= 0 || w.P99Seconds > 0.1 {
		t.Fatalf("P99Seconds = %v, want within (0, 0.1]", w.P99Seconds)
	}
	if w.MaxGoroutines != 50 {
		t.Fatalf("MaxGoroutines = %v, want the window max 50", w.MaxGoroutines)
	}
	if w.MaxHeapBytes != 1<<20 {
		t.Fatalf("MaxHeapBytes = %v, want %d", w.MaxHeapBytes, 1<<20)
	}
}

// TestHistoryWraparoundHammer drives 12 concurrent metric writers
// against a sampling/dumping reader; under -race this pins the
// atomic-load sampling discipline, and every dump must stay valid with
// monotone counter series.
func TestHistoryWraparoundHammer(t *testing.T) {
	reg, h := driveHistory(t, 7)
	c := reg.Counter("serve.requests")
	g := reg.Gauge("runtime.goroutines")
	hist := reg.Histogram("serve.latency_seconds", historyBounds)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Add(1)
				g.Set(float64(i*1000 + j))
				hist.Observe(0.02)
			}
		}(i)
	}
	for round := 0; round < 200; round++ {
		h.sampleFine()
		if round%20 != 0 {
			continue
		}
		d := h.Dump()
		if err := CheckHistoryDump(d); err != nil {
			t.Fatalf("round %d: concurrent dump invalid: %v", round, err)
		}
		series := d.Resolutions[0].Counters["serve.requests"]
		for i := 1; i < len(series); i++ {
			if series[i] < series[i-1] {
				t.Fatalf("round %d: monotone counter went backwards: %v", round, series)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestHistorySampleZeroAlloc(t *testing.T) {
	reg, h := driveHistory(t, 300)
	reg.Counter("serve.requests").Add(5)
	reg.Histogram("serve.latency_seconds", historyBounds).Observe(0.05)
	// Warm both rings, then pin the steady-state tick allocation.
	h.sampleFine()
	if allocs := testing.AllocsPerRun(100, h.sampleFine); allocs != 0 {
		t.Fatalf("sample tick allocates %v objects per run, want 0", allocs)
	}
}

func TestHistoryStartStop(t *testing.T) {
	reg, h := driveHistory(t, 64)
	reg.Counter("serve.requests").Add(1)
	hFast := NewHistory(reg, HistoryConfig{
		FineInterval: 2 * time.Millisecond, FineCapacity: 64,
		CoarseInterval: 5 * time.Millisecond, CoarseCapacity: 16,
	})
	stop := hFast.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		d := hFast.Dump()
		if d.Resolutions[0].Taken >= 3 && d.Resolutions[1].Taken >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler took no ticker-driven samples within 2s")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	taken := hFast.Dump().Resolutions[0].Taken
	time.Sleep(10 * time.Millisecond)
	if got := hFast.Dump().Resolutions[0].Taken; got != taken {
		t.Fatalf("sampler kept running after stop: taken %d -> %d", taken, got)
	}

	_ = h // plain recorder unused beyond construction
	var nilH *History
	nilH.Start()() // nil recorder yields a no-op stop
	if nilH.Dump() != nil {
		t.Fatal("nil history dumped a document")
	}
}

func TestCheckHistoryDumpCorruption(t *testing.T) {
	reg, h := driveHistory(t, 8)
	c := reg.Counter("serve.requests")
	hist := reg.Histogram("serve.latency_seconds", historyBounds)
	for i := 0; i < 3; i++ {
		c.Add(4)
		hist.Observe(0.05)
		h.sampleFine()
		h.sampleCoarse()
	}
	pristine := h.Dump()
	if err := CheckHistoryDump(pristine); err != nil {
		t.Fatalf("pristine dump invalid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(d *HistoryDump)
		want   string
	}{
		{"nil dump is handled by caller", nil, "history dump is nil"},
		{"wrong schema", func(d *HistoryDump) { d.Schema = "transn.history/v2" }, "schema"},
		{"missing resolution", func(d *HistoryDump) { d.Resolutions = d.Resolutions[:1] }, "resolutions"},
		{"swapped resolutions", func(d *HistoryDump) {
			d.Resolutions[0], d.Resolutions[1] = d.Resolutions[1], d.Resolutions[0]
		}, "in order"},
		{"bad interval", func(d *HistoryDump) { d.Resolutions[0].IntervalSeconds = 0 }, "interval_seconds"},
		{"bad capacity", func(d *HistoryDump) { d.Resolutions[0].Capacity = 0 }, "capacity"},
		{"over capacity", func(d *HistoryDump) { d.Resolutions[0].Capacity = 1 }, "over capacity"},
		{"taken below samples", func(d *HistoryDump) { d.Resolutions[0].Taken = 1 }, "taken"},
		{"offsets length", func(d *HistoryDump) {
			d.Resolutions[0].OffsetSeconds = d.Resolutions[0].OffsetSeconds[:1]
		}, "offset_seconds length"},
		{"times decrease", func(d *HistoryDump) { d.Resolutions[0].TimesUnixMS[2] = 0 }, "times_unix_ms decreases"},
		{"offsets decrease", func(d *HistoryDump) { d.Resolutions[0].OffsetSeconds[2] = -1 }, "offset_seconds decreases"},
		{"counter length", func(d *HistoryDump) {
			d.Resolutions[0].Counters["serve.requests"] = []int64{1}
		}, "counter"},
		{"negative counter", func(d *HistoryDump) {
			d.Resolutions[0].Counters["serve.requests"][0] = -1
		}, "negative"},
		{"rate length", func(d *HistoryDump) {
			d.Resolutions[0].Rates["serve.requests"] = []float64{1}
		}, "rate"},
		{"orphan rate", func(d *HistoryDump) {
			d.Resolutions[0].Rates["serve.ghost"] = make([]float64, len(d.Resolutions[0].TimesUnixMS))
		}, "no matching counter"},
		{"negative rate", func(d *HistoryDump) {
			d.Resolutions[0].Rates["serve.requests"][1] = -3
		}, "finite and non-negative"},
		{"gauge length", func(d *HistoryDump) {
			d.Resolutions[0].Gauges["runtime.goroutines"] = []float64{0}
		}, "gauge"},
		{"quantile length", func(d *HistoryDump) {
			q := d.Resolutions[0].Quantiles["serve.latency_seconds"]
			q.P99 = q.P99[:1]
			d.Resolutions[0].Quantiles["serve.latency_seconds"] = q
		}, "p99"},
		{"negative quantile count", func(d *HistoryDump) {
			d.Resolutions[0].Quantiles["serve.latency_seconds"].Count[0] = -1
		}, "count is negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d *HistoryDump
			if tc.mutate != nil {
				fresh := h.Dump()
				tc.mutate(fresh)
				d = fresh
			}
			err := CheckHistoryDump(d)
			if err == nil {
				t.Fatal("corrupt dump validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	if err := ValidateHistoryDump([]byte("{")); err == nil {
		t.Fatal("truncated JSON validated")
	}
}

func BenchmarkHistorySample(b *testing.B) {
	reg := NewRegistry()
	for _, name := range []string{
		MetricServeRequests, MetricServeErrors, MetricServeCacheHits, MetricServeCacheMisses,
	} {
		reg.Counter(name).Add(1)
	}
	reg.Gauge(MetricRuntimeGoroutines).Set(10)
	reg.Gauge(MetricRuntimeHeapAlloc).Set(1 << 20)
	hist := reg.Histogram(MetricServeLatency,
		[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1})
	hist.Observe(0.005)
	h := NewHistory(reg, HistoryConfig{})
	h.sampleFine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.sampleFine()
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
