package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. Add is a single
// atomic op; shard loops should nevertheless accumulate into a plain
// local int64 and Add the total once at the shard boundary, which keeps
// the hot path free of even atomic traffic.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
//
//lint:alloc-free registry hot path, exercised per request by serve middleware
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
//
//lint:alloc-free read on the History sample tick
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric (e.g. the most recent mean
// loss). Set and Value are single atomic ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
//
//lint:alloc-free registry hot path, set from runtime pollers
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
//
//lint:alloc-free read on the History sample tick
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are inclusive upper
// bounds in ascending order, with one implicit overflow bucket, so
// len(counts) == len(bounds)+1. Observe is lock-free (atomic adds; the
// sum uses a CAS loop). For shard loops, take a Local view, observe
// into it without any synchronization, and Flush at the shard boundary
// — the merge is exact, so concurrent shards sum to precisely the
// serial totals.
//
// Bucket-assignment contract (pinned by TestHistogramBucketContract):
// a value lands in the first bucket whose upper bound it does not
// exceed, so a value exactly on a bound belongs to that bound's bucket
// (bounds are inclusive). -Inf lands in the first bucket, +Inf in the
// overflow bucket, and NaN — which no comparison can place — in the
// overflow bucket as well. Non-finite samples are counted in Count and
// their bucket but excluded from Sum, so snapshots and the JSON run
// report stay encodable (encoding/json rejects NaN/±Inf) and a single
// poisoned sample cannot erase the sum of every healthy one; a
// non-finite stream is still visible as overflow/underflow mass.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	sumBits atomic.Uint64
	n       atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

func (h *Histogram) bucket(v float64) int {
	// Buckets are few (fixed at registration); linear scan beats binary
	// search at these sizes and stays branch-predictable.
	for i, ub := range h.bounds {
		if v <= ub {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one sample. See the type doc for how non-finite
// samples are bucketed.
//
//lint:alloc-free per-request latency record, pinned by serve AllocsPerRun tests
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.n.Add(1)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Local returns an unsynchronized shard-local view of the histogram.
// A nil histogram yields a nil LocalHist, whose methods no-op.
func (h *Histogram) Local() *LocalHist {
	if h == nil {
		return nil
	}
	return &LocalHist{h: h, counts: make([]int64, len(h.counts))}
}

// LocalHist accumulates samples without synchronization; Flush merges
// them into the parent histogram with one atomic pass.
type LocalHist struct {
	h      *Histogram
	counts []int64
	sum    float64
	n      int64
}

// Observe records one sample locally (no atomics, no locks), under the
// same non-finite contract as Histogram.Observe.
//
//lint:alloc-free per-observation load-harness hot path
func (l *LocalHist) Observe(v float64) {
	if l == nil {
		return
	}
	l.counts[l.h.bucket(v)]++
	l.n++
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	l.sum += v
}

// Flush merges the local samples into the parent and resets the local
// state, so a LocalHist can be reused across stages.
func (l *LocalHist) Flush() {
	if l == nil || l.n == 0 {
		return
	}
	for i, c := range l.counts {
		if c != 0 {
			l.h.counts[i].Add(c)
			l.counts[i] = 0
		}
	}
	l.h.n.Add(l.n)
	for {
		old := l.h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + l.sum)
		if l.h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	l.sum, l.n = 0, 0
}

// HistSnapshot is the JSON form of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Snapshot returns a consistent-enough copy for reporting: individual
// fields are read atomically; cross-field skew is at most a few
// in-flight observations.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Registry is a named collection of metrics. Lookups take a mutex and
// are meant for stage boundaries or setup; training loops should
// resolve their metrics once and hold the pointers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use. A nil
// registry returns an unregistered counter whose updates go nowhere
// visible, so callers never branch.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket upper bounds on first use. Later calls ignore bounds — the
// first registration wins, keeping the bucket layout stable for a run.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every registered metric, with
// deterministic (map-based, name-keyed) structure for JSON encoding.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
