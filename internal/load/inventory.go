package load

import (
	"fmt"
	"math/rand"
	"net/url"
	"strings"

	"transn/internal/graph"
)

// Inventory is the request-argument pool derived from the graph the
// served model was trained on: node names for embedding/k-NN lookups,
// view pairs with common nodes for translations, and per-view member
// lists for synthesizing inference payloads. Building it from the same
// TSV the server loads guarantees every generated request is valid —
// the harness measures serving latency, not 404 production.
type Inventory struct {
	nodes []string // every node name, ID order

	// translates flattens every (common node, from-view, to-view)
	// combination in both directions, so a uniform draw weights pairs by
	// how many nodes they can translate.
	translates []translateTarget

	// viewNames[i] names view i; viewMembers[i] lists its node names.
	viewNames   []string
	viewMembers [][]string
}

// translateTarget is one valid /v1/translate argument triple.
type translateTarget struct {
	node, from, to string
}

// NewInventory derives the request pool from a loaded graph. The graph
// must have at least two nodes; translate targets may legitimately be
// empty (a model trained with no overlapping views), in which case a
// Mix giving translate weight is rejected at Run time.
func NewInventory(g *graph.Graph) (*Inventory, error) {
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("load: graph has %d nodes; need at least 2", g.NumNodes())
	}
	inv := &Inventory{}
	for _, n := range g.Nodes {
		inv.nodes = append(inv.nodes, n.Name)
	}
	views := g.Views()
	for _, v := range views {
		inv.viewNames = append(inv.viewNames, g.EdgeTypeNames[v.Type])
		members := make([]string, 0, len(v.NodeIDs))
		for _, id := range v.NodeIDs {
			members = append(members, g.Nodes[id].Name)
		}
		inv.viewMembers = append(inv.viewMembers, members)
	}
	for _, pr := range g.ViewPairs() {
		from, to := inv.viewNames[pr.I], inv.viewNames[pr.J]
		for _, id := range pr.Common {
			name := g.Nodes[id].Name
			inv.translates = append(inv.translates,
				translateTarget{node: name, from: from, to: to},
				translateTarget{node: name, from: to, to: from})
		}
	}
	return inv, nil
}

// Supports reports whether the inventory can generate requests for the
// endpoint (translate needs at least one trained view pair).
func (inv *Inventory) Supports(ep Endpoint) bool {
	if ep == EndpointTranslate {
		return len(inv.translates) > 0
	}
	return true
}

// request draws one concrete request for the endpoint from the stream:
// an HTTP method, a URL path+query, and a JSON body for POSTs.
func (inv *Inventory) request(rng *rand.Rand, ep Endpoint) (method, target, body string) {
	switch ep {
	case EndpointEmbedding:
		node := inv.nodes[rng.Intn(len(inv.nodes))]
		return "GET", "/v1/embedding?node=" + url.QueryEscape(node), ""
	case EndpointTranslate:
		tt := inv.translates[rng.Intn(len(inv.translates))]
		return "GET", "/v1/translate?node=" + url.QueryEscape(tt.node) +
			"&from=" + url.QueryEscape(tt.from) + "&to=" + url.QueryEscape(tt.to), ""
	case EndpointKNN:
		node := inv.nodes[rng.Intn(len(inv.nodes))]
		maxK := len(inv.nodes) - 1
		if maxK > 5 {
			maxK = 5
		}
		k := 1 + rng.Intn(maxK)
		return "GET", fmt.Sprintf("/v1/knn?node=%s&k=%d", url.QueryEscape(node), k), ""
	case EndpointInfer:
		// Fold in a synthetic unseen node: 1–3 edges into members of one
		// randomly chosen non-empty view, unit or double weight.
		vi := rng.Intn(len(inv.viewMembers))
		for len(inv.viewMembers[vi]) == 0 {
			vi = (vi + 1) % len(inv.viewMembers)
		}
		members, view := inv.viewMembers[vi], inv.viewNames[vi]
		n := 1 + rng.Intn(3)
		if n > len(members) {
			n = len(members)
		}
		var edges []string
		for i := 0; i < n; i++ {
			edges = append(edges, fmt.Sprintf(`{"neighbor":%q,"type":%q,"weight":%d}`,
				members[rng.Intn(len(members))], view, 1+rng.Intn(2)))
		}
		return "POST", "/v1/infer", `{"edges":[` + strings.Join(edges, ",") + `]}`
	}
	panic(fmt.Sprintf("load: unknown endpoint %q", ep))
}
