package load

import (
	"math"
	"testing"
	"time"

	"transn/internal/rngstream"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("embedding=4, translate=3,knn=2,infer=1")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultMix()
	for _, ep := range Endpoints() {
		if m[ep] != want[ep] {
			t.Fatalf("%s weight = %v, want %v", ep, m[ep], want[ep])
		}
	}
	if m.String() != "embedding=4,translate=3,knn=2,infer=1" {
		t.Fatalf("String() = %q", m.String())
	}

	// Partial mixes leave absent endpoints at zero weight.
	m, err = ParseMix("translate=1")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.active(); len(got) != 1 || got[0] != EndpointTranslate {
		t.Fatalf("active() = %v, want [translate]", got)
	}

	for _, bad := range []string{
		"", "   ", "bogus=1", "embedding", "embedding=0", "embedding=-1",
		"embedding=x", "embedding=1,embedding=2",
	} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixPickFollowsWeights(t *testing.T) {
	m := Mix{EndpointEmbedding: 3, EndpointInfer: 1}
	rng := rngstream.New(11, 0)
	counts := map[Endpoint]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	if counts[EndpointTranslate] != 0 || counts[EndpointKNN] != 0 {
		t.Fatalf("picked zero-weight endpoints: %v", counts)
	}
	frac := float64(counts[EndpointEmbedding]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("embedding fraction = %v, want ~0.75", frac)
	}
}

func TestMixPickDeterministic(t *testing.T) {
	m := DefaultMix()
	a := rngstream.New(5, 1)
	b := rngstream.New(5, 1)
	for i := 0; i < 500; i++ {
		if x, y := m.pick(a), m.pick(b); x != y {
			t.Fatalf("draw %d diverged: %s vs %s", i, x, y)
		}
	}
}

func TestArrivals(t *testing.T) {
	rng := rngstream.New(3, 0)
	rate, window := 200.0, 2*time.Second
	offs := Arrivals(rng, rate, window)
	if len(offs) == 0 {
		t.Fatal("no arrivals")
	}
	// Strictly increasing, all inside the window.
	for i, off := range offs {
		if off < 0 || off >= window {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, off, window)
		}
		if i > 0 && off <= offs[i-1] {
			t.Fatalf("arrivals not increasing at %d: %v after %v", i, off, offs[i-1])
		}
	}
	// A Poisson process at rate λ over T yields λT arrivals on average
	// with stddev sqrt(λT): 400 ± 20 here; 5σ bounds make flakes
	// astronomically unlikely.
	mean := rate * window.Seconds()
	if got := float64(len(offs)); math.Abs(got-mean) > 5*math.Sqrt(mean) {
		t.Fatalf("got %v arrivals, want %v ± %v", got, mean, 5*math.Sqrt(mean))
	}
	// Deterministic: the same stream reproduces the same schedule.
	again := Arrivals(rngstream.New(3, 0), rate, window)
	if len(again) != len(offs) {
		t.Fatalf("replay produced %d arrivals, want %d", len(again), len(offs))
	}
	for i := range offs {
		if offs[i] != again[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, offs[i], again[i])
		}
	}
}

func TestArrivalsDegenerate(t *testing.T) {
	if got := Arrivals(rngstream.New(1, 0), 0, time.Second); got != nil {
		t.Fatalf("zero rate produced %d arrivals", len(got))
	}
	if got := Arrivals(rngstream.New(1, 0), 100, 0); got != nil {
		t.Fatalf("zero window produced %d arrivals", len(got))
	}
}
