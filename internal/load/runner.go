package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"transn/internal/obs"
	"transn/internal/rngstream"
)

// Profile configures one load run.
type Profile struct {
	// Target is the base URL of the server under test, e.g.
	// "http://127.0.0.1:8099" (no trailing slash).
	Target string
	// Rate is the offered open-loop arrival rate in requests/second.
	Rate float64
	// Duration is the measured window; Warmup is an initial window
	// whose requests are sent but excluded from the report (cold
	// caches, connection setup and scheduler jitter settle there).
	Duration time.Duration
	Warmup   time.Duration
	// Mix is the endpoint distribution; nil means DefaultMix.
	Mix Mix
	// Seed makes the workload deterministic: arrivals, endpoint picks
	// and request arguments all derive from it.
	Seed int64
	// Reloads is how many POST /admin/reload requests to issue, evenly
	// spaced across the measured window, to exercise hot reload under
	// live traffic. Zero disables.
	Reloads int
	// Timeout is the per-request client timeout; zero means 10s.
	Timeout time.Duration
	// Name labels the report; empty means "load".
	Name string
	// SlowN is how many of the slowest measured requests to join
	// against the server's trace rings for the report's tail section.
	// 0 means the default (10); negative disables the tail section.
	SlowN int
}

// withDefaults fills zero-value fields with their documented defaults.
func (p Profile) withDefaults() Profile {
	if p.Mix == nil {
		p.Mix = DefaultMix()
	}
	if p.Timeout <= 0 {
		p.Timeout = 10 * time.Second
	}
	if p.Name == "" {
		p.Name = "load"
	}
	if p.SlowN == 0 {
		p.SlowN = 10
	}
	return p
}

// latencyBounds are the histogram bucket upper bounds (seconds) for
// per-endpoint latency: 100µs to 2.5s, roughly log-spaced, matching the
// server's own serve.latency_seconds resolution at the fast end.
var latencyBounds = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}

// latencyMetric maps an endpoint to its registered histogram name.
func latencyMetric(ep Endpoint) string {
	switch ep {
	case EndpointEmbedding:
		return obs.MetricLoadLatencyEmbedding
	case EndpointTranslate:
		return obs.MetricLoadLatencyTranslate
	case EndpointKNN:
		return obs.MetricLoadLatencyKNN
	case EndpointInfer:
		return obs.MetricLoadLatencyInfer
	}
	panic(fmt.Sprintf("load: unknown endpoint %q", ep))
}

// scheduledReq is one fully materialized request of the open-loop
// schedule: when to fire (offset from run start) and what to send.
type scheduledReq struct {
	at       time.Duration
	id       string // correlation ID sent as X-Transn-Request-Id
	ep       Endpoint
	method   string
	target   string
	body     string
	measured bool // scheduled inside the measured window (past warmup)
}

// result is what a request goroutine hands the collector.
type result struct {
	id        string
	ep        Endpoint
	latency   time.Duration // from the *scheduled* instant to response
	completed time.Duration // completion offset from run start
	ok        bool
	code      string // envelope code (or "transport") when !ok
	measured  bool
}

// epAgg is the collector's per-endpoint accumulator.
type epAgg struct {
	local    *obs.LocalHist
	hist     *obs.Histogram
	sent     int64
	ok       int64
	errs     int64
	maxSec   float64
	totalSec float64
}

// Run executes the profile against the target and returns its report.
// The request schedule is generated up front from the profile seed, so
// the offered workload is a pure function of the profile; everything
// measured is the server's doing. Run blocks until every request has
// completed or timed out.
func Run(p Profile, inv *Inventory) (*Report, error) {
	p = p.withDefaults()
	if p.Target == "" {
		return nil, fmt.Errorf("load: empty target")
	}
	if p.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive, got %v", p.Rate)
	}
	if p.Duration <= 0 {
		return nil, fmt.Errorf("load: duration must be positive, got %v", p.Duration)
	}
	if p.Warmup < 0 {
		return nil, fmt.Errorf("load: warmup must be non-negative, got %v", p.Warmup)
	}
	if p.Reloads < 0 {
		return nil, fmt.Errorf("load: reloads must be non-negative, got %v", p.Reloads)
	}
	active := p.Mix.active()
	if len(active) == 0 {
		return nil, fmt.Errorf("load: mix has no endpoint with positive weight")
	}
	for _, ep := range active {
		if !inv.Supports(ep) {
			return nil, fmt.Errorf("load: mix requests %q but the graph has no valid %q targets (no overlapping views)", ep, ep)
		}
	}
	target := strings.TrimRight(p.Target, "/")

	// Materialize the whole schedule before the clock starts: stream 0
	// drives arrivals, stream 1 drives endpoint choice and arguments.
	window := p.Warmup + p.Duration
	offsets := Arrivals(rngstream.New(p.Seed, 0), p.Rate, window)
	work := rngstream.New(p.Seed, 1)
	sched := make([]scheduledReq, len(offsets))
	for i, at := range offsets {
		ep := p.Mix.pick(work)
		method, tgt, body := inv.request(work, ep)
		// Deterministic correlation IDs: the same profile replays the
		// same ID stream, so tail joins are reproducible run to run.
		sched[i] = scheduledReq{at: at, id: fmt.Sprintf("load%d-%06d", p.Seed, i),
			ep: ep, method: method, target: tgt,
			body: body, measured: at >= p.Warmup}
	}

	run := obs.NewRun()
	offered := run.Reg.Counter(obs.MetricLoadOffered)
	sentC := run.Reg.Counter(obs.MetricLoadSent)
	errC := run.Reg.Counter(obs.MetricLoadErrors)
	aggs := map[Endpoint]*epAgg{}
	for _, ep := range active {
		h := run.Reg.Histogram(latencyMetric(ep), latencyBounds)
		aggs[ep] = &epAgg{hist: h, local: h.Local()}
	}

	client := &http.Client{Timeout: p.Timeout}
	before, _ := scrapeMetrics(client, target) // nil on failure: optional

	// The collector goroutine single-threads all accounting, so the
	// shard-local histograms and max/sum tracking need no locks.
	results := make(chan result, 256)
	collectDone := make(chan collectOut, 1)
	go collect(results, aggs, window, p.SlowN, collectDone)

	reloadDone := make(chan reloadOut, 1)
	start := time.Now()
	go runReloads(client, target, p, run, start, reloadDone)

	// The warmup span ends (and the measure span begins) when the
	// schedule crosses the warmup boundary.
	warm := run.Trace.Start(obs.SpanLoadWarmup)
	var measure *obs.ActiveSpan
	if p.Warmup == 0 {
		warm.End()
		warm, measure = nil, run.Trace.Start(obs.SpanLoadMeasure)
	}

	var wg sync.WaitGroup
	for _, sr := range sched {
		if d := sr.at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if warm != nil && sr.measured {
			warm.End()
			warm, measure = nil, run.Trace.Start(obs.SpanLoadMeasure)
		}
		offered.Add(1)
		sr := sr
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- fire(client, target, sr, start)
		}()
	}
	// Drain: every launched request completes (or times out via the
	// client), then the collector finalizes.
	wg.Wait()
	close(results)
	if warm != nil {
		warm.End() // schedule never reached the measured window
	}
	if measure != nil {
		measure.End()
	}
	rl := <-reloadDone
	out := <-collectDone
	sentC.Add(out.sent)
	errC.Add(out.errors)

	after, _ := scrapeMetrics(client, target)

	rep := &Report{
		Schema:          BenchSchema,
		Name:            p.Name,
		Target:          target,
		Seed:            p.Seed,
		Mix:             p.Mix.String(),
		OfferedRate:     p.Rate,
		WarmupSeconds:   p.Warmup.Seconds(),
		DurationSeconds: p.Duration.Seconds(),
		Sent:            out.sent,
		OK:              out.ok,
		Errors:          out.errors,
		Endpoints:       map[string]EndpointStats{},
		ErrorsByCode:    out.byCode,
		Reloads:         p.Reloads,
		ReloadsOK:       rl.ok,
	}
	if out.sent > 0 {
		rep.ErrorRate = float64(out.errors) / float64(out.sent)
	}
	rep.AchievedRate = float64(out.completedInWindow) / p.Duration.Seconds()
	for _, ep := range active {
		a := aggs[ep]
		a.local.Flush()
		snap := a.hist.Snapshot()
		es := EndpointStats{
			Sent:       a.sent,
			OK:         a.ok,
			Errors:     a.errs,
			MaxSeconds: a.maxSec,
			Histogram:  snap,
		}
		if a.sent > 0 {
			es.P50Seconds = snap.Quantile(0.50)
			es.P90Seconds = snap.Quantile(0.90)
			es.P99Seconds = snap.Quantile(0.99)
			es.MeanSeconds = a.totalSec / float64(a.sent)
		}
		rep.Endpoints[string(ep)] = es
	}
	if before != nil && after != nil {
		rep.Server = serverDelta(before, after)
	}
	rep.Tail = buildTail(p.SlowN, out.slowest, fetchServerTraces(client, target))
	rep.History = fetchHistoryDump(client, target)
	return rep, nil
}

// collectOut is the collector's final tally.
type collectOut struct {
	sent, ok, errors  int64
	completedInWindow int64
	byCode            map[string]int64
	slowest           []result // the SlowN slowest measured requests, slowest first
}

// collect drains the results channel, folding measured-window requests
// into the per-endpoint accumulators. Warmup results contribute to
// nothing — they exist so their load lands on the server before
// measurement starts. completedInWindow counts measured requests whose
// *response* also arrived before the window closed: on a saturated
// server responses pile up past the end of the window, which is exactly
// how achieved rate falls below offered rate.
func collect(results <-chan result, aggs map[Endpoint]*epAgg, window time.Duration, slowN int, done chan<- collectOut) {
	out := collectOut{byCode: map[string]int64{}}
	slow := &slowTracker{n: slowN}
	for r := range results {
		if !r.measured {
			continue
		}
		slow.add(r)
		a := aggs[r.ep]
		sec := r.latency.Seconds()
		a.local.Observe(sec)
		a.sent++
		a.totalSec += sec
		if sec > a.maxSec {
			a.maxSec = sec
		}
		out.sent++
		if r.ok {
			a.ok++
			out.ok++
		} else {
			a.errs++
			out.errors++
			out.byCode[r.code]++
		}
		if r.completed >= 0 && r.completed <= window {
			out.completedInWindow++
		}
	}
	out.slowest = slow.reqs
	done <- out
}

// fire sends one scheduled request and classifies the outcome. Latency
// runs from the scheduled instant (sr.at after start), not the actual
// send, so scheduler lag and queueing both count against the server —
// the open-loop contract.
func fire(client *http.Client, base string, sr scheduledReq, start time.Time) result {
	res := result{id: sr.id, ep: sr.ep, measured: sr.measured}
	var req *http.Request
	var err error
	if sr.body != "" {
		req, err = http.NewRequest(sr.method, base+sr.target, strings.NewReader(sr.body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		req, err = http.NewRequest(sr.method, base+sr.target, nil)
	}
	if err != nil {
		res.code = "transport"
		res.latency = 0
		res.completed = -1
		return res
	}
	req.Header.Set(headerRequestID, sr.id)
	resp, err := client.Do(req)
	now := time.Since(start)
	res.latency = now - sr.at
	if res.latency < 0 {
		res.latency = 0
	}
	res.completed = now
	if err != nil {
		res.code = "transport"
		return res
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		res.ok = true
		return res
	}
	res.code = envelopeCode(body, resp.StatusCode)
	return res
}

// envelopeCode extracts the transn.serve/v1 error code from a non-2xx
// body, falling back to "http_<status>" for foreign bodies.
func envelopeCode(body []byte, status int) string {
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		return env.Error.Code
	}
	return fmt.Sprintf("http_%d", status)
}

// reloadOut reports the reload goroutine's tally.
type reloadOut struct{ ok int }

// runReloads issues the profile's mid-run reloads, evenly spaced across
// the measured window at warmup + duration·(r+1)/(reloads+1), and
// counts the 200s. Each reload is wrapped in an obs span so the report
// shows reload timing alongside the measured window.
func runReloads(client *http.Client, base string, p Profile, run *obs.Run, start time.Time, done chan<- reloadOut) {
	out := reloadOut{}
	defer func() { done <- out }()
	for r := 0; r < p.Reloads; r++ {
		at := p.Warmup + time.Duration(float64(p.Duration)*float64(r+1)/float64(p.Reloads+1))
		if d := at - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		span := run.Trace.Start(obs.SpanLoadReload)
		resp, err := client.Post(base+"/admin/reload", "application/json", nil)
		span.End()
		if err != nil {
			continue
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			out.ok++
		}
	}
}

// scrapeMetrics fetches the target's /metrics obs report; a nil report
// (endpoint absent, scrape failure) degrades the run to client-side
// numbers only.
func scrapeMetrics(client *http.Client, base string) (*obs.Report, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: /metrics returned %d", resp.StatusCode)
	}
	var rep obs.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("load: /metrics decode: %w", err)
	}
	return &rep, nil
}

// serverDelta subtracts two /metrics scrapes into the report's server
// section. Counter keys index the obs report with the same constants
// the server registers them under.
func serverDelta(before, after *obs.Report) *ServerStats {
	d := func(key string) int64 {
		v := after.Counters[key] - before.Counters[key]
		if v < 0 {
			return 0
		}
		return v
	}
	s := &ServerStats{
		Requests:    d(obs.MetricServeRequests),
		Errors:      d(obs.MetricServeErrors),
		CacheHits:   d(obs.MetricServeCacheHits),
		CacheMisses: d(obs.MetricServeCacheMisses),
		Coalesced:   d(obs.MetricServeCoalesced),
		Reloads:     d(obs.MetricServeReloads),
	}
	if total := s.CacheHits + s.CacheMisses; total > 0 {
		s.CacheHitRate = float64(s.CacheHits) / float64(total)
	}
	return s
}
