package load

import (
	"bytes"
	"encoding/json"
	"fmt"

	"transn/internal/ordered"
)

// Budget is one SLO budget set. Every field is a pointer so an absent
// budget and a zero budget are distinguishable — {"max_5xx": 0} means
// "zero server errors allowed", omitting it means "don't check".
type Budget struct {
	// MaxP50Seconds / MaxP99Seconds bound the latency quantiles.
	MaxP50Seconds *float64 `json:"max_p50_seconds,omitempty"`
	MaxP99Seconds *float64 `json:"max_p99_seconds,omitempty"`
	// MaxErrorRate bounds Errors/Sent (a fraction within [0,1]).
	MaxErrorRate *float64 `json:"max_error_rate,omitempty"`
}

// Gate is a declarative SLO file checked against a Report: overall
// budgets, optional per-endpoint overrides, and run-level floors.
// transnload -gate exits non-zero when any budget is violated, which is
// what lets CI fail a PR on a serving-latency regression.
type Gate struct {
	// Overall applies to the aggregate report numbers; its latency
	// budgets are checked against every endpoint (an SLO on "the
	// service" bounds its slowest endpoint, not a blend).
	Overall *Budget `json:"overall,omitempty"`
	// Endpoints overrides Overall per endpoint name; an endpoint's
	// entry fully replaces the overall latency budgets for it.
	Endpoints map[string]*Budget `json:"endpoints,omitempty"`
	// Max5xx bounds the number of server-side (5xx-class) failures:
	// envelope codes "internal" and "timeout" plus transport errors.
	// The hot-reload acceptance bar is {"max_5xx": 0}.
	Max5xx *int64 `json:"max_5xx,omitempty"`
	// MinAchievedFraction requires AchievedRate ≥ fraction·OfferedRate,
	// the saturation check.
	MinAchievedFraction *float64 `json:"min_achieved_fraction,omitempty"`
	// MinReloadsOK requires at least this many successful mid-run
	// reloads (proves the hot-reload path was actually exercised).
	MinReloadsOK *int `json:"min_reloads_ok,omitempty"`
}

// ParseGate decodes an SLO gate file strictly: unknown fields are
// errors, so a typo like "max_p99_second" fails loudly instead of
// silently never gating.
func ParseGate(data []byte) (*Gate, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Gate
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("load: gate file: %w", err)
	}
	known := map[string]bool{}
	for _, ep := range Endpoints() {
		known[string(ep)] = true
	}
	for _, name := range ordered.Keys(g.Endpoints) {
		if !known[name] {
			return nil, fmt.Errorf("load: gate file budgets unknown endpoint %q", name)
		}
	}
	return &g, nil
}

// serverCodes are the envelope codes Max5xx counts as server-side
// failures, alongside transport errors. Client-caused 4xx codes
// (bad_request, unknown_node, ...) are deliberately excluded — a gate
// on server health must not trip on a mis-generated request.
var serverCodes = map[string]bool{"internal": true, "timeout": true, "not_ready": true, "transport": true}

// Check evaluates the gate against the report and returns one
// human-readable violation string per broken budget, empty when the
// report passes. Violations carry the budget, the observed value and
// the endpoint so a CI log line is actionable on its own.
func (g *Gate) Check(rep *Report) []string {
	var out []string
	budgetFor := func(name string) *Budget {
		if b, ok := g.Endpoints[name]; ok && b != nil {
			return b
		}
		return g.Overall
	}
	for _, ep := range Endpoints() {
		name := string(ep)
		es, ok := rep.Endpoints[name]
		if !ok {
			continue
		}
		b := budgetFor(name)
		if b == nil {
			continue
		}
		if b.MaxP50Seconds != nil && es.P50Seconds > *b.MaxP50Seconds {
			out = append(out, fmt.Sprintf("endpoint %s: p50 %.6fs exceeds budget %.6fs",
				name, es.P50Seconds, *b.MaxP50Seconds))
		}
		if b.MaxP99Seconds != nil && es.P99Seconds > *b.MaxP99Seconds {
			out = append(out, fmt.Sprintf("endpoint %s: p99 %.6fs exceeds budget %.6fs",
				name, es.P99Seconds, *b.MaxP99Seconds))
		}
		if b.MaxErrorRate != nil && es.Sent > 0 {
			rate := float64(es.Errors) / float64(es.Sent)
			if rate > *b.MaxErrorRate {
				out = append(out, fmt.Sprintf("endpoint %s: error rate %.4f exceeds budget %.4f",
					name, rate, *b.MaxErrorRate))
			}
		}
	}
	if g.Overall != nil && g.Overall.MaxErrorRate != nil && rep.ErrorRate > *g.Overall.MaxErrorRate {
		out = append(out, fmt.Sprintf("overall error rate %.4f exceeds budget %.4f",
			rep.ErrorRate, *g.Overall.MaxErrorRate))
	}
	if g.Max5xx != nil {
		var got int64
		for _, code := range ordered.Keys(rep.ErrorsByCode) {
			if serverCodes[code] {
				got += rep.ErrorsByCode[code]
			}
		}
		if got > *g.Max5xx {
			out = append(out, fmt.Sprintf("server-side failures %d exceed budget %d (by code: %s)",
				got, *g.Max5xx, formatCodes(rep.ErrorsByCode)))
		}
	}
	if g.MinAchievedFraction != nil {
		floor := *g.MinAchievedFraction * rep.OfferedRate
		if rep.AchievedRate < floor {
			out = append(out, fmt.Sprintf("achieved rate %.2f req/s below %.0f%% of offered %.2f req/s",
				rep.AchievedRate, *g.MinAchievedFraction*100, rep.OfferedRate))
		}
	}
	if g.MinReloadsOK != nil && rep.ReloadsOK < *g.MinReloadsOK {
		out = append(out, fmt.Sprintf("successful reloads %d below required %d",
			rep.ReloadsOK, *g.MinReloadsOK))
	}
	return out
}

// formatCodes renders an errors-by-code map compactly in stable order.
func formatCodes(m map[string]int64) string {
	if len(m) == 0 {
		return "none"
	}
	s := ""
	for i, code := range ordered.Keys(m) {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", code, m[code])
	}
	return s
}
