package load

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"transn/internal/obs"
	"transn/internal/ordered"
)

// headerRequestID mirrors serve's X-Transn-Request-Id header without
// importing the serving stack: the harness stamps a deterministic ID on
// every request so its client-side observations can be joined against
// the server's trace rings after the run.
const headerRequestID = "X-Transn-Request-Id"

// TailRequest is one of the run's slowest client-observed requests,
// joined (when the server kept a trace for it) with the server-side
// per-stage breakdown — the "why was this slow" row of the report.
type TailRequest struct {
	// ID is the correlation ID the harness sent (and the server echoed).
	ID string `json:"id"`
	// Endpoint is the request's endpoint name.
	Endpoint string `json:"endpoint"`
	// ClientSeconds is the client-observed open-loop latency (from the
	// scheduled arrival instant — queueing included).
	ClientSeconds float64 `json:"client_seconds"`
	// Joined reports whether a server-side trace was found for the ID;
	// the remaining fields are only meaningful when true.
	Joined bool `json:"joined"`
	// ServerSeconds is the server's own total for the request. The gap
	// ClientSeconds − ServerSeconds is network + client-side queueing.
	ServerSeconds float64 `json:"server_seconds,omitempty"`
	// Outcome is the server's trace outcome (ok, error, timeout, panic).
	Outcome string `json:"outcome,omitempty"`
	// CacheHit and Coalesced are the server's fast-path flags.
	CacheHit  bool `json:"cache_hit,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Stages is the server-side per-stage breakdown in seconds.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// TailStats is the tail-latency attribution section of the report: the
// slowest-N client observations joined against the server's sampled and
// slow trace rings, with per-stage totals so "p99 is coalesce-wait-
// bound" is a measured sentence rather than a guess.
type TailStats struct {
	// SlowestN is how many tail requests were requested (Profile.SlowN);
	// Requests may be shorter when fewer measured requests completed.
	SlowestN int `json:"slowest_n"`
	// Joined counts Requests rows with a server-side trace.
	Joined int `json:"joined"`
	// Requests lists the slowest measured requests, slowest first.
	Requests []TailRequest `json:"requests"`
	// StageTotals sums each server-side stage's seconds across the
	// joined rows. Present only when Joined > 0.
	StageTotals map[string]float64 `json:"stage_totals,omitempty"`
	// DominantStage is the stage with the largest total — the tail's
	// bottleneck. Empty when nothing joined.
	DominantStage string `json:"dominant_stage,omitempty"`
}

// fetchTraceDump GETs one of the server's /debug trace rings and
// validates the document before trusting it.
func fetchTraceDump(client *http.Client, base, path string) (*obs.TraceDump, error) {
	resp, err := client.Get(base + path)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: %s returned %d", path, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if err := obs.ValidateTraceDump(data); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	var d obs.TraceDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// fetchServerTraces collects the server's kept trace records keyed by
// request ID, merging the sampled and slow rings (the slow ring wins on
// overlap — identical records anyway). Both rings failing to fetch —
// tracing disabled server-side, old server — degrades to an empty map
// and the tail section reports zero joins instead of erroring the run.
func fetchServerTraces(client *http.Client, base string) map[string]obs.TraceRecord {
	byID := map[string]obs.TraceRecord{}
	for _, path := range []string{"/debug/requests", "/debug/slow"} {
		d, err := fetchTraceDump(client, base, path)
		if err != nil {
			continue
		}
		for _, rec := range d.Traces {
			byID[rec.ID] = rec
		}
	}
	return byID
}

// fetchHistoryDump GETs the server's /debug/history flight-recorder
// dump, validating the document before trusting it. Any failure
// (recorder disabled server-side, old server, corrupt dump) degrades to
// nil — the curves are additive context, not a run requirement.
func fetchHistoryDump(client *http.Client, base string) *obs.HistoryDump {
	resp, err := client.Get(base + "/debug/history")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil
	}
	if err := obs.ValidateHistoryDump(data); err != nil {
		return nil
	}
	var d obs.HistoryDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil
	}
	return &d
}

// buildTail joins the collector's slowest-N client observations against
// the server traces. slowest must be sorted slowest-first. Returns nil
// when the tail was disabled or nothing was measured.
func buildTail(slowN int, slowest []result, traces map[string]obs.TraceRecord) *TailStats {
	if slowN <= 0 || len(slowest) == 0 {
		return nil
	}
	tail := &TailStats{SlowestN: slowN}
	totals := map[string]float64{}
	for _, r := range slowest {
		row := TailRequest{
			ID:            r.id,
			Endpoint:      string(r.ep),
			ClientSeconds: r.latency.Seconds(),
		}
		if rec, ok := traces[r.id]; ok {
			row.Joined = true
			row.ServerSeconds = rec.TotalSeconds
			row.Outcome = string(rec.Outcome)
			row.CacheHit = rec.CacheHit
			row.Coalesced = rec.Coalesced
			row.Stages = rec.Stages
			tail.Joined++
			// ordered iteration: stage totals sum in a fixed order so
			// the float result is bit-identical run to run.
			for _, name := range ordered.Keys(rec.Stages) {
				totals[name] += rec.Stages[name]
			}
		}
		tail.Requests = append(tail.Requests, row)
	}
	if tail.Joined > 0 {
		tail.StageTotals = totals
		best := ""
		bestV := -1.0
		// ordered iteration: deterministic winner on exact ties.
		for _, name := range ordered.Keys(totals) {
			if totals[name] > bestV {
				best, bestV = name, totals[name]
			}
		}
		tail.DominantStage = best
	}
	return tail
}

// slowTracker keeps the N slowest measured results seen so far, in
// descending latency order. Single-threaded (the collector owns it).
type slowTracker struct {
	n    int
	reqs []result
}

// add offers one measured result to the tracker.
func (st *slowTracker) add(r result) {
	if st.n <= 0 {
		return
	}
	if len(st.reqs) < st.n || r.latency > st.reqs[len(st.reqs)-1].latency {
		st.reqs = append(st.reqs, r)
		sort.SliceStable(st.reqs, func(i, j int) bool {
			return st.reqs[i].latency > st.reqs[j].latency
		})
		if len(st.reqs) > st.n {
			st.reqs = st.reqs[:st.n]
		}
	}
}
