package load

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"transn/internal/graph"
	"transn/internal/rngstream"
	"transn/internal/serve"
	"transn/internal/transn"
)

// quickstartGraph mirrors the serving tests' Figure 2(a) academic
// network (serve's helper is unexported): authorship × affiliation
// share {A1, A3}, so translate targets exist.
func quickstartGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	univ := b.NodeType("university")
	authorship := b.EdgeType("authorship")
	citation := b.EdgeType("citation")
	affiliation := b.EdgeType("affiliation")
	a1 := b.AddNode(author, "A1")
	a2 := b.AddNode(author, "A2")
	a3 := b.AddNode(author, "A3")
	p1 := b.AddNode(paper, "P1")
	p2 := b.AddNode(paper, "P2")
	u1 := b.AddNode(univ, "U1")
	b.AddEdge(a1, p1, authorship, 1)
	b.AddEdge(a2, p1, authorship, 1)
	b.AddEdge(a3, p2, authorship, 1)
	b.AddEdge(p1, p2, citation, 1)
	b.AddEdge(a1, u1, affiliation, 1)
	b.AddEdge(a3, u1, affiliation, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// startServer trains a quickstart model, writes its files, and serves
// it on a loopback port, returning the base URL, the graph and a
// shutdown func.
func startServer(t testing.TB) (string, *graph.Graph) {
	t.Helper()
	g := quickstartGraph(t)
	cfg := transn.DefaultConfig()
	cfg.Dim = 8
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 4
	cfg.MaxWalksPerNode = 8
	cfg.Iterations = 2
	cfg.CrossPathLen = 2
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 1
	cfg.Seed = 1
	m, err := transn.Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gp := filepath.Join(dir, "graph.tsv")
	gf, err := os.Create(gp)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Store(gf, g); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	mp := filepath.Join(dir, "model.gob")
	mf, err := os.Create(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	// Sample every request into a ring big enough to hold the whole
	// run, so tail joins are deterministic.
	sv, err := serve.New(serve.Config{
		GraphPath: gp, ModelPath: mp, CacheSize: 64, TranslateWorkers: 2,
		TraceSampleRate: 1, TraceRingSize: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sv.Shutdown() })
	return "http://" + addr, g
}

func TestInventory(t *testing.T) {
	g := quickstartGraph(t)
	inv, err := NewInventory(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.nodes) != 6 {
		t.Fatalf("%d nodes, want 6", len(inv.nodes))
	}
	// authorship × citation share {P1, P2} and authorship × affiliation
	// share {A1, A3}: 4 common nodes × 2 directions.
	if len(inv.translates) != 8 {
		t.Fatalf("%d translate targets, want 8", len(inv.translates))
	}
	for _, ep := range Endpoints() {
		if !inv.Supports(ep) {
			t.Fatalf("Supports(%s) = false", ep)
		}
	}
	// Generated requests are well-formed and deterministic per stream.
	a, b := rngstream.New(9, 1), rngstream.New(9, 1)
	for i := 0; i < 200; i++ {
		ep := Endpoints()[i%len(Endpoints())]
		m1, t1, b1 := inv.request(a, ep)
		m2, t2, b2 := inv.request(b, ep)
		if m1 != m2 || t1 != t2 || b1 != b2 {
			t.Fatalf("request %d not deterministic: %s %s vs %s %s", i, m1, t1, m2, t2)
		}
		wantPrefix := "/v1/" + map[Endpoint]string{
			EndpointEmbedding: "embedding", EndpointTranslate: "translate",
			EndpointKNN: "knn", EndpointInfer: "infer",
		}[ep]
		if !strings.HasPrefix(t1, wantPrefix) {
			t.Fatalf("%s request targets %q", ep, t1)
		}
		if (ep == EndpointInfer) != (m1 == http.MethodPost) {
			t.Fatalf("%s uses method %s", ep, m1)
		}
	}
}

func TestInventoryRejectsTinyGraph(t *testing.T) {
	// The builder itself refuses Definition-1-degenerate networks, so
	// construct the one-node graph directly to hit the guard.
	g := &graph.Graph{Nodes: []graph.Node{{Name: "solo"}}}
	if _, err := NewInventory(g); err == nil {
		t.Fatal("one-node graph accepted")
	}
}

// singleViewGraph has no overlapping views, so translate has no targets.
func singleViewGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	authorship := b.EdgeType("authorship")
	a1 := b.AddNode(author, "A1")
	p1 := b.AddNode(paper, "P1")
	b.AddEdge(a1, p1, authorship, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunRejectsBadProfiles(t *testing.T) {
	inv, err := NewInventory(quickstartGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	base := Profile{Target: "http://127.0.0.1:1", Rate: 10, Duration: time.Millisecond}
	for name, p := range map[string]Profile{
		"empty target":  {Rate: 10, Duration: time.Millisecond},
		"zero rate":     {Target: base.Target, Duration: time.Millisecond},
		"zero duration": {Target: base.Target, Rate: 10},
		"neg warmup":    {Target: base.Target, Rate: 10, Duration: time.Millisecond, Warmup: -1},
		"neg reloads":   {Target: base.Target, Rate: 10, Duration: time.Millisecond, Reloads: -1},
	} {
		if _, err := Run(p, inv); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A translate-weighted mix against a graph with no view overlap is
	// rejected up front instead of producing a 100% error run.
	soloInv, err := NewInventory(singleViewGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Mix = Mix{EndpointTranslate: 1}
	if _, err := Run(p, soloInv); err == nil || !strings.Contains(err.Error(), "translate") {
		t.Fatalf("unsupported translate mix accepted: %v", err)
	}
}

// TestRunEndToEnd drives a live server through the full harness: mixed
// traffic, warmup exclusion, two mid-run hot reloads, /metrics deltas —
// and requires a clean, validating, gate-passing report with zero
// errors (the acceptance bar: reloads under load cause no 5xx).
func TestRunEndToEnd(t *testing.T) {
	target, g := startServer(t)
	inv, err := NewInventory(g)
	if err != nil {
		t.Fatal(err)
	}
	p := Profile{
		Target:   target,
		Rate:     400,
		Duration: 600 * time.Millisecond,
		Warmup:   150 * time.Millisecond,
		Seed:     7,
		Reloads:  2,
		Name:     "harness-e2e",
	}
	if testing.Short() {
		p.Rate, p.Duration = 200, 400*time.Millisecond
	}
	rep, err := Run(p, inv)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("report does not validate: %v\n%s", err, buf.Bytes())
	}

	if rep.Sent == 0 {
		t.Fatal("no measured requests")
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors across reloads (by code: %v)", rep.Errors, rep.ErrorsByCode)
	}
	if rep.ReloadsOK != p.Reloads {
		t.Fatalf("reloads_ok = %d, want %d", rep.ReloadsOK, p.Reloads)
	}
	for _, ep := range Endpoints() {
		es, ok := rep.Endpoints[string(ep)]
		if !ok || es.Sent == 0 {
			t.Fatalf("endpoint %s got no measured traffic", ep)
		}
		if es.Sent > 0 && es.P99Seconds <= 0 {
			t.Fatalf("endpoint %s: p99 = %v", ep, es.P99Seconds)
		}
	}
	if rep.AchievedRate <= 0 {
		t.Fatalf("achieved_rate = %v", rep.AchievedRate)
	}
	if rep.Server == nil {
		t.Fatal("no server section: /metrics scrape failed")
	}
	if rep.Server.Reloads != int64(p.Reloads) {
		t.Fatalf("server reload delta = %d, want %d", rep.Server.Reloads, p.Reloads)
	}
	if rep.Server.Requests < rep.Sent {
		t.Fatalf("server saw %d requests, harness sent %d measured", rep.Server.Requests, rep.Sent)
	}
	if rep.Server.CacheHits+rep.Server.CacheMisses == 0 {
		t.Fatal("no cache traffic recorded on the server")
	}

	// Tail attribution: with the server sampling every request into a
	// run-sized ring, every slowest-N observation must join, the stage
	// totals must be non-empty and a dominant stage must be named.
	if rep.Tail == nil {
		t.Fatal("no tail section")
	}
	if len(rep.Tail.Requests) == 0 || rep.Tail.Joined != len(rep.Tail.Requests) {
		t.Fatalf("tail joined %d of %d slowest requests, want all",
			rep.Tail.Joined, len(rep.Tail.Requests))
	}
	if len(rep.Tail.StageTotals) == 0 || rep.Tail.DominantStage == "" {
		t.Fatalf("tail lacks stage attribution: %+v", rep.Tail)
	}
	for i, tr := range rep.Tail.Requests {
		if !tr.Joined || tr.ServerSeconds <= 0 || len(tr.Stages) == 0 {
			t.Fatalf("tail request %d incomplete: %+v", i, tr)
		}
		if tr.ServerSeconds > tr.ClientSeconds+0.001 {
			t.Fatalf("tail request %d: server %vs exceeds client %vs",
				i, tr.ServerSeconds, tr.ClientSeconds)
		}
	}

	// The gate passes with sane budgets and trips on an impossible one —
	// the same pair of profiles CI's smoke job runs.
	pass := &Gate{
		Overall:      &Budget{MaxErrorRate: f(0)},
		Max5xx:       i64(0),
		MinReloadsOK: iv(p.Reloads),
	}
	if vs := pass.Check(rep); len(vs) != 0 {
		t.Fatalf("sane gate tripped: %v", vs)
	}
	impossible := &Gate{Overall: &Budget{MaxP99Seconds: f(1e-9)}}
	if vs := impossible.Check(rep); len(vs) == 0 {
		t.Fatal("1ns p99 budget did not trip")
	}
}

// TestRunWarmupExclusion pins that warmup traffic reaches the server
// but never the report: a run whose schedule is entirely warmup
// reports zero measured requests.
func TestRunWarmupExclusion(t *testing.T) {
	target, g := startServer(t)
	inv, err := NewInventory(g)
	if err != nil {
		t.Fatal(err)
	}
	p := Profile{
		Target:   target,
		Rate:     200,
		Duration: 200 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     3,
		Name:     "warmup-check",
	}
	rep, err := Run(p, inv)
	if err != nil {
		t.Fatal(err)
	}
	// Offered arrivals over warmup+duration exceed measured sends: the
	// warmup share was excluded.
	wantOffered := p.Rate * (p.Warmup + p.Duration).Seconds()
	if float64(rep.Sent) >= wantOffered {
		t.Fatalf("sent %d >= offered-window expectation %v; warmup not excluded", rep.Sent, wantOffered)
	}
	if rep.Sent == 0 {
		t.Fatal("measured window produced nothing")
	}
}
