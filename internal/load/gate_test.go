package load

import (
	"strings"
	"testing"
)

func TestParseGate(t *testing.T) {
	g, err := ParseGate([]byte(`{
		"overall": {"max_p99_seconds": 0.1, "max_error_rate": 0.01},
		"endpoints": {"translate": {"max_p99_seconds": 0.25}},
		"max_5xx": 0,
		"min_achieved_fraction": 0.9,
		"min_reloads_ok": 1
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.Overall == nil || *g.Overall.MaxP99Seconds != 0.1 {
		t.Fatalf("overall budget not parsed: %+v", g.Overall)
	}
	if *g.Max5xx != 0 {
		t.Fatalf("max_5xx = %d, want 0 (zero must be representable)", *g.Max5xx)
	}
	if g.Endpoints["translate"] == nil || *g.Endpoints["translate"].MaxP99Seconds != 0.25 {
		t.Fatal("per-endpoint override not parsed")
	}
}

func TestParseGateRejectsTypos(t *testing.T) {
	if _, err := ParseGate([]byte(`{"overall": {"max_p99_second": 1}}`)); err == nil {
		t.Fatal("typo'd budget key accepted — the gate would silently never fire")
	}
	if _, err := ParseGate([]byte(`{"endpoints": {"bogus": {"max_p99_seconds": 1}}}`)); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if _, err := ParseGate([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func f(v float64) *float64 { return &v }
func i64(v int64) *int64   { return &v }
func iv(v int) *int        { return &v }

func TestGateCheckPasses(t *testing.T) {
	g := &Gate{
		Overall:             &Budget{MaxP99Seconds: f(0.1), MaxErrorRate: f(0.5)},
		Max5xx:              i64(1),
		MinAchievedFraction: f(0.9),
		MinReloadsOK:        iv(2),
	}
	if vs := g.Check(validReport()); len(vs) != 0 {
		t.Fatalf("clean report violated gate: %v", vs)
	}
}

func TestGateCheckViolations(t *testing.T) {
	rep := validReport() // p99 0.009, error rate 0.1, timeout=1, achieved 99/100
	g := &Gate{
		Overall:             &Budget{MaxP50Seconds: f(0.0001), MaxP99Seconds: f(0.001), MaxErrorRate: f(0.01)},
		Max5xx:              i64(0),
		MinAchievedFraction: f(1.0),
		MinReloadsOK:        iv(3),
	}
	vs := g.Check(rep)
	for _, want := range []string{
		"p50", "p99", "error rate", "server-side failures", "achieved rate", "reloads",
	} {
		found := false
		for _, v := range vs {
			if strings.Contains(v, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no violation mentioning %q in %v", want, vs)
		}
	}
}

// TestGateEndpointOverride pins that a per-endpoint budget replaces the
// overall latency budget for that endpoint rather than stacking.
func TestGateEndpointOverride(t *testing.T) {
	rep := validReport() // embedding p99 = 0.009
	g := &Gate{
		Overall:   &Budget{MaxP99Seconds: f(0.001)}, // would trip
		Endpoints: map[string]*Budget{"embedding": {MaxP99Seconds: f(0.05)}},
	}
	if vs := g.Check(rep); len(vs) != 0 {
		t.Fatalf("override did not replace overall budget: %v", vs)
	}
	// And the override itself still trips when exceeded.
	g.Endpoints["embedding"] = &Budget{MaxP99Seconds: f(0.0001)}
	if vs := g.Check(rep); len(vs) != 1 || !strings.Contains(vs[0], "p99") {
		t.Fatalf("override budget did not trip: %v", vs)
	}
}

// TestGateMax5xxIgnoresClientErrors pins that client-caused envelope
// codes (unknown_node etc.) never count against the server-failure
// budget.
func TestGateMax5xxIgnoresClientErrors(t *testing.T) {
	rep := validReport()
	rep.ErrorsByCode = map[string]int64{"unknown_node": 5, "bad_request": 2}
	g := &Gate{Max5xx: i64(0)}
	if vs := g.Check(rep); len(vs) != 0 {
		t.Fatalf("client errors tripped the 5xx budget: %v", vs)
	}
	rep.ErrorsByCode["transport"] = 1
	if vs := g.Check(rep); len(vs) != 1 {
		t.Fatalf("transport error did not trip max_5xx=0: %v", vs)
	}
}
