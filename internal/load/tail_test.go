package load

import (
	"strings"
	"testing"
	"time"

	"transn/internal/obs"
)

func TestSlowTrackerKeepsNSlowest(t *testing.T) {
	st := &slowTracker{n: 3}
	// Latencies 1..10ms in shuffled order.
	for _, ms := range []int{4, 9, 1, 7, 10, 2, 8, 3, 6, 5} {
		st.add(result{id: string(rune('a' + ms)), latency: time.Duration(ms) * time.Millisecond})
	}
	if len(st.reqs) != 3 {
		t.Fatalf("tracker holds %d, want 3", len(st.reqs))
	}
	for i, wantMS := range []int{10, 9, 8} {
		if st.reqs[i].latency != time.Duration(wantMS)*time.Millisecond {
			t.Fatalf("slowest[%d] = %v, want %dms", i, st.reqs[i].latency, wantMS)
		}
	}
	// Disabled tracker stores nothing.
	off := &slowTracker{n: -1}
	off.add(result{latency: time.Second})
	if len(off.reqs) != 0 {
		t.Fatal("disabled tracker stored a result")
	}
}

func TestBuildTailJoinsAndAttributes(t *testing.T) {
	slowest := []result{
		{id: "r1", ep: EndpointTranslate, latency: 30 * time.Millisecond},
		{id: "r2", ep: EndpointKNN, latency: 20 * time.Millisecond},
		{id: "r3", ep: EndpointEmbedding, latency: 10 * time.Millisecond},
	}
	traces := map[string]obs.TraceRecord{
		"r1": {ID: "r1", TotalSeconds: 0.028, Outcome: obs.TraceOutcomeOK,
			Coalesced: true,
			Stages: map[string]float64{
				string(obs.TraceStageCoalesceWait): 0.020,
				string(obs.TraceStageForward):      0.007,
			}},
		"r2": {ID: "r2", TotalSeconds: 0.018, Outcome: obs.TraceOutcomeOK,
			Stages: map[string]float64{string(obs.TraceStageForward): 0.017}},
		// r3 was not sampled server-side.
	}
	tail := buildTail(5, slowest, traces)
	if tail == nil || tail.SlowestN != 5 || len(tail.Requests) != 3 {
		t.Fatalf("tail = %+v", tail)
	}
	if tail.Joined != 2 {
		t.Fatalf("joined = %d, want 2", tail.Joined)
	}
	if !tail.Requests[0].Joined || !tail.Requests[0].Coalesced {
		t.Fatalf("r1 row = %+v", tail.Requests[0])
	}
	if tail.Requests[2].Joined {
		t.Fatal("r3 should not join")
	}
	// coalesce_wait total 0.020 < forward total 0.024 → forward dominates.
	if tail.DominantStage != string(obs.TraceStageForward) {
		t.Fatalf("dominant stage = %q, want forward", tail.DominantStage)
	}
	if got := tail.StageTotals[string(obs.TraceStageForward)]; got < 0.023 || got > 0.025 {
		t.Fatalf("forward total = %v", got)
	}
	// Disabled or empty inputs yield no section.
	if buildTail(-1, slowest, traces) != nil || buildTail(5, nil, traces) != nil {
		t.Fatal("disabled/empty tail should be nil")
	}
}

func TestValidateTailRejectsCorrupt(t *testing.T) {
	known := map[string]bool{}
	for _, ep := range Endpoints() {
		known[string(ep)] = true
	}
	good := func() *TailStats {
		return &TailStats{
			SlowestN: 2, Joined: 1,
			Requests: []TailRequest{
				{ID: "a", Endpoint: "translate", ClientSeconds: 0.2, Joined: true,
					ServerSeconds: 0.19, Outcome: "ok",
					Stages: map[string]float64{string(obs.TraceStageForward): 0.18}},
				{ID: "b", Endpoint: "knn", ClientSeconds: 0.1},
			},
			StageTotals:   map[string]float64{string(obs.TraceStageForward): 0.18},
			DominantStage: string(obs.TraceStageForward),
		}
	}
	if err := validateTail(good(), known); err != nil {
		t.Fatalf("good tail rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*TailStats)
		want   string
	}{
		{"zero n", func(ts *TailStats) { ts.SlowestN = 0 }, "slowest_n"},
		{"over n", func(ts *TailStats) { ts.SlowestN = 1 }, "over slowest_n"},
		{"empty id", func(ts *TailStats) { ts.Requests[0].ID = "" }, "empty id"},
		{"bad endpoint", func(ts *TailStats) { ts.Requests[0].Endpoint = "warp" }, "unknown endpoint"},
		{"unsorted", func(ts *TailStats) { ts.Requests[1].ClientSeconds = 0.5 }, "sorted"},
		{"join miscount", func(ts *TailStats) { ts.Joined = 2 }, "joined"},
		{"bad stage", func(ts *TailStats) {
			ts.Requests[0].Stages = map[string]float64{"warp": 1}
		}, "unknown stage"},
		{"bad totals stage", func(ts *TailStats) {
			ts.StageTotals = map[string]float64{"warp": 1}
		}, "stage_totals"},
		{"bad dominant", func(ts *TailStats) { ts.DominantStage = "warp" }, "dominant_stage"},
		{"joined without totals", func(ts *TailStats) { ts.StageTotals = nil }, "stage_totals"},
		{"negative client", func(ts *TailStats) { ts.Requests[0].ClientSeconds = -1 }, "client_seconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := good()
			tc.mutate(ts)
			err := validateTail(ts, known)
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
