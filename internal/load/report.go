package load

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"transn/internal/obs"
	"transn/internal/ordered"
)

// BenchSchema identifies the load harness's JSON report layout.
// Consumers (CI's transnload-smoke job, `transn checkreport`, trend
// tooling) match on this string; any breaking change to the shape must
// bump the version suffix.
const BenchSchema = "transn.bench.serve/v1"

// EndpointStats is the per-endpoint section of the report: request
// accounting plus latency quantiles interpolated from the endpoint's
// histogram. Latencies are measured from each request's *scheduled*
// arrival instant, so queueing delay behind a slow server is included
// (see the package comment on coordinated omission).
type EndpointStats struct {
	// Sent counts requests dispatched in the measured window.
	Sent int64 `json:"sent"`
	// OK counts 2xx responses among Sent.
	OK int64 `json:"ok"`
	// Errors counts everything else: non-2xx envelopes and transport
	// failures. Per-code detail is in Report.ErrorsByCode.
	Errors int64 `json:"errors"`
	// P50/P90/P99Seconds are interpolated quantile estimates from the
	// latency histogram (obs.HistSnapshot.Quantile). Zero when Sent is 0.
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	// MaxSeconds is the exact maximum observed latency (not estimated).
	// An interpolated P99 may legitimately exceed it — quantile
	// estimates land anywhere inside their bucket — so validators must
	// not compare the two.
	MaxSeconds float64 `json:"max_seconds"`
	// MeanSeconds is the exact mean latency over Sent requests.
	MeanSeconds float64 `json:"mean_seconds"`
	// Histogram is the full latency distribution the quantiles were
	// derived from, for offline re-analysis at other quantiles.
	Histogram obs.HistSnapshot `json:"histogram"`
}

// ServerStats is the server-side telemetry delta scraped from the
// target's /metrics endpoint (obs run report) before and after the
// measured window. All fields are window deltas, not absolutes, so the
// report reads the same against a fresh or a long-running server.
type ServerStats struct {
	// Requests is the server's own request count over the window.
	Requests int64 `json:"requests"`
	// Errors is the server's error-response count over the window.
	Errors int64 `json:"errors"`
	// CacheHits and CacheMisses are translate-cache accounting; the
	// hit rate is CacheHits/(CacheHits+CacheMisses).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Coalesced counts requests that joined another request's in-flight
	// translator execution instead of computing their own.
	Coalesced int64 `json:"coalesced"`
	// Reloads is the server's snapshot-reload count over the window
	// (the harness's own mid-run reloads land here).
	Reloads int64 `json:"reloads"`
	// CacheHitRate is CacheHits/(CacheHits+CacheMisses), 0 when no
	// cache traffic occurred.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// Report is the schema-stable result of one load run.
type Report struct {
	// Schema is always BenchSchema.
	Schema string `json:"schema"`
	// Name labels the run (profile name or "-name" flag).
	Name string `json:"name"`
	// Target is the base URL the harness drove.
	Target string `json:"target"`
	// Seed is the workload seed; two runs with equal Seed, Mix, Rate
	// and Duration offer byte-identical request streams.
	Seed int64 `json:"seed"`
	// Mix is the endpoint distribution in flag syntax.
	Mix string `json:"mix"`

	// OfferedRate is the configured open-loop arrival rate (req/s);
	// AchievedRate is completions inside the measured window divided by
	// its duration. A healthy server keeps the two close; achieved
	// falling below offered is the signature of saturation.
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`

	// WarmupSeconds and DurationSeconds are the excluded warmup and the
	// measured window lengths.
	WarmupSeconds   float64 `json:"warmup_seconds"`
	DurationSeconds float64 `json:"duration_seconds"`

	// Sent/OK/Errors aggregate the per-endpoint counts.
	Sent   int64 `json:"sent"`
	OK     int64 `json:"ok"`
	Errors int64 `json:"errors"`
	// ErrorRate is Errors/Sent, 0 when nothing was sent.
	ErrorRate float64 `json:"error_rate"`

	// Endpoints maps endpoint name → stats; only endpoints with mix
	// weight appear.
	Endpoints map[string]EndpointStats `json:"endpoints"`

	// ErrorsByCode counts non-2xx responses by their transn.serve/v1
	// envelope code ("timeout", "not_ready", ...). Transport-level
	// failures (connection refused, malformed body) count under
	// "transport". Empty on clean runs.
	ErrorsByCode map[string]int64 `json:"errors_by_code,omitempty"`

	// Reloads is how many mid-run /admin/reload requests the harness
	// issued; ReloadsOK how many returned 200.
	Reloads   int `json:"reloads"`
	ReloadsOK int `json:"reloads_ok"`

	// Server is the /metrics delta over the window; nil when the scrape
	// failed (the run still reports client-side numbers).
	Server *ServerStats `json:"server,omitempty"`

	// Tail is the slowest-N client observations joined against the
	// server's trace rings, with per-stage attribution. Nil when the
	// tail was disabled (SlowN < 0) or nothing was measured; present
	// with Joined == 0 when the server kept no traces (tracing
	// disabled or the run's IDs aged out of the rings).
	Tail *TailStats `json:"tail,omitempty"`

	// History is the server's /debug/history flight-recorder dump
	// fetched right after the measured window: the run's rate, p99 and
	// hit-rate *curves*, not just end-of-run scalars, so a latency
	// excursion mid-run is visible in the committed BENCH_serve.json.
	// Nil when the fetch failed (recorder disabled, old server).
	History *obs.HistoryDump `json:"history,omitempty"`
}

// WriteReport writes the report as indented JSON with a trailing
// newline, the exact bytes CI stores as BENCH_serve.json.
func WriteReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Validate checks that data is a well-formed transn.bench.serve/v1
// report: valid JSON, the expected schema, required fields typed and in
// range, per-endpoint quantiles finite, non-negative and monotone
// (p50 ≤ p90 ≤ p99). It deliberately does not compare p99 to max:
// quantiles are bucket-interpolated estimates and may exceed the exact
// maximum when all mass sits low in a bucket.
func Validate(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("bench report is not valid JSON: %w", err)
	}
	var schema string
	if msg, ok := raw["schema"]; !ok {
		return fmt.Errorf("bench report is missing required field %q", "schema")
	} else if err := json.Unmarshal(msg, &schema); err != nil {
		return fmt.Errorf("field %q: %w", "schema", err)
	}
	if schema != BenchSchema {
		return fmt.Errorf("bench report schema %q, want %q", schema, BenchSchema)
	}
	var rep Report
	dec := json.Unmarshal(data, &rep)
	if dec != nil {
		return fmt.Errorf("bench report does not decode: %w", dec)
	}
	if rep.Name == "" {
		return fmt.Errorf("bench report name is empty")
	}
	if rep.Target == "" {
		return fmt.Errorf("bench report target is empty")
	}
	if rep.OfferedRate <= 0 {
		return fmt.Errorf("offered_rate = %v, want > 0", rep.OfferedRate)
	}
	if rep.AchievedRate < 0 {
		return fmt.Errorf("achieved_rate is negative: %v", rep.AchievedRate)
	}
	if rep.DurationSeconds <= 0 {
		return fmt.Errorf("duration_seconds = %v, want > 0", rep.DurationSeconds)
	}
	if rep.WarmupSeconds < 0 {
		return fmt.Errorf("warmup_seconds is negative: %v", rep.WarmupSeconds)
	}
	if rep.Sent < 0 || rep.OK < 0 || rep.Errors < 0 {
		return fmt.Errorf("negative request accounting: sent=%d ok=%d errors=%d",
			rep.Sent, rep.OK, rep.Errors)
	}
	if rep.OK+rep.Errors != rep.Sent {
		return fmt.Errorf("ok (%d) + errors (%d) != sent (%d)", rep.OK, rep.Errors, rep.Sent)
	}
	if rep.ErrorRate < 0 || rep.ErrorRate > 1 {
		return fmt.Errorf("error_rate = %v, want within [0,1]", rep.ErrorRate)
	}
	if rep.Endpoints == nil {
		return fmt.Errorf("bench report is missing required field %q", "endpoints")
	}
	known := map[string]bool{}
	for _, ep := range Endpoints() {
		known[string(ep)] = true
	}
	var sum int64
	for _, name := range ordered.Keys(rep.Endpoints) {
		es := rep.Endpoints[name]
		if !known[name] {
			return fmt.Errorf("unknown endpoint %q in report", name)
		}
		if es.Sent < 0 || es.OK < 0 || es.Errors < 0 {
			return fmt.Errorf("endpoint %q: negative accounting", name)
		}
		if es.OK+es.Errors != es.Sent {
			return fmt.Errorf("endpoint %q: ok (%d) + errors (%d) != sent (%d)",
				name, es.OK, es.Errors, es.Sent)
		}
		for _, q := range []struct {
			label string
			v     float64
		}{
			{"p50_seconds", es.P50Seconds},
			{"p90_seconds", es.P90Seconds},
			{"p99_seconds", es.P99Seconds},
			{"max_seconds", es.MaxSeconds},
			{"mean_seconds", es.MeanSeconds},
		} {
			if math.IsNaN(q.v) || math.IsInf(q.v, 0) || q.v < 0 {
				return fmt.Errorf("endpoint %q: %s = %v, want finite and non-negative",
					name, q.label, q.v)
			}
		}
		if es.Sent > 0 && (es.P50Seconds > es.P90Seconds || es.P90Seconds > es.P99Seconds) {
			return fmt.Errorf("endpoint %q: quantiles not monotone: p50=%v p90=%v p99=%v",
				name, es.P50Seconds, es.P90Seconds, es.P99Seconds)
		}
		if len(es.Histogram.Counts) != len(es.Histogram.Bounds)+1 {
			return fmt.Errorf("endpoint %q: histogram has %d counts for %d bounds, want bounds+1",
				name, len(es.Histogram.Counts), len(es.Histogram.Bounds))
		}
		sum += es.Sent
	}
	if sum != rep.Sent {
		return fmt.Errorf("endpoint sent counts sum to %d, report total is %d", sum, rep.Sent)
	}
	for _, code := range ordered.Keys(rep.ErrorsByCode) {
		if rep.ErrorsByCode[code] < 0 {
			return fmt.Errorf("errors_by_code[%q] is negative", code)
		}
	}
	if rep.ReloadsOK > rep.Reloads || rep.Reloads < 0 || rep.ReloadsOK < 0 {
		return fmt.Errorf("reloads_ok (%d) / reloads (%d) out of range", rep.ReloadsOK, rep.Reloads)
	}
	if rep.Server != nil {
		s := rep.Server
		if s.Requests < 0 || s.Errors < 0 || s.CacheHits < 0 || s.CacheMisses < 0 ||
			s.Coalesced < 0 || s.Reloads < 0 {
			return fmt.Errorf("server section has a negative counter delta")
		}
		if s.CacheHitRate < 0 || s.CacheHitRate > 1 {
			return fmt.Errorf("server cache_hit_rate = %v, want within [0,1]", s.CacheHitRate)
		}
	}
	if rep.Tail != nil {
		if err := validateTail(rep.Tail, known); err != nil {
			return err
		}
	}
	if rep.History != nil {
		if err := obs.CheckHistoryDump(rep.History); err != nil {
			return fmt.Errorf("history section: %w", err)
		}
	}
	return nil
}

// validateTail checks the report's tail section: slowest-first ordering,
// join accounting, known endpoint and stage names, finite values.
func validateTail(tail *TailStats, knownEndpoints map[string]bool) error {
	if tail.SlowestN < 1 {
		return fmt.Errorf("tail slowest_n = %d, want >= 1", tail.SlowestN)
	}
	if len(tail.Requests) > tail.SlowestN {
		return fmt.Errorf("tail holds %d requests over slowest_n %d", len(tail.Requests), tail.SlowestN)
	}
	if len(tail.Requests) == 0 {
		return fmt.Errorf("tail section present but has no requests")
	}
	knownStages := map[string]bool{}
	for _, s := range obs.TraceStages() {
		knownStages[string(s)] = true
	}
	joined := 0
	prev := math.Inf(1)
	for i, r := range tail.Requests {
		if r.ID == "" {
			return fmt.Errorf("tail request %d has an empty id", i)
		}
		if !knownEndpoints[r.Endpoint] {
			return fmt.Errorf("tail request %d (%s): unknown endpoint %q", i, r.ID, r.Endpoint)
		}
		for _, v := range []struct {
			label string
			val   float64
		}{{"client_seconds", r.ClientSeconds}, {"server_seconds", r.ServerSeconds}} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				return fmt.Errorf("tail request %d (%s): %s = %v, want finite and non-negative",
					i, r.ID, v.label, v.val)
			}
		}
		if r.ClientSeconds > prev {
			return fmt.Errorf("tail requests not sorted slowest-first at index %d", i)
		}
		prev = r.ClientSeconds
		if r.Joined {
			joined++
		}
		for name, sec := range r.Stages {
			if !knownStages[name] {
				return fmt.Errorf("tail request %d (%s): unknown stage %q", i, r.ID, name)
			}
			if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
				return fmt.Errorf("tail request %d (%s): stage %q = %v", i, r.ID, name, sec)
			}
		}
	}
	if joined != tail.Joined {
		return fmt.Errorf("tail joined = %d but %d requests are marked joined", tail.Joined, joined)
	}
	if tail.Joined > 0 && len(tail.StageTotals) == 0 {
		return fmt.Errorf("tail joined %d requests but has no stage_totals", tail.Joined)
	}
	for name, sec := range tail.StageTotals {
		if !knownStages[name] {
			return fmt.Errorf("tail stage_totals has unknown stage %q", name)
		}
		if math.IsNaN(sec) || math.IsInf(sec, 0) || sec < 0 {
			return fmt.Errorf("tail stage_totals[%q] = %v", name, sec)
		}
	}
	if tail.DominantStage != "" && !knownStages[tail.DominantStage] {
		return fmt.Errorf("tail dominant_stage %q is not a known stage", tail.DominantStage)
	}
	if tail.Joined > 0 && tail.DominantStage == "" {
		return fmt.Errorf("tail joined %d requests but dominant_stage is empty", tail.Joined)
	}
	return nil
}
