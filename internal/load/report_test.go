package load

import (
	"bytes"
	"strings"
	"testing"

	"transn/internal/obs"
)

// validReport builds a minimal well-formed report for mutation tests.
func validReport() *Report {
	hist := obs.HistSnapshot{
		Bounds: []float64{0.001, 0.01},
		Counts: []int64{5, 4, 1},
		Sum:    0.05,
		Count:  10,
	}
	return &Report{
		Schema:          BenchSchema,
		Name:            "unit",
		Target:          "http://127.0.0.1:1",
		Seed:            1,
		Mix:             "embedding=1",
		OfferedRate:     100,
		AchievedRate:    99,
		WarmupSeconds:   0.1,
		DurationSeconds: 1,
		Sent:            10,
		OK:              9,
		Errors:          1,
		ErrorRate:       0.1,
		Endpoints: map[string]EndpointStats{
			"embedding": {
				Sent: 10, OK: 9, Errors: 1,
				P50Seconds: 0.001, P90Seconds: 0.005, P99Seconds: 0.009,
				MaxSeconds: 0.004, MeanSeconds: 0.005,
				Histogram: hist,
			},
		},
		ErrorsByCode: map[string]int64{"timeout": 1},
		Reloads:      2,
		ReloadsOK:    2,
	}
}

func encode(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateAcceptsGoodReport(t *testing.T) {
	if err := Validate(encode(t, validReport())); err != nil {
		t.Fatal(err)
	}
}

// TestValidateAllowsP99AboveMax pins the deliberate non-check: an
// interpolated p99 can exceed the exact observed max (all samples low
// in a wide bucket), and the validator must not reject that.
func TestValidateAllowsP99AboveMax(t *testing.T) {
	rep := validReport()
	es := rep.Endpoints["embedding"]
	es.MaxSeconds = 0.0003 // below the interpolated p99 of 0.009
	rep.Endpoints["embedding"] = es
	if err := Validate(encode(t, rep)); err != nil {
		t.Fatalf("p99 > max rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Report)
		wantSub string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "bogus/v9" }, "schema"},
		{"empty name", func(r *Report) { r.Name = "" }, "name"},
		{"empty target", func(r *Report) { r.Target = "" }, "target"},
		{"zero rate", func(r *Report) { r.OfferedRate = 0 }, "offered_rate"},
		{"negative achieved", func(r *Report) { r.AchievedRate = -1 }, "achieved_rate"},
		{"zero duration", func(r *Report) { r.DurationSeconds = 0 }, "duration_seconds"},
		{"negative warmup", func(r *Report) { r.WarmupSeconds = -1 }, "warmup_seconds"},
		{"accounting mismatch", func(r *Report) { r.OK = 5 }, "!= sent"},
		{"error rate out of range", func(r *Report) { r.ErrorRate = 1.5 }, "error_rate"},
		{"nil endpoints", func(r *Report) { r.Endpoints = nil }, "endpoints"},
		{"unknown endpoint", func(r *Report) {
			r.Endpoints["bogus"] = EndpointStats{}
		}, "unknown endpoint"},
		{"endpoint accounting", func(r *Report) {
			es := r.Endpoints["embedding"]
			es.OK = 1
			r.Endpoints["embedding"] = es
		}, `endpoint "embedding"`},
		{"non-monotone quantiles", func(r *Report) {
			es := r.Endpoints["embedding"]
			es.P90Seconds = es.P99Seconds + 1
			r.Endpoints["embedding"] = es
		}, "not monotone"},
		{"negative quantile", func(r *Report) {
			es := r.Endpoints["embedding"]
			es.P50Seconds = -0.001
			r.Endpoints["embedding"] = es
		}, "p50_seconds"},
		{"histogram shape", func(r *Report) {
			es := r.Endpoints["embedding"]
			es.Histogram.Counts = es.Histogram.Counts[:1]
			r.Endpoints["embedding"] = es
		}, "histogram"},
		{"endpoint sum mismatch", func(r *Report) { r.Sent, r.OK = 20, 19 }, "sum to"},
		{"negative code count", func(r *Report) { r.ErrorsByCode["timeout"] = -1 }, "errors_by_code"},
		{"reloads_ok above reloads", func(r *Report) { r.ReloadsOK = 3 }, "reloads"},
		{"bad server stats", func(r *Report) {
			r.Server = &ServerStats{CacheHitRate: 2}
		}, "cache_hit_rate"},
		{"bad history section", func(r *Report) {
			r.History = &obs.HistoryDump{Schema: "transn.history/v9"}
		}, "history section"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := validReport()
			tc.mutate(rep)
			err := Validate(encode(t, rep))
			if err == nil {
				t.Fatal("validated")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestValidateAcceptsHistorySection pins the optional embedded history:
// a genuine recorder dump attached to the report must validate, and its
// absence must stay legal (older harnesses, history-disabled servers).
func TestValidateAcceptsHistorySection(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.MetricServeRequests).Add(3)
	h := obs.NewHistory(reg, obs.HistoryConfig{FineCapacity: 8, CoarseCapacity: 4})
	h.Start()() // one immediate sample in both rings, then stop
	rep := validReport()
	rep.History = h.Dump()
	if err := Validate(encode(t, rep)); err != nil {
		t.Fatalf("report with a real history section rejected: %v", err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if err := Validate([]byte("not json")); err == nil {
		t.Fatal("garbage validated")
	}
	if err := Validate([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("schema-less document validated")
	}
}
