// Package load is the serving load harness: an open-loop generator
// that drives a live transnserve instance with a mixed endpoint
// distribution at a target request rate and reports per-endpoint
// latency quantiles, achieved throughput, and error rates as a
// schema-stable transn.bench.serve/v1 document, optionally checked
// against declared SLO budgets (gates).
//
// The generator is open-loop on purpose: arrivals follow a Poisson
// process at the offered rate and each request is fired at its
// scheduled instant whether or not earlier requests have completed, so
// queueing delay shows up in the measured latency instead of being
// hidden by closed-loop backpressure (the coordinated-omission trap —
// a closed-loop client slows its own arrival rate exactly when the
// server degrades, erasing the evidence). Latency is measured from the
// scheduled arrival time, not the actual send time, for the same
// reason. See DESIGN.md §11.
//
// The request stream is deterministic for a fixed seed: arrivals,
// endpoint choices and request arguments all derive from
// internal/rngstream streams, so two runs against the same snapshot
// offer byte-identical workloads and differences in a report are
// differences in the server, not the harness.
package load

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Endpoint names one of the serving API endpoints the harness drives.
// The string values are the keys of the report's endpoints section.
type Endpoint string

// The drivable endpoints. Admin and health routes are deliberately not
// part of a workload mix: /admin/reload has its own schedule (Profile.
// Reloads) and health probes are not representative traffic.
const (
	// EndpointEmbedding drives GET /v1/embedding (final and per-view).
	EndpointEmbedding Endpoint = "embedding"
	// EndpointTranslate drives GET /v1/translate — the Eq. 8–10
	// translator forward pass, the most expensive request class.
	EndpointTranslate Endpoint = "translate"
	// EndpointKNN drives GET /v1/knn — the full-table cosine scan.
	EndpointKNN Endpoint = "knn"
	// EndpointInfer drives POST /v1/infer — online fold-in of an unseen
	// node.
	EndpointInfer Endpoint = "infer"
)

// Endpoints returns every drivable endpoint in stable report order.
func Endpoints() []Endpoint {
	return []Endpoint{EndpointEmbedding, EndpointTranslate, EndpointKNN, EndpointInfer}
}

// Mix is a workload distribution: relative (unnormalized) weights per
// endpoint. Endpoints absent or with weight zero are never requested.
type Mix map[Endpoint]float64

// DefaultMix approximates a read-heavy serving workload: mostly plain
// embedding lookups, a substantial translator share (the hot model
// path), some k-NN, a trickle of inference.
func DefaultMix() Mix {
	return Mix{EndpointEmbedding: 4, EndpointTranslate: 3, EndpointKNN: 2, EndpointInfer: 1}
}

// ParseMix parses a "embedding=4,translate=3,knn=2,infer=1" flag value.
// Unknown endpoint names and non-positive weights are errors; endpoints
// left out get weight zero.
func ParseMix(s string) (Mix, error) {
	m := Mix{}
	known := map[Endpoint]bool{}
	for _, ep := range Endpoints() {
		known[ep] = true
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("load: mix entry %q is not name=weight", part)
		}
		ep := Endpoint(strings.TrimSpace(name))
		if !known[ep] {
			return nil, fmt.Errorf("load: unknown endpoint %q in mix (known: embedding, translate, knn, infer)", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("load: mix weight for %q must be a positive number, got %q", name, val)
		}
		if _, dup := m[ep]; dup {
			return nil, fmt.Errorf("load: endpoint %q appears twice in mix", name)
		}
		m[ep] = w
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("load: empty mix")
	}
	return m, nil
}

// active returns the endpoints with positive weight, in stable order.
func (m Mix) active() []Endpoint {
	var out []Endpoint
	for _, ep := range Endpoints() {
		if m[ep] > 0 {
			out = append(out, ep)
		}
	}
	return out
}

// pick draws one endpoint from the mix using the given stream.
func (m Mix) pick(rng *rand.Rand) Endpoint {
	var total float64
	for _, ep := range Endpoints() {
		total += m[ep]
	}
	x := rng.Float64() * total
	for _, ep := range Endpoints() {
		x -= m[ep]
		if x < 0 {
			return ep
		}
	}
	// Float round-off on the last draw; the final active endpoint wins.
	act := m.active()
	return act[len(act)-1]
}

// String renders the mix in flag syntax, stable endpoint order.
func (m Mix) String() string {
	var parts []string
	for _, ep := range m.active() {
		parts = append(parts, fmt.Sprintf("%s=%g", ep, m[ep]))
	}
	return strings.Join(parts, ",")
}

// Arrivals returns the request offsets (from run start) of an open-loop
// Poisson arrival process at the given rate over the window: the gaps
// are i.i.d. exponential with mean 1/rate, so request counts in
// disjoint intervals are independent — the standard model for a large
// population of independent clients. The schedule is materialized up
// front (one draw per arrival) so the workload is deterministic for a
// fixed stream and can be replayed exactly.
func Arrivals(rng *rand.Rand, rate float64, window time.Duration) []time.Duration {
	if rate <= 0 || window <= 0 {
		return nil
	}
	var out []time.Duration
	t := 0.0
	limit := window.Seconds()
	for {
		t += rng.ExpFloat64() / rate
		if t >= limit {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}
