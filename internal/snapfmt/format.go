package snapfmt

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
)

// Wire-format constants for transn.snap/v1. SNAPSHOT.md is the
// normative spec; the section references in errors below point into it.
const (
	// Magic opens every .snap file (SNAPSHOT.md §2.1).
	Magic = "TRANSNAP"
	// Version is the format version this package reads and writes
	// (§2.2, §10).
	Version = 1
	// HeaderSize is the fixed header length in bytes (§2).
	HeaderSize = 40
	// DirEntrySize is the size of one section-directory entry (§2.5).
	DirEntrySize = 24
	// Align is the section alignment guarantee (§3.2): every section
	// offset is a multiple of Align, which is what makes f64 payloads
	// mmap-aliasable.
	Align = 8
	// TrailerSize is the length of the whole-file checksum trailer
	// (§9).
	TrailerSize = 8
)

// SectionKind identifies a section's payload type (§2.5).
type SectionKind uint32

// Section kinds of transn.snap/v1. Readers must reject unknown kinds
// (§10): v1 has no optional-section semantics beyond ANN presence.
const (
	// KindConfig is the fixed-size training configuration (§4).
	KindConfig SectionKind = 1
	// KindNames is the node-name string table (§5).
	KindNames SectionKind = 2
	// KindFinal is the final averaged embedding table (§6).
	KindFinal SectionKind = 3
	// KindViewIn / KindViewOut are per-view input/output embedding
	// tables; Arg is the view index (§6).
	KindViewIn  SectionKind = 4
	KindViewOut SectionKind = 5
	// KindTrans packs every translator weight and bias stack (§7).
	KindTrans SectionKind = 6
	// KindANN is the opaque serialized HNSW graph (§8).
	KindANN SectionKind = 7
)

// String returns the spec name of the kind.
func (k SectionKind) String() string {
	switch k {
	case KindConfig:
		return "config"
	case KindNames:
		return "names"
	case KindFinal:
		return "final"
	case KindViewIn:
		return "view_in"
	case KindViewOut:
		return "view_out"
	case KindTrans:
		return "trans"
	case KindANN:
		return "ann"
	}
	return fmt.Sprintf("unknown(%d)", uint32(k))
}

// Section is one decoded directory entry (§2.5): a kind, a
// kind-specific argument (the view index for per-view tables, zero
// otherwise), and the payload's absolute byte range.
type Section struct {
	Kind   SectionKind
	Arg    uint32
	Offset uint64
	Length uint64
}

// crcTable is the CRC64-ECMA table used for the trailer checksum (§9).
var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum computes the whole-file checksum over everything before the
// trailer (§9).
func Checksum(body []byte) uint64 {
	return crc64.Checksum(body, crcTable)
}

// pad8 returns the padding needed to 8-align n (§3.2).
func pad8(n uint64) uint64 { return (Align - n%Align) % Align }

// specErr formats a validation error citing its SNAPSHOT.md section.
func specErr(section, format string, args ...any) error {
	return fmt.Errorf("snapfmt: %s (SNAPSHOT.md %s)", fmt.Sprintf(format, args...), section)
}

// parseHeader validates the fixed header and section directory against
// §2 and returns the directory. data must be the whole file.
func parseHeader(data []byte) ([]Section, error) {
	if len(data) < HeaderSize+TrailerSize {
		return nil, specErr("§2", "file truncated: %d bytes, header alone needs %d", len(data), HeaderSize)
	}
	if string(data[:8]) != Magic {
		return nil, specErr("§2.1", "bad magic %q, want %q", data[:8], Magic)
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != Version {
		return nil, specErr("§2.2", "unsupported version %d, this reader handles %d", version, Version)
	}
	if flags := binary.LittleEndian.Uint32(data[12:16]); flags != 0 {
		return nil, specErr("§2.3", "unknown flags %#x, v1 defines none", flags)
	}
	sectionCount := binary.LittleEndian.Uint32(data[16:20])
	if hs := binary.LittleEndian.Uint32(data[20:24]); hs != HeaderSize {
		return nil, specErr("§2.3", "header size %d, want %d", hs, HeaderSize)
	}
	fileSize := binary.LittleEndian.Uint64(data[24:32])
	if fileSize != uint64(len(data)) {
		return nil, specErr("§2.4", "header says %d bytes, file has %d", fileSize, len(data))
	}
	if rsv := binary.LittleEndian.Uint64(data[32:40]); rsv != 0 {
		return nil, specErr("§2.3", "reserved header field is %#x, must be zero", rsv)
	}
	dirEnd := uint64(HeaderSize) + uint64(sectionCount)*DirEntrySize
	if dirEnd > fileSize-TrailerSize {
		return nil, specErr("§2.5", "directory of %d entries overruns the file", sectionCount)
	}
	sections := make([]Section, sectionCount)
	prevEnd := dirEnd
	for i := range sections {
		e := data[HeaderSize+i*DirEntrySize:]
		s := Section{
			Kind:   SectionKind(binary.LittleEndian.Uint32(e[0:4])),
			Arg:    binary.LittleEndian.Uint32(e[4:8]),
			Offset: binary.LittleEndian.Uint64(e[8:16]),
			Length: binary.LittleEndian.Uint64(e[16:24]),
		}
		if s.Kind < KindConfig || s.Kind > KindANN {
			return nil, specErr("§2.5", "section %d has unknown kind %d", i, uint32(s.Kind))
		}
		if s.Offset%Align != 0 {
			return nil, specErr("§3.2", "section %d (%s) offset %d is not %d-aligned", i, s.Kind, s.Offset, Align)
		}
		if s.Offset < prevEnd {
			return nil, specErr("§2.5", "section %d (%s) at offset %d overlaps the previous section", i, s.Kind, s.Offset)
		}
		end := s.Offset + s.Length
		if end < s.Offset || end > fileSize-TrailerSize {
			return nil, specErr("§2.5", "section %d (%s) [%d,%d) overruns the file body", i, s.Kind, s.Offset, end)
		}
		sections[i] = s
		prevEnd = end
	}
	return sections, nil
}

// verifyChecksum validates the trailer (§9) against the file body.
func verifyChecksum(data []byte) error {
	body := data[:len(data)-TrailerSize]
	want := binary.LittleEndian.Uint64(data[len(data)-TrailerSize:])
	if got := Checksum(body); got != want {
		return specErr("§9", "checksum mismatch: file says %016x, content hashes to %016x", want, got)
	}
	return nil
}
