package snapfmt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"transn/internal/graph"
	"transn/internal/transn"
)

// testGraph builds the quickstart academic network used across the
// repository's serving tests: three views with a shared-node pair.
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	univ := b.NodeType("university")
	authorship := b.EdgeType("authorship")
	citation := b.EdgeType("citation")
	affiliation := b.EdgeType("affiliation")
	a1 := b.AddNode(author, "A1")
	a2 := b.AddNode(author, "A2")
	a3 := b.AddNode(author, "A3")
	p1 := b.AddNode(paper, "P1")
	p2 := b.AddNode(paper, "P2")
	u1 := b.AddNode(univ, "U1")
	b.AddEdge(a1, p1, authorship, 1)
	b.AddEdge(a2, p1, authorship, 1)
	b.AddEdge(a3, p2, authorship, 1)
	b.AddEdge(p1, p2, citation, 1)
	b.AddEdge(a1, u1, affiliation, 1)
	b.AddEdge(a3, u1, affiliation, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func trainCfg(seed int64) transn.Config {
	cfg := transn.DefaultConfig()
	cfg.Dim = 8
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 4
	cfg.MaxWalksPerNode = 8
	cfg.Iterations = 2
	cfg.CrossPathLen = 2
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 1
	cfg.Seed = seed
	return cfg
}

// packTemp trains a model, packs it, and returns the paths plus the
// in-memory model.
func packTemp(t testing.TB, cfg transn.Config, ann []byte) (string, *transn.Model, *graph.Graph) {
	t.Helper()
	g := testGraph(t)
	m, err := transn.Train(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := FromModel(m, g)
	if err != nil {
		t.Fatal(err)
	}
	src.ANN = ann
	path := filepath.Join(t.TempDir(), "model.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Pack(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, m, g
}

// The round-trip property behind the format: for random models, every
// table a mmap-loaded snapshot serves must be byte-identical to what
// the gob path serves. Exercised across seeds and the two translator
// variants.
func TestPackOpenRoundTripMatchesGob(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  transn.Config
	}{
		{"seed1", trainCfg(1)},
		{"seed2", trainCfg(2)},
		{"simple-translator", func() transn.Config { c := trainCfg(3); c.SimpleTranslator = true; return c }()},
		{"no-cross-view", func() transn.Config { c := trainCfg(4); c.NoCrossView = true; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path, m, g := packTemp(t, tc.cfg, nil)
			// Gob reference: save + load the same model.
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			gm, err := transn.Load(&buf, g)
			if err != nil {
				t.Fatal(err)
			}
			gf, err := gm.Freeze()
			if err != nil {
				t.Fatal(err)
			}
			s, err := Open(path, OpenOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sm, err := s.Model(g)
			if err != nil {
				t.Fatal(err)
			}
			sf, err := sm.FreezeWithFinal(s.Final())
			if err != nil {
				t.Fatal(err)
			}
			want, got := gf.FinalTable(), sf.FinalTable()
			if want.R != got.R || want.C != got.C {
				t.Fatalf("final table %dx%d, want %dx%d", got.R, got.C, want.R, want.C)
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("final table diverges at element %d: %v vs %v", i, got.Data[i], want.Data[i])
				}
			}
			for vi := range gf.Views() {
				for id := 0; id < g.NumNodes(); id++ {
					w := gf.ViewEmbedding(vi, graph.NodeID(id))
					gv := sf.ViewEmbedding(vi, graph.NodeID(id))
					if (w == nil) != (gv == nil) {
						t.Fatalf("view %d node %d: presence diverges", vi, id)
					}
					for c := range w {
						if w[c] != gv[c] {
							t.Fatalf("view %d node %d dim %d: %v vs %v", vi, id, c, gv[c], w[c])
						}
					}
				}
			}
			// Translations must agree bit-for-bit too (same weights,
			// same arithmetic).
			for _, pr := range gf.ViewPairs() {
				for id := 0; id < g.NumNodes(); id++ {
					w, werr := gf.TranslateNode(pr.I, pr.J, graph.NodeID(id))
					gv, gerr := sf.TranslateNode(pr.I, pr.J, graph.NodeID(id))
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("pair (%d,%d) node %d: error presence diverges: %v vs %v", pr.I, pr.J, id, gerr, werr)
					}
					for c := range w {
						if w[c] != gv[c] {
							t.Fatalf("pair (%d,%d) node %d dim %d: %v vs %v", pr.I, pr.J, id, c, gv[c], w[c])
						}
					}
				}
			}
		})
	}
}

func TestPackDeterministic(t *testing.T) {
	g := testGraph(t)
	m, err := transn.Train(g, trainCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	src, err := FromModel(m, g)
	if err != nil {
		t.Fatal(err)
	}
	src.ANN = []byte("opaque-ann-payload")
	var a, b bytes.Buffer
	if err := Pack(&a, src); err != nil {
		t.Fatal(err)
	}
	if err := Pack(&b, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("packing the same source twice produced different bytes")
	}
}

func TestOpenNoMmapMatchesMmap(t *testing.T) {
	path, _, g := packTemp(t, trainCfg(6), []byte("annannann"))
	mm, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	cp, err := Open(path, OpenOptions{NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Close()
	if cp.Mapped() {
		t.Fatal("NoMmap load reports a mapping")
	}
	a, b := mm.Final(), cp.Final()
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("final tables diverge at %d", i)
		}
	}
	if !bytes.Equal(mm.ANN(), cp.ANN()) {
		t.Fatal("ANN payloads diverge between loaders")
	}
	ma, _ := mm.Model(g)
	ca, _ := cp.Model(g)
	if ma == nil || ca == nil {
		t.Fatal("Model assembly failed on one loader")
	}
}

// Every section offset must be 8-aligned (§3.2) — the structural
// guarantee behind zero-copy float aliasing.
func TestSectionAlignment(t *testing.T) {
	path, _, _ := packTemp(t, trainCfg(7), []byte("xyz"))
	s, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, sec := range s.Sections() {
		if sec.Offset%Align != 0 {
			t.Errorf("section %d (%s) offset %d not %d-aligned", i, sec.Kind, sec.Offset, Align)
		}
	}
	if len(s.Sections()) < 5 {
		t.Fatalf("only %d sections; want config+names+final+views+trans at least", len(s.Sections()))
	}
}

// The corruption table: every row mutates one structural aspect of a
// valid file and must be rejected with an error citing the SNAPSHOT.md
// section that forbids it.
func TestOpenRejectsCorruption(t *testing.T) {
	path, _, _ := packTemp(t, trainCfg(8), []byte("ann-bytes"))
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// reseal recomputes the trailer so a mutation tests its own
	// validation rule rather than tripping the checksum first (§9
	// covers checksum corruption explicitly below).
	reseal := func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[len(b)-TrailerSize:], Checksum(b[:len(b)-TrailerSize]))
		return b
	}
	cases := []struct {
		name    string
		section string // SNAPSHOT.md section the error must cite
		mutate  func(b []byte) []byte
	}{
		{"bad magic", "§2.1", func(b []byte) []byte { b[0] = 'X'; return reseal(b) }},
		{"wrong version", "§2.2", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:12], 99); return reseal(b) }},
		{"unknown flags", "§2.3", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[12:16], 4); return reseal(b) }},
		{"truncated header", "§2", func(b []byte) []byte { return b[:HeaderSize-4] }},
		{"file size mismatch", "§2.4", func(b []byte) []byte { return reseal(b[:len(b)-16]) }},
		{"directory overrun", "§2.5", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[16:20], 1<<20); return reseal(b) }},
		{"unknown section kind", "§2.5", func(b []byte) []byte { binary.LittleEndian.PutUint32(b[HeaderSize:], 42); return reseal(b) }},
		{"misaligned section", "§3.2", func(b []byte) []byte {
			off := binary.LittleEndian.Uint64(b[HeaderSize+8 : HeaderSize+16])
			binary.LittleEndian.PutUint64(b[HeaderSize+8:HeaderSize+16], off+4)
			return reseal(b)
		}},
		{"section overruns file", "§2.5", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[HeaderSize+16:HeaderSize+24], 1<<40)
			return reseal(b)
		}},
		{"bad checksum", "§9", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"corrupt config flag", "§4", func(b []byte) []byte {
			// config is the first section, right after the directory.
			nsec := binary.LittleEndian.Uint32(b[16:20])
			cfgOff := binary.LittleEndian.Uint64(b[HeaderSize+8 : HeaderSize+16])
			_ = nsec
			b[cfgOff+136] = 7 // flag bytes must be 0 or 1
			return reseal(b)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(append([]byte(nil), good...))
			p := filepath.Join(t.TempDir(), "bad.snap")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Open(p, OpenOptions{})
			if err == nil {
				t.Fatal("corrupted snapshot accepted")
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.section)) {
				t.Fatalf("error %q does not cite SNAPSHOT.md %s", err, tc.section)
			}
		})
	}
	if _, err := Open(path, OpenOptions{}); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// Serving against the wrong graph must fail loudly at Model time.
func TestModelRejectsWrongGraph(t *testing.T) {
	path, _, _ := packTemp(t, trainCfg(9), nil)
	s, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	b := graph.NewBuilder()
	nt := b.NodeType("x")
	et := b.EdgeType("e")
	n1 := b.AddNode(nt, "other1")
	n2 := b.AddNode(nt, "other2")
	b.AddEdge(n1, n2, et, 1)
	wrong, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Model(wrong); err == nil {
		t.Fatal("snapshot accepted a graph it was not packed against")
	}
}

func TestInspectDocument(t *testing.T) {
	path, _, _ := packTemp(t, trainCfg(10), []byte("ann!"))
	s, err := Open(path, OpenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	doc := s.Describe()
	if !doc.HasANN || doc.Nodes != 6 || doc.Views != 3 || doc.Dim != 8 {
		t.Fatalf("implausible inspect doc: %+v", doc)
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateInspect(data); err != nil {
		t.Fatalf("Describe output fails its own validator: %v", err)
	}
	bad := doc
	bad.Schema = "nope"
	bd, _ := json.Marshal(bad)
	if err := ValidateInspect(bd); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = doc
	bad.Sections = nil
	bd, _ = json.Marshal(bad)
	if err := ValidateInspect(bd); err == nil {
		t.Error("empty section list accepted")
	}
	if err := ValidateInspect([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFromModelRejectsNonFinite(t *testing.T) {
	g := testGraph(t)
	m, err := transn.Train(g, trainCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	// Poison one view table element.
	e := m.Export()
	for _, tbl := range e.EmbIn {
		if tbl != nil {
			tbl.Data[0] = nan()
			break
		}
	}
	if _, err := FromModel(m, g); err == nil {
		t.Fatal("FromModel packed a non-finite model")
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}
