package snapfmt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/transn"
)

// configSize is the fixed length of the config section (§4): 15 i64/u64
// fields, 2 f64 fields, 8 flag bytes.
const configSize = 15*8 + 2*8 + 8

// Source is everything Pack writes into a .snap file. Build one with
// FromModel, or assemble it by hand in tests.
type Source struct {
	// Export is the model's learned state (tables and translators).
	Export transn.Export
	// NodeNames lists every node name in global-id order; it becomes
	// the names section (§5) and is validated against the serving
	// graph at load time.
	NodeNames []string
	// Final is the precomputed final averaged embedding table (§6),
	// stored so loaders never re-materialize it.
	Final *mat.Dense
	// ANN is an optional serialized HNSW graph (§8), opaque to this
	// package (internal/ann owns its layout).
	ANN []byte
}

// FromModel captures a trained model as a pack source: its export, the
// graph's node names, and a freshly averaged final table. The model is
// swept for non-finite values first — a .snap file is finite by
// construction (§1), which is what lets snap loaders skip the sweep.
func FromModel(m *transn.Model, g *graph.Graph) (*Source, error) {
	if err := m.CheckFinite(); err != nil {
		return nil, fmt.Errorf("snapfmt: refusing to pack a non-finite model: %w", err)
	}
	names := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		names = append(names, n.Name)
	}
	return &Source{Export: m.Export(), NodeNames: names, Final: m.Embeddings()}, nil
}

func matrixLen(m *mat.Dense) uint64 {
	return 16 + uint64(m.R)*uint64(m.C)*8
}

func putMatrix(b []byte, m *mat.Dense) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(m.R))
	binary.LittleEndian.PutUint64(b[8:16], uint64(m.C))
	for i, v := range m.Data {
		binary.LittleEndian.PutUint64(b[16+i*8:], math.Float64bits(v))
	}
}

// Pack lays out src as a transn.snap/v1 file and writes it to w. The
// output is a pure function of src: packing the same source twice
// yields byte-identical files (§1). The whole file is assembled in
// memory (packing is an offline operation; serving never packs).
func Pack(w io.Writer, src *Source) error {
	if src.Final == nil {
		return fmt.Errorf("snapfmt: pack source has no final table")
	}
	if len(src.NodeNames) != src.Final.R {
		return fmt.Errorf("snapfmt: %d node names for %d final rows", len(src.NodeNames), src.Final.R)
	}
	if len(src.Export.EmbIn) != len(src.Export.EmbOut) {
		return fmt.Errorf("snapfmt: %d in-tables but %d out-tables", len(src.Export.EmbIn), len(src.Export.EmbOut))
	}
	// First pass: the section list with lengths.
	namesLen := uint64(16 + (len(src.NodeNames)+1)*4)
	namesLen += pad8(namesLen)
	blobLen := uint64(0)
	for _, n := range src.NodeNames {
		blobLen += uint64(len(n))
	}
	namesLen += blobLen
	sections := []Section{
		{Kind: KindConfig, Length: configSize},
		{Kind: KindNames, Length: namesLen},
		{Kind: KindFinal, Length: matrixLen(src.Final)},
	}
	for vi := range src.Export.EmbIn {
		in, out := src.Export.EmbIn[vi], src.Export.EmbOut[vi]
		if in == nil {
			continue // empty view: no sections (§6)
		}
		if out == nil {
			return fmt.Errorf("snapfmt: view %d has an in-table but no out-table", vi)
		}
		sections = append(sections,
			Section{Kind: KindViewIn, Arg: uint32(vi), Length: matrixLen(in)},
			Section{Kind: KindViewOut, Arg: uint32(vi), Length: matrixLen(out)},
		)
	}
	if len(src.Export.TransW) > 0 {
		tl := uint64(8 + len(src.Export.TransW)*32)
		for p := range src.Export.TransW {
			for side := 0; side < 2; side++ {
				if len(src.Export.TransW[p][side]) != len(src.Export.TransB[p][side]) {
					return fmt.Errorf("snapfmt: pair %d side %d has %d weights but %d biases",
						p, side, len(src.Export.TransW[p][side]), len(src.Export.TransB[p][side]))
				}
				for _, wm := range src.Export.TransW[p][side] {
					tl += matrixLen(wm)
				}
				for _, bm := range src.Export.TransB[p][side] {
					tl += matrixLen(bm)
				}
			}
		}
		sections = append(sections, Section{Kind: KindTrans, Length: tl})
	}
	if len(src.ANN) > 0 {
		sections = append(sections, Section{Kind: KindANN, Length: uint64(len(src.ANN))})
	}
	// Assign offsets. HeaderSize and DirEntrySize are both multiples of
	// Align, so the first section lands aligned and padding keeps the
	// rest aligned (§3.2).
	cur := uint64(HeaderSize) + uint64(len(sections))*DirEntrySize
	for i := range sections {
		sections[i].Offset = cur
		cur += sections[i].Length + pad8(sections[i].Length)
	}
	total := cur + TrailerSize
	buf := make([]byte, total)
	// Header (§2) and directory (§2.5).
	copy(buf[0:8], Magic)
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	binary.LittleEndian.PutUint32(buf[16:20], uint32(len(sections)))
	binary.LittleEndian.PutUint32(buf[20:24], HeaderSize)
	binary.LittleEndian.PutUint64(buf[24:32], total)
	for i, s := range sections {
		e := buf[HeaderSize+i*DirEntrySize:]
		binary.LittleEndian.PutUint32(e[0:4], uint32(s.Kind))
		binary.LittleEndian.PutUint32(e[4:8], s.Arg)
		binary.LittleEndian.PutUint64(e[8:16], s.Offset)
		binary.LittleEndian.PutUint64(e[16:24], s.Length)
	}
	// Payloads.
	for _, s := range sections {
		b := buf[s.Offset : s.Offset+s.Length]
		switch s.Kind {
		case KindConfig:
			packConfig(b, src)
		case KindNames:
			packNames(b, src.NodeNames, blobLen)
		case KindFinal:
			putMatrix(b, src.Final)
		case KindViewIn:
			putMatrix(b, src.Export.EmbIn[s.Arg])
		case KindViewOut:
			putMatrix(b, src.Export.EmbOut[s.Arg])
		case KindTrans:
			packTrans(b, &src.Export)
		case KindANN:
			copy(b, src.ANN)
		}
	}
	binary.LittleEndian.PutUint64(buf[total-TrailerSize:], Checksum(buf[:total-TrailerSize]))
	_, err := w.Write(buf)
	return err
}

// packConfig encodes the fixed config section (§4).
func packConfig(b []byte, src *Source) {
	c := src.Export.Cfg
	ints := []int64{
		int64(c.Dim), int64(c.WalkLength), int64(c.MinWalksPerNode),
		int64(c.MaxWalksPerNode), int64(c.Iterations), int64(c.NegativeSamples),
		int64(c.Encoders), int64(c.CrossPathLen), int64(c.CrossPathsPerPair),
		int64(c.Loss), c.Seed, int64(c.Workers),
		int64(len(src.NodeNames)), int64(len(src.Export.EmbIn)), int64(len(src.Export.TransW)),
	}
	for i, v := range ints {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	binary.LittleEndian.PutUint64(b[120:], math.Float64bits(c.LRSingle))
	binary.LittleEndian.PutUint64(b[128:], math.Float64bits(c.LRCross))
	flags := []bool{
		c.DeterministicApply, c.Parallel, c.NoCrossView, c.SimpleWalk,
		c.SimpleTranslator, c.NoTranslation, c.NoReconstruction, src.Export.TranslatorSimple,
	}
	for i, f := range flags {
		if f {
			b[136+i] = 1
		}
	}
}

// packNames encodes the node-name table (§5): counts, an offsets
// array, padding, then the concatenated UTF-8 blob.
func packNames(b []byte, names []string, blobLen uint64) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(len(names)))
	binary.LittleEndian.PutUint64(b[8:16], blobLen)
	off := uint32(0)
	for i, n := range names {
		binary.LittleEndian.PutUint32(b[16+i*4:], off)
		off += uint32(len(n))
	}
	binary.LittleEndian.PutUint32(b[16+len(names)*4:], off)
	blobStart := uint64(16 + (len(names)+1)*4)
	blobStart += pad8(blobStart)
	pos := blobStart
	for _, n := range names {
		copy(b[pos:], n)
		pos += uint64(len(n))
	}
}

// packTrans encodes every translator stack (§7): a pair count, a
// per-pair/per-side count table, then the weight and bias matrices in
// (pair, side, Ws..., Bs...) order.
func packTrans(b []byte, e *transn.Export) {
	binary.LittleEndian.PutUint64(b[0:8], uint64(len(e.TransW)))
	pos := uint64(8)
	for p := range e.TransW {
		for side := 0; side < 2; side++ {
			binary.LittleEndian.PutUint64(b[pos:], uint64(len(e.TransW[p][side])))
			binary.LittleEndian.PutUint64(b[pos+8:], uint64(len(e.TransB[p][side])))
			pos += 16
		}
	}
	for p := range e.TransW {
		for side := 0; side < 2; side++ {
			for _, wm := range e.TransW[p][side] {
				putMatrix(b[pos:], wm)
				pos += matrixLen(wm)
			}
			for _, bm := range e.TransB[p][side] {
				putMatrix(b[pos:], bm)
				pos += matrixLen(bm)
			}
		}
	}
}
