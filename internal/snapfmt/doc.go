// Package snapfmt implements transn.snap/v1, the flat little-endian
// binary snapshot format specified normatively in SNAPSHOT.md. A .snap
// file carries everything transnserve needs — config, node-name table,
// per-view and final float tables, translator weights, and optionally
// a serialized HNSW graph — in sections laid out so the float tables
// can be used directly out of a read-only mmap: every section starts
// on an 8-byte boundary and every float payload is a plain f64 array.
//
// The format exists to make reload O(header) instead of O(model): the
// gob loader decodes and copies every matrix on each SIGHUP, while
// Open maps the file and hands out tables that alias the mapping, so
// a reload touches only the header, directory and name table, and
// models larger than RAM stay servable (pages fault in on demand).
//
// Invariants:
//
//   - Read-only aliasing. On little-endian hosts the returned matrices
//     alias the mapped file. Nothing in this repository writes through
//     a loaded table (transn.Frozen's read-only contract), and the
//     mapping is PROT_READ, so a stray write faults instead of
//     corrupting the snapshot. The aliased memory is valid only until
//     Close; the serving layer ties Close to snapshot lifetime with a
//     finalizer so in-flight requests can never observe an unmapped
//     table.
//   - Fallback, not failure. If mmap is unavailable, the host is
//     big-endian, or a section is misaligned, Open falls back to a
//     copying decode of the same bytes; ZeroCopy reports which path
//     was taken. Results are identical either way.
//   - Fail-closed validation. The header, directory, section bounds,
//     alignment and the whole-file CRC64 checksum are verified before
//     any payload is interpreted; every validation error cites the
//     SNAPSHOT.md section it enforces.
//   - Determinism. Pack is a pure function of its Source: packing the
//     same model (and ANN bytes) twice produces byte-identical files.
package snapfmt
