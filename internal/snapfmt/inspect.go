package snapfmt

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// InspectSchema identifies the `transn snapshot inspect -json`
// document, validated by `transn checkreport`.
const InspectSchema = "transn.snap.inspect/v1"

// Inspect is the schema-stable description of a .snap file: the header
// facts, the section directory, and the model shape — everything an
// operator needs to sanity-check a snapshot without loading a graph.
// SNAPSHOT.md §11 walks through an example.
type Inspect struct {
	// Schema is always InspectSchema.
	Schema string `json:"schema"`
	// Version is the format version (§2.2).
	Version int `json:"version"`
	// SizeBytes is the whole-file length, trailer included.
	SizeBytes int64 `json:"size_bytes"`
	// Checksum is the CRC64-ECMA trailer (§9), in hex.
	Checksum string `json:"checksum"`
	// Nodes, Views, Pairs and Dim are the model shape from the config
	// section (§4).
	Nodes int `json:"nodes"`
	Views int `json:"views"`
	Pairs int `json:"pairs"`
	Dim   int `json:"dim"`
	// HasANN reports whether an ANN section (§8) is present.
	HasANN bool `json:"has_ann"`
	// Sections is the directory in file order (§2.5).
	Sections []InspectSection `json:"sections"`
}

// InspectSection is one directory row in an Inspect document.
type InspectSection struct {
	// Kind is the section kind's spec name (config, names, final,
	// view_in, view_out, trans, ann).
	Kind string `json:"kind"`
	// Arg is the kind-specific argument (view index; 0 otherwise).
	Arg uint32 `json:"arg"`
	// Offset and Length are the payload's byte range.
	Offset uint64 `json:"offset"`
	Length uint64 `json:"length"`
}

// Describe summarizes an open snapshot as an Inspect document.
func (s *Snapshot) Describe() Inspect {
	doc := Inspect{
		Schema:    InspectSchema,
		Version:   Version,
		SizeBytes: int64(len(s.data)),
		Checksum:  fmt.Sprintf("%016x", binary.LittleEndian.Uint64(s.data[len(s.data)-TrailerSize:])),
		Nodes:     s.nodes,
		Views:     s.views,
		Pairs:     s.pairs,
		Dim:       s.cfg.Dim,
		HasANN:    len(s.annData) > 0,
	}
	for _, sec := range s.sections {
		doc.Sections = append(doc.Sections, InspectSection{
			Kind:   sec.Kind.String(),
			Arg:    sec.Arg,
			Offset: sec.Offset,
			Length: sec.Length,
		})
	}
	return doc
}

// validKinds mirrors SectionKind.String for inspection documents.
var validKinds = []string{"config", "names", "final", "view_in", "view_out", "trans", "ann"}

// ValidateInspect checks a serialized Inspect document for schema and
// structural sanity; it is the `transn checkreport` hook for this
// document kind.
func ValidateInspect(data []byte) error {
	var doc Inspect
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("snap inspect: %w", err)
	}
	if doc.Schema != InspectSchema {
		return fmt.Errorf("snap inspect: schema %q, want %q", doc.Schema, InspectSchema)
	}
	if doc.Version != Version {
		return fmt.Errorf("snap inspect: version %d, want %d", doc.Version, Version)
	}
	if doc.SizeBytes < HeaderSize+TrailerSize {
		return fmt.Errorf("snap inspect: size %d below the format minimum", doc.SizeBytes)
	}
	if len(doc.Checksum) != 16 {
		return fmt.Errorf("snap inspect: checksum %q is not 16 hex digits", doc.Checksum)
	}
	if doc.Nodes <= 0 || doc.Views <= 0 || doc.Pairs < 0 || doc.Dim <= 0 {
		return fmt.Errorf("snap inspect: implausible shape: nodes=%d views=%d pairs=%d dim=%d",
			doc.Nodes, doc.Views, doc.Pairs, doc.Dim)
	}
	if len(doc.Sections) == 0 {
		return fmt.Errorf("snap inspect: no sections")
	}
	sawANN := false
	for i, sec := range doc.Sections {
		ok := false
		for _, k := range validKinds {
			if sec.Kind == k {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("snap inspect: section %d has unknown kind %q", i, sec.Kind)
		}
		if sec.Offset%Align != 0 {
			return fmt.Errorf("snap inspect: section %d offset %d not %d-aligned", i, sec.Offset, Align)
		}
		if sec.Offset+sec.Length > uint64(doc.SizeBytes) {
			return fmt.Errorf("snap inspect: section %d overruns the recorded file size", i)
		}
		if sec.Kind == "ann" {
			sawANN = true
		}
	}
	if sawANN != doc.HasANN {
		return fmt.Errorf("snap inspect: has_ann=%v disagrees with the section list", doc.HasANN)
	}
	return nil
}
