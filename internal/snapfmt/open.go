package snapfmt

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"syscall"
	"unsafe"

	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/transn"
)

// OpenOptions tunes Open. The zero value is the production default:
// mmap with checksum verification.
type OpenOptions struct {
	// NoMmap forces the copying loader (os.ReadFile + decode), the
	// same path taken automatically when mmap fails. Mostly for tests
	// and for hosts where mapping is undesirable.
	NoMmap bool
}

// Snapshot is a loaded .snap file: validated, decoded, and — on the
// zero-copy path — backed by a read-only mapping that must outlive
// every table it handed out. Close unmaps; the serving layer calls it
// from a finalizer on the owning serve snapshot so the mapping lives
// exactly as long as the last reference.
type Snapshot struct {
	data     []byte
	mapped   bool
	zeroCopy bool
	sections []Section

	cfg              transn.Config
	translatorSimple bool
	nodes, views     int
	pairs            int
	names            []string
	final            *mat.Dense
	embIn, embOut    []*mat.Dense
	transW, transB   [][2][]*mat.Dense
	annData          []byte
}

// hostLittleEndian reports whether this machine stores integers
// little-endian — the first zero-copy precondition (§3.1).
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Open maps (or reads) a .snap file, validates it end to end — header,
// directory, checksum, section structure — and decodes the metadata
// sections. Float tables are aliased out of the mapping when the host
// is little-endian and the mapping is 8-aligned (§3.1–§3.2), otherwise
// copied; either way the returned Snapshot behaves identically.
func Open(path string, opts OpenOptions) (*Snapshot, error) {
	s := &Snapshot{}
	if opts.NoMmap {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("snapfmt: %w", err)
		}
		s.data = data
	} else {
		data, mapped, err := mapFile(path)
		if err != nil {
			return nil, err
		}
		s.data = data
		s.mapped = mapped
	}
	if err := s.decode(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// mapFile mmaps path read-only, falling back to a plain read when the
// mapping fails (exotic filesystems, empty files, hosts without mmap
// semantics). The bool reports whether the bytes are a mapping.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("snapfmt: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("snapfmt: %w", err)
	}
	size := st.Size()
	if size > 0 && size <= math.MaxInt {
		data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
		if err == nil {
			return data, true, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("snapfmt: %w", err)
	}
	return data, false, nil
}

// Close releases the mapping (a no-op for copied loads). The Snapshot
// and every aliased table are invalid afterwards.
func (s *Snapshot) Close() error {
	if !s.mapped || s.data == nil {
		s.data = nil
		return nil
	}
	data := s.data
	s.data = nil
	s.mapped = false
	return syscall.Munmap(data)
}

// ZeroCopy reports whether the float tables alias the file bytes
// (true) or were copied out (false).
func (s *Snapshot) ZeroCopy() bool { return s.zeroCopy }

// Mapped reports whether the file is mmap-backed.
func (s *Snapshot) Mapped() bool { return s.mapped }

// SizeBytes returns the file size.
func (s *Snapshot) SizeBytes() int { return len(s.data) }

// Sections returns the decoded section directory, in file order.
func (s *Snapshot) Sections() []Section { return s.sections }

// Config returns the training configuration stored in the snapshot.
func (s *Snapshot) Config() transn.Config { return s.cfg }

// NodeNames returns the node-name table in global-id order. The slice
// is owned by the Snapshot; treat it as read-only.
func (s *Snapshot) NodeNames() []string { return s.names }

// Final returns the stored final embedding table. On the zero-copy
// path it aliases the mapping: read-only, valid until Close.
func (s *Snapshot) Final() *mat.Dense { return s.final }

// ANN returns the serialized HNSW section, or nil when the snapshot
// was packed without one. Aliases the mapping on the zero-copy path.
func (s *Snapshot) ANN() []byte { return s.annData }

func (s *Snapshot) decode() error {
	sections, err := parseHeader(s.data)
	if err != nil {
		return err
	}
	if err := verifyChecksum(s.data); err != nil {
		return err
	}
	s.sections = sections
	s.zeroCopy = hostLittleEndian() && uintptr(unsafe.Pointer(&s.data[0]))%Align == 0
	var seen [KindANN + 1]int
	for _, sec := range sections {
		seen[sec.Kind]++
	}
	for _, kind := range []SectionKind{KindConfig, KindNames, KindFinal} {
		if seen[kind] != 1 {
			return specErr("§2.5", "want exactly one %s section, found %d", kind, seen[kind])
		}
	}
	if seen[KindTrans] > 1 || seen[KindANN] > 1 {
		return specErr("§2.5", "duplicate trans/ann section")
	}
	for _, sec := range sections {
		body := s.data[sec.Offset : sec.Offset+sec.Length]
		var err error
		switch sec.Kind {
		case KindConfig:
			err = s.decodeConfig(body)
		case KindNames:
			err = s.decodeNames(body)
		case KindFinal:
			s.final, err = s.decodeMatrix(body, "§6", "final")
		case KindTrans, KindViewIn, KindViewOut, KindANN:
			// Decoded below, after config told us the view count.
		}
		if err != nil {
			return err
		}
	}
	s.embIn = make([]*mat.Dense, s.views)
	s.embOut = make([]*mat.Dense, s.views)
	for _, sec := range sections {
		body := s.data[sec.Offset : sec.Offset+sec.Length]
		var err error
		switch sec.Kind {
		case KindViewIn, KindViewOut:
			err = s.decodeView(sec, body)
		case KindTrans:
			err = s.decodeTrans(body)
		case KindANN:
			s.annData = body
		}
		if err != nil {
			return err
		}
	}
	if s.nodes != len(s.names) {
		return specErr("§5", "config says %d nodes, names section has %d", s.nodes, len(s.names))
	}
	if s.final.R != s.nodes || s.final.C != s.cfg.Dim {
		return specErr("§6", "final table is %dx%d, config says %dx%d", s.final.R, s.final.C, s.nodes, s.cfg.Dim)
	}
	if s.pairs > 0 && s.transW == nil {
		return specErr("§7", "config says %d translator pairs but there is no trans section", s.pairs)
	}
	return nil
}

// decodeConfig decodes the fixed config section (§4).
func (s *Snapshot) decodeConfig(b []byte) error {
	if len(b) != configSize {
		return specErr("§4", "config section is %d bytes, want %d", len(b), configSize)
	}
	i64 := func(i int) int64 { return int64(binary.LittleEndian.Uint64(b[i*8:])) }
	c := transn.Config{
		Dim: int(i64(0)), WalkLength: int(i64(1)), MinWalksPerNode: int(i64(2)),
		MaxWalksPerNode: int(i64(3)), Iterations: int(i64(4)), NegativeSamples: int(i64(5)),
		Encoders: int(i64(6)), CrossPathLen: int(i64(7)), CrossPathsPerPair: int(i64(8)),
		Loss: transn.CrossLoss(i64(9)), Seed: i64(10), Workers: int(i64(11)),
	}
	nodes, views, pairs := i64(12), i64(13), i64(14)
	c.LRSingle = math.Float64frombits(binary.LittleEndian.Uint64(b[120:]))
	c.LRCross = math.Float64frombits(binary.LittleEndian.Uint64(b[128:]))
	flags := b[136:144]
	for i, v := range flags {
		if v > 1 {
			return specErr("§4", "flag byte %d is %d, must be 0 or 1", i, v)
		}
	}
	c.DeterministicApply = flags[0] == 1
	c.Parallel = flags[1] == 1
	c.NoCrossView = flags[2] == 1
	c.SimpleWalk = flags[3] == 1
	c.SimpleTranslator = flags[4] == 1
	c.NoTranslation = flags[5] == 1
	c.NoReconstruction = flags[6] == 1
	s.translatorSimple = flags[7] == 1
	if c.Dim <= 0 || nodes <= 0 || views <= 0 || pairs < 0 {
		return specErr("§4", "implausible counts: dim=%d nodes=%d views=%d pairs=%d", c.Dim, nodes, views, pairs)
	}
	const maxCount = 1 << 40
	if nodes > maxCount || views > 1<<20 || pairs > 1<<30 {
		return specErr("§4", "counts overflow sanity bounds: nodes=%d views=%d pairs=%d", nodes, views, pairs)
	}
	s.cfg = c
	s.nodes, s.views, s.pairs = int(nodes), int(views), int(pairs)
	return nil
}

// decodeNames decodes the node-name table (§5).
func (s *Snapshot) decodeNames(b []byte) error {
	if len(b) < 16 {
		return specErr("§5", "names section truncated at %d bytes", len(b))
	}
	count := binary.LittleEndian.Uint64(b[0:8])
	blobLen := binary.LittleEndian.Uint64(b[8:16])
	if count > uint64(len(b)) {
		return specErr("§5", "name count %d larger than the section", count)
	}
	offsEnd := 16 + (count+1)*4
	blobStart := offsEnd + pad8(offsEnd)
	if blobStart+blobLen != uint64(len(b)) {
		return specErr("§5", "names section is %d bytes, layout needs %d", len(b), blobStart+blobLen)
	}
	blob := b[blobStart:]
	names := make([]string, count)
	prev := uint32(0)
	for i := uint64(0); i < count; i++ {
		lo := binary.LittleEndian.Uint32(b[16+i*4:])
		hi := binary.LittleEndian.Uint32(b[16+(i+1)*4:])
		if lo != prev || hi < lo || uint64(hi) > blobLen {
			return specErr("§5", "name %d offsets [%d,%d) are not contiguous within the blob", i, lo, hi)
		}
		names[i] = string(blob[lo:hi])
		prev = hi
	}
	if uint64(prev) != blobLen {
		return specErr("§5", "name offsets cover %d of %d blob bytes", prev, blobLen)
	}
	s.names = names
	return nil
}

// decodeMatrix decodes one matrix blob (§3.3), aliasing the payload on
// the zero-copy path.
func (s *Snapshot) decodeMatrix(b []byte, spec, what string) (*mat.Dense, error) {
	if len(b) < 16 {
		return nil, specErr(spec, "%s matrix blob truncated at %d bytes", what, len(b))
	}
	rows := binary.LittleEndian.Uint64(b[0:8])
	cols := binary.LittleEndian.Uint64(b[8:16])
	n := rows * cols
	if cols != 0 && rows > math.MaxUint64/cols || n > uint64(len(b))/8 || 16+n*8 != uint64(len(b)) {
		return nil, specErr(spec, "%s matrix claims %dx%d but the blob is %d bytes", what, rows, cols, len(b))
	}
	payload := b[16:]
	var data []float64
	if s.zeroCopy && n > 0 {
		// §3.2's alignment guarantee puts every blob payload on an
		// 8-byte boundary; with a little-endian host the bytes ARE the
		// f64 array.
		data = unsafe.Slice((*float64)(unsafe.Pointer(&payload[0])), n)
	} else {
		data = make([]float64, n)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	}
	return mat.FromSlice(int(rows), int(cols), data), nil
}

// decodeView decodes one per-view table section (§6).
func (s *Snapshot) decodeView(sec Section, body []byte) error {
	vi := int(sec.Arg)
	if vi >= s.views {
		return specErr("§6", "%s section for view %d, config says %d views", sec.Kind, vi, s.views)
	}
	m, err := s.decodeMatrix(body, "§6", sec.Kind.String())
	if err != nil {
		return err
	}
	tgt := &s.embIn
	if sec.Kind == KindViewOut {
		tgt = &s.embOut
	}
	if (*tgt)[vi] != nil {
		return specErr("§6", "duplicate %s section for view %d", sec.Kind, vi)
	}
	(*tgt)[vi] = m
	return nil
}

// decodeTrans decodes the translator section (§7).
func (s *Snapshot) decodeTrans(b []byte) error {
	if len(b) < 8 {
		return specErr("§7", "trans section truncated at %d bytes", len(b))
	}
	pairs := binary.LittleEndian.Uint64(b[0:8])
	if int(pairs) != s.pairs {
		return specErr("§7", "trans section has %d pairs, config says %d", pairs, s.pairs)
	}
	counts := uint64(8) + pairs*32
	if uint64(len(b)) < counts {
		return specErr("§7", "trans section too short for %d pair-count rows", pairs)
	}
	pos := counts
	s.transW = make([][2][]*mat.Dense, pairs)
	s.transB = make([][2][]*mat.Dense, pairs)
	for p := uint64(0); p < pairs; p++ {
		for side := 0; side < 2; side++ {
			row := 8 + p*32 + uint64(side)*16
			wCount := binary.LittleEndian.Uint64(b[row:])
			bCount := binary.LittleEndian.Uint64(b[row+8:])
			if wCount > 1<<20 || bCount > 1<<20 {
				return specErr("§7", "pair %d side %d claims %d/%d stacks", p, side, wCount, bCount)
			}
			next := func(what string) (*mat.Dense, error) {
				if uint64(len(b)) < pos+16 {
					return nil, specErr("§7", "trans section truncated in pair %d %s", p, what)
				}
				rows := binary.LittleEndian.Uint64(b[pos:])
				cols := binary.LittleEndian.Uint64(b[pos+8:])
				if cols != 0 && rows > math.MaxUint64/cols || rows*cols > uint64(len(b))/8 {
					return nil, specErr("§7", "pair %d %s matrix %dx%d overruns the section", p, what, rows, cols)
				}
				ln := 16 + rows*cols*8
				if uint64(len(b)) < pos+ln {
					return nil, specErr("§7", "pair %d %s matrix %dx%d overruns the section", p, what, rows, cols)
				}
				m, err := s.decodeMatrix(b[pos:pos+ln], "§7", what)
				pos += ln
				return m, err
			}
			for i := uint64(0); i < wCount; i++ {
				m, err := next("weight")
				if err != nil {
					return err
				}
				s.transW[p][side] = append(s.transW[p][side], m)
			}
			for i := uint64(0); i < bCount; i++ {
				m, err := next("bias")
				if err != nil {
					return err
				}
				s.transB[p][side] = append(s.transB[p][side], m)
			}
		}
	}
	if pos != uint64(len(b)) {
		return specErr("§7", "%d trailing bytes after translator matrices", uint64(len(b))-pos)
	}
	return nil
}

// Model assembles a transn.Model over g from the snapshot's tables,
// after validating that g is the graph the snapshot was packed against
// (same node names in the same order). The model's matrices alias the
// snapshot on the zero-copy path — the Snapshot must stay open as long
// as the model is served.
func (s *Snapshot) Model(g *graph.Graph) (*transn.Model, error) {
	if g.NumNodes() != len(s.names) {
		return nil, fmt.Errorf("snapfmt: snapshot packed against %d nodes, graph has %d", len(s.names), g.NumNodes())
	}
	for i, n := range g.Nodes {
		if s.names[i] != n.Name {
			return nil, fmt.Errorf("snapfmt: node %d is %q in the snapshot but %q in the graph — wrong graph?", i, s.names[i], n.Name)
		}
	}
	e := transn.Export{
		Cfg:              s.cfg,
		EmbIn:            s.embIn,
		EmbOut:           s.embOut,
		TransW:           s.transW,
		TransB:           s.transB,
		TranslatorSimple: s.translatorSimple,
	}
	return transn.FromExport(e, g)
}
