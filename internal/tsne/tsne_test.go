package tsne

import (
	"math"
	"math/rand"
	"testing"

	"transn/internal/eval"
	"transn/internal/mat"
)

func clusteredData(rng *rand.Rand, perCluster, dim int, centers int) (*mat.Dense, []int) {
	X := mat.New(perCluster*centers, dim)
	labels := make([]int, X.R)
	for c := 0; c < centers; c++ {
		for i := 0; i < perCluster; i++ {
			r := c*perCluster + i
			labels[r] = c
			row := X.Row(r)
			for k := range row {
				row[k] = rng.NormFloat64() * 0.3
			}
			row[c%dim] += 8 // separate clusters along axes
		}
	}
	return X, labels
}

func TestEmbedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, _ := clusteredData(rng, 10, 5, 3)
	Y := Embed(X, Config{Iterations: 50})
	if Y.R != 30 || Y.C != 2 {
		t.Fatalf("shape %dx%d", Y.R, Y.C)
	}
	for _, v := range Y.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite projection")
		}
	}
}

func TestEmbedTrivialSizes(t *testing.T) {
	if Y := Embed(mat.New(0, 3), Config{}); Y.R != 0 || Y.C != 2 {
		t.Fatal("empty input")
	}
	if Y := Embed(mat.New(1, 3), Config{}); Y.R != 1 || Y.C != 2 {
		t.Fatal("single point")
	}
	// Two points should not blow up.
	X := mat.FromSlice(2, 2, []float64{0, 0, 1, 1})
	Y := Embed(X, Config{Iterations: 30})
	for _, v := range Y.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN with n=2")
		}
	}
}

func TestEmbedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, _ := clusteredData(rng, 8, 4, 2)
	a := Embed(X, Config{Iterations: 60, Seed: 5})
	b := Embed(X, Config{Iterations: 60, Seed: 5})
	if !a.Equal(b, 0) {
		t.Fatal("same seed must give identical projection")
	}
}

func TestEmbedPreservesClusterStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, labels := clusteredData(rng, 15, 6, 3)
	Y := Embed(X, Config{Iterations: 300, Perplexity: 10})
	sil := eval.Silhouette(Y, labels)
	if sil < 0.5 {
		t.Fatalf("projected silhouette %.3f too low — clusters lost", sil)
	}
}

func TestEmbedCentersOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, _ := clusteredData(rng, 10, 4, 2)
	Y := Embed(X, Config{Iterations: 80})
	var cx, cy float64
	for i := 0; i < Y.R; i++ {
		cx += Y.At(i, 0)
		cy += Y.At(i, 1)
	}
	if math.Abs(cx)/float64(Y.R) > 1e-9 || math.Abs(cy)/float64(Y.R) > 1e-9 {
		t.Fatalf("projection not centered: (%g, %g)", cx, cy)
	}
}

func TestPerplexityClampedForTinyInputs(t *testing.T) {
	// Perplexity larger than n-1 must not hang or NaN.
	X := mat.FromSlice(3, 2, []float64{0, 0, 1, 0, 0, 1})
	Y := Embed(X, Config{Iterations: 40, Perplexity: 50})
	for _, v := range Y.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN under clamped perplexity")
		}
	}
}

func TestInputAffinitiesRowsNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, _ := clusteredData(rng, 6, 3, 2)
	P := inputAffinities(X, 5)
	for i := 0; i < P.R; i++ {
		var sum float64
		for j, v := range P.Row(i) {
			if j == i && v != 0 {
				t.Fatal("self-affinity must be zero")
			}
			if v < 0 {
				t.Fatal("negative affinity")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}
