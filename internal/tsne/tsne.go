// Package tsne implements exact t-SNE (van der Maaten & Hinton, 2008)
// for the paper's Figure 6 case study: 2D projections of applet
// embeddings. The implementation uses the standard recipe — Gaussian
// input affinities with a per-point perplexity binary search, Student-t
// output affinities, KL-divergence gradient descent with momentum and
// early exaggeration. Exact O(n²) is fine at case-study scale (90
// points).
package tsne

import (
	"math"
	"math/rand"

	"transn/internal/mat"
)

// Config holds t-SNE hyperparameters. Zero values take the usual
// defaults.
type Config struct {
	Perplexity   float64 // default 15
	Iterations   int     // default 500
	LearningRate float64 // default 100
	Momentum     float64 // default 0.8 (0.5 during early exaggeration)
	Exaggeration float64 // default 4, applied for the first quarter
	Seed         int64   // default 1
}

func (c Config) withDefaults() Config {
	if c.Perplexity == 0 {
		c.Perplexity = 15
	}
	if c.Iterations == 0 {
		c.Iterations = 500
	}
	if c.LearningRate == 0 {
		c.LearningRate = 100
	}
	if c.Momentum == 0 {
		c.Momentum = 0.8
	}
	if c.Exaggeration == 0 {
		c.Exaggeration = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Embed projects the rows of X into 2D.
func Embed(X *mat.Dense, cfg Config) *mat.Dense {
	cfg = cfg.withDefaults()
	n := X.R
	if n == 0 {
		return mat.New(0, 2)
	}
	if n == 1 {
		return mat.New(1, 2)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	P := inputAffinities(X, cfg.Perplexity)
	// Symmetrize and normalize: p_ij = (p_j|i + p_i|j) / 2n.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (P.At(i, j) + P.At(j, i)) / (2 * float64(n))
			if v < 1e-12 {
				v = 1e-12
			}
			P.Set(i, j, v)
			P.Set(j, i, v)
		}
		P.Set(i, i, 0)
	}

	Y := mat.RandN(n, 2, 1e-2, rng)
	vel := mat.New(n, 2)
	grad := mat.New(n, 2)
	Q := mat.New(n, n)
	num := mat.New(n, n)
	exaggerateUntil := cfg.Iterations / 4

	for iter := 0; iter < cfg.Iterations; iter++ {
		exag := 1.0
		momentum := cfg.Momentum
		if iter < exaggerateUntil {
			exag = cfg.Exaggeration
			momentum = 0.5
		}
		// Student-t output affinities.
		var sumNum float64
		for i := 0; i < n; i++ {
			yi := Y.Row(i)
			for j := i + 1; j < n; j++ {
				yj := Y.Row(j)
				dx := yi[0] - yj[0]
				dy := yi[1] - yj[1]
				v := 1 / (1 + dx*dx + dy*dy)
				num.Set(i, j, v)
				num.Set(j, i, v)
				sumNum += 2 * v
			}
		}
		if sumNum == 0 {
			sumNum = 1e-12
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					Q.Set(i, j, 0)
					continue
				}
				q := num.At(i, j) / sumNum
				if q < 1e-12 {
					q = 1e-12
				}
				Q.Set(i, j, q)
			}
		}
		// Gradient: 4 Σ_j (p_ij·exag − q_ij)·num_ij·(y_i − y_j).
		grad.Zero()
		for i := 0; i < n; i++ {
			yi := Y.Row(i)
			gi := grad.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				mult := 4 * (exag*P.At(i, j) - Q.At(i, j)) * num.At(i, j)
				yj := Y.Row(j)
				gi[0] += mult * (yi[0] - yj[0])
				gi[1] += mult * (yi[1] - yj[1])
			}
		}
		// Momentum update.
		for i := range vel.Data {
			vel.Data[i] = momentum*vel.Data[i] - cfg.LearningRate*grad.Data[i]
			Y.Data[i] += vel.Data[i]
		}
		// Re-center.
		var cx, cy float64
		for i := 0; i < n; i++ {
			cx += Y.At(i, 0)
			cy += Y.At(i, 1)
		}
		cx /= float64(n)
		cy /= float64(n)
		for i := 0; i < n; i++ {
			Y.Set(i, 0, Y.At(i, 0)-cx)
			Y.Set(i, 1, Y.At(i, 1)-cy)
		}
	}
	return Y
}

// inputAffinities computes the conditional distribution p_j|i for every
// point, binary-searching each point's Gaussian bandwidth to match the
// target perplexity.
func inputAffinities(X *mat.Dense, perplexity float64) *mat.Dense {
	n := X.R
	if fp := float64(n - 1); perplexity > fp {
		perplexity = fp // cannot exceed the number of neighbors
	}
	logU := math.Log(perplexity)
	D := pairwiseSqDist(X)
	P := mat.New(n, n)
	for i := 0; i < n; i++ {
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		beta := 1.0
		row := P.Row(i)
		drow := D.Row(i)
		for tries := 0; tries < 64; tries++ {
			// Compute entropy at this beta.
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-drow[j] * beta)
				sum += row[j]
			}
			if sum == 0 {
				sum = 1e-12
			}
			var H float64
			for j := 0; j < n; j++ {
				if j == i || row[j] == 0 {
					continue
				}
				p := row[j] / sum
				row[j] = p
				H -= p * math.Log(p)
			}
			diff := H - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 {
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
	}
	return P
}

func pairwiseSqDist(X *mat.Dense) *mat.Dense {
	n := X.R
	D := mat.New(n, n)
	for i := 0; i < n; i++ {
		xi := X.Row(i)
		for j := i + 1; j < n; j++ {
			xj := X.Row(j)
			var s float64
			for k := range xi {
				d := xi[k] - xj[k]
				s += d * d
			}
			D.Set(i, j, s)
			D.Set(j, i, s)
		}
	}
	return D
}
