package walk

import (
	"math"
	"testing"

	"transn/internal/graph"
	"transn/internal/rngstream"
)

// statsTestView builds a 4-node path graph a-b-c-d with weights 1, 4, 1
// in a single view.
func statsTestView(t *testing.T) *graph.View {
	t.Helper()
	b := graph.NewBuilder()
	nt := b.NodeType("x")
	et := b.EdgeType("e")
	a := b.AddNode(nt, "a")
	bb := b.AddNode(nt, "b")
	c := b.AddNode(nt, "c")
	d := b.AddNode(nt, "d")
	b.AddEdge(a, bb, et, 1)
	b.AddEdge(bb, c, et, 4)
	b.AddEdge(c, d, et, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	views := g.Views()
	if len(views) != 1 {
		t.Fatalf("want 1 view, got %d", len(views))
	}
	return views[0]
}

func TestStatsHandBuiltCorpus(t *testing.T) {
	v := statsTestView(t)
	la, lb, lc := 0, 1, 2
	// Two paths: a->b->c (weights 1, 4) and b->a (weight 1).
	paths := [][]int{{la, lb, lc}, {lb, la}}
	st := Stats(v, paths)
	if st.Paths != 2 || st.Steps != 3 {
		t.Fatalf("paths/steps = %d/%d, want 2/3", st.Paths, st.Steps)
	}
	if st.Visited != 3 {
		t.Fatalf("visited = %d, want 3", st.Visited)
	}
	wantCounts := []int{2, 2, 1, 0}
	for l, c := range wantCounts {
		if st.VisitCounts[l] != c {
			t.Fatalf("visit count of node %d = %d, want %d", l, st.VisitCounts[l], c)
		}
	}
	// Realized: w(a,b)+w(b,c)+w(b,a) = 1+4+1 = 6.
	if math.Abs(st.RealizedWeightSum-6) > 1e-12 {
		t.Fatalf("realized weight sum = %g, want 6", st.RealizedWeightSum)
	}
	// Uniform baselines: from a mean=1, from b mean=(1+4)/2=2.5, from b again 2.5.
	if math.Abs(st.UniformWeightSum-6) > 1e-12 {
		t.Fatalf("uniform weight sum = %g, want 6", st.UniformWeightSum)
	}
}

// TestStatsBiasedWalkFavorsHeavyEdges checks the realized/uniform ratio
// exceeds 1 for the π₁-biased walker on a weight-skewed star, and is
// exactly 1 when every edge weight is equal (no bias to express).
func TestStatsBiasedWalkFavorsHeavyEdges(t *testing.T) {
	b := graph.NewBuilder()
	nt := b.NodeType("x")
	et := b.EdgeType("e")
	hub := b.AddNode(nt, "hub")
	for i := 0; i < 6; i++ {
		leaf := b.AddNode(nt, string(rune('a'+i)))
		w := 1.0
		if i == 0 {
			w = 50 // one dominant spoke
		}
		b.AddEdge(hub, leaf, et, w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := g.Views()[0]
	walker := NewBiased(v)
	cfg := CorpusConfig{WalkLength: 10, MinWalksPerNode: 4, MaxWalksPerNode: 8}
	paths := Corpus(v, walker, cfg, rngstream.New(7))
	st := Stats(v, paths)
	if st.Steps == 0 {
		t.Fatal("no steps taken")
	}
	ratio := st.RealizedWeightSum / st.UniformWeightSum
	if ratio <= 1.05 {
		t.Fatalf("biased walk realized/uniform ratio = %.3f, want > 1.05", ratio)
	}

	// Uniform-weight graph: ratio must be exactly 1 regardless of walker.
	b2 := graph.NewBuilder()
	nt2 := b2.NodeType("x")
	et2 := b2.EdgeType("e")
	n0 := b2.AddNode(nt2, "0")
	n1 := b2.AddNode(nt2, "1")
	n2 := b2.AddNode(nt2, "2")
	b2.AddEdge(n0, n1, et2, 2)
	b2.AddEdge(n1, n2, et2, 2)
	b2.AddEdge(n2, n0, et2, 2)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	v2 := g2.Views()[0]
	paths2 := Corpus(v2, NewBiased(v2), cfg, rngstream.New(7))
	st2 := Stats(v2, paths2)
	if math.Abs(st2.RealizedWeightSum/st2.UniformWeightSum-1) > 1e-12 {
		t.Fatalf("uniform-weight ratio = %g, want exactly 1",
			st2.RealizedWeightSum/st2.UniformWeightSum)
	}
}
