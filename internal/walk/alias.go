// Package walk implements the random-walk machinery of the paper's
// single-view algorithm (Section III-A) and the walkers the baselines
// need: simple uniform walks, weight-biased walks (Eq. 6), correlated
// walks on heter-views (Eqs. 4–7), node2vec (p,q) walks, and meta-path
// constrained walks. Walk corpora follow the paper's per-node path count
// max(min(degree, 32), 10).
package walk

import "math/rand"

// Alias is a Vose alias table for O(1) sampling from a discrete
// distribution. Construction is O(n).
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over weights (non-negative, at least one
// positive). Weights need not be normalized.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("walk: NewAlias with empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("walk: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("walk: all weights zero")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, l := range large {
		a.prob[l] = 1
	}
	for _, s := range small {
		a.prob[s] = 1
	}
	return a
}

// Draw samples an index from the table.
func (a *Alias) Draw(rng *rand.Rand) int {
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }
