package walk

import (
	"math/rand"

	"transn/internal/graph"
)

// A Walker produces one random walk of up to length steps starting at the
// given local node of a view. Returned indices are view-local. A walk may
// be shorter than length only when it starts at a node with no neighbors.
type Walker interface {
	Walk(v *graph.View, start, length int, rng *rand.Rand) []int
}

// A Preparer is a Walker with lazily-built per-node caches. Prepare
// builds every cache eagerly so the walker becomes read-only and can be
// shared by concurrent walks; CorpusParallel calls it before fanning
// out. Prepare is idempotent but is NOT itself safe for concurrent use.
type Preparer interface {
	Prepare()
}

// Simple performs unweighted uniform random walks, the "simple random
// walk" of the ablation TransN-With-Simple-Walk: edge weights are
// ignored and every neighbor is equally likely.
type Simple struct{}

// Walk implements Walker.
func (Simple) Walk(v *graph.View, start, length int, rng *rand.Rand) []int {
	path := make([]int, 0, length)
	path = append(path, start)
	cur := start
	for len(path) < length {
		ns, _ := v.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		cur = int(ns[rng.Intn(len(ns))])
		path = append(path, cur)
	}
	return path
}

// Biased performs weight-proportional walks: the probability of stepping
// to a neighbor is π₁ ∝ w(next, cur) (Equation 6). Alias tables are built
// lazily per node and cached, so construction cost is paid once per view.
type Biased struct {
	tables []*Alias // indexed by local node; nil until first visit
	view   *graph.View
}

// NewBiased returns a Biased walker bound to view v.
func NewBiased(v *graph.View) *Biased {
	return &Biased{tables: make([]*Alias, v.NumNodes()), view: v}
}

func (b *Biased) table(l int) *Alias {
	if b.tables[l] == nil {
		_, ws := b.view.Neighbors(l)
		b.tables[l] = NewAlias(ws)
	}
	return b.tables[l]
}

// Prepare implements Preparer: it builds the alias table of every
// non-isolated node so concurrent Walk calls only read.
func (b *Biased) Prepare() {
	for l := 0; l < b.view.NumNodes(); l++ {
		if ns, _ := b.view.Neighbors(l); len(ns) > 0 {
			b.table(l)
		}
	}
}

// Walk implements Walker.
func (b *Biased) Walk(v *graph.View, start, length int, rng *rand.Rand) []int {
	if v != b.view {
		panic("walk: Biased walker used on a different view")
	}
	path := make([]int, 0, length)
	path = append(path, start)
	cur := start
	for len(path) < length {
		ns, _ := v.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		cur = int(ns[b.table(cur).Draw(rng)])
		path = append(path, cur)
	}
	return path
}

// Correlated implements the paper's full walk control (Equations 4–7):
// steps are drawn ∝ π₁ on homo-views, on the first step, or when the
// current node's incident weights are all equal (Δ = 0); otherwise steps
// are drawn ∝ π₁·π₂ where π₂ = 1 − |w(next,cur) − w(cur,prev)|/Δ prefers
// edges whose weight is close to the previous edge's weight.
//
// Note on Equation 7: the paper's formula omits the absolute value,
// which would make π₂ *increase* as the next weight drops below the
// previous one — preferring maximally dissimilar edges whenever the walk
// arrived via a heavy edge. That contradicts both the prose ("more
// likely to choose an edge whose weight is close to the weight of the
// previous edge") and the Figure 4 walkthrough, so we implement the
// similarity kernel the prose describes. The two agree exactly in the
// Figure 4 case (arrival via the minimum-weight edge). See DESIGN.md §2.
type Correlated struct {
	biased *Biased
	// delta[l] caches Δ = max−min incident weight of local node l, or -1
	// when not yet computed.
	delta []float64
}

// NewCorrelated returns a Correlated walker bound to view v.
func NewCorrelated(v *graph.View) *Correlated {
	d := make([]float64, v.NumNodes())
	for i := range d {
		d[i] = -1
	}
	return &Correlated{biased: NewBiased(v), delta: d}
}

// Prepare implements Preparer: it builds every alias table and Δ cache
// so concurrent Walk calls only read.
func (c *Correlated) Prepare() {
	v := c.biased.view
	c.biased.Prepare()
	for l := 0; l < v.NumNodes(); l++ {
		if ns, _ := v.Neighbors(l); len(ns) > 0 {
			c.deltaOf(v, l)
		}
	}
}

func (c *Correlated) deltaOf(v *graph.View, l int) float64 {
	if c.delta[l] >= 0 {
		return c.delta[l]
	}
	_, ws := v.Neighbors(l)
	lo, hi := ws[0], ws[0]
	for _, w := range ws[1:] {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	c.delta[l] = hi - lo
	return c.delta[l]
}

// Walk implements Walker.
func (c *Correlated) Walk(v *graph.View, start, length int, rng *rand.Rand) []int {
	if v != c.biased.view {
		panic("walk: Correlated walker used on a different view")
	}
	path := make([]int, 0, length)
	path = append(path, start)
	cur := start
	prevWeight := -1.0 // weight of edge (prev, cur); <0 on the first step
	for len(path) < length {
		ns, ws := v.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		var next int
		var nextW float64
		delta := c.deltaOf(v, cur)
		if !v.Hetero || prevWeight < 0 || delta == 0 {
			// π₁ only (Equation 4, first case).
			i := c.biased.table(cur).Draw(rng)
			next, nextW = int(ns[i]), ws[i]
		} else {
			// π₁·π₂ (Equation 4, second case). Weights are recomputed per
			// step because π₂ depends on the previous edge.
			probs := make([]float64, len(ns))
			var total float64
			for i, w := range ws {
				diff := w - prevWeight
				if diff < 0 {
					diff = -diff
				}
				p2 := 1 - diff/delta
				if p2 < 0 {
					p2 = 0 // numeric safety; analytically p2 ∈ [0, 1]
				}
				probs[i] = w * p2
				total += probs[i]
			}
			if total == 0 {
				// Degenerate: all candidates maximally dissimilar. Fall
				// back to π₁ so the walk can continue.
				i := c.biased.table(cur).Draw(rng)
				next, nextW = int(ns[i]), ws[i]
			} else {
				x := rng.Float64() * total
				i := 0
				for ; i < len(probs)-1; i++ {
					x -= probs[i]
					if x <= 0 {
						break
					}
				}
				next, nextW = int(ns[i]), ws[i]
			}
		}
		prevWeight = nextW
		cur = next
		path = append(path, cur)
	}
	return path
}

// Node2Vec performs the (p, q)-biased second-order walks of Grover &
// Leskovec. p is the return parameter, q the in-out parameter.
type Node2Vec struct {
	P, Q float64
}

// Walk implements Walker.
func (n Node2Vec) Walk(v *graph.View, start, length int, rng *rand.Rand) []int {
	path := make([]int, 0, length)
	path = append(path, start)
	cur := start
	prev := -1
	for len(path) < length {
		ns, ws := v.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		var next int
		if prev < 0 {
			next = weightedPick(ns, ws, rng)
		} else {
			probs := make([]float64, len(ns))
			var total float64
			for i, nb := range ns {
				w := ws[i]
				switch {
				case int(nb) == prev:
					w /= n.P
				case v.EdgeWeight(int(nb), prev) > 0:
					// distance 1 from prev: unchanged
				default:
					w /= n.Q
				}
				probs[i] = w
				total += w
			}
			x := rng.Float64() * total
			i := 0
			for ; i < len(probs)-1; i++ {
				x -= probs[i]
				if x <= 0 {
					break
				}
			}
			next = int(ns[i])
		}
		prev = cur
		cur = next
		path = append(path, cur)
	}
	return path
}

func weightedPick(ns []int32, ws []float64, rng *rand.Rand) int {
	var total float64
	for _, w := range ws {
		total += w
	}
	x := rng.Float64() * total
	i := 0
	for ; i < len(ws)-1; i++ {
		x -= ws[i]
		if x <= 0 {
			break
		}
	}
	return int(ns[i])
}
