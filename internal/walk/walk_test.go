package walk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"transn/internal/graph"
	"transn/internal/rngstream"
)

func TestAliasMatchesDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d freq %.4f want %.4f", i, got, want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a := NewAlias([]float64{5})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		if a.Draw(rng) != 0 {
			t.Fatal("single-outcome alias must always return 0")
		}
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestAliasPanics(t *testing.T) {
	for _, ws := range [][]float64{{}, {0, 0}, {1, -1}} {
		func() {
			defer func() { recover() }()
			NewAlias(ws)
			t.Errorf("NewAlias(%v) should panic", ws)
		}()
	}
}

// Property: alias sampling over random weights is within 2% of expected
// frequency for every outcome.
func TestAliasProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		ws := make([]float64, n)
		var total float64
		for i := range ws {
			ws[i] = 0.1 + rng.Float64()
			total += ws[i]
		}
		a := NewAlias(ws)
		counts := make([]int, n)
		const draws = 100000
		for i := 0; i < draws; i++ {
			counts[a.Draw(rng)]++
		}
		for i := range ws {
			if math.Abs(float64(counts[i])/draws-ws[i]/total) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// ratingView builds the paper's Figure 4 book-rating heter-view:
// readers R1,R2,R3 and books B1,B2,B3 with rating weights.
// R1-B1:5, R1-B2:1, R2-B2:5, R2-B3:2, R3-B2:1, R3-B3:4.
func ratingView(t testing.TB) (*graph.Graph, *graph.View, map[string]graph.NodeID) {
	b := graph.NewBuilder()
	reader := b.NodeType("reader")
	book := b.NodeType("book")
	rate := b.EdgeType("rating")
	ids := map[string]graph.NodeID{}
	for _, n := range []string{"R1", "R2", "R3"} {
		ids[n] = b.AddNode(reader, n)
	}
	for _, n := range []string{"B1", "B2", "B3"} {
		ids[n] = b.AddNode(book, n)
	}
	b.AddEdge(ids["R1"], ids["B1"], rate, 5)
	b.AddEdge(ids["R1"], ids["B2"], rate, 1)
	b.AddEdge(ids["R2"], ids["B2"], rate, 5)
	b.AddEdge(ids["R2"], ids["B3"], rate, 2)
	b.AddEdge(ids["R3"], ids["B2"], rate, 1)
	b.AddEdge(ids["R3"], ids["B3"], rate, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, g.Views()[0], ids
}

func pathAdjacent(v *graph.View, p []int) bool {
	for i := 1; i < len(p); i++ {
		if v.EdgeWeight(p[i-1], p[i]) == 0 {
			return false
		}
	}
	return true
}

func TestSimpleWalkStaysOnEdges(t *testing.T) {
	_, v, _ := ratingView(t)
	rng := rand.New(rand.NewSource(3))
	for l := 0; l < v.NumNodes(); l++ {
		p := Simple{}.Walk(v, l, 20, rng)
		if len(p) != 20 {
			t.Fatalf("walk len %d want 20", len(p))
		}
		if p[0] != l {
			t.Fatal("walk must start at start node")
		}
		if !pathAdjacent(v, p) {
			t.Fatalf("non-adjacent step in %v", p)
		}
	}
}

func TestBiasedWalkPrefersHeavyEdges(t *testing.T) {
	_, v, ids := ratingView(t)
	rng := rand.New(rand.NewSource(4))
	bw := NewBiased(v)
	r1 := v.Local(ids["R1"])
	b1 := v.Local(ids["B1"])
	// From R1, the B1 edge has weight 5 vs B2 weight 1: expect ~5/6.
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := bw.Walk(v, r1, 2, rng)
		if p[1] == b1 {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-5.0/6) > 0.02 {
		t.Fatalf("P(B1) = %.4f want %.4f", got, 5.0/6)
	}
}

// TestCorrelatedWalkFigure4 reproduces the paper's Figure 4 walkthrough:
// after the walk R1 → B2 (weight 1), π₂ makes R3 (weight 1, similar) much
// more likely than R2 (weight 5, dissimilar). At B2 the incident weights
// are {1, 5, 1} so Δ=4; π₂(R2)=1-(5-1)/4=0, π₂(R3)=1-(1-1)/4=1 — R2 is
// never chosen and R1/R3 split ∝ π₁ (1 vs 1).
func TestCorrelatedWalkFigure4(t *testing.T) {
	_, v, ids := ratingView(t)
	rng := rand.New(rand.NewSource(5))
	cw := NewCorrelated(v)
	r1 := v.Local(ids["R1"])
	b2 := v.Local(ids["B2"])
	r2 := v.Local(ids["R2"])
	r3 := v.Local(ids["R3"])
	countR2, countR3, trials := 0, 0, 0
	for i := 0; i < 50000; i++ {
		p := cw.Walk(v, r1, 3, rng)
		if len(p) < 3 || p[1] != b2 {
			continue // only analyze walks that stepped to B2
		}
		trials++
		switch p[2] {
		case r2:
			countR2++
		case r3:
			countR3++
		}
	}
	if trials < 1000 {
		t.Fatalf("too few walks through B2: %d", trials)
	}
	if countR2 != 0 {
		t.Fatalf("R2 chosen %d times; π₂ should forbid it", countR2)
	}
	if countR3 == 0 {
		t.Fatal("R3 never chosen after B2")
	}
}

func TestCorrelatedFallsBackOnHomoView(t *testing.T) {
	// On a homo-view the correlated walker must behave like the biased
	// walker (Equation 4 first case): exact distribution check at step 1.
	b := graph.NewBuilder()
	tt := b.NodeType("x")
	et := b.EdgeType("e")
	n0 := b.AddNode(tt, "0")
	n1 := b.AddNode(tt, "1")
	n2 := b.AddNode(tt, "2")
	b.AddEdge(n0, n1, et, 9)
	b.AddEdge(n0, n2, et, 1)
	b.AddEdge(n1, n2, et, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := g.Views()[0]
	if v.Hetero {
		t.Fatal("expected homo-view")
	}
	cw := NewCorrelated(v)
	rng := rand.New(rand.NewSource(6))
	l0 := v.Local(n0)
	l1 := v.Local(n1)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		p := cw.Walk(v, l0, 2, rng)
		if p[1] == l1 {
			hits++
		}
	}
	if got := float64(hits) / n; math.Abs(got-0.9) > 0.02 {
		t.Fatalf("homo-view correlated walk P = %.4f want 0.9", got)
	}
}

func TestWalkFromIsolatedNodeInSubview(t *testing.T) {
	// A view never contains isolated nodes, but paired-subviews can, if a
	// common node's neighbors are all outside the kept set. Walkers must
	// return the single-node path without panicking.
	_, v, ids := ratingView(t)
	sub := graph.PairedSubview(v, []graph.NodeID{ids["R1"]})
	rng := rand.New(rand.NewSource(7))
	for l := 0; l < sub.NumNodes(); l++ {
		p := Simple{}.Walk(sub, l, 10, rng)
		if len(p) < 1 || p[0] != l {
			t.Fatalf("bad walk %v from %d", p, l)
		}
	}
}

func TestNode2VecReturnBias(t *testing.T) {
	_, v, ids := ratingView(t)
	rng := rand.New(rand.NewSource(8))
	r1 := v.Local(ids["R1"])
	b1 := v.Local(ids["B1"])
	// B1's only neighbor is R1, so from (R1 → B1) the walk must return.
	// Use a path R1 → B2 → x instead: with huge p, returning to R1 is
	// suppressed.
	lowP := Node2Vec{P: 0.01, Q: 1}
	highP := Node2Vec{P: 100, Q: 1}
	countReturns := func(w Node2Vec) int {
		ret := 0
		for i := 0; i < 20000; i++ {
			p := w.Walk(v, r1, 3, rng)
			if len(p) == 3 && p[1] != b1 && p[2] == r1 {
				ret++
			}
		}
		return ret
	}
	retLow := countReturns(lowP)
	retHigh := countReturns(highP)
	if retLow <= retHigh*2 {
		t.Fatalf("low p should return far more often: low=%d high=%d", retLow, retHigh)
	}
}

func TestCorpusConfigWalksFor(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cases := []struct{ deg, want int }{
		{0, 10}, {5, 10}, {10, 10}, {15, 15}, {32, 32}, {100, 32},
	}
	for _, c := range cases {
		if got := cfg.WalksFor(c.deg); got != c.want {
			t.Errorf("WalksFor(%d) = %d want %d", c.deg, got, c.want)
		}
	}
}

func TestCorpusGeneration(t *testing.T) {
	_, v, _ := ratingView(t)
	cfg := CorpusConfig{WalkLength: 10, MinWalksPerNode: 3, MaxWalksPerNode: 5}
	rng := rand.New(rand.NewSource(9))
	paths := Corpus(v, Simple{}, cfg, rng)
	// Every node has degree ≥ 1 < 3 so 3 walks each; 6 nodes → 18 paths.
	if len(paths) != 18 {
		t.Fatalf("corpus size %d want 18", len(paths))
	}
	for _, p := range paths {
		if len(p) < 2 || len(p) > 10 {
			t.Fatalf("bad path length %d", len(p))
		}
		if !pathAdjacent(v, p) {
			t.Fatalf("non-adjacent corpus path %v", p)
		}
	}
}

func TestAdjSymmetry(t *testing.T) {
	g, _, _ := ratingView(t)
	adj := NewAdj(g)
	totalDeg := 0
	for id := 0; id < g.NumNodes(); id++ {
		totalDeg += adj.Degree(graph.NodeID(id))
		ns, ws, ets := adj.Neighbors(graph.NodeID(id))
		for i, nb := range ns {
			// Mirror edge must exist with same weight and type.
			mns, mws, mets := adj.Neighbors(graph.NodeID(nb))
			found := false
			for j, mnb := range mns {
				if int(mnb) == id && mws[j] == ws[i] && mets[j] == ets[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("missing mirror for %d-%d", id, nb)
			}
		}
	}
	if totalDeg != 2*g.NumEdges() {
		t.Fatalf("total degree %d want %d", totalDeg, 2*g.NumEdges())
	}
}

func TestMetaPathWalkFollowsPattern(t *testing.T) {
	// Academic-style graph: author-paper-venue.
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	venue := b.NodeType("venue")
	ap := b.EdgeType("AP")
	pv := b.EdgeType("PV")
	var as, ps, vs []graph.NodeID
	for i := 0; i < 4; i++ {
		as = append(as, b.AddNode(author, ""))
	}
	for i := 0; i < 4; i++ {
		ps = append(ps, b.AddNode(paper, ""))
	}
	for i := 0; i < 2; i++ {
		vs = append(vs, b.AddNode(venue, ""))
	}
	for i := 0; i < 4; i++ {
		b.AddEdge(as[i], ps[i], ap, 1)
		b.AddEdge(as[i], ps[(i+1)%4], ap, 1)
		b.AddEdge(ps[i], vs[i%2], pv, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	adj := NewAdj(g)
	mp := MetaPath{Adj: adj, Pattern: []graph.NodeType{author, paper, venue, paper, author}}
	rng := rand.New(rand.NewSource(10))
	p := mp.Walk(as[0], 13, rng)
	if len(p) < 5 {
		t.Fatalf("walk too short: %d", len(p))
	}
	wantCycle := []graph.NodeType{author, paper, venue, paper}
	for i, id := range p {
		if g.NodeType(id) != wantCycle[i%4] {
			t.Fatalf("position %d has type %d want %d", i, g.NodeType(id), wantCycle[i%4])
		}
	}
	// Starting from a wrong-typed node yields nil.
	if got := mp.Walk(ps[0], 5, rng); got != nil {
		t.Fatalf("wrong-type start should return nil, got %v", got)
	}
}

func BenchmarkCorrelatedWalk(b *testing.B) {
	_, v, _ := ratingView(b)
	cw := NewCorrelated(v)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cw.Walk(v, i%v.NumNodes(), 80, rng)
	}
}

// Property: corpus paths always start at distinct configured nodes, have
// lengths in [2, WalkLength], and per-node counts follow WalksFor.
func TestCorpusProperty(t *testing.T) {
	f := func(seed int64) bool {
		_, v, _ := ratingViewSeed(seed)
		cfg := CorpusConfig{WalkLength: 8, MinWalksPerNode: 2, MaxWalksPerNode: 4}
		rng := rand.New(rand.NewSource(seed))
		paths := Corpus(v, Simple{}, cfg, rng)
		counts := make([]int, v.NumNodes())
		for _, p := range paths {
			if len(p) < 2 || len(p) > 8 {
				return false
			}
			counts[p[0]]++
		}
		for l := 0; l < v.NumNodes(); l++ {
			if counts[l] != cfg.WalksFor(v.Degree(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// randomView builds a random bipartite heter-view with rng-driven size
// and weights, for property tests over many graph shapes. Every node is
// attached to at least one edge (views never contain isolated nodes).
func randomView(seed int64) *graph.View {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	left := b.NodeType("left")
	right := b.NodeType("right")
	et := b.EdgeType("e")
	nl := 2 + rng.Intn(10)
	nr := 2 + rng.Intn(10)
	var ls, rs []graph.NodeID
	for i := 0; i < nl; i++ {
		ls = append(ls, b.AddNode(left, ""))
	}
	for i := 0; i < nr; i++ {
		rs = append(rs, b.AddNode(right, ""))
	}
	seen := map[[2]graph.NodeID]bool{}
	add := func(u, v graph.NodeID) {
		k := [2]graph.NodeID{u, v}
		if seen[k] {
			return
		}
		seen[k] = true
		b.AddEdge(u, v, et, 0.5+4.5*rng.Float64())
	}
	// Spanning attachment so no node is isolated, then random extras.
	for i, u := range ls {
		add(u, rs[i%nr])
	}
	for _, v := range rs {
		add(ls[rng.Intn(nl)], v)
	}
	extra := rng.Intn(2 * nl * nr / 3)
	for i := 0; i < extra; i++ {
		add(ls[rng.Intn(nl)], rs[rng.Intn(nr)])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g.Views()[0]
}

// walkCounts tallies corpus paths by start node and verifies every
// consecutive pair is a real edge of the view.
func walkCounts(t *testing.T, v *graph.View, paths [][]int) []int {
	t.Helper()
	counts := make([]int, v.NumNodes())
	for _, p := range paths {
		if len(p) < 2 {
			t.Fatalf("corpus contains a too-short path %v", p)
		}
		counts[p[0]]++
		if !pathAdjacent(v, p) {
			t.Fatalf("non-adjacent step in path %v", p)
		}
	}
	return counts
}

// Property (CorpusParallel vs Corpus): for random graphs, seeds and
// worker counts, the sharded corpus produces exactly the same per-node
// walk counts as the serial corpus and walks only real edges.
func TestCorpusParallelProperty(t *testing.T) {
	cfg := CorpusConfig{WalkLength: 9, MinWalksPerNode: 2, MaxWalksPerNode: 5}
	f := func(seed int64) bool {
		v := randomView(seed)
		serial := Corpus(v, NewCorrelated(v), cfg, rand.New(rand.NewSource(seed)))
		want := walkCounts(t, v, serial)
		for _, workers := range []int{1, 2, 3, 8, 100} {
			paths := CorpusParallel(v, NewCorrelated(v), cfg, seed, workers)
			got := walkCounts(t, v, paths)
			for l := range want {
				if got[l] != want[l] {
					t.Logf("seed %d workers %d: node %d count %d want %d", seed, workers, l, got[l], want[l])
					return false
				}
				if got[l] != cfg.WalksFor(v.Degree(l)) {
					t.Logf("seed %d workers %d: node %d count %d violates WalksFor", seed, workers, l, got[l])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// CorpusParallel with one worker must be byte-identical to the serial
// Corpus under the shard-0 stream: Workers=1 IS the serial path.
func TestCorpusParallelOneWorkerMatchesSerial(t *testing.T) {
	_, v, _ := ratingView(t)
	cfg := CorpusConfig{WalkLength: 10, MinWalksPerNode: 3, MaxWalksPerNode: 5}
	const seed = 77
	got := CorpusParallel(v, NewCorrelated(v), cfg, seed, 1)
	want := Corpus(v, NewCorrelated(v), cfg, rngstream.New(seed, 0))
	if len(got) != len(want) {
		t.Fatalf("corpus sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("path %d lengths differ", i)
		}
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("path %d diverges at step %d", i, j)
			}
		}
	}
}

// CorpusParallelStats must return the byte-identical corpus plus a
// worker-time breakdown that covers every shard.
func TestCorpusParallelStatsMatchesCorpusParallel(t *testing.T) {
	v := randomView(41)
	cfg := CorpusConfig{WalkLength: 10, MinWalksPerNode: 2, MaxWalksPerNode: 4}
	for _, workers := range []int{1, 3} {
		want := CorpusParallel(v, NewCorrelated(v), cfg, 5, workers)
		got, st := CorpusParallelStats(v, NewCorrelated(v), cfg, 5, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d paths vs %d", workers, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: path %d differs", workers, i)
				}
			}
		}
		if st.Wall <= 0 || len(st.Workers) == 0 {
			t.Fatalf("workers=%d: empty stats %+v", workers, st)
		}
		shards := 0
		for _, w := range st.Workers {
			shards += w.Shards
		}
		if shards <= 0 {
			t.Fatalf("workers=%d: no shards attributed", workers)
		}
	}
}

// CorpusParallel must be reproducible for a fixed (seed, workers)
// regardless of goroutine scheduling: shard outputs concatenate in
// shard order.
func TestCorpusParallelDeterministicPerWorkerCount(t *testing.T) {
	v := randomView(123)
	cfg := CorpusConfig{WalkLength: 8, MinWalksPerNode: 2, MaxWalksPerNode: 4}
	for _, workers := range []int{2, 4, 7} {
		a := CorpusParallel(v, NewCorrelated(v), cfg, 9, workers)
		b := CorpusParallel(v, NewCorrelated(v), cfg, 9, workers)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: sizes %d vs %d", workers, len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("workers=%d: path %d step %d differs", workers, i, j)
				}
			}
		}
	}
}

// Prepare must build every cache the walkers would build lazily, so a
// prepared walker is read-only under concurrent walks.
func TestPrepareBuildsAllCaches(t *testing.T) {
	_, v, _ := ratingView(t)
	cw := NewCorrelated(v)
	cw.Prepare()
	for l := 0; l < v.NumNodes(); l++ {
		if ns, _ := v.Neighbors(l); len(ns) == 0 {
			continue // isolated nodes have no table to build
		}
		if cw.biased.tables[l] == nil {
			t.Fatalf("alias table %d not built", l)
		}
		if cw.delta[l] < 0 {
			t.Fatalf("delta %d not built", l)
		}
	}
	// Subviews (as used by cross-view sampling) must prepare cleanly too.
	sub := graph.PairedSubview(v, []graph.NodeID{v.Global(0)})
	NewCorrelated(sub).Prepare()
}

// ratingViewSeed builds the Figure 4 view without a testing.TB, for
// property tests.
func ratingViewSeed(seed int64) (*graph.Graph, *graph.View, map[string]graph.NodeID) {
	b := graph.NewBuilder()
	reader := b.NodeType("reader")
	book := b.NodeType("book")
	rate := b.EdgeType("rating")
	ids := map[string]graph.NodeID{}
	for _, n := range []string{"R1", "R2", "R3"} {
		ids[n] = b.AddNode(reader, n)
	}
	for _, n := range []string{"B1", "B2", "B3"} {
		ids[n] = b.AddNode(book, n)
	}
	rng := rand.New(rand.NewSource(seed))
	b.AddEdge(ids["R1"], ids["B1"], rate, 1+4*rng.Float64())
	b.AddEdge(ids["R1"], ids["B2"], rate, 1+4*rng.Float64())
	b.AddEdge(ids["R2"], ids["B2"], rate, 1+4*rng.Float64())
	b.AddEdge(ids["R2"], ids["B3"], rate, 1+4*rng.Float64())
	b.AddEdge(ids["R3"], ids["B2"], rate, 1+4*rng.Float64())
	b.AddEdge(ids["R3"], ids["B3"], rate, 1+4*rng.Float64())
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g, g.Views()[0], ids
}
