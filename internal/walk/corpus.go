package walk

import (
	"math/rand"

	"transn/internal/graph"
	"transn/internal/par"
	"transn/internal/rngstream"
)

// CorpusConfig controls corpus generation. The paper sets WalkLength=80
// and samples max(min(degree, MaxWalksPerNode), MinWalksPerNode) paths
// per node, with MinWalksPerNode=10 and MaxWalksPerNode=32 — the "biased
// with respect to node degrees" start policy of Section III.
type CorpusConfig struct {
	WalkLength      int
	MinWalksPerNode int
	MaxWalksPerNode int
}

// DefaultCorpusConfig returns the paper's settings.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{WalkLength: 80, MinWalksPerNode: 10, MaxWalksPerNode: 32}
}

// WalksFor returns the number of walks to start at a node with the given
// degree: max(min(degree, MaxWalksPerNode), MinWalksPerNode).
func (c CorpusConfig) WalksFor(degree int) int {
	n := degree
	if n > c.MaxWalksPerNode {
		n = c.MaxWalksPerNode
	}
	if n < c.MinWalksPerNode {
		n = c.MinWalksPerNode
	}
	return n
}

// Corpus samples random walks from every node of the view using walker w.
// Paths hold view-local node indices.
func Corpus(v *graph.View, w Walker, cfg CorpusConfig, rng *rand.Rand) [][]int {
	return corpusRange(v, w, cfg, 0, v.NumNodes(), rng)
}

// corpusRange samples the configured walks for start nodes in [lo, hi).
// Corpus and CorpusParallel are both built from this, so a one-shard
// parallel corpus is byte-identical to a serial one.
func corpusRange(v *graph.View, w Walker, cfg CorpusConfig, lo, hi int, rng *rand.Rand) [][]int {
	var paths [][]int
	for l := lo; l < hi; l++ {
		k := cfg.WalksFor(v.Degree(l))
		for i := 0; i < k; i++ {
			p := w.Walk(v, l, cfg.WalkLength, rng)
			if len(p) >= 2 {
				paths = append(paths, p)
			}
		}
	}
	return paths
}

// CorpusParallel samples the same per-node walk counts as Corpus but
// shards start nodes across a worker pool: shard s covers the s-th
// contiguous slice of the view's nodes and owns the private RNG stream
// rngstream(seed, s), so the result is deterministic for a fixed
// (seed, workers) regardless of goroutine scheduling — shard outputs
// are concatenated in shard order. With workers <= 1 this is exactly
// Corpus under stream (seed, 0).
//
// Walkers that cache per-node tables lazily (Biased, Correlated) are
// prepared eagerly first, so the shared walker is read-only while
// shards run.
func CorpusParallel(v *graph.View, w Walker, cfg CorpusConfig, seed int64, workers int) [][]int {
	paths, _ := CorpusParallelStats(v, w, cfg, seed, workers)
	return paths
}

// CorpusParallelStats is CorpusParallel plus the worker-pool timing
// breakdown consumed by the telemetry layer (per-worker busy time and
// shard counts, wall-clock of the fan-out). The corpus bytes are
// identical to CorpusParallel's for the same arguments.
func CorpusParallelStats(v *graph.View, w Walker, cfg CorpusConfig, seed int64, workers int) ([][]int, par.Stats) {
	n := v.NumNodes()
	if workers <= 1 || n <= 1 {
		var paths [][]int
		st := par.RunTimed(1, 1, func(int) {
			paths = Corpus(v, w, cfg, rngstream.New(seed, 0))
		})
		return paths, st
	}
	if p, ok := w.(Preparer); ok {
		p.Prepare()
	}
	shards := workers
	if shards > n {
		shards = n
	}
	perShard := make([][][]int, shards)
	st := par.RunTimed(workers, shards, func(s int) {
		lo := s * n / shards
		hi := (s + 1) * n / shards
		perShard[s] = corpusRange(v, w, cfg, lo, hi, rngstream.New(seed, int64(s)))
	})
	total := 0
	for _, p := range perShard {
		total += len(p)
	}
	paths := make([][]int, 0, total)
	for _, p := range perShard {
		paths = append(paths, p...)
	}
	return paths, st
}

// Adj is merged whole-graph adjacency (all edge types) used by walkers
// that cross views, such as the meta-path walker and HIN2VEC-style walks.
type Adj struct {
	g       *graph.Graph
	rowPtr  []int
	colIdx  []int32 // neighbor global node IDs
	weights []float64
	etypes  []int32 // edge type of each adjacency slot
}

// NewAdj builds merged adjacency for g.
func NewAdj(g *graph.Graph) *Adj {
	n := g.NumNodes()
	a := &Adj{g: g}
	deg := make([]int, n)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	a.rowPtr = make([]int, n+1)
	for i := 0; i < n; i++ {
		a.rowPtr[i+1] = a.rowPtr[i] + deg[i]
	}
	m := a.rowPtr[n]
	a.colIdx = make([]int32, m)
	a.weights = make([]float64, m)
	a.etypes = make([]int32, m)
	fill := make([]int, n)
	copy(fill, a.rowPtr[:n])
	for _, e := range g.Edges {
		a.colIdx[fill[e.U]] = int32(e.V)
		a.weights[fill[e.U]] = e.Weight
		a.etypes[fill[e.U]] = int32(e.Type)
		fill[e.U]++
		a.colIdx[fill[e.V]] = int32(e.U)
		a.weights[fill[e.V]] = e.Weight
		a.etypes[fill[e.V]] = int32(e.Type)
		fill[e.V]++
	}
	return a
}

// Neighbors returns neighbor IDs, weights and edge types of node id.
// The slices alias internal storage.
func (a *Adj) Neighbors(id graph.NodeID) ([]int32, []float64, []int32) {
	lo, hi := a.rowPtr[id], a.rowPtr[id+1]
	return a.colIdx[lo:hi], a.weights[lo:hi], a.etypes[lo:hi]
}

// Degree returns the merged degree of node id.
func (a *Adj) Degree(id graph.NodeID) int { return a.rowPtr[id+1] - a.rowPtr[id] }

// MetaPath performs walks constrained by a cyclic meta-path of node
// types, as in metapath2vec. The walk starts at a node whose type equals
// metaPath[0] and each step moves to a uniformly random neighbor of the
// next type in the (cyclic) pattern; it stops early when no such neighbor
// exists. The first and last types of the pattern must match for the
// cycle to be well-formed (e.g. A-P-V-P-A).
type MetaPath struct {
	Adj     *Adj
	Pattern []graph.NodeType
}

// Walk performs one meta-path walk of up to length nodes from start.
// start must have type Pattern[0]; otherwise the walk is empty.
func (m MetaPath) Walk(start graph.NodeID, length int, rng *rand.Rand) []graph.NodeID {
	if m.Adj.g.NodeType(start) != m.Pattern[0] {
		return nil
	}
	// The pattern is cyclic with shared endpoints: position p in the walk
	// corresponds to pattern index p mod (len-1).
	period := len(m.Pattern) - 1
	if period <= 0 {
		return nil
	}
	path := make([]graph.NodeID, 0, length)
	path = append(path, start)
	cur := start
	for len(path) < length {
		wantType := m.Pattern[len(path)%period]
		ns, ws, _ := m.Adj.Neighbors(cur)
		// Collect candidates of the wanted type.
		var cands []int32
		var cw []float64
		for i, nb := range ns {
			if m.Adj.g.NodeType(graph.NodeID(nb)) == wantType {
				cands = append(cands, nb)
				cw = append(cw, ws[i])
			}
		}
		if len(cands) == 0 {
			break
		}
		cur = graph.NodeID(weightedPick(cands, cw, rng))
		path = append(path, cur)
	}
	return path
}
