// Package dataset generates synthetic heterogeneous networks that stand
// in for the paper's four evaluation datasets (Table II): AMiner, BLOG,
// App-Daily and App-Weekly. The originals are respectively licensed
// academic data and proprietary Tencent logs; the generators reproduce
// their schemas (node/edge types, weights, labels) and the structural
// properties the paper's analysis leans on:
//
//   - AMiner: four edge types (AA, AP, PP, PV), unit weights, papers
//     labeled with research topics. Co-authorship is substantially
//     cross-topic (collaboration noise) and venues host multiple topics,
//     so type-blind merged walks blur topics while per-view learning
//     keeps the citation/authorship signal usable.
//   - BLOG: three edge types (UU, UK, KK), unit weights, very dense.
//     Friendship (UU) is heavily noisy while keyword usage (UK) is
//     field-pure: methods that separate views and transfer across them
//     recover the signal; type-blind walks drown in dense UU noise. The
//     views remain correlated (UU retains a field bias), which is what
//     makes cross-view transfer effective for link prediction
//     (Section IV-B2).
//   - App-Daily / App-Weekly: two edge types (AU, AK) with informative
//     continuous weights. Users are multi-interest: each uses applets of
//     several categories, and the *weight level* (usage time) encodes
//     which interest an edge belongs to. Recovering categories from the
//     AU view therefore requires weight-correlated walks (Equation 7) —
//     plain weight-biased walks mix the user's interests. A labeled
//     subset of applets carries one of 9 categories (Figure 6).
//
// All generators are deterministic in their seed.
package dataset

import (
	"fmt"
	"math/rand"

	"transn/internal/graph"
)

// Size selects the scale of generated networks.
type Size int

const (
	// Quick generates small networks suitable for unit tests and fast
	// benchmark passes.
	Quick Size = iota
	// Full generates networks roughly 10× smaller than the paper's but
	// large enough for the evaluation shape to be meaningful.
	Full
)

// Spec names a generator so harnesses can iterate over all datasets.
type Spec struct {
	Name     string
	Generate func(size Size, seed int64) *graph.Graph
}

// All returns the four dataset generators in the paper's Table II order.
func All() []Spec {
	return []Spec{
		{Name: "AMiner", Generate: AMiner},
		{Name: "BLOG", Generate: BLOG},
		{Name: "App-Daily", Generate: AppDaily},
		{Name: "App-Weekly", Generate: AppWeekly},
	}
}

// edgeSet deduplicates undirected edges during generation.
type edgeSet map[[2]graph.NodeID]bool

func (s edgeSet) add(b *graph.Builder, u, v graph.NodeID, et graph.EdgeType, w float64) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	k := [2]graph.NodeID{u, v}
	if s[k] {
		return false
	}
	s[k] = true
	b.AddEdge(u, v, et, w)
	return true
}

// AMiner generates an academic network: authors, papers, venues; edge
// types AA (co-authorship), AP (authorship), PP (citation), PV
// (publication). Papers carry topic labels.
func AMiner(size Size, seed int64) *graph.Graph {
	nAuthors, nPapers, nVenues, nTopics := 220, 280, 9, 7
	if size == Full {
		nAuthors, nPapers, nVenues, nTopics = 450, 520, 12, 6
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	venue := b.NodeType("venue")
	aa := b.EdgeType("AA")
	ap := b.EdgeType("AP")
	pp := b.EdgeType("PP")
	pv := b.EdgeType("PV")

	authors := make([]graph.NodeID, nAuthors)
	authorTopic := make([]int, nAuthors)
	for i := range authors {
		authors[i] = b.AddNode(author, fmt.Sprintf("a%d", i))
		authorTopic[i] = i % nTopics
	}
	papers := make([]graph.NodeID, nPapers)
	paperTopic := make([]int, nPapers)
	for i := range papers {
		papers[i] = b.AddNode(paper, fmt.Sprintf("p%d", i))
		paperTopic[i] = i % nTopics
		b.SetLabel(papers[i], paperTopic[i])
	}
	venues := make([]graph.NodeID, nVenues)
	for i := range venues {
		venues[i] = b.AddNode(venue, fmt.Sprintf("v%d", i))
	}

	seen := edgeSet{}
	pickTopic := func(topic int, n int, purity float64) int {
		if rng.Float64() < purity {
			return (rng.Intn(n/nTopics)*nTopics + topic) % n
		}
		return rng.Intn(n)
	}
	// Authorship: each paper has 1–2 authors, mostly from its topic.
	for i, p := range papers {
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			a := pickTopic(paperTopic[i], nAuthors, 0.75)
			seen.add(b, p, authors[a], ap, 1)
		}
	}
	// Co-authorship: collaborations frequently cross topics, so the AA
	// view is a noisy bridge when types are ignored.
	for i := range authors {
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			other := pickTopic(authorTopic[i], nAuthors, 0.45)
			seen.add(b, authors[i], authors[other], aa, 1)
		}
	}
	// Citation: papers cite 1–2 mostly same-topic papers.
	for i := range papers {
		k := 1 + rng.Intn(2)
		for j := 0; j < k; j++ {
			other := pickTopic(paperTopic[i], nPapers, 0.7)
			seen.add(b, papers[i], papers[other], pp, 1)
		}
	}
	// Publication: venues host two adjacent topics, so a venue hub mixes
	// topics for type-blind walkers.
	for i, p := range papers {
		base := paperTopic[i]
		v := base
		if rng.Float64() < 0.5 {
			v = base + 1
		}
		if rng.Float64() < 0.1 {
			v = rng.Intn(nVenues)
		}
		seen.add(b, p, venues[v%nVenues], pv, 1)
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: AMiner: %v", err))
	}
	return g
}

// BLOG generates a dense social network: users and keywords; edge types
// UU (friendship), UK (keyword usage), KK (keyword relevance). Users are
// labeled with interest fields. UU is dense and only weakly field-
// correlated (social noise); UK/KK are field-pure.
func BLOG(size Size, seed int64) *graph.Graph {
	nUsers, nKeywords, nFields := 260, 60, 5
	degUU := 12
	if size == Full {
		nUsers, nKeywords, nFields = 700, 130, 6
		degUU = 16
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	user := b.NodeType("user")
	keyword := b.NodeType("keyword")
	uu := b.EdgeType("UU")
	uk := b.EdgeType("UK")
	kk := b.EdgeType("KK")

	users := make([]graph.NodeID, nUsers)
	field := make([]int, nUsers)
	circle := make([]int, nUsers)
	nCircles := nUsers / 8
	for i := range users {
		users[i] = b.AddNode(user, fmt.Sprintf("u%d", i))
		field[i] = i % nFields
		circle[i] = rng.Intn(nCircles) // circles cut across fields
		b.SetLabel(users[i], field[i])
	}
	circleMembers := make([][]int, nCircles)
	for i := range users {
		circleMembers[circle[i]] = append(circleMembers[circle[i]], i)
	}
	keywords := make([]graph.NodeID, nKeywords)
	kwField := make([]int, nKeywords)
	for i := range keywords {
		keywords[i] = b.AddNode(keyword, fmt.Sprintf("k%d", i))
		kwField[i] = i % nFields
	}
	circleKws := make([][]graph.NodeID, nCircles)
	for c := range circleKws {
		for j := 0; j < 2; j++ {
			circleKws[c] = append(circleKws[c], b.AddNode(keyword, fmt.Sprintf("ck%d_%d", c, j)))
		}
	}
	seen := edgeSet{}
	sameField := func(f, n, nf int, purity float64) int {
		if rng.Float64() < purity {
			return (rng.Intn(n/nf)*nf + f) % n
		}
		return rng.Intn(n)
	}
	// Dense friendships follow mixed-field social circles plus random
	// noise. Circles cut across interest fields, so the UU view stays
	// uninformative for classification, but removed friendships are
	// locally predictable — the link-prediction signal.
	for i := range users {
		members := circleMembers[circle[i]]
		for j := 0; j < degUU; j++ {
			var other int
			if rng.Float64() < 0.55 && len(members) > 1 {
				other = members[rng.Intn(len(members))]
			} else {
				other = sameField(field[i], nUsers, nFields, 0.22)
			}
			seen.add(b, users[i], users[other], uu, 1)
		}
	}
	// Keyword usage: users post field keywords (classification signal)
	// and a couple of keywords owned by their circle, which lets the UK
	// view predict UU links through shared users (the paper's BLOG
	// link-prediction story, Section IV-B2).
	for i := range users {
		for j := 0; j < 4; j++ {
			k := sameField(field[i], nKeywords, nFields, 0.72)
			seen.add(b, users[i], keywords[k], uk, 1)
		}
		for j := 0; j < 2; j++ {
			if rng.Float64() < 0.8 {
				seen.add(b, users[i], circleKws[circle[i]][j], uk, 1)
			}
		}
	}
	// Keyword relevance: within-field keyword links; circle keywords
	// attach to one field keyword each so the KK view stays connected.
	for i := range keywords {
		for j := 0; j < 3; j++ {
			other := sameField(kwField[i], nKeywords, nFields, 0.9)
			seen.add(b, keywords[i], keywords[other], kk, 1)
		}
	}
	for c := range circleKws {
		for _, ck := range circleKws[c] {
			seen.add(b, ck, keywords[rng.Intn(nKeywords)], kk, 1)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: BLOG: %v", err))
	}
	return g
}

// appStore is the shared generator behind AppDaily and AppWeekly. Users
// are multi-interest: each has 2–3 interest categories with distinct
// per-category usage levels; every AU edge's weight is the level of the
// interest that produced it (plus noise). Two applets reached through
// the same user therefore share a category exactly when their edge
// weights are similar — the structure Equation 7's correlated walks
// exploit and plain weight-biased walks cannot. Keywords (AK) carry a
// cleaner topological category signal, so the two views complement each
// other through shared applets.
func appStore(nApplets, nUsers, nKeywords, usagePerUser int, labeledFrac float64, seed int64) *graph.Graph {
	const nCategories = 9
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	applet := b.NodeType("applet")
	user := b.NodeType("user")
	keyword := b.NodeType("keyword")
	au := b.EdgeType("AU")
	ak := b.EdgeType("AK")

	applets := make([]graph.NodeID, nApplets)
	category := make([]int, nApplets)
	for i := range applets {
		applets[i] = b.AddNode(applet, fmt.Sprintf("x%d", i))
		category[i] = i % nCategories
		if rng.Float64() < labeledFrac {
			b.SetLabel(applets[i], category[i])
		}
	}
	users := make([]graph.NodeID, nUsers)
	// Each user has 2–3 interests, each with its own distinct usage
	// level drawn from well-separated bands.
	type interest struct {
		cat   int
		level float64
	}
	userInterests := make([][]interest, nUsers)
	// Levels are close enough that no interest dominates the sampling
	// mass, yet separated by more than the ±5% weight noise so the
	// correlated walk (Equation 7) can tell interests apart.
	levels := []float64{5, 7, 10, 14, 20}
	for i := range users {
		users[i] = b.AddNode(user, fmt.Sprintf("u%d", i))
		k := 3 + rng.Intn(2)
		perm := rng.Perm(nCategories)
		lperm := rng.Perm(len(levels))
		for j := 0; j < k; j++ {
			userInterests[i] = append(userInterests[i], interest{
				cat:   perm[j],
				level: levels[lperm[j%len(levels)]],
			})
		}
	}
	keywords := make([]graph.NodeID, nKeywords)
	kwCat := make([]int, nKeywords)
	for i := range keywords {
		keywords[i] = b.AddNode(keyword, fmt.Sprintf("q%d", i))
		kwCat[i] = i % nCategories
	}
	seen := edgeSet{}
	pickApplet := func(cat int, purity float64) int {
		if rng.Float64() < purity {
			return (rng.Intn(nApplets/nCategories)*nCategories + cat) % nApplets
		}
		return rng.Intn(nApplets)
	}
	// Usage: each usage event comes from one of the user's interests;
	// the weight is that interest's level. Because a user's interests
	// span categories, topology alone mixes categories — the weight
	// level is the disambiguator.
	for i := range users {
		for j := 0; j < usagePerUser; j++ {
			in := userInterests[i][rng.Intn(len(userInterests[i]))]
			x := pickApplet(in.cat, 0.9)
			w := in.level * (0.95 + 0.1*rng.Float64())
			seen.add(b, users[i], applets[x], au, w)
		}
	}
	// Search downloads: keywords connect to applets mostly in their own
	// category; weights are download counts (less informative).
	for i := range keywords {
		k := 2 + rng.Intn(3)
		for j := 0; j < k; j++ {
			x := pickApplet(kwCat[i], 0.75)
			w := 1 + float64(rng.Intn(8))
			seen.add(b, keywords[i], applets[x], ak, w)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("dataset: appStore: %v", err))
	}
	return g
}

// AppDaily generates the one-day applet-store network: sparse, few
// users, weighted.
func AppDaily(size Size, seed int64) *graph.Graph {
	if size == Full {
		return appStore(900, 140, 200, 14, 0.5, seed)
	}
	return appStore(360, 60, 90, 12, 0.6, seed)
}

// AppWeekly generates the one-week applet-store network: more users and
// heavier usage than AppDaily, same schema.
func AppWeekly(size Size, seed int64) *graph.Graph {
	if size == Full {
		return appStore(1000, 420, 210, 16, 0.5, seed)
	}
	return appStore(420, 170, 95, 14, 0.6, seed)
}
