package dataset

import (
	"testing"

	"transn/internal/graph"
)

func TestAllSpecsGenerate(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Generate(Quick, 1)
			if g.NumNodes() == 0 || g.NumEdges() == 0 {
				t.Fatal("empty graph")
			}
			// Views must partition edges and validate.
			total := 0
			for _, v := range g.Views() {
				if err := v.Validate(); err != nil {
					t.Fatalf("view invalid: %v", err)
				}
				total += v.NumEdges()
			}
			if total != g.NumEdges() {
				t.Fatalf("views cover %d of %d edges", total, g.NumEdges())
			}
			if len(g.LabeledNodes()) == 0 {
				t.Fatal("no labeled nodes")
			}
			if len(g.ViewPairs()) == 0 {
				t.Fatal("no view pairs — cross-view algorithm would be idle")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, spec := range All() {
		g1 := spec.Generate(Quick, 42)
		g2 := spec.Generate(Quick, 42)
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
			t.Fatalf("%s: nondeterministic sizes", spec.Name)
		}
		for i := range g1.Edges {
			if g1.Edges[i] != g2.Edges[i] {
				t.Fatalf("%s: edge %d differs", spec.Name, i)
			}
		}
		g3 := spec.Generate(Quick, 43)
		same := g1.NumEdges() == g3.NumEdges()
		if same {
			diff := false
			for i := range g1.Edges {
				if g1.Edges[i] != g3.Edges[i] {
					diff = true
					break
				}
			}
			same = !diff
		}
		if same {
			t.Fatalf("%s: different seeds gave identical graphs", spec.Name)
		}
	}
}

func TestAMinerSchema(t *testing.T) {
	g := AMiner(Quick, 1)
	if g.NumNodeTypes() != 3 {
		t.Fatalf("node types %d", g.NumNodeTypes())
	}
	if g.NumEdgeTypes() != 4 {
		t.Fatalf("edge types %d: %v", g.NumEdgeTypes(), g.EdgeTypeNames)
	}
	// Only papers are labeled.
	for _, id := range g.LabeledNodes() {
		if g.NodeTypeNames[g.NodeType(id)] != "paper" {
			t.Fatal("non-paper node labeled in AMiner")
		}
	}
	// Unit weights.
	for _, e := range g.Edges {
		if e.Weight != 1 {
			t.Fatal("AMiner must have unit weights")
		}
	}
}

func TestBLOGSchemaAndDensity(t *testing.T) {
	g := BLOG(Quick, 1)
	if g.NumEdgeTypes() != 3 {
		t.Fatalf("edge types %d", g.NumEdgeTypes())
	}
	for _, e := range g.Edges {
		if e.Weight != 1 {
			t.Fatal("BLOG must have unit weights")
		}
	}
	// BLOG must be denser than App-Daily (the paper: >20× denser; we
	// require a clear gap).
	blogStats := g.ComputeStats()
	appStats := AppDaily(Quick, 1).ComputeStats()
	if blogStats.Density < 3*appStats.Density {
		t.Fatalf("BLOG density %.5f should far exceed App-Daily %.5f",
			blogStats.Density, appStats.Density)
	}
}

func TestAppStoreSchema(t *testing.T) {
	for _, gen := range []func(Size, int64) *graph.Graph{AppDaily, AppWeekly} {
		g := gen(Quick, 1)
		if g.NumEdgeTypes() != 2 {
			t.Fatalf("edge types %d", g.NumEdgeTypes())
		}
		// Weighted edges with real spread.
		minW, maxW := g.Edges[0].Weight, g.Edges[0].Weight
		for _, e := range g.Edges {
			if e.Weight < minW {
				minW = e.Weight
			}
			if e.Weight > maxW {
				maxW = e.Weight
			}
		}
		if maxW <= 2*minW {
			t.Fatalf("weights not informative: [%g, %g]", minW, maxW)
		}
		// Exactly 9 categories (Figure 6).
		if g.NumLabels() != 9 {
			t.Fatalf("labels %d want 9", g.NumLabels())
		}
		// Only applets labeled; not all of them.
		labeled := g.LabeledNodes()
		nApplets := 0
		for _, n := range g.Nodes {
			if g.NodeTypeNames[n.Type] == "applet" {
				nApplets++
			}
		}
		if len(labeled) == 0 || len(labeled) >= nApplets {
			t.Fatalf("labeled %d of %d applets", len(labeled), nApplets)
		}
	}
}

func TestAppWeeklyLargerThanDaily(t *testing.T) {
	d := AppDaily(Full, 1)
	w := AppWeekly(Full, 1)
	if w.NumEdges() <= d.NumEdges() {
		t.Fatalf("weekly edges %d should exceed daily %d", w.NumEdges(), d.NumEdges())
	}
}

func TestFullLargerThanQuick(t *testing.T) {
	for _, spec := range All() {
		q := spec.Generate(Quick, 1)
		f := spec.Generate(Full, 1)
		if f.NumNodes() <= q.NumNodes() {
			t.Fatalf("%s: Full (%d nodes) not larger than Quick (%d)",
				spec.Name, f.NumNodes(), q.NumNodes())
		}
	}
}
