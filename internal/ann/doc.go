// Package ann provides the approximate-nearest-neighbor index behind
// /v1/knn: a stdlib-only HNSW (Hierarchical Navigable Small World)
// graph over the rows of a frozen embedding table, searched under
// cosine similarity. It exists because the brute-force scan the server
// shipped with is O(N·d) per request — the serving bottleneck the
// ROADMAP calls out on the way to millions-of-nodes tables.
//
// Invariants the package guarantees:
//
//   - Immutability after build. Build and Decode fully construct the
//     index; nothing mutates it afterwards, so an Index is safe for
//     unlimited concurrent Search calls without locks. The index is
//     owned by the serving snapshot it was built for (DESIGN.md §10)
//     and dies with it — it is never patched in place across reloads.
//   - Determinism. Construction consumes no global randomness and no
//     wall clock: per-node levels derive from a rngstream seed and the
//     node id alone, insertion is sequential in node-id order, and
//     every comparison breaks distance ties by node id. Two Builds
//     over the same table with the same Config serialize to identical
//     bytes (pinned by TestBuildDeterministic), which is what makes
//     packed snapshots byte-reproducible (SNAPSHOT.md §1).
//   - Read-only aliasing. The index never writes through the table or
//     norms slices it is given, so both may alias a read-only mmap
//     (snapfmt's zero-copy tables); Decode likewise only reads the
//     serialized bytes and may alias its integer arrays into them.
//
// Search is approximate: results approach the exact brute-force
// ranking as ef grows (recall is benchmark-gated in hnsw_test.go), and
// the serving layer keeps an exact=true escape hatch for callers that
// need the ground truth.
package ann
