package ann

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"transn/internal/mat"
)

// Serialized HNSW graph layout (this is the payload of the snapshot
// format's ANN section; SNAPSHOT.md §8 normatively defers to it). All
// integers are little-endian. Layout:
//
//	[0:8)   magic "HNSWIDX1"
//	[8:12)  u32 M
//	[12:16) u32 efConstruction
//	[16:20) u32 efSearch (default search beam; advisory)
//	[20:24) u32 maxLevel
//	[24:32) i64 seed
//	[32:40) u64 nodes
//	[40:44) u32 entry node id
//	[44:48) u32 reserved (zero)
//	levels: nodes bytes (one level per node), zero-padded to 8
//	for each layer 0..maxLevel:
//	  u64 edges              total neighbor entries on this layer
//	  u32 offs[nodes+1]      CSR prefix offsets into nbrs
//	  u32 nbrs[edges]        neighbor ids
//	  zero padding to the next 8-byte boundary
//
// Every layer block therefore starts 8-aligned as long as the whole
// payload does, which lets Decode alias the u32 arrays straight out of
// a read-only mapping on little-endian hosts.
const (
	serMagic      = "HNSWIDX1"
	serHeaderSize = 48
)

// hostLittleEndian reports whether the running machine stores integers
// little-endian, the precondition for zero-copy aliasing.
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

func pad8(n int) int { return (8 - n%8) % 8 }

// AppendTo serializes the index graph (not the table — the snapshot
// stores that separately) and appends it to dst. The output depends
// only on the build inputs, so two Builds of the same table and Config
// append identical bytes.
func (ix *Index) AppendTo(dst []byte) []byte {
	var b [8]byte
	dst = append(dst, serMagic...)
	binary.LittleEndian.PutUint32(b[:4], uint32(ix.cfg.M))
	dst = append(dst, b[:4]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(ix.cfg.EfConstruction))
	dst = append(dst, b[:4]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(ix.cfg.EfSearch))
	dst = append(dst, b[:4]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(ix.maxLevel))
	dst = append(dst, b[:4]...)
	binary.LittleEndian.PutUint64(b[:], uint64(ix.cfg.Seed))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint64(b[:], uint64(ix.table.R))
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint32(b[:4], uint32(ix.entry))
	dst = append(dst, b[:4]...)
	binary.LittleEndian.PutUint32(b[:4], 0)
	dst = append(dst, b[:4]...)
	dst = append(dst, ix.levels...)
	for i := 0; i < pad8(len(ix.levels)); i++ {
		dst = append(dst, 0)
	}
	for _, l := range ix.layers {
		edges := 0
		for _, a := range l.adj {
			edges += len(a)
		}
		binary.LittleEndian.PutUint64(b[:], uint64(edges))
		dst = append(dst, b[:]...)
		off := uint32(0)
		for _, a := range l.adj {
			binary.LittleEndian.PutUint32(b[:4], off)
			dst = append(dst, b[:4]...)
			off += uint32(len(a))
		}
		binary.LittleEndian.PutUint32(b[:4], off)
		dst = append(dst, b[:4]...)
		for _, a := range l.adj {
			for _, nb := range a {
				binary.LittleEndian.PutUint32(b[:4], uint32(nb))
				dst = append(dst, b[:4]...)
			}
		}
		for i := 0; i < pad8((ix.table.R+1+edges)*4); i++ {
			dst = append(dst, 0)
		}
	}
	return dst
}

// Decode reconstructs an index from bytes produced by AppendTo, over
// the given table and norms (nil norms are computed). On little-endian
// hosts with an 8-aligned data slice the neighbor arrays alias data
// directly — data must then stay alive and unmodified as long as the
// index — otherwise they are copied. Every structural field is
// validated so a corrupted snapshot fails closed instead of searching
// out of bounds.
func Decode(data []byte, table *mat.Dense, norms []float64) (*Index, error) {
	if len(data) < serHeaderSize {
		return nil, fmt.Errorf("ann: serialized index truncated: %d bytes", len(data))
	}
	if string(data[:8]) != serMagic {
		return nil, fmt.Errorf("ann: bad index magic %q", data[:8])
	}
	cfg := Config{
		M:              int(binary.LittleEndian.Uint32(data[8:12])),
		EfConstruction: int(binary.LittleEndian.Uint32(data[12:16])),
		EfSearch:       int(binary.LittleEndian.Uint32(data[16:20])),
	}
	maxLevel := int(binary.LittleEndian.Uint32(data[20:24]))
	cfg.Seed = int64(binary.LittleEndian.Uint64(data[24:32]))
	nodes := binary.LittleEndian.Uint64(data[32:40])
	entry := int32(binary.LittleEndian.Uint32(data[40:44]))
	if table == nil || uint64(table.R) != nodes {
		r := 0
		if table != nil {
			r = table.R
		}
		return nil, fmt.Errorf("ann: index covers %d nodes, table has %d rows", nodes, r)
	}
	if cfg.M <= 0 || cfg.M > 1<<20 {
		return nil, fmt.Errorf("ann: implausible M %d", cfg.M)
	}
	if maxLevel > maxLevelCap {
		return nil, fmt.Errorf("ann: max level %d exceeds cap %d", maxLevel, maxLevelCap)
	}
	if entry < 0 || uint64(entry) >= nodes {
		return nil, fmt.Errorf("ann: entry %d out of range [0,%d)", entry, nodes)
	}
	if norms == nil {
		norms = Norms(table)
	}
	if len(norms) != table.R {
		return nil, fmt.Errorf("ann: %d norms for %d rows", len(norms), table.R)
	}
	n := int(nodes)
	pos := serHeaderSize
	if len(data) < pos+n {
		return nil, fmt.Errorf("ann: serialized index truncated in levels")
	}
	levels := data[pos : pos+n : pos+n] // aliases data; read-only
	for i, lv := range levels {
		if int(lv) > maxLevel {
			return nil, fmt.Errorf("ann: node %d level %d exceeds max level %d", i, lv, maxLevel)
		}
	}
	if int(levels[entry]) != maxLevel {
		return nil, fmt.Errorf("ann: entry %d has level %d, want max level %d", entry, levels[entry], maxLevel)
	}
	pos += n + pad8(n)
	ix := &Index{
		cfg:      cfg.withDefaults(),
		table:    table,
		norms:    norms,
		levels:   levels,
		entry:    entry,
		maxLevel: maxLevel,
	}
	zeroCopy := hostLittleEndian() && uintptr(unsafe.Pointer(&data[0]))%8 == 0
	for l := 0; l <= maxLevel; l++ {
		if len(data) < pos+8 {
			return nil, fmt.Errorf("ann: serialized index truncated in layer %d header", l)
		}
		edges := binary.LittleEndian.Uint64(data[pos : pos+8])
		pos += 8
		if edges > math.MaxUint32 {
			return nil, fmt.Errorf("ann: layer %d edge count %d overflows u32 offsets", l, edges)
		}
		want := (n+1)*4 + int(edges)*4
		if len(data) < pos+want {
			return nil, fmt.Errorf("ann: serialized index truncated in layer %d arrays", l)
		}
		offs := asUint32s(data[pos:pos+(n+1)*4], zeroCopy)
		nbrs := asUint32s(data[pos+(n+1)*4:pos+want], zeroCopy)
		if offs[0] != 0 || offs[n] != uint32(edges) {
			return nil, fmt.Errorf("ann: layer %d offsets do not span edge array", l)
		}
		adj := make([][]int32, n)
		for i := 0; i < n; i++ {
			if offs[i] > offs[i+1] {
				return nil, fmt.Errorf("ann: layer %d offsets not monotonic at node %d", l, i)
			}
			if offs[i] != offs[i+1] && int(levels[i]) < l {
				return nil, fmt.Errorf("ann: node %d has layer-%d edges above its level %d", i, l, levels[i])
			}
			adj[i] = int32sOf(nbrs[offs[i]:offs[i+1]])
		}
		for _, nb := range nbrs {
			if uint64(nb) >= nodes {
				return nil, fmt.Errorf("ann: neighbor id %d out of range [0,%d)", nb, nodes)
			}
		}
		ix.layers = append(ix.layers, layer{adj: adj})
		pos += want + pad8(want)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("ann: %d trailing bytes after layer %d", len(data)-pos, maxLevel)
	}
	ix.initPool()
	return ix, nil
}

// asUint32s views b as little-endian u32s, aliasing when the caller
// established the zero-copy preconditions and copying otherwise.
func asUint32s(b []byte, zeroCopy bool) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if zeroCopy && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// int32sOf reinterprets a u32 slice as int32s without copying. Ids are
// validated non-negative (< nodes) by Decode before use.
func int32sOf(u []uint32) []int32 {
	if len(u) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&u[0])), len(u))
}
