package ann

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"transn/internal/mat"
)

func buildRandom(t *testing.T, n, dim int, cfg Config) (*Index, *mat.Dense, []float64) {
	t.Helper()
	table := RandomTable(n, dim, 7)
	norms := Norms(table)
	ix, err := Build(table, norms, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix, table, norms
}

// With ef >= n the beam covers every reachable node, so on a connected
// graph HNSW must return exactly the brute-force top-k, in the same
// (sim desc, id asc) order.
func TestSearchMatchesBruteAtFullEf(t *testing.T) {
	ix, table, norms := buildRandom(t, 200, 8, Config{M: 8, Seed: 3})
	for row := 0; row < table.R; row += 17 {
		q, qn := table.Row(row), norms[row]
		got, evals, err := ix.Search(q, qn, 10, table.R)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		if evals <= 0 {
			t.Fatalf("Search reported %d distance evals", evals)
		}
		want := BruteKNN(table, norms, q, qn, 10)
		if len(got) != len(want) {
			t.Fatalf("row %d: got %d results, want %d", row, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("row %d rank %d: got id %d want %d", row, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestRecallAtTen(t *testing.T) {
	const n, dim, k = 2000, 16, 10
	ix, table, norms := buildRandom(t, n, dim, Config{Seed: 11})
	recall := 0.0
	queries := 0
	for row := 0; row < n; row += 19 {
		q, qn := table.Row(row), norms[row]
		got, _, err := ix.Search(q, qn, k, 128)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		recall += overlap(BruteKNN(table, norms, q, qn, k), got) / k
		queries++
	}
	recall /= float64(queries)
	if recall < 0.95 {
		t.Fatalf("recall@10 = %.4f, want >= 0.95", recall)
	}
}

// Two builds of the same table and Config must serialize to identical
// bytes — the property SNAPSHOT.md §1 relies on for reproducible packs.
func TestBuildDeterministic(t *testing.T) {
	table := RandomTable(500, 12, 21)
	a, err := Build(table, nil, Config{M: 6, EfConstruction: 50, Seed: 9})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := Build(table, nil, Config{M: 6, EfConstruction: 50, Seed: 9})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !bytes.Equal(a.AppendTo(nil), b.AppendTo(nil)) {
		t.Fatal("two builds of the same inputs serialized differently")
	}
	c, err := Build(table, nil, Config{M: 6, EfConstruction: 50, Seed: 10})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if bytes.Equal(a.AppendTo(nil), c.AppendTo(nil)) {
		t.Fatal("different seeds serialized identically")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	ix, table, norms := buildRandom(t, 300, 10, Config{M: 8, Seed: 5})
	data := ix.AppendTo(nil)
	dec, err := Decode(data, table, norms)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(data, dec.AppendTo(nil)) {
		t.Fatal("decode→re-encode is not the identity")
	}
	for row := 0; row < table.R; row += 23 {
		q, qn := table.Row(row), norms[row]
		a, _, err := ix.Search(q, qn, 5, 64)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		b, _, err := dec.Search(q, qn, 5, 64)
		if err != nil {
			t.Fatalf("decoded Search: %v", err)
		}
		if len(a) != len(b) {
			t.Fatalf("row %d: result count diverged", row)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d rank %d: built %+v decoded %+v", row, i, a[i], b[i])
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	ix, table, norms := buildRandom(t, 50, 4, Config{M: 4, Seed: 1})
	good := ix.AppendTo(nil)
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"truncated header", good[:serHeaderSize-1]},
		{"truncated levels", good[:serHeaderSize+10]},
		{"truncated layer", good[:len(good)-9]},
		{"trailing garbage", mutate(func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0, 0, 0, 0) })},
		{"entry out of range", mutate(func(b []byte) []byte { b[40] = 0xff; b[41] = 0xff; return b })},
		{"level above max", mutate(func(b []byte) []byte { b[serHeaderSize+3] = maxLevelCap + 1; return b })},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data, table, norms); err == nil {
			t.Errorf("%s: Decode accepted corrupted input", tc.name)
		}
	}
	if _, err := Decode(good, mat.New(49, 4), nil); err == nil {
		t.Error("Decode accepted a table with the wrong row count")
	}
	if _, err := Decode(good, table, norms); err != nil {
		t.Errorf("Decode rejected pristine input: %v", err)
	}
}

func TestZeroNormRows(t *testing.T) {
	table := RandomTable(40, 6, 13)
	for j := 0; j < table.C; j++ {
		table.Set(4, j, 0)
	}
	norms := Norms(table)
	ix, err := Build(table, norms, Config{M: 4, Seed: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	got, _, err := ix.Search(table.Row(4), 0, 5, 40)
	if err != nil {
		t.Fatalf("Search from zero-norm row: %v", err)
	}
	for _, c := range got {
		if c.Sim != 0 {
			t.Fatalf("zero-norm query produced sim %v for id %d, want 0", c.Sim, c.ID)
		}
	}
}

func TestSearchValidation(t *testing.T) {
	ix, table, norms := buildRandom(t, 30, 5, Config{M: 4, Seed: 4})
	if _, _, err := ix.Search(make([]float64, 4), 1, 3, 8); err == nil {
		t.Error("Search accepted a wrong-dimension query")
	}
	if _, _, err := ix.Search(table.Row(0), norms[0], 0, 8); err == nil {
		t.Error("Search accepted k=0")
	}
	if _, err := Build(mat.New(0, 0), nil, Config{}); err == nil {
		t.Error("Build accepted an empty table")
	}
	if _, err := Build(table, norms[:10], Config{}); err == nil {
		t.Error("Build accepted a short norms slice")
	}
}

func TestStats(t *testing.T) {
	ix, _, _ := buildRandom(t, 100, 6, Config{M: 5, Seed: 8})
	st := ix.Stats()
	if st.Nodes != 100 || st.Dim != 6 || st.M != 5 || st.Edges <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.Entry < 0 || st.Entry >= 100 || st.MaxLevel < 0 {
		t.Fatalf("implausible entry/level: %+v", st)
	}
}

// The acceptance criterion behind the index: at >= 10k nodes the HNSW
// p99 must beat the brute-force p99. Skipped under -short (it builds a
// 10k-node index and times real queries).
func TestHNSWFasterThanBruteAt10k(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped under -short")
	}
	doc, err := MeasureBench("test", []int{10000}, 32, 10, 120, 64, Config{Seed: 17}, 17)
	if err != nil {
		t.Fatalf("MeasureBench: %v", err)
	}
	e := doc.Entries[0]
	if e.HNSWP99Micros >= e.BruteP99Micros {
		t.Fatalf("HNSW p99 %.1fµs not faster than brute p99 %.1fµs at 10k nodes", e.HNSWP99Micros, e.BruteP99Micros)
	}
	if e.RecallAtK < 0.9 {
		t.Fatalf("recall@10 = %.3f at 10k nodes, want >= 0.9", e.RecallAtK)
	}
}

// TestKNNBenchTrajectory validates the committed benchmark artifact,
// and regenerates it when TRANSN_KNN_BENCH_OUT names a target path
// (CI uses that mode to upload a fresh measurement).
func TestKNNBenchTrajectory(t *testing.T) {
	if out := os.Getenv("TRANSN_KNN_BENCH_OUT"); out != "" {
		doc, err := MeasureBench("pr10-trajectory", []int{1000, 10000, 25000}, 32, 10, 200, 64, Config{Seed: 17}, 17)
		if err != nil {
			t.Fatalf("MeasureBench: %v", err)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		data = append(data, '\n')
		if err := ValidateBench(data); err != nil {
			t.Fatalf("generated doc fails validation: %v", err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatalf("write %s: %v", out, err)
		}
		t.Logf("wrote %s", out)
		return
	}
	path := filepath.Join("..", "..", "BENCH_trajectory", "BENCH_knn_pr10.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("committed knn bench artifact missing: %v", err)
	}
	if err := ValidateBench(data); err != nil {
		t.Fatalf("committed knn bench artifact invalid: %v", err)
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	improvedAt10k := false
	for _, e := range doc.Entries {
		if e.Nodes >= 10000 && e.HNSWP99Micros < e.BruteP99Micros {
			improvedAt10k = true
		}
	}
	if !improvedAt10k {
		t.Fatal("committed artifact shows no knn p99 improvement at >= 10k nodes")
	}
}

func TestValidateBenchRejectsBadDocs(t *testing.T) {
	good := BenchDoc{
		Schema: BenchSchema, Name: "x", Dim: 8, K: 10, Ef: 64, Queries: 10,
		M: 16, EfConstruction: 200,
		Entries: []BenchEntry{{Nodes: 100, BruteP50Micros: 1, BruteP99Micros: 2, HNSWP50Micros: 1, HNSWP99Micros: 1.5, RecallAtK: 1, SpeedupP99: 1.3}},
	}
	enc := func(d BenchDoc) []byte {
		b, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	if err := ValidateBench(enc(good)); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	bad := good
	bad.Schema = "nope"
	if err := ValidateBench(enc(bad)); err == nil {
		t.Error("wrong schema accepted")
	}
	bad = good
	bad.Entries = nil
	if err := ValidateBench(enc(bad)); err == nil {
		t.Error("empty entries accepted")
	}
	bad = good
	bad.Entries = []BenchEntry{{Nodes: 100, RecallAtK: 1.5}}
	if err := ValidateBench(enc(bad)); err == nil {
		t.Error("out-of-range recall accepted")
	}
	if err := ValidateBench([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
