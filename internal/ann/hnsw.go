package ann

import (
	"fmt"
	"math"
	"sync"

	"transn/internal/mat"
	"transn/internal/rngstream"
)

// Default construction and search parameters, used wherever a Config
// field is left zero. They follow the HNSW paper's recommended ranges,
// sized for the dim≈100, N≤10^6 tables TransN serves.
const (
	DefaultM              = 16
	DefaultEfConstruction = 200
	DefaultEfSearch       = 64
	// MaxEf caps a caller-supplied ef so one request cannot turn a
	// search back into a full scan of a huge table.
	MaxEf = 4096
	// maxLevelCap bounds the level assignment; with mL = 1/ln(M) the
	// probability of exceeding it is below 2^-64 for any sane M.
	maxLevelCap = 30
	// levelStream namespaces the per-node level draws within the
	// snapshot's rngstream seed space.
	levelStream = 0x616e6e // "ann"
)

// Config holds HNSW build and search parameters. The zero value means
// "all defaults"; withDefaults resolves it.
type Config struct {
	// M is the target neighbor count per node on layers above 0;
	// layer 0 keeps up to 2M. Larger M improves recall and costs
	// memory and build time.
	M int
	// EfConstruction is the beam width used while inserting nodes.
	EfConstruction int
	// EfSearch is the default beam width for Search when the caller
	// passes ef <= 0.
	EfSearch int
	// Seed feeds rngstream.Derive for the per-node level draws. The
	// same (table, Config) always builds the same index.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.M <= 0 {
		c.M = DefaultM
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.EfConstruction < c.M {
		c.EfConstruction = c.M
	}
	if c.EfSearch <= 0 {
		c.EfSearch = DefaultEfSearch
	}
	return c
}

// Candidate is one search result: a row id of the indexed table and
// its cosine similarity to the query.
type Candidate struct {
	ID  int
	Sim float64
}

// Index is an immutable HNSW graph over the rows of a table. Build it
// once (or Decode a serialized one) and search from any number of
// goroutines; see the package doc for the full invariant set.
type Index struct {
	cfg    Config
	table  *mat.Dense
	norms  []float64
	levels []uint8
	// layers[l].adj[i] lists i's neighbors on layer l (nil above i's
	// level). Frozen after Build/Decode.
	layers   []layer
	entry    int32
	maxLevel int
	scratch  sync.Pool
}

type layer struct {
	adj [][]int32
}

// item orders candidates by (distance, id): ids break distance ties so
// every heap and sort below is a total deterministic order.
type item struct {
	dist float64
	id   int32
}

func lessItem(a, b item) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// Norms returns the L2 norm of every row of table, the form Build and
// Decode expect. Callers that already track norms (the serving
// snapshot does) can pass their own slice instead.
func Norms(table *mat.Dense) []float64 {
	norms := make([]float64, table.R)
	for i := range norms {
		norms[i] = mat.Norm2(table.Row(i))
	}
	return norms
}

// Build constructs an index over the rows of table. norms must hold
// the L2 norm of each row (see Norms); nil means "compute them here".
// The table and norms are retained and read, never written, so both
// may alias read-only mmap'd memory. Construction is deterministic:
// levels come from cfg.Seed and the row id alone, and insertion order
// is the row order.
func Build(table *mat.Dense, norms []float64, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if table == nil || table.R == 0 || table.C == 0 {
		return nil, fmt.Errorf("ann: empty table")
	}
	if table.R > math.MaxInt32 {
		return nil, fmt.Errorf("ann: table has %d rows; ids are int32", table.R)
	}
	if norms == nil {
		norms = Norms(table)
	}
	if len(norms) != table.R {
		return nil, fmt.Errorf("ann: %d norms for %d rows", len(norms), table.R)
	}
	ix := &Index{cfg: cfg, table: table, norms: norms, entry: -1}
	ix.levels = make([]uint8, table.R)
	mL := 1 / math.Log(float64(cfg.M))
	for i := range ix.levels {
		ix.levels[i] = drawLevel(cfg.Seed, int64(i), mL)
	}
	sc := newScratch(table.R)
	for i := 0; i < table.R; i++ {
		ix.insert(int32(i), sc)
	}
	ix.initPool()
	return ix, nil
}

// drawLevel maps a deterministic uniform draw for node id to an HNSW
// level via the standard floor(-ln(u)·mL) transform, capped so a
// pathological draw cannot blow up the layer array.
func drawLevel(seed, id int64, mL float64) uint8 {
	v := uint64(rngstream.Derive(seed, levelStream, id))
	// 53 high bits → uniform in (0,1]; the +1 keeps u strictly
	// positive so the log is finite.
	u := float64(v>>11+1) / float64(1<<53)
	l := int(-math.Log(u) * mL)
	if l > maxLevelCap {
		l = maxLevelCap
	}
	return uint8(l)
}

func (ix *Index) initPool() {
	n := ix.table.R
	ix.scratch.New = func() any { return newScratch(n) }
}

func (ix *Index) maxNeighbors(level int) int {
	if level == 0 {
		return 2 * ix.cfg.M
	}
	return ix.cfg.M
}

// dist is 1 − cosine similarity, with the same zero-norm convention as
// the serving layer's exact scan: a zero-norm side has similarity 0,
// i.e. distance 1 to everything.
func (ix *Index) dist(q []float64, qn float64, id int32) float64 {
	n := ix.norms[id]
	if qn == 0 || n == 0 {
		return 1
	}
	return 1 - mat.Dot(q, ix.table.Row(int(id)))/(qn*n)
}

func (ix *Index) insert(id int32, sc *scratch) {
	level := int(ix.levels[id])
	for len(ix.layers) <= level {
		ix.layers = append(ix.layers, layer{adj: make([][]int32, ix.table.R)})
	}
	if ix.entry < 0 {
		ix.entry = id
		ix.maxLevel = level
		return
	}
	q := ix.table.Row(int(id))
	qn := ix.norms[id]
	eps := sc.eps[:0]
	eps = append(eps, ix.entry)
	for l := ix.maxLevel; l > level; l-- {
		w := ix.searchLayer(q, qn, eps, 1, l, sc)
		eps = append(eps[:0], w[0].id)
	}
	top := level
	if ix.maxLevel < top {
		top = ix.maxLevel
	}
	for l := top; l >= 0; l-- {
		w := ix.searchLayer(q, qn, eps, ix.cfg.EfConstruction, l, sc)
		adj := ix.layers[l].adj
		// Copy out of the shared scratch: shrink below re-selects into
		// the same sc.sel buffer the heuristic returned.
		adj[id] = append([]int32(nil), ix.selectNeighbors(w, ix.cfg.M, sc)...)
		limit := ix.maxNeighbors(l)
		for _, nb := range adj[id] {
			adj[nb] = append(adj[nb], id)
			if len(adj[nb]) > limit {
				adj[nb] = ix.shrink(nb, adj[nb], limit, sc)
			}
		}
		eps = eps[:0]
		for _, it := range w {
			eps = append(eps, it.id)
		}
		sc.eps = eps[:0]
	}
	if level > ix.maxLevel {
		ix.maxLevel = level
		ix.entry = id
	}
}

// selectNeighbors is the paper's heuristic (Alg. 4, no extensions): it
// walks candidates in (dist, id) order and keeps one only if it is
// closer to the query than to every neighbor already kept, which
// spreads links across clusters. It may return fewer than m.
func (ix *Index) selectNeighbors(w []item, m int, sc *scratch) []int32 {
	out := sc.sel[:0]
	for _, c := range w {
		if len(out) >= m {
			break
		}
		keep := true
		for _, s := range out {
			if ix.distBetween(c.id, s) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, c.id)
		}
	}
	sc.sel = out
	return out
}

func (ix *Index) distBetween(a, b int32) float64 {
	return ix.dist(ix.table.Row(int(a)), ix.norms[a], b)
}

// shrink re-selects nb's neighbor list after an insertion pushed it
// past limit, using the same heuristic as initial selection.
func (ix *Index) shrink(nb int32, adj []int32, limit int, sc *scratch) []int32 {
	cands := sc.shrink[:0]
	q := ix.table.Row(int(nb))
	qn := ix.norms[nb]
	for _, x := range adj {
		cands = append(cands, item{dist: ix.dist(q, qn, x), id: x})
	}
	sortItems(cands)
	sc.shrink = cands
	kept := ix.selectNeighbors(cands, limit, sc)
	return append(adj[:0], kept...)
}

// Search returns up to k candidates nearest q under cosine similarity,
// ordered by (similarity desc, id asc), along with the number of
// distance evaluations spent. qn is q's L2 norm; ef <= 0 means the
// index's configured EfSearch, and any ef is clamped to [k, MaxEf].
// The query row itself is returned like any other row — callers
// looking up a stored row filter it out.
func (ix *Index) Search(q []float64, qn float64, k, ef int) ([]Candidate, int, error) {
	if len(q) != ix.table.C {
		return nil, 0, fmt.Errorf("ann: query dim %d != table dim %d", len(q), ix.table.C)
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("ann: k must be positive, got %d", k)
	}
	if ef <= 0 {
		ef = ix.cfg.EfSearch
	}
	if ef < k {
		ef = k
	}
	if ef > MaxEf {
		ef = MaxEf
	}
	sc := ix.scratch.Get().(*scratch)
	sc.distEvals = 0
	eps := sc.eps[:0]
	eps = append(eps, ix.entry)
	for l := ix.maxLevel; l > 0; l-- {
		w := ix.searchLayer(q, qn, eps, 1, l, sc)
		eps = append(eps[:0], w[0].id)
	}
	w := ix.searchLayer(q, qn, eps, ef, 0, sc)
	sc.eps = eps[:0]
	if len(w) > k {
		w = w[:k]
	}
	out := make([]Candidate, len(w))
	for i, it := range w {
		out[i] = Candidate{ID: int(it.id), Sim: 1 - it.dist}
	}
	evals := sc.distEvals
	ix.scratch.Put(sc)
	return out, evals, nil
}

// searchLayer is the standard HNSW beam search on one layer: expand
// the closest unexpanded candidate until the closest is worse than the
// worst of ef results. Returns the results sorted by (dist, id) asc.
func (ix *Index) searchLayer(q []float64, qn float64, eps []int32, ef, l int, sc *scratch) []item {
	sc.epoch++
	if sc.epoch <= 0 { // wrapped: stale marks could collide
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	cands := sc.cands[:0]
	results := sc.results[:0]
	for _, ep := range eps {
		if sc.visited[ep] == sc.epoch {
			continue
		}
		sc.visited[ep] = sc.epoch
		it := item{dist: ix.dist(q, qn, ep), id: ep}
		sc.distEvals++
		cands = pushMin(cands, it)
		results = pushMax(results, it)
	}
	adj := ix.layers[l].adj
	for len(cands) > 0 {
		var c item
		cands, c = popMin(cands)
		if len(results) >= ef && lessItem(results[0], c) {
			break
		}
		for _, nb := range adj[c.id] {
			if sc.visited[nb] == sc.epoch {
				continue
			}
			sc.visited[nb] = sc.epoch
			it := item{dist: ix.dist(q, qn, nb), id: nb}
			sc.distEvals++
			if len(results) < ef || lessItem(it, results[0]) {
				cands = pushMin(cands, it)
				results = pushMax(results, it)
				if len(results) > ef {
					results, _ = popMax(results)
				}
			}
		}
	}
	out := append(sc.sorted[:0], results...)
	sortItems(out)
	sc.cands = cands[:0]
	sc.results = results[:0]
	sc.sorted = out
	return out
}

// scratch holds one search's working state; a sync.Pool recycles them
// so steady-state Search does not allocate per call.
type scratch struct {
	visited   []int32
	epoch     int32
	cands     []item // min-heap on (dist, id)
	results   []item // max-heap on (dist, id): worst kept result on top
	sorted    []item
	eps       []int32
	sel       []int32
	shrink    []item
	distEvals int
}

func newScratch(n int) *scratch {
	return &scratch{visited: make([]int32, n)}
}

func sortItems(s []item) {
	// Insertion-path siftdown-free sort would be overkill; a simple
	// heapsort keeps the package free of sort.Slice's comparator
	// allocation on hot paths.
	for i := len(s)/2 - 1; i >= 0; i-- {
		siftDownMax(s, i)
	}
	for end := len(s) - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftDownMax(s[:end], 0)
	}
}

func pushMin(h []item, it item) []item {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessItem(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func popMin(h []item) ([]item, item) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	siftDownMin(h, 0)
	return h, top
}

func siftDownMin(h []item, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && lessItem(h[l], h[m]) {
			m = l
		}
		if r < len(h) && lessItem(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func pushMax(h []item, it item) []item {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessItem(h[p], h[i]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	return h
}

func popMax(h []item) ([]item, item) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	siftDownMax(h, 0)
	return h, top
}

func siftDownMax(h []item, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && lessItem(h[m], h[l]) {
			m = l
		}
		if r < len(h) && lessItem(h[m], h[r]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Stats summarizes an index for inspection and logging.
type Stats struct {
	// Nodes is the number of indexed rows.
	Nodes int `json:"nodes"`
	// Dim is the embedding dimension.
	Dim int `json:"dim"`
	// M and EfConstruction echo the build configuration.
	M              int `json:"m"`
	EfConstruction int `json:"ef_construction"`
	// Seed is the level-draw seed the index was built from.
	Seed int64 `json:"seed"`
	// MaxLevel is the highest occupied layer.
	MaxLevel int `json:"max_level"`
	// Edges is the total directed edge count across all layers.
	Edges int `json:"edges"`
	// Entry is the entry-point node id.
	Entry int `json:"entry"`
}

// Stats returns the index summary.
func (ix *Index) Stats() Stats {
	st := Stats{
		Nodes:          ix.table.R,
		Dim:            ix.table.C,
		M:              ix.cfg.M,
		EfConstruction: ix.cfg.EfConstruction,
		Seed:           ix.cfg.Seed,
		MaxLevel:       ix.maxLevel,
		Entry:          int(ix.entry),
	}
	for _, l := range ix.layers {
		for _, a := range l.adj {
			st.Edges += len(a)
		}
	}
	return st
}
