package ann

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"transn/internal/mat"
	"transn/internal/rngstream"
)

// BenchSchema identifies the knn benchmark trajectory document (the
// BENCH_trajectory/BENCH_knn_pr10.json artifact and its CI twin),
// validated by `transn checkreport`.
const BenchSchema = "transn.bench.knn/v1"

// BenchDoc is the schema-stable knn benchmark document: brute-force vs
// HNSW latency and recall at several table sizes, under one fixed
// build configuration.
type BenchDoc struct {
	// Schema is always BenchSchema.
	Schema string `json:"schema"`
	// Name labels the run (e.g. "pr10-trajectory").
	Name string `json:"name"`
	// Dim, K, Ef, Queries describe the workload: embedding dimension,
	// neighbors requested, search beam width, and queries timed per
	// table size.
	Dim     int `json:"dim"`
	K       int `json:"k"`
	Ef      int `json:"ef"`
	Queries int `json:"queries"`
	// M, EfConstruction, Seed echo the index build configuration.
	M              int   `json:"m"`
	EfConstruction int   `json:"ef_construction"`
	Seed           int64 `json:"seed"`
	// Entries holds one measurement per table size, ascending.
	Entries []BenchEntry `json:"entries"`
}

// BenchEntry is one table-size measurement in a BenchDoc.
type BenchEntry struct {
	// Nodes is the table size (row count).
	Nodes int `json:"nodes"`
	// BuildMillis is the HNSW construction time.
	BuildMillis float64 `json:"build_millis"`
	// BruteP50Micros / BruteP99Micros are per-query brute-force scan
	// latencies; HNSWP50Micros / HNSWP99Micros the indexed ones.
	BruteP50Micros float64 `json:"brute_p50_micros"`
	BruteP99Micros float64 `json:"brute_p99_micros"`
	HNSWP50Micros  float64 `json:"hnsw_p50_micros"`
	HNSWP99Micros  float64 `json:"hnsw_p99_micros"`
	// RecallAtK is |HNSW top-k ∩ brute top-k| / k averaged over the
	// timed queries.
	RecallAtK float64 `json:"recall_at_k"`
	// SpeedupP99 is BruteP99Micros / HNSWP99Micros.
	SpeedupP99 float64 `json:"speedup_p99"`
}

// ValidateBench checks a serialized BenchDoc for schema and structural
// sanity; it is the `transn checkreport` hook for this document kind.
func ValidateBench(data []byte) error {
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("knn bench: %w", err)
	}
	if doc.Schema != BenchSchema {
		return fmt.Errorf("knn bench: schema %q, want %q", doc.Schema, BenchSchema)
	}
	if doc.Name == "" {
		return fmt.Errorf("knn bench: missing name")
	}
	if doc.Dim <= 0 || doc.K <= 0 || doc.Queries <= 0 {
		return fmt.Errorf("knn bench: dim/k/queries must be positive")
	}
	if len(doc.Entries) == 0 {
		return fmt.Errorf("knn bench: no entries")
	}
	prev := 0
	for i, e := range doc.Entries {
		if e.Nodes <= prev {
			return fmt.Errorf("knn bench: entry %d nodes %d not ascending", i, e.Nodes)
		}
		prev = e.Nodes
		for _, v := range []float64{e.BuildMillis, e.BruteP50Micros, e.BruteP99Micros, e.HNSWP50Micros, e.HNSWP99Micros, e.SpeedupP99} {
			if math.IsNaN(v) || v < 0 {
				return fmt.Errorf("knn bench: entry %d has a negative or NaN measurement", i)
			}
		}
		if e.BruteP99Micros < e.BruteP50Micros || e.HNSWP99Micros < e.HNSWP50Micros {
			return fmt.Errorf("knn bench: entry %d p99 below p50", i)
		}
		if e.RecallAtK < 0 || e.RecallAtK > 1 || math.IsNaN(e.RecallAtK) {
			return fmt.Errorf("knn bench: entry %d recall %v outside [0,1]", i, e.RecallAtK)
		}
	}
	return nil
}

// RandomTable generates a unit-free Gaussian table for benchmarks and
// tests, deterministically from seed.
func RandomTable(n, dim int, seed int64) *mat.Dense {
	rng := rngstream.New(seed, int64(n), int64(dim))
	t := mat.New(n, dim)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// BruteKNN is the exact reference: the k rows most cosine-similar to
// q, ordered by (similarity desc, id asc) — the same order Search
// approximates. It shares the zero-norm convention with the index.
func BruteKNN(table *mat.Dense, norms []float64, q []float64, qn float64, k int) []Candidate {
	res := make([]Candidate, 0, table.R)
	for i := 0; i < table.R; i++ {
		sim := 0.0
		if qn != 0 && norms[i] != 0 {
			sim = mat.Dot(q, table.Row(i)) / (qn * norms[i])
		}
		res = append(res, Candidate{ID: i, Sim: sim})
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Sim != res[b].Sim {
			return res[a].Sim > res[b].Sim
		}
		return res[a].ID < res[b].ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// MeasureBench builds indexes over random tables of the given sizes
// and times brute-force vs HNSW top-k per query. Latencies are
// wall-clock and machine-dependent; everything else (tables, queries,
// recall) is deterministic in seed.
func MeasureBench(name string, sizes []int, dim, k, queries, ef int, cfg Config, seed int64) (*BenchDoc, error) {
	cfg = cfg.withDefaults()
	doc := &BenchDoc{
		Schema: BenchSchema, Name: name,
		Dim: dim, K: k, Ef: ef, Queries: queries,
		M: cfg.M, EfConstruction: cfg.EfConstruction, Seed: cfg.Seed,
	}
	if ef <= 0 {
		doc.Ef = cfg.EfSearch
	}
	for _, n := range sizes {
		table := RandomTable(n, dim, seed)
		norms := Norms(table)
		start := time.Now()
		ix, err := Build(table, norms, cfg)
		if err != nil {
			return nil, err
		}
		e := BenchEntry{Nodes: n, BuildMillis: float64(time.Since(start).Microseconds()) / 1e3}
		// Queries are table rows (the serving access pattern: /v1/knn
		// looks up a stored node), cycled deterministically.
		qrng := rngstream.New(seed, 0x71, int64(n))
		bruteTimes := make([]float64, 0, queries)
		annTimes := make([]float64, 0, queries)
		recall := 0.0
		for qi := 0; qi < queries; qi++ {
			row := int(qrng.Int63n(int64(n)))
			q := table.Row(row)
			qn := norms[row]
			t0 := time.Now()
			exact := BruteKNN(table, norms, q, qn, k)
			bruteTimes = append(bruteTimes, float64(time.Since(t0).Nanoseconds())/1e3)
			t1 := time.Now()
			approx, _, err := ix.Search(q, qn, k, ef)
			if err != nil {
				return nil, err
			}
			annTimes = append(annTimes, float64(time.Since(t1).Nanoseconds())/1e3)
			recall += overlap(exact, approx) / float64(k)
		}
		e.RecallAtK = recall / float64(queries)
		e.BruteP50Micros = percentile(bruteTimes, 0.50)
		e.BruteP99Micros = percentile(bruteTimes, 0.99)
		e.HNSWP50Micros = percentile(annTimes, 0.50)
		e.HNSWP99Micros = percentile(annTimes, 0.99)
		if e.HNSWP99Micros > 0 {
			e.SpeedupP99 = e.BruteP99Micros / e.HNSWP99Micros
		}
		doc.Entries = append(doc.Entries, e)
	}
	return doc, nil
}

func overlap(exact, approx []Candidate) float64 {
	hits := 0.0
	for _, a := range approx {
		for _, e := range exact {
			if a.ID == e.ID {
				hits++
				break
			}
		}
	}
	return hits
}

// percentile returns the p-quantile (0..1) of samples by
// nearest-rank on a sorted copy; empty input yields 0.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(p * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
