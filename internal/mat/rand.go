package mat

import (
	"math"
	"math/rand"
)

// RandN fills a new r-by-c matrix with N(0, std²) entries drawn from rng.
func RandN(r, c int, std float64, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform fills a new r-by-c matrix with Uniform(lo, hi) entries.
func RandUniform(r, c int, lo, hi float64, rng *rand.Rand) *Dense {
	m := New(r, c)
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*rng.Float64()
	}
	return m
}

// XavierInit returns an r-by-c matrix initialized with the Glorot/Xavier
// uniform scheme: Uniform(-s, s) with s = sqrt(6/(r+c)). This is the
// standard initialization for the translator feed-forward weights.
func XavierInit(r, c int, rng *rand.Rand) *Dense {
	s := math.Sqrt(6 / float64(r+c))
	return RandUniform(r, c, -s, s, rng)
}

// EmbeddingInit returns an r-by-c matrix initialized Uniform(-0.5/c, 0.5/c),
// the word2vec-style initialization used for node embedding tables.
func EmbeddingInit(r, c int, rng *rand.Rand) *Dense {
	s := 0.5 / float64(c)
	return RandUniform(r, c, -s, s, rng)
}
