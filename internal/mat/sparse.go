package mat

import "fmt"

// Sparse is an immutable CSR matrix used for graph propagation (R-GCN's
// normalized adjacency). Only the products needed by the models are
// provided: S·X and Sᵀ·X for dense X.
type Sparse struct {
	R, C   int
	RowPtr []int
	Col    []int32
	Val    []float64
}

// NewSparse builds a CSR matrix from per-row (col, val) entries. rows
// must have length r; entries may be in any column order.
func NewSparse(r, c int, rows [][]SparseEntry) *Sparse {
	s := &Sparse{R: r, C: c, RowPtr: make([]int, r+1)}
	for i, es := range rows {
		s.RowPtr[i+1] = s.RowPtr[i] + len(es)
	}
	n := s.RowPtr[r]
	s.Col = make([]int32, 0, n)
	s.Val = make([]float64, 0, n)
	for _, es := range rows {
		for _, e := range es {
			if e.Col < 0 || e.Col >= c {
				panic(fmt.Sprintf("mat: sparse column %d out of range", e.Col))
			}
			s.Col = append(s.Col, int32(e.Col))
			s.Val = append(s.Val, e.Val)
		}
	}
	return s
}

// SparseEntry is one (column, value) pair of a sparse row.
type SparseEntry struct {
	Col int
	Val float64
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.Col) }

// Mul stores S·x into dst (allocating when nil) and returns dst.
// x must be S.C×k; dst is S.R×k.
func (s *Sparse) Mul(dst, x *Dense) *Dense {
	if x.R != s.C {
		panic(fmt.Sprintf("mat: Sparse.Mul inner dims %d vs %d", s.C, x.R))
	}
	if dst == nil {
		dst = New(s.R, x.C)
	}
	if dst.R != s.R || dst.C != x.C {
		panic("mat: Sparse.Mul dst shape")
	}
	dst.Zero()
	for i := 0; i < s.R; i++ {
		drow := dst.Row(i)
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			v := s.Val[p]
			xrow := x.Row(int(s.Col[p]))
			for j := range drow {
				drow[j] += v * xrow[j]
			}
		}
	}
	return dst
}

// TMul stores Sᵀ·x into dst (allocating when nil) and returns dst.
// x must be S.R×k; dst is S.C×k.
func (s *Sparse) TMul(dst, x *Dense) *Dense {
	if x.R != s.R {
		panic(fmt.Sprintf("mat: Sparse.TMul inner dims %d vs %d", s.R, x.R))
	}
	if dst == nil {
		dst = New(s.C, x.C)
	}
	if dst.R != s.C || dst.C != x.C {
		panic("mat: Sparse.TMul dst shape")
	}
	dst.Zero()
	for i := 0; i < s.R; i++ {
		xrow := x.Row(i)
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			v := s.Val[p]
			drow := dst.Row(int(s.Col[p]))
			for j := range xrow {
				drow[j] += v * xrow[j]
			}
		}
	}
	return dst
}

// ToDense expands s, for tests.
func (s *Sparse) ToDense() *Dense {
	d := New(s.R, s.C)
	for i := 0; i < s.R; i++ {
		for p := s.RowPtr[i]; p < s.RowPtr[i+1]; p++ {
			d.Set(i, int(s.Col[p]), d.At(i, int(s.Col[p]))+s.Val[p])
		}
	}
	return d
}
