package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSparse() *Sparse {
	return NewSparse(2, 3, [][]SparseEntry{
		{{Col: 0, Val: 2}, {Col: 2, Val: -1}},
		{{Col: 1, Val: 3}},
	})
}

func TestSparseToDense(t *testing.T) {
	s := buildSparse()
	want := FromSlice(2, 3, []float64{2, 0, -1, 0, 3, 0})
	if !s.ToDense().Equal(want, 0) {
		t.Fatalf("ToDense = %v", s.ToDense())
	}
	if s.NNZ() != 3 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
}

func TestSparseMulShapes(t *testing.T) {
	s := buildSparse()
	x := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	got := s.Mul(nil, x)
	want := MatMul(nil, s.ToDense(), x)
	if !got.Equal(want, 1e-12) {
		t.Fatal("Mul mismatch vs dense")
	}
	y := FromSlice(2, 2, []float64{1, 2, 3, 4})
	gotT := s.TMul(nil, y)
	wantT := MatMul(nil, Transpose(nil, s.ToDense()), y)
	if !gotT.Equal(wantT, 1e-12) {
		t.Fatal("TMul mismatch vs dense")
	}
}

func TestSparsePanics(t *testing.T) {
	s := buildSparse()
	for name, fn := range map[string]func(){
		"Mul wrong inner":  func() { s.Mul(nil, New(2, 2)) },
		"TMul wrong inner": func() { s.TMul(nil, New(3, 2)) },
		"Mul wrong dst":    func() { s.Mul(New(1, 1), New(3, 2)) },
		"TMul wrong dst":   func() { s.TMul(New(1, 1), New(2, 2)) },
		"bad column":       func() { NewSparse(1, 2, [][]SparseEntry{{{Col: 5, Val: 1}}}) },
		"negative column":  func() { NewSparse(1, 2, [][]SparseEntry{{{Col: -1, Val: 1}}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Sparse.Mul always agrees with the dense product on random
// sparse matrices.
func TestSparseMulProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 2+rng.Intn(6), 2+rng.Intn(6)
		rows := make([][]SparseEntry, r)
		for i := range rows {
			k := rng.Intn(c)
			for j := 0; j < k; j++ {
				rows[i] = append(rows[i], SparseEntry{Col: rng.Intn(c), Val: rng.NormFloat64()})
			}
		}
		s := NewSparse(r, c, rows)
		x := RandN(c, 3, 1, rng)
		return s.Mul(nil, x).Equal(MatMul(nil, s.ToDense(), x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
