package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.R != 3 || m.C != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.R, m.C, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v", got)
	}
	m.SetRow(0, []float64{1, 2, 3})
	if m.At(0, 1) != 2 {
		t.Fatalf("SetRow failed: %v", m.Row(0))
	}
	// Row is a view: mutating it mutates the matrix.
	m.Row(0)[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("Row must alias backing storage")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	n := m.Clone()
	n.Set(0, 0, 5)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestAddSubElemMulScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := Add(nil, a, b); !got.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(nil, b, a); !got.Equal(FromSlice(2, 2, []float64{4, 4, 4, 4}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := ElemMul(nil, a, b); !got.Equal(FromSlice(2, 2, []float64{5, 12, 21, 32}), 0) {
		t.Fatalf("ElemMul = %v", got)
	}
	if got := Scale(nil, 2, a); !got.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	dst := a.Clone()
	AddScaled(dst, 10, b)
	if !dst.Equal(FromSlice(2, 2, []float64{51, 62, 73, 84}), 0) {
		t.Fatalf("AddScaled = %v", dst)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if got := MatMul(nil, a, b); !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v want %v", got, want)
	}
}

func TestMatMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(nil, New(2, 3), New(2, 2))
}

func TestMatMulTAndTMatMulAgreeWithTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandN(4, 3, 1, rng)
	b := RandN(5, 3, 1, rng)
	// a·bᵀ via explicit transpose.
	bt := Transpose(nil, b)
	want := MatMul(nil, a, bt)
	if got := MatMulT(nil, a, b); !got.Equal(want, 1e-12) {
		t.Fatalf("MatMulT disagrees with MatMul(a, bᵀ)")
	}
	// aᵀ·b via explicit transpose.
	c := RandN(4, 6, 1, rng)
	at := Transpose(nil, a)
	want2 := MatMul(nil, at, c)
	if got := TMatMul(nil, a, c); !got.Equal(want2, 1e-12) {
		t.Fatalf("TMatMul disagrees with MatMul(aᵀ, b)")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandN(3, 7, 1, rng)
	att := Transpose(nil, Transpose(nil, a))
	if !att.Equal(a, 0) {
		t.Fatal("transpose twice must be identity")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandN(5, 8, 3, rng)
	s := SoftmaxRows(nil, a)
	for i := 0; i < s.R; i++ {
		var sum float64
		for _, v := range s.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxRowsStableForLargeValues(t *testing.T) {
	a := FromSlice(1, 3, []float64{1000, 1001, 1002})
	s := SoftmaxRows(nil, a)
	for _, v := range s.Row(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflow: %v", s.Row(0))
		}
	}
	if s.At(0, 2) <= s.At(0, 1) || s.At(0, 1) <= s.At(0, 0) {
		t.Fatalf("softmax not monotone: %v", s.Row(0))
	}
}

func TestRelu(t *testing.T) {
	a := FromSlice(1, 4, []float64{-1, 0, 2, -3})
	got := Relu(nil, a)
	want := FromSlice(1, 4, []float64{0, 0, 2, 0})
	if !got.Equal(want, 0) {
		t.Fatalf("Relu = %v", got)
	}
}

func TestDotNormCosine(t *testing.T) {
	x := []float64{3, 4}
	y := []float64{4, 3}
	if Dot(x, y) != 24 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if got := CosineSim(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CosineSim(x,x) = %v", got)
	}
	if got := CosineSim(x, []float64{0, 0}); got != 0 {
		t.Fatalf("CosineSim with zero vector = %v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
}

func TestSumMaxAbsFrobenius(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -2, 3, -4})
	if m.Sum() != -2 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if got := m.FrobeniusNorm(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
}

// Property: (A·B)·C == A·(B·C) for random matrices.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandN(3, 4, 1, r)
		b := RandN(4, 5, 1, r)
		c := RandN(5, 2, 1, r)
		ab := MatMul(nil, a, b)
		bc := MatMul(nil, b, c)
		left := MatMul(nil, ab, c)
		right := MatMul(nil, a, bc)
		return left.Equal(right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(a, a) is zero.
func TestAddSubProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandN(4, 4, 1, r)
		b := RandN(4, 4, 1, r)
		if !Add(nil, a, b).Equal(Add(nil, b, a), 0) {
			return false
		}
		z := Sub(nil, a, a)
		return z.MaxAbs() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := XavierInit(10, 20, rng)
	bound := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("Xavier value %v outside ±%v", v, bound)
		}
	}
}

func TestEmbeddingInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := EmbeddingInit(10, 8, rng)
	for _, v := range m.Data {
		if v < -0.5/8 || v > 0.5/8 {
			t.Fatalf("embedding init value %v outside bounds", v)
		}
	}
}

func TestRandNDeterministic(t *testing.T) {
	a := RandN(3, 3, 1, rand.New(rand.NewSource(42)))
	b := RandN(3, 3, 1, rand.New(rand.NewSource(42)))
	if !a.Equal(b, 0) {
		t.Fatal("RandN with same seed must be identical")
	}
}

func TestStringTruncation(t *testing.T) {
	small := FromSlice(1, 2, []float64{1, 2})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(100, 100)
	if s := big.String(); len(s) > 40 {
		t.Fatalf("String for big matrix should truncate, got %q", s)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandN(64, 64, 1, rng)
	y := RandN(64, 64, 1, rng)
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, y)
	}
}

// Property: (A·B)ᵀ equals Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandN(3, 5, 1, r)
		b := RandN(5, 4, 1, r)
		left := Transpose(nil, MatMul(nil, a, b))
		right := MatMul(nil, Transpose(nil, b), Transpose(nil, a))
		return left.Equal(right, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax rows are invariant to per-row constant shifts.
func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := RandN(4, 6, 2, r)
		shifted := a.Clone()
		for i := 0; i < shifted.R; i++ {
			c := r.NormFloat64() * 10
			row := shifted.Row(i)
			for j := range row {
				row[j] += c
			}
		}
		return SoftmaxRows(nil, a).Equal(SoftmaxRows(nil, shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
