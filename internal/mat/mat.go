// Package mat provides a dense, row-major float64 matrix and the small set
// of linear-algebra kernels the rest of the repository needs. It is
// deliberately BLAS-free: everything is plain Go over a single contiguous
// backing slice so the code runs anywhere the standard library does.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major matrix with R rows and C columns. Element (i, j)
// lives at Data[i*C+j]. The zero value is an empty 0x0 matrix.
type Dense struct {
	R, C int
	Data []float64
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{R: r, C: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (length must be r*c) in a Dense without copying.
func FromSlice(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Dense{R: r, C: c, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// SetRow copies v into row i. len(v) must equal m.C.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.C {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.C))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and n have identical dimensions.
func (m *Dense) SameShape(n *Dense) bool { return m.R == n.R && m.C == n.C }

func mustSameShape(op string, a, b *Dense) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}

// Add stores a+b into dst (allocating when dst is nil) and returns dst.
func Add(dst, a, b *Dense) *Dense {
	mustSameShape("Add", a, b)
	if dst == nil {
		dst = New(a.R, a.C)
	}
	mustSameShape("Add dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub stores a-b into dst (allocating when dst is nil) and returns dst.
func Sub(dst, a, b *Dense) *Dense {
	mustSameShape("Sub", a, b)
	if dst == nil {
		dst = New(a.R, a.C)
	}
	mustSameShape("Sub dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// ElemMul stores the Hadamard product a⊙b into dst and returns dst.
func ElemMul(dst, a, b *Dense) *Dense {
	mustSameShape("ElemMul", a, b)
	if dst == nil {
		dst = New(a.R, a.C)
	}
	mustSameShape("ElemMul dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale stores s*a into dst and returns dst.
func Scale(dst *Dense, s float64, a *Dense) *Dense {
	if dst == nil {
		dst = New(a.R, a.C)
	}
	mustSameShape("Scale dst", dst, a)
	for i := range a.Data {
		dst.Data[i] = s * a.Data[i]
	}
	return dst
}

// AddScaled performs dst += s*a in place (axpy) and returns dst.
func AddScaled(dst *Dense, s float64, a *Dense) *Dense {
	mustSameShape("AddScaled", dst, a)
	for i := range a.Data {
		dst.Data[i] += s * a.Data[i]
	}
	return dst
}

// MatMul stores a·b into dst (allocating when dst is nil) and returns dst.
// a is r-by-k, b is k-by-c, dst is r-by-c. dst must not alias a or b.
func MatMul(dst, a, b *Dense) *Dense {
	if a.C != b.R {
		panic(fmt.Sprintf("mat: MatMul inner dims %d vs %d", a.C, b.R))
	}
	if dst == nil {
		dst = New(a.R, b.C)
	}
	if dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("mat: MatMul dst %dx%d want %dx%d", dst.R, dst.C, a.R, b.C))
	}
	dst.Zero()
	// ikj loop order: streams over b and dst rows for cache friendliness.
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k := 0; k < a.C; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range drow {
				drow[j] += aik * brow[j]
			}
		}
	}
	return dst
}

// MatMulT stores a·bᵀ into dst and returns dst. a is r-by-k, b is c-by-k.
func MatMulT(dst, a, b *Dense) *Dense {
	if a.C != b.C {
		panic(fmt.Sprintf("mat: MatMulT inner dims %d vs %d", a.C, b.C))
	}
	if dst == nil {
		dst = New(a.R, b.R)
	}
	if dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("mat: MatMulT dst %dx%d want %dx%d", dst.R, dst.C, a.R, b.R))
	}
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.R; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			drow[j] = s
		}
	}
	return dst
}

// TMatMul stores aᵀ·b into dst and returns dst. a is k-by-r, b is k-by-c.
func TMatMul(dst, a, b *Dense) *Dense {
	if a.R != b.R {
		panic(fmt.Sprintf("mat: TMatMul inner dims %d vs %d", a.R, b.R))
	}
	if dst == nil {
		dst = New(a.C, b.C)
	}
	if dst.R != a.C || dst.C != b.C {
		panic(fmt.Sprintf("mat: TMatMul dst %dx%d want %dx%d", dst.R, dst.C, a.C, b.C))
	}
	dst.Zero()
	for k := 0; k < a.R; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aki := range arow {
			if aki == 0 {
				continue
			}
			drow := dst.Row(i)
			for j := range brow {
				drow[j] += aki * brow[j]
			}
		}
	}
	return dst
}

// Transpose stores aᵀ into dst and returns dst. dst must not alias a.
func Transpose(dst, a *Dense) *Dense {
	if dst == nil {
		dst = New(a.C, a.R)
	}
	if dst.R != a.C || dst.C != a.R {
		panic(fmt.Sprintf("mat: Transpose dst %dx%d want %dx%d", dst.R, dst.C, a.C, a.R))
	}
	for i := 0; i < a.R; i++ {
		for j := 0; j < a.C; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
	return dst
}

// SoftmaxRows stores the row-wise softmax of a into dst and returns dst.
// Each row is shifted by its maximum for numerical stability.
func SoftmaxRows(dst, a *Dense) *Dense {
	if dst == nil {
		dst = New(a.R, a.C)
	}
	mustSameShape("SoftmaxRows dst", dst, a)
	for i := 0; i < a.R; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		maxv := math.Inf(-1)
		for _, v := range arow {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for j, v := range arow {
			e := math.Exp(v - maxv)
			drow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range drow {
			drow[j] *= inv
		}
	}
	return dst
}

// Relu stores max(0, a) elementwise into dst and returns dst.
func Relu(dst, a *Dense) *Dense {
	if dst == nil {
		dst = New(a.R, a.C)
	}
	mustSameShape("Relu dst", dst, a)
	for i, v := range a.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
	return dst
}

// Dot returns the inner product of vectors x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// CosineSim returns the cosine similarity of x and y, or 0 when either is
// the zero vector.
func CosineSim(x, y []float64) float64 {
	nx, ny := Norm2(x), Norm2(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 { return Norm2(m.Data) }

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Dense) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// Equal reports whether m and n have the same shape and all elements within
// tol of each other.
func (m *Dense) Equal(n *Dense, tol float64) bool {
	if !m.SameShape(n) {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-n.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a compact human-readable form, truncating large matrices.
func (m *Dense) String() string {
	const maxShow = 6
	s := fmt.Sprintf("Dense %dx%d", m.R, m.C)
	if m.R <= maxShow && m.C <= maxShow {
		s += " ["
		for i := 0; i < m.R; i++ {
			if i > 0 {
				s += "; "
			}
			for j := 0; j < m.C; j++ {
				if j > 0 {
					s += " "
				}
				s += fmt.Sprintf("%.4g", m.At(i, j))
			}
		}
		s += "]"
	}
	return s
}
