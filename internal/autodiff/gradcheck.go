package autodiff

import (
	"math"

	"transn/internal/mat"
)

// GradCheck compares the analytic gradient of loss(params) with a central
// finite-difference estimate and returns the largest relative error seen.
//
// lossFn must rebuild the graph from scratch on a fresh tape each call,
// run Backward, and return the scalar loss tensor together with the
// tape's Param tensors for the supplied matrices (same order). params are
// perturbed in place and restored.
func GradCheck(params []*mat.Dense, lossFn func() (*Tensor, []*Tensor), eps float64) float64 {
	// Analytic pass.
	_, pts := lossFn()
	if len(pts) != len(params) {
		panic("autodiff: GradCheck param count mismatch")
	}
	analytic := make([]*mat.Dense, len(params))
	for i, pt := range pts {
		if pt.Grad != nil {
			analytic[i] = pt.Grad.Clone()
		} else {
			analytic[i] = mat.New(params[i].R, params[i].C)
		}
	}

	var worst float64
	for pi, p := range params {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + eps
			lp, _ := lossFn()
			fplus := lp.Value.At(0, 0)
			p.Data[i] = orig - eps
			lm, _ := lossFn()
			fminus := lm.Value.At(0, 0)
			p.Data[i] = orig
			numeric := (fplus - fminus) / (2 * eps)
			a := analytic[pi].Data[i]
			denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
			relErr := math.Abs(a-numeric) / denom
			if relErr > worst {
				worst = relErr
			}
		}
	}
	return worst
}
