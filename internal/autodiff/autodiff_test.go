package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"transn/internal/mat"
)

const gradTol = 1e-5

// checkOp grad-checks a scalar loss built from nParams random matrices.
func checkOp(t *testing.T, name string, shapes [][2]int, build func(tp *Tape, params []*Tensor) *Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	params := make([]*mat.Dense, len(shapes))
	for i, s := range shapes {
		params[i] = mat.RandN(s[0], s[1], 0.5, rng)
	}
	lossFn := func() (*Tensor, []*Tensor) {
		tp := NewTape()
		pts := make([]*Tensor, len(params))
		for i, p := range params {
			pts[i] = tp.Param(p)
		}
		loss := build(tp, pts)
		tp.Backward(loss)
		return loss, pts
	}
	if worst := GradCheck(params, lossFn, 1e-6); worst > gradTol {
		t.Fatalf("%s: worst relative gradient error %g > %g", name, worst, gradTol)
	}
}

func TestGradMatMul(t *testing.T) {
	checkOp(t, "MatMul", [][2]int{{3, 4}, {4, 2}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.MatMul(p[0], p[1]))
	})
}

func TestGradMatMulT(t *testing.T) {
	checkOp(t, "MatMulT", [][2]int{{3, 4}, {5, 4}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.MatMulT(p[0], p[1]))
	})
}

func TestGradAddSub(t *testing.T) {
	checkOp(t, "Add/Sub", [][2]int{{3, 3}, {3, 3}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.Sub(tp.Add(p[0], p[1]), p[1])))
	})
}

func TestGradElemMul(t *testing.T) {
	checkOp(t, "ElemMul", [][2]int{{2, 5}, {2, 5}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.ElemMul(p[0], p[1]))
	})
}

func TestGradScale(t *testing.T) {
	checkOp(t, "Scale", [][2]int{{4, 4}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.Scale(2.5, p[0])))
	})
}

func TestGradAddColBroadcast(t *testing.T) {
	checkOp(t, "AddColBroadcast", [][2]int{{3, 5}, {3, 1}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.AddColBroadcast(p[0], p[1])))
	})
}

func TestGradAddRowBroadcast(t *testing.T) {
	checkOp(t, "AddRowBroadcast", [][2]int{{3, 5}, {1, 5}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.AddRowBroadcast(p[0], p[1])))
	})
}

func TestGradRelu(t *testing.T) {
	checkOp(t, "Relu", [][2]int{{4, 6}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Relu(p[0]))
	})
}

func TestGradSigmoid(t *testing.T) {
	checkOp(t, "Sigmoid", [][2]int{{3, 3}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Sigmoid(p[0]))
	})
}

func TestGradTanh(t *testing.T) {
	checkOp(t, "Tanh", [][2]int{{3, 3}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Tanh(p[0]))
	})
}

func TestGradSoftmaxRows(t *testing.T) {
	checkOp(t, "SoftmaxRows", [][2]int{{4, 5}, {4, 5}}, func(tp *Tape, p []*Tensor) *Tensor {
		// Weighted sum so the gradient is non-uniform across the row.
		return tp.MeanAll(tp.ElemMul(tp.SoftmaxRows(p[0]), p[1]))
	})
}

func TestGradMSE(t *testing.T) {
	checkOp(t, "MSE", [][2]int{{3, 4}, {3, 4}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MSE(p[0], p[1])
	})
}

// TestGradEncoderStack checks the exact composition the paper's translator
// uses: F(S(F(S(A)))) with S(A)=softmax(AAᵀ/√d)·A and F(A)=relu(W·A+b),
// reduced by MSE against a constant target (Eq. 8–11).
func TestGradEncoderStack(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const pathLen, d = 4, 3
	target := mat.RandN(pathLen, d, 0.5, rng)
	shapes := [][2]int{
		{pathLen, d},                     // A: input embeddings
		{pathLen, pathLen}, {pathLen, 1}, // W1, b1
		{pathLen, pathLen}, {pathLen, 1}, // W2, b2
	}
	checkOpWithTarget(t, "EncoderStack", shapes, target, func(tp *Tape, p []*Tensor, tgt *Tensor) *Tensor {
		x := p[0]
		for e := 0; e < 2; e++ {
			w, b := p[1+2*e], p[2+2*e]
			// Self-attention: softmax(X·Xᵀ/√d)·X.
			att := tp.SoftmaxRows(tp.Scale(1/math.Sqrt(d), tp.MatMulT(x, x)))
			x = tp.MatMul(att, x)
			// Feed-forward: relu(W·X + b) with column-broadcast bias.
			x = tp.Relu(tp.AddColBroadcast(tp.MatMul(w, x), b))
		}
		return tp.MSE(x, tgt)
	})
}

func checkOpWithTarget(t *testing.T, name string, shapes [][2]int, target *mat.Dense, build func(tp *Tape, params []*Tensor, tgt *Tensor) *Tensor) {
	t.Helper()
	rng := rand.New(rand.NewSource(13))
	params := make([]*mat.Dense, len(shapes))
	for i, s := range shapes {
		params[i] = mat.RandN(s[0], s[1], 0.5, rng)
	}
	lossFn := func() (*Tensor, []*Tensor) {
		tp := NewTape()
		pts := make([]*Tensor, len(params))
		for i, p := range params {
			pts[i] = tp.Param(p)
		}
		loss := build(tp, pts, tp.Constant(target))
		tp.Backward(loss)
		return loss, pts
	}
	if worst := GradCheck(params, lossFn, 1e-6); worst > gradTol {
		t.Fatalf("%s: worst relative gradient error %g > %g", name, worst, gradTol)
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	a := tp.Param(mat.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-scalar Backward")
		}
	}()
	tp.Backward(a)
}

func TestConstantGetsNoGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Constant(mat.FromSlice(1, 1, []float64{2}))
	p := tp.Param(mat.FromSlice(1, 1, []float64{3}))
	loss := tp.MeanAll(tp.ElemMul(c, p))
	tp.Backward(loss)
	if c.Grad != nil && c.Grad.MaxAbs() != 0 {
		t.Fatal("constant accumulated gradient")
	}
	if got := p.Grad.At(0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("param grad = %v, want 2", got)
	}
}

func TestGradAccumulationAcrossFanOut(t *testing.T) {
	// loss = mean(p+p) ⇒ dL/dp = 2/N elementwise.
	tp := NewTape()
	p := tp.Param(mat.FromSlice(2, 1, []float64{1, 2}))
	loss := tp.MeanAll(tp.Add(p, p))
	tp.Backward(loss)
	for i := range p.Grad.Data {
		if math.Abs(p.Grad.Data[i]-1) > 1e-12 { // 2/N with N=2
			t.Fatalf("fan-out grad = %v, want 1", p.Grad.Data[i])
		}
	}
}

func TestTapeResetReuse(t *testing.T) {
	tp := NewTape()
	p := mat.FromSlice(1, 1, []float64{1})
	for i := 0; i < 3; i++ {
		tp.Reset()
		pt := tp.Param(p)
		loss := tp.MeanAll(tp.Square(pt))
		tp.Backward(loss)
		if got := pt.Grad.At(0, 0); math.Abs(got-2) > 1e-12 {
			t.Fatalf("iteration %d grad = %v, want 2", i, got)
		}
	}
	if tp.Len() == 0 {
		t.Fatal("tape should contain nodes after use")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x-3)² from x=0.
	x := mat.FromSlice(1, 1, []float64{0})
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		tp := NewTape()
		px := tp.Param(x)
		c := tp.Constant(mat.FromSlice(1, 1, []float64{3}))
		loss := tp.MSE(px, c)
		tp.Backward(loss)
		opt.Step(x, px.Grad)
	}
	if got := x.At(0, 0); math.Abs(got-3) > 1e-3 {
		t.Fatalf("Adam converged to %v, want 3", got)
	}
}

func TestSGDStep(t *testing.T) {
	p := mat.FromSlice(1, 2, []float64{1, 1})
	g := mat.FromSlice(1, 2, []float64{2, -4})
	SGD(p, g, 0.5)
	want := mat.FromSlice(1, 2, []float64{0, 3})
	if !p.Equal(want, 1e-12) {
		t.Fatalf("SGD result %v want %v", p, want)
	}
}

func TestSigmoidNumericallyStable(t *testing.T) {
	tp := NewTape()
	a := tp.Constant(mat.FromSlice(1, 2, []float64{-1000, 1000}))
	s := tp.Sigmoid(a)
	if s.Value.At(0, 0) != 0 && math.IsNaN(s.Value.At(0, 0)) {
		t.Fatal("sigmoid(-1000) unstable")
	}
	if got := s.Value.At(0, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sigmoid(1000) = %v", got)
	}
}

func BenchmarkEncoderForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const pathLen, d = 16, 32
	a := mat.RandN(pathLen, d, 0.1, rng)
	w := mat.XavierInit(pathLen, pathLen, rng)
	bias := mat.New(pathLen, 1)
	target := mat.RandN(pathLen, d, 0.1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		x := tp.Param(a)
		att := tp.SoftmaxRows(tp.Scale(1/math.Sqrt(d), tp.MatMulT(x, x)))
		h := tp.MatMul(att, x)
		out := tp.Relu(tp.AddColBroadcast(tp.MatMul(tp.Param(w), h), tp.Param(bias)))
		loss := tp.MSE(out, tp.Constant(target))
		tp.Backward(loss)
	}
}
