// Package autodiff implements a small reverse-mode automatic
// differentiation engine over dense matrices. It exists because this
// repository is stdlib-only: the paper's translators (stacks of
// self-attention and feed-forward layers), R-GCN, and SimplE all need
// gradients, and there is no mature Go autodiff to lean on.
//
// Usage: create a Tape, lift parameters and constants into Tensors with
// Param/Constant, compose ops (MatMul, Relu, SoftmaxRows, ...), reduce to
// a scalar loss, then call Backward. Gradients accumulate into the Grad
// field of every Tensor with RequiresGrad set.
package autodiff

import (
	"fmt"
	"math"

	"transn/internal/mat"
)

// Tensor is a node in the computation graph. Value holds the forward
// result; Grad accumulates ∂loss/∂Value during Backward.
type Tensor struct {
	Value        *mat.Dense
	Grad         *mat.Dense
	RequiresGrad bool

	back func() // propagates t.Grad into the gradients of its inputs
}

// Tape records the computation graph in creation order so Backward can
// replay it in reverse. A Tape is single-use per forward pass; call Reset
// to reuse the node storage for the next pass.
type Tape struct {
	nodes []*Tensor
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Reset drops all recorded nodes, keeping the backing slice.
func (tp *Tape) Reset() { tp.nodes = tp.nodes[:0] }

// Len returns the number of recorded nodes.
func (tp *Tape) Len() int { return len(tp.nodes) }

func (tp *Tape) record(t *Tensor) *Tensor {
	tp.nodes = append(tp.nodes, t)
	return t
}

// Param lifts v into the graph as a trainable leaf. The returned tensor
// aliases v, so optimizer updates through Value are seen by later passes.
func (tp *Tape) Param(v *mat.Dense) *Tensor {
	return tp.record(&Tensor{
		Value:        v,
		Grad:         mat.New(v.R, v.C),
		RequiresGrad: true,
	})
}

// Constant lifts v into the graph as a non-trainable leaf.
func (tp *Tape) Constant(v *mat.Dense) *Tensor {
	return tp.record(&Tensor{Value: v})
}

// Backward runs reverse-mode accumulation from loss, which must be a 1x1
// tensor produced by this tape. The seed gradient is 1.
func (tp *Tape) Backward(loss *Tensor) {
	if loss.Value.R != 1 || loss.Value.C != 1 {
		panic(fmt.Sprintf("autodiff: Backward requires scalar loss, got %dx%d", loss.Value.R, loss.Value.C))
	}
	// Zero all intermediate grads, then seed.
	for _, n := range tp.nodes {
		if n.Grad != nil {
			n.Grad.Zero()
		}
	}
	if loss.Grad == nil {
		loss.Grad = mat.New(1, 1)
	}
	loss.Grad.Set(0, 0, 1)
	// Nodes are recorded in topological (creation) order; reverse it.
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil && n.Grad != nil {
			n.back()
		}
	}
}

// needGrad reports whether any input requires gradients.
func needGrad(ts ...*Tensor) bool {
	for _, t := range ts {
		if t.RequiresGrad {
			return true
		}
	}
	return false
}

// newResult allocates an op output, wiring RequiresGrad and Grad storage.
func (tp *Tape) newResult(v *mat.Dense, requires bool) *Tensor {
	t := &Tensor{Value: v, RequiresGrad: requires}
	if requires {
		t.Grad = mat.New(v.R, v.C)
	}
	return tp.record(t)
}

// ensureGrad lazily allocates grad storage for a leaf that participates in
// a differentiable op (covers constants feeding grad-requiring paths).
func ensureGrad(t *Tensor) {
	if t.RequiresGrad && t.Grad == nil {
		t.Grad = mat.New(t.Value.R, t.Value.C)
	}
}

// MatMul returns a·b.
func (tp *Tape) MatMul(a, b *Tensor) *Tensor {
	v := mat.MatMul(nil, a.Value, b.Value)
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				// dA += dOut · Bᵀ
				mat.AddScaled(a.Grad, 1, mat.MatMulT(nil, out.Grad, b.Value))
			}
			if b.RequiresGrad {
				// dB += Aᵀ · dOut
				mat.AddScaled(b.Grad, 1, mat.TMatMul(nil, a.Value, out.Grad))
			}
		}
	}
	return out
}

// MatMulT returns a·bᵀ.
func (tp *Tape) MatMulT(a, b *Tensor) *Tensor {
	v := mat.MatMulT(nil, a.Value, b.Value)
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				// out = A·Bᵀ ⇒ dA += dOut · B
				mat.AddScaled(a.Grad, 1, mat.MatMul(nil, out.Grad, b.Value))
			}
			if b.RequiresGrad {
				// dB += dOutᵀ · A
				mat.AddScaled(b.Grad, 1, mat.TMatMul(nil, out.Grad, a.Value))
			}
		}
	}
	return out
}

// Add returns a+b (same shape).
func (tp *Tape) Add(a, b *Tensor) *Tensor {
	v := mat.Add(nil, a.Value, b.Value)
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				mat.AddScaled(a.Grad, 1, out.Grad)
			}
			if b.RequiresGrad {
				mat.AddScaled(b.Grad, 1, out.Grad)
			}
		}
	}
	return out
}

// Sub returns a-b (same shape).
func (tp *Tape) Sub(a, b *Tensor) *Tensor {
	v := mat.Sub(nil, a.Value, b.Value)
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				mat.AddScaled(a.Grad, 1, out.Grad)
			}
			if b.RequiresGrad {
				mat.AddScaled(b.Grad, -1, out.Grad)
			}
		}
	}
	return out
}

// ElemMul returns the Hadamard product a⊙b.
func (tp *Tape) ElemMul(a, b *Tensor) *Tensor {
	v := mat.ElemMul(nil, a.Value, b.Value)
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				mat.AddScaled(a.Grad, 1, mat.ElemMul(nil, out.Grad, b.Value))
			}
			if b.RequiresGrad {
				mat.AddScaled(b.Grad, 1, mat.ElemMul(nil, out.Grad, a.Value))
			}
		}
	}
	return out
}

// Scale returns s*a.
func (tp *Tape) Scale(s float64, a *Tensor) *Tensor {
	v := mat.Scale(nil, s, a.Value)
	out := tp.newResult(v, a.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(a)
		out.back = func() { mat.AddScaled(a.Grad, s, out.Grad) }
	}
	return out
}

// AddColBroadcast returns a + b·1ᵀ where b is an R×1 column vector added to
// every column of a. This matches the paper's feed-forward bias b^{|λ|×1}.
func (tp *Tape) AddColBroadcast(a, b *Tensor) *Tensor {
	if b.Value.C != 1 || b.Value.R != a.Value.R {
		panic(fmt.Sprintf("autodiff: AddColBroadcast wants %dx1 bias, got %dx%d", a.Value.R, b.Value.R, b.Value.C))
	}
	v := a.Value.Clone()
	for i := 0; i < v.R; i++ {
		bi := b.Value.At(i, 0)
		row := v.Row(i)
		for j := range row {
			row[j] += bi
		}
	}
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				mat.AddScaled(a.Grad, 1, out.Grad)
			}
			if b.RequiresGrad {
				for i := 0; i < out.Grad.R; i++ {
					var s float64
					for _, g := range out.Grad.Row(i) {
						s += g
					}
					b.Grad.Set(i, 0, b.Grad.At(i, 0)+s)
				}
			}
		}
	}
	return out
}

// AddRowBroadcast returns a + 1·bᵀ where b is a 1×C row vector added to
// every row of a.
func (tp *Tape) AddRowBroadcast(a, b *Tensor) *Tensor {
	if b.Value.R != 1 || b.Value.C != a.Value.C {
		panic(fmt.Sprintf("autodiff: AddRowBroadcast wants 1x%d bias, got %dx%d", a.Value.C, b.Value.R, b.Value.C))
	}
	v := a.Value.Clone()
	brow := b.Value.Row(0)
	for i := 0; i < v.R; i++ {
		row := v.Row(i)
		for j := range row {
			row[j] += brow[j]
		}
	}
	out := tp.newResult(v, needGrad(a, b))
	if out.RequiresGrad {
		ensureGrad(a)
		ensureGrad(b)
		out.back = func() {
			if a.RequiresGrad {
				mat.AddScaled(a.Grad, 1, out.Grad)
			}
			if b.RequiresGrad {
				bg := b.Grad.Row(0)
				for i := 0; i < out.Grad.R; i++ {
					row := out.Grad.Row(i)
					for j := range row {
						bg[j] += row[j]
					}
				}
			}
		}
	}
	return out
}

// Relu returns max(0, a) elementwise.
func (tp *Tape) Relu(a *Tensor) *Tensor {
	v := mat.Relu(nil, a.Value)
	out := tp.newResult(v, a.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(a)
		out.back = func() {
			for i, av := range a.Value.Data {
				if av > 0 {
					a.Grad.Data[i] += out.Grad.Data[i]
				}
			}
		}
	}
	return out
}

// Sigmoid returns 1/(1+exp(-a)) elementwise.
func (tp *Tape) Sigmoid(a *Tensor) *Tensor {
	v := mat.New(a.Value.R, a.Value.C)
	for i, x := range a.Value.Data {
		v.Data[i] = sigmoid(x)
	}
	out := tp.newResult(v, a.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(a)
		out.back = func() {
			for i, s := range out.Value.Data {
				a.Grad.Data[i] += out.Grad.Data[i] * s * (1 - s)
			}
		}
	}
	return out
}

// Tanh returns tanh(a) elementwise.
func (tp *Tape) Tanh(a *Tensor) *Tensor {
	v := mat.New(a.Value.R, a.Value.C)
	for i, x := range a.Value.Data {
		v.Data[i] = math.Tanh(x)
	}
	out := tp.newResult(v, a.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(a)
		out.back = func() {
			for i, th := range out.Value.Data {
				a.Grad.Data[i] += out.Grad.Data[i] * (1 - th*th)
			}
		}
	}
	return out
}

// SoftmaxRows applies softmax independently to each row of a.
func (tp *Tape) SoftmaxRows(a *Tensor) *Tensor {
	v := mat.SoftmaxRows(nil, a.Value)
	out := tp.newResult(v, a.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(a)
		out.back = func() {
			// For each row: dx_j = s_j * (g_j - Σ_k g_k s_k).
			for i := 0; i < v.R; i++ {
				srow := v.Row(i)
				grow := out.Grad.Row(i)
				var dot float64
				for k := range srow {
					dot += grow[k] * srow[k]
				}
				arow := a.Grad.Row(i)
				for j := range srow {
					arow[j] += srow[j] * (grow[j] - dot)
				}
			}
		}
	}
	return out
}

// SumAll reduces a to a 1x1 tensor containing the sum of all elements.
func (tp *Tape) SumAll(a *Tensor) *Tensor {
	v := mat.New(1, 1)
	v.Set(0, 0, a.Value.Sum())
	out := tp.newResult(v, a.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(a)
		out.back = func() {
			g := out.Grad.At(0, 0)
			for i := range a.Grad.Data {
				a.Grad.Data[i] += g
			}
		}
	}
	return out
}

// MeanAll reduces a to a 1x1 tensor containing the mean of all elements.
func (tp *Tape) MeanAll(a *Tensor) *Tensor {
	n := float64(len(a.Value.Data))
	return tp.Scale(1/n, tp.SumAll(a))
}

// MSE returns the mean squared error between a and b as a 1x1 tensor:
// mean((a-b)²).
func (tp *Tape) MSE(a, b *Tensor) *Tensor {
	d := tp.Sub(a, b)
	return tp.MeanAll(tp.ElemMul(d, d))
}

// Square returns a⊙a.
func (tp *Tape) Square(a *Tensor) *Tensor { return tp.ElemMul(a, a) }

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
