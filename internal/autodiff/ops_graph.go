package autodiff

import (
	"fmt"
	"math"

	"transn/internal/mat"
)

// SparseMatMul returns s·x for a constant sparse matrix s. Gradients flow
// to x only: dX += sᵀ·dOut.
func (tp *Tape) SparseMatMul(s *mat.Sparse, x *Tensor) *Tensor {
	v := s.Mul(nil, x.Value)
	out := tp.newResult(v, x.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(x)
		out.back = func() {
			mat.AddScaled(x.Grad, 1, s.TMul(nil, out.Grad))
		}
	}
	return out
}

// GatherRows returns the matrix whose i-th row is x's idx[i]-th row.
// The backward pass scatter-adds gradients into the gathered rows.
func (tp *Tape) GatherRows(x *Tensor, idx []int) *Tensor {
	v := mat.New(len(idx), x.Value.C)
	for i, r := range idx {
		v.SetRow(i, x.Value.Row(r))
	}
	out := tp.newResult(v, x.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(x)
		out.back = func() {
			for i, r := range idx {
				dst := x.Grad.Row(r)
				src := out.Grad.Row(i)
				for j := range dst {
					dst[j] += src[j]
				}
			}
		}
	}
	return out
}

// SumRows reduces each row of x to a single column: out is R×1 with
// out[i] = Σ_j x[i][j].
func (tp *Tape) SumRows(x *Tensor) *Tensor {
	v := mat.New(x.Value.R, 1)
	for i := 0; i < x.Value.R; i++ {
		var s float64
		for _, e := range x.Value.Row(i) {
			s += e
		}
		v.Set(i, 0, s)
	}
	out := tp.newResult(v, x.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(x)
		out.back = func() {
			for i := 0; i < x.Grad.R; i++ {
				g := out.Grad.At(i, 0)
				row := x.Grad.Row(i)
				for j := range row {
					row[j] += g
				}
			}
		}
	}
	return out
}

// LogisticLoss returns the mean binary cross-entropy with logits:
// mean(softplus(-y·s)) where scores is R×1 and labels[i] ∈ {+1, −1}.
func (tp *Tape) LogisticLoss(scores *Tensor, labels []float64) *Tensor {
	if scores.Value.C != 1 || scores.Value.R != len(labels) {
		panic(fmt.Sprintf("autodiff: LogisticLoss wants %dx1 scores, got %dx%d",
			len(labels), scores.Value.R, scores.Value.C))
	}
	n := float64(len(labels))
	v := mat.New(1, 1)
	var total float64
	for i, y := range labels {
		total += softplus(-y * scores.Value.At(i, 0))
	}
	v.Set(0, 0, total/n)
	out := tp.newResult(v, scores.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(scores)
		out.back = func() {
			g := out.Grad.At(0, 0) / n
			for i, y := range labels {
				s := scores.Value.At(i, 0)
				// d/ds softplus(-y·s) = -y·σ(-y·s)
				scores.Grad.Set(i, 0, scores.Grad.At(i, 0)-g*y*sigmoid(-y*s))
			}
		}
	}
	return out
}

// softplus computes log(1+exp(x)) stably.
func softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
