package autodiff

import (
	"math"
	"math/rand"
	"testing"

	"transn/internal/mat"
)

func testSparse() *mat.Sparse {
	// 3x3:
	// [1 0 2]
	// [0 3 0]
	// [4 0 5]
	return mat.NewSparse(3, 3, [][]mat.SparseEntry{
		{{Col: 0, Val: 1}, {Col: 2, Val: 2}},
		{{Col: 1, Val: 3}},
		{{Col: 0, Val: 4}, {Col: 2, Val: 5}},
	})
}

func TestSparseMulMatchesDense(t *testing.T) {
	s := testSparse()
	rng := rand.New(rand.NewSource(1))
	x := mat.RandN(3, 4, 1, rng)
	want := mat.MatMul(nil, s.ToDense(), x)
	if got := s.Mul(nil, x); !got.Equal(want, 1e-12) {
		t.Fatal("Sparse.Mul mismatch")
	}
	wantT := mat.MatMul(nil, mat.Transpose(nil, s.ToDense()), x)
	if got := s.TMul(nil, x); !got.Equal(wantT, 1e-12) {
		t.Fatal("Sparse.TMul mismatch")
	}
	if s.NNZ() != 5 {
		t.Fatalf("NNZ = %d", s.NNZ())
	}
}

func TestGradSparseMatMul(t *testing.T) {
	s := testSparse()
	checkOp(t, "SparseMatMul", [][2]int{{3, 4}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.SparseMatMul(s, p[0])))
	})
}

func TestGradGatherRows(t *testing.T) {
	idx := []int{2, 0, 2, 1} // repeated row exercises scatter-add
	checkOp(t, "GatherRows", [][2]int{{3, 4}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.GatherRows(p[0], idx)))
	})
}

func TestGatherRowsValues(t *testing.T) {
	tp := NewTape()
	x := tp.Constant(mat.FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6}))
	g := tp.GatherRows(x, []int{2, 0})
	want := mat.FromSlice(2, 2, []float64{5, 6, 1, 2})
	if !g.Value.Equal(want, 0) {
		t.Fatalf("GatherRows = %v", g.Value)
	}
}

func TestGradSumRows(t *testing.T) {
	checkOp(t, "SumRows", [][2]int{{4, 3}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.MeanAll(tp.Square(tp.SumRows(p[0])))
	})
}

func TestGradLogisticLoss(t *testing.T) {
	labels := []float64{1, -1, 1, -1}
	checkOp(t, "LogisticLoss", [][2]int{{4, 1}}, func(tp *Tape, p []*Tensor) *Tensor {
		return tp.LogisticLoss(p[0], labels)
	})
}

func TestLogisticLossValues(t *testing.T) {
	tp := NewTape()
	s := tp.Constant(mat.FromSlice(2, 1, []float64{0, 0}))
	loss := tp.LogisticLoss(s, []float64{1, -1})
	if got := loss.Value.At(0, 0); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("loss at zero scores = %v want ln2", got)
	}
	// Large correct scores → near-zero loss.
	tp2 := NewTape()
	s2 := tp2.Constant(mat.FromSlice(2, 1, []float64{50, -50}))
	loss2 := tp2.LogisticLoss(s2, []float64{1, -1})
	if got := loss2.Value.At(0, 0); got > 1e-10 {
		t.Fatalf("confident loss = %v", got)
	}
}

func TestSoftplusStable(t *testing.T) {
	if got := softplus(1000); got != 1000 {
		t.Fatalf("softplus(1000) = %v", got)
	}
	if got := softplus(-1000); got != 0 {
		t.Fatalf("softplus(-1000) = %v", got)
	}
	if got := softplus(0); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("softplus(0) = %v", got)
	}
}

func TestGradLayerNormRows(t *testing.T) {
	checkOp(t, "LayerNormRows", [][2]int{{4, 6}, {4, 6}}, func(tp *Tape, p []*Tensor) *Tensor {
		// Weight the normalized output so gradients vary per element.
		return tp.MeanAll(tp.ElemMul(tp.LayerNormRows(p[0]), p[1]))
	})
}

func TestLayerNormRowsValues(t *testing.T) {
	tp := NewTape()
	x := tp.Constant(mat.FromSlice(2, 4, []float64{1, 2, 3, 4, -5, -5, 5, 5}))
	y := tp.LayerNormRows(x)
	for i := 0; i < 2; i++ {
		var mean, varr float64
		for _, v := range y.Value.Row(i) {
			mean += v
		}
		mean /= 4
		for _, v := range y.Value.Row(i) {
			varr += (v - mean) * (v - mean)
		}
		varr /= 4
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-3 {
			t.Fatalf("row %d mean %v var %v", i, mean, varr)
		}
	}
}
