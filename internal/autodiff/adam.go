package autodiff

import (
	"math"

	"transn/internal/mat"
)

// Adam implements the Adam stochastic optimizer (Kingma & Ba, 2014), the
// optimizer Algorithm 1 of the paper prescribes. One Adam instance manages
// one parameter matrix; state is per-element first/second moments.
type Adam struct {
	LR      float64 // learning rate (paper default 0.025)
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t    int
	m, v *mat.Dense
}

// NewAdam returns an Adam optimizer with the given learning rate and the
// conventional β₁=0.9, β₂=0.999, ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to param in place using grad, then leaves
// grad untouched (callers zero grads via the next Backward).
func (a *Adam) Step(param, grad *mat.Dense) {
	if a.m == nil {
		a.m = mat.New(param.R, param.C)
		a.v = mat.New(param.R, param.C)
	}
	a.t++
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range param.Data {
		g := grad.Data[i]
		a.m.Data[i] = a.Beta1*a.m.Data[i] + (1-a.Beta1)*g
		a.v.Data[i] = a.Beta2*a.v.Data[i] + (1-a.Beta2)*g*g
		mhat := a.m.Data[i] / b1c
		vhat := a.v.Data[i] / b2c
		param.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Epsilon)
	}
}

// SGD performs one plain stochastic gradient descent step:
// param -= lr * grad. Used by the skip-gram trainers, which follow the
// word2vec convention of per-sample SGD with a decaying rate.
func SGD(param, grad *mat.Dense, lr float64) {
	mat.AddScaled(param, -lr, grad)
}
