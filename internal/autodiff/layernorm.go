package autodiff

import (
	"math"

	"transn/internal/mat"
)

// LayerNormRows normalizes each row of x to zero mean and unit variance
// (no learnable affine): y = (x − μ)/√(σ² + ε). It is the stabilizer
// that makes residual encoder stacks trainable.
func (tp *Tape) LayerNormRows(x *Tensor) *Tensor {
	const eps = 1e-5
	r, c := x.Value.R, x.Value.C
	v := mat.New(r, c)
	invStd := make([]float64, r)
	for i := 0; i < r; i++ {
		row := x.Value.Row(i)
		var mean float64
		for _, e := range row {
			mean += e
		}
		mean /= float64(c)
		var varr float64
		for _, e := range row {
			d := e - mean
			varr += d * d
		}
		varr /= float64(c)
		is := 1 / math.Sqrt(varr+eps)
		invStd[i] = is
		out := v.Row(i)
		for j, e := range row {
			out[j] = (e - mean) * is
		}
	}
	out := tp.newResult(v, x.RequiresGrad)
	if out.RequiresGrad {
		ensureGrad(x)
		out.back = func() {
			// dL/dx = invStd · (g − mean(g) − y·mean(g⊙y)) per row.
			for i := 0; i < r; i++ {
				g := out.Grad.Row(i)
				y := out.Value.Row(i)
				var meanG, meanGY float64
				for j := 0; j < c; j++ {
					meanG += g[j]
					meanGY += g[j] * y[j]
				}
				meanG /= float64(c)
				meanGY /= float64(c)
				dst := x.Grad.Row(i)
				is := invStd[i]
				for j := 0; j < c; j++ {
					dst[j] += is * (g[j] - meanG - y[j]*meanGY)
				}
			}
		}
	}
	return out
}
