package skipgram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"transn/internal/mat"
	"transn/internal/rngstream"
)

func TestContextOffsets(t *testing.T) {
	homo := ContextOffsets(false)
	if len(homo) != 2 || homo[0] != -1 || homo[1] != 1 {
		t.Fatalf("homo offsets = %v", homo)
	}
	heter := ContextOffsets(true)
	want := []int{-2, -1, 1, 2}
	if len(heter) != 4 {
		t.Fatalf("heter offsets = %v", heter)
	}
	for i := range want {
		if heter[i] != want[i] {
			t.Fatalf("heter offsets = %v", heter)
		}
	}
}

func TestSymmetricOffsets(t *testing.T) {
	got := SymmetricOffsets(3)
	want := []int{-3, -2, -1, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("offsets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets = %v", got)
		}
	}
}

func TestCorpusFrequencies(t *testing.T) {
	paths := [][]int{{0, 1, 2}, {1, 2, 2}}
	f := CorpusFrequencies(paths, 4)
	want := []float64{1, 2, 3, 0}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("freq = %v", f)
		}
	}
}

func TestNegSamplerSmoothing(t *testing.T) {
	// freq^0.75 smoothing: outcome 0 (freq 16) vs outcome 1 (freq 1)
	// should be drawn in ratio 16^0.75 : 1 = 8 : 1.
	s := NewNegSampler([]float64{16, 1})
	rng := rand.New(rand.NewSource(1))
	count0 := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Draw(rng) == 0 {
			count0++
		}
	}
	want := 8.0 / 9.0
	if got := float64(count0) / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("P(0) = %.4f want %.4f", got, want)
	}
}

func TestNegSamplerZeroFreqFloor(t *testing.T) {
	s := NewNegSampler([]float64{0, 1})
	rng := rand.New(rand.NewSource(2))
	saw0 := false
	for i := 0; i < 10000; i++ {
		if s.Draw(rng) == 0 {
			saw0 = true
			break
		}
	}
	if !saw0 {
		t.Fatal("zero-frequency outcome should still be drawable")
	}
}

// twoClusterCorpus builds walks over two disjoint cliques {0,1,2} and
// {3,4,5}: co-occurring nodes should end up with similar embeddings.
func twoClusterCorpus(rng *rand.Rand, walks, length int) [][]int {
	var paths [][]int
	for c := 0; c < 2; c++ {
		base := c * 3
		for i := 0; i < walks; i++ {
			p := make([]int, length)
			for j := range p {
				p[j] = base + rng.Intn(3)
			}
			paths = append(paths, p)
		}
	}
	return paths
}

func TestSGNSSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	paths := twoClusterCorpus(rng, 60, 12)
	m := NewModel(6, 16, rng)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	var last float64
	for epoch := 0; epoch < 8; epoch++ {
		lr := 0.05 * (1 - float64(epoch)/8)
		last = m.TrainCorpus(paths, SymmetricOffsets(2), 5, lr, s, rng)
	}
	if math.IsNaN(last) || last <= 0 {
		t.Fatalf("bad final loss %v", last)
	}
	intra := mat.CosineSim(m.In.Row(0), m.In.Row(1))
	inter := mat.CosineSim(m.In.Row(0), m.In.Row(4))
	if intra <= inter {
		t.Fatalf("intra-cluster sim %.4f should exceed inter-cluster %.4f", intra, inter)
	}
}

func TestTrainCorpusLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	paths := twoClusterCorpus(rng, 40, 10)
	m := NewModel(6, 8, rng)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	first := m.TrainCorpus(paths, SymmetricOffsets(1), 5, 0.05, s, rng)
	var last float64
	for i := 0; i < 10; i++ {
		last = m.TrainCorpus(paths, SymmetricOffsets(1), 5, 0.05, s, rng)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %.4f last %.4f", first, last)
	}
}

func TestTrainCorpusEmptyPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewModel(2, 4, rng)
	s := NewNegSampler([]float64{1, 1})
	if got := m.TrainCorpus(nil, SymmetricOffsets(1), 2, 0.1, s, rng); got != 0 {
		t.Fatalf("empty corpus loss = %v", got)
	}
}

func TestHuffmanCodesPrefixFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	freq := []float64{50, 20, 10, 5, 5, 3, 3, 2, 1, 1}
	h := NewHSoftmax(freq, 4, rng)
	// Prefix-freeness: no code is a prefix of another.
	for i := range freq {
		for j := range freq {
			if i == j {
				continue
			}
			if isPrefix(h.codes[i], h.codes[j]) {
				t.Fatalf("code %d is a prefix of code %d", i, j)
			}
		}
	}
	// Optimality property: strictly more frequent symbols never have
	// strictly longer codes (ties may break either way).
	for i := 1; i < len(freq); i++ {
		if freq[i-1] > freq[i] && h.CodeLen(i-1) > h.CodeLen(i) {
			t.Fatalf("freq %g has code len %d but freq %g has %d",
				freq[i-1], h.CodeLen(i-1), freq[i], h.CodeLen(i))
		}
	}
}

func isPrefix(a, b []bool) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHuffmanKraftEquality(t *testing.T) {
	// A full binary Huffman tree satisfies Σ 2^(-len) = 1 exactly.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		freq := make([]float64, n)
		for i := range freq {
			freq[i] = rng.Float64() + 0.01
		}
		h := NewHSoftmax(freq, 2, rng)
		var kraft float64
		for i := range freq {
			kraft += math.Pow(2, -float64(h.CodeLen(i)))
		}
		return math.Abs(kraft-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHSoftmaxSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	paths := twoClusterCorpus(rng, 60, 12)
	m := NewModel(6, 16, rng)
	h := NewHSoftmax(CorpusFrequencies(paths, 6), 16, rng)
	for epoch := 0; epoch < 10; epoch++ {
		lr := 0.05 * (1 - float64(epoch)/10)
		h.TrainCorpus(m, paths, SymmetricOffsets(2), lr)
	}
	intra := mat.CosineSim(m.In.Row(0), m.In.Row(2))
	inter := mat.CosineSim(m.In.Row(0), m.In.Row(5))
	if intra <= inter {
		t.Fatalf("hsoftmax intra %.4f should exceed inter %.4f", intra, inter)
	}
}

func TestHSoftmaxLossDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	paths := twoClusterCorpus(rng, 40, 10)
	m := NewModel(6, 8, rng)
	h := NewHSoftmax(CorpusFrequencies(paths, 6), 8, rng)
	first := h.TrainCorpus(m, paths, SymmetricOffsets(1), 0.05)
	var last float64
	for i := 0; i < 10; i++ {
		last = h.TrainCorpus(m, paths, SymmetricOffsets(1), 0.05)
	}
	if last >= first {
		t.Fatalf("hsoftmax loss did not decrease: %.4f → %.4f", first, last)
	}
}

func TestNewHSoftmaxPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHSoftmax([]float64{1}, 2, rand.New(rand.NewSource(9)))
}

func TestModelDim(t *testing.T) {
	m := NewModel(3, 7, rand.New(rand.NewSource(10)))
	if m.Dim() != 7 {
		t.Fatalf("Dim = %d", m.Dim())
	}
	if m.In.R != 3 || m.Out.R != 3 {
		t.Fatal("wrong table shapes")
	}
	if m.Out.MaxAbs() != 0 {
		t.Fatal("Out must start at zero")
	}
}

func BenchmarkSGNSPass(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	paths := twoClusterCorpus(rng, 50, 40)
	m := NewModel(6, 64, rng)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainCorpus(paths, SymmetricOffsets(2), 5, 0.025, s, rng)
	}
}

func TestTrainCorpusSkipsSelfPairs(t *testing.T) {
	// A path that revisits the same node must not generate center==context
	// updates (they carry no proximity information and inflate norms).
	rng := rand.New(rand.NewSource(11))
	m := NewModel(2, 4, rng)
	s := NewNegSampler([]float64{1, 1})
	// Path of all-identical nodes: every in-window pair is a self-pair.
	loss := m.TrainCorpus([][]int{{0, 0, 0, 0}}, SymmetricOffsets(1), 2, 0.1, s, rng)
	if loss != 0 {
		t.Fatalf("self-pair corpus should produce zero pairs, got loss %v", loss)
	}
}

// cloneModel deep-copies a model so two training disciplines can start
// from identical weights.
func cloneModel(m *Model) *Model {
	c := NewModel(m.In.R, m.In.C, rand.New(rand.NewSource(0)))
	copy(c.In.Data, m.In.Data)
	copy(c.Out.Data, m.Out.Data)
	return c
}

// TrainCorpusParallel with one worker must reduce to TrainCorpus under
// the shard-0 stream — this anchors the Workers=1 reproducibility
// promise all the way down the stack.
func TestTrainCorpusParallelOneWorkerMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	paths := twoClusterCorpus(rng, 30, 10)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	a := NewModel(6, 8, rand.New(rand.NewSource(7)))
	b := cloneModel(a)
	const seed = 99
	la := a.TrainCorpusParallel(paths, SymmetricOffsets(2), 5, 0.05, s, seed, 1, false)
	lb := b.TrainCorpus(paths, SymmetricOffsets(2), 5, 0.05, s, rngstream.New(seed, 0))
	if la != lb {
		t.Fatalf("losses differ: %v vs %v", la, lb)
	}
	for i := range a.In.Data {
		if a.In.Data[i] != b.In.Data[i] {
			t.Fatalf("In tables diverge at %d", i)
		}
	}
	for i := range a.Out.Data {
		if a.Out.Data[i] != b.Out.Data[i] {
			t.Fatalf("Out tables diverge at %d", i)
		}
	}
}

// Deterministic sharded apply must be byte-reproducible per (seed,
// workers), and Hogwild must still learn on the same corpus.
func TestTrainCorpusParallelDeterministicReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	paths := twoClusterCorpus(rng, 30, 10)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	for _, workers := range []int{2, 4} {
		a := NewModel(6, 8, rand.New(rand.NewSource(9)))
		b := cloneModel(a)
		la := a.TrainCorpusParallel(paths, SymmetricOffsets(2), 5, 0.05, s, 11, workers, true)
		lb := b.TrainCorpusParallel(paths, SymmetricOffsets(2), 5, 0.05, s, 11, workers, true)
		if la != lb {
			t.Fatalf("workers=%d losses differ: %v vs %v", workers, la, lb)
		}
		for i := range a.In.Data {
			if a.In.Data[i] != b.In.Data[i] {
				t.Fatalf("workers=%d In tables diverge at %d", workers, i)
			}
		}
	}
}

func TestTrainCorpusParallelHogwildLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	paths := twoClusterCorpus(rng, 40, 10)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	m := NewModel(6, 8, rand.New(rand.NewSource(11)))
	first := m.TrainCorpusParallel(paths, SymmetricOffsets(1), 5, 0.05, s, 12, 4, false)
	var last float64
	for i := 1; i < 10; i++ {
		last = m.TrainCorpusParallel(paths, SymmetricOffsets(1), 5, 0.05, s, 12+int64(i), 4, false)
	}
	if math.IsNaN(last) || last >= first {
		t.Fatalf("hogwild loss did not decrease: first %.4f last %.4f", first, last)
	}
}

// TrainCorpusParallelStats must train exactly like TrainCorpusParallel
// (same loss, same tables) while reporting a positive pair count and a
// worker-time breakdown covering every shard.
func TestTrainCorpusParallelStatsMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	paths := twoClusterCorpus(rng, 30, 10)
	s := NewNegSampler(CorpusFrequencies(paths, 6))
	for _, tc := range []struct {
		workers       int
		deterministic bool
	}{{1, false}, {3, true}} {
		a := NewModel(6, 8, rand.New(rand.NewSource(15)))
		b := cloneModel(a)
		la := a.TrainCorpusParallel(paths, SymmetricOffsets(2), 5, 0.05, s, 13, tc.workers, tc.deterministic)
		lb, pairs, st := b.TrainCorpusParallelStats(paths, SymmetricOffsets(2), 5, 0.05, s, 13, tc.workers, tc.deterministic)
		if la != lb {
			t.Fatalf("workers=%d: losses differ: %v vs %v", tc.workers, la, lb)
		}
		for i := range a.In.Data {
			if a.In.Data[i] != b.In.Data[i] {
				t.Fatalf("workers=%d: In tables diverge at %d", tc.workers, i)
			}
		}
		if pairs <= 0 {
			t.Fatalf("workers=%d: pair count %d not positive", tc.workers, pairs)
		}
		if st.Wall <= 0 || len(st.Workers) == 0 {
			t.Fatalf("workers=%d: empty stats %+v", tc.workers, st)
		}
		shards := 0
		for _, w := range st.Workers {
			shards += w.Shards
		}
		if shards <= 0 {
			t.Fatalf("workers=%d: no shards attributed in %+v", tc.workers, st)
		}
	}
}
