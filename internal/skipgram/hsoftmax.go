package skipgram

import (
	"container/heap"
	"math"
	"math/rand"

	"transn/internal/mat"
)

// HSoftmax is the hierarchical-softmax estimator of the skip-gram
// objective: a Huffman tree over node frequencies where each leaf is a
// node and each internal vertex owns a trainable vector. Predicting a
// context costs O(log₂ μ), which is the term that appears in Theorem 1's
// complexity bound.
type HSoftmax struct {
	// codes[n] is the Huffman code of leaf n (false = left).
	codes [][]bool
	// points[n] lists the internal-vertex indices on the root→leaf path.
	points [][]int32
	// Vec holds one row per internal vertex.
	Vec *mat.Dense
}

type huffNode struct {
	freq        float64
	left, right int // child indices into the node arena, -1 for leaves
	leaf        int // leaf id or -1
}

type huffHeap struct {
	arena *[]huffNode
	idx   []int
}

func (h huffHeap) Len() int { return len(h.idx) }
func (h huffHeap) Less(i, j int) bool {
	return (*h.arena)[h.idx[i]].freq < (*h.arena)[h.idx[j]].freq
}
func (h huffHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *huffHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *huffHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

// NewHSoftmax builds the Huffman tree for the given frequencies and
// allocates internal-vertex vectors of dimension dim.
func NewHSoftmax(freq []float64, dim int, rng *rand.Rand) *HSoftmax {
	n := len(freq)
	if n < 2 {
		panic("skipgram: hierarchical softmax needs at least 2 nodes")
	}
	arena := make([]huffNode, 0, 2*n-1)
	hh := &huffHeap{arena: &arena}
	for i, f := range freq {
		if f <= 0 {
			f = 1e-3
		}
		arena = append(arena, huffNode{freq: f, left: -1, right: -1, leaf: i})
		hh.idx = append(hh.idx, i)
	}
	heap.Init(hh)
	for hh.Len() > 1 {
		a := heap.Pop(hh).(int)
		b := heap.Pop(hh).(int)
		arena = append(arena, huffNode{freq: arena[a].freq + arena[b].freq, left: a, right: b, leaf: -1})
		heap.Push(hh, len(arena)-1)
	}
	root := hh.idx[0]

	hs := &HSoftmax{
		codes:  make([][]bool, n),
		points: make([][]int32, n),
	}
	// Internal vertices get dense indices in arena order past the leaves.
	internalIdx := func(arenaIdx int) int32 { return int32(arenaIdx - n) }
	// DFS assigning codes.
	type frame struct {
		node   int
		code   []bool
		points []int32
	}
	stack := []frame{{node: root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := arena[f.node]
		if nd.leaf >= 0 {
			hs.codes[nd.leaf] = f.code
			hs.points[nd.leaf] = f.points
			continue
		}
		pts := append(append([]int32(nil), f.points...), internalIdx(f.node))
		stack = append(stack,
			frame{node: nd.left, code: append(append([]bool(nil), f.code...), false), points: pts},
			frame{node: nd.right, code: append(append([]bool(nil), f.code...), true), points: pts},
		)
	}
	hs.Vec = mat.New(len(arena)-n, dim)
	return hs
}

// CodeLen returns the Huffman code length of leaf n (≈ log₂ of its
// inverse frequency).
func (h *HSoftmax) CodeLen(n int) int { return len(h.codes[n]) }

// TrainPair applies one hierarchical-softmax update for (center, context)
// on model m and returns the loss. Only m.In and h.Vec are touched.
//
//lint:finite-checked sigmoid/log are clamped here and the trainer's per-iteration guard (transn/finite.go) sweeps losses and sampled rows
func (h *HSoftmax) TrainPair(m *Model, center, context int, lr float64) float64 {
	in := m.In.Row(center)
	dim := len(in)
	grad := make([]float64, dim)
	var loss float64
	code := h.codes[context]
	points := h.points[context]
	for i, bit := range code {
		out := h.Vec.Row(int(points[i]))
		score := sigmoid(mat.Dot(in, out))
		label := 0.0
		if bit {
			label = 1
		}
		if label == 1 {
			loss += -math.Log(math.Max(score, 1e-10))
		} else {
			loss += -math.Log(math.Max(1-score, 1e-10))
		}
		g := (score - label) * lr
		for d := 0; d < dim; d++ {
			grad[d] += g * out[d]
			out[d] -= g * in[d]
		}
	}
	for d := 0; d < dim; d++ {
		in[d] -= grad[d]
	}
	return loss
}

// TrainCorpus runs one hierarchical-softmax pass over the corpus and
// returns mean pair loss.
func (h *HSoftmax) TrainCorpus(m *Model, paths [][]int, offsets []int, lr float64) float64 {
	var loss float64
	var pairs int
	for _, p := range paths {
		for k, center := range p {
			for _, d := range offsets {
				j := k + d
				if j < 0 || j >= len(p) {
					continue
				}
				loss += h.TrainPair(m, center, p[j], lr)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return loss / float64(pairs)
}
