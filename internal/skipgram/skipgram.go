// Package skipgram implements the skip-gram objective (Equation 3) used
// by the paper's single-view algorithm and by the walk-based baselines.
// Context selection follows Definition 6: window 1 on homo-views and
// window 2 on heter-views. Two estimators of the softmax are provided:
// negative sampling (default, word2vec-style) and hierarchical softmax
// (matching the log₂ μ term of Theorem 1).
package skipgram

import (
	"math"
	"math/rand"

	"transn/internal/mat"
	"transn/internal/par"
	"transn/internal/rngstream"
	"transn/internal/walk"
)

// Model holds input (node) and output (context) embedding tables. In is
// the embedding users read out; Out exists only during training.
type Model struct {
	In, Out *mat.Dense // numNodes × dim
}

// NewModel returns a model with word2vec-style initialization: In is
// Uniform(-0.5/dim, 0.5/dim), Out is zero.
func NewModel(numNodes, dim int, rng *rand.Rand) *Model {
	return &Model{
		In:  mat.EmbeddingInit(numNodes, dim, rng),
		Out: mat.New(numNodes, dim),
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.In.C }

// NegSampler draws negative examples proportional to freq^0.75, the
// word2vec unigram smoothing.
type NegSampler struct {
	alias *walk.Alias
}

// NewNegSampler builds a sampler from raw frequency counts. Zero-count
// outcomes get a tiny floor so every node can be drawn.
func NewNegSampler(freq []float64) *NegSampler {
	w := make([]float64, len(freq))
	for i, f := range freq {
		if f <= 0 {
			f = 1e-3
		}
		w[i] = math.Pow(f, 0.75)
	}
	return &NegSampler{alias: walk.NewAlias(w)}
}

// Draw samples one negative node index.
func (s *NegSampler) Draw(rng *rand.Rand) int { return s.alias.Draw(rng) }

// CorpusFrequencies counts node occurrences over a path corpus of local
// indices in [0, numNodes).
func CorpusFrequencies(paths [][]int, numNodes int) []float64 {
	freq := make([]float64, numNodes)
	for _, p := range paths {
		for _, n := range p {
			freq[n]++
		}
	}
	return freq
}

// ContextOffsets returns Definition 6's context offsets: {−1, +1} for
// homo-views, {−2, −1, +1, +2} for heter-views.
func ContextOffsets(hetero bool) []int {
	if hetero {
		return []int{-2, -1, 1, 2}
	}
	return []int{-1, 1}
}

// SymmetricOffsets returns the offsets of a plain window of size w
// (±1..±w), used by the DeepWalk/node2vec/metapath2vec baselines.
func SymmetricOffsets(w int) []int {
	out := make([]int, 0, 2*w)
	for d := -w; d <= w; d++ {
		if d != 0 {
			out = append(out, d)
		}
	}
	return out
}

// TrainPair applies one SGNS update for (center, context): the positive
// pair is pushed together, neg sampled negatives are pushed apart. The
// binary cross-entropy loss of the update is returned. Negatives equal to
// the true context are re-drawn a bounded number of times.
//
// All element-level access to the shared In/Out tables goes through the
// two go:norace leaf helpers below (hogwildPairUpdate, applyRowGrad): in
// the Hogwild mode of TrainCorpusParallel several shards apply updates
// to the tables concurrently without synchronization, exactly like the
// original word2vec trainer. Those element races are intentional and
// benign on platforms with atomic aligned 64-bit stores (amd64, arm64):
// a lost update costs one stochastic gradient step, never a torn value.
// The race-detector exemption is confined to exactly those leaves (and
// the cross-view gather/scatter in internal/transn) so the surrounding
// pool, sharding and phase-barrier logic remains fully instrumented —
// `go test -race` still proves the pipeline has no unintended races.
// go:norace covers only the annotated body (not callees or closures), so
// the helpers inline their dot products instead of calling mat.Dot, and
// go:noinline stops an instrumented caller from absorbing them.
func (m *Model) TrainPair(center, context, neg int, lr float64, s *NegSampler, rng *rand.Rand) float64 {
	in := m.In.Row(center)
	grad := make([]float64, len(in))
	loss := hogwildPairUpdate(in, m.Out.Row(context), grad, 1, lr)
	for k := 0; k < neg; k++ {
		n := s.Draw(rng)
		for tries := 0; n == context && tries < 4; tries++ {
			n = s.Draw(rng)
		}
		if n == context {
			continue
		}
		loss += hogwildPairUpdate(in, m.Out.Row(n), grad, 0, lr)
	}
	applyRowGrad(in, grad)
	return loss
}

// hogwildPairUpdate scores one (center, target) pair against label,
// updates the target's output row in place, and accumulates the center
// gradient into grad (applied once per pair by applyRowGrad). grad and
// the return value are goroutine-local; only in (read) and out
// (read/write) are shared. See the Hogwild contract on TrainPair.
//
//lint:finite-checked pair losses roll up into the iteration mean swept by the trainer's guard (transn/finite.go)
//go:norace
//go:noinline
func hogwildPairUpdate(in, out, grad []float64, label, lr float64) float64 {
	var dot float64
	for i := range in {
		dot += in[i] * out[i]
	}
	score := sigmoid(dot)
	g := (score - label) * lr
	var loss float64
	if label == 1 {
		loss = -math.Log(math.Max(score, 1e-10))
	} else {
		loss = -math.Log(math.Max(1-score, 1e-10))
	}
	for i := range in {
		grad[i] += g * out[i]
		out[i] -= g * in[i]
	}
	return loss
}

// applyRowGrad subtracts the accumulated center gradient from the shared
// input row. See the Hogwild contract on TrainPair.
//
//lint:finite-checked the written rows are sampled by the trainer's per-iteration guard (transn/finite.go)
//go:norace
//go:noinline
func applyRowGrad(in, grad []float64) {
	for i := range in {
		in[i] -= grad[i]
	}
}

// TrainCorpus runs one SGNS pass over the corpus using the given context
// offsets and returns the mean pair loss. lr is held constant within the
// pass; callers decay it across passes.
func (m *Model) TrainCorpus(paths [][]int, offsets []int, neg int, lr float64, s *NegSampler, rng *rand.Rand) float64 {
	loss, pairs := m.trainCorpus(paths, offsets, neg, lr, s, rng)
	if pairs == 0 {
		return 0
	}
	return loss / float64(pairs)
}

// trainCorpus is the shared pass body: it returns the summed pair loss
// and the pair count so sharded callers can combine shard means exactly.
func (m *Model) trainCorpus(paths [][]int, offsets []int, neg int, lr float64, s *NegSampler, rng *rand.Rand) (float64, int) {
	var loss float64
	var pairs int
	for _, p := range paths {
		for k, center := range p {
			for _, d := range offsets {
				j := k + d
				if j < 0 || j >= len(p) || p[j] == center {
					// Walks may revisit a node; a self-pair carries no
					// proximity information (and inflates norms when the
					// input and output tables are shared).
					continue
				}
				loss += m.TrainPair(center, p[j], neg, lr, s, rng)
				pairs++
			}
		}
	}
	return loss, pairs
}

// TrainCorpusParallel runs one SGNS pass with the corpus partitioned
// into `workers` contiguous shards, shard s training under the private
// RNG stream rngstream(seed, s). Two update disciplines are provided:
//
//   - Hogwild (deterministic=false, the default for training): shards
//     run concurrently on the worker pool and apply unsynchronized
//     updates to the shared In/Out tables, word2vec-style. Lock-free
//     and near-linear in workers, but nondeterministic for workers > 1
//     because shard interleaving varies run to run. See TrainPair for
//     why this is race-clean by construction.
//
//   - Deterministic sharded apply (deterministic=true): the same shard
//     partition and RNG streams, but shards are applied serially in
//     shard order. Byte-reproducible for a fixed (seed, workers) at the
//     cost of serializing the skip-gram updates; walk generation
//     upstream still parallelizes. Used by the determinism test suite
//     and by callers that need reproducible embeddings (experiments,
//     regression baselines).
//
// With workers <= 1 both modes reduce to TrainCorpus under stream
// (seed, 0) — the serial path. The negative sampler is shared and
// read-only. The returned loss is the mean pair loss across all shards;
// under Hogwild it is itself subject to the benign read races and may
// vary in the last bits between runs.
func (m *Model) TrainCorpusParallel(paths [][]int, offsets []int, neg int, lr float64, s *NegSampler, seed int64, workers int, deterministic bool) float64 {
	loss, _, _ := m.TrainCorpusParallelStats(paths, offsets, neg, lr, s, seed, workers, deterministic)
	return loss
}

// TrainCorpusParallelStats is TrainCorpusParallel plus the counters the
// telemetry layer reports: the number of (center, context) training
// pairs the pass applied — the throughput unit behind examples/sec —
// and the worker-pool timing breakdown. Shard losses and pair counts
// are accumulated shard-locally and merged here, after the barrier, so
// nothing is added to the Hogwild hot path. The embedding updates are
// identical to TrainCorpusParallel's for the same arguments.
func (m *Model) TrainCorpusParallelStats(paths [][]int, offsets []int, neg int, lr float64, s *NegSampler, seed int64, workers int, deterministic bool) (float64, int, par.Stats) {
	if workers <= 1 || len(paths) <= 1 {
		var loss float64
		var pairs int
		st := par.RunTimed(1, 1, func(int) {
			loss, pairs = m.trainCorpus(paths, offsets, neg, lr, s, rngstream.New(seed, 0))
		})
		if pairs == 0 {
			return 0, 0, st
		}
		return loss / float64(pairs), pairs, st
	}
	shards := workers
	if shards > len(paths) {
		shards = len(paths)
	}
	losses := make([]float64, shards)
	counts := make([]int, shards)
	train := func(sh int) {
		lo := sh * len(paths) / shards
		hi := (sh + 1) * len(paths) / shards
		losses[sh], counts[sh] = m.trainCorpus(paths[lo:hi], offsets, neg, lr, s, rngstream.New(seed, int64(sh)))
	}
	var st par.Stats
	if deterministic {
		st = par.RunTimed(1, shards, train)
	} else {
		st = par.RunTimed(workers, shards, train)
	}
	var loss float64
	var pairs int
	for sh := range losses {
		loss += losses[sh]
		pairs += counts[sh]
	}
	if pairs == 0 {
		return 0, 0, st
	}
	return loss / float64(pairs), pairs, st
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
