// Package skipgram implements the skip-gram objective (Equation 3) used
// by the paper's single-view algorithm and by the walk-based baselines.
// Context selection follows Definition 6: window 1 on homo-views and
// window 2 on heter-views. Two estimators of the softmax are provided:
// negative sampling (default, word2vec-style) and hierarchical softmax
// (matching the log₂ μ term of Theorem 1).
package skipgram

import (
	"math"
	"math/rand"

	"transn/internal/mat"
	"transn/internal/walk"
)

// Model holds input (node) and output (context) embedding tables. In is
// the embedding users read out; Out exists only during training.
type Model struct {
	In, Out *mat.Dense // numNodes × dim
}

// NewModel returns a model with word2vec-style initialization: In is
// Uniform(-0.5/dim, 0.5/dim), Out is zero.
func NewModel(numNodes, dim int, rng *rand.Rand) *Model {
	return &Model{
		In:  mat.EmbeddingInit(numNodes, dim, rng),
		Out: mat.New(numNodes, dim),
	}
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.In.C }

// NegSampler draws negative examples proportional to freq^0.75, the
// word2vec unigram smoothing.
type NegSampler struct {
	alias *walk.Alias
}

// NewNegSampler builds a sampler from raw frequency counts. Zero-count
// outcomes get a tiny floor so every node can be drawn.
func NewNegSampler(freq []float64) *NegSampler {
	w := make([]float64, len(freq))
	for i, f := range freq {
		if f <= 0 {
			f = 1e-3
		}
		w[i] = math.Pow(f, 0.75)
	}
	return &NegSampler{alias: walk.NewAlias(w)}
}

// Draw samples one negative node index.
func (s *NegSampler) Draw(rng *rand.Rand) int { return s.alias.Draw(rng) }

// CorpusFrequencies counts node occurrences over a path corpus of local
// indices in [0, numNodes).
func CorpusFrequencies(paths [][]int, numNodes int) []float64 {
	freq := make([]float64, numNodes)
	for _, p := range paths {
		for _, n := range p {
			freq[n]++
		}
	}
	return freq
}

// ContextOffsets returns Definition 6's context offsets: {−1, +1} for
// homo-views, {−2, −1, +1, +2} for heter-views.
func ContextOffsets(hetero bool) []int {
	if hetero {
		return []int{-2, -1, 1, 2}
	}
	return []int{-1, 1}
}

// SymmetricOffsets returns the offsets of a plain window of size w
// (±1..±w), used by the DeepWalk/node2vec/metapath2vec baselines.
func SymmetricOffsets(w int) []int {
	out := make([]int, 0, 2*w)
	for d := -w; d <= w; d++ {
		if d != 0 {
			out = append(out, d)
		}
	}
	return out
}

// TrainPair applies one SGNS update for (center, context): the positive
// pair is pushed together, neg sampled negatives are pushed apart. The
// binary cross-entropy loss of the update is returned. Negatives equal to
// the true context are re-drawn a bounded number of times.
func (m *Model) TrainPair(center, context, neg int, lr float64, s *NegSampler, rng *rand.Rand) float64 {
	in := m.In.Row(center)
	dim := len(in)
	grad := make([]float64, dim)
	var loss float64

	update := func(target int, label float64) {
		out := m.Out.Row(target)
		score := sigmoid(mat.Dot(in, out))
		g := (score - label) * lr
		if label == 1 {
			loss += -math.Log(math.Max(score, 1e-10))
		} else {
			loss += -math.Log(math.Max(1-score, 1e-10))
		}
		for i := 0; i < dim; i++ {
			grad[i] += g * out[i]
			out[i] -= g * in[i]
		}
	}

	update(context, 1)
	for k := 0; k < neg; k++ {
		n := s.Draw(rng)
		for tries := 0; n == context && tries < 4; tries++ {
			n = s.Draw(rng)
		}
		if n == context {
			continue
		}
		update(n, 0)
	}
	for i := 0; i < dim; i++ {
		in[i] -= grad[i]
	}
	return loss
}

// TrainCorpus runs one SGNS pass over the corpus using the given context
// offsets and returns the mean pair loss. lr is held constant within the
// pass; callers decay it across passes.
func (m *Model) TrainCorpus(paths [][]int, offsets []int, neg int, lr float64, s *NegSampler, rng *rand.Rand) float64 {
	var loss float64
	var pairs int
	for _, p := range paths {
		for k, center := range p {
			for _, d := range offsets {
				j := k + d
				if j < 0 || j >= len(p) || p[j] == center {
					// Walks may revisit a node; a self-pair carries no
					// proximity information (and inflates norms when the
					// input and output tables are shared).
					continue
				}
				loss += m.TrainPair(center, p[j], neg, lr, s, rng)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return loss / float64(pairs)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
