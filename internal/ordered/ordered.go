// Package ordered provides deterministic iteration over maps. Go
// randomizes map range order on every run, so any loop whose output
// order or float accumulation order matters must not range the map
// directly — transnlint's determinism.map-order analyzer flags those.
// Iterating Keys(m) is the sanctioned escape hatch: same elements,
// stable order, one small sorted-slice allocation.
package ordered

import (
	"cmp"
	"sort"
)

// Keys returns m's keys sorted ascending.
func Keys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//lint:ignore determinism.map-order keys are sorted before they are returned
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return cmp.Less(keys[i], keys[j]) })
	return keys
}

// KeysFunc returns m's keys sorted by less, for key types that are not
// cmp.Ordered (structs, arrays).
func KeysFunc[K comparable, V any](m map[K]V, less func(a, b K) bool) []K {
	keys := make([]K, 0, len(m))
	//lint:ignore determinism.map-order keys are sorted before they are returned
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return less(keys[i], keys[j]) })
	return keys
}
