package ordered

import (
	"reflect"
	"testing"
)

func TestKeysSorted(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	if got, want := Keys(m), []string{"a", "b", "c"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v", got, want)
	}
	ints := map[int32]bool{5: true, -1: true, 3: true}
	if got, want := Keys(ints), []int32{-1, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Keys = %v, want %v", got, want)
	}
}

func TestKeysEmpty(t *testing.T) {
	if got := Keys(map[string]int{}); len(got) != 0 {
		t.Errorf("Keys of empty map = %v", got)
	}
	if got := Keys[string, int](nil); len(got) != 0 {
		t.Errorf("Keys of nil map = %v", got)
	}
}

func TestKeysFunc(t *testing.T) {
	m := map[[2]int]float64{{2, 1}: 0, {1, 9}: 0, {1, 2}: 0}
	got := KeysFunc(m, func(a, b [2]int) bool {
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return a[1] < b[1]
	})
	want := [][2]int{{1, 2}, {1, 9}, {2, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("KeysFunc = %v, want %v", got, want)
	}
}
