package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"transn/internal/ann"
	"transn/internal/diag"
	"transn/internal/obs"
	"transn/internal/transn"
)

// EmbeddingResponse is the body of GET /v1/embedding.
type EmbeddingResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Node echoes the queried node name.
	Node string `json:"node"`
	// View is the view name for per-view queries, absent for the final
	// averaged embedding.
	View string `json:"view,omitempty"`
	// Dim is the embedding dimensionality.
	Dim int `json:"dim"`
	// Embedding is the requested vector.
	Embedding []float64 `json:"embedding"`
}

// TranslateResponse is the body of GET /v1/translate.
type TranslateResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Node echoes the queried node name.
	Node string `json:"node"`
	// From and To echo the source and target view names.
	From string `json:"from"`
	To   string `json:"to"`
	// Dim is the embedding dimensionality.
	Dim int `json:"dim"`
	// Embedding is T_{from→to}(node): the node's view-from embedding
	// pushed through the trained translator stack into view to's space.
	Embedding []float64 `json:"embedding"`
}

// KNNResponse is the body of GET /v1/knn.
type KNNResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Node echoes the queried node name.
	Node string `json:"node"`
	// K is the number of neighbors actually returned (≤ requested k).
	K int `json:"k"`
	// Neighbors is sorted by similarity descending, ties by node ID.
	Neighbors []Neighbor `json:"neighbors"`
}

// InferEdge is one edge of an unseen node in a POST /v1/infer body.
type InferEdge struct {
	// Neighbor is the name of an existing node the unseen node links to.
	Neighbor string `json:"neighbor"`
	// Type is the edge-type (view) name of the link.
	Type string `json:"type"`
	// Weight is the edge weight; omitted or 0 means 1.
	Weight float64 `json:"weight"`
}

// InferRequest is the body of POST /v1/infer.
type InferRequest struct {
	// Edges describes the unseen node's links into the trained graph.
	Edges []InferEdge `json:"edges"`
}

// InferResponse is the body of POST /v1/infer.
type InferResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Dim is the embedding dimensionality.
	Dim int `json:"dim"`
	// Embedding is the inferred final embedding of the unseen node.
	Embedding []float64 `json:"embedding"`
}

// ViewInfo summarizes one view in a ModelResponse.
type ViewInfo struct {
	// Name is the edge-type name that induces the view.
	Name string `json:"name"`
	// Nodes and Edges are the view's sizes.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Hetero reports a heter-view (two node types, Definition 4).
	Hetero bool `json:"hetero"`
}

// ModelResponse is the body of GET /v1/model: the served snapshot's
// shape, for API discovery.
type ModelResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Generation is the snapshot generation serving this response.
	Generation uint64 `json:"generation"`
	// Dim is the embedding dimensionality.
	Dim int `json:"dim"`
	// Nodes and Edges are the graph's sizes.
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Views lists every view the model was trained with.
	Views []ViewInfo `json:"views"`
	// Pairs lists the view-name pairs with trained translators.
	Pairs [][2]string `json:"pairs"`
}

// ReadyResponse is the body of GET /readyz.
type ReadyResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Ready is true when a snapshot is live and the server is not
	// draining.
	Ready bool `json:"ready"`
	// Generation is the live snapshot generation.
	Generation uint64 `json:"generation"`
	// Degraded lists the names of currently-tripped SLO watchdog rules,
	// sorted; absent when every rule holds (or no watchdog runs). A
	// degraded server still answers ready — degradation is a quality
	// signal for operators and canary analysis, not a routing decision.
	Degraded []string `json:"degraded,omitempty"`
}

// ReloadResponse is the body of POST /admin/reload.
type ReloadResponse struct {
	// Schema is always "transn.serve/v1".
	Schema string `json:"schema"`
	// Generation is the freshly loaded snapshot generation.
	Generation uint64 `json:"generation"`
}

// snapHandler is a snapshot-scoped endpoint body: it computes against
// the snapshot pointer grabbed at request start and returns a JSON
// payload or an *apiError. It must not touch the ResponseWriter — the
// middleware owns the write so a timed-out handler cannot race it.
type snapHandler func(s *snapshot, r *http.Request) (any, error)

// routes mounts every endpoint on the server mux.
func (sv *Server) routes() {
	sv.mux.Handle("/v1/embedding", sv.endpoint("embedding", http.MethodGet, sv.cfg.RequestTimeout, sv.handleEmbedding))
	sv.mux.Handle("/v1/translate", sv.endpoint("translate", http.MethodGet, sv.cfg.RequestTimeout, sv.handleTranslate))
	sv.mux.Handle("/v1/knn", sv.endpoint("knn", http.MethodGet, sv.cfg.RequestTimeout, sv.handleKNN))
	sv.mux.Handle("/v1/infer", sv.endpoint("infer", http.MethodPost, sv.cfg.RequestTimeout, sv.handleInfer))
	sv.mux.Handle("/v1/model", sv.endpoint("model", http.MethodGet, sv.cfg.RequestTimeout, sv.handleModel))
	sv.mux.Handle("/admin/selfcheck", sv.endpoint("selfcheck", http.MethodGet, sv.cfg.SelfcheckTimeout, sv.handleSelfcheck))
	sv.mux.HandleFunc("/admin/reload", sv.handleReload)
	sv.mux.HandleFunc("/healthz", sv.handleHealthz)
	sv.mux.HandleFunc("/readyz", sv.handleReadyz)
	sv.mux.HandleFunc("/debug/requests", sv.handleDebugRequests)
	sv.mux.HandleFunc("/debug/slow", sv.handleDebugSlow)
	sv.mux.HandleFunc("/debug/history", sv.handleDebugHistory)
	sv.mux.HandleFunc("/", sv.handleNotFound)
	sv.run.MountDebug(sv.mux)
}

// endpoint wraps a snapHandler with the serving middleware: request
// counting, correlation-ID settlement, tracing, method check, snapshot
// acquisition, the per-endpoint deadline, latency observation,
// error-envelope rendering and access/slow logging. The handler runs on
// its own goroutine; on timeout the client gets a 504 envelope while
// the computation finishes in the background (still populating the
// cache for the retry) — the trace is finalized at the deadline, so a
// still-open stage is recorded at its duration so far and the
// background goroutine's later stage marks land on atomics that nobody
// reads again (race-free by construction, verified under -race).
func (sv *Server) endpoint(name, method string, timeout time.Duration, h snapHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sv.reqs.Add(1)
		tr, reqID := sv.beginTrace(r, name)
		status := http.StatusOK
		outcome := obs.TraceOutcomeOK
		code := ""
		defer func() {
			elapsed := time.Since(start)
			sv.latency.Observe(elapsed.Seconds())
			if status >= 400 {
				sv.errs.Add(1)
			}
			sv.finishTrace(r, tr, reqID, name, outcome, status, code, elapsed)
		}()
		if reqID != "" {
			w.Header().Set(HeaderRequestID, reqID)
		}
		if r.Method != method {
			outcome, code = obs.TraceOutcomeError, CodeMethodNotAllowed
			status = writeError(w, reqID, errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
				"%s requires %s", r.URL.Path, method))
			return
		}
		tr.StartStage(obs.TraceStageSnapshot)
		snap := sv.snap.Load()
		if snap == nil || sv.draining.Load() {
			outcome, code = obs.TraceOutcomeError, CodeNotReady
			status = writeError(w, reqID, errf(http.StatusServiceUnavailable, CodeNotReady,
				"no snapshot is live (starting up or draining)"))
			return
		}
		tr.SetGeneration(snap.gen)
		tr.EndStage(obs.TraceStageSnapshot)
		if tr != nil {
			r = r.WithContext(withTrace(r.Context(), tr))
		}
		type result struct {
			v        any
			err      error
			panicked bool
		}
		ch := make(chan result, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					ch <- result{err: errf(http.StatusInternalServerError, CodeInternal,
						"handler panic: %v", p), panicked: true}
				}
			}()
			v, err := h(snap, r)
			ch <- result{v: v, err: err}
		}()
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case res := <-ch:
			if res.err != nil {
				outcome = obs.TraceOutcomeError
				if res.panicked {
					outcome = obs.TraceOutcomePanic
				}
				status = writeError(w, reqID, res.err)
				if ae, ok := res.err.(*apiError); ok {
					code = ae.code
				} else {
					code = CodeInternal
				}
				return
			}
			tr.StartStage(obs.TraceStageEncode)
			writeJSON(w, http.StatusOK, res.v)
			tr.EndStage(obs.TraceStageEncode)
		case <-timer.C:
			outcome, code = obs.TraceOutcomeTimeout, CodeTimeout
			status = writeError(w, reqID, errf(http.StatusGatewayTimeout, CodeTimeout,
				"request exceeded the %s deadline", timeout))
		}
	})
}

// handleEmbedding serves GET /v1/embedding?node=NAME[&view=VIEW]: the
// final averaged embedding (Section III-C), or the view-specific
// embedding when view is given.
func (sv *Server) handleEmbedding(s *snapshot, r *http.Request) (any, error) {
	tr := traceFrom(r.Context())
	tr.StartStage(obs.TraceStageDecode)
	name := r.URL.Query().Get("node")
	if name == "" {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "missing required parameter: node")
	}
	id, err := s.node(name)
	if err != nil {
		return nil, err
	}
	viewName := r.URL.Query().Get("view")
	tr.EndStage(obs.TraceStageDecode)
	resp := EmbeddingResponse{Schema: ErrorSchema, Node: name, Dim: s.frozen.Dim()}
	if viewName != "" {
		vi, err := s.view(viewName)
		if err != nil {
			return nil, err
		}
		tr.StartStage(obs.TraceStageForward)
		emb := s.frozen.ViewEmbedding(vi, id)
		tr.EndStage(obs.TraceStageForward)
		if emb == nil {
			return nil, errf(http.StatusNotFound, CodeUnknownNode,
				"node %q is not in view %q", name, viewName)
		}
		resp.View = viewName
		resp.Embedding = emb
		return resp, nil
	}
	tr.StartStage(obs.TraceStageForward)
	resp.Embedding = s.frozen.Final(id)
	tr.EndStage(obs.TraceStageForward)
	return resp, nil
}

// handleTranslate serves GET /v1/translate?node=NAME&from=VIEW&to=VIEW:
// the node's view-from embedding pushed through the trained translator
// stack T_{from→to} (Eqs. 8–10). Results are cached per snapshot and
// identical concurrent requests coalesce into one forward pass.
func (sv *Server) handleTranslate(s *snapshot, r *http.Request) (any, error) {
	tr := traceFrom(r.Context())
	tr.StartStage(obs.TraceStageDecode)
	q := r.URL.Query()
	name, fromName, toName := q.Get("node"), q.Get("from"), q.Get("to")
	if name == "" || fromName == "" || toName == "" {
		return nil, errf(http.StatusBadRequest, CodeBadRequest,
			"missing required parameter(s): node, from and to are all required")
	}
	id, err := s.node(name)
	if err != nil {
		return nil, err
	}
	from, err := s.view(fromName)
	if err != nil {
		return nil, err
	}
	to, err := s.view(toName)
	if err != nil {
		return nil, err
	}
	if from == to {
		return nil, errf(http.StatusBadRequest, CodeBadRequest,
			"from and to are the same view %q", fromName)
	}
	if _, ok := s.frozen.PairFor(from, to); !ok {
		return nil, errf(http.StatusNotFound, CodeUntrainedPair,
			"views %q and %q share no common nodes; no translator was trained", fromName, toName)
	}
	key := fmt.Sprintf("t|%d|%d|%d|%d", s.gen, from, to, id)
	tr.EndStage(obs.TraceStageDecode)
	vec, err := sv.cached(tr, s, key, func() ([]float64, error) {
		return s.frozen.TranslateNode(from, to, id)
	})
	if err != nil {
		if _, ok := err.(*apiError); !ok {
			// TranslateNode's remaining error is node-not-in-view.
			err = errf(http.StatusNotFound, CodeUnknownNode, "%v", err)
		}
		return nil, err
	}
	return TranslateResponse{
		Schema: ErrorSchema, Node: name, From: fromName, To: toName,
		Dim: len(vec), Embedding: vec,
	}, nil
}

// handleKNN serves GET /v1/knn?node=NAME[&k=N][&ef=N][&exact=BOOL]:
// the k nearest neighbors of the node's final embedding under cosine
// similarity. By default the snapshot's HNSW index answers (ef tunes
// the search beam; larger is more accurate and slower). exact=true is
// the escape hatch: a brute-force scan over the whole table, counted
// by serve.knn.exact_fallback.
func (sv *Server) handleKNN(s *snapshot, r *http.Request) (any, error) {
	tr := traceFrom(r.Context())
	tr.StartStage(obs.TraceStageDecode)
	q := r.URL.Query()
	name := q.Get("node")
	if name == "" {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "missing required parameter: node")
	}
	id, err := s.node(name)
	if err != nil {
		return nil, err
	}
	k := 10
	if ks := q.Get("k"); ks != "" {
		k, err = strconv.Atoi(ks)
		if err != nil || k < 1 {
			return nil, errf(http.StatusBadRequest, CodeBadRequest,
				"k must be a positive integer, got %q", ks)
		}
	}
	if k > sv.cfg.MaxK {
		return nil, errf(http.StatusBadRequest, CodeBadRequest,
			"k=%d exceeds the server cap of %d", k, sv.cfg.MaxK)
	}
	ef := 0
	if efs := q.Get("ef"); efs != "" {
		ef, err = strconv.Atoi(efs)
		if err != nil || ef < 1 || ef > ann.MaxEf {
			return nil, errf(http.StatusBadRequest, CodeBadRequest,
				"ef must be an integer in [1, %d], got %q", ann.MaxEf, efs)
		}
	}
	exact := false
	if es := q.Get("exact"); es != "" {
		exact, err = strconv.ParseBool(es)
		if err != nil {
			return nil, errf(http.StatusBadRequest, CodeBadRequest,
				"exact must be a boolean, got %q", es)
		}
	}
	tr.EndStage(obs.TraceStageDecode)
	tr.StartStage(obs.TraceStageForward)
	var nbrs []Neighbor
	if exact || s.index == nil {
		nbrs = s.knnExact(id, k)
		sv.knnFallback.Add(1)
	} else {
		var evals int
		nbrs, evals, err = s.knnIndex(id, k, ef)
		if err != nil {
			tr.EndStage(obs.TraceStageForward)
			return nil, errf(http.StatusInternalServerError, CodeANNSearch, "%v", err)
		}
		sv.annSearches.Add(1)
		sv.annDistEvals.Add(int64(evals))
	}
	tr.EndStage(obs.TraceStageForward)
	return KNNResponse{Schema: ErrorSchema, Node: name, K: len(nbrs), Neighbors: nbrs}, nil
}

// handleInfer serves POST /v1/infer: online fold-in of an unseen node
// from its edges into the trained graph (Model.InferNode). Identical
// concurrent payloads coalesce; results are cached per snapshot.
func (sv *Server) handleInfer(s *snapshot, r *http.Request) (any, error) {
	tr := traceFrom(r.Context())
	tr.StartStage(obs.TraceStageDecode)
	var req InferRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "decoding body: %v", err)
	}
	if len(req.Edges) == 0 {
		return nil, errf(http.StatusBadRequest, CodeBadRequest, "edges must be non-empty")
	}
	edges := make([]transn.NeighborEdge, 0, len(req.Edges))
	var key bytes.Buffer
	fmt.Fprintf(&key, "i|%d", s.gen)
	for _, e := range req.Edges {
		id, err := s.node(e.Neighbor)
		if err != nil {
			return nil, err
		}
		vi, err := s.view(e.Type)
		if err != nil {
			return nil, err
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, errf(http.StatusBadRequest, CodeBadRequest,
				"edge weight must be positive, got %g", w)
		}
		edges = append(edges, transn.NeighborEdge{
			Neighbor: id, Type: s.frozen.Views()[vi].Type, Weight: w,
		})
		fmt.Fprintf(&key, "|%d,%d,%s", id, vi, strconv.FormatFloat(w, 'g', -1, 64))
	}
	tr.EndStage(obs.TraceStageDecode)
	vec, err := sv.cached(tr, s, key.String(), func() ([]float64, error) {
		return s.frozen.InferNode(edges)
	})
	if err != nil {
		if _, ok := err.(*apiError); !ok {
			err = errf(http.StatusBadRequest, CodeBadRequest, "%v", err)
		}
		return nil, err
	}
	return InferResponse{Schema: ErrorSchema, Dim: len(vec), Embedding: vec}, nil
}

// handleModel serves GET /v1/model: the live snapshot's shape.
func (sv *Server) handleModel(s *snapshot, r *http.Request) (any, error) {
	tr := traceFrom(r.Context())
	tr.StartStage(obs.TraceStageForward)
	defer tr.EndStage(obs.TraceStageForward)
	g := s.frozen.Graph()
	resp := ModelResponse{
		Schema: ErrorSchema, Generation: s.gen, Dim: s.frozen.Dim(),
		Nodes: g.NumNodes(), Edges: g.NumEdges(), Pairs: [][2]string{},
	}
	for vi, v := range s.frozen.Views() {
		resp.Views = append(resp.Views, ViewInfo{
			Name: s.viewNames[vi], Nodes: v.NumNodes(), Edges: v.NumEdges(), Hetero: v.Hetero,
		})
	}
	for _, pr := range s.frozen.ViewPairs() {
		resp.Pairs = append(resp.Pairs, [2]string{s.viewNames[pr.I], s.viewNames[pr.J]})
	}
	return resp, nil
}

// handleSelfcheck serves GET /admin/selfcheck: embedding/translator
// health findings (internal/diag) against the live snapshot, as a
// transn.diagnostics/v1 document. Corpus analysis is skipped — it
// regenerates walk corpora, which is a training-scale cost.
func (sv *Server) handleSelfcheck(s *snapshot, r *http.Request) (any, error) {
	tr := traceFrom(r.Context())
	sp := sv.run.Trace.Start(obs.SpanServeSelfcheck)
	tr.StartStage(obs.TraceStageForward)
	doc := diag.Analyze(s.frozen.Model(), diag.Options{Name: "serve-selfcheck", SkipCorpus: true})
	tr.EndStage(obs.TraceStageForward)
	sp.End()
	var buf bytes.Buffer
	if err := diag.Write(&buf, doc); err != nil {
		return nil, errf(http.StatusInternalServerError, CodeInternal, "encoding diagnostics: %v", err)
	}
	return json.RawMessage(buf.Bytes()), nil
}

// handleReload serves POST /admin/reload: build a fresh snapshot from
// the configured paths and swap it in without dropping a request.
// SIGHUP triggers the same path in cmd/transnserve.
func (sv *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	sv.reqs.Add(1)
	if r.Method != http.MethodPost {
		sv.errs.Add(1)
		writeError(w, requestID(r), errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"/admin/reload requires POST"))
		return
	}
	if err := sv.Reload(); err != nil {
		sv.errs.Add(1)
		writeError(w, requestID(r), errf(http.StatusInternalServerError, CodeReloadFailed, "%v", err))
		return
	}
	writeJSON(w, http.StatusOK, ReloadResponse{Schema: ErrorSchema, Generation: sv.Generation()})
}

// handleHealthz serves GET /healthz: liveness. 200 whenever the process
// can answer at all, even while draining.
func (sv *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz serves GET /readyz: readiness. 200 with the live
// generation while serving; 503 not_ready while starting or draining,
// so load balancers drain before Shutdown closes the listener.
func (sv *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := sv.snap.Load()
	if snap == nil || sv.draining.Load() {
		writeError(w, requestID(r), errf(http.StatusServiceUnavailable, CodeNotReady,
			"no snapshot is live (starting up or draining)"))
		return
	}
	writeJSON(w, http.StatusOK, ReadyResponse{
		Schema: ErrorSchema, Ready: true, Generation: snap.gen,
		Degraded: sv.watchdog.Degraded(),
	})
}

// handleNotFound answers unknown paths with the typed envelope instead
// of Go's default plain-text 404.
func (sv *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	sv.reqs.Add(1)
	sv.errs.Add(1)
	writeError(w, requestID(r), errf(http.StatusNotFound, CodeNotFound, "no such route: %s", r.URL.Path))
}

// cached looks key up in the snapshot's LRU, and on a miss computes it
// through the coalescer (deduplicating identical in-flight requests and
// bounding translator concurrency) before caching the result. The
// request's trace records the lookup as the cache stage and, on a miss,
// the coalescer records the wait and forward stages.
func (sv *Server) cached(tr *obs.ReqTrace, s *snapshot, key string, fn func() ([]float64, error)) ([]float64, error) {
	tr.StartStage(obs.TraceStageCache)
	vec, ok := s.cache.get(key)
	tr.EndStage(obs.TraceStageCache)
	if ok {
		sv.hits.Add(1)
		tr.SetCacheHit()
		return vec, nil
	}
	sv.misses.Add(1)
	return sv.coal.do(tr, key, func() ([]float64, error) {
		vec, err := fn()
		if err != nil {
			return nil, err
		}
		s.cache.put(key, vec)
		return vec, nil
	})
}
