package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"transn/internal/ann"
	"transn/internal/graph"
	"transn/internal/mat"
	"transn/internal/snapfmt"
	"transn/internal/transn"
)

// packSnapFile packs m into a transn.snap/v1 file in dir, optionally
// embedding a default-parameter HNSW index, and returns its path.
func packSnapFile(t testing.TB, m *transn.Model, dir, name string, withANN bool) string {
	t.Helper()
	src, err := snapfmt.FromModel(m, m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if withANN {
		idx, err := ann.Build(src.Final, ann.Norms(src.Final), ann.Config{})
		if err != nil {
			t.Fatal(err)
		}
		src.ANN = idx.AppendTo(nil)
	}
	sp := filepath.Join(dir, name)
	f, err := os.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapfmt.Pack(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return sp
}

// getBody fetches url and returns the raw response body, requiring the
// given status.
func getBody(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

// TestSnapFormatServesIdentically pins the format-equivalence contract:
// a server booted from a packed .snap file answers byte-for-byte the
// same responses as one booted from the training gob — with and without
// an embedded ANN section (absent, the server builds the same index
// from the same table with the same default parameters and seed).
func TestSnapFormatServesIdentically(t *testing.T) {
	dir := t.TempDir()
	gp, mp, m := writeModelFiles(t, dir, 1)
	svGob, err := New(Config{GraphPath: gp, ModelPath: mp})
	if err != nil {
		t.Fatal(err)
	}
	defer svGob.Shutdown()
	tsGob := httptest.NewServer(svGob.Handler())
	defer tsGob.Close()

	paths := []string{
		"/v1/embedding?node=A1",
		"/v1/embedding?node=A3&view=affiliation",
		"/v1/translate?node=A1&from=authorship&to=affiliation",
		"/v1/knn?node=A1&k=3",
		"/v1/knn?node=A1&k=3&exact=true",
		"/v1/knn?node=P2&k=5&ef=32",
		"/v1/model",
	}
	for _, withANN := range []bool{false, true} {
		sp := packSnapFile(t, m, dir, fmt.Sprintf("model-%v.snap", withANN), withANN)
		svSnap, err := New(Config{GraphPath: gp, ModelPath: sp, SnapshotFormat: FormatSnap})
		if err != nil {
			t.Fatal(err)
		}
		tsSnap := httptest.NewServer(svSnap.Handler())
		for _, p := range paths {
			want := getBody(t, tsGob.URL+p, 200)
			got := getBody(t, tsSnap.URL+p, 200)
			if string(got) != string(want) {
				t.Errorf("withANN=%v GET %s differs:\nsnap: %s\ngob:  %s", withANN, p, got, want)
			}
		}
		if svSnap.snapLoads.Value() != 1 {
			t.Errorf("snap.loads = %d, want 1", svSnap.snapLoads.Value())
		}
		tsSnap.Close()
		svSnap.Shutdown()
	}
}

// TestKNNParams pins /v1/knn's ef and exact parameter contract: bad
// values are 400 bad_request, exact=true counts an exact fallback, and
// the default path counts ANN searches and distance evaluations.
func TestKNNParams(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	for _, bad := range []string{
		"/v1/knn?node=A1&ef=0",
		"/v1/knn?node=A1&ef=nope",
		"/v1/knn?node=A1&ef=-3",
		fmt.Sprintf("/v1/knn?node=A1&ef=%d", ann.MaxEf+1),
		"/v1/knn?node=A1&exact=banana",
	} {
		body := getBody(t, ts.URL+bad, 400)
		if want := `"code": "bad_request"`; !contains(body, want) {
			t.Errorf("GET %s: envelope %s does not carry %s", bad, body, want)
		}
	}

	getBody(t, ts.URL+"/v1/knn?node=A1&k=3&exact=true", 200)
	if got := sv.knnFallback.Value(); got != 1 {
		t.Fatalf("serve.knn.exact_fallback = %d, want 1", got)
	}
	if got := sv.annSearches.Value(); got != 0 {
		t.Fatalf("ann.searches = %d before any ann query", got)
	}
	getBody(t, ts.URL+"/v1/knn?node=A1&k=3&ef=16", 200)
	if got := sv.annSearches.Value(); got != 1 {
		t.Fatalf("ann.searches = %d, want 1", got)
	}
	if got := sv.annDistEvals.Value(); got <= 0 {
		t.Fatalf("ann.dist_evals = %d, want > 0", got)
	}
	if got := sv.knnFallback.Value(); got != 1 {
		t.Fatalf("serve.knn.exact_fallback moved to %d on the ann path", got)
	}
}

func contains(b []byte, sub string) bool {
	return len(sub) == 0 || len(b) >= len(sub) && stringsIndex(string(b), sub) >= 0
}

func stringsIndex(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// syntheticModelFiles builds an untrained but structurally valid
// single-view model over a chain graph, large enough that its float
// tables dominate every fixed loading cost, and writes graph TSV, gob
// and .snap (with embedded ANN) files.
func syntheticModelFiles(t testing.TB, dir string, nodes, dim int) (gp, mp, sp string, floatBytes uint64) {
	t.Helper()
	b := graph.NewBuilder()
	nt := b.NodeType("item")
	et := b.EdgeType("link")
	ids := make([]graph.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		ids[i] = b.AddNode(nt, fmt.Sprintf("n%06d", i))
	}
	for i := 1; i < nodes; i++ {
		b.AddEdge(ids[i-1], ids[i], et, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := transn.DefaultConfig()
	cfg.Dim = dim
	cfg.Seed = 7
	m, err := transn.FromExport(transn.Export{
		Cfg:    cfg,
		EmbIn:  []*mat.Dense{ann.RandomTable(nodes, dim, 11)},
		EmbOut: []*mat.Dense{ann.RandomTable(nodes, dim, 12)},
		TransW: [][2][]*mat.Dense{},
		TransB: [][2][]*mat.Dense{},
	}, g)
	if err != nil {
		t.Fatal(err)
	}

	gp = filepath.Join(dir, "graph.tsv")
	gf, err := os.Create(gp)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Store(gf, g); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	mp = filepath.Join(dir, "model.gob")
	mf, err := os.Create(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	sp = packSnapFile(t, m, dir, "model.snap", true)
	// in + out + final tables, float64 each.
	floatBytes = uint64(3 * nodes * dim * 8)
	return gp, mp, sp, floatBytes
}

// reloadAllocs measures the heap bytes one Reload allocates.
func reloadAllocs(t *testing.T, sv *Server) uint64 {
	t.Helper()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := sv.Reload(); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestSnapReloadAllocationBounded pins the O(header) reload contract
// (DESIGN.md §14): reloading from a mapped .snap must not
// re-materialize the model's float tables, while the gob path
// necessarily decodes and re-averages all of them. The snap reload's
// allocations are bounded by the per-node index structures (norms, name
// maps) — a small fraction of the table bytes — regardless of Dim.
func TestSnapReloadAllocationBounded(t *testing.T) {
	const nodes, dim = 3000, 256
	dir := t.TempDir()
	gp, mp, sp, floatBytes := syntheticModelFiles(t, dir, nodes, dim)
	quiet := Config{
		GraphPath: gp, ModelPath: mp,
		TraceDisabled: true, HistoryDisabled: true, RuntimePollInterval: -1,
	}
	svGob, err := New(quiet)
	if err != nil {
		t.Fatal(err)
	}
	defer svGob.Shutdown()
	snapCfg := quiet
	snapCfg.ModelPath = sp
	snapCfg.SnapshotFormat = FormatSnap
	svSnap, err := New(snapCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svSnap.Shutdown()
	if svSnap.snapMapped.Value() == 0 {
		t.Skip("snap file is not mmapped on this platform; the copying fallback re-materializes tables by design")
	}

	gobAllocs := reloadAllocs(t, svGob)
	snapAllocs := reloadAllocs(t, svSnap)
	t.Logf("float tables = %d bytes; gob reload = %d bytes; snap reload = %d bytes",
		floatBytes, gobAllocs, snapAllocs)
	if gobAllocs < floatBytes {
		t.Fatalf("gob reload allocated %d bytes, below the %d-byte float tables — the baseline cannot detect re-materialization", gobAllocs, floatBytes)
	}
	if snapAllocs > floatBytes/4 {
		t.Fatalf("snap reload allocated %d bytes, more than a quarter of the %d-byte float tables — tables are being re-materialized", snapAllocs, floatBytes)
	}
}

// TestSnapReloadMidTraffic hot-reloads a snap-format server while k-NN
// and embedding traffic is in flight: every request must succeed and
// the generation must advance — no request may observe a torn snapshot
// or an unmapped table.
func TestSnapReloadMidTraffic(t *testing.T) {
	dir := t.TempDir()
	gp, _, m := writeModelFiles(t, dir, 1)
	sp := packSnapFile(t, m, dir, "model.snap", true)
	sv, err := New(Config{GraphPath: gp, ModelPath: sp, SnapshotFormat: FormatSnap})
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Shutdown()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range []string{"/v1/knn?node=A1&k=3", "/v1/embedding?node=P1"} {
					resp, err := http.Get(ts.URL + p)
					if err != nil {
						errCh <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errCh <- fmt.Errorf("GET %s = %d mid-reload", p, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 5; i++ {
		if err := sv.Reload(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if got := sv.Generation(); got != 6 {
		t.Fatalf("generation = %d after 5 reloads, want 6", got)
	}
	if got := sv.snapLoads.Value(); got != 6 {
		t.Fatalf("snap.loads = %d, want 6", got)
	}
}
