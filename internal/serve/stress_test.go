package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"transn/internal/obs"
	"transn/internal/rngstream"
)

// TestServeStressCacheCoalescerAcrossReloads hammers the LRU cache and
// the request coalescer from many goroutines while another goroutine
// hot-swaps the snapshot over and over. A deliberately tiny cache
// forces constant eviction churn, few translate workers force constant
// coalescing, and the key set is small so concurrent clients collide on
// the same in-flight computations across generation boundaries — the
// exact LRU/coalescer/reload interaction the e2e test's modest traffic
// never reaches. Run under -race this is the serving path's data-race
// sweep (CI's race-full job); the functional assertions are zero
// non-2xx responses and a cache that never exceeds capacity.
func TestServeStressCacheCoalescerAcrossReloads(t *testing.T) {
	const cacheCap = 8
	sv, _ := newTestServer(t, Config{CacheSize: cacheCap, TranslateWorkers: 2})
	h := sv.Handler()

	clients, opsPerClient, reloads := 12, 150, 25
	if testing.Short() {
		clients, opsPerClient, reloads = 4, 40, 8
	}

	// A small rotating target set: repeated translate keys exercise the
	// coalescer, distinct node/k combinations churn the 8-entry LRU,
	// and infer adds POST traffic with a cacheable body.
	getTargets := []string{
		"/v1/embedding?node=A1",
		"/v1/embedding?node=A2",
		"/v1/embedding?node=A3&view=affiliation",
		"/v1/translate?node=A1&from=authorship&to=affiliation",
		"/v1/translate?node=A3&from=authorship&to=affiliation",
		"/v1/translate?node=A1&from=affiliation&to=authorship",
		"/v1/knn?node=A1&k=2",
		"/v1/knn?node=A2&k=3",
		"/v1/model",
	}
	inferBodies := []string{
		`{"edges":[{"neighbor":"P1","type":"authorship"}]}`,
		`{"edges":[{"neighbor":"U1","type":"affiliation","weight":2}]}`,
		`{"edges":[{"neighbor":"P1","type":"authorship"},{"neighbor":"U1","type":"affiliation"}]}`,
	}

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
		firstErr sync.Once
		errMsg   atomic.Value
	)
	record := func(format string, args ...any) {
		failures.Add(1)
		firstErr.Do(func() { errMsg.Store(fmt.Sprintf(format, args...)) })
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rngstream.New(7, int64(c))
			for i := 0; i < opsPerClient; i++ {
				var rec *httptest.ResponseRecorder
				if rng.Intn(4) == 0 {
					body := inferBodies[rng.Intn(len(inferBodies))]
					rec = httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(body)))
				} else {
					target := getTargets[rng.Intn(len(getTargets))]
					rec = httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				}
				if rec.Code != http.StatusOK {
					record("client %d op %d: %d %s", c, i, rec.Code, rec.Body)
					return
				}
			}
		}(c)
	}

	// The reload goroutine swaps generations as fast as it can while
	// the clients run: every swap drops a fresh empty cache in and
	// leaves in-flight requests on the old snapshot.
	reloadDone := make(chan int, 1)
	go func() {
		n := 0
		for r := 0; r < reloads; r++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
			if rec.Code != http.StatusOK {
				record("reload %d: %d %s", r, rec.Code, rec.Body)
				break
			}
			n++
		}
		reloadDone <- n
	}()

	wg.Wait()
	okReloads := <-reloadDone
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d failed requests under stress; first: %s", n, errMsg.Load())
	}
	if okReloads != reloads {
		t.Fatalf("only %d/%d reloads succeeded", okReloads, reloads)
	}
	if gen := sv.Generation(); gen != uint64(1+reloads) {
		t.Fatalf("generation = %d after %d reloads, want %d", gen, reloads, 1+reloads)
	}
	if n := sv.snap.Load().cache.len(); n > cacheCap {
		t.Fatalf("live cache len = %d exceeds capacity %d", n, cacheCap)
	}

	// Telemetry stayed coherent: request accounting covers the traffic,
	// nothing tripped the error counter, and the coalescer + cache
	// counters are visible for the load harness to scrape.
	snap := sv.run.Reg.Snapshot()
	wantReqs := int64(clients*opsPerClient + reloads)
	if got := snap.Counters[obs.MetricServeRequests]; got < wantReqs {
		t.Fatalf("serve.requests = %d, want >= %d", got, wantReqs)
	}
	if got := snap.Counters[obs.MetricServeErrors]; got != 0 {
		t.Fatalf("serve.errors = %d, want 0", got)
	}
	if got := snap.Counters[obs.MetricServeReloads]; got != int64(reloads) {
		t.Fatalf("serve.reloads = %d, want %d", got, reloads)
	}
	misses := snap.Counters[obs.MetricServeCacheMisses]
	if misses == 0 {
		t.Fatal("no cache misses recorded; the stress mix never computed anything")
	}

	// Drain the endpoint-timeout goroutines the middleware spawned: a
	// final serial pass keeps -race happy about anything still finishing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-stress request failed: %d", rec.Code)
	}
}

// TestServeStressSameKeyAcrossReload aims every client at one translate
// key while reloads swap the snapshot beneath them, maximizing the
// window where a coalesced flight started on generation g completes
// while generation g+1 is already live. Every response must still be a
// 200 with a full-dimension embedding.
func TestServeStressSameKeyAcrossReload(t *testing.T) {
	sv, m := newTestServer(t, Config{CacheSize: 2, TranslateWorkers: 1})
	h := sv.Handler()
	const target = "/v1/translate?node=A1&from=authorship&to=affiliation"

	clients, ops, reloads := 8, 60, 12
	if testing.Short() {
		clients, ops, reloads = 4, 20, 4
	}
	var wg sync.WaitGroup
	var bad atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
				if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"embedding"`) {
					bad.Add(1)
					return
				}
			}
		}()
	}
	for r := 0; r < reloads; r++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("reload %d: %d %s", r, rec.Code, rec.Body)
		}
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d bad responses on the shared key across reloads", n)
	}
	// The model dimension survived every swap (same files, same shape).
	if dim := m.Cfg.Dim; dim <= 0 {
		t.Fatalf("model dim = %d", dim)
	}
}
