package serve

import (
	"io"
	"log/slog"
	"net/http"

	"transn/internal/obs"
)

// handleDebugHistory serves GET /debug/history: the metrics flight
// recorder's two rings as a transn.history/v1 dump. 404 when the
// recorder is disabled.
func (sv *Server) handleDebugHistory(w http.ResponseWriter, r *http.Request) {
	sv.reqs.Add(1)
	if r.Method != http.MethodGet {
		sv.errs.Add(1)
		writeError(w, requestID(r), errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s requires GET", r.URL.Path))
		return
	}
	if sv.history == nil {
		sv.errs.Add(1)
		writeError(w, requestID(r), errf(http.StatusNotFound, CodeNotFound,
			"metrics history is disabled on this server"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if id := requestID(r); id != "" {
		w.Header().Set(HeaderRequestID, id)
	}
	if err := obs.WriteHistoryDump(w, sv.history.Dump()); err != nil {
		// Headers are already committed; nothing useful left to send.
		return
	}
}

// captureAnomaly is the watchdog's OnTrip hook: freeze the black box.
// The bundle carries the heap and goroutine profiles plus the current
// history dump and — when tracing is on — the slow-ring dump, so an
// incident leaves behind both the curves that degraded and the requests
// that were slow while they did. Capture failures are logged, never
// fatal: a full disk must not take the serving path down with it.
func (sv *Server) captureAnomaly(ev obs.WatchEvent) {
	if sv.anomalies == nil {
		return
	}
	extras := map[string]func(io.Writer) error{
		"history.json": func(w io.Writer) error {
			return obs.WriteHistoryDump(w, sv.history.Dump())
		},
	}
	if sv.traces != nil {
		extras["slow.json"] = func(w io.Writer) error {
			return obs.WriteTraceDump(w, sv.traces.DumpSlow())
		}
	}
	dir, err := sv.anomalies.Capture(ev, extras)
	if sv.log == nil {
		return
	}
	switch {
	case err != nil:
		sv.log.Warn("anomaly capture failed",
			slog.String(obs.LogKeyRule, ev.Rule),
			slog.String(obs.LogKeyError, err.Error()))
	case dir != "":
		sv.log.Warn("anomaly bundle captured",
			slog.String(obs.LogKeyRule, ev.Rule),
			slog.String(obs.LogKeyCode, ev.Code),
			slog.String(obs.LogKeyAnomalyDir, dir))
	}
}
