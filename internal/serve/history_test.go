package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"transn/internal/obs"
)

func floatPtr(v float64) *float64 { return &v }

func TestDebugHistoryEndpoint(t *testing.T) {
	sv, _ := newTestServer(t, Config{HistoryFineInterval: 5 * time.Millisecond})

	// A little traffic so the curves carry signal.
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("embedding request = %d", rec.Code)
		}
	}

	// Wait for the sampler to take at least two fine samples (a delta).
	deadline := time.Now().Add(5 * time.Second)
	for sv.history.Dump().Resolutions[0].Taken < 2 {
		if time.Now().After(deadline) {
			t.Fatal("fine sampler took no samples")
		}
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/history", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/history = %d, body %s", rec.Code, rec.Body.String())
	}
	body, err := io.ReadAll(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateHistoryDump(body); err != nil {
		t.Fatalf("served dump invalid: %v", err)
	}
	var dump obs.HistoryDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	fine := dump.Resolutions[0]
	series, ok := fine.Counters[obs.MetricServeRequests]
	if !ok || len(series) == 0 {
		t.Fatal("dump has no serve.requests series")
	}
	if series[len(series)-1] < 3 {
		t.Fatalf("newest serve.requests reading = %d, want >= 3", series[len(series)-1])
	}
	if _, ok := fine.Quantiles[obs.MetricServeLatency]; !ok {
		t.Fatal("dump has no latency quantile series")
	}
	// Runtime gauges are registered before the history resolves its set.
	if _, ok := fine.Gauges[obs.MetricRuntimeHeapAlloc]; !ok {
		t.Fatal("dump does not track the runtime heap gauge")
	}
	// So are the watchdog's own metrics.
	if _, ok := fine.Counters[obs.MetricWatchTrips]; !ok {
		t.Fatal("dump does not track watch.trips")
	}

	// Non-GET is rejected with the standard error envelope.
	rec = httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/history", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/history = %d, want 405", rec.Code)
	}
}

func TestDebugHistoryDisabled(t *testing.T) {
	sv, _ := newTestServer(t, Config{HistoryDisabled: true})
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/history", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/history on a disabled recorder = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "disabled") {
		t.Fatalf("404 body does not explain: %s", rec.Body.String())
	}
}

func TestWatchRulesRequireHistory(t *testing.T) {
	dir := t.TempDir()
	gp, mp, _ := writeModelFiles(t, dir, 1)
	_, err := New(Config{
		GraphPath: gp, ModelPath: mp,
		HistoryDisabled: true,
		WatchRules: &obs.WatchConfig{Rules: []obs.WatchRule{
			{Name: "r", WindowSeconds: 60, MaxHeapBytes: floatPtr(1)},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "history") {
		t.Fatalf("watchdog without history: err = %v, want history-recorder error", err)
	}
}

// TestWatchdogDegradesReadyzAndCapturesBundle boots a server with an
// impossible heap budget (1 byte): the runtime poller publishes the
// real heap size synchronously at startup, so the rule must trip as
// soon as the recorder holds a judgeable window. The trip must surface
// in /readyz's degraded detail and leave a complete anomaly bundle.
func TestWatchdogDegradesReadyzAndCapturesBundle(t *testing.T) {
	anomalyDir := t.TempDir()
	sv, _ := newTestServer(t, Config{
		HistoryFineInterval: 5 * time.Millisecond,
		WatchInterval:       5 * time.Millisecond,
		WatchRules: &obs.WatchConfig{Rules: []obs.WatchRule{
			{Name: "impossible-heap", WindowSeconds: 60, MaxHeapBytes: floatPtr(1)},
		}},
		AnomalyDir:      anomalyDir,
		AnomalyCooldown: time.Hour,
	})

	deadline := time.Now().Add(5 * time.Second)
	for len(sv.watchdog.Degraded()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("impossible heap rule never tripped")
		}
		time.Sleep(time.Millisecond)
	}

	// /readyz stays 200 (degraded is a quality signal, not a routing
	// decision) and carries the tripped rule's name.
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200 while degraded", rec.Code)
	}
	var ready ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready {
		t.Fatal("degraded server reported not ready")
	}
	if len(ready.Degraded) != 1 || ready.Degraded[0] != "impossible-heap" {
		t.Fatalf("readyz degraded = %v, want [impossible-heap]", ready.Degraded)
	}

	// The trip captured a bundle with profiles and dumps. The capture
	// runs on the watchdog goroutine, so poll for its completion marker
	// (the last extra written, slow.json).
	var bundle string
	for bundle == "" {
		if time.Now().After(deadline) {
			t.Fatal("no anomaly bundle appeared")
		}
		entries, err := os.ReadDir(anomalyDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), "anomaly-") {
				if _, err := os.Stat(filepath.Join(anomalyDir, e.Name(), "slow.json")); err == nil {
					bundle = filepath.Join(anomalyDir, e.Name())
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !strings.HasSuffix(bundle, "-impossible-heap") {
		t.Fatalf("bundle dir %q not named after the rule", bundle)
	}
	for _, name := range []string{"watchdog.json", "heap.pprof", "goroutine.pprof", "history.json", "slow.json"} {
		fi, err := os.Stat(filepath.Join(bundle, name))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("bundle file %s is empty", name)
		}
	}
	data, err := os.ReadFile(filepath.Join(bundle, "watchdog.json"))
	if err != nil {
		t.Fatal(err)
	}
	var ev obs.WatchEvent
	if err := json.Unmarshal(data, &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Rule != "impossible-heap" || ev.Code != obs.WatchCodeHeap || ev.Observed <= ev.Budget {
		t.Fatalf("watchdog.json = %+v, want a heap-ceiling violation", ev)
	}
	history, err := os.ReadFile(filepath.Join(bundle, "history.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateHistoryDump(history); err != nil {
		t.Fatalf("bundled history dump invalid: %v", err)
	}
}

// TestRuntimePollCleanStop pins the -runtime-poll contract: a positive
// interval polls and stops cleanly, and Shutdown stops every background
// sampler (runtime poller, history, watchdog) exactly once.
func TestRuntimePollCleanStop(t *testing.T) {
	sv, _ := newTestServer(t, Config{
		RuntimePollInterval: 2 * time.Millisecond,
		HistoryFineInterval: 2 * time.Millisecond,
		WatchInterval:       2 * time.Millisecond,
		WatchRules: &obs.WatchConfig{Rules: []obs.WatchRule{
			{Name: "r", WindowSeconds: 60, MaxHeapBytes: floatPtr(1)},
		}},
	})
	// The poller publishes a first reading synchronously.
	dump := sv.history.Dump()
	if _, ok := dump.Resolutions[0].Gauges[obs.MetricRuntimeGoroutines]; !ok {
		t.Fatal("runtime gauges not tracked by the recorder")
	}
	if err := sv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	taken := sv.history.Dump().Resolutions[0].Taken
	time.Sleep(10 * time.Millisecond)
	if got := sv.history.Dump().Resolutions[0].Taken; got != taken {
		t.Fatalf("history sampler survived Shutdown: taken %d -> %d", taken, got)
	}
	// The stop functions are idempotent: the test cleanup calls them again.
}
