package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"transn/internal/obs"
)

// HeaderRequestID is the request-correlation header. Clients may supply
// their own ID (transnload does, so its client-side observations join
// against server-side traces); otherwise the server generates one.
// Either way the ID is echoed on the response, embedded in any error
// envelope, and stamped on the request's trace and log lines.
const HeaderRequestID = "X-Transn-Request-Id"

// traceCtxKey is the context key the middleware threads the live
// *obs.ReqTrace under. An unexported struct key — no collisions.
type traceCtxKey struct{}

// withTrace returns a context carrying tr.
func withTrace(ctx context.Context, tr *obs.ReqTrace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// traceFrom extracts the request's trace, nil when tracing is disabled
// (every ReqTrace method is nil-safe, so handlers never check).
func traceFrom(ctx context.Context) *obs.ReqTrace {
	tr, _ := ctx.Value(traceCtxKey{}).(*obs.ReqTrace)
	return tr
}

// requestID returns the client-supplied correlation ID, if any.
func requestID(r *http.Request) string {
	return r.Header.Get(HeaderRequestID)
}

// reqIDGen mints server-side request IDs: a per-process random prefix
// (so IDs from restarted servers never collide in aggregated logs) plus
// an atomic sequence number.
type reqIDGen struct {
	prefix string
	seq    atomic.Uint64
}

// newReqIDGen seeds the generator's process prefix.
func newReqIDGen() *reqIDGen {
	var b [4]byte
	prefix := "srv0"
	if _, err := crand.Read(b[:]); err == nil {
		prefix = hex.EncodeToString(b[:])
	}
	return &reqIDGen{prefix: prefix}
}

// next mints one ID, e.g. "a3f09b21-000042".
func (g *reqIDGen) next() string {
	return fmt.Sprintf("%s-%06d", g.prefix, g.seq.Add(1))
}

// beginTrace starts the request's trace and settles its correlation ID:
// the client's header if present, a minted one otherwise. With tracing
// disabled it returns (nil, client-ID) and — when the client sent no
// header — performs no allocation at all (the zero-alloc pin in
// trace_test.go holds this middleware path to exactly 0 allocs/req).
func (sv *Server) beginTrace(r *http.Request, endpoint string) (*obs.ReqTrace, string) {
	id := requestID(r)
	if sv.traces == nil {
		return nil, id
	}
	if id == "" {
		id = sv.ids.next()
	}
	return sv.traces.Begin(id, endpoint), id
}

// finishTrace finalizes the trace (closing any still-open stage — a
// timed-out forward pass is recorded at its duration so far), routes
// the record to the sampled/slow rings, and emits the structured access
// and slow-request logs. Nil-safe on every component: with tracing and
// logging both disabled it reduces to two nil checks.
func (sv *Server) finishTrace(r *http.Request, tr *obs.ReqTrace, id, endpoint string,
	outcome obs.TraceOutcome, status int, code string, elapsed time.Duration) {
	rec, kept := sv.traces.Finish(tr, outcome, status, code)
	if sv.log == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String(obs.LogKeyRequestID, id),
		slog.String(obs.LogKeyEndpoint, endpoint),
		slog.String(obs.LogKeyMethod, r.Method),
		slog.String(obs.LogKeyPath, r.URL.Path),
		slog.Int(obs.LogKeyStatus, status),
		slog.String(obs.LogKeyOutcome, string(outcome)),
		slog.Float64(obs.LogKeyDurationMS, float64(elapsed)/float64(time.Millisecond)),
	)
	if code != "" {
		attrs = append(attrs, slog.String(obs.LogKeyCode, code))
	}
	if kept {
		attrs = append(attrs,
			slog.Bool(obs.LogKeyCacheHit, rec.CacheHit),
			slog.Bool(obs.LogKeyCoalesced, rec.Coalesced),
			slog.Uint64(obs.LogKeyGeneration, rec.Generation),
		)
	}
	ctx := context.Background()
	sv.log.LogAttrs(ctx, obs.LogLevelAccess, "request", attrs...)
	if kept && rec.Slow {
		stageAttrs := make([]any, 0, len(rec.Stages))
		for _, s := range obs.TraceStages() {
			if sec, ok := rec.Stages[string(s)]; ok {
				stageAttrs = append(stageAttrs, slog.Float64(string(s), sec*1e3))
			}
		}
		attrs = append(attrs,
			slog.Float64(obs.LogKeySlowThresholdMS,
				float64(sv.traces.SlowThreshold())/float64(time.Millisecond)),
			slog.Group(obs.LogKeyStages, stageAttrs...),
		)
		sv.log.LogAttrs(ctx, obs.LogLevelSlow, "slow request", attrs...)
	}
}

// handleDebugRequests serves GET /debug/requests: the sampled trace
// ring as a transn.trace.serve/v1 dump. 404 when tracing is disabled.
func (sv *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	sv.serveTraceDump(w, r, (*obs.TraceLog).DumpRequests)
}

// handleDebugSlow serves GET /debug/slow: the always-kept slow-request
// ring as a transn.trace.serve/v1 dump. 404 when tracing is disabled.
func (sv *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	sv.serveTraceDump(w, r, (*obs.TraceLog).DumpSlow)
}

// serveTraceDump renders one trace ring dump with the usual envelope
// discipline for error paths.
func (sv *Server) serveTraceDump(w http.ResponseWriter, r *http.Request,
	dump func(*obs.TraceLog) *obs.TraceDump) {
	sv.reqs.Add(1)
	if r.Method != http.MethodGet {
		sv.errs.Add(1)
		writeError(w, requestID(r), errf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s requires GET", r.URL.Path))
		return
	}
	if sv.traces == nil {
		sv.errs.Add(1)
		writeError(w, requestID(r), errf(http.StatusNotFound, CodeNotFound,
			"request tracing is disabled on this server"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if id := requestID(r); id != "" {
		w.Header().Set(HeaderRequestID, id)
	}
	if err := obs.WriteTraceDump(w, dump(sv.traces)); err != nil {
		// Headers are already committed; nothing useful left to send.
		return
	}
}
