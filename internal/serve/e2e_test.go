package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"

	"transn/internal/graph"
	"transn/internal/transn"
)

// graphID converts a test-local int index to a graph.NodeID.
func graphID(i int) graph.NodeID { return graph.NodeID(i) }

// getJSON fetches url and decodes the body into out, failing on any
// non-200 status.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// sameVec asserts an embedding decoded from a JSON response equals the
// model's vector exactly: encoding/json emits the shortest
// representation that round-trips, so serving must not lose a single
// bit relative to direct Model calls.
func sameVec(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dim %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v (byte-match violated)", what, i, got[i], want[i])
		}
	}
}

// TestServeEndToEnd trains the quickstart model, serves it on an
// ephemeral port, and asserts every data endpoint byte-matches direct
// Model calls.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	gp, mp, m := writeModelFiles(t, dir, 1)
	sv, err := New(Config{GraphPath: gp, ModelPath: mp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Shutdown()
	base := "http://" + addr

	f, err := m.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	g := m.Graph
	idOf := func(name string) int {
		for _, n := range g.Nodes {
			if n.Name == name {
				return int(n.ID)
			}
		}
		t.Fatalf("no node %q", name)
		return -1
	}
	viewOf := func(name string) int {
		for vi, v := range f.Views() {
			if g.EdgeTypeNames[v.Type] == name {
				return vi
			}
		}
		t.Fatalf("no view %q", name)
		return -1
	}

	// Liveness and readiness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	var ready ReadyResponse
	getJSON(t, base+"/readyz", &ready)
	if !ready.Ready || ready.Generation != 1 {
		t.Fatalf("readyz = %+v", ready)
	}

	// Model metadata.
	var meta ModelResponse
	getJSON(t, base+"/v1/model", &meta)
	if meta.Dim != m.Cfg.Dim || meta.Nodes != g.NumNodes() || len(meta.Views) != 3 {
		t.Fatalf("model metadata = %+v", meta)
	}

	// Final embedding byte-matches Embeddings().
	var emb EmbeddingResponse
	getJSON(t, base+"/v1/embedding?node=A1", &emb)
	sameVec(t, "final(A1)", emb.Embedding, m.Embeddings().Row(idOf("A1")))

	// Per-view embedding byte-matches ViewEmbedding.
	var vemb EmbeddingResponse
	getJSON(t, base+"/v1/embedding?node=A1&view=affiliation", &vemb)
	sameVec(t, "view(A1,affiliation)", vemb.Embedding,
		m.ViewEmbedding(viewOf("affiliation"), graphID(idOf("A1"))))

	// Translation byte-matches Frozen.TranslateNode — twice, so the
	// second response is served from the LRU and still byte-matches.
	wantTr, err := f.TranslateNode(viewOf("authorship"), viewOf("affiliation"), graphID(idOf("A1")))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		var tr TranslateResponse
		getJSON(t, base+"/v1/translate?node=A1&from=authorship&to=affiliation", &tr)
		sameVec(t, fmt.Sprintf("translate(A1) pass %d", pass), tr.Embedding, wantTr)
	}

	// Exact k-NN (the escape hatch) matches a direct cosine ranking over
	// final embeddings, float for float.
	var knn KNNResponse
	getJSON(t, base+"/v1/knn?node=A1&k=3&exact=true", &knn)
	if knn.K != 3 || len(knn.Neighbors) != 3 {
		t.Fatalf("knn = %+v", knn)
	}
	snap := sv.snap.Load()
	wantN := snap.knnExact(graphID(idOf("A1")), 3)
	for i := range wantN {
		if knn.Neighbors[i].Node != wantN[i].Node || knn.Neighbors[i].Similarity != wantN[i].Similarity {
			t.Fatalf("knn[%d] = %+v, want %+v", i, knn.Neighbors[i], wantN[i])
		}
	}
	// The default (HNSW) path returns the same neighbors in the same
	// order on a graph this small; similarities agree to rounding (the
	// index reports 1-distance, which can differ in the last ulp).
	var aknn KNNResponse
	getJSON(t, base+"/v1/knn?node=A1&k=3", &aknn)
	if aknn.K != 3 || len(aknn.Neighbors) != 3 {
		t.Fatalf("ann knn = %+v", aknn)
	}
	for i := range wantN {
		if aknn.Neighbors[i].Node != wantN[i].Node {
			t.Fatalf("ann knn[%d] = %+v, want node %q", i, aknn.Neighbors[i], wantN[i].Node)
		}
		if d := aknn.Neighbors[i].Similarity - wantN[i].Similarity; d > 1e-9 || d < -1e-9 {
			t.Fatalf("ann knn[%d] similarity %v, want %v", i, aknn.Neighbors[i].Similarity, wantN[i].Similarity)
		}
	}
	for i := 1; i < len(aknn.Neighbors); i++ {
		if aknn.Neighbors[i].Similarity > aknn.Neighbors[i-1].Similarity {
			t.Fatalf("knn not sorted: %+v", aknn.Neighbors)
		}
	}

	// Online inference byte-matches Model.InferNode.
	body := `{"edges":[{"neighbor":"P1","type":"authorship"},{"neighbor":"U1","type":"affiliation","weight":2}]}`
	wantInf, err := m.InferNode([]transn.NeighborEdge{
		{Neighbor: graphID(idOf("P1")), Type: f.Views()[viewOf("authorship")].Type, Weight: 1},
		{Neighbor: graphID(idOf("U1")), Type: f.Views()[viewOf("affiliation")].Type, Weight: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	post, err := http.Post(base+"/v1/infer", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	var inf InferResponse
	if err := json.NewDecoder(post.Body).Decode(&inf); err != nil {
		t.Fatal(err)
	}
	if post.StatusCode != http.StatusOK {
		t.Fatalf("/v1/infer: %d", post.StatusCode)
	}
	sameVec(t, "infer", inf.Embedding, wantInf)

	// Selfcheck returns a diagnostics document against the live model.
	var selfcheck struct {
		Schema string `json:"schema"`
	}
	getJSON(t, base+"/admin/selfcheck", &selfcheck)
	if selfcheck.Schema != "transn.diagnostics/v1" {
		t.Fatalf("selfcheck schema = %q", selfcheck.Schema)
	}
}

// TestServeHotReloadUnderLoad hammers the server from concurrent
// clients while the snapshot is hot-swapped for a differently seeded
// model, asserting zero request errors across the swap and that
// post-reload responses byte-match the new model.
func TestServeHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	gp, mp, _ := writeModelFiles(t, dir, 1)
	sv, err := New(Config{GraphPath: gp, ModelPath: mp})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := sv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Shutdown()
	base := "http://" + addr

	// Train the replacement snapshot into a scratch dir, then move it
	// over the served path (the reload reads the configured paths).
	dir2 := t.TempDir()
	_, mp2, m2 := writeModelFiles(t, dir2, 2)

	const clients = 4
	stop := make(chan struct{})
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	targets := []string{
		"/v1/embedding?node=A1",
		"/v1/embedding?node=A3&view=affiliation",
		"/v1/translate?node=A1&from=authorship&to=affiliation",
		"/v1/knn?node=A2&k=3",
	}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := base + targets[(c+i)%len(targets)]
				resp, err := http.Get(url)
				if err != nil {
					errc <- fmt.Errorf("GET %s: %v", url, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("GET %s: %d %s mid-reload", url, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}

	// Swap the model file and hot-reload mid-traffic.
	data, err := os.ReadFile(mp2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl.Generation != 2 {
		t.Fatalf("reload: %d %+v", resp.StatusCode, rl)
	}

	// Let traffic run against the new snapshot before stopping.
	for i := 0; i < 50; i++ {
		r2, err := http.Get(base + "/v1/embedding?node=A2")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// The served embedding now byte-matches the second model.
	var emb EmbeddingResponse
	getJSON(t, base+"/v1/embedding?node=A1", &emb)
	var a1 int
	for _, n := range m2.Graph.Nodes {
		if n.Name == "A1" {
			a1 = int(n.ID)
		}
	}
	sameVec(t, "post-reload final(A1)", emb.Embedding, m2.Embeddings().Row(a1))
	var ready ReadyResponse
	getJSON(t, base+"/readyz", &ready)
	if ready.Generation != 2 {
		t.Fatalf("generation = %d after reload, want 2", ready.Generation)
	}
}
