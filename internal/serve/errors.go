// Package serve is the embedding-serving subsystem: a long-running
// HTTP service over a trained TransN model snapshot. It serves final
// averaged embeddings (Section III-C), per-view embeddings, cross-view
// translations through the trained Eq. 8–10 translator stacks, k-NN
// similarity lookups, and online fold-in of unseen nodes (InferNode) —
// behind immutable snapshots swapped atomically on hot reload, an LRU
// cache for computed vectors, coalesced translator execution with
// bounded concurrency, per-endpoint timeouts, and a graceful drain on
// shutdown. Every error is a typed transn.serve/v1 JSON envelope; the
// service never panics on request input. See API.md for the route
// reference and DESIGN.md §10 for the architecture.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// ErrorSchema identifies the versioned error envelope every non-2xx
// response carries. Success payloads carry the same schema string in
// their top-level "schema" field.
const ErrorSchema = "transn.serve/v1"

// Error codes carried in the transn.serve/v1 envelope. They are the
// machine-readable contract: messages may change, codes may not.
const (
	// CodeBadRequest marks malformed input: missing or non-numeric
	// query parameters, an unparsable JSON body, a non-positive weight.
	CodeBadRequest = "bad_request"
	// CodeUnknownNode marks a node name not present in the graph (or,
	// for per-view and translate requests, not present in the view).
	CodeUnknownNode = "unknown_node"
	// CodeUnknownView marks a view (edge-type) name the model was not
	// trained with.
	CodeUnknownView = "unknown_view"
	// CodeUntrainedPair marks a translate request between two views
	// that share no common nodes, so no translator was trained for the
	// pair (or the model was trained under the no-cross-view ablation).
	CodeUntrainedPair = "untrained_pair"
	// CodeMethodNotAllowed marks a request with the wrong HTTP method
	// (e.g. GET on /admin/reload).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound marks a request for a route the server does not
	// export.
	CodeNotFound = "not_found"
	// CodeNotReady marks a request received while the server has no
	// snapshot to serve from or is draining for shutdown.
	CodeNotReady = "not_ready"
	// CodeTimeout marks a request that exceeded its endpoint's
	// deadline; the response is sent even though the computation may
	// still complete (and populate the cache) in the background.
	CodeTimeout = "timeout"
	// CodeReloadFailed marks a reload request whose snapshot failed to
	// load or validate; the previous snapshot stays live.
	CodeReloadFailed = "reload_failed"
	// CodeANNSearch marks a /v1/knn request the ANN index rejected (an
	// internal invariant failure — user input is validated before the
	// search). exact=true bypasses the index entirely.
	CodeANNSearch = "ann_search"
	// CodeInternal marks an unexpected server-side failure.
	CodeInternal = "internal"
)

// ErrorBody is the "error" object of the envelope.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is a human-readable description. Not machine-parseable.
	Message string `json:"message"`
	// Status echoes the HTTP status the envelope was sent with.
	Status int `json:"status"`
	// RequestID is the request's correlation ID (the X-Transn-Request-Id
	// value, client-supplied or server-generated) so an error seen by a
	// client can be matched to the server's trace and logs. Omitted when
	// the request carried no ID and tracing was disabled.
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope is the body of every non-2xx response:
//
//	{"schema": "transn.serve/v1",
//	 "error": {"code": "unknown_node", "message": "...", "status": 404}}
type ErrorEnvelope struct {
	// Schema is always ErrorSchema.
	Schema string `json:"schema"`
	// Error carries the typed error.
	Error ErrorBody `json:"error"`
}

// apiError is a handler-level error that knows its HTTP status and
// envelope code. Handlers return it through the middleware, which
// renders the envelope.
type apiError struct {
	status int
	code   string
	msg    string
}

// Error implements the error interface.
func (e *apiError) Error() string { return e.msg }

// errf builds an apiError with a formatted message.
func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// writeError renders err as a transn.serve/v1 envelope on w, stamping
// the request's correlation ID into the envelope and the response
// header (when non-empty). Non-API errors become 500/internal.
func writeError(w http.ResponseWriter, reqID string, err error) int {
	ae, ok := err.(*apiError)
	if !ok {
		ae = errf(http.StatusInternalServerError, CodeInternal, "%v", err)
	}
	if reqID != "" {
		w.Header().Set(HeaderRequestID, reqID)
	}
	env := ErrorEnvelope{
		Schema: ErrorSchema,
		Error:  ErrorBody{Code: ae.code, Message: ae.msg, Status: ae.status, RequestID: reqID},
	}
	writeJSON(w, ae.status, env)
	return ae.status
}

// writeJSON writes v as indented JSON with the given status. Marshal
// happens before the header is committed so an encoding failure can
// still produce a 500.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"schema":"`+ErrorSchema+`","error":{"code":"`+CodeInternal+
			`","message":"encoding response","status":500}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
