package serve

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"

	"transn/internal/ann"
	"transn/internal/graph"
	"transn/internal/obs"
	"transn/internal/snapfmt"
	"transn/internal/transn"
)

// snapshot is one immutable generation of serving state: a frozen model
// plus every index derived from it (name lookups, k-NN norms, the HNSW
// index) and the per-snapshot LRU cache of computed vectors. Handlers
// grab the current snapshot pointer once per request and work against
// it for the whole request, so a concurrent hot reload never changes
// state mid-request — the old snapshot stays valid until its last
// in-flight request finishes, then the garbage collector reclaims it,
// cache, index and (for .snap loads) mmap included.
type snapshot struct {
	frozen *transn.Frozen
	gen    uint64

	// nodeByName maps node names to IDs. Duplicate names resolve to the
	// lowest ID, deterministically.
	nodeByName map[string]graph.NodeID
	// viewByName maps edge-type (view) names to view indices.
	viewByName map[string]int
	// viewNames is the inverse: view index → edge-type name.
	viewNames []string
	// norms[i] is the L2 norm of final embedding row i, precomputed for
	// cosine k-NN.
	norms []float64
	// index is the HNSW index over the final table, owned by this
	// snapshot (DESIGN.md §14): reloads swap table and index together,
	// atomically. Nil only if construction was skipped (never in
	// production paths).
	index *ann.Index
	// snapf keeps a .snap file's mapping alive for as long as this
	// snapshot is reachable; the frozen tables may alias it. A
	// finalizer closes it when the GC reclaims the snapshot, so the
	// last in-flight request on a retired generation can never observe
	// an unmapped table. Nil for gob-format loads.
	snapf *snapfmt.Snapshot

	cache *lru
}

// loadSnapshot reads the graph TSV plus the configured model format
// (gob or .snap) from disk and builds a serving snapshot of the given
// generation.
func (sv *Server) loadSnapshot(gen uint64) (*snapshot, error) {
	gf, err := os.Open(sv.cfg.GraphPath)
	if err != nil {
		return nil, fmt.Errorf("serve: opening graph: %w", err)
	}
	defer gf.Close()
	g, err := graph.Load(gf)
	if err != nil {
		return nil, fmt.Errorf("serve: loading graph: %w", err)
	}
	if sv.cfg.SnapshotFormat == FormatSnap {
		return sv.loadSnapSnapshot(g, gen)
	}
	mf, err := os.Open(sv.cfg.ModelPath)
	if err != nil {
		return nil, fmt.Errorf("serve: opening model: %w", err)
	}
	defer mf.Close()
	m, err := transn.Load(mf, g)
	if err != nil {
		return nil, fmt.Errorf("serve: loading model: %w", err)
	}
	f, err := m.Freeze()
	if err != nil {
		return nil, fmt.Errorf("serve: freezing model: %w", err)
	}
	s := newSnapshot(f, gen, sv.cfg.CacheSize)
	sp := sv.run.Trace.Start(obs.SpanANNBuild)
	s.index, err = ann.Build(f.FinalTable(), s.norms, sv.annConfig())
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("serve: building ann index: %w", err)
	}
	return s, nil
}

// loadSnapSnapshot builds a serving snapshot from a transn.snap/v1
// file: O(header) validation + decode, float tables aliased straight
// out of the read-only mapping (no re-materialization), and the HNSW
// index decoded from the file's ANN section when present (built fresh
// otherwise).
func (sv *Server) loadSnapSnapshot(g *graph.Graph, gen uint64) (*snapshot, error) {
	sp := sv.run.Trace.Start(obs.SpanSnapLoad)
	snapf, err := snapfmt.Open(sv.cfg.ModelPath, snapfmt.OpenOptions{})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("serve: opening snapshot: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			snapf.Close()
		}
	}()
	m, err := snapf.Model(g)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	// FreezeWithFinal reuses the stored (possibly mmap-aliased) final
	// table: a .snap is finite by construction (SNAPSHOT.md §1), so no
	// sweep and no re-averaging — this is what keeps reload allocation
	// bounded regardless of model size.
	f, err := m.FreezeWithFinal(snapf.Final())
	if err != nil {
		return nil, fmt.Errorf("serve: freezing snapshot model: %w", err)
	}
	s := newSnapshot(f, gen, sv.cfg.CacheSize)
	asp := sv.run.Trace.Start(obs.SpanANNBuild)
	if annData := snapf.ANN(); len(annData) > 0 {
		s.index, err = ann.Decode(annData, f.FinalTable(), s.norms)
	} else {
		s.index, err = ann.Build(f.FinalTable(), s.norms, sv.annConfig())
	}
	asp.End()
	if err != nil {
		return nil, fmt.Errorf("serve: ann index: %w", err)
	}
	s.snapf = snapf
	// The mapping must outlive every aliased table; tie Close to the
	// snapshot's own lifetime. The finalizer closure must not capture s
	// (that would keep it reachable forever) — it receives the dying
	// object as its argument.
	runtime.SetFinalizer(s, func(old *snapshot) { old.snapf.Close() })
	sv.snapLoads.Add(1)
	if snapf.Mapped() {
		sv.snapMapped.Set(float64(snapf.SizeBytes()))
	} else {
		sv.snapMapped.Set(0)
	}
	ok = true
	return s, nil
}

// buildSnapshot freezes an in-memory model and derives the serving
// indexes with default ANN parameters. Split out so tests can serve
// freshly trained models without a round-trip through disk.
func buildSnapshot(m *transn.Model, gen uint64, cacheSize int) (*snapshot, error) {
	f, err := m.Freeze()
	if err != nil {
		return nil, fmt.Errorf("serve: freezing model: %w", err)
	}
	s := newSnapshot(f, gen, cacheSize)
	s.index, err = ann.Build(f.FinalTable(), s.norms, ann.Config{})
	if err != nil {
		return nil, fmt.Errorf("serve: building ann index: %w", err)
	}
	return s, nil
}

// newSnapshot derives the name maps and norms every snapshot needs,
// regardless of which format loaded the model.
func newSnapshot(f *transn.Frozen, gen uint64, cacheSize int) *snapshot {
	g := f.Graph()
	s := &snapshot{
		frozen:     f,
		gen:        gen,
		nodeByName: make(map[string]graph.NodeID, g.NumNodes()),
		viewByName: map[string]int{},
		cache:      newLRU(cacheSize),
	}
	for _, n := range g.Nodes {
		if _, dup := s.nodeByName[n.Name]; !dup {
			s.nodeByName[n.Name] = n.ID
		}
	}
	for vi, v := range f.Views() {
		name := g.EdgeTypeNames[v.Type]
		s.viewByName[name] = vi
		s.viewNames = append(s.viewNames, name)
	}
	final := f.FinalTable()
	s.norms = make([]float64, final.R)
	for i := 0; i < final.R; i++ {
		var ss float64
		for _, v := range final.Row(i) {
			ss += v * v
		}
		s.norms[i] = math.Sqrt(ss)
	}
	return s
}

// node resolves a node name, or a typed 404.
func (s *snapshot) node(name string) (graph.NodeID, error) {
	id, ok := s.nodeByName[name]
	if !ok {
		return 0, errf(404, CodeUnknownNode, "unknown node %q", name)
	}
	return id, nil
}

// view resolves a view (edge-type) name, or a typed 404.
func (s *snapshot) view(name string) (int, error) {
	vi, ok := s.viewByName[name]
	if !ok {
		return 0, errf(404, CodeUnknownView, "unknown view %q", name)
	}
	return vi, nil
}

// Neighbor is one k-NN result: a node and its cosine similarity to the
// query node's final embedding.
type Neighbor struct {
	// Node is the neighbor's name.
	Node string `json:"node"`
	// Similarity is the cosine similarity in [-1, 1].
	Similarity float64 `json:"similarity"`
}

// knnExact returns the exact k nearest neighbors of node id by
// brute-force scan: cosine similarity over final embeddings, excluding
// id itself. Ties break by node ID so results are deterministic for a
// given snapshot. Zero-norm rows (possible only for isolated
// pathologies) score 0. This is the ground truth behind /v1/knn's
// exact=true escape hatch and the recall tests.
func (s *snapshot) knnExact(id graph.NodeID, k int) []Neighbor {
	final := s.frozen.FinalTable()
	q := final.Row(int(id))
	qn := s.norms[id]
	type scored struct {
		id  int
		sim float64
	}
	all := make([]scored, 0, final.R-1)
	for i := 0; i < final.R; i++ {
		if i == int(id) {
			continue
		}
		sim := 0.0
		if qn > 0 && s.norms[i] > 0 {
			var dot float64
			for c, v := range final.Row(i) {
				dot += q[c] * v
			}
			sim = dot / (qn * s.norms[i])
		}
		all = append(all, scored{id: i, sim: sim})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].sim != all[b].sim {
			return all[a].sim > all[b].sim
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	g := s.frozen.Graph()
	out := make([]Neighbor, 0, k)
	for _, sc := range all[:k] {
		out = append(out, Neighbor{Node: g.Nodes[sc.id].Name, Similarity: sc.sim})
	}
	return out
}

// knnIndex answers k-NN through the snapshot's HNSW index: search for
// k+1 (the query row itself ranks first), drop the query, trim to k.
// ef <= 0 means the index's configured default. Returns the neighbors
// and the number of distance evaluations spent.
func (s *snapshot) knnIndex(id graph.NodeID, k, ef int) ([]Neighbor, int, error) {
	final := s.frozen.FinalTable()
	cands, evals, err := s.index.Search(final.Row(int(id)), s.norms[id], k+1, ef)
	if err != nil {
		return nil, evals, err
	}
	g := s.frozen.Graph()
	out := make([]Neighbor, 0, k)
	for _, c := range cands {
		if c.ID == int(id) {
			continue
		}
		out = append(out, Neighbor{Node: g.Nodes[c.ID].Name, Similarity: c.Sim})
		if len(out) == k {
			break
		}
	}
	return out, evals, nil
}
