package serve

import (
	"fmt"
	"math"
	"os"
	"sort"

	"transn/internal/graph"
	"transn/internal/transn"
)

// snapshot is one immutable generation of serving state: a frozen model
// plus every index derived from it (name lookups, k-NN norms) and the
// per-snapshot LRU cache of computed vectors. Handlers grab the current
// snapshot pointer once per request and work against it for the whole
// request, so a concurrent hot reload never changes state mid-request —
// the old snapshot stays valid until its last in-flight request
// finishes, then the garbage collector reclaims it, cache and all.
type snapshot struct {
	frozen *transn.Frozen
	gen    uint64

	// nodeByName maps node names to IDs. Duplicate names resolve to the
	// lowest ID, deterministically.
	nodeByName map[string]graph.NodeID
	// viewByName maps edge-type (view) names to view indices.
	viewByName map[string]int
	// viewNames is the inverse: view index → edge-type name.
	viewNames []string
	// norms[i] is the L2 norm of final embedding row i, precomputed for
	// cosine k-NN.
	norms []float64

	cache *lru
}

// loadSnapshot reads the graph TSV and model gob from disk and builds a
// serving snapshot of the given generation. The model must have been
// saved against exactly this graph (transn.Load validates shapes) and
// must be finite (Freeze validates values).
func loadSnapshot(graphPath, modelPath string, gen uint64, cacheSize int) (*snapshot, error) {
	gf, err := os.Open(graphPath)
	if err != nil {
		return nil, fmt.Errorf("serve: opening graph: %w", err)
	}
	defer gf.Close()
	g, err := graph.Load(gf)
	if err != nil {
		return nil, fmt.Errorf("serve: loading graph: %w", err)
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		return nil, fmt.Errorf("serve: opening model: %w", err)
	}
	defer mf.Close()
	m, err := transn.Load(mf, g)
	if err != nil {
		return nil, fmt.Errorf("serve: loading model: %w", err)
	}
	return buildSnapshot(m, gen, cacheSize)
}

// buildSnapshot freezes an in-memory model and derives the serving
// indexes. Split from loadSnapshot so tests can serve freshly trained
// models without a round-trip through disk.
func buildSnapshot(m *transn.Model, gen uint64, cacheSize int) (*snapshot, error) {
	f, err := m.Freeze()
	if err != nil {
		return nil, fmt.Errorf("serve: freezing model: %w", err)
	}
	g := f.Graph()
	s := &snapshot{
		frozen:     f,
		gen:        gen,
		nodeByName: make(map[string]graph.NodeID, g.NumNodes()),
		viewByName: map[string]int{},
		cache:      newLRU(cacheSize),
	}
	for _, n := range g.Nodes {
		if _, dup := s.nodeByName[n.Name]; !dup {
			s.nodeByName[n.Name] = n.ID
		}
	}
	for vi, v := range f.Views() {
		name := g.EdgeTypeNames[v.Type]
		s.viewByName[name] = vi
		s.viewNames = append(s.viewNames, name)
	}
	final := f.FinalTable()
	s.norms = make([]float64, final.R)
	for i := 0; i < final.R; i++ {
		var ss float64
		for _, v := range final.Row(i) {
			ss += v * v
		}
		s.norms[i] = math.Sqrt(ss)
	}
	return s, nil
}

// node resolves a node name, or a typed 404.
func (s *snapshot) node(name string) (graph.NodeID, error) {
	id, ok := s.nodeByName[name]
	if !ok {
		return 0, errf(404, CodeUnknownNode, "unknown node %q", name)
	}
	return id, nil
}

// view resolves a view (edge-type) name, or a typed 404.
func (s *snapshot) view(name string) (int, error) {
	vi, ok := s.viewByName[name]
	if !ok {
		return 0, errf(404, CodeUnknownView, "unknown view %q", name)
	}
	return vi, nil
}

// Neighbor is one k-NN result: a node and its cosine similarity to the
// query node's final embedding.
type Neighbor struct {
	// Node is the neighbor's name.
	Node string `json:"node"`
	// Similarity is the cosine similarity in [-1, 1].
	Similarity float64 `json:"similarity"`
}

// knn returns the k nearest neighbors of node id under cosine
// similarity over final embeddings, excluding id itself. Ties break by
// node ID so results are deterministic for a given snapshot. Zero-norm
// rows (possible only for isolated pathologies) score 0.
func (s *snapshot) knn(id graph.NodeID, k int) []Neighbor {
	final := s.frozen.FinalTable()
	q := final.Row(int(id))
	qn := s.norms[id]
	type scored struct {
		id  int
		sim float64
	}
	all := make([]scored, 0, final.R-1)
	for i := 0; i < final.R; i++ {
		if i == int(id) {
			continue
		}
		sim := 0.0
		if qn > 0 && s.norms[i] > 0 {
			var dot float64
			for c, v := range final.Row(i) {
				dot += q[c] * v
			}
			sim = dot / (qn * s.norms[i])
		}
		all = append(all, scored{id: i, sim: sim})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].sim != all[b].sim {
			return all[a].sim > all[b].sim
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	g := s.frozen.Graph()
	out := make([]Neighbor, 0, k)
	for _, sc := range all[:k] {
		out = append(out, Neighbor{Node: g.Nodes[sc.id].Name, Similarity: sc.sim})
	}
	return out
}
