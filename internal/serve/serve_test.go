package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"transn/internal/graph"
	"transn/internal/obs"
	"transn/internal/transn"
)

// quickstartGraph builds the paper's Figure 2(a) academic network:
// three authors, two papers, a university; authorship, citation and
// affiliation views. Authorship×affiliation share {A1, A3};
// citation×affiliation share nothing (the untrained-pair error case).
func quickstartGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	author := b.NodeType("author")
	paper := b.NodeType("paper")
	univ := b.NodeType("university")
	authorship := b.EdgeType("authorship")
	citation := b.EdgeType("citation")
	affiliation := b.EdgeType("affiliation")
	a1 := b.AddNode(author, "A1")
	a2 := b.AddNode(author, "A2")
	a3 := b.AddNode(author, "A3")
	p1 := b.AddNode(paper, "P1")
	p2 := b.AddNode(paper, "P2")
	u1 := b.AddNode(univ, "U1")
	b.AddEdge(a1, p1, authorship, 1)
	b.AddEdge(a2, p1, authorship, 1)
	b.AddEdge(a3, p2, authorship, 1)
	b.AddEdge(p1, p2, citation, 1)
	b.AddEdge(a1, u1, affiliation, 1)
	b.AddEdge(a3, u1, affiliation, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// serveCfg is a fast deterministic training config for serving tests.
func serveCfg(seed int64) transn.Config {
	cfg := transn.DefaultConfig()
	cfg.Dim = 8
	cfg.WalkLength = 8
	cfg.MinWalksPerNode = 4
	cfg.MaxWalksPerNode = 8
	cfg.Iterations = 2
	cfg.CrossPathLen = 2
	cfg.CrossPathsPerPair = 10
	cfg.Workers = 1
	cfg.Seed = seed
	return cfg
}

// writeModelFiles trains a quickstart model with the given seed and
// writes the graph TSV + model gob into dir, returning the two paths
// and the in-memory model for byte-match assertions.
func writeModelFiles(t testing.TB, dir string, seed int64) (string, string, *transn.Model) {
	t.Helper()
	g := quickstartGraph(t)
	m, err := transn.Train(g, serveCfg(seed))
	if err != nil {
		t.Fatal(err)
	}
	gp := filepath.Join(dir, "graph.tsv")
	gf, err := os.Create(gp)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.Store(gf, g); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	mp := filepath.Join(dir, "model.gob")
	mf, err := os.Create(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}
	return gp, mp, m
}

// newTestServer builds a Server over freshly trained snapshot files.
func newTestServer(t testing.TB, cfg Config) (*Server, *transn.Model) {
	t.Helper()
	dir := t.TempDir()
	gp, mp, m := writeModelFiles(t, dir, 1)
	cfg.GraphPath = gp
	cfg.ModelPath = mp
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sv.stopWatchdog()
		sv.stopHistory()
		sv.stopRuntime()
	})
	return sv, m
}

func TestLRU(t *testing.T) {
	c := newLRU(2)
	c.put("a", []float64{1})
	c.put("b", []float64{2})
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted too early")
	}
	// a is now most recent; inserting c must evict b.
	c.put("c", []float64{3})
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past capacity")
	}
	if v, ok := c.get("a"); !ok || v[0] != 1 {
		t.Fatal("a lost")
	}
	if v, ok := c.get("c"); !ok || v[0] != 3 {
		t.Fatal("c lost")
	}
	// Updating an existing key replaces in place, no eviction.
	c.put("a", []float64{10})
	if v, _ := c.get("a"); v[0] != 10 {
		t.Fatal("update did not replace value")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// A disabled cache never stores.
	d := newLRU(-1)
	d.put("x", []float64{1})
	if _, ok := d.get("x"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestCoalescerDedupes(t *testing.T) {
	coalesced := &obs.Counter{}
	c := newCoalescer(4, nil, coalesced)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]float64, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.do(nil, "same-key", func() ([]float64, error) {
				calls.Add(1)
				<-release
				return []float64{42}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every waiter reach do before releasing the leader.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", n)
	}
	for i, v := range results {
		if len(v) != 1 || v[0] != 42 {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
	if n := coalesced.Value(); n != waiters-1 {
		t.Fatalf("coalesced counter = %d, want %d (every non-leader waiter)", n, waiters-1)
	}
}

func TestCoalescerBoundsConcurrency(t *testing.T) {
	const workers = 2
	c := newCoalescer(workers, nil, nil)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = c.do(nil, string(rune('a'+i)), func() ([]float64, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				cur.Add(-1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent computations, bound is %d", p, workers)
	}
}

func TestEndpointTimeout(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	h := sv.endpoint("test", http.MethodGet, 5*time.Millisecond, func(*snapshot, *http.Request) (any, error) {
		time.Sleep(300 * time.Millisecond)
		return nil, nil
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/slow", nil))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Schema != ErrorSchema || env.Error.Code != CodeTimeout {
		t.Fatalf("envelope = %+v", env)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	// Corrupt the model file; reload must fail and generation must stay.
	if err := os.WriteFile(sv.cfg.ModelPath, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := sv.Reload(); err == nil {
		t.Fatal("Reload succeeded on a corrupt model")
	}
	if g := sv.Generation(); g != 1 {
		t.Fatalf("generation = %d after failed reload, want 1", g)
	}
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("serving broke after failed reload: %d %s", rec.Code, rec.Body)
	}
}

func TestDrainingFlipsReadiness(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d", rec.Code)
	}
	if err := sv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeNotReady {
		t.Fatalf("code = %q, want %q", env.Error.Code, CodeNotReady)
	}
	// Liveness stays up through the drain.
	rec = httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", rec.Code)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	cases := []struct {
		name, method, target string
		status               int
		code                 string
	}{
		{"unknown node", http.MethodGet, "/v1/embedding?node=NOPE", 404, CodeUnknownNode},
		{"missing node param", http.MethodGet, "/v1/embedding", 400, CodeBadRequest},
		{"unknown view", http.MethodGet, "/v1/embedding?node=A1&view=bogus", 404, CodeUnknownView},
		{"node outside view", http.MethodGet, "/v1/embedding?node=U1&view=authorship", 404, CodeUnknownNode},
		{"same-view translate", http.MethodGet, "/v1/translate?node=A1&from=authorship&to=authorship", 400, CodeBadRequest},
		{"untrained pair", http.MethodGet, "/v1/translate?node=P1&from=citation&to=affiliation", 404, CodeUntrainedPair},
		{"bad k", http.MethodGet, "/v1/knn?node=A1&k=zero", 400, CodeBadRequest},
		{"k over cap", http.MethodGet, "/v1/knn?node=A1&k=1000000", 400, CodeBadRequest},
		{"wrong method", http.MethodPost, "/v1/embedding?node=A1", 405, CodeMethodNotAllowed},
		{"reload wrong method", http.MethodGet, "/admin/reload", 405, CodeMethodNotAllowed},
		{"unknown route", http.MethodGet, "/bogus", 404, CodeNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(tc.method, tc.target, nil)
			req.Header.Set(HeaderRequestID, "env-"+tc.code)
			sv.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			var env ErrorEnvelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("body is not an envelope: %v (%s)", err, rec.Body)
			}
			if env.Schema != ErrorSchema {
				t.Fatalf("schema = %q", env.Schema)
			}
			if env.Error.Code != tc.code || env.Error.Status != tc.status {
				t.Fatalf("error = %+v, want code %q status %d", env.Error, tc.code, tc.status)
			}
			// Satellite: every error envelope carries the correlation ID
			// the client supplied, and the header echoes it.
			if env.Error.RequestID != "env-"+tc.code {
				t.Fatalf("request_id = %q, want %q", env.Error.RequestID, "env-"+tc.code)
			}
			if got := rec.Header().Get(HeaderRequestID); got != "env-"+tc.code {
				t.Fatalf("response header %s = %q, want %q", HeaderRequestID, got, "env-"+tc.code)
			}
		})
	}
}

func TestServeMetricsFlow(t *testing.T) {
	sv, _ := newTestServer(t, Config{})
	do := func(target string) {
		rec := httptest.NewRecorder()
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", target, rec.Code, rec.Body)
		}
	}
	// Two identical translates: one miss then one hit.
	do("/v1/translate?node=A1&from=authorship&to=affiliation")
	do("/v1/translate?node=A1&from=authorship&to=affiliation")
	snap := sv.run.Reg.Snapshot()
	if snap.Counters[obs.MetricServeRequests] < 2 {
		t.Fatalf("requests = %d, want >= 2", snap.Counters[obs.MetricServeRequests])
	}
	if snap.Counters[obs.MetricServeCacheMisses] != 1 || snap.Counters[obs.MetricServeCacheHits] != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1",
			snap.Counters[obs.MetricServeCacheHits], snap.Counters[obs.MetricServeCacheMisses])
	}
	if snap.Gauges[obs.MetricServeSnapshotGen] != 1 {
		t.Fatalf("generation gauge = %v, want 1", snap.Gauges[obs.MetricServeSnapshotGen])
	}
	// The /metrics route exports the same registry as a valid report.
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if err := obs.ValidateReport(rec.Body.Bytes()); err != nil {
		t.Fatalf("/metrics is not a valid report: %v", err)
	}
}
