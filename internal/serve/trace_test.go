package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"transn/internal/obs"
)

// traceTestConfig samples every request so trace assertions are
// deterministic.
func traceTestConfig() Config {
	return Config{TraceSampleRate: 1, TraceSlowThreshold: -1}
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	sv, _ := newTestServer(t, traceTestConfig())
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d (%s)", rec.Code, rec.Body)
	}
	id := rec.Header().Get(HeaderRequestID)
	if id == "" {
		t.Fatalf("no %s header on response", HeaderRequestID)
	}
	// The server-minted ID must be on the trace record too.
	dump := sv.traces.DumpRequests()
	if len(dump.Traces) != 1 || dump.Traces[0].ID != id {
		t.Fatalf("trace ring = %+v, want one record with id %q", dump.Traces, id)
	}

	// A client-supplied ID wins over minting.
	rec = httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil)
	req.Header.Set(HeaderRequestID, "client-7")
	sv.Handler().ServeHTTP(rec, req)
	if got := rec.Header().Get(HeaderRequestID); got != "client-7" {
		t.Fatalf("echoed id = %q, want client-7", got)
	}
	dump = sv.traces.DumpRequests()
	if n := len(dump.Traces); n != 2 || dump.Traces[1].ID != "client-7" {
		t.Fatalf("trace ring after second request = %+v", dump.Traces)
	}
}

func TestTraceRecordsServeStages(t *testing.T) {
	sv, _ := newTestServer(t, traceTestConfig())
	do := func(method, target string, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(method, target, rd))
		return rec
	}
	// Miss then hit on the same translate key.
	if rec := do(http.MethodGet, "/v1/translate?node=A1&from=authorship&to=affiliation", ""); rec.Code != 200 {
		t.Fatalf("translate: %d %s", rec.Code, rec.Body)
	}
	if rec := do(http.MethodGet, "/v1/translate?node=A1&from=authorship&to=affiliation", ""); rec.Code != 200 {
		t.Fatalf("translate (cached): %d %s", rec.Code, rec.Body)
	}
	if rec := do(http.MethodGet, "/v1/knn?node=A1&k=3", ""); rec.Code != 200 {
		t.Fatalf("knn: %d %s", rec.Code, rec.Body)
	}
	dump := sv.traces.DumpRequests()
	if len(dump.Traces) != 3 {
		t.Fatalf("trace ring has %d records, want 3", len(dump.Traces))
	}
	miss, hit, knn := dump.Traces[0], dump.Traces[1], dump.Traces[2]
	for _, want := range []string{
		string(obs.TraceStageDecode), string(obs.TraceStageSnapshot),
		string(obs.TraceStageCache), string(obs.TraceStageCoalesceWait),
		string(obs.TraceStageForward), string(obs.TraceStageEncode),
	} {
		if _, ok := miss.Stages[want]; !ok {
			t.Fatalf("cache-miss translate trace lacks stage %q: %+v", want, miss.Stages)
		}
	}
	if miss.CacheHit || miss.Coalesced {
		t.Fatalf("miss trace flags: %+v", miss)
	}
	if !hit.CacheHit {
		t.Fatalf("second identical translate should be a cache hit: %+v", hit)
	}
	if _, ok := hit.Stages[string(obs.TraceStageForward)]; ok {
		t.Fatal("cache-hit trace should have no forward stage")
	}
	if _, ok := knn.Stages[string(obs.TraceStageForward)]; !ok {
		t.Fatalf("knn trace lacks forward stage: %+v", knn.Stages)
	}
	if _, ok := knn.Stages[string(obs.TraceStageCache)]; ok {
		t.Fatal("knn trace should not touch the cache")
	}
	for _, rec := range dump.Traces {
		if rec.Outcome != obs.TraceOutcomeOK || rec.Status != 200 || rec.Generation != 1 {
			t.Fatalf("record %+v, want ok/200/gen1", rec)
		}
	}
	// The dump round-trips through the schema validator.
	var buf bytes.Buffer
	if err := obs.WriteTraceDump(&buf, dump); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceDump(buf.Bytes()); err != nil {
		t.Fatalf("serve-produced dump fails validation: %v", err)
	}
}

// TestTimeoutMidForwardTrace is the timeout × tracing satellite: a
// request that deadlines while its forward stage is still running must
// yield a complete trace — timeout outcome, timeout code, and the
// in-flight forward stage recorded at its duration so far. The handler
// goroutine keeps running (and keeps touching the trace) after the
// middleware finalizes it; under -race this must stay clean.
func TestTimeoutMidForwardTrace(t *testing.T) {
	sv, _ := newTestServer(t, traceTestConfig())
	release := make(chan struct{})
	h := sv.endpoint("test", http.MethodGet, 20*time.Millisecond,
		func(_ *snapshot, r *http.Request) (any, error) {
			tr := traceFrom(r.Context())
			tr.StartStage(obs.TraceStageDecode)
			tr.EndStage(obs.TraceStageDecode)
			tr.StartStage(obs.TraceStageForward)
			<-release // still mid-forward when the deadline fires
			tr.EndStage(obs.TraceStageForward)
			tr.SetCacheHit() // late marks after Finish must be race-free
			return EmbeddingResponse{Schema: ErrorSchema}, nil
		})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/slow", nil)
	req.Header.Set(HeaderRequestID, "deadline-1")
	h.ServeHTTP(rec, req)
	close(release)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", rec.Code)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeTimeout || env.Error.RequestID != "deadline-1" {
		t.Fatalf("envelope error = %+v", env.Error)
	}
	dump := sv.traces.DumpRequests()
	if len(dump.Traces) != 1 {
		t.Fatalf("trace ring has %d records, want 1", len(dump.Traces))
	}
	tr := dump.Traces[0]
	if tr.ID != "deadline-1" || tr.Outcome != obs.TraceOutcomeTimeout ||
		tr.Status != 504 || tr.Code != CodeTimeout {
		t.Fatalf("trace = %+v, want deadline-1/timeout/504", tr)
	}
	fw, ok := tr.Stages[string(obs.TraceStageForward)]
	if !ok {
		t.Fatalf("timed-out trace lacks the in-flight forward stage: %+v", tr.Stages)
	}
	if fw < (10 * time.Millisecond).Seconds() {
		t.Fatalf("forward stage = %vs, want >= ~deadline (10ms)", fw)
	}
	if _, ok := tr.Stages[string(obs.TraceStageDecode)]; !ok {
		t.Fatalf("completed decode stage missing: %+v", tr.Stages)
	}
}

func TestDebugTraceEndpoints(t *testing.T) {
	cfg := traceTestConfig()
	cfg.TraceSlowThreshold = time.Nanosecond // everything is slow
	sv, _ := newTestServer(t, cfg)
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
	if rec.Code != 200 {
		t.Fatalf("embedding: %d", rec.Code)
	}
	for path, ring := range map[string]string{
		"/debug/requests": obs.TraceRingRequests,
		"/debug/slow":     obs.TraceRingSlow,
	} {
		rec := httptest.NewRecorder()
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: %d %s", path, rec.Code, rec.Body)
		}
		if err := obs.ValidateTraceDump(rec.Body.Bytes()); err != nil {
			t.Fatalf("%s dump invalid: %v", path, err)
		}
		var d obs.TraceDump
		if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		if d.Ring != ring || len(d.Traces) == 0 {
			t.Fatalf("%s: ring %q with %d traces, want %q non-empty", path, d.Ring, len(d.Traces), ring)
		}
	}
	// Wrong method gets the envelope discipline.
	rec = httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/requests", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/requests = %d, want 405", rec.Code)
	}
}

func TestDebugTraceEndpointsDisabled(t *testing.T) {
	sv, _ := newTestServer(t, Config{TraceDisabled: true})
	for _, path := range []string{"/debug/requests", "/debug/slow"} {
		rec := httptest.NewRecorder()
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Fatalf("%s with tracing disabled = %d, want 404", path, rec.Code)
		}
		var env ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != CodeNotFound {
			t.Fatalf("code = %q", env.Error.Code)
		}
	}
	// API requests still work, with no minted correlation ID.
	rec := httptest.NewRecorder()
	sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
	if rec.Code != 200 {
		t.Fatalf("embedding with tracing disabled: %d", rec.Code)
	}
	if id := rec.Header().Get(HeaderRequestID); id != "" {
		t.Fatalf("disabled tracing minted id %q", id)
	}
}

func TestAccessAndSlowLogs(t *testing.T) {
	var buf bytes.Buffer
	cfg := traceTestConfig()
	cfg.TraceSlowThreshold = time.Nanosecond // every request logs slow
	cfg.Logger = slog.New(slog.NewJSONHandler(&buf, nil))
	sv, _ := newTestServer(t, cfg)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/knn?node=A1&k=2", nil)
	req.Header.Set(HeaderRequestID, "log-1")
	sv.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("knn: %d %s", rec.Code, rec.Body)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want access + slow:\n%s", len(lines), buf.String())
	}
	var access, slow map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &access); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &slow); err != nil {
		t.Fatal(err)
	}
	if access["level"] != "INFO" || access["msg"] != "request" {
		t.Fatalf("access line = %v", access)
	}
	for _, key := range []string{
		obs.LogKeyRequestID, obs.LogKeyEndpoint, obs.LogKeyMethod, obs.LogKeyPath,
		obs.LogKeyStatus, obs.LogKeyOutcome, obs.LogKeyDurationMS,
	} {
		if _, ok := access[key]; !ok {
			t.Fatalf("access log lacks %q: %v", key, access)
		}
	}
	if access[obs.LogKeyRequestID] != "log-1" || access[obs.LogKeyEndpoint] != "knn" {
		t.Fatalf("access fields = %v", access)
	}
	if slow["level"] != "WARN" || slow["msg"] != "slow request" {
		t.Fatalf("slow line = %v", slow)
	}
	stages, ok := slow[obs.LogKeyStages].(map[string]any)
	if !ok {
		t.Fatalf("slow log lacks stages group: %v", slow)
	}
	if _, ok := stages[string(obs.TraceStageForward)]; !ok {
		t.Fatalf("slow log stages lack forward: %v", stages)
	}
}

// TestDisabledTracingZeroAlloc is the acceptance pin: with tracing
// disabled and no logger, everything the tracing feature added to the
// per-request middleware path — ID settlement, trace begin/finish,
// stage marks, logging — performs zero heap allocations.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	sv, _ := newTestServer(t, Config{TraceDisabled: true})
	r := httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil)
	allocs := testing.AllocsPerRun(1000, func() {
		start := time.Now()
		tr, id := sv.beginTrace(r, "embedding")
		tr.StartStage(obs.TraceStageSnapshot)
		tr.SetGeneration(1)
		tr.EndStage(obs.TraceStageSnapshot)
		tr.StartStage(obs.TraceStageDecode)
		tr.EndStage(obs.TraceStageDecode)
		tr.StartStage(obs.TraceStageForward)
		tr.EndStage(obs.TraceStageForward)
		tr.SetCacheHit()
		tr.SetCoalesced()
		tr.StartStage(obs.TraceStageEncode)
		tr.EndStage(obs.TraceStageEncode)
		sv.finishTrace(r, tr, id, "embedding", obs.TraceOutcomeOK, 200, "", time.Since(start))
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v per request, want 0", allocs)
	}
}

// benchEndpoint measures the full middleware + handler path; compare
// the Enabled and Disabled variants to see the tracing overhead.
func benchEndpoint(b *testing.B, cfg Config) {
	sv, _ := newTestServer(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		sv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/embedding?node=A1", nil))
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func BenchmarkEndpointTracingDisabled(b *testing.B) {
	benchEndpoint(b, Config{TraceDisabled: true})
}

func BenchmarkEndpointTracingEnabled(b *testing.B) {
	benchEndpoint(b, Config{TraceSampleRate: 1})
}
