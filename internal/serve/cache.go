package serve

import (
	"container/list"
	"sync"
)

// lru is a mutex-guarded fixed-capacity least-recently-used cache of
// computed vectors (cross-view translations, inferred embeddings).
// Each snapshot owns one: a hot reload swaps the whole cache with the
// snapshot, so stale vectors can never outlive the model that computed
// them and no per-entry invalidation is needed.
type lru struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

// lruEntry is one cached key/vector pair.
type lruEntry struct {
	key string
	val []float64
}

// newLRU builds a cache holding at most max vectors. max <= 0 disables
// caching (every Get misses, Put is a no-op).
func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached vector for key and whether it was present,
// promoting the entry to most-recently-used. Callers must not mutate
// the returned slice.
func (c *lru) get(key string) ([]float64, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores val under key, evicting the least-recently-used entry when
// the cache is full. The cache takes ownership of val.
func (c *lru) put(key string, val []float64) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached entries.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
