package serve

import (
	"sync"
	"sync/atomic"

	"transn/internal/obs"
)

// coalescer batches concurrent identical computations and bounds how
// many distinct translator forward passes run at once. Identical
// in-flight requests (same snapshot generation + endpoint + arguments)
// share one execution — the duplicates block on the leader's result
// instead of re-running the Eq. 8–10 stack — and distinct requests
// queue on a semaphore so a traffic spike cannot run an unbounded
// number of forward passes concurrently. True cross-request matrix
// batching is deliberately NOT done: the translator's self-attention
// mixes path rows, so packing different nodes into one path matrix
// would change each node's result (see DESIGN.md §10).
type coalescer struct {
	mu       sync.Mutex
	inflight map[string]*inflightCall
	sem      chan struct{}

	depth     atomic.Int64
	gauge     *obs.Gauge   // serve.queue_depth; nil-safe per obs contract
	coalesced *obs.Counter // serve.coalesced; nil-safe per obs contract
}

// inflightCall is one leader execution that duplicates wait on.
type inflightCall struct {
	done chan struct{}
	val  []float64
	err  error
}

// newCoalescer builds a coalescer running at most workers computations
// concurrently. workers < 1 is clamped to 1. coalesced, when non-nil,
// counts callers that joined an in-flight leader instead of running
// their own computation.
func newCoalescer(workers int, gauge *obs.Gauge, coalesced *obs.Counter) *coalescer {
	if workers < 1 {
		workers = 1
	}
	return &coalescer{
		inflight:  map[string]*inflightCall{},
		sem:       make(chan struct{}, workers),
		gauge:     gauge,
		coalesced: coalesced,
	}
}

// do runs fn for key, deduplicating against identical in-flight calls
// and respecting the concurrency bound. Every caller of the same key
// receives the leader's (val, err); callers must not mutate val.
//
// The caller's trace (nil-safe) records where the time went: a
// follower's whole wait on the leader is its coalesce_wait stage (it
// runs no forward pass of its own, so it records no forward stage); a
// leader's semaphore wait is coalesce_wait and its fn execution is
// forward.
func (c *coalescer) do(tr *obs.ReqTrace, key string, fn func() ([]float64, error)) ([]float64, error) {
	c.mu.Lock()
	if call, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		tr.SetCoalesced()
		tr.StartStage(obs.TraceStageCoalesceWait)
		<-call.done
		tr.EndStage(obs.TraceStageCoalesceWait)
		return call.val, call.err
	}
	call := &inflightCall{done: make(chan struct{})}
	c.inflight[key] = call
	c.mu.Unlock()

	c.gauge.Set(float64(c.depth.Add(1)))
	tr.StartStage(obs.TraceStageCoalesceWait)
	c.sem <- struct{}{}
	tr.EndStage(obs.TraceStageCoalesceWait)
	tr.StartStage(obs.TraceStageForward)
	call.val, call.err = fn()
	tr.EndStage(obs.TraceStageForward)
	<-c.sem
	c.gauge.Set(float64(c.depth.Add(-1)))

	c.mu.Lock()
	delete(c.inflight, key)
	c.mu.Unlock()
	close(call.done)
	return call.val, call.err
}
